#include "apps/webserver.hpp"

#include <sstream>

namespace softqos::apps {

WebServerApp::WebServerApp(sim::Simulation& simulation, osim::Host& host,
                           std::string name, WebServerConfig config)
    : sim_(simulation),
      host_(host),
      name_(std::move(name)),
      config_(config),
      rng_(simulation.stream("web:" + name_)) {
  worker_ = host_.spawn(name_ + "-worker",
                        [this](osim::Process& p) { workerLoop(p); });
  worker_->setWorkingSetPages(config_.workingSetPages);
}

WebServerApp::~WebServerApp() { stop(); }

void WebServerApp::start() {
  if (arrivalEvent_ != sim::kInvalidEvent) return;
  scheduleArrival();
}

void WebServerApp::stop() {
  if (arrivalEvent_ == sim::kInvalidEvent) return;
  sim_.cancel(arrivalEvent_);
  arrivalEvent_ = sim::kInvalidEvent;
}

void WebServerApp::scheduleArrival() {
  // One recurring event drives the Poisson arrival process; each arrival
  // re-times the next by a fresh exponential gap.
  arrivalEvent_ = sim_.every(rng_.expGap(config_.meanInterArrival), [this] {
    queue_.push_back(sim_.now());
    if (worker_ != nullptr) worker_->signal();
    sim_.reschedule(arrivalEvent_, rng_.expGap(config_.meanInterArrival));
  });
}

void WebServerApp::workerLoop(osim::Process& p) {
  if (p.terminated()) return;
  if (queue_.empty()) {
    p.waitSignal([this, &p] { workerLoop(p); });
    return;
  }
  const sim::SimTime arrivedAt = queue_.front();
  queue_.pop_front();
  const sim::SimDuration cost = rng_.expGap(config_.meanServiceCpu);
  p.compute(cost, [this, &p, arrivedAt] {
    ++served_;
    lastResponseMs_ = sim::toMillis(sim_.now() - arrivedAt);
    if (responseSensor_ != nullptr) responseSensor_->set(lastResponseMs_);
    workerLoop(p);
  });
}

std::size_t WebServerApp::instrument(distribution::PolicyAgent& agent,
                                     const std::string& application,
                                     const std::string& role) {
  auto response = std::make_shared<instrument::GaugeSensor>(
      sim_, "response_sensor", "response_time");
  auto queueLen = std::make_shared<instrument::SourceSensor>(
      sim_, "queue_sensor", "queue_length",
      [this] { return static_cast<double>(queue_.size()); });
  responseSensor_ = response.get();
  registry_.addSensor(std::move(response));
  registry_.addSensor(std::move(queueLen));

  osim::MessageQueue& queue = host_.msgQueue("qos-host-manager");
  coordinator_ = std::make_unique<instrument::Coordinator>(
      sim_, host_.name(), worker_->pid(), "WebServer", registry_,
      [&queue, pid = worker_->pid()](const instrument::ViolationReport& r) {
        return queue.send(r.serialize(), pid);
      });

  distribution::PolicyAgent::Registration reg;
  reg.pid = worker_->pid();
  reg.application = application;
  reg.executable = "WebServer";
  reg.role = role;
  reg.coordinator = coordinator_.get();
  return agent.registerProcess(reg);
}

void WebServerApp::seedModel(distribution::RepositoryService& repository) {
  repository.addSensor(policy::SensorInfo{
      "response_sensor", {"response_time"}, "responseProbe"});
  repository.addSensor(policy::SensorInfo{
      "queue_sensor", {"queue_length"}, "queueProbe"});
  policy::ExecutableInfo exec;
  exec.name = "WebServer";
  exec.path = "/opt/httpd/bin/httpd";
  exec.sensorIds = {"response_sensor", "queue_sensor"};
  repository.addExecutable(exec);
  policy::ApplicationInfo app;
  app.name = "WebService";
  app.executables = {"WebServer"};
  repository.addApplication(app);
}

std::string WebServerApp::policyText(const std::string& name,
                                     double maxMillis) {
  std::ostringstream out;
  out << "oblig " << name << " {\n"
      << "  subject (...)/WebServer/qosl_coordinator\n"
      << "  target response_sensor,queue_sensor,(...)QoSHostManager\n"
      << "  on not (response_time < " << maxMillis << ")\n"
      << "  do response_sensor->read(out response_time);\n"
      << "     queue_sensor->read(out queue_length);\n"
      << "     (...)/QoSHostManager->notify(response_time, queue_length)\n"
      << "}\n";
  return out.str();
}

}  // namespace softqos::apps
