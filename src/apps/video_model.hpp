// Repository seeding for the video application (the information-model data
// an administrator would have loaded): sensors, executable, application,
// user roles, and the Example 1 policy text.
#pragma once

#include <string>

#include "distribution/repository.hpp"

namespace softqos::apps {

/// Register the VideoApplication executable, its three sensors (frame rate,
/// jitter, communication buffer), the VideoConference application and the
/// gold/silver user roles.
void seedVideoModel(distribution::RepositoryService& repository);

/// Seed the QoS contract entries for the video testbed: the server-side
/// offer (33 ms deadline / automatic liveliness 400 ms / history 8 /
/// transient-local / strength 10) plus gold and silver requested contracts.
/// Gold asks within the offer (full admission); both carry degraded floors
/// so renegotiation under load has somewhere to go.
void seedVideoContracts(distribution::RepositoryService& repository);

/// The Example 1 obligation policy, parameterized:
///   on not (frame_rate = <target>(+<tolUp>)(-<tolDown>)
///           AND jitter_rate < <jitterMax>)
/// with the canonical do-list (read fps/jitter/buffer, notify the manager).
std::string videoPolicyText(const std::string& policyName, double targetFps,
                            double tolUp, double tolDown, double jitterMax);

/// Default Figure 3 policy: frame_rate = 28(+4)(-3), jitter < 1.25.
std::string defaultVideoPolicyText();

}  // namespace softqos::apps
