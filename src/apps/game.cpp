#include "apps/game.hpp"

#include <algorithm>
#include <sstream>

namespace softqos::apps {

GameApp::GameApp(sim::Simulation& simulation, osim::Host& host,
                 std::string name, GameConfig config)
    : sim_(simulation), host_(host), name_(std::move(name)), config_(config) {
  nextDeadline_ = sim_.now();
  proc_ = host_.spawn(name_ + "-game", [this](osim::Process& p) { tickLoop(p); });
  proc_->setWorkingSetPages(config_.workingSetPages);
}

void GameApp::tickLoop(osim::Process& p) {
  if (p.terminated()) return;
  p.compute(config_.cpuPerTick, [this, &p] {
    ++ticks_;
    if (tickSensor_ != nullptr) tickSensor_->onFrameDisplayed();
    nextDeadline_ += static_cast<sim::SimDuration>(
        static_cast<double>(sim::kSecond) / config_.targetTicksPerSecond);
    const sim::SimDuration sleep =
        std::max<sim::SimDuration>(1, nextDeadline_ - sim_.now());
    p.sleepFor(sleep, [this, &p] { tickLoop(p); });
  });
}

std::size_t GameApp::instrument(distribution::PolicyAgent& agent,
                                const std::string& application,
                                const std::string& role) {
  auto tick = std::make_shared<instrument::FrameRateSensor>(
      sim_, "tick_sensor", "tick_rate");
  tickSensor_ = tick.get();
  registry_.addSensor(std::move(tick));

  osim::MessageQueue& queue = host_.msgQueue("qos-host-manager");
  coordinator_ = std::make_unique<instrument::Coordinator>(
      sim_, host_.name(), proc_->pid(), "GameEngine", registry_,
      [&queue, pid = proc_->pid()](const instrument::ViolationReport& r) {
        return queue.send(r.serialize(), pid);
      });

  distribution::PolicyAgent::Registration reg;
  reg.pid = proc_->pid();
  reg.application = application;
  reg.executable = "GameEngine";
  reg.role = role;
  reg.coordinator = coordinator_.get();
  return agent.registerProcess(reg);
}

void GameApp::seedModel(distribution::RepositoryService& repository) {
  repository.addSensor(
      policy::SensorInfo{"tick_sensor", {"tick_rate"}, "tickProbe"});
  policy::ExecutableInfo exec;
  exec.name = "GameEngine";
  exec.path = "/opt/games/doom";
  exec.sensorIds = {"tick_sensor"};
  repository.addExecutable(exec);
  policy::ApplicationInfo app;
  app.name = "Game";
  app.executables = {"GameEngine"};
  repository.addApplication(app);
}

std::string GameApp::policyText(const std::string& name, double targetRate,
                                double tolerance) {
  std::ostringstream out;
  out << "oblig " << name << " {\n"
      << "  subject (...)/GameEngine/qosl_coordinator\n"
      << "  target tick_sensor,(...)QoSHostManager\n"
      << "  on not (tick_rate = " << targetRate << "(+" << tolerance << ")(-"
      << tolerance << "))\n"
      << "  do tick_sensor->read(out tick_rate);\n"
      << "     (...)/QoSHostManager->notify(tick_rate)\n"
      << "}\n";
  return out.str();
}

}  // namespace softqos::apps
