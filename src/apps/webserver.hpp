// An instrumented web-server-like application (Section 9 reports
// instrumenting the Apache web server): Poisson request arrivals, a
// single-threaded worker, and a response-time QoS policy.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>

#include "distribution/policy_agent.hpp"
#include "instrument/coordinator.hpp"
#include "instrument/registry.hpp"
#include "instrument/sensors.hpp"
#include "osim/host.hpp"
#include "sim/random.hpp"

namespace softqos::apps {

struct WebServerConfig {
  sim::SimDuration meanInterArrival = sim::msec(50);  // ~20 req/s
  sim::SimDuration meanServiceCpu = sim::msec(15);
  std::int64_t workingSetPages = 1024;
};

class WebServerApp {
 public:
  WebServerApp(sim::Simulation& simulation, osim::Host& host, std::string name,
               WebServerConfig config = {});
  ~WebServerApp();

  WebServerApp(const WebServerApp&) = delete;
  WebServerApp& operator=(const WebServerApp&) = delete;

  /// Attach sensors (response_time gauge, queue_length source) and register.
  std::size_t instrument(distribution::PolicyAgent& agent,
                         const std::string& application,
                         const std::string& role);

  /// Seed the repository with this app's model (executable + sensors).
  static void seedModel(distribution::RepositoryService& repository);

  /// A response-time policy: on not (response_time < maxMillis).
  static std::string policyText(const std::string& name, double maxMillis);

  void start();  // begin request arrivals
  void stop();   // stop arrivals (worker drains)

  [[nodiscard]] osim::Pid pid() const { return worker_->pid(); }
  [[nodiscard]] std::uint64_t served() const { return served_; }
  [[nodiscard]] double lastResponseMillis() const { return lastResponseMs_; }
  [[nodiscard]] std::size_t queueLength() const { return queue_.size(); }
  [[nodiscard]] instrument::Coordinator* coordinator() {
    return coordinator_.get();
  }

 private:
  void scheduleArrival();
  void workerLoop(osim::Process& p);

  sim::Simulation& sim_;
  osim::Host& host_;
  std::string name_;
  WebServerConfig config_;
  sim::RandomStream rng_;

  std::shared_ptr<osim::Process> worker_;
  std::deque<sim::SimTime> queue_;  // arrival timestamps
  sim::EventId arrivalEvent_ = sim::kInvalidEvent;

  instrument::SensorRegistry registry_;
  std::unique_ptr<instrument::Coordinator> coordinator_;
  instrument::GaugeSensor* responseSensor_ = nullptr;

  std::uint64_t served_ = 0;
  double lastResponseMs_ = 0.0;
};

}  // namespace softqos::apps
