#include "apps/testbed.hpp"

#include <algorithm>
#include <stdexcept>

#include "net/nic.hpp"
#include "obs/slo.hpp"

namespace softqos::apps {

namespace {

net::ChannelConfig channelMbit(double mbit) {
  net::ChannelConfig cfg;
  cfg.bytesPerSecond = mbit * 1e6 / 8.0;
  cfg.propagationDelay = sim::msec(1);
  cfg.queueCapacityBytes = 96 * 1024;
  return cfg;
}

}  // namespace

Testbed::Testbed(TestbedConfig config)
    : sim(config.seed),
      network(sim),
      clientHost(sim, "client-host"),
      serverHost(sim, "server-host"),
      mgmtHost(sim, "mgmt-host"),
      swA(network, "switch-a"),
      swB(network, "switch-b"),
      swC(network, "switch-c"),
      sink(network, "traffic-sink"),
      cross(network, "cross-traffic",
            net::TrafficConfig{.bytesPerSecond = 0,
                               .packetBytes = 1500,
                               .onOff = false,
                               .onMean = sim::msec(500),
                               .offMean = sim::msec(500)}),
      qorms(sim, network),
      clientLoad(clientHost, "client-load"),
      serverLoad(serverHost, "server-load"),
      config_(std::move(config)) {
  // Attach the observer before any component is constructed so manager/RPC
  // construction (which interns histogram handles) and every later event run
  // under tracing. Attaching is pure bookkeeping: no events, no RNG draws.
  if (config_.observability) observer = std::make_unique<obs::Observer>(sim);

  if (config_.parallelShards > 1) {
    if (config_.observability) {
      throw std::invalid_argument(
          "Testbed: observability and parallelShards are mutually exclusive "
          "(sharded runs take no SpanObserver)");
    }
    // One worker thread, N shards: the windowed conservative engine with the
    // exact schedule a multi-threaded run would execute, minus the data
    // races the domain manager's whole-fabric channel polling would cause.
    sim.configureParallel(
        sim::ParallelConfig{1, config_.parallelShards});
    clientShard_ = 1;
    serverShard_ = std::min<unsigned>(2, config_.parallelShards - 1);
    clientHost.setShard(clientShard_);
    serverHost.setShard(serverShard_);
  }

  net::Nic& clientNic = network.attachHost(clientHost);
  net::Nic& serverNic = network.attachHost(serverHost);
  net::Nic& mgmtNic = network.attachHost(mgmtHost);
  clientNic.setShard(clientShard_);
  serverNic.setShard(serverShard_);

  network.link(clientNic, swA, channelMbit(config_.edgeMbit));
  // The management host reaches both switches directly (a management VLAN):
  // manager-to-manager RPC must not share the experiment bottleneck, or a
  // congested fabric would make every healthy server look dead.
  network.link(mgmtNic, swA, channelMbit(config_.edgeMbit));
  network.link(mgmtNic, swB, channelMbit(config_.edgeMbit));
  network.link(serverNic, swB, channelMbit(config_.edgeMbit));
  network.link(swA, swB, channelMbit(config_.bottleneckMbit));
  if (config_.redundantPath) {
    // A longer but well-provisioned alternate route the domain manager can
    // fail over to when it diagnoses congestion on the primary link.
    network.link(swA, swC, channelMbit(config_.edgeMbit));
    network.link(swC, swB, channelMbit(config_.edgeMbit));
  }
  // Cross traffic is injected at swB and sinks behind swA, sharing the
  // server->client direction of the bottleneck with the video stream.
  network.link(cross, swB, channelMbit(config_.edgeMbit));
  network.link(sink, swA, channelMbit(config_.edgeMbit));

  if (config_.withManagers) {
    manager::HostManagerConfig hmCfg;
    hmCfg.domainManagerHost = mgmtHost.name();
    hmCfg.domainManagerPort = 7100;
    hmCfg.factTtl = config_.factTtl;
    hmCfg.escalationMaxAttempts = config_.rpcMaxAttempts;
    hmCfg.telemetryInterval = config_.telemetryInterval;
    if (config_.contractPlane) hmCfg.contractAgentHost = mgmtHost.name();
    if (config_.telemetryInterval > 0) {
      hmCfg.slos = config_.telemetrySlos.empty() ? obs::defaultManagementSlos()
                                                 : config_.telemetrySlos;
    }
    {
      // Each host manager (and its RPC plumbing + metric handles) lives on
      // its host's shard; construction-time scheduling lands there too.
      sim::ShardScope scope(sim, clientShard_);
      clientHm = &qorms.createHostManager(clientHost, hmCfg);
    }
    {
      sim::ShardScope scope(sim, serverShard_);
      serverHm = &qorms.createHostManager(serverHost, hmCfg);
    }
    manager::DomainManagerConfig dmCfg;
    dmCfg.heartbeatInterval = config_.heartbeatInterval;
    dmCfg.heartbeatMissThreshold = config_.heartbeatMissThreshold;
    dmCfg.rpcMaxAttempts = config_.rpcMaxAttempts;
    dmCfg.channelPollInterval = config_.channelPollInterval;
    dm = &qorms.createDomainManager(mgmtHost, "domain-a",
                                    {clientHost.name(), serverHost.name(),
                                     mgmtHost.name()},
                                    dmCfg);

    seedVideoModel(qorms.repository());
    qorms.admin().addPolicyText(
        videoPolicyText("NotifyQoSViolation", config_.policyTargetFps,
                        config_.policyTolUp, config_.policyTolDown,
                        config_.policyJitterMax),
        "VideoConference", "");

    if (config_.contractPlane) {
      seedVideoContracts(qorms.repository());
      // The agent's RPC endpoint seats on the management host (shard 0,
      // alongside the repository it consults).
      qorms.enableContractPlane(mgmtHost);
    }
  }

  if (config_.parallelShards > 1) {
    // Routes must be primed before the first window (lazy recompute is not
    // shard-safe) and the lookahead is the minimum propagation delay across
    // a shard boundary — with this topology, the 1 ms channel latency.
    network.primeRoutes();
    sim.setLookahead(network.minCrossShardPropagation());
  }
}

VideoSession& Testbed::startVideo(const std::string& role) {
  VideoConfig vc = config_.video;
  {
    // The session spans both hosts; place its events on the client's shard
    // (sensing and display happen there). Valid because testbed sharding is
    // single-worker: see TestbedConfig::parallelShards.
    sim::ShardScope scope(sim, clientShard_);
    video = std::make_unique<VideoSession>(sim, network, serverHost, clientHost,
                                           "video", vc);
    if (config_.withManagers) {
      video->instrument(qorms.agent(), "VideoConference", role);
    }
  }
  if (config_.withManagers) {
    dm->registerService("VideoApplication", serverHost.name(),
                        video->serverPid());
    serverHm->setRestartHandler(
        [this](osim::Pid) { return video->respawnServer(); });
  }
  if (config_.batchSensorTicks) {
    if (!sensorWheel) {
      sim::ShardScope scope(sim, clientShard_);
      sensorWheel = std::make_unique<instrument::SensorTimerWheel>(
          sim, config_.sensorWheelGranularity);
    }
    // Move every self-ticking session sensor onto the shared wheel (one
    // kernel periodic drives them all) and keep following the registry:
    // hotplugged sensors land on the wheel, departed ones release slots.
    sensorWheel->attachRegistry(video->registry());
  }
  return *video;
}

void Testbed::setCrossTraffic(double mbit) {
  if (mbit <= 0) {
    cross.stop();
    return;
  }
  cross.setRate(mbit * 1e6 / 8.0);
  if (!cross.running()) cross.start(sink.id());
}

double Testbed::measureFps(sim::SimDuration window) {
  const std::uint64_t before = video ? video->framesDisplayed() : 0;
  sim.runUntil(sim.now() + window);
  const std::uint64_t after = video ? video->framesDisplayed() : 0;
  return static_cast<double>(after - before) / sim::toSeconds(window);
}

net::Channel* Testbed::bottleneck() {
  return network.channel(swB.id(), swA.id());
}

}  // namespace softqos::apps
