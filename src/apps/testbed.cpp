#include "apps/testbed.hpp"

#include "net/nic.hpp"
#include "obs/slo.hpp"

namespace softqos::apps {

namespace {

net::ChannelConfig channelMbit(double mbit) {
  net::ChannelConfig cfg;
  cfg.bytesPerSecond = mbit * 1e6 / 8.0;
  cfg.propagationDelay = sim::msec(1);
  cfg.queueCapacityBytes = 96 * 1024;
  return cfg;
}

}  // namespace

Testbed::Testbed(TestbedConfig config)
    : sim(config.seed),
      network(sim),
      clientHost(sim, "client-host"),
      serverHost(sim, "server-host"),
      mgmtHost(sim, "mgmt-host"),
      swA(network, "switch-a"),
      swB(network, "switch-b"),
      swC(network, "switch-c"),
      sink(network, "traffic-sink"),
      cross(network, "cross-traffic",
            net::TrafficConfig{.bytesPerSecond = 0,
                               .packetBytes = 1500,
                               .onOff = false,
                               .onMean = sim::msec(500),
                               .offMean = sim::msec(500)}),
      qorms(sim, network),
      clientLoad(clientHost, "client-load"),
      serverLoad(serverHost, "server-load"),
      config_(std::move(config)) {
  // Attach the observer before any component is constructed so manager/RPC
  // construction (which interns histogram handles) and every later event run
  // under tracing. Attaching is pure bookkeeping: no events, no RNG draws.
  if (config_.observability) observer = std::make_unique<obs::Observer>(sim);

  net::Nic& clientNic = network.attachHost(clientHost);
  net::Nic& serverNic = network.attachHost(serverHost);
  net::Nic& mgmtNic = network.attachHost(mgmtHost);

  network.link(clientNic, swA, channelMbit(config_.edgeMbit));
  // The management host reaches both switches directly (a management VLAN):
  // manager-to-manager RPC must not share the experiment bottleneck, or a
  // congested fabric would make every healthy server look dead.
  network.link(mgmtNic, swA, channelMbit(config_.edgeMbit));
  network.link(mgmtNic, swB, channelMbit(config_.edgeMbit));
  network.link(serverNic, swB, channelMbit(config_.edgeMbit));
  network.link(swA, swB, channelMbit(config_.bottleneckMbit));
  if (config_.redundantPath) {
    // A longer but well-provisioned alternate route the domain manager can
    // fail over to when it diagnoses congestion on the primary link.
    network.link(swA, swC, channelMbit(config_.edgeMbit));
    network.link(swC, swB, channelMbit(config_.edgeMbit));
  }
  // Cross traffic is injected at swB and sinks behind swA, sharing the
  // server->client direction of the bottleneck with the video stream.
  network.link(cross, swB, channelMbit(config_.edgeMbit));
  network.link(sink, swA, channelMbit(config_.edgeMbit));

  if (config_.withManagers) {
    manager::HostManagerConfig hmCfg;
    hmCfg.domainManagerHost = mgmtHost.name();
    hmCfg.domainManagerPort = 7100;
    hmCfg.factTtl = config_.factTtl;
    hmCfg.escalationMaxAttempts = config_.rpcMaxAttempts;
    hmCfg.telemetryInterval = config_.telemetryInterval;
    if (config_.telemetryInterval > 0) {
      hmCfg.slos = config_.telemetrySlos.empty() ? obs::defaultManagementSlos()
                                                 : config_.telemetrySlos;
    }
    clientHm = &qorms.createHostManager(clientHost, hmCfg);
    serverHm = &qorms.createHostManager(serverHost, hmCfg);
    manager::DomainManagerConfig dmCfg;
    dmCfg.heartbeatInterval = config_.heartbeatInterval;
    dmCfg.heartbeatMissThreshold = config_.heartbeatMissThreshold;
    dmCfg.rpcMaxAttempts = config_.rpcMaxAttempts;
    dm = &qorms.createDomainManager(mgmtHost, "domain-a",
                                    {clientHost.name(), serverHost.name(),
                                     mgmtHost.name()},
                                    dmCfg);

    seedVideoModel(qorms.repository());
    qorms.admin().addPolicyText(
        videoPolicyText("NotifyQoSViolation", config_.policyTargetFps,
                        config_.policyTolUp, config_.policyTolDown,
                        config_.policyJitterMax),
        "VideoConference", "");
  }
}

VideoSession& Testbed::startVideo(const std::string& role) {
  VideoConfig vc = config_.video;
  video = std::make_unique<VideoSession>(sim, network, serverHost, clientHost,
                                         "video", vc);
  if (config_.withManagers) {
    video->instrument(qorms.agent(), "VideoConference", role);
    dm->registerService("VideoApplication", serverHost.name(),
                        video->serverPid());
    serverHm->setRestartHandler(
        [this](osim::Pid) { return video->respawnServer(); });
  }
  return *video;
}

void Testbed::setCrossTraffic(double mbit) {
  if (mbit <= 0) {
    cross.stop();
    return;
  }
  cross.setRate(mbit * 1e6 / 8.0);
  if (!cross.running()) cross.start(sink.id());
}

double Testbed::measureFps(sim::SimDuration window) {
  const std::uint64_t before = video ? video->framesDisplayed() : 0;
  sim.runUntil(sim.now() + window);
  const std::uint64_t after = video ? video->framesDisplayed() : 0;
  return static_cast<double>(after - before) / sim::toSeconds(window);
}

net::Channel* Testbed::bottleneck() {
  return network.channel(swB.id(), swA.id());
}

}  // namespace softqos::apps
