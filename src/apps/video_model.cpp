#include "apps/video_model.hpp"

#include <sstream>

namespace softqos::apps {

void seedVideoModel(distribution::RepositoryService& repository) {
  repository.addSensor(policy::SensorInfo{
      "fps_sensor", {"frame_rate"}, "frameDisplayedProbe"});
  repository.addSensor(policy::SensorInfo{
      "jitter_sensor", {"jitter_rate"}, "frameDisplayedProbe"});
  repository.addSensor(policy::SensorInfo{
      "buffer_sensor", {"buffer_size"}, "socketBufferProbe"});

  policy::ExecutableInfo exec;
  exec.name = "VideoApplication";
  exec.path = "/opt/video/bin/vplay";
  exec.sensorIds = {"fps_sensor", "jitter_sensor", "buffer_sensor"};
  repository.addExecutable(exec);

  policy::ApplicationInfo app;
  app.name = "VideoConference";
  app.executables = {"VideoApplication"};
  repository.addApplication(app);

  repository.addRole(policy::UserRole{"gold", 3});
  repository.addRole(policy::UserRole{"silver", 1});
}

void seedVideoContracts(distribution::RepositoryService& repository) {
  {
    policy::ContractSpec offer;
    offer.name = "video-server-offer";
    offer.executable = "VideoApplication";
    offer.hasOffer = true;
    offer.offer = policy::parseQosOffer(
        "deadline=33ms liveliness=automatic:400ms history=8 "
        "durability=transient_local strength=10");
    offer.deadlineAttribute = "frame_rate";
    repository.addContract(offer);
  }
  {
    policy::ContractSpec gold;
    gold.name = "video-gold-request";
    gold.application = "VideoConference";
    gold.userRole = "gold";
    gold.hasRequest = true;
    gold.request = policy::parseQosRequest(
        "deadline<=36ms lease<=500ms history>=4 durability>=transient_local "
        "degrade-deadline<=80ms degrade-history>=1");
    gold.deadlineAttribute = "frame_rate";
    repository.addContract(gold);
  }
  {
    policy::ContractSpec silver;
    silver.name = "video-silver-request";
    silver.application = "VideoConference";
    silver.userRole = "silver";
    silver.hasRequest = true;
    silver.request = policy::parseQosRequest(
        "deadline<=40ms degrade-deadline<=100ms degrade-history>=1");
    silver.deadlineAttribute = "frame_rate";
    repository.addContract(silver);
  }
}

std::string videoPolicyText(const std::string& policyName, double targetFps,
                            double tolUp, double tolDown, double jitterMax) {
  std::ostringstream out;
  out << "oblig " << policyName << " {\n"
      << "  subject (...)/VideoApplication/qosl_coordinator\n"
      << "  target fps_sensor,jitter_sensor,buffer_sensor,(...)QoSHostManager\n"
      << "  on not (frame_rate = " << targetFps << "(+" << tolUp << ")(-"
      << tolDown << ") AND jitter_rate < " << jitterMax << ")\n"
      << "  do fps_sensor->read(out frame_rate);\n"
      << "     jitter_sensor->read(out jitter_rate);\n"
      << "     buffer_sensor->read(out buffer_size);\n"
      << "     (...)/QoSHostManager->notify(frame_rate, jitter_rate, "
         "buffer_size)\n"
      << "}\n";
  return out.str();
}

std::string defaultVideoPolicyText() {
  return videoPolicyText("NotifyQoSViolation", 28.0, 4.0, 3.0, 1.25);
}

}  // namespace softqos::apps
