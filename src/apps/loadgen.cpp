#include "apps/loadgen.hpp"

namespace softqos::apps {

CpuLoadGenerator::CpuLoadGenerator(osim::Host& host, std::string namePrefix)
    : host_(host), prefix_(std::move(namePrefix)) {}

void CpuLoadGenerator::spin(osim::Process& p) {
  if (p.terminated()) return;
  // Always-runnable batch work: consume CPU in 50ms chunks forever.
  p.compute(sim::msec(50), [&p] { spin(p); });
}

namespace {

// ~75% duty cycle with short sleeps: stays interactive (slpret-boosted).
void interactiveSpin(osim::Process& p) {
  if (p.terminated()) return;
  p.compute(sim::msec(25), [&p] {
    p.sleepFor(sim::msec(8), [&p] { interactiveSpin(p); });
  });
}

}  // namespace

void CpuLoadGenerator::addInteractiveWorkers(int count) {
  for (int i = 0; i < count; ++i) {
    ++spawned_;
    pool_.push_back(host_.spawn(prefix_ + "-i" + std::to_string(spawned_),
                                [](osim::Process& p) { interactiveSpin(p); }));
  }
}

void CpuLoadGenerator::setWorkers(int count) {
  if (count < 0) count = 0;
  while (workers() < count) {
    ++spawned_;
    pool_.push_back(host_.spawn(prefix_ + "-" + std::to_string(spawned_),
                                [](osim::Process& p) { spin(p); }));
  }
  if (workers() > count) {
    int excess = workers() - count;
    for (auto it = pool_.rbegin(); it != pool_.rend() && excess > 0; ++it) {
      if (!(*it)->terminated()) {
        host_.kill((*it)->pid());
        --excess;
      }
    }
  }
}

int CpuLoadGenerator::workers() const {
  int n = 0;
  for (const auto& p : pool_) {
    if (!p->terminated()) ++n;
  }
  return n;
}

sim::SimDuration CpuLoadGenerator::cpuConsumed() const {
  sim::SimDuration total = 0;
  for (const auto& p : pool_) total += p->cpuTime();
  return total;
}

namespace {

// Touch memory continuously but gently (low CPU demand).
void hogLoop(osim::Process& p) {
  if (p.terminated()) return;
  p.compute(sim::msec(5), [&p] {
    p.sleepFor(sim::msec(45), [&p] { hogLoop(p); });
  });
}

}  // namespace

MemoryHog::MemoryHog(osim::Host& host, std::int64_t workingSetPages,
                     std::string name) {
  proc_ = host.spawn(std::move(name), [](osim::Process& p) { hogLoop(p); });
  proc_->setWorkingSetPages(workingSetPages);
}

void MemoryHog::stop() {
  if (proc_ != nullptr && !proc_->terminated()) {
    proc_->host().kill(proc_->pid());
  }
}

}  // namespace softqos::apps
