// The canonical two-host testbed used by the examples, integration tests and
// benchmarks: a video client host and a video server host joined by two
// switches, a management host seating the QoS Domain Manager, competing CPU
// load on the client, and optional cross traffic congesting the inter-switch
// link.
//
//   clientHost --- swA ========== swB --- serverHost
//       |           |  (bottleneck)  |
//   mgmtHost -------+            sink/cross
#pragma once

#include <memory>
#include <string>

#include "apps/loadgen.hpp"
#include "apps/video.hpp"
#include "apps/video_model.hpp"
#include "distribution/qorms.hpp"
#include "instrument/timer_wheel.hpp"
#include "net/switch.hpp"
#include "net/traffic.hpp"
#include "obs/observer.hpp"
#include "obs/slo.hpp"

namespace softqos::apps {

struct TestbedConfig {
  std::uint64_t seed = 1;
  double bottleneckMbit = 10.0;   // inter-switch link
  double edgeMbit = 100.0;        // host access links
  bool redundantPath = false;     // add swC as an alternate swA<->swB route
  VideoConfig video;
  bool withManagers = true;       // false: "normal Solaris scheduling"
  double policyTargetFps = 28.0;
  double policyTolUp = 4.0;
  double policyTolDown = 3.0;
  double policyJitterMax = 1.25;
  // Self-healing knobs for chaos experiments. All default off/single-shot so
  // a testbed without them behaves byte-identically to earlier builds.
  sim::SimDuration heartbeatInterval = 0;  // DM liveness probing (0 = off)
  int heartbeatMissThreshold = 3;
  sim::SimDuration factTtl = 0;            // HM stale-fact expiry (0 = off)
  int rpcMaxAttempts = 1;                  // management-RPC retry budget
  /// Attach an obs::Observer to the simulation: end-to-end causal tracing of
  /// detection -> diagnosis -> actuation -> recovery chains plus kernel
  /// profiling histograms. Off by default — a testbed without it runs
  /// byte-identically to earlier builds.
  bool observability = false;
  /// Arm streaming self-telemetry on both host managers: windowed rollups of
  /// the management plane's own behaviour, published to the domain manager
  /// each interval and guarded by obs::defaultManagementSlos(). 0 (default)
  /// keeps runs byte-identical to earlier builds.
  sim::SimDuration telemetryInterval = 0;
  /// Override the objectives armed with telemetry (empty: the defaults).
  std::vector<obs::SloObjective> telemetrySlos;
  /// Shard the testbed across `parallelShards` event queues driven by the
  /// windowed conservative engine (shard 0: management host + switch fabric;
  /// shard 1: client host world; shard 2: server host world). 1 (default)
  /// keeps the historical serial kernel, byte-identical to earlier builds.
  /// This two-host video testbed keeps its windows on a single worker
  /// thread regardless of shard count: the server's session loop runs on
  /// the client's shard by construction (see VideoSession), so its shards
  /// are not worker-clean. Multi-threaded execution lives in the City
  /// testbed (apps/city.hpp), whose host-local workloads are; channel
  /// polling is shard-safe everywhere via channelPollInterval.
  unsigned parallelShards = 1;
  /// Sample channel utilization through the shard-safe ChannelMonitor on
  /// this period instead of the domain manager's inline fabric sweep. 0
  /// (default) keeps the legacy sweep, byte-identical runs.
  sim::SimDuration channelPollInterval = 0;
  /// Arm the QoS contract plane: seed the video offer/request contracts,
  /// run requested-vs-offered admission in the policy agent (its
  /// "renegotiate" RPC seats on the management host, port 7200), push the
  /// contract rules to both host managers and let rules renegotiate session
  /// tiers under load. Off by default — byte-identical to earlier builds.
  bool contractPlane = false;
  /// Batch each video session's sensor ticks onto one SensorTimerWheel
  /// (one kernel periodic driving all sensors) instead of one periodic per
  /// sensor. Off by default — byte-identical to earlier builds.
  bool batchSensorTicks = false;
  sim::SimDuration sensorWheelGranularity = sim::msec(50);
};

class Testbed {
 public:
  explicit Testbed(TestbedConfig config = {});

  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  // Exposed plumbing (constructed in this order).
  sim::Simulation sim;
  net::Network network;
  osim::Host clientHost;
  osim::Host serverHost;
  osim::Host mgmtHost;
  net::Switch swA;
  net::Switch swB;
  net::Switch swC;  // only linked when config.redundantPath
  net::TrafficSink sink;
  net::TrafficSource cross;
  distribution::Qorms qorms;
  CpuLoadGenerator clientLoad;
  CpuLoadGenerator serverLoad;

  manager::QoSHostManager* clientHm = nullptr;  // set when withManagers
  manager::QoSHostManager* serverHm = nullptr;
  manager::QoSDomainManager* dm = nullptr;
  std::unique_ptr<VideoSession> video;
  /// Non-null when config.observability; attached to `sim` for its lifetime.
  std::unique_ptr<obs::Observer> observer;
  /// Non-null when config.batchSensorTicks and a video session was started.
  std::unique_ptr<instrument::SensorTimerWheel> sensorWheel;

  [[nodiscard]] const TestbedConfig& config() const { return config_; }

  /// Create the video session (and, with managers enabled, instrument it and
  /// register the service binding with the domain manager).
  VideoSession& startVideo(const std::string& role = "silver");

  /// Congest the bottleneck with cross traffic at `mbit` (0 stops it).
  void setCrossTraffic(double mbit);

  /// Run the simulation for `window` and return the client's delivered
  /// frames/second over that window.
  double measureFps(sim::SimDuration window);

  /// The bottleneck channel in the server->client direction.
  [[nodiscard]] net::Channel* bottleneck();

  /// Shards the host worlds landed on (0 when not sharded).
  [[nodiscard]] sim::ShardId clientShard() const { return clientShard_; }
  [[nodiscard]] sim::ShardId serverShard() const { return serverShard_; }

 private:
  TestbedConfig config_;
  sim::ShardId clientShard_ = 0;
  sim::ShardId serverShard_ = 0;
};

}  // namespace softqos::apps
