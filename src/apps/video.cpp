#include "apps/video.hpp"

#include <algorithm>
#include <cmath>

namespace softqos::apps {

VideoSession::VideoSession(sim::Simulation& simulation, net::Network& network,
                           osim::Host& serverHost, osim::Host& clientHost,
                           std::string name, VideoConfig config)
    : sim_(simulation),
      network_(network),
      serverHost_(serverHost),
      clientHost_(clientHost),
      name_(std::move(name)),
      config_(config),
      rng_(simulation.stream("video:" + name_)) {
  serverSock_ = serverHost_.createSocket(config_.socketCapacityBytes);
  clientSock_ = clientHost_.createSocket(config_.socketCapacityBytes);
  network_.connect(serverSock_, serverHost_, config_.serverPort, clientSock_,
                   clientHost_, config_.clientPort);

  client_ = clientHost_.spawn(name_ + "-client",
                              [this](osim::Process& p) { clientLoop(p); });
  client_->setWorkingSetPages(config_.clientWorkingSetPages);
  startServer();
}

VideoSession::~VideoSession() = default;

void VideoSession::startServer() {
  nextDeadline_ = sim_.now();
  server_ = serverHost_.spawn(name_ + "-server",
                              [this](osim::Process& p) { serverLoop(p); });
}

std::int64_t VideoSession::nextFrameBytes() {
  // 12-frame GOP: I B B P B B P B B P B B, sized relative to the mean.
  static constexpr double kPattern[12] = {2.5, 0.6, 0.6, 1.2, 0.6, 0.6,
                                          1.2, 0.6, 0.6, 1.2, 0.6, 0.6};
  const double scale = kPattern[frameIndex_ % 12];
  const double noisy = scale * rng_.uniform(0.9, 1.1);
  return std::max<std::int64_t>(
      256, static_cast<std::int64_t>(
               noisy * static_cast<double>(config_.meanFrameBytes)));
}

sim::SimDuration VideoSession::decodeCost(std::int64_t bytes) const {
  sim::SimDuration cost = config_.decodeBase + config_.decodePerKiB * bytes / 1024;
  // Overload adaptation: reduced quality levels decode proportionally
  // cheaper (coarser inverse quantization / skipped enhancement passes).
  if (quality_ != nullptr) {
    switch (quality_->level()) {
      case 1: cost = cost * 65 / 100; break;
      case 0: cost = cost * 40 / 100; break;
      default: break;
    }
  }
  return cost;
}

void VideoSession::serverLoop(osim::Process& p) {
  if (p.terminated()) return;
  const std::int64_t bytes = nextFrameBytes();
  const std::uint64_t seq = ++frameIndex_;
  p.compute(config_.serverCpuPerFrame, [this, &p, bytes, seq] {
    osim::Message m;
    m.kind = "frame";
    m.seq = seq;
    m.bytes = bytes;
    serverSock_->send(std::move(m));
    ++framesSent_;

    const auto interval = static_cast<sim::SimDuration>(
        static_cast<double>(sim::kSecond) / config_.sourceFps);
    const auto jitterSpan =
        static_cast<sim::SimDuration>(interval * config_.sendJitterFraction);
    nextDeadline_ += interval + (jitterSpan > 0
                                     ? rng_.uniformInt(-jitterSpan, jitterSpan)
                                     : 0);
    const sim::SimDuration sleep =
        std::max<sim::SimDuration>(1, nextDeadline_ - sim_.now());
    p.sleepFor(sleep, [this, &p] { serverLoop(p); });
  });
}

sim::SimDuration VideoSession::frameInterval() const {
  return static_cast<sim::SimDuration>(static_cast<double>(sim::kSecond) /
                                       config_.sourceFps);
}

sim::SimTime VideoSession::presentationTime(std::uint64_t seq) const {
  return playbackOffset_ +
         static_cast<sim::SimTime>(seq) * frameInterval();
}

void VideoSession::clientLoop(osim::Process& p) {
  if (p.terminated()) return;
  clientSock_->recv(p, [this, &p](osim::Message m) {
    if (m.kind == "eof") {
      p.exitProcess();
      return;
    }
    const std::uint64_t seq = m.seq;
    if (playbackAnchored_) {
      const sim::SimTime lateness = sim_.now() - presentationTime(seq);
      // A sustained run of skips means the whole schedule is stale (an
      // outage or a deep kernel-buffer backlog): re-anchor the playback
      // clock at the next decoded frame. Individual late frames are skipped
      // with a cheap parse — that is also how a full receive buffer drains
      // faster than the arrival rate.
      if (consecutiveSkips_ >= config_.reanchorAfterSkips) {
        playbackAnchored_ = false;
        consecutiveSkips_ = 0;
      } else if (lateness > config_.lateDropIntervals * frameInterval()) {
        ++framesSkipped_;
        ++consecutiveSkips_;
        p.compute(config_.skipCost, [this, &p] { clientLoop(p); });
        return;
      } else {
        consecutiveSkips_ = 0;
      }
    }
    // Retrieve -> decode -> display at the presentation time (Example 2's
    // probe fires after display).
    p.compute(decodeCost(m.bytes), [this, &p, seq] {
      if (!playbackAnchored_) {
        playbackAnchored_ = true;
        playbackOffset_ = sim_.now() -
                          static_cast<sim::SimTime>(seq) * frameInterval() +
                          config_.startupDelayIntervals * frameInterval();
      }
      const sim::SimTime due = presentationTime(seq);
      if (sim_.now() < due) {
        p.sleepFor(due - sim_.now(), [this, &p, seq] { displayFrame(p, seq); });
      } else {
        displayFrame(p, seq);
      }
    });
  });
}

void VideoSession::displayFrame(osim::Process& p, std::uint64_t /*seq*/) {
  ++framesDisplayed_;
  if (fps_ != nullptr) fps_->onFrameDisplayed();
  if (jitter_ != nullptr) jitter_->onFrameDisplayed();
  clientLoop(p);
}

std::size_t VideoSession::instrument(distribution::PolicyAgent& agent,
                                     const std::string& application,
                                     const std::string& role) {
  const auto nominalGap = static_cast<sim::SimDuration>(
      static_cast<double>(sim::kSecond) / config_.sourceFps);

  // A 2-second window smooths frame-boundary quantization (a 1-second window
  // counts 29..31 frames for a perfectly healthy 30fps stream).
  auto fps = std::make_shared<instrument::FrameRateSensor>(
      sim_, "fps_sensor", "frame_rate", sim::sec(2));
  auto jitter = std::make_shared<instrument::JitterSensor>(
      sim_, "jitter_sensor", "jitter_rate", nominalGap);
  std::shared_ptr<instrument::SourceSensor> buffer =
      instrument::makeBufferLengthSensor(sim_, "buffer_sensor", "buffer_size",
                                         clientSock_);
  fps_ = fps.get();
  jitter_ = jitter.get();
  registry_.addSensor(std::move(fps));
  registry_.addSensor(std::move(jitter));
  registry_.addSensor(std::move(buffer));

  auto quality = std::make_shared<instrument::QualityLevelActuator>(
      "quality", 0, 2, 2);
  quality_ = quality.get();
  registry_.addActuator(std::move(quality));

  // All knowledge of the QoS Host Manager stays inside the coordinator: the
  // notify hook is the manager's message queue on the client host.
  osim::MessageQueue& queue = clientHost_.msgQueue("qos-host-manager");
  coordinator_ = std::make_unique<instrument::Coordinator>(
      sim_, clientHost_.name(), client_->pid(), "VideoApplication", registry_,
      [&queue, pid = client_->pid()](const instrument::ViolationReport& r) {
        return queue.send(r.serialize(), pid);
      });

  distribution::PolicyAgent::Registration reg;
  reg.pid = client_->pid();
  reg.application = application;
  reg.executable = "VideoApplication";
  reg.role = role;
  reg.coordinator = coordinator_.get();
  reg.hostName = clientHost_.name();

  // Manager -> process control channel (adaptation, run-time retuning).
  coordinator_->attachControlQueue(
      clientHost_.msgQueue(instrument::controlQueueKey(client_->pid())));

  return agent.registerProcess(reg);
}

bool VideoSession::killServer() {
  if (server_ == nullptr || server_->terminated()) return false;
  return serverHost_.kill(server_->pid());
}

osim::Pid VideoSession::respawnServer() {
  if (server_ != nullptr && !server_->terminated()) return server_->pid();
  startServer();
  return server_->pid();
}

}  // namespace softqos::apps
