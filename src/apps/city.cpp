#include "apps/city.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "instrument/report.hpp"
#include "net/nic.hpp"
#include "obs/slo.hpp"
#include "policy/qos_contract.hpp"

namespace softqos::apps {

namespace {

net::ChannelConfig channelMbit(double mbit) {
  net::ChannelConfig cfg;
  cfg.bytesPerSecond = mbit * 1e6 / 8.0;
  cfg.propagationDelay = sim::msec(1);
  cfg.queueCapacityBytes = 96 * 1024;
  return cfg;
}

std::string pad2(int v) {
  return (v < 10 ? "0" : "") + std::to_string(v);
}

/// Light duty-cycle workload: enough CPU demand to move the load average
/// and exercise the scheduler without swamping the event budget.
void dutySpin(osim::Process& p) {
  if (p.terminated()) return;
  p.compute(sim::msec(2), [&p] {
    p.sleepFor(sim::msec(48), [&p] { dutySpin(p); });
  });
}

/// Receiver port for the paced intra-rack traffic. Deliberately unbound:
/// the payload exists to load the channels (and the NIC counts the drop),
/// not to reach an application.
constexpr int kTrafficPort = 9900;

/// Camera daemon for the contract plane: stays alive so liveliness probes
/// (which ask the host manager whether the pid still runs) succeed until a
/// fault kills the host.
void camIdle(osim::Process& p) {
  if (p.terminated()) return;
  p.sleepFor(sim::sec(1), [&p] { camIdle(p); });
}

}  // namespace

std::string City::hostName(int rack, int i) {
  return "h" + pad2(rack) + "-" + pad2(i);
}

std::string City::rackSeatName(int rack) { return "rdm-" + pad2(rack) + "-host"; }

std::string City::clusterSeatName(int cluster) {
  return "cdm-" + pad2(cluster) + "-host";
}

net::ShardPlanner City::affinityGraph(const CityConfig& config) {
  net::ShardPlanner planner;
  // The management plane (switch fabric, manager seats, their RPC endpoints)
  // is pinned to shard 0; its stand-in node carries roughly one rack's worth
  // of load so the packer keeps workload hosts off that shard.
  planner.addNode("@management",
                  static_cast<double>(config.racks * config.processesPerHost));
  planner.pin("@management", 0);
  const double trafficWeight =
      config.trafficInterval > 0
          ? static_cast<double>(config.trafficBytes) /
                sim::toSeconds(config.trafficInterval)
          : 0.0;
  for (int r = 0; r < config.racks; ++r) {
    for (int i = 0; i < config.hostsPerRack; ++i) {
      planner.addNode(hostName(r, i),
                      static_cast<double>(config.processesPerHost));
      if (trafficWeight > 0 && config.hostsPerRack > 1) {
        planner.addEdge(hostName(r, i),
                        hostName(r, (i + 1) % config.hostsPerRack),
                        trafficWeight);
      }
    }
  }
  return planner;
}

City::City(CityConfig config)
    : sim(config.seed), network(sim), qorms(sim, network),
      config_(std::move(config)) {
  if (config_.racks < 1 || config_.hostsPerRack < 1 ||
      config_.processesPerHost < 1) {
    throw std::invalid_argument("City: racks/hosts/processes must be >= 1");
  }
  if (config_.tiers != 2 && config_.tiers != 3) {
    throw std::invalid_argument("City: tiers must be 2 or 3");
  }
  if (config_.tiers == 3 && config_.racksPerCluster < 1) {
    throw std::invalid_argument("City: racksPerCluster must be >= 1");
  }
  // Attach before anything is built so manager construction and every later
  // event run under sampling. Attaching is pure bookkeeping — no events, no
  // RNG draws — and the sampler is shard-safe, so it stays attached through
  // multi-worker windowed runs.
  if (config_.sampling) {
    sampler = std::make_unique<obs::TraceSampler>(sim, config_.samplerConfig);
  }
  if (config_.shards > 0) {
    if (config_.shards < 2) {
      throw std::invalid_argument("City: sharded runs need >= 2 shards");
    }
    if (config_.workers < 1 || config_.shards % config_.workers != 0) {
      throw std::invalid_argument("City: workers must divide shards");
    }
    // The shard count is the schedule; workers only drive it. Keeping the
    // total fixed while workers vary is what makes thread counts comparable
    // (and byte-identical).
    sim.configureParallel(sim::ParallelConfig{
        config_.workers, config_.shards / config_.workers});

    if (config_.usePlanner) {
      plan_ = affinityGraph(config_).plan(
          net::ShardPlanConfig{config_.shards, 1.25});
    } else {
      // Hand placement baseline: round-robin over the non-management shards,
      // ignoring traffic affinity. Cross-shard weight is computed over the
      // same edge set so the two layouts are directly comparable.
      plan_.assignment.emplace("@management", 0);
      const unsigned spread = config_.shards - 1;
      int k = 0;
      for (int r = 0; r < config_.racks; ++r) {
        for (int i = 0; i < config_.hostsPerRack; ++i, ++k) {
          plan_.assignment.emplace(
              hostName(r, i),
              static_cast<sim::ShardId>(1 + (k % spread)));
        }
      }
      const double trafficWeight =
          config_.trafficInterval > 0
              ? static_cast<double>(config_.trafficBytes) /
                    sim::toSeconds(config_.trafficInterval)
              : 0.0;
      if (trafficWeight > 0 && config_.hostsPerRack > 1) {
        for (int r = 0; r < config_.racks; ++r) {
          for (int i = 0; i < config_.hostsPerRack; ++i) {
            plan_.totalEdgeWeight += trafficWeight;
            if (plan_.shardOf(hostName(r, i)) !=
                plan_.shardOf(hostName(r, (i + 1) % config_.hostsPerRack))) {
              plan_.crossShardWeight += trafficWeight;
            }
          }
        }
        if (config_.hostsPerRack == 2) {
          // The two ring directions are one undirected edge.
          plan_.totalEdgeWeight /= 2;
          plan_.crossShardWeight /= 2;
        }
      }
    }
  }

  buildTopology();
  buildManagers();
  startWorkloads();
  if (config_.contractPlane) startContractPlane();

  network.primeRoutes();
  if (config_.shards > 0) {
    sim.setLookahead(network.minCrossShardPropagation());
  }
}

void City::buildTopology() {
  const int clusters =
      config_.tiers == 3
          ? (config_.racks + config_.racksPerCluster - 1) /
                config_.racksPerCluster
          : 0;

  for (int r = 0; r < config_.racks; ++r) {
    for (int i = 0; i < config_.hostsPerRack; ++i) {
      const sim::ShardId shard = plan_.shardOf(hostName(r, i));
      sim::ShardScope scope(sim, shard);
      hosts_.push_back(std::make_unique<osim::Host>(sim, hostName(r, i)));
      hosts_.back()->setShard(shard);
    }
  }
  // Seats in rack, cluster, root order — all management, all shard 0.
  for (int r = 0; r < config_.racks; ++r) {
    seats_.push_back(std::make_unique<osim::Host>(sim, rackSeatName(r)));
  }
  for (int c = 0; c < clusters; ++c) {
    seats_.push_back(std::make_unique<osim::Host>(sim, clusterSeatName(c)));
  }
  seats_.push_back(std::make_unique<osim::Host>(sim, "root-host"));

  for (int r = 0; r < config_.racks; ++r) {
    tors_.push_back(std::make_unique<net::Switch>(network, "tor-" + pad2(r)));
  }
  for (int c = 0; c < clusters; ++c) {
    aggs_.push_back(std::make_unique<net::Switch>(network, "agg-" + pad2(c)));
  }
  core_ = std::make_unique<net::Switch>(network, "core");

  for (std::size_t h = 0; h < hosts_.size(); ++h) {
    net::Nic& nic = network.attachHost(*hosts_[h]);
    nic.setShard(hosts_[h]->shard());
    network.link(nic, *tors_[h / static_cast<std::size_t>(config_.hostsPerRack)],
                 channelMbit(config_.edgeMbit));
  }
  for (int r = 0; r < config_.racks; ++r) {
    net::Nic& nic = network.attachHost(*seats_[static_cast<std::size_t>(r)]);
    network.link(nic, *tors_[static_cast<std::size_t>(r)],
                 channelMbit(config_.edgeMbit));
  }
  if (config_.tiers == 3) {
    for (int r = 0; r < config_.racks; ++r) {
      network.link(*tors_[static_cast<std::size_t>(r)],
                   *aggs_[static_cast<std::size_t>(r / config_.racksPerCluster)],
                   channelMbit(config_.uplinkMbit));
    }
    for (int c = 0; c < clusters; ++c) {
      net::Nic& nic = network.attachHost(
          *seats_[static_cast<std::size_t>(config_.racks + c)]);
      network.link(nic, *aggs_[static_cast<std::size_t>(c)],
                   channelMbit(config_.edgeMbit));
      network.link(*aggs_[static_cast<std::size_t>(c)], *core_,
                   channelMbit(config_.uplinkMbit));
    }
  } else {
    for (int r = 0; r < config_.racks; ++r) {
      network.link(*tors_[static_cast<std::size_t>(r)], *core_,
                   channelMbit(config_.uplinkMbit));
    }
  }
  net::Nic& rootNic = network.attachHost(*seats_.back());
  network.link(rootNic, *core_, channelMbit(config_.edgeMbit));
}

void City::buildManagers() {
  const int clusters = static_cast<int>(aggs_.size());

  manager::HostManagerConfig hmCfg;
  hmCfg.partitionByApplication = config_.partitionWorkingMemory;
  hmCfg.telemetryInterval = config_.telemetryInterval;
  if (config_.telemetryInterval > 0) hmCfg.slos = obs::defaultManagementSlos();
  // Contract sessions are probed through their host's manager, so every
  // manager must know the agent's seat at construction time.
  if (config_.contractPlane) hmCfg.contractAgentHost = "root-host";
  for (std::size_t h = 0; h < hosts_.size(); ++h) {
    const int rack = static_cast<int>(h) / config_.hostsPerRack;
    hmCfg.domainManagerHost = rackSeatName(rack);
    sim::ShardScope scope(sim, hosts_[h]->shard());
    hms_.push_back(&qorms.createHostManager(*hosts_[h], hmCfg));
  }

  // Rack managers: diagnose locally, aggregate upward, sample the channels
  // through the shard-safe monitor. Leaf alarms may climb tiers-1 hops.
  for (int r = 0; r < config_.racks; ++r) {
    manager::DomainManagerConfig dmCfg;
    dmCfg.aggregationInterval = config_.aggregationInterval;
    dmCfg.maxEscalationHops = config_.tiers - 1;
    dmCfg.channelPollInterval = config_.channelPollInterval;
    dmCfg.parentHost = config_.tiers == 3
                           ? clusterSeatName(r / config_.racksPerCluster)
                           : std::string("root-host");
    std::vector<std::string> managed;
    for (int i = 0; i < config_.hostsPerRack; ++i) {
      managed.push_back(hostName(r, i));
    }
    managed.push_back(rackSeatName(r));
    rackDms_.push_back(&qorms.createDomainManager(
        *seats_[static_cast<std::size_t>(r)], "rack-" + pad2(r), managed,
        dmCfg));
  }
  if (config_.tiers == 3) {
    for (int c = 0; c < clusters; ++c) {
      manager::DomainManagerConfig dmCfg;
      dmCfg.aggregationInterval = config_.aggregationInterval;
      dmCfg.maxEscalationHops = config_.tiers - 1;
      dmCfg.parentHost = "root-host";
      clusterDms_.push_back(&qorms.createDomainManager(
          *seats_[static_cast<std::size_t>(config_.racks + c)],
          "cluster-" + pad2(c), {}, dmCfg));
    }
  }
  rootDm_ = &qorms.createDomainManager(*seats_.back(), "root", {}, {});
}

void City::startWorkloads() {
  const std::size_t drivers = hosts_.size() *
                              static_cast<std::size_t>(config_.processesPerHost);
  violated_.assign(drivers, 0);
  episodeCtx_.assign(drivers, sim::TraceContext{});
  pids_.reserve(drivers);
  streams_.reserve(hosts_.size());

  for (std::size_t h = 0; h < hosts_.size(); ++h) {
    streams_.push_back(std::make_unique<sim::RandomStream>(
        sim.stream("city:" + hosts_[h]->name())));
    sim::ShardScope scope(sim, hosts_[h]->shard());
    for (int p = 0; p < config_.processesPerHost; ++p) {
      const std::size_t idx =
          h * static_cast<std::size_t>(config_.processesPerHost) +
          static_cast<std::size_t>(p);
      auto proc = hosts_[h]->spawn(
          (p % 2 == 0 ? "web-" : "vid-") + std::to_string(p),
          [](osim::Process& pr) { dutySpin(pr); });
      pids_.push_back(proc->pid());
      // Distinct per-driver phases keep simultaneous arrivals at shared
      // managers apart, so event order is fixed by timestamps alone — the
      // property that lets a sharded run replay the serial kernel exactly.
      sim.at(config_.reportInterval + sim::usec(131 * (idx + 1)),
             [this, idx] { reportTick(idx); });
    }
    if (config_.trafficInterval > 0 && config_.hostsPerRack > 1) {
      const int rack = static_cast<int>(h) / config_.hostsPerRack;
      const int i = static_cast<int>(h) % config_.hostsPerRack;
      sim.at(config_.trafficInterval + sim::usec(53 * (h + 1) + 11),
             [this, rack, i] { trafficTick(rack, i); });
    }
  }
}

void City::reportTick(std::size_t idx) {
  const std::size_t h = idx / static_cast<std::size_t>(config_.processesPerHost);
  const int p = static_cast<int>(idx %
                                 static_cast<std::size_t>(config_.processesPerHost));
  sim::RandomStream& rng = *streams_[h];

  // Coordinator semantics: reports carry *transitions* only. The draw
  // happens every tick regardless of outcome so the stream stays aligned.
  const bool flip = rng.chance(violated_[idx] ? 0.5 : 0.25);
  const double metric = rng.uniform(0.0, 1.0);
  if (flip) {
    violated_[idx] = violated_[idx] ? 0 : 1;
    instrument::ViolationReport report;
    report.policyId = "NotifyQoSViolation";
    report.pid = static_cast<std::uint32_t>(pids_[idx]);
    report.hostName = hosts_[h]->name();
    report.executable = p % 2 == 0 ? "WebServer" : "VideoPlayer";
    report.userRole = p % 2 == 0 ? "silver" : "gold";
    report.violated = violated_[idx] != 0;
    report.metrics.emplace_back(
        "frame_rate", report.violated ? 18.0 + 8.0 * metric : 28.0 + 6.0 * metric);
    // Causal tracing (sampling on): the driver plays the coordinator's part,
    // opening an episode trace at the violation and closing it at the clear.
    // Everything the managers do with the report — diagnosis, rule firings,
    // actuations, escalation into the domain tree — nests under it via
    // report.context, exactly like the two-host testbed's episodes.
    sim::SpanObserver* o = sim.observer();
    if (o != nullptr) {
      if (report.violated) {
        episodeCtx_[idx] =
            o->beginTrace(sim.now(), "episode:frame_rate", hosts_[h]->name());
        o->annotate(episodeCtx_[idx], "pid", std::to_string(report.pid));
        o->instant(sim.now(), episodeCtx_[idx], "violation",
                   hosts_[h]->name());
      } else if (episodeCtx_[idx].valid()) {
        o->instant(sim.now(), episodeCtx_[idx], "recovered",
                   hosts_[h]->name());
      }
      report.context = episodeCtx_[idx];
    }
    hms_[h]->handleReport(report);
    if (o != nullptr && !report.violated && episodeCtx_[idx].valid()) {
      o->endSpan(sim.now(), episodeCtx_[idx]);
      episodeCtx_[idx] = sim::TraceContext{};
    }
  }
  sim.after(config_.reportInterval, [this, idx] { reportTick(idx); });
}

void City::trafficTick(int rack, int i) {
  osim::Message m;
  m.kind = "pay";
  m.bytes = config_.trafficBytes;
  network.sendToHost(hostName(rack, i),
                     hostName(rack, (i + 1) % config_.hostsPerRack),
                     kTrafficPort, std::move(m));
  sim.after(config_.trafficInterval, [this, rack, i] { trafficTick(rack, i); });
}

std::uint64_t City::run(sim::SimDuration span) {
  const std::uint64_t executed = sim.runUntil(sim.now() + span);
  // The flush point is a sim time (now), identical at every shard and
  // worker count, so the sampler resolves the same retained set everywhere.
  if (sampler) sampler->flush();
  return executed;
}

void City::finishSampling() {
  if (sampler) sampler->finalFlush();
}

void City::startContractPlane() {
  flightRecorder = std::make_unique<obs::FlightRecorder>(sim);
  qorms.agent().setFlightRecorder(flightRecorder.get());

  distribution::RepositoryService& repo = qorms.repository();
  repo.addExecutable(policy::ExecutableInfo{"CamFeed", "/opt/cam/feed", {}});
  repo.addApplication(policy::ApplicationInfo{"CityCam", {"CamFeed"}});
  policy::ContractSpec offer;
  offer.name = "cam-offer";
  offer.executable = "CamFeed";
  offer.hasOffer = true;
  offer.offer = policy::parseQosOffer(
      "deadline=50ms liveliness=automatic:300ms history=4 strength=5");
  repo.addContract(offer);
  policy::ContractSpec ask;
  ask.name = "cam-ask";
  ask.application = "CityCam";
  ask.hasRequest = true;
  ask.request = policy::parseQosRequest("deadline<=100ms");
  repo.addContract(ask);

  // The agent's RPC endpoint (renegotiate, probes, event notifications)
  // seats on the root host — shard 0, beside the repository it consults.
  qorms.enableContractPlane(*seats_.back());

  // One camera daemon per session, spread rack-first over the workload
  // hosts. Pids are per-host and the agent keys sessions by pid
  // domain-wide, so each host pads its pid space to keep the daemons' pids
  // distinct (colliding pids would read as re-registrations).
  const int sessions = std::min(config_.contractSessions, hostCount());
  for (int i = 0; i < sessions; ++i) {
    const std::size_t h = static_cast<std::size_t>(
        (i % config_.racks) * config_.hostsPerRack +
        (i / config_.racks) % config_.hostsPerRack);
    contractHostIdx_.push_back(h);
    osim::Host& host = *hosts_[h];
    sim::ShardScope scope(sim, host.shard());
    for (int pad = 0; pad < i; ++pad) {
      host.spawn("pad", [](osim::Process& p) { camIdle(p); });
    }
    auto daemon = host.spawn("cam-daemon",
                             [](osim::Process& p) { camIdle(p); });
    contractPids_.push_back(daemon->pid());
    camRegistries_.push_back(std::make_unique<instrument::SensorRegistry>());
    camCoordinators_.push_back(std::make_unique<instrument::Coordinator>(
        sim, host.name(), daemon->pid(), "CamFeed", *camRegistries_.back(),
        [](const instrument::ViolationReport&) { return true; }));
  }
  // Registrations run on shard 0, where the agent (and every event it
  // schedules — probes, retries) is seated. Strength descends with i, so
  // session 0 owns the contract until a fault takes it out.
  for (int i = 0; i < sessions; ++i) {
    distribution::PolicyAgent::Registration reg;
    reg.pid = static_cast<std::uint32_t>(contractPids_[static_cast<std::size_t>(i)]);
    reg.application = "CityCam";
    reg.executable = "CamFeed";
    reg.coordinator = camCoordinators_[static_cast<std::size_t>(i)].get();
    reg.hostName = hosts_[contractHostIdx_[static_cast<std::size_t>(i)]]->name();
    reg.ownershipStrength = 10 * (sessions - i);
    qorms.agent().registerProcess(reg);
  }
}

std::string City::digest() const {
  std::ostringstream out;
  out << "t=" << sim.now() << '\n';
  for (std::size_t h = 0; h < hosts_.size(); ++h) {
    manager::QoSHostManager& hm = *hms_[h];
    out << "hm:" << hosts_[h]->name() << ":r=" << hm.reportsReceived()
        << ",b=" << hm.boostsApplied() << ",d=" << hm.decaysApplied()
        << ",e=" << hm.escalationsSent() << ",g=" << hm.rtGrantsIssued()
        << ",m=" << hm.memoryGrowths() << ",rs=" << hm.restartsPerformed()
        << ",tp=" << hm.telemetryPublishes()
        << ",f=" << hm.engine().totalFirings()
        << ",load=" << hosts_[h]->loadAverage() << '\n';
  }
  auto dmRow = [&out](const manager::QoSDomainManager& dm) {
    out << "dm:" << dm.name() << ":er=" << dm.escalationsReceived()
        << ",fw=" << dm.forwardsSent() << ",sb=" << dm.serverBoostsSent()
        << ",ag=" << dm.aggregatePublishes()
        << ",tf=" << dm.telemetryFramesReceived();
    for (const auto& [kind, count] : dm.diagnosisCounts()) {
      out << ',' << kind << '=' << count;
    }
    out << '\n';
  };
  for (const auto* dm : rackDms_) dmRow(*dm);
  for (const auto* dm : clusterDms_) dmRow(*dm);
  dmRow(*rootDm_);
  out << "net:unreachable=" << network.unreachableDrops() << '\n';
  return out.str();
}

}  // namespace softqos::apps
