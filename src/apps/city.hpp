// A city-scale management testbed: racks of workload hosts behind top-of-rack
// switches, a QoS Domain Manager per rack, optional mid-tier cluster managers,
// and one root manager — the domain-of-domains tree from Section 9 scaled to
// ~1k hosts. Every workload host runs a small web+video process mix whose
// coordinator reports drive the per-host rule engines; rack managers aggregate
// child telemetry and republish only the merged delta upward, so the root's
// fabric traffic tracks tier fan-out, not host count.
//
//   h00-00..h00-NN --- tor-00 --+
//   rdm-00-host ------/         +--- agg-0 --+
//   h01-00..h01-NN --- tor-01 --+  (tiers=3) +--- core --- root-host
//   rdm-01-host ------/                      |
//   ...                   (tiers=2: tor -> core)
//
// Unlike the two-host video testbed, every workload here is host-local (no
// cross-host session loops), so the shards are worker-clean: the same shard
// layout can be driven by 1..N worker threads with byte-identical results,
// and — because every event timestamp is deterministic and per-host phase
// offsets keep simultaneous arrivals apart — the sharded schedule replays the
// serial kernel's behaviour exactly (see CityConfig::shards).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "distribution/qorms.hpp"
#include "instrument/coordinator.hpp"
#include "instrument/registry.hpp"
#include "net/partition.hpp"
#include "net/switch.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/sampler.hpp"
#include "osim/host.hpp"
#include "sim/random.hpp"
#include "sim/simulation.hpp"
#include "sim/span.hpp"

namespace softqos::apps {

struct CityConfig {
  std::uint64_t seed = 1;
  /// 2: racks report to the root directly. 3: racks -> clusters -> root.
  int tiers = 3;
  int racks = 4;
  int hostsPerRack = 4;
  int racksPerCluster = 2;  // tiers == 3 only
  /// Per-host process mix, alternating web ("WebServer") and video
  /// ("VideoPlayer") workloads. Each process gets a coordinator-report
  /// driver and contributes CPU demand to its host.
  int processesPerHost = 2;
  double edgeMbit = 100.0;    // host / manager access links
  double uplinkMbit = 400.0;  // tor -> agg -> core trunks
  /// Coordinator report cadence per process (violation/clear transitions
  /// drawn from a per-host deterministic stream).
  sim::SimDuration reportInterval = sim::msec(250);
  /// Paced intra-rack host-to-host traffic (keeps the channels and the
  /// planner's affinity graph honest). 0 disables.
  sim::SimDuration trafficInterval = sim::msec(25);
  std::int64_t trafficBytes = 4096;
  /// Host-manager self-telemetry publish period (to the rack manager).
  sim::SimDuration telemetryInterval = sim::msec(500);
  /// Upward republish period at every non-root domain manager.
  sim::SimDuration aggregationInterval = sim::msec(500);
  /// Shard-safe channel sampling period at the rack managers.
  sim::SimDuration channelPollInterval = sim::msec(250);
  /// Total shard count — FIXED while `workers` varies, so every worker
  /// count executes the identical schedule. 0 selects the historical
  /// serial kernel (single event queue, no windowing).
  unsigned shards = 8;
  /// Worker threads driving the windows; must divide `shards`.
  unsigned workers = 1;
  /// Place workload hosts with the channel-affinity ShardPlanner (pinning
  /// the management plane to shard 0). false: round-robin hand placement,
  /// the baseline the planner is judged against.
  bool usePlanner = true;
  /// Partition every host manager's working memory by application pid.
  bool partitionWorkingMemory = true;
  /// Attach an obs::TraceSampler (tail-based sampling): the report drivers
  /// mint "episode:frame_rate" traces the managers' diagnosis/actuation
  /// spans nest under, per-shard buffers are flushed at every run()
  /// boundary, and samplerConfig's retention policy decides which traces
  /// survive. Shard-safe: stays attached through multi-worker runs. Off by
  /// default — a city without it runs byte-identically to earlier builds.
  bool sampling = false;
  obs::SamplerConfig samplerConfig;
  /// Arm the QoS contract plane: `contractSessions` camera offerer sessions
  /// (spread over the racks, descending ownership strength) admitted
  /// through the policy agent's RxO matcher, liveliness-probed over RPC
  /// from the root seat, and captured by a contract-plane flight recorder.
  /// Off by default — byte-identical to earlier builds.
  bool contractPlane = false;
  int contractSessions = 3;
};

/// The full city: topology, managers, workload drivers. Construction builds
/// everything; run() advances the clock.
class City {
 public:
  explicit City(CityConfig config = {});

  City(const City&) = delete;
  City& operator=(const City&) = delete;

  sim::Simulation sim;
  net::Network network;
  distribution::Qorms qorms;

  /// Non-null when config.sampling; attached to `sim` for the city's
  /// lifetime. run() flushes it at each boundary; call finalFlush() (or
  /// finishSampling()) once before exporting.
  std::unique_ptr<obs::TraceSampler> sampler;
  /// Non-null when config.contractPlane; wired into the policy agent.
  std::unique_ptr<obs::FlightRecorder> flightRecorder;

  /// Advance the simulation by `span`; returns events executed. With
  /// sampling on, the sampler's per-shard buffers are flushed afterwards —
  /// the boundary lands at the same sim time regardless of shard or worker
  /// count, which keeps the retained set invariant.
  std::uint64_t run(sim::SimDuration span);

  /// Resolve every still-pending sampled trace (end of run). No-op without
  /// sampling.
  void finishSampling();

  [[nodiscard]] const CityConfig& config() const { return config_; }
  [[nodiscard]] int hostCount() const { return config_.racks * config_.hostsPerRack; }

  /// The root of the domain tree.
  [[nodiscard]] manager::QoSDomainManager& rootDm() { return *rootDm_; }
  [[nodiscard]] const std::vector<manager::QoSDomainManager*>& rackDms() const {
    return rackDms_;
  }
  [[nodiscard]] const std::vector<manager::QoSHostManager*>& hostManagers() const {
    return hms_;
  }
  [[nodiscard]] osim::Host& workloadHost(int rack, int i) {
    return *hosts_[static_cast<std::size_t>(rack * config_.hostsPerRack + i)];
  }

  /// Pids of the contract-plane camera sessions, in registration
  /// (descending-strength) order; empty without the contract plane.
  [[nodiscard]] const std::vector<osim::Pid>& contractPids() const {
    return contractPids_;
  }
  /// Host the i-th contract session runs on.
  [[nodiscard]] osim::Host& contractHost(int i) {
    return *hosts_[contractHostIdx_[static_cast<std::size_t>(i)]];
  }

  /// The shard layout chosen for the workload hosts (identity when serial).
  [[nodiscard]] const net::ShardPlan& layout() const { return plan_; }

  /// The affinity graph the layout is planned from: one node per workload
  /// host (load = its process count), one edge per paced traffic pair, and
  /// a pinned "@management" node standing in for the switch fabric and
  /// manager seats on shard 0. Exposed so tests can compare the planner's
  /// cut against hand placements over the identical graph.
  [[nodiscard]] static net::ShardPlanner affinityGraph(const CityConfig& config);

  /// Deterministic run fingerprint: every manager's observable counters in
  /// creation order plus the network's drop statistics. Two runs are
  /// behaviourally identical iff their digests match byte-for-byte.
  [[nodiscard]] std::string digest() const;

  /// Name helpers (also the planner-node names).
  [[nodiscard]] static std::string hostName(int rack, int i);
  [[nodiscard]] static std::string rackSeatName(int rack);
  [[nodiscard]] static std::string clusterSeatName(int cluster);

 private:
  void buildTopology();
  void buildManagers();
  void startWorkloads();
  void startContractPlane();

  CityConfig config_;
  net::ShardPlan plan_;

  std::vector<std::unique_ptr<osim::Host>> hosts_;       // workload hosts
  std::vector<std::unique_ptr<osim::Host>> seats_;       // manager seats
  std::vector<std::unique_ptr<net::Switch>> tors_;       // one per rack
  std::vector<std::unique_ptr<net::Switch>> aggs_;       // one per cluster
  std::unique_ptr<net::Switch> core_;

  std::vector<manager::QoSHostManager*> hms_;            // one per host
  std::vector<manager::QoSDomainManager*> rackDms_;
  std::vector<manager::QoSDomainManager*> clusterDms_;
  manager::QoSDomainManager* rootDm_ = nullptr;

  /// One violation-state flag per (host, process); flipped by the report
  /// drivers from per-host named streams.
  std::vector<std::unique_ptr<sim::RandomStream>> streams_;
  std::vector<char> violated_;
  std::vector<osim::Pid> pids_;  // spawned workload pids, (host, process) order
  /// Open episode trace per driver (sampling only; default contexts else).
  std::vector<sim::TraceContext> episodeCtx_;

  // Contract-plane sessions (config.contractPlane).
  std::vector<std::unique_ptr<instrument::SensorRegistry>> camRegistries_;
  std::vector<std::unique_ptr<instrument::Coordinator>> camCoordinators_;
  std::vector<osim::Pid> contractPids_;
  std::vector<std::size_t> contractHostIdx_;

  void reportTick(std::size_t idx);
  void trafficTick(int rack, int i);
};

}  // namespace softqos::apps
