// The MPEG-style video application: a server streaming a GOP-patterned frame
// sequence over the network and an instrumented playback client (retrieve ->
// decode -> display, with the frame-rate, jitter, and communication-buffer
// probes of Examples 1/2/5).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "distribution/policy_agent.hpp"
#include "instrument/coordinator.hpp"
#include "instrument/registry.hpp"
#include "instrument/actuator.hpp"
#include "instrument/sensors.hpp"
#include "net/network.hpp"
#include "osim/host.hpp"
#include "sim/random.hpp"

namespace softqos::apps {

struct VideoConfig {
  double sourceFps = 30.0;
  std::int64_t meanFrameBytes = 12000;          // ~2.9 Mbit/s at 30 fps
  sim::SimDuration serverCpuPerFrame = sim::msec(2);
  sim::SimDuration decodeBase = sim::msec(12);  // per-frame fixed decode cost
  sim::SimDuration decodePerKiB = sim::usec(2000);  // size-dependent cost
  std::int64_t clientWorkingSetPages = 2048;
  std::int64_t socketCapacityBytes = 262144;
  int serverPort = 5004;
  int clientPort = 5005;
  double sendJitterFraction = 0.02;  // timing noise on the send pacing

  /// Playback pacing: frames display at their presentation times (decoded
  /// early -> wait; a little late -> display immediately). Frames later than
  /// `lateDropIntervals` source intervals are skipped without a full decode;
  /// a run of `reanchorAfterSkips` consecutive skips resynchronizes the
  /// playback clock (stale schedule after an outage or a deep backlog).
  sim::SimDuration startupDelayIntervals = 2;
  std::int64_t lateDropIntervals = 4;
  std::int64_t reanchorAfterSkips = 15;
  sim::SimDuration skipCost = sim::msec(1);
};

/// One server->client video session. Construction spawns both processes and
/// plumbs the stream across the network; instrument() attaches the sensors
/// and coordinator and registers with the Policy Agent.
class VideoSession {
 public:
  VideoSession(sim::Simulation& simulation, net::Network& network,
               osim::Host& serverHost, osim::Host& clientHost,
               std::string name, VideoConfig config = {});
  ~VideoSession();

  VideoSession(const VideoSession&) = delete;
  VideoSession& operator=(const VideoSession&) = delete;

  /// Attach instrumentation (fps/jitter/buffer sensors, coordinator wired to
  /// the client host's manager message queue) and register with the agent.
  /// Returns the number of policies delivered.
  std::size_t instrument(distribution::PolicyAgent& agent,
                         const std::string& application,
                         const std::string& role);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] osim::Process& clientProcess() { return *client_; }
  [[nodiscard]] osim::Process& serverProcess() { return *server_; }
  [[nodiscard]] osim::Pid clientPid() const { return client_->pid(); }
  [[nodiscard]] osim::Pid serverPid() const { return server_->pid(); }

  [[nodiscard]] instrument::SensorRegistry& registry() { return registry_; }
  [[nodiscard]] instrument::Coordinator* coordinator() {
    return coordinator_.get();
  }
  [[nodiscard]] instrument::FrameRateSensor* fpsSensor() { return fps_; }

  /// The decode-quality actuator ("quality"): level 2 = full quality,
  /// 1 and 0 progressively cheaper decodes (overload adaptation). Null until
  /// instrument() runs.
  [[nodiscard]] instrument::QualityLevelActuator* qualityActuator() {
    return quality_;
  }

  [[nodiscard]] std::uint64_t framesSent() const { return framesSent_; }
  [[nodiscard]] std::uint64_t framesDisplayed() const { return framesDisplayed_; }
  [[nodiscard]] std::uint64_t framesSkipped() const { return framesSkipped_; }

  /// Kill the server process (fault injection). Returns false if already dead.
  bool killServer();

  /// Respawn the server (restart adaptation); returns the new pid.
  osim::Pid respawnServer();

  [[nodiscard]] const VideoConfig& config() const { return config_; }
  [[nodiscard]] std::shared_ptr<osim::Socket> clientSocket() { return clientSock_; }

 private:
  void serverLoop(osim::Process& p);
  void clientLoop(osim::Process& p);
  void displayFrame(osim::Process& p, std::uint64_t seq);
  [[nodiscard]] std::int64_t nextFrameBytes();
  [[nodiscard]] sim::SimDuration decodeCost(std::int64_t bytes) const;
  [[nodiscard]] sim::SimDuration frameInterval() const;
  [[nodiscard]] sim::SimTime presentationTime(std::uint64_t seq) const;
  void startServer();

  sim::Simulation& sim_;
  net::Network& network_;
  osim::Host& serverHost_;
  osim::Host& clientHost_;
  std::string name_;
  VideoConfig config_;
  sim::RandomStream rng_;

  std::shared_ptr<osim::Socket> serverSock_;
  std::shared_ptr<osim::Socket> clientSock_;
  std::shared_ptr<osim::Process> server_;
  std::shared_ptr<osim::Process> client_;

  instrument::SensorRegistry registry_;
  std::unique_ptr<instrument::Coordinator> coordinator_;
  instrument::FrameRateSensor* fps_ = nullptr;
  instrument::JitterSensor* jitter_ = nullptr;
  instrument::QualityLevelActuator* quality_ = nullptr;

  std::uint64_t frameIndex_ = 0;
  std::uint64_t framesSent_ = 0;
  std::uint64_t framesDisplayed_ = 0;
  std::uint64_t framesSkipped_ = 0;
  sim::SimTime nextDeadline_ = 0;
  bool playbackAnchored_ = false;
  sim::SimTime playbackOffset_ = 0;  // presentation(seq) = offset + seq*gap
  std::int64_t consecutiveSkips_ = 0;
};

}  // namespace softqos::apps
