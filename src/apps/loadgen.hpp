// Competing workload generators: CPU-bound spinner processes (each
// contributes ~1.0 to the load average) and a memory hog.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "osim/host.hpp"

namespace softqos::apps {

/// Maintains a pool of always-runnable CPU-bound processes on one host.
/// setWorkers() adjusts the pool at run time (load steps in experiments).
class CpuLoadGenerator {
 public:
  CpuLoadGenerator(osim::Host& host, std::string namePrefix = "loadgen");

  CpuLoadGenerator(const CpuLoadGenerator&) = delete;
  CpuLoadGenerator& operator=(const CpuLoadGenerator&) = delete;

  void setWorkers(int count);
  [[nodiscard]] int workers() const;

  /// Interactive competitors: ~75% CPU demand each, with frequent short
  /// sleeps so the dispatch table keeps them at high levels (they compete
  /// with interactive victims where batch spinners would not).
  void addInteractiveWorkers(int count);

  /// Total CPU time the pool has consumed (for utilization assertions).
  [[nodiscard]] sim::SimDuration cpuConsumed() const;

 private:
  static void spin(osim::Process& p);

  osim::Host& host_;
  std::string prefix_;
  std::vector<std::shared_ptr<osim::Process>> pool_;
  int spawned_ = 0;
};

/// A process with a large declared working set: creates memory pressure so
/// the Memory Resource Manager has something to arbitrate.
class MemoryHog {
 public:
  MemoryHog(osim::Host& host, std::int64_t workingSetPages,
            std::string name = "memhog");

  [[nodiscard]] osim::Pid pid() const { return proc_->pid(); }
  void stop();

 private:
  std::shared_ptr<osim::Process> proc_;
};

}  // namespace softqos::apps
