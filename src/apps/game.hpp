// An instrumented game-loop application (Section 9 reports instrumenting
// DOOM): a fixed-cadence tick loop with a tick-rate QoS policy.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "distribution/policy_agent.hpp"
#include "instrument/coordinator.hpp"
#include "instrument/registry.hpp"
#include "instrument/sensors.hpp"
#include "osim/host.hpp"

namespace softqos::apps {

struct GameConfig {
  double targetTicksPerSecond = 30.0;
  sim::SimDuration cpuPerTick = sim::msec(12);
  std::int64_t workingSetPages = 3072;
};

class GameApp {
 public:
  GameApp(sim::Simulation& simulation, osim::Host& host, std::string name,
          GameConfig config = {});

  GameApp(const GameApp&) = delete;
  GameApp& operator=(const GameApp&) = delete;

  std::size_t instrument(distribution::PolicyAgent& agent,
                         const std::string& application,
                         const std::string& role);

  static void seedModel(distribution::RepositoryService& repository);
  static std::string policyText(const std::string& name, double targetRate,
                                double tolerance);

  [[nodiscard]] osim::Pid pid() const { return proc_->pid(); }
  [[nodiscard]] std::uint64_t ticks() const { return ticks_; }
  [[nodiscard]] instrument::Coordinator* coordinator() {
    return coordinator_.get();
  }

 private:
  void tickLoop(osim::Process& p);

  sim::Simulation& sim_;
  osim::Host& host_;
  std::string name_;
  GameConfig config_;

  std::shared_ptr<osim::Process> proc_;
  instrument::SensorRegistry registry_;
  std::unique_ptr<instrument::Coordinator> coordinator_;
  instrument::FrameRateSensor* tickSensor_ = nullptr;

  std::uint64_t ticks_ = 0;
  sim::SimTime nextDeadline_ = 0;
};

}  // namespace softqos::apps
