// Deterministic fault-injection schedules (the "chaos script").
//
// A FaultPlan is a declarative, simulation-clock-stamped list of faults to
// inject: host crash/restart, process kill, link degradation (loss,
// corruption, latency), link/partition cuts, and manager-daemon crashes.
// The plan itself holds no randomness — all stochastic fault behaviour
// (per-packet loss/corruption draws) flows through the FaultInjector's
// seeded sim::RandomStream, so a chaos run with the same master seed and the
// same plan is byte-reproducible.
#pragma once

#include <string>
#include <vector>

#include "net/channel.hpp"
#include "osim/process.hpp"
#include "sim/time.hpp"

namespace softqos::faults {

struct FaultEvent {
  enum class Kind {
    kHostCrash,        // power off `host`: kill processes, drop inbound
    kHostRestart,      // power `host` back on (processes stay dead)
    kProcessKill,      // kill `pid` on `host`
    kLinkCut,          // hard partition of the duplex link nodeA <-> nodeB
    kLinkHeal,         // remove the cut
    kLinkDegrade,      // apply `profile` (loss/corruption/extra delay)
    kLinkRestore,      // clear any degradation profile
    kManagerCrash,     // crash the QoS Host Manager daemon on `host`
    kManagerRestart,   // restart that daemon
    kDomainManagerCrash,   // crash the QoS Domain Manager seated on `host`
    kDomainManagerRestart  // restart it
  };

  sim::SimTime at = 0;
  Kind kind = Kind::kHostCrash;
  std::string host;           // host/process/manager faults
  osim::Pid pid = 0;          // kProcessKill
  std::string nodeA, nodeB;   // link faults (network node names, duplex)
  net::LinkFaultProfile profile;  // kLinkDegrade
};

/// Builder for a scripted fault schedule. Methods append and return *this so
/// plans read like a timeline:
///
///   FaultPlan plan;
///   plan.hostCrash(sim::sec(10), "server-host")
///       .hostRestart(sim::sec(18), "server-host")
///       .linkCut(sim::sec(25), "switch-a", "switch-b")
///       .linkHeal(sim::sec(30), "switch-a", "switch-b");
class FaultPlan {
 public:
  FaultPlan& hostCrash(sim::SimTime at, const std::string& host);
  FaultPlan& hostRestart(sim::SimTime at, const std::string& host);
  FaultPlan& processKill(sim::SimTime at, const std::string& host, osim::Pid pid);
  FaultPlan& linkCut(sim::SimTime at, const std::string& a, const std::string& b);
  FaultPlan& linkHeal(sim::SimTime at, const std::string& a, const std::string& b);
  FaultPlan& linkDegrade(sim::SimTime at, const std::string& a,
                         const std::string& b, net::LinkFaultProfile profile);
  FaultPlan& linkRestore(sim::SimTime at, const std::string& a,
                         const std::string& b);
  FaultPlan& managerCrash(sim::SimTime at, const std::string& host);
  FaultPlan& managerRestart(sim::SimTime at, const std::string& host);
  FaultPlan& domainManagerCrash(sim::SimTime at, const std::string& seatHost);
  FaultPlan& domainManagerRestart(sim::SimTime at, const std::string& seatHost);

  [[nodiscard]] const std::vector<FaultEvent>& events() const { return events_; }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::size_t size() const { return events_.size(); }

  /// Human-readable timeline (one "t=<ticks> <fault>" line per event, in
  /// plan order) for logs and golden-trace comparisons.
  [[nodiscard]] std::string describe() const;

 private:
  FaultEvent& append(sim::SimTime at, FaultEvent::Kind kind);

  std::vector<FaultEvent> events_;
};

/// Stable name for a fault kind ("host-crash", "link-cut", ...).
[[nodiscard]] const char* faultKindName(FaultEvent::Kind kind);

}  // namespace softqos::faults
