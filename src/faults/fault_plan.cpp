#include "faults/fault_plan.hpp"

#include <sstream>

namespace softqos::faults {

FaultEvent& FaultPlan::append(sim::SimTime at, FaultEvent::Kind kind) {
  FaultEvent event;
  event.at = at;
  event.kind = kind;
  events_.push_back(std::move(event));
  return events_.back();
}

FaultPlan& FaultPlan::hostCrash(sim::SimTime at, const std::string& host) {
  append(at, FaultEvent::Kind::kHostCrash).host = host;
  return *this;
}

FaultPlan& FaultPlan::hostRestart(sim::SimTime at, const std::string& host) {
  append(at, FaultEvent::Kind::kHostRestart).host = host;
  return *this;
}

FaultPlan& FaultPlan::processKill(sim::SimTime at, const std::string& host,
                                  osim::Pid pid) {
  FaultEvent& event = append(at, FaultEvent::Kind::kProcessKill);
  event.host = host;
  event.pid = pid;
  return *this;
}

FaultPlan& FaultPlan::linkCut(sim::SimTime at, const std::string& a,
                              const std::string& b) {
  FaultEvent& event = append(at, FaultEvent::Kind::kLinkCut);
  event.nodeA = a;
  event.nodeB = b;
  return *this;
}

FaultPlan& FaultPlan::linkHeal(sim::SimTime at, const std::string& a,
                               const std::string& b) {
  FaultEvent& event = append(at, FaultEvent::Kind::kLinkHeal);
  event.nodeA = a;
  event.nodeB = b;
  return *this;
}

FaultPlan& FaultPlan::linkDegrade(sim::SimTime at, const std::string& a,
                                  const std::string& b,
                                  net::LinkFaultProfile profile) {
  FaultEvent& event = append(at, FaultEvent::Kind::kLinkDegrade);
  event.nodeA = a;
  event.nodeB = b;
  event.profile = profile;
  return *this;
}

FaultPlan& FaultPlan::linkRestore(sim::SimTime at, const std::string& a,
                                  const std::string& b) {
  FaultEvent& event = append(at, FaultEvent::Kind::kLinkRestore);
  event.nodeA = a;
  event.nodeB = b;
  return *this;
}

FaultPlan& FaultPlan::managerCrash(sim::SimTime at, const std::string& host) {
  append(at, FaultEvent::Kind::kManagerCrash).host = host;
  return *this;
}

FaultPlan& FaultPlan::managerRestart(sim::SimTime at, const std::string& host) {
  append(at, FaultEvent::Kind::kManagerRestart).host = host;
  return *this;
}

FaultPlan& FaultPlan::domainManagerCrash(sim::SimTime at,
                                         const std::string& seatHost) {
  append(at, FaultEvent::Kind::kDomainManagerCrash).host = seatHost;
  return *this;
}

FaultPlan& FaultPlan::domainManagerRestart(sim::SimTime at,
                                           const std::string& seatHost) {
  append(at, FaultEvent::Kind::kDomainManagerRestart).host = seatHost;
  return *this;
}

std::string FaultPlan::describe() const {
  std::ostringstream out;
  for (const FaultEvent& event : events_) {
    out << "t=" << event.at << ' ' << faultKindName(event.kind);
    switch (event.kind) {
      case FaultEvent::Kind::kHostCrash:
      case FaultEvent::Kind::kHostRestart:
      case FaultEvent::Kind::kManagerCrash:
      case FaultEvent::Kind::kManagerRestart:
      case FaultEvent::Kind::kDomainManagerCrash:
      case FaultEvent::Kind::kDomainManagerRestart:
        out << ' ' << event.host;
        break;
      case FaultEvent::Kind::kProcessKill:
        out << ' ' << event.host << " pid=" << event.pid;
        break;
      case FaultEvent::Kind::kLinkCut:
      case FaultEvent::Kind::kLinkHeal:
      case FaultEvent::Kind::kLinkRestore:
        out << ' ' << event.nodeA << "<->" << event.nodeB;
        break;
      case FaultEvent::Kind::kLinkDegrade:
        out << ' ' << event.nodeA << "<->" << event.nodeB
            << " loss=" << event.profile.lossRate
            << " corrupt=" << event.profile.corruptRate
            << " delay+=" << event.profile.extraDelay;
        break;
    }
    out << '\n';
  }
  return out.str();
}

const char* faultKindName(FaultEvent::Kind kind) {
  switch (kind) {
    case FaultEvent::Kind::kHostCrash: return "host-crash";
    case FaultEvent::Kind::kHostRestart: return "host-restart";
    case FaultEvent::Kind::kProcessKill: return "process-kill";
    case FaultEvent::Kind::kLinkCut: return "link-cut";
    case FaultEvent::Kind::kLinkHeal: return "link-heal";
    case FaultEvent::Kind::kLinkDegrade: return "link-degrade";
    case FaultEvent::Kind::kLinkRestore: return "link-restore";
    case FaultEvent::Kind::kManagerCrash: return "manager-crash";
    case FaultEvent::Kind::kManagerRestart: return "manager-restart";
    case FaultEvent::Kind::kDomainManagerCrash: return "dm-crash";
    case FaultEvent::Kind::kDomainManagerRestart: return "dm-restart";
  }
  return "unknown";
}

}  // namespace softqos::faults
