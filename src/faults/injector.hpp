// FaultInjector: arms a FaultPlan against a live testbed, executing each
// scripted fault at its simulation-clock timestamp.
//
// Determinism contract: the injector schedules plan events through the
// simulation kernel (same ordering rules as every other event) and owns one
// named sim::RandomStream ("faults:link") that channels consult for
// per-packet loss/corruption draws. The stream is derived from the master
// seed independently of construction order, so identical (seed, plan) pairs
// replay byte-identical runs, and a run with no armed plan draws nothing.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <string>

#include "faults/fault_plan.hpp"
#include "net/network.hpp"
#include "osim/host.hpp"
#include "sim/random.hpp"
#include "sim/simulation.hpp"

namespace softqos::manager {
class QoSHostManager;
class QoSDomainManager;
}  // namespace softqos::manager

namespace softqos::faults {

class FaultInjector {
 public:
  FaultInjector(sim::Simulation& simulation, net::Network& network);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Register targets the plan may reference. Host managers and the domain
  /// manager are keyed by the host they run on: crashing a host also crashes
  /// its co-located daemons (a machine going down takes its agents with it),
  /// and restarting it brings them back.
  void registerHost(osim::Host& host);
  void registerHostManager(const std::string& hostName,
                           manager::QoSHostManager& hm);
  void registerDomainManager(const std::string& seatHost,
                             manager::QoSDomainManager& dm);

  /// Schedule every event of `plan` on the simulation clock. May be called
  /// more than once (plans accumulate), but only between runs — arming
  /// resolves targets to their owning shards. Events referencing
  /// unregistered targets are counted in misses() and otherwise ignored at
  /// fire time. In a sharded simulation every event is posted to the shard
  /// owning its target (host faults to the host's shard; a link fault whose
  /// endpoints live on different shards is applied per direction, each on
  /// the channel owner's shard).
  void arm(const FaultPlan& plan);

  [[nodiscard]] std::uint64_t injected() const {
    return injected_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }

  /// The stream backing per-packet loss/corruption draws (exposed for tests
  /// asserting replay determinism).
  [[nodiscard]] sim::RandomStream& linkRandom() { return linkRandom_; }

 private:
  void scheduleEvent(const FaultEvent& event);
  void scheduleLinkEvent(const FaultEvent& event);
  void fire(const FaultEvent& event);
  void applyLinkProfile(const FaultEvent& event,
                        const net::LinkFaultProfile& profile,
                        sim::RandomStream* randomAB,
                        sim::RandomStream* randomBA);
  /// Apply one direction of a link fault (reverse = the B->A channel);
  /// `account` selects the single direction that records injected/misses so
  /// a split cross-shard event still counts once.
  void applyLinkDirection(const FaultEvent& event,
                          const net::LinkFaultProfile& profile,
                          sim::RandomStream* random, bool reverse,
                          bool account);
  /// Seeded per-direction stream for sharded runs ("faults:link:a>b");
  /// created at arm time so firing never mutates shared state.
  sim::RandomStream* directionStream(const std::string& from,
                                     const std::string& to);
  [[nodiscard]] osim::Host* findHost(const std::string& name);

  sim::Simulation& sim_;
  net::Network& net_;
  sim::RandomStream linkRandom_;
  std::map<std::string, osim::Host*> hosts_;
  std::map<std::string, manager::QoSHostManager*> hostManagers_;
  std::map<std::string, manager::QoSDomainManager*> domainManagers_;
  std::deque<sim::RandomStream> linkStreams_;  // stable addresses
  std::map<std::string, std::size_t> linkStreamIndex_;
  std::atomic<std::uint64_t> injected_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace softqos::faults
