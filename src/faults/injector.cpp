#include "faults/injector.hpp"

#include <string>
#include <utility>

#include "manager/domain_manager.hpp"
#include "manager/host_manager.hpp"
#include "net/node.hpp"

namespace softqos::faults {

namespace {
constexpr std::string_view kComponent = "fault-injector";
}  // namespace

FaultInjector::FaultInjector(sim::Simulation& simulation, net::Network& network)
    : sim_(simulation), net_(network), linkRandom_(sim_.stream("faults:link")) {}

void FaultInjector::registerHost(osim::Host& host) {
  hosts_[host.name()] = &host;
}

void FaultInjector::registerHostManager(const std::string& hostName,
                                        manager::QoSHostManager& hm) {
  hostManagers_[hostName] = &hm;
}

void FaultInjector::registerDomainManager(const std::string& seatHost,
                                          manager::QoSDomainManager& dm) {
  domainManagers_[seatHost] = &dm;
}

void FaultInjector::arm(const FaultPlan& plan) {
  for (const FaultEvent& event : plan.events()) {
    sim_.at(event.at, [this, event] { fire(event); });
  }
}

osim::Host* FaultInjector::findHost(const std::string& name) {
  auto it = hosts_.find(name);
  return it == hosts_.end() ? nullptr : it->second;
}

void FaultInjector::applyLinkProfile(const FaultEvent& event,
                                     const net::LinkFaultProfile& profile,
                                     sim::RandomStream* random) {
  net::NetNode* a = net_.nodeByName(event.nodeA);
  net::NetNode* b = net_.nodeByName(event.nodeB);
  net::Channel* ab =
      (a != nullptr && b != nullptr) ? net_.channel(a->id(), b->id()) : nullptr;
  net::Channel* ba =
      (a != nullptr && b != nullptr) ? net_.channel(b->id(), a->id()) : nullptr;
  if (ab == nullptr || ba == nullptr) {
    ++misses_;
    sim_.warn(std::string(kComponent), "no such link " + event.nodeA + "<->" +
                                           event.nodeB + " for " +
                                           faultKindName(event.kind));
    return;
  }
  ab->setFaultProfile(profile, random);
  ba->setFaultProfile(profile, random);
  ++injected_;
  sim_.warn(std::string(kComponent),
            std::string(faultKindName(event.kind)) + " " + event.nodeA +
                "<->" + event.nodeB);
}

void FaultInjector::fire(const FaultEvent& event) {
  switch (event.kind) {
    case FaultEvent::Kind::kHostCrash: {
      osim::Host* host = findHost(event.host);
      if (host == nullptr || !host->crash()) {
        ++misses_;
        return;
      }
      // The machine takes its co-located daemons down with it.
      auto hm = hostManagers_.find(event.host);
      if (hm != hostManagers_.end()) hm->second->crash();
      auto dm = domainManagers_.find(event.host);
      if (dm != domainManagers_.end()) dm->second->crash();
      ++injected_;
      sim_.warn(std::string(kComponent), "host-crash " + event.host);
      return;
    }
    case FaultEvent::Kind::kHostRestart: {
      osim::Host* host = findHost(event.host);
      if (host == nullptr || !host->restart()) {
        ++misses_;
        return;
      }
      auto hm = hostManagers_.find(event.host);
      if (hm != hostManagers_.end()) hm->second->restartDaemon();
      auto dm = domainManagers_.find(event.host);
      if (dm != domainManagers_.end()) dm->second->restartDaemon();
      ++injected_;
      sim_.info(std::string(kComponent), "host-restart " + event.host);
      return;
    }
    case FaultEvent::Kind::kProcessKill: {
      osim::Host* host = findHost(event.host);
      if (host == nullptr || !host->kill(event.pid)) {
        ++misses_;
        return;
      }
      ++injected_;
      sim_.warn(std::string(kComponent), "process-kill " + event.host +
                                             " pid=" + std::to_string(event.pid));
      return;
    }
    case FaultEvent::Kind::kLinkCut: {
      net::LinkFaultProfile profile;
      profile.down = true;
      applyLinkProfile(event, profile, nullptr);
      return;
    }
    case FaultEvent::Kind::kLinkHeal:
    case FaultEvent::Kind::kLinkRestore:
      applyLinkProfile(event, net::LinkFaultProfile{}, nullptr);
      return;
    case FaultEvent::Kind::kLinkDegrade:
      applyLinkProfile(event, event.profile, &linkRandom_);
      return;
    case FaultEvent::Kind::kManagerCrash: {
      auto it = hostManagers_.find(event.host);
      if (it == hostManagers_.end() || !it->second->crash()) {
        ++misses_;
        return;
      }
      ++injected_;
      sim_.warn(std::string(kComponent), "manager-crash " + event.host);
      return;
    }
    case FaultEvent::Kind::kManagerRestart: {
      auto it = hostManagers_.find(event.host);
      if (it == hostManagers_.end() || !it->second->restartDaemon()) {
        ++misses_;
        return;
      }
      ++injected_;
      sim_.info(std::string(kComponent), "manager-restart " + event.host);
      return;
    }
    case FaultEvent::Kind::kDomainManagerCrash: {
      auto it = domainManagers_.find(event.host);
      if (it == domainManagers_.end() || !it->second->crash()) {
        ++misses_;
        return;
      }
      ++injected_;
      sim_.warn(std::string(kComponent), "dm-crash " + event.host);
      return;
    }
    case FaultEvent::Kind::kDomainManagerRestart: {
      auto it = domainManagers_.find(event.host);
      if (it == domainManagers_.end() || !it->second->restartDaemon()) {
        ++misses_;
        return;
      }
      ++injected_;
      sim_.info(std::string(kComponent), "dm-restart " + event.host);
      return;
    }
  }
}

}  // namespace softqos::faults
