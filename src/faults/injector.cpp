#include "faults/injector.hpp"

#include <string>
#include <utility>

#include "manager/domain_manager.hpp"
#include "manager/host_manager.hpp"
#include "net/node.hpp"

namespace softqos::faults {

namespace {
constexpr std::string_view kComponent = "fault-injector";
}  // namespace

FaultInjector::FaultInjector(sim::Simulation& simulation, net::Network& network)
    : sim_(simulation), net_(network), linkRandom_(sim_.stream("faults:link")) {}

void FaultInjector::registerHost(osim::Host& host) {
  hosts_[host.name()] = &host;
}

void FaultInjector::registerHostManager(const std::string& hostName,
                                        manager::QoSHostManager& hm) {
  hostManagers_[hostName] = &hm;
}

void FaultInjector::registerDomainManager(const std::string& seatHost,
                                          manager::QoSDomainManager& dm) {
  domainManagers_[seatHost] = &dm;
}

void FaultInjector::arm(const FaultPlan& plan) {
  for (const FaultEvent& event : plan.events()) {
    scheduleEvent(event);
  }
}

void FaultInjector::scheduleEvent(const FaultEvent& event) {
  if (sim_.shardCount() == 1) {
    // Historical single-queue path: one event, shared link stream.
    sim_.at(event.at, [this, event] { fire(event); });
    return;
  }
  switch (event.kind) {
    case FaultEvent::Kind::kLinkCut:
    case FaultEvent::Kind::kLinkHeal:
    case FaultEvent::Kind::kLinkRestore:
    case FaultEvent::Kind::kLinkDegrade:
      scheduleLinkEvent(event);
      return;
    default: {
      // Host-affine faults (crash/restart/kill and the co-located daemons)
      // execute on the shard owning the target host.
      osim::Host* host = findHost(event.host);
      const sim::ShardId target = host != nullptr ? host->shard() : 0;
      sim_.postToShard(target, event.at, [this, event] { fire(event); });
      return;
    }
  }
}

void FaultInjector::scheduleLinkEvent(const FaultEvent& event) {
  net::NetNode* a = net_.nodeByName(event.nodeA);
  net::NetNode* b = net_.nodeByName(event.nodeB);
  net::LinkFaultProfile profile;  // kLinkHeal/kLinkRestore: clean profile
  if (event.kind == FaultEvent::Kind::kLinkCut) profile.down = true;
  if (event.kind == FaultEvent::Kind::kLinkDegrade) profile = event.profile;
  // Per-packet draws use per-direction streams in sharded mode: each channel
  // is polled only by the shard owning its source node, so directions must
  // not share mutable RNG state across a boundary.
  sim::RandomStream* randomAB = nullptr;
  sim::RandomStream* randomBA = nullptr;
  if (event.kind == FaultEvent::Kind::kLinkDegrade) {
    randomAB = directionStream(event.nodeA, event.nodeB);
    randomBA = directionStream(event.nodeB, event.nodeA);
  }
  if (a == nullptr || b == nullptr || a->shard() == b->shard()) {
    const sim::ShardId target = (a != nullptr && b != nullptr) ? a->shard() : 0;
    sim_.postToShard(target, event.at,
                     [this, event, profile, randomAB, randomBA] {
                       applyLinkProfile(event, profile, randomAB, randomBA);
                     });
    return;
  }
  // Endpoints on different shards: apply each direction on the shard owning
  // the channel's source; the A-side post does the accounting.
  sim_.postToShard(a->shard(), event.at, [this, event, profile, randomAB] {
    applyLinkDirection(event, profile, randomAB, /*reverse=*/false,
                       /*account=*/true);
  });
  sim_.postToShard(b->shard(), event.at, [this, event, profile, randomBA] {
    applyLinkDirection(event, profile, randomBA, /*reverse=*/true,
                       /*account=*/false);
  });
}

sim::RandomStream* FaultInjector::directionStream(const std::string& from,
                                                  const std::string& to) {
  const std::string key = from + ">" + to;
  auto it = linkStreamIndex_.find(key);
  if (it != linkStreamIndex_.end()) return &linkStreams_[it->second];
  linkStreams_.emplace_back(sim_.stream("faults:link:" + key));
  linkStreamIndex_.emplace(key, linkStreams_.size() - 1);
  return &linkStreams_.back();
}

osim::Host* FaultInjector::findHost(const std::string& name) {
  auto it = hosts_.find(name);
  return it == hosts_.end() ? nullptr : it->second;
}

void FaultInjector::applyLinkProfile(const FaultEvent& event,
                                     const net::LinkFaultProfile& profile,
                                     sim::RandomStream* randomAB,
                                     sim::RandomStream* randomBA) {
  net::NetNode* a = net_.nodeByName(event.nodeA);
  net::NetNode* b = net_.nodeByName(event.nodeB);
  net::Channel* ab =
      (a != nullptr && b != nullptr) ? net_.channel(a->id(), b->id()) : nullptr;
  net::Channel* ba =
      (a != nullptr && b != nullptr) ? net_.channel(b->id(), a->id()) : nullptr;
  if (ab == nullptr || ba == nullptr) {
    ++misses_;
    sim_.warn(std::string(kComponent), "no such link " + event.nodeA + "<->" +
                                           event.nodeB + " for " +
                                           faultKindName(event.kind));
    return;
  }
  ab->setFaultProfile(profile, randomAB);
  ba->setFaultProfile(profile, randomBA);
  ++injected_;
  sim_.warn(std::string(kComponent),
            std::string(faultKindName(event.kind)) + " " + event.nodeA +
                "<->" + event.nodeB);
}

void FaultInjector::applyLinkDirection(const FaultEvent& event,
                                       const net::LinkFaultProfile& profile,
                                       sim::RandomStream* random, bool reverse,
                                       bool account) {
  net::NetNode* a = net_.nodeByName(event.nodeA);
  net::NetNode* b = net_.nodeByName(event.nodeB);
  net::Channel* ch = nullptr;
  if (a != nullptr && b != nullptr) {
    ch = reverse ? net_.channel(b->id(), a->id())
                 : net_.channel(a->id(), b->id());
  }
  if (ch == nullptr) {
    if (account) {
      ++misses_;
      sim_.warn(std::string(kComponent),
                "no such link " + event.nodeA + "<->" + event.nodeB + " for " +
                    faultKindName(event.kind));
    }
    return;
  }
  ch->setFaultProfile(profile, random);
  if (account) {
    ++injected_;
    sim_.warn(std::string(kComponent),
              std::string(faultKindName(event.kind)) + " " + event.nodeA +
                  "<->" + event.nodeB);
  }
}

void FaultInjector::fire(const FaultEvent& event) {
  switch (event.kind) {
    case FaultEvent::Kind::kHostCrash: {
      osim::Host* host = findHost(event.host);
      if (host == nullptr || !host->crash()) {
        ++misses_;
        return;
      }
      // The machine takes its co-located daemons down with it.
      auto hm = hostManagers_.find(event.host);
      if (hm != hostManagers_.end()) hm->second->crash();
      auto dm = domainManagers_.find(event.host);
      if (dm != domainManagers_.end()) dm->second->crash();
      ++injected_;
      sim_.warn(std::string(kComponent), "host-crash " + event.host);
      return;
    }
    case FaultEvent::Kind::kHostRestart: {
      osim::Host* host = findHost(event.host);
      if (host == nullptr || !host->restart()) {
        ++misses_;
        return;
      }
      auto hm = hostManagers_.find(event.host);
      if (hm != hostManagers_.end()) hm->second->restartDaemon();
      auto dm = domainManagers_.find(event.host);
      if (dm != domainManagers_.end()) dm->second->restartDaemon();
      ++injected_;
      sim_.info(std::string(kComponent), "host-restart " + event.host);
      return;
    }
    case FaultEvent::Kind::kProcessKill: {
      osim::Host* host = findHost(event.host);
      if (host == nullptr || !host->kill(event.pid)) {
        ++misses_;
        return;
      }
      ++injected_;
      sim_.warn(std::string(kComponent), "process-kill " + event.host +
                                             " pid=" + std::to_string(event.pid));
      return;
    }
    case FaultEvent::Kind::kLinkCut: {
      net::LinkFaultProfile profile;
      profile.down = true;
      applyLinkProfile(event, profile, nullptr, nullptr);
      return;
    }
    case FaultEvent::Kind::kLinkHeal:
    case FaultEvent::Kind::kLinkRestore:
      applyLinkProfile(event, net::LinkFaultProfile{}, nullptr, nullptr);
      return;
    case FaultEvent::Kind::kLinkDegrade:
      applyLinkProfile(event, event.profile, &linkRandom_, &linkRandom_);
      return;
    case FaultEvent::Kind::kManagerCrash: {
      auto it = hostManagers_.find(event.host);
      if (it == hostManagers_.end() || !it->second->crash()) {
        ++misses_;
        return;
      }
      ++injected_;
      sim_.warn(std::string(kComponent), "manager-crash " + event.host);
      return;
    }
    case FaultEvent::Kind::kManagerRestart: {
      auto it = hostManagers_.find(event.host);
      if (it == hostManagers_.end() || !it->second->restartDaemon()) {
        ++misses_;
        return;
      }
      ++injected_;
      sim_.info(std::string(kComponent), "manager-restart " + event.host);
      return;
    }
    case FaultEvent::Kind::kDomainManagerCrash: {
      auto it = domainManagers_.find(event.host);
      if (it == domainManagers_.end() || !it->second->crash()) {
        ++misses_;
        return;
      }
      ++injected_;
      sim_.warn(std::string(kComponent), "dm-crash " + event.host);
      return;
    }
    case FaultEvent::Kind::kDomainManagerRestart: {
      auto it = domainManagers_.find(event.host);
      if (it == domainManagers_.end() || !it->second->restartDaemon()) {
        ++misses_;
        return;
      }
      ++injected_;
      sim_.info(std::string(kComponent), "dm-restart " + event.host);
      return;
    }
  }
}

}  // namespace softqos::faults
