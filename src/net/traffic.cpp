#include "net/traffic.hpp"

#include <utility>

#include "net/network.hpp"

namespace softqos::net {

TrafficSink::TrafficSink(Network& network, std::string name)
    : NetNode(network, std::move(name)) {}

void TrafficSink::onPacket(Packet packet) {
  bytes_ += packet.bytes;
  ++packets_;
}

TrafficSource::TrafficSource(Network& network, std::string name,
                             TrafficConfig config)
    : NetNode(network, std::move(name)),
      config_(config),
      rng_(network.sim().stream("traffic:" + this->name())) {}

TrafficSource::~TrafficSource() { stop(); }

void TrafficSource::start(NodeId destination) {
  stop();
  dest_ = destination;
  inBurst_ = true;
  phaseEndsAt_ =
      network_.sim().now() +
      (config_.onOff ? rng_.expGap(config_.onMean) : sim::sec(1) * 1000000);
  emitNext();  // emits immediately; arms the recurring pacing timer
}

void TrafficSource::stop() {
  if (event_ == sim::kInvalidEvent) return;
  network_.sim().cancel(event_);
  event_ = sim::kInvalidEvent;
}

sim::SimDuration TrafficSource::meanGap() const {
  const double gapSec =
      static_cast<double>(config_.packetBytes) / config_.bytesPerSecond;
  return std::max<sim::SimDuration>(1, sim::fromSeconds(gapSec));
}

void TrafficSource::emitNext() {
  sim::Simulation& s = network_.sim();
  if (config_.onOff && s.now() >= phaseEndsAt_) {
    inBurst_ = !inBurst_;
    phaseEndsAt_ =
        s.now() + rng_.expGap(inBurst_ ? config_.onMean : config_.offMean);
  }
  if (inBurst_) {
    Packet p;
    p.src = id();
    p.dst = dest_;
    p.bytes = config_.packetBytes;
    p.messageBytes = config_.packetBytes;
    p.messageId = 0;  // cross traffic is never reassembled
    p.lastFragment = false;
    p.injectedAt = s.now();
    network_.forward(id(), std::move(p));
    ++sent_;
  }
  // One recurring event paces the whole stream: each emission re-times the
  // next occurrence by a fresh exponential gap instead of allocating a new
  // closure per packet.
  const sim::SimDuration gap = rng_.expGap(meanGap());
  if (event_ == sim::kInvalidEvent) {
    event_ = s.every(gap, [this] { emitNext(); });
  } else {
    s.reschedule(event_, gap);
  }
}

}  // namespace softqos::net
