#include "net/nic.hpp"

#include <utility>

#include "net/network.hpp"

namespace softqos::net {

Nic::Nic(Network& network, osim::Host& host)
    : NetNode(network, "nic:" + host.name()), host_(host) {}

void Nic::bind(int port, std::shared_ptr<osim::Socket> socket) {
  bindings_[port] = std::move(socket);
}

void Nic::unbind(int port) { bindings_.erase(port); }

osim::Socket* Nic::boundSocket(int port) {
  const auto it = bindings_.find(port);
  return it == bindings_.end() ? nullptr : it->second.get();
}

void Nic::onPacket(Packet packet) {
  if (!host_.isUp()) {
    // A crashed host answers nothing: frames die on the wire until restart.
    ++hostDown_;
    return;
  }
  auto it = partial_.find(packet.messageId);
  if (it == partial_.end()) {
    it = partial_.emplace(packet.messageId, Partial{}).first;
  }
  it->second.bytes += packet.bytes;
  it->second.corrupted = it->second.corrupted || packet.corrupted;

  if (!packet.lastFragment) return;

  const bool complete = (it->second.bytes == packet.messageBytes);
  const bool corrupted = it->second.corrupted;
  partial_.erase(it);
  if (!complete) {
    // An earlier fragment was dropped in a congested queue: the message is
    // lost (datagram semantics; the video stream tolerates this).
    ++incomplete_;
    return;
  }
  if (corrupted) {
    ++corrupt_;
    return;
  }
  const auto bound = bindings_.find(packet.dstPort);
  if (bound == bindings_.end()) {
    ++unbound_;
    return;
  }
  packet.message.bytes = packet.messageBytes;
  bound->second->deliver(std::move(packet.message));
}

}  // namespace softqos::net
