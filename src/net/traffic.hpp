// Background cross-traffic: a source pumping packets at a target rate toward
// a sink, optionally on/off bursty. Used to congest switches in experiments.
#pragma once

#include <cstdint>

#include "net/node.hpp"
#include "sim/random.hpp"
#include "sim/simulation.hpp"

namespace softqos::net {

struct TrafficConfig {
  double bytesPerSecond = 10e6;
  std::int64_t packetBytes = 1500;
  bool onOff = false;                          // bursty on/off pattern
  sim::SimDuration onMean = sim::msec(500);    // mean burst length
  sim::SimDuration offMean = sim::msec(500);   // mean silence length
};

/// Absorbs every packet addressed to it.
class TrafficSink : public NetNode {
 public:
  TrafficSink(Network& network, std::string name);

  void onPacket(Packet packet) override;

  [[nodiscard]] std::int64_t bytesReceived() const { return bytes_; }
  [[nodiscard]] std::uint64_t packetsReceived() const { return packets_; }

 private:
  std::int64_t bytes_ = 0;
  std::uint64_t packets_ = 0;
};

/// Generates packets with exponential inter-departure gaps averaging the
/// configured rate. start()/stop() let experiments inject congestion steps.
class TrafficSource : public NetNode {
 public:
  TrafficSource(Network& network, std::string name, TrafficConfig config);
  ~TrafficSource() override;

  void onPacket(Packet /*packet*/) override {}  // sources don't sink traffic

  void start(NodeId destination);
  void stop();
  [[nodiscard]] bool running() const { return event_ != sim::kInvalidEvent; }

  /// Change the average rate (takes effect on the next departure, or on the
  /// next start() when stopped).
  void setRate(double bytesPerSecond) { config_.bytesPerSecond = bytesPerSecond; }
  [[nodiscard]] double rate() const { return config_.bytesPerSecond; }

  [[nodiscard]] std::uint64_t packetsSent() const { return sent_; }

 private:
  void emitNext();
  [[nodiscard]] sim::SimDuration meanGap() const;

  TrafficConfig config_;
  sim::RandomStream rng_;
  NodeId dest_ = kNoNode;
  sim::EventId event_ = sim::kInvalidEvent;
  bool inBurst_ = true;
  sim::SimTime phaseEndsAt_ = 0;
  std::uint64_t sent_ = 0;
};

}  // namespace softqos::net
