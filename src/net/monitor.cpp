#include "net/monitor.hpp"

#include <algorithm>

#include "net/node.hpp"

namespace softqos::net {

void ChannelMonitor::arm(sim::SimDuration interval) {
  sim::Simulation& sim = network_.sim();
  consumerShard_ = sim.currentShard();

  // Samples must survive a cross-shard hop, so they are published at least
  // one lookahead into the future; the channel's own propagation delay is
  // the natural floor when the run is serial (lookahead 0). The delay is a
  // function of topology + shard layout only — identical across worker
  // counts, which keeps sharded runs byte-identical to one-worker runs.
  publishDelay_ = std::max(network_.minPropagation(), sim.lookahead());
  if (publishDelay_ == 0) publishDelay_ = interval;

  // Channel poll state belongs to the sender node's shard: group the
  // channels by owner and plant one periodic probe per owning shard.
  std::map<sim::ShardId, std::vector<std::pair<NodeId, NodeId>>> byShard;
  for (const auto& [key, channel] : network_.channels()) {
    (void)channel;
    NetNode* owner = network_.node(key.first);
    byShard[owner == nullptr ? 0 : owner->shard()].push_back(key);
  }
  for (auto& [shard, keys] : byShard) {
    sim::ShardScope scope(sim, shard);
    sim.every(interval, [this, keys = std::move(keys)] { probe(keys); });
  }
}

void ChannelMonitor::probe(
    const std::vector<std::pair<NodeId, NodeId>>& keys) {
  // Key-ordered sweep with a strict max: the shard-local fragment of the
  // legacy fabric-wide argmax.
  double maxUtil = 0.0;
  std::pair<NodeId, NodeId> hottest{kNoNode, kNoNode};
  for (const auto& key : keys) {
    Channel* channel = network_.channel(key.first, key.second);
    if (channel == nullptr) continue;
    const double util = channel->utilizationSinceLastPoll();
    if (util > maxUtil) {
      maxUtil = util;
      hottest = key;
    }
  }
  sim::Simulation& sim = network_.sim();
  const sim::SimTime sampled = sim.now();
  sim.postToShard(consumerShard_, sampled + publishDelay_,
                  [this, sampled, maxUtil, hottest] {
                    receive(sampled, maxUtil, hottest);
                  });
}

void ChannelMonitor::receive(sim::SimTime sampleTime, double util,
                             std::pair<NodeId, NodeId> key) {
  ++published_;  // counted on the consumer shard: probes run concurrently
  if (sampleTime > lastSampleTime_) {
    // First fragment of a new probe round: previous round's view is replaced
    // wholesale (utilization is a since-last-poll quantity, not cumulative).
    lastSampleTime_ = sampleTime;
    maxUtil_ = util;
    hottest_ = key;
    return;
  }
  // Same round, another shard's fragment. The earliest-key tie-break makes
  // the combination order-independent and equal to a key-ordered full sweep.
  if (util > maxUtil_ || (util == maxUtil_ && key < hottest_)) {
    maxUtil_ = util;
    hottest_ = key;
  }
}

}  // namespace softqos::net
