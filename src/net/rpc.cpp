#include "net/rpc.hpp"

#include <algorithm>
#include <cstdlib>
#include <optional>
#include <utility>

#include "net/nic.hpp"

namespace softqos::net {

namespace {

/// Strict unsigned parse: the whole string must be digits. Corrupted or
/// malformed frames yield nullopt instead of UB/throws.
std::optional<std::uint64_t> parseU64(const std::string& s) {
  if (s.empty() || s.size() > 19) return std::nullopt;
  std::uint64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return v;
}

}  // namespace

std::vector<std::string> splitString(const std::string& s, char delim,
                                     std::size_t maxParts) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    if (maxParts != 0 && out.size() + 1 == maxParts) {
      out.push_back(s.substr(start));
      return out;
    }
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

RpcEndpoint::RpcEndpoint(Network& network, osim::Host& host, int port)
    : network_(network),
      hostName_(host.name()),
      port_(port),
      backoffRandom_(network.sim().stream("rpc:" + host.name() + ":" +
                                          std::to_string(port))),
      roundtrip_(network.sim().localMetrics().histogramHandle("rpc.roundtrip_us")),
      attempts_(network.sim().localMetrics().histogramHandle("rpc.attempts")) {
  socket_ = host.createSocket();
  Nic& nic = network_.attachHost(host);
  nic.bind(port_, socket_);
  socket_->setDaemonReceiver([this](osim::Message m) { onMessage(std::move(m)); });
}

void RpcEndpoint::setHandler(const std::string& method, Handler handler) {
  handlers_[method] = std::move(handler);
}

void RpcEndpoint::sendRaw(const std::string& destHost, int destPort,
                          std::string payload) {
  osim::Message m;
  m.kind = "rpc";
  m.bytes = 256 + static_cast<std::int64_t>(payload.size());
  m.payload = std::move(payload);
  network_.sendToHost(hostName_, destHost, destPort, std::move(m));
}

void RpcEndpoint::call(const std::string& destHost, int destPort,
                       const std::string& method, const std::string& body,
                       ReplyCont onReply, sim::SimDuration timeout) {
  CallOptions options;
  options.timeout = timeout;
  call(destHost, destPort, method, body, std::move(onReply), options);
}

void RpcEndpoint::call(const std::string& destHost, int destPort,
                       const std::string& method, const std::string& body,
                       ReplyCont onReply, const CallOptions& options) {
  if (!enabled_) {
    // A crashed daemon issues nothing; fail asynchronously to preserve the
    // "exactly once, never re-entrant" continuation contract.
    network_.sim().after(0, [cont = std::move(onReply)] {
      if (cont) cont(false, "");
    });
    return;
  }
  const std::uint64_t id = nextCallId_++;
  PendingCall pc;
  pc.cont = std::move(onReply);
  pc.destHost = destHost;
  pc.destPort = destPort;
  pc.startedAt = network_.sim().now();
  // Frame: Q|<id>|<replyHost>|<replyPort>|<method>|<body>, or with a trace
  // context riding along: QT|<traceId:spanId>|<id>|...
  const std::string tail = std::to_string(id) + "|" + hostName_ + "|" +
                           std::to_string(port_) + "|" + method + "|" + body;
  sim::SpanObserver* o = network_.sim().observer();
  if (o != nullptr && options.context.valid()) {
    pc.span = o->beginSpan(pc.startedAt, options.context, "rpc:" + method,
                           "rpc:" + hostName_);
    o->annotate(pc.span, "dest", destHost + ":" + std::to_string(destPort));
    pc.payload = "QT|" + pc.span.serialize() + "|" + tail;
  } else {
    pc.payload = "Q|" + tail;
  }
  pc.options = options;
  pc.options.maxAttempts = std::max(1, options.maxAttempts);
  pc.timeoutEvent = network_.sim().after(
      pc.options.timeout, [this, id] { onCallTimeout(id); });

  const std::string frame = pc.payload;
  pending_.emplace(id, std::move(pc));
  sendRaw(destHost, destPort, frame);
}

void RpcEndpoint::notify(const std::string& destHost, int destPort,
                         const std::string& method, const std::string& body) {
  if (!enabled_) return;  // a crashed daemon publishes nothing
  // Frame: N|<method>|<body> — no call id, so the receiver keeps no state.
  sendRaw(destHost, destPort, "N|" + method + "|" + body);
}

void RpcEndpoint::onCallTimeout(std::uint64_t id) {
  const auto it = pending_.find(id);
  if (it == pending_.end()) return;
  PendingCall& pc = it->second;

  if (pc.attempt >= pc.options.maxAttempts) {
    ReplyCont cont = std::move(pc.cont);
    attempts_.record(static_cast<double>(pc.attempt));
    const sim::TraceContext span = pc.span;
    pending_.erase(it);
    ++timeouts_;
    if (span.valid()) {
      if (sim::SpanObserver* o = network_.sim().observer()) {
        o->annotate(span, "result", "timeout");
        o->endSpan(network_.sim().now(), span);
      }
    }
    if (cont) cont(false, "");
    return;
  }

  // Exponential backoff with jitter before the next attempt. The random
  // draw happens only on this path, so retry-free runs consume no
  // randomness from the endpoint's stream.
  sim::SimDuration backoff = pc.options.backoffBase;
  for (int i = 1; i < pc.attempt && backoff < pc.options.backoffMax; ++i) {
    backoff *= 2;
  }
  backoff = std::min(backoff, pc.options.backoffMax);
  if (pc.options.jitter > 0.0) {
    const double j = pc.options.jitter;
    const double factor = backoffRandom_.uniform(1.0 - j, 1.0 + j);
    backoff = std::max<sim::SimDuration>(
        1, static_cast<sim::SimDuration>(static_cast<double>(backoff) * factor));
  }
  ++pc.attempt;
  ++retries_;
  pc.timeoutEvent = network_.sim().after(backoff, [this, id] {
    const auto pit = pending_.find(id);
    if (pit == pending_.end()) return;  // a late reply completed the call
    PendingCall& rpc = pit->second;
    rpc.timeoutEvent = network_.sim().after(
        rpc.options.timeout, [this, id] { onCallTimeout(id); });
    if (rpc.span.valid()) {
      // Retries are markers inside the one call span, not new spans: the
      // trace shows a single logical call that needed N sends.
      if (sim::SpanObserver* o = network_.sim().observer()) {
        o->instant(network_.sim().now(), rpc.span,
                   "retry:" + std::to_string(rpc.attempt), "rpc:" + hostName_);
      }
    }
    sendRaw(rpc.destHost, rpc.destPort, rpc.payload);
  });
}

void RpcEndpoint::onMessage(osim::Message m) {
  if (!enabled_) {
    ++droppedWhileDisabled_;
    return;
  }
  // Traced requests ("QT") carry one extra leading field: the caller's span
  // context. Untraced frames keep the seed layout byte-for-byte.
  const bool traced = m.payload.rfind("QT|", 0) == 0;
  const auto parts = splitString(m.payload, '|', traced ? 7 : 6);
  if (parts.empty()) return;
  if ((parts[0] == "Q" && parts.size() == 6) ||
      (parts[0] == "QT" && parts.size() == 7)) {
    const std::size_t off = traced ? 1 : 0;
    const auto replyPort = parseU64(parts[3 + off]);
    if (!replyPort.has_value()) return;  // malformed frame
    sim::TraceContext callerCtx;
    if (traced) callerCtx = sim::TraceContext::parse(parts[1]);
    const std::string id = parts[1 + off];
    const std::string replyHost = parts[2 + off];
    const int port = static_cast<int>(*replyPort);
    const std::string& method = parts[4 + off];
    const std::string& body = parts[5 + off];

    // At-most-once execution under caller retries: a duplicate of a request
    // we already ran replays the cached response (or stays silent while the
    // original handler is still producing one) instead of re-executing a
    // possibly non-idempotent action like "boost".
    const std::string dedupKey =
        replyHost + "|" + std::to_string(port) + "|" + id;
    const auto seen = executed_.find(dedupKey);
    if (seen != executed_.end()) {
      ++duplicates_;
      if (callerCtx.valid()) {
        // Suppression is part of the caller's call span, not a new one.
        if (sim::SpanObserver* o = network_.sim().observer()) {
          o->instant(network_.sim().now(), callerCtx, "duplicate-suppressed",
                     "rpc:" + hostName_);
        }
      }
      if (seen->second.responded) {
        sendRaw(replyHost, port, "S|" + id + "|" + seen->second.response);
      }
      return;
    }
    executed_.emplace(dedupKey, ExecutedRequest{});
    executedOrder_.push_back(dedupKey);
    constexpr std::size_t kExecutedMemory = 256;
    while (executedOrder_.size() > kExecutedMemory) {
      executed_.erase(executedOrder_.front());
      executedOrder_.pop_front();
    }

    ++handled_;
    sim::TraceContext serveSpan;
    if (callerCtx.valid()) {
      if (sim::SpanObserver* o = network_.sim().observer()) {
        serveSpan = o->beginSpan(network_.sim().now(), callerCtx,
                                 "serve:" + method, "rpc:" + hostName_);
      }
    }
    Responder respond = [this, id, replyHost, port, dedupKey,
                         serveSpan](std::string respBody) {
      const auto entry = executed_.find(dedupKey);
      if (entry != executed_.end()) {
        entry->second.responded = true;
        entry->second.response = respBody;
      }
      if (serveSpan.valid()) {
        // Responders may fire asynchronously (fan-out queries); the serve
        // span covers handler start through response send.
        if (sim::SpanObserver* o = network_.sim().observer()) {
          o->endSpan(network_.sim().now(), serveSpan);
        }
      }
      sendRaw(replyHost, port, "S|" + id + "|" + std::move(respBody));
    };
    const auto it = handlers_.find(method);
    if (it == handlers_.end()) {
      respond("ERR:unknown-method");
      return;
    }
    it->second(body, std::move(respond));
    return;
  }
  if (parts[0] == "N") {
    // One-way notification: N|<method>|<body>. Run the handler with a
    // discarding responder; unknown methods are silently ignored (there is
    // nobody to tell).
    const auto note = splitString(m.payload, '|', 3);
    if (note.size() < 3) return;
    const auto it = handlers_.find(note[1]);
    if (it == handlers_.end()) return;
    ++handled_;
    ++notifications_;
    it->second(note[2], [](std::string) {});
    return;
  }
  if (parts[0] == "S") {
    // Frame: S|<id>|<body> — body may itself contain '|'.
    const auto resp = splitString(m.payload, '|', 3);
    if (resp.size() < 3) return;
    const auto id = parseU64(resp[1]);
    if (!id.has_value()) return;  // malformed frame
    const auto it = pending_.find(*id);
    if (it == pending_.end()) {
      // The call already completed or gave up (all attempts timed out):
      // suppress the stale response so the continuation cannot double-fire.
      ++lateReplies_;
      return;
    }
    ReplyCont cont = std::move(it->second.cont);
    network_.sim().cancel(it->second.timeoutEvent);
    roundtrip_.record(
        static_cast<double>(network_.sim().now() - it->second.startedAt));
    attempts_.record(static_cast<double>(it->second.attempt));
    const sim::TraceContext span = it->second.span;
    const int attempt = it->second.attempt;
    pending_.erase(it);
    if (span.valid()) {
      if (sim::SpanObserver* o = network_.sim().observer()) {
        o->annotate(span, "attempts", std::to_string(attempt));
        o->endSpan(network_.sim().now(), span);
      }
    }
    if (cont) cont(true, resp[2]);
  }
}

}  // namespace softqos::net
