#include "net/rpc.hpp"

#include <algorithm>
#include <cstdlib>
#include <optional>
#include <utility>

#include "net/nic.hpp"

namespace softqos::net {

namespace {

/// Strict unsigned parse: the whole string must be digits. Corrupted or
/// malformed frames yield nullopt instead of UB/throws.
std::optional<std::uint64_t> parseU64(const std::string& s) {
  if (s.empty() || s.size() > 19) return std::nullopt;
  std::uint64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return v;
}

}  // namespace

std::vector<std::string> splitString(const std::string& s, char delim,
                                     std::size_t maxParts) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    if (maxParts != 0 && out.size() + 1 == maxParts) {
      out.push_back(s.substr(start));
      return out;
    }
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

RpcEndpoint::RpcEndpoint(Network& network, osim::Host& host, int port)
    : network_(network),
      hostName_(host.name()),
      port_(port),
      backoffRandom_(network.sim().stream("rpc:" + host.name() + ":" +
                                          std::to_string(port))) {
  socket_ = host.createSocket();
  Nic& nic = network_.attachHost(host);
  nic.bind(port_, socket_);
  socket_->setDaemonReceiver([this](osim::Message m) { onMessage(std::move(m)); });
}

void RpcEndpoint::setHandler(const std::string& method, Handler handler) {
  handlers_[method] = std::move(handler);
}

void RpcEndpoint::sendRaw(const std::string& destHost, int destPort,
                          std::string payload) {
  osim::Message m;
  m.kind = "rpc";
  m.bytes = 256 + static_cast<std::int64_t>(payload.size());
  m.payload = std::move(payload);
  network_.sendToHost(hostName_, destHost, destPort, std::move(m));
}

void RpcEndpoint::call(const std::string& destHost, int destPort,
                       const std::string& method, const std::string& body,
                       ReplyCont onReply, sim::SimDuration timeout) {
  CallOptions options;
  options.timeout = timeout;
  call(destHost, destPort, method, body, std::move(onReply), options);
}

void RpcEndpoint::call(const std::string& destHost, int destPort,
                       const std::string& method, const std::string& body,
                       ReplyCont onReply, const CallOptions& options) {
  if (!enabled_) {
    // A crashed daemon issues nothing; fail asynchronously to preserve the
    // "exactly once, never re-entrant" continuation contract.
    network_.sim().after(0, [cont = std::move(onReply)] {
      if (cont) cont(false, "");
    });
    return;
  }
  const std::uint64_t id = nextCallId_++;
  PendingCall pc;
  pc.cont = std::move(onReply);
  pc.destHost = destHost;
  pc.destPort = destPort;
  // Frame: Q|<id>|<replyHost>|<replyPort>|<method>|<body>
  pc.payload = "Q|" + std::to_string(id) + "|" + hostName_ + "|" +
               std::to_string(port_) + "|" + method + "|" + body;
  pc.options = options;
  pc.options.maxAttempts = std::max(1, options.maxAttempts);
  pc.timeoutEvent = network_.sim().after(
      pc.options.timeout, [this, id] { onCallTimeout(id); });

  const std::string frame = pc.payload;
  pending_.emplace(id, std::move(pc));
  sendRaw(destHost, destPort, frame);
}

void RpcEndpoint::onCallTimeout(std::uint64_t id) {
  const auto it = pending_.find(id);
  if (it == pending_.end()) return;
  PendingCall& pc = it->second;

  if (pc.attempt >= pc.options.maxAttempts) {
    ReplyCont cont = std::move(pc.cont);
    pending_.erase(it);
    ++timeouts_;
    if (cont) cont(false, "");
    return;
  }

  // Exponential backoff with jitter before the next attempt. The random
  // draw happens only on this path, so retry-free runs consume no
  // randomness from the endpoint's stream.
  sim::SimDuration backoff = pc.options.backoffBase;
  for (int i = 1; i < pc.attempt && backoff < pc.options.backoffMax; ++i) {
    backoff *= 2;
  }
  backoff = std::min(backoff, pc.options.backoffMax);
  if (pc.options.jitter > 0.0) {
    const double j = pc.options.jitter;
    const double factor = backoffRandom_.uniform(1.0 - j, 1.0 + j);
    backoff = std::max<sim::SimDuration>(
        1, static_cast<sim::SimDuration>(static_cast<double>(backoff) * factor));
  }
  ++pc.attempt;
  ++retries_;
  pc.timeoutEvent = network_.sim().after(backoff, [this, id] {
    const auto pit = pending_.find(id);
    if (pit == pending_.end()) return;  // a late reply completed the call
    PendingCall& rpc = pit->second;
    rpc.timeoutEvent = network_.sim().after(
        rpc.options.timeout, [this, id] { onCallTimeout(id); });
    sendRaw(rpc.destHost, rpc.destPort, rpc.payload);
  });
}

void RpcEndpoint::onMessage(osim::Message m) {
  if (!enabled_) {
    ++droppedWhileDisabled_;
    return;
  }
  const auto parts = splitString(m.payload, '|', 6);
  if (parts.empty()) return;
  if (parts[0] == "Q" && parts.size() == 6) {
    const auto replyPort = parseU64(parts[3]);
    if (!replyPort.has_value()) return;  // malformed frame
    const std::string id = parts[1];
    const std::string replyHost = parts[2];
    const int port = static_cast<int>(*replyPort);
    const std::string& method = parts[4];
    const std::string& body = parts[5];

    // At-most-once execution under caller retries: a duplicate of a request
    // we already ran replays the cached response (or stays silent while the
    // original handler is still producing one) instead of re-executing a
    // possibly non-idempotent action like "boost".
    const std::string dedupKey =
        replyHost + "|" + std::to_string(port) + "|" + id;
    const auto seen = executed_.find(dedupKey);
    if (seen != executed_.end()) {
      ++duplicates_;
      if (seen->second.responded) {
        sendRaw(replyHost, port, "S|" + id + "|" + seen->second.response);
      }
      return;
    }
    executed_.emplace(dedupKey, ExecutedRequest{});
    executedOrder_.push_back(dedupKey);
    constexpr std::size_t kExecutedMemory = 256;
    while (executedOrder_.size() > kExecutedMemory) {
      executed_.erase(executedOrder_.front());
      executedOrder_.pop_front();
    }

    ++handled_;
    Responder respond = [this, id, replyHost, port,
                         dedupKey](std::string respBody) {
      const auto entry = executed_.find(dedupKey);
      if (entry != executed_.end()) {
        entry->second.responded = true;
        entry->second.response = respBody;
      }
      sendRaw(replyHost, port, "S|" + id + "|" + std::move(respBody));
    };
    const auto it = handlers_.find(method);
    if (it == handlers_.end()) {
      respond("ERR:unknown-method");
      return;
    }
    it->second(body, std::move(respond));
    return;
  }
  if (parts[0] == "S") {
    // Frame: S|<id>|<body> — body may itself contain '|'.
    const auto resp = splitString(m.payload, '|', 3);
    if (resp.size() < 3) return;
    const auto id = parseU64(resp[1]);
    if (!id.has_value()) return;  // malformed frame
    const auto it = pending_.find(*id);
    if (it == pending_.end()) {
      // The call already completed or gave up (all attempts timed out):
      // suppress the stale response so the continuation cannot double-fire.
      ++lateReplies_;
      return;
    }
    ReplyCont cont = std::move(it->second.cont);
    network_.sim().cancel(it->second.timeoutEvent);
    pending_.erase(it);
    if (cont) cont(true, resp[2]);
  }
}

}  // namespace softqos::net
