#include "net/rpc.hpp"

#include <utility>

#include "net/nic.hpp"

namespace softqos::net {

std::vector<std::string> splitString(const std::string& s, char delim,
                                     std::size_t maxParts) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    if (maxParts != 0 && out.size() + 1 == maxParts) {
      out.push_back(s.substr(start));
      return out;
    }
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

RpcEndpoint::RpcEndpoint(Network& network, osim::Host& host, int port)
    : network_(network), hostName_(host.name()), port_(port) {
  socket_ = host.createSocket();
  Nic& nic = network_.attachHost(host);
  nic.bind(port_, socket_);
  socket_->setDaemonReceiver([this](osim::Message m) { onMessage(std::move(m)); });
}

void RpcEndpoint::setHandler(const std::string& method, Handler handler) {
  handlers_[method] = std::move(handler);
}

void RpcEndpoint::sendRaw(const std::string& destHost, int destPort,
                          std::string payload) {
  osim::Message m;
  m.kind = "rpc";
  m.bytes = 256 + static_cast<std::int64_t>(payload.size());
  m.payload = std::move(payload);
  network_.sendToHost(hostName_, destHost, destPort, std::move(m));
}

void RpcEndpoint::call(const std::string& destHost, int destPort,
                       const std::string& method, const std::string& body,
                       ReplyCont onReply, sim::SimDuration timeout) {
  const std::uint64_t id = nextCallId_++;
  PendingCall pc;
  pc.cont = std::move(onReply);
  pc.timeoutEvent = network_.sim().after(timeout, [this, id] {
    const auto it = pending_.find(id);
    if (it == pending_.end()) return;
    ReplyCont cont = std::move(it->second.cont);
    pending_.erase(it);
    ++timeouts_;
    if (cont) cont(false, "");
  });
  pending_.emplace(id, std::move(pc));

  // Frame: Q|<id>|<replyHost>|<replyPort>|<method>|<body>
  sendRaw(destHost, destPort,
          "Q|" + std::to_string(id) + "|" + hostName_ + "|" +
              std::to_string(port_) + "|" + method + "|" + body);
}

void RpcEndpoint::onMessage(osim::Message m) {
  const auto parts = splitString(m.payload, '|', 6);
  if (parts.empty()) return;
  if (parts[0] == "Q" && parts.size() == 6) {
    ++handled_;
    const std::string id = parts[1];
    const std::string replyHost = parts[2];
    const int replyPort = std::stoi(parts[3]);
    const std::string& method = parts[4];
    const std::string& body = parts[5];
    Responder respond = [this, id, replyHost, replyPort](std::string respBody) {
      sendRaw(replyHost, replyPort, "S|" + id + "|" + std::move(respBody));
    };
    const auto it = handlers_.find(method);
    if (it == handlers_.end()) {
      respond("ERR:unknown-method");
      return;
    }
    it->second(body, std::move(respond));
    return;
  }
  if (parts[0] == "S") {
    // Frame: S|<id>|<body> — body may itself contain '|'.
    const auto resp = splitString(m.payload, '|', 3);
    if (resp.size() < 3) return;
    const std::uint64_t id = std::stoull(resp[1]);
    const auto it = pending_.find(id);
    if (it == pending_.end()) return;  // raced with timeout
    ReplyCont cont = std::move(it->second.cont);
    network_.sim().cancel(it->second.timeoutEvent);
    pending_.erase(it);
    if (cont) cont(true, resp[2]);
  }
}

}  // namespace softqos::net
