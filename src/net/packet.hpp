// Network packets: fragments of application messages routed hop by hop.
#pragma once

#include <cstdint>
#include <string>

#include "osim/socket.hpp"
#include "sim/time.hpp"

namespace softqos::net {

/// Node identifier within a Network's topology.
using NodeId = int;

inline constexpr NodeId kNoNode = -1;

struct Packet {
  NodeId src = kNoNode;
  NodeId dst = kNoNode;
  int dstPort = 0;               // demux key at the destination NIC
  std::uint64_t messageId = 0;   // reassembly key
  std::int64_t bytes = 0;        // this fragment's wire size
  std::int64_t messageBytes = 0; // total size of the carried message
  bool lastFragment = false;
  bool corrupted = false;        // flipped bits on a degraded link (fault injection)
  osim::Message message;         // metadata, populated on the last fragment
  sim::SimTime injectedAt = 0;
};

}  // namespace softqos::net
