#include "net/network.hpp"

#include <cassert>
#include <deque>
#include <stdexcept>
#include <utility>

#include "net/nic.hpp"

namespace softqos::net {

NetNode::NetNode(Network& network, std::string name)
    : network_(network), name_(std::move(name)) {
  id_ = network_.registerNode(this, name_);
  shard_ = network_.sim().currentShard();
}

Network::Network(sim::Simulation& simulation, std::int64_t mtuBytes)
    : sim_(simulation), mtu_(mtuBytes) {
  if (mtu_ <= 0) throw std::invalid_argument("Network: MTU must be positive");
}

Network::~Network() = default;

NodeId Network::registerNode(NetNode* node, const std::string& name) {
  if (byName_.contains(name)) {
    throw std::invalid_argument("Network: duplicate node name: " + name);
  }
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(node);
  adjacency_.emplace_back();
  msgSeq_.push_back(0);
  byName_.emplace(name, id);
  routesDirty_ = true;
  return id;
}

NetNode* Network::node(NodeId id) {
  if (id < 0 || id >= static_cast<NodeId>(nodes_.size())) return nullptr;
  return nodes_[static_cast<std::size_t>(id)];
}

NetNode* Network::nodeByName(const std::string& name) {
  const auto it = byName_.find(name);
  return it == byName_.end() ? nullptr : nodes_[static_cast<std::size_t>(it->second)];
}

void Network::link(NetNode& a, NetNode& b, ChannelConfig config) {
  channels_.emplace(std::make_pair(a.id(), b.id()),
                    std::make_unique<Channel>(sim_, b, config));
  channels_.emplace(std::make_pair(b.id(), a.id()),
                    std::make_unique<Channel>(sim_, a, config));
  adjacency_[static_cast<std::size_t>(a.id())].push_back(b.id());
  adjacency_[static_cast<std::size_t>(b.id())].push_back(a.id());
  routesDirty_ = true;
}

Channel* Network::channel(NodeId from, NodeId to) {
  const auto it = channels_.find(std::make_pair(from, to));
  return it == channels_.end() ? nullptr : it->second.get();
}

bool Network::setLinkEnabled(NodeId a, NodeId b, bool enabled) {
  if (channel(a, b) == nullptr || channel(b, a) == nullptr) return false;
  if (enabled) {
    disabledLinks_.erase({a, b});
    disabledLinks_.erase({b, a});
  } else {
    disabledLinks_.insert({a, b});
    disabledLinks_.insert({b, a});
  }
  routesDirty_ = true;
  return true;
}

bool Network::linkEnabled(NodeId a, NodeId b) const {
  return !disabledLinks_.contains({a, b});
}

Nic& Network::attachHost(osim::Host& host) {
  auto it = nics_.find(host.name());
  if (it != nics_.end()) return *it->second;
  auto nic = std::make_unique<Nic>(*this, host);
  Nic& ref = *nic;
  nics_.emplace(host.name(), std::move(nic));
  return ref;
}

Nic* Network::nicForHost(const std::string& hostName) {
  const auto it = nics_.find(hostName);
  return it == nics_.end() ? nullptr : it->second.get();
}

void Network::recomputeRoutes() {
  const std::size_t n = nodes_.size();
  nextHop_.assign(n, std::vector<NodeId>(n, kNoNode));
  // BFS from every destination: nextHop_[from][dst] is the neighbour of
  // `from` on a shortest path to `dst`.
  for (std::size_t dst = 0; dst < n; ++dst) {
    std::vector<NodeId> toward(n, kNoNode);  // next hop toward dst
    std::vector<bool> seen(n, false);
    std::deque<NodeId> frontier;
    seen[dst] = true;
    frontier.push_back(static_cast<NodeId>(dst));
    while (!frontier.empty()) {
      const NodeId cur = frontier.front();
      frontier.pop_front();
      // Only switches transit traffic: a path may end at any node but may
      // not pass *through* a host NIC or a traffic source/sink.
      if (cur != static_cast<NodeId>(dst) &&
          !nodes_[static_cast<std::size_t>(cur)]->forwards()) {
        continue;
      }
      for (const NodeId nb : adjacency_[static_cast<std::size_t>(cur)]) {
        // BFS runs from the destination outward, so the edge used for
        // forwarding is nb -> cur; honor administrative link state.
        if (disabledLinks_.contains({nb, cur})) continue;
        if (seen[static_cast<std::size_t>(nb)]) continue;
        seen[static_cast<std::size_t>(nb)] = true;
        toward[static_cast<std::size_t>(nb)] = cur;
        frontier.push_back(nb);
      }
    }
    for (std::size_t from = 0; from < n; ++from) {
      nextHop_[from][dst] = toward[from];
    }
  }
  routesDirty_ = false;
}

NodeId Network::nextHop(NodeId from, NodeId dst) {
  if (routesDirty_) recomputeRoutes();
  if (from < 0 || dst < 0 || from >= static_cast<NodeId>(nodes_.size()) ||
      dst >= static_cast<NodeId>(nodes_.size())) {
    return kNoNode;
  }
  return nextHop_[static_cast<std::size_t>(from)][static_cast<std::size_t>(dst)];
}

void Network::forward(NodeId from, Packet packet) {
  if (from == packet.dst) {
    NetNode* self = node(from);
    if (self != nullptr) self->onPacket(std::move(packet));
    return;
  }
  const NodeId hop = nextHop(from, packet.dst);
  if (hop == kNoNode) {
    ++unreachable_;
    return;
  }
  Channel* ch = channel(from, hop);
  assert(ch != nullptr && "route uses a non-existent channel");
  ch->enqueue(std::move(packet));
}

void Network::primeRoutes() {
  if (routesDirty_) recomputeRoutes();
}

sim::SimDuration Network::minCrossShardPropagation() const {
  sim::SimDuration min = 0;
  for (const auto& [key, channel] : channels_) {
    const auto& [from, to] = key;
    if (nodes_[static_cast<std::size_t>(from)]->shard() ==
        nodes_[static_cast<std::size_t>(to)]->shard()) {
      continue;
    }
    const sim::SimDuration delay = channel->config().propagationDelay;
    if (min == 0 || delay < min) min = delay;
  }
  return min;
}

sim::SimDuration Network::minPropagation() const {
  sim::SimDuration min = 0;
  for (const auto& [key, channel] : channels_) {
    (void)key;
    const sim::SimDuration delay = channel->config().propagationDelay;
    if (min == 0 || delay < min) min = delay;
  }
  return min;
}

void Network::sendMessage(NodeId srcNic, NodeId dstNic, int dstPort,
                          osim::Message m) {
  // Message ids embed the source node so shard-parallel senders never share
  // a counter; the id is a reassembly key only.
  const std::uint64_t messageId =
      ((static_cast<std::uint64_t>(srcNic) + 1) << 40) |
      ++msgSeq_[static_cast<std::size_t>(srcNic)];
  const std::int64_t total = std::max<std::int64_t>(m.bytes, 1);
  std::int64_t remaining = total;
  while (remaining > 0) {
    const std::int64_t fragment = std::min(remaining, mtu_);
    remaining -= fragment;
    Packet p;
    p.src = srcNic;
    p.dst = dstNic;
    p.dstPort = dstPort;
    p.messageId = messageId;
    p.bytes = fragment;
    p.messageBytes = total;
    p.lastFragment = (remaining == 0);
    p.injectedAt = sim_.now();
    if (p.lastFragment) p.message = std::move(m);
    forward(srcNic, std::move(p));
  }
}

bool Network::sendToHost(const std::string& srcHost, const std::string& dstHost,
                         int dstPort, osim::Message m) {
  Nic* src = nicForHost(srcHost);
  Nic* dst = nicForHost(dstHost);
  if (src == nullptr || dst == nullptr) return false;
  sendMessage(src->id(), dst->id(), dstPort, std::move(m));
  return true;
}

void Network::connect(const std::shared_ptr<osim::Socket>& a, osim::Host& hostA,
                      int portA, const std::shared_ptr<osim::Socket>& b,
                      osim::Host& hostB, int portB) {
  Nic& nicA = attachHost(hostA);
  Nic& nicB = attachHost(hostB);
  nicA.bind(portA, a);
  nicB.bind(portB, b);
  const NodeId idA = nicA.id();
  const NodeId idB = nicB.id();
  a->setTransmit([this, idA, idB, portB](osim::Message m) {
    sendMessage(idA, idB, portB, std::move(m));
  });
  b->setTransmit([this, idA, idB, portA](osim::Message m) {
    sendMessage(idB, idA, portA, std::move(m));
  });
}

}  // namespace softqos::net
