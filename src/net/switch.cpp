#include "net/switch.hpp"

#include <utility>

#include "net/network.hpp"

namespace softqos::net {

Switch::Switch(Network& network, std::string name)
    : NetNode(network, std::move(name)) {}

void Switch::onPacket(Packet packet) {
  if (packet.dst == id()) return;  // switches do not terminate traffic
  ++forwarded_;
  network_.forward(id(), std::move(packet));
}

}  // namespace softqos::net
