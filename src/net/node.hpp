// Base class for anything attached to the network graph.
#pragma once

#include <string>

#include "net/packet.hpp"

namespace softqos::net {

class Network;

class NetNode {
 public:
  NetNode(Network& network, std::string name);
  virtual ~NetNode() = default;

  NetNode(const NetNode&) = delete;
  NetNode& operator=(const NetNode&) = delete;

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Network& network() { return network_; }

  /// A packet arrived over an attached channel.
  virtual void onPacket(Packet packet) = 0;

  /// True for nodes that transit other nodes' traffic (switches). Routing
  /// never sends a path *through* a non-forwarding node (hosts, sources,
  /// sinks terminate traffic, they do not route it).
  [[nodiscard]] virtual bool forwards() const { return false; }

 protected:
  Network& network_;

 private:
  std::string name_;
  NodeId id_;
};

}  // namespace softqos::net
