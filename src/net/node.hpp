// Base class for anything attached to the network graph.
#pragma once

#include <string>

#include "net/packet.hpp"
#include "sim/simulation.hpp"

namespace softqos::net {

class Network;

class NetNode {
 public:
  NetNode(Network& network, std::string name);
  virtual ~NetNode() = default;

  NetNode(const NetNode&) = delete;
  NetNode& operator=(const NetNode&) = delete;

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Network& network() { return network_; }

  /// A packet arrived over an attached channel.
  virtual void onPacket(Packet packet) = 0;

  /// True for nodes that transit other nodes' traffic (switches). Routing
  /// never sends a path *through* a non-forwarding node (hosts, sources,
  /// sinks terminate traffic, they do not route it).
  [[nodiscard]] virtual bool forwards() const { return false; }

  /// Shard this node's events execute on. Captured from the simulation's
  /// current shard at construction (so components built under a ShardScope
  /// land there); may be reassigned with setShard() before the first run.
  /// Channels deliver packets onto the destination node's shard.
  [[nodiscard]] sim::ShardId shard() const { return shard_; }
  void setShard(sim::ShardId shard) { shard_ = shard; }

 protected:
  Network& network_;

 private:
  std::string name_;
  NodeId id_;
  sim::ShardId shard_ = 0;
};

}  // namespace softqos::net
