#include "net/channel.hpp"

#include <algorithm>
#include <utility>

#include "net/node.hpp"

namespace softqos::net {

Channel::Channel(sim::Simulation& simulation, NetNode& to, ChannelConfig config)
    : sim_(simulation), to_(to), config_(config) {}

void Channel::setFaultProfile(LinkFaultProfile profile,
                              sim::RandomStream* random) {
  fault_ = profile;
  faultRandom_ = random;
}

void Channel::enqueue(Packet packet) {
  if (fault_.down) {
    ++faultDrops_;
    return;
  }
  if (fault_.lossRate > 0.0 && faultRandom_ != nullptr &&
      faultRandom_->chance(fault_.lossRate)) {
    ++faultDrops_;
    return;
  }
  if (fault_.corruptRate > 0.0 && faultRandom_ != nullptr &&
      faultRandom_->chance(fault_.corruptRate)) {
    ++faultCorruptions_;
    packet.corrupted = true;
  }
  if (queuedBytes_ + packet.bytes > config_.queueCapacityBytes) {
    ++drops_;
    return;
  }
  queuedBytes_ += packet.bytes;
  queue_.push_back(std::move(packet));
  pump();
}

void Channel::pump() {
  if (transmitting_ || queue_.empty()) return;
  transmitting_ = true;
  Packet p = std::move(queue_.front());
  queue_.pop_front();
  queuedBytes_ -= p.bytes;

  const double serializeSec =
      static_cast<double>(p.bytes) / config_.bytesPerSecond;
  const sim::SimDuration serialize =
      std::max<sim::SimDuration>(1, sim::fromSeconds(serializeSec));
  busyTime_ += serialize;
  bytesSent_ += p.bytes;
  ++packetsSent_;

  sim_.after(serialize, [this, p = std::move(p)]() mutable {
    // Serialization finished: the wire is free for the next packet while this
    // one propagates. Delivery lands on the destination node's shard: the
    // flight time is >= the configured lookahead for any cross-shard link,
    // so the post always respects the conservative window. A channel's own
    // state (queue, transmitter) stays on the sender's shard.
    transmitting_ = false;
    const sim::SimDuration flight = config_.propagationDelay + fault_.extraDelay;
    NetNode* dst = &to_;
    sim_.postToShard(to_.shard(), sim_.now() + flight,
                     [dst, p = std::move(p)]() mutable {
                       dst->onPacket(std::move(p));
                     });
    pump();
  });
}

double Channel::utilization() const {
  const sim::SimTime elapsed = sim_.now();
  if (elapsed <= 0) return 0.0;
  return static_cast<double>(busyTime_) / static_cast<double>(elapsed);
}

double Channel::utilizationSinceLastPoll() {
  const sim::SimTime now = sim_.now();
  const sim::SimDuration window = now - lastPollAt_;
  const sim::SimDuration busy = busyTime_ - busyAtLastPoll_;
  lastPollAt_ = now;
  busyAtLastPoll_ = busyTime_;
  if (window <= 0) return 0.0;
  return std::min(1.0, static_cast<double>(busy) / static_cast<double>(window));
}

}  // namespace softqos::net
