// Topology container: nodes, duplex links, static shortest-path routing, and
// message-level transport (fragmentation to MTU-sized packets).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <set>
#include <memory>
#include <string>
#include <vector>

#include "net/channel.hpp"
#include "net/node.hpp"
#include "net/packet.hpp"
#include "osim/host.hpp"
#include "sim/simulation.hpp"

namespace softqos::net {

class Nic;

class Network {
 public:
  explicit Network(sim::Simulation& simulation, std::int64_t mtuBytes = 1500);
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  [[nodiscard]] sim::Simulation& sim() { return sim_; }
  [[nodiscard]] std::int64_t mtu() const { return mtu_; }

  /// Node registration (called from the NetNode constructor).
  NodeId registerNode(NetNode* node, const std::string& name);

  [[nodiscard]] NetNode* node(NodeId id);
  [[nodiscard]] NetNode* nodeByName(const std::string& name);

  /// Create a duplex link between two nodes (one Channel per direction).
  void link(NetNode& a, NetNode& b, ChannelConfig config = {});

  /// The directed channel from -> to, or nullptr if not directly linked.
  [[nodiscard]] Channel* channel(NodeId from, NodeId to);

  /// Administratively disable/enable a duplex link (both directions).
  /// Disabled links are excluded from routing (packets already queued on the
  /// channel still drain). Returns false when no such link exists.
  bool setLinkEnabled(NodeId a, NodeId b, bool enabled);
  [[nodiscard]] bool linkEnabled(NodeId a, NodeId b) const;

  /// Attach a host to the network by creating its NIC. One NIC per host.
  Nic& attachHost(osim::Host& host);
  [[nodiscard]] Nic* nicForHost(const std::string& hostName);

  /// Next hop from `from` toward `dst` (kNoNode when unreachable). Routes are
  /// recomputed lazily after topology changes (BFS shortest path).
  NodeId nextHop(NodeId from, NodeId dst);

  /// Force route computation now. Sharded runs require this before the first
  /// window (the lazy recompute is not shard-safe); topology changes while
  /// worker threads are running are unsupported.
  void primeRoutes();

  /// Minimum propagation delay over channels whose endpoints live on
  /// different shards — the conservative lookahead for windowed runs.
  /// Returns 0 when no link crosses a shard boundary (all nodes co-located).
  [[nodiscard]] sim::SimDuration minCrossShardPropagation() const;

  /// Minimum propagation delay over all channels (0 with no links): a lower
  /// bound on how stale any cross-shard observation of channel state can be,
  /// used by ChannelMonitor to schedule its sample publications.
  [[nodiscard]] sim::SimDuration minPropagation() const;

  /// Forward a packet out of node `from` toward its destination. Delivers
  /// locally when from == dst; silently drops unreachable packets (counted).
  void forward(NodeId from, Packet packet);

  /// Send an application message from one NIC to a port on another, splitting
  /// it into MTU-sized fragments.
  void sendMessage(NodeId srcNic, NodeId dstNic, int dstPort, osim::Message m);

  /// Convenience: send host-to-host by name (used by the RPC layer).
  /// Returns false if either host is not attached.
  bool sendToHost(const std::string& srcHost, const std::string& dstHost,
                  int dstPort, osim::Message m);

  /// Plumb two host sockets as a connected pair across the network.
  void connect(const std::shared_ptr<osim::Socket>& a, osim::Host& hostA,
               int portA, const std::shared_ptr<osim::Socket>& b,
               osim::Host& hostB, int portB);

  [[nodiscard]] std::uint64_t unreachableDrops() const {
    return unreachable_.load(std::memory_order_relaxed);
  }

  /// All directed channels (diagnostics; domain managers poll these).
  [[nodiscard]] const std::map<std::pair<NodeId, NodeId>,
                               std::unique_ptr<Channel>>&
  channels() const {
    return channels_;
  }

 private:
  void recomputeRoutes();

  sim::Simulation& sim_;
  std::int64_t mtu_;
  std::vector<NetNode*> nodes_;
  std::map<std::string, NodeId> byName_;
  std::map<std::pair<NodeId, NodeId>, std::unique_ptr<Channel>> channels_;
  std::vector<std::vector<NodeId>> adjacency_;
  std::vector<std::vector<NodeId>> nextHop_;  // [from][dst]
  std::set<std::pair<NodeId, NodeId>> disabledLinks_;  // directed pairs
  bool routesDirty_ = true;
  std::map<std::string, std::unique_ptr<Nic>> nics_;
  /// Per-source message sequence numbers: message ids embed the source node,
  /// so concurrent senders on different shards never contend on a shared
  /// counter (ids are reassembly keys only; their values are unobservable).
  std::vector<std::uint64_t> msgSeq_;
  std::atomic<std::uint64_t> unreachable_{0};
};

}  // namespace softqos::net
