// Minimal request/response RPC between management daemons, carried over the
// simulated network (QoS Host Manager <-> QoS Domain Manager queries).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "osim/host.hpp"
#include "osim/socket.hpp"
#include "sim/simulation.hpp"

namespace softqos::net {

/// One RPC endpoint bound to (host, port). Handlers are registered by method
/// name; calls address a destination host name + port.
class RpcEndpoint {
 public:
  /// Invoked with the response body, or with ok=false on timeout.
  using ReplyCont = std::function<void(bool ok, std::string body)>;
  /// Sends the response; may be invoked asynchronously (fan-out queries).
  using Responder = std::function<void(std::string body)>;
  using Handler = std::function<void(const std::string& body, Responder respond)>;

  RpcEndpoint(Network& network, osim::Host& host, int port);

  RpcEndpoint(const RpcEndpoint&) = delete;
  RpcEndpoint& operator=(const RpcEndpoint&) = delete;

  void setHandler(const std::string& method, Handler handler);

  /// Issue a request. `onReply` always fires exactly once (response or
  /// timeout). Unknown methods at the callee produce an "ERR:unknown-method"
  /// response body.
  void call(const std::string& destHost, int destPort,
            const std::string& method, const std::string& body,
            ReplyCont onReply, sim::SimDuration timeout = sim::sec(2));

  [[nodiscard]] const std::string& hostName() const { return hostName_; }
  [[nodiscard]] int port() const { return port_; }
  [[nodiscard]] std::uint64_t requestsHandled() const { return handled_; }
  [[nodiscard]] std::uint64_t timeouts() const { return timeouts_; }

 private:
  struct PendingCall {
    ReplyCont cont;
    sim::EventId timeoutEvent = sim::kInvalidEvent;
  };

  void onMessage(osim::Message m);
  void sendRaw(const std::string& destHost, int destPort, std::string payload);

  Network& network_;
  std::string hostName_;
  int port_;
  std::shared_ptr<osim::Socket> socket_;
  std::map<std::string, Handler> handlers_;
  std::map<std::uint64_t, PendingCall> pending_;
  std::uint64_t nextCallId_ = 1;
  std::uint64_t handled_ = 0;
  std::uint64_t timeouts_ = 0;
};

/// Split `s` on `delim` into at most `maxParts` pieces (the last keeps the
/// remainder). Shared by the RPC framing and report serialization.
std::vector<std::string> splitString(const std::string& s, char delim,
                                     std::size_t maxParts = 0);

}  // namespace softqos::net
