// Minimal request/response RPC between management daemons, carried over the
// simulated network (QoS Host Manager <-> QoS Domain Manager queries).
//
// Calls optionally retry with exponential backoff + jitter (CallOptions):
// the management plane must keep probing through partitions and host
// crashes, and a retry storm synchronized across endpoints would defeat the
// point — the jitter draws from a per-endpoint seeded stream so runs stay
// byte-reproducible. Replies that arrive after the final timeout already
// fired are discarded and counted (late-reply suppression); the ReplyCont
// fires exactly once either way.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "osim/host.hpp"
#include "osim/socket.hpp"
#include "sim/random.hpp"
#include "sim/simulation.hpp"

namespace softqos::net {

/// One RPC endpoint bound to (host, port). Handlers are registered by method
/// name; calls address a destination host name + port.
class RpcEndpoint {
 public:
  /// Invoked with the response body, or with ok=false on timeout.
  using ReplyCont = std::function<void(bool ok, std::string body)>;
  /// Sends the response; may be invoked asynchronously (fan-out queries).
  using Responder = std::function<void(std::string body)>;
  using Handler = std::function<void(const std::string& body, Responder respond)>;

  /// Per-call policy. The default (one attempt, 2 s timeout) matches the
  /// pre-retry behaviour exactly — no events and no random draws beyond the
  /// single timeout — so existing scenarios replay byte-identically.
  struct CallOptions {
    sim::SimDuration timeout = sim::sec(2);       // per attempt
    int maxAttempts = 1;                          // 1 = no retries
    sim::SimDuration backoffBase = sim::msec(200);// doubles per retry
    sim::SimDuration backoffMax = sim::sec(2);
    double jitter = 0.2;                          // ± fraction on the backoff
    /// Causal-trace parent for this call. When valid (and an observer is
    /// attached) the call gets its own span — retries and duplicate
    /// suppression stay inside it — and the request is framed as
    /// "QT|<ctx>|..." so the callee's serve span joins the same trace.
    /// Invalid (the default) keeps the seed "Q|..." frame byte-identical.
    sim::TraceContext context;
  };

  RpcEndpoint(Network& network, osim::Host& host, int port);

  RpcEndpoint(const RpcEndpoint&) = delete;
  RpcEndpoint& operator=(const RpcEndpoint&) = delete;

  void setHandler(const std::string& method, Handler handler);

  /// Issue a request. `onReply` always fires exactly once (response or
  /// final timeout). Unknown methods at the callee produce an
  /// "ERR:unknown-method" response body.
  void call(const std::string& destHost, int destPort,
            const std::string& method, const std::string& body,
            ReplyCont onReply, sim::SimDuration timeout = sim::sec(2));

  /// Issue a request with an explicit retry policy.
  void call(const std::string& destHost, int destPort,
            const std::string& method, const std::string& body,
            ReplyCont onReply, const CallOptions& options);

  /// One-way notification: the handler runs at the destination but whatever
  /// it responds is discarded — no reply frame, no timeout event, no retry
  /// or duplicate-suppression state at either end. Streaming telemetry
  /// publishes through this: a lost window is just a gap in the rollup, not
  /// something worth a retransmission storm during the very overload the
  /// telemetry is reporting. Dropped silently while the daemon is disabled.
  void notify(const std::string& destHost, int destPort,
              const std::string& method, const std::string& body);

  /// Daemon liveness knob for fault injection: while disabled, every inbound
  /// frame is dropped (requests unanswered, responses unprocessed) and new
  /// outbound calls fail asynchronously — the daemon is "crashed" without
  /// tearing down its socket binding.
  void setEnabled(bool enabled) { enabled_ = enabled; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  [[nodiscard]] const std::string& hostName() const { return hostName_; }
  [[nodiscard]] int port() const { return port_; }
  [[nodiscard]] std::uint64_t requestsHandled() const { return handled_; }
  /// Calls that exhausted every attempt without a response.
  [[nodiscard]] std::uint64_t timeouts() const { return timeouts_; }
  /// Re-sent attempts (beyond each call's first).
  [[nodiscard]] std::uint64_t retries() const { return retries_; }
  /// Responses discarded because their call had already completed or timed
  /// out (suppressed — the continuation does NOT fire again).
  [[nodiscard]] std::uint64_t lateReplies() const { return lateReplies_; }
  /// Inbound frames dropped while the endpoint was disabled (daemon crash).
  [[nodiscard]] std::uint64_t droppedWhileDisabled() const {
    return droppedWhileDisabled_;
  }
  /// Retransmitted requests whose call id was already seen (the handler did
  /// NOT run again; the cached response was replayed when available).
  [[nodiscard]] std::uint64_t duplicateRequests() const { return duplicates_; }
  /// One-way notifications whose handler ran (subset of requestsHandled()).
  [[nodiscard]] std::uint64_t notificationsReceived() const {
    return notifications_;
  }

 private:
  struct PendingCall {
    ReplyCont cont;
    sim::EventId timeoutEvent = sim::kInvalidEvent;
    // Retry state: the original frame is re-sent verbatim under the same
    // call id, so a slow first-attempt reply can still complete the call.
    std::string destHost;
    int destPort = 0;
    std::string payload;
    int attempt = 1;
    CallOptions options;
    sim::SimTime startedAt = 0;
    sim::TraceContext span;  // the call span; invalid when untraced
  };

  /// Executed-request memory for at-most-once handler semantics under
  /// retries: maps "<replyHost>|<replyPort>|<id>" to the response once the
  /// handler produced one (empty optional while still executing). Bounded
  /// FIFO — old entries are forgotten, which is safe because retries of a
  /// call stop as soon as any response lands.
  struct ExecutedRequest {
    bool responded = false;
    std::string response;
  };

  void onMessage(osim::Message m);
  void onCallTimeout(std::uint64_t id);
  void sendRaw(const std::string& destHost, int destPort, std::string payload);

  Network& network_;
  std::string hostName_;
  int port_;
  std::shared_ptr<osim::Socket> socket_;
  std::map<std::string, Handler> handlers_;
  std::map<std::uint64_t, PendingCall> pending_;
  std::map<std::string, ExecutedRequest> executed_;
  std::deque<std::string> executedOrder_;  // FIFO eviction of executed_
  sim::RandomStream backoffRandom_;
  sim::HistogramHandle roundtrip_;  // rpc.roundtrip_us (successful calls)
  sim::HistogramHandle attempts_;   // rpc.attempts (per completed call)
  bool enabled_ = true;
  std::uint64_t nextCallId_ = 1;
  std::uint64_t handled_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t lateReplies_ = 0;
  std::uint64_t droppedWhileDisabled_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t notifications_ = 0;
};

/// Split `s` on `delim` into at most `maxParts` pieces (the last keeps the
/// remainder). Shared by the RPC framing and report serialization.
std::vector<std::string> splitString(const std::string& s, char delim,
                                     std::size_t maxParts = 0);

}  // namespace softqos::net
