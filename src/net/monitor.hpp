// Shard-safe channel utilization monitoring.
//
// The legacy Domain Manager samples every channel's utilization inline while
// diagnosing an escalation. That read is only safe when the whole fabric
// lives on one shard: Channel::utilizationSinceLastPoll() mutates per-channel
// poll state owned by the sender node's shard, so a fabric-wide sweep from a
// multi-worker run is a data race. ChannelMonitor replaces the sweep with the
// windowed engine's own discipline: each shard probes the channels it owns on
// a fixed period (from a Simulation::every event placed on that shard) and
// posts its shard-local maximum to the monitor's consumer shard with a delay
// of at least the lookahead — an ordinary cross-shard message, so the
// conservative window protocol orders it deterministically. The consumer
// combines per-shard maxima with an earliest-key tie-break, reproducing
// exactly the argmax the legacy key-ordered sweep would have found one
// publish delay earlier.
//
// Determinism: probe times, publish delays, and merge order are functions of
// the topology and the shard layout only — never of worker count — so runs
// with 1, 2, or 4 workers over the same shard layout see identical samples.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "net/network.hpp"
#include "sim/simulation.hpp"

namespace softqos::net {

class ChannelMonitor {
 public:
  explicit ChannelMonitor(Network& network) : network_(network) {}

  ChannelMonitor(const ChannelMonitor&) = delete;
  ChannelMonitor& operator=(const ChannelMonitor&) = delete;

  /// Start probing every `interval`. Must be called after every link exists,
  /// from the shard that will consume the samples (the domain manager's
  /// seat); the monitor must then outlive the run — probe events capture it.
  void arm(sim::SimDuration interval);

  /// Latest combined view (one publish delay behind the probes, the price of
  /// shard safety). Zero / kNoNode before the first samples arrive.
  [[nodiscard]] double maxUtilization() const { return maxUtil_; }
  [[nodiscard]] std::pair<NodeId, NodeId> hottest() const { return hottest_; }

  /// Per-shard sample fragments delivered to the consumer shard.
  [[nodiscard]] std::uint64_t samplesPublished() const { return published_; }
  [[nodiscard]] sim::SimDuration publishDelay() const { return publishDelay_; }

 private:
  /// One probe round on the calling shard: sample the owned channels in key
  /// order, keep the strict maximum, post it to the consumer shard.
  void probe(const std::vector<std::pair<NodeId, NodeId>>& keys);
  void receive(sim::SimTime sampleTime, double util,
               std::pair<NodeId, NodeId> key);

  Network& network_;
  sim::ShardId consumerShard_ = 0;
  sim::SimDuration publishDelay_ = 0;
  double maxUtil_ = 0.0;
  std::pair<NodeId, NodeId> hottest_{kNoNode, kNoNode};
  sim::SimTime lastSampleTime_ = -1;
  std::uint64_t published_ = 0;
};

}  // namespace softqos::net
