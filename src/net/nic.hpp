// Host network interface: binds sockets to ports, reassembles fragments.
#pragma once

#include <cstdint>
#include <map>
#include <memory>

#include "net/node.hpp"
#include "osim/host.hpp"
#include "osim/socket.hpp"

namespace softqos::net {

class Nic : public NetNode {
 public:
  Nic(Network& network, osim::Host& host);

  [[nodiscard]] osim::Host& host() { return host_; }

  /// Bind a socket to a local port; inbound messages for the port are
  /// delivered into the socket's kernel buffer after reassembly.
  void bind(int port, std::shared_ptr<osim::Socket> socket);
  void unbind(int port);
  [[nodiscard]] osim::Socket* boundSocket(int port);

  void onPacket(Packet packet) override;

  /// Messages whose fragments were lost and never completed.
  [[nodiscard]] std::uint64_t incompleteMessages() const { return incomplete_; }
  /// Messages that arrived for an unbound port.
  [[nodiscard]] std::uint64_t unboundDrops() const { return unbound_; }
  /// Messages discarded because a fragment was corrupted in flight (the
  /// checksum catches the damage at reassembly, like a UDP checksum drop).
  [[nodiscard]] std::uint64_t corruptDrops() const { return corrupt_; }
  /// Packets discarded because the host was down (crashed) on arrival.
  [[nodiscard]] std::uint64_t hostDownDrops() const { return hostDown_; }

 private:
  struct Partial {
    std::int64_t bytes = 0;   // reassembled so far
    bool corrupted = false;   // any fragment damaged in flight
  };

  osim::Host& host_;
  std::map<int, std::shared_ptr<osim::Socket>> bindings_;
  std::map<std::uint64_t, Partial> partial_;  // keyed by messageId
  std::uint64_t incomplete_ = 0;
  std::uint64_t unbound_ = 0;
  std::uint64_t corrupt_ = 0;
  std::uint64_t hostDown_ = 0;
};

}  // namespace softqos::net
