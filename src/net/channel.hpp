// A unidirectional channel: drop-tail output queue + serialization at link
// bandwidth + propagation delay. Two channels back-to-back form a duplex link.
#pragma once

#include <cstdint>
#include <deque>

#include "net/packet.hpp"
#include "sim/simulation.hpp"

namespace softqos::net {

class NetNode;

struct ChannelConfig {
  double bytesPerSecond = 12.5e6;                 // 100 Mbit/s
  sim::SimDuration propagationDelay = sim::usec(100);
  std::int64_t queueCapacityBytes = 512 * 1024;   // drop-tail
};

class Channel {
 public:
  Channel(sim::Simulation& simulation, NetNode& to, ChannelConfig config);

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Enqueue for transmission; drops (and counts) when the queue is full.
  void enqueue(Packet packet);

  // ---- Observables the QoS Domain Manager inspects for congestion ----
  [[nodiscard]] std::int64_t queuedBytes() const { return queuedBytes_; }
  [[nodiscard]] std::size_t queuedPackets() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t drops() const { return drops_; }
  [[nodiscard]] std::int64_t bytesSent() const { return bytesSent_; }
  [[nodiscard]] std::uint64_t packetsSent() const { return packetsSent_; }

  /// Fraction of wall time the transmitter has been busy since start.
  [[nodiscard]] double utilization() const;

  /// Utilization over a recent window: (busy in window)/(window length).
  /// The window restarts whenever this is called (manager polling cadence).
  double utilizationSinceLastPoll();

  [[nodiscard]] const ChannelConfig& config() const { return config_; }

 private:
  void pump();

  sim::Simulation& sim_;
  NetNode& to_;
  ChannelConfig config_;
  std::deque<Packet> queue_;
  std::int64_t queuedBytes_ = 0;
  bool transmitting_ = false;
  std::uint64_t drops_ = 0;
  std::int64_t bytesSent_ = 0;
  std::uint64_t packetsSent_ = 0;
  sim::SimDuration busyTime_ = 0;
  sim::SimDuration busyAtLastPoll_ = 0;
  sim::SimTime lastPollAt_ = 0;
};

}  // namespace softqos::net
