// A unidirectional channel: drop-tail output queue + serialization at link
// bandwidth + propagation delay. Two channels back-to-back form a duplex link.
#pragma once

#include <cstdint>
#include <deque>

#include "net/packet.hpp"
#include "sim/random.hpp"
#include "sim/simulation.hpp"

namespace softqos::net {

class NetNode;

struct ChannelConfig {
  double bytesPerSecond = 12.5e6;                 // 100 Mbit/s
  sim::SimDuration propagationDelay = sim::usec(100);
  std::int64_t queueCapacityBytes = 512 * 1024;   // drop-tail
};

/// Injected link impairment (see faults/FaultInjector). `down` models a cable
/// cut / partition: every enqueued packet is dropped while routing still
/// points at the link, exactly like a real partition before protocols react.
/// Loss and corruption draw from the injector's seeded random stream, so the
/// same seed produces the same packet fates.
struct LinkFaultProfile {
  bool down = false;
  double lossRate = 0.0;                   // [0,1] per-packet drop probability
  double corruptRate = 0.0;                // [0,1] per-packet corruption
  sim::SimDuration extraDelay = 0;         // added propagation latency
  [[nodiscard]] bool degraded() const {
    return down || lossRate > 0.0 || corruptRate > 0.0 || extraDelay > 0;
  }
};

class Channel {
 public:
  Channel(sim::Simulation& simulation, NetNode& to, ChannelConfig config);

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Enqueue for transmission; drops (and counts) when the queue is full.
  void enqueue(Packet packet);

  /// Install/replace the fault profile. `random` supplies the loss and
  /// corruption draws; it must outlive the profile (the FaultInjector owns
  /// it) and is only consulted while lossRate/corruptRate are non-zero, so
  /// an un-faulted channel never draws randomness. Pass a default profile
  /// (and nullptr) to clear.
  void setFaultProfile(LinkFaultProfile profile, sim::RandomStream* random);
  [[nodiscard]] const LinkFaultProfile& faultProfile() const { return fault_; }

  // ---- Observables the QoS Domain Manager inspects for congestion ----
  [[nodiscard]] std::int64_t queuedBytes() const { return queuedBytes_; }
  [[nodiscard]] std::size_t queuedPackets() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t drops() const { return drops_; }
  [[nodiscard]] std::int64_t bytesSent() const { return bytesSent_; }
  [[nodiscard]] std::uint64_t packetsSent() const { return packetsSent_; }

  // ---- Fault-injection accounting (monotone) ----
  [[nodiscard]] std::uint64_t faultDrops() const { return faultDrops_; }
  [[nodiscard]] std::uint64_t faultCorruptions() const { return faultCorruptions_; }

  /// Fraction of wall time the transmitter has been busy since start.
  [[nodiscard]] double utilization() const;

  /// Utilization over a recent window: (busy in window)/(window length).
  /// The window restarts whenever this is called (manager polling cadence).
  double utilizationSinceLastPoll();

  [[nodiscard]] const ChannelConfig& config() const { return config_; }

 private:
  void pump();

  sim::Simulation& sim_;
  NetNode& to_;
  ChannelConfig config_;
  std::deque<Packet> queue_;
  std::int64_t queuedBytes_ = 0;
  bool transmitting_ = false;
  LinkFaultProfile fault_;
  sim::RandomStream* faultRandom_ = nullptr;
  std::uint64_t faultDrops_ = 0;
  std::uint64_t faultCorruptions_ = 0;
  std::uint64_t drops_ = 0;
  std::int64_t bytesSent_ = 0;
  std::uint64_t packetsSent_ = 0;
  sim::SimDuration busyTime_ = 0;
  sim::SimDuration busyAtLastPoll_ = 0;
  sim::SimTime lastPollAt_ = 0;
};

}  // namespace softqos::net
