#include "net/partition.hpp"

#include <algorithm>
#include <limits>

namespace softqos::net {

void ShardPlanner::addNode(const std::string& name, double load) {
  nodes_[name] += load;
}

void ShardPlanner::addEdge(const std::string& a, const std::string& b,
                           double weight) {
  if (a == b) return;
  nodes_[a];  // ensure endpoints exist
  nodes_[b];
  edges_[a < b ? std::make_pair(a, b) : std::make_pair(b, a)] += weight;
}

void ShardPlanner::pin(const std::string& name, sim::ShardId shard) {
  nodes_[name];
  pins_.emplace(name, shard);  // first pin wins
}

namespace {

struct Component {
  double load = 0;
  bool pinned = false;
  sim::ShardId pinShard = 0;
};

std::size_t findRoot(std::vector<std::size_t>& parent, std::size_t i) {
  while (parent[i] != i) {
    parent[i] = parent[parent[i]];  // path halving
    i = parent[i];
  }
  return i;
}

}  // namespace

ShardPlan ShardPlanner::plan(const ShardPlanConfig& config) const {
  ShardPlan out;
  const std::uint32_t shards = std::max<std::uint32_t>(config.shards, 1);

  // Dense index in name order (deterministic across runs).
  std::vector<std::string> names;
  names.reserve(nodes_.size());
  double totalLoad = 0;
  double maxLoad = 0;
  for (const auto& [name, load] : nodes_) {
    names.push_back(name);
    totalLoad += load;
    maxLoad = std::max(maxLoad, load);
  }
  std::map<std::string, std::size_t> index;
  for (std::size_t i = 0; i < names.size(); ++i) index.emplace(names[i], i);

  // A component may grow to the balanced share times the slack, but never
  // below the heaviest single node (which must land somewhere).
  const double capacity = std::max(
      maxLoad, totalLoad / static_cast<double>(shards) * config.capacitySlack);

  std::vector<std::size_t> parent(names.size());
  std::vector<Component> comp(names.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    parent[i] = i;
    comp[i].load = nodes_.at(names[i]);
    const auto pinIt = pins_.find(names[i]);
    if (pinIt != pins_.end()) {
      comp[i].pinned = true;
      comp[i].pinShard = pinIt->second;
    }
  }

  // Heaviest edges first; ties in lexicographic (a, b) order — the map
  // already iterates that way, and stable_sort keeps it.
  std::vector<Edge> order;
  order.reserve(edges_.size());
  for (const auto& [key, weight] : edges_) {
    order.push_back(Edge{key.first, key.second, weight});
    out.totalEdgeWeight += weight;
  }
  std::stable_sort(order.begin(), order.end(),
                   [](const Edge& x, const Edge& y) {
                     return x.weight > y.weight;
                   });

  for (const Edge& edge : order) {
    const std::size_t ra = findRoot(parent, index.at(edge.a));
    const std::size_t rb = findRoot(parent, index.at(edge.b));
    if (ra == rb) continue;
    if (comp[ra].pinned && comp[rb].pinned &&
        comp[ra].pinShard != comp[rb].pinShard) {
      continue;  // pinned to different shards: never mergeable
    }
    if (comp[ra].load + comp[rb].load > capacity) continue;
    // Union by smaller index as root: keeps root choice deterministic.
    const std::size_t root = std::min(ra, rb);
    const std::size_t child = ra == root ? rb : ra;
    parent[child] = root;
    comp[root].load += comp[child].load;
    comp[root].pinned = comp[root].pinned || comp[child].pinned;
    if (comp[child].pinned) comp[root].pinShard = comp[child].pinShard;
  }

  // Pack components onto shards: pinned ones go home, the rest heaviest
  // first onto the least-loaded shard (lowest id on ties).
  out.shardLoad.assign(shards, 0.0);
  struct Pack {
    std::size_t root;
    double load;
    std::string anchor;  // lexicographically smallest member, for tie order
  };
  std::map<std::size_t, Pack> byRoot;
  for (std::size_t i = 0; i < names.size(); ++i) {
    const std::size_t root = findRoot(parent, i);
    auto [it, inserted] = byRoot.emplace(root, Pack{root, 0.0, names[i]});
    it->second.load += comp[i].load;
    if (inserted) it->second.anchor = names[i];
  }
  std::vector<Pack> packs;
  packs.reserve(byRoot.size());
  std::vector<sim::ShardId> shardOfRoot(names.size(), 0);
  for (auto& [root, pack] : byRoot) {
    if (comp[root].pinned) {
      const sim::ShardId target =
          comp[root].pinShard < shards ? comp[root].pinShard : shards - 1;
      shardOfRoot[root] = target;
      out.shardLoad[target] += pack.load;
    } else {
      packs.push_back(pack);
    }
  }
  std::stable_sort(packs.begin(), packs.end(), [](const Pack& x, const Pack& y) {
    if (x.load != y.load) return x.load > y.load;
    return x.anchor < y.anchor;
  });
  for (const Pack& pack : packs) {
    sim::ShardId best = 0;
    double bestLoad = std::numeric_limits<double>::infinity();
    for (sim::ShardId s = 0; s < shards; ++s) {
      if (out.shardLoad[s] < bestLoad) {
        bestLoad = out.shardLoad[s];
        best = s;
      }
    }
    shardOfRoot[pack.root] = best;
    out.shardLoad[best] += pack.load;
  }

  for (std::size_t i = 0; i < names.size(); ++i) {
    out.assignment.emplace(names[i], shardOfRoot[findRoot(parent, i)]);
  }
  for (const auto& [key, weight] : edges_) {
    if (out.assignment.at(key.first) != out.assignment.at(key.second)) {
      out.crossShardWeight += weight;
    }
  }
  return out;
}

}  // namespace softqos::net
