// Automatic shard placement for parallel testbeds.
//
// A windowed parallel run wants hosts that talk to each other on the same
// shard: every cross-shard channel bounds the lookahead and every cross-shard
// message pays a mailbox hop. Hand-placing a thousand hosts is not an option,
// so ShardPlanner takes the communication graph (nodes weighted by expected
// event load, edges by expected traffic) and greedily merges the heaviest
// edges first — classic Kruskal-style agglomeration under a per-shard
// capacity bound — then packs the resulting components onto shards by load.
// Pins reserve nodes for a specific shard (switches and manager seats stay on
// shard 0, whose events interleave with every domain); components holding a
// pinned node can only merge with compatible components and are packed onto
// their pinned shard regardless of balance.
//
// The plan is deterministic: ties break on lexicographic node/edge names,
// never on hash order or pointer identity, so the same topology always yields
// the same placement — a prerequisite for byte-identical replays.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/simulation.hpp"

namespace softqos::net {

struct ShardPlanConfig {
  /// Number of worker shards to fill (plan() clamps to >= 1).
  std::uint32_t shards = 1;
  /// Per-shard load capacity as a multiple of the perfectly balanced share
  /// (totalLoad / shards). Growth of a component stops at the bound, keeping
  /// the greedy merge from collapsing everything into one shard.
  double capacitySlack = 1.25;
};

struct ShardPlan {
  /// Node name -> shard, every added node exactly once.
  std::map<std::string, sim::ShardId> assignment;
  /// Sum of all edge weights in the graph.
  double totalEdgeWeight = 0;
  /// Sum of edge weights whose endpoints landed on different shards.
  double crossShardWeight = 0;
  /// Accumulated node load per shard (index = shard id).
  std::vector<double> shardLoad;

  [[nodiscard]] sim::ShardId shardOf(const std::string& name) const {
    const auto it = assignment.find(name);
    return it == assignment.end() ? 0 : it->second;
  }
};

class ShardPlanner {
 public:
  /// Register a node with its expected event load. Re-adding a node
  /// accumulates load.
  void addNode(const std::string& name, double load = 1.0);

  /// Register expected traffic between two nodes (direction-agnostic;
  /// repeated edges accumulate weight). Unknown endpoints are added with
  /// zero load.
  void addEdge(const std::string& a, const std::string& b,
               double weight = 1.0);

  /// Reserve a node for a fixed shard (e.g. switches and manager seats on
  /// shard 0). Pinning the same node to two different shards makes the two
  /// pins' components unmergeable but is otherwise first-pin-wins.
  void pin(const std::string& name, sim::ShardId shard);

  [[nodiscard]] ShardPlan plan(const ShardPlanConfig& config) const;

 private:
  struct Edge {
    std::string a;
    std::string b;
    double weight = 0;
  };

  std::map<std::string, double> nodes_;          // name -> load
  std::map<std::pair<std::string, std::string>, double> edges_;
  std::map<std::string, sim::ShardId> pins_;
};

}  // namespace softqos::net
