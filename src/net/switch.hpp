// A store-and-forward switch. Forwarding uses the network's static routes;
// congestion shows up in its outbound channels' queues and utilization —
// the "unexpected load on a network switch" the paper's domain manager must
// localize.
#pragma once

#include "net/node.hpp"

namespace softqos::net {

class Switch : public NetNode {
 public:
  Switch(Network& network, std::string name);

  void onPacket(Packet packet) override;
  [[nodiscard]] bool forwards() const override { return true; }

  [[nodiscard]] std::uint64_t forwarded() const { return forwarded_; }

 private:
  std::uint64_t forwarded_ = 0;
};

}  // namespace softqos::net
