#include "rules/engine.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

namespace softqos::rules {

InferenceEngine::InferenceEngine(std::string name) : name_(std::move(name)) {
  // The agenda is maintained incrementally off the working-memory delta
  // stream; all mutation paths (manager code, RHS actions) flow through it.
  facts_.setDeltaListener([this](const FactDelta& delta) { onDelta(delta); });
}

void InferenceEngine::indexRule(const Rule& rule) {
  std::set<std::string> positive;
  std::set<std::string> negated;
  for (const Pattern& pattern : rule.lhs) {
    (pattern.negated ? negated : positive).insert(pattern.templateName);
  }
  for (const std::string& tmpl : positive) {
    positiveByTemplate_[tmpl].push_back(&rule);
  }
  for (const std::string& tmpl : negated) {
    negatedByTemplate_[tmpl].push_back(&rule);
  }
}

void InferenceEngine::unindexRule(const Rule& rule) {
  for (const Pattern& pattern : rule.lhs) {
    auto& index = pattern.negated ? negatedByTemplate_ : positiveByTemplate_;
    const auto it = index.find(pattern.templateName);
    if (it == index.end()) continue;
    auto& entries = it->second;
    entries.erase(std::remove(entries.begin(), entries.end(), &rule),
                  entries.end());
    if (entries.empty()) index.erase(it);
  }
}

void InferenceEngine::addRule(Rule rule) {
  const std::string ruleName = rule.name;
  const auto existing = rules_.find(ruleName);
  if (existing != rules_.end()) {
    // Replacing a rule clears its refraction marks — a single O(1) erase,
    // fired tuples are keyed per rule — so the fresh definition can re-fire
    // on facts the old one already consumed.
    removeAgendaForRule(&existing->second);
    firedByRule_.erase(ruleName);
    unindexRule(existing->second);
  }
  Rule& stored = rules_[ruleName];
  stored = std::move(rule);
  indexRule(stored);
  recomputeRule(stored);
}

bool InferenceEngine::removeRule(const std::string& name) {
  const auto it = rules_.find(name);
  if (it == rules_.end()) return false;
  removeAgendaForRule(&it->second);
  firedByRule_.erase(name);
  unindexRule(it->second);
  rules_.erase(it);
  return true;
}

bool InferenceEngine::hasRule(const std::string& name) const {
  return rules_.contains(name);
}

std::vector<std::string> InferenceEngine::ruleNames() const {
  std::vector<std::string> out;
  out.reserve(rules_.size());
  for (const auto& [name, rule] : rules_) {
    (void)rule;
    out.push_back(name);
  }
  return out;
}

void InferenceEngine::registerFunction(const std::string& name,
                                       EngineFunction fn) {
  functions_[name] = std::move(fn);
}

void InferenceEngine::setPartitionSlot(const std::string& slot) {
  facts_.setPartitionSlot(slot);
}

void InferenceEngine::scanFacts(
    const Rule& rule, const Pattern& pattern, const Bindings& bindings,
    const std::function<bool(const Fact&)>& visit) const {
  if (facts_.partitioned() && !rule.crossPartition) {
    for (const SlotTest& test : pattern.tests) {
      if (test.slot != facts_.partitionSlot()) continue;
      // A fact matching this pattern must carry the key slot with exactly
      // this value, so the partition (plus globals, which lack the slot and
      // fail matchPattern) is a complete candidate set.
      if (test.kind == SlotTest::Kind::kLiteral) {
        facts_.forEachInPartition(pattern.templateName, test.literal, visit);
        return;
      }
      const auto bound = bindings.find(test.variable);
      if (bound != bindings.end()) {
        facts_.forEachInPartition(pattern.templateName, bound->second, visit);
        return;
      }
      break;  // key slot tested but not yet bound: no partition to pick
    }
  }
  facts_.forEach(pattern.templateName, visit);
}

void InferenceEngine::matchScan(const Rule& rule, std::size_t position,
                                Bindings bindings, FactTuple factIds,
                                const Fact* pinned, std::size_t pinnedPos,
                                std::vector<Activation>& out) const {
  if (position == rule.lhs.size()) {
    for (const ConditionTest& test : rule.tests) {
      if (!test.eval(bindings)) return;
    }
    Activation act;
    act.rule = &rule;
    for (const FactId id : factIds) act.recency = std::max(act.recency, id);
    act.factIds = std::move(factIds);
    act.bindings = std::move(bindings);
    out.push_back(std::move(act));
    return;
  }

  const Pattern& pattern = rule.lhs[position];
  if (pattern.negated) {
    // (not ...): succeeds only if no live fact matches under these bindings.
    bool blocked = false;
    scanFacts(rule, pattern, bindings, [&](const Fact& fact) {
      Bindings scratch = bindings;
      if (matchPattern(pattern, fact, scratch)) {
        blocked = true;
        return false;
      }
      return true;
    });
    if (blocked) return;
    factIds.push_back(kNoFact);
    matchScan(rule, position + 1, std::move(bindings), std::move(factIds),
              pinned, pinnedPos, out);
    return;
  }

  if (pinned != nullptr && position == pinnedPos) {
    Bindings scratch = bindings;
    if (!matchPattern(pattern, *pinned, scratch)) return;
    factIds.push_back(pinned->id);
    matchScan(rule, position + 1, std::move(scratch), std::move(factIds),
              pinned, pinnedPos, out);
    return;
  }

  scanFacts(rule, pattern, bindings, [&](const Fact& fact) {
    Bindings scratch = bindings;
    if (!matchPattern(pattern, fact, scratch)) return true;
    FactTuple ids = factIds;
    ids.push_back(fact.id);
    matchScan(rule, position + 1, std::move(scratch), std::move(ids), pinned,
              pinnedPos, out);
    return true;
  });
}

void InferenceEngine::seedMatch(const Rule& rule, const Fact& fact) {
  // Any activation created by this delta must hold the new fact at one of
  // the rule's positive positions; pin each candidate position in turn.
  for (std::size_t i = 0; i < rule.lhs.size(); ++i) {
    const Pattern& pattern = rule.lhs[i];
    if (pattern.negated || pattern.templateName != fact.templateName) continue;
    Bindings alpha;
    if (!matchPattern(pattern, fact, alpha)) continue;  // cheap alpha reject
    std::vector<Activation> found;
    matchScan(rule, 0, Bindings{}, FactTuple{}, &fact, i, found);
    for (Activation& act : found) insertActivation(std::move(act));
  }
}

void InferenceEngine::recomputeRule(const Rule& rule) {
  removeAgendaForRule(&rule);
  std::vector<Activation> found;
  matchScan(rule, 0, Bindings{}, FactTuple{}, nullptr, 0, found);
  for (Activation& act : found) insertActivation(std::move(act));
}

const std::string* InferenceEngine::scopeVariable(const Rule& rule) const {
  if (!facts_.partitioned() || rule.crossPartition) return nullptr;
  const std::string* common = nullptr;
  for (const Pattern& pattern : rule.lhs) {
    const std::string* var = nullptr;
    for (const SlotTest& test : pattern.tests) {
      if (test.slot == facts_.partitionSlot() &&
          test.kind == SlotTest::Kind::kVariable) {
        var = &test.variable;
        break;
      }
    }
    if (var == nullptr) return nullptr;  // pattern not keyed on the slot
    if (common == nullptr) {
      common = var;
    } else if (*common != *var) {
      return nullptr;  // patterns keyed on different variables
    }
  }
  return common;
}

void InferenceEngine::recomputeRuleScoped(const Rule& rule,
                                          const std::string& var,
                                          const Value& key) {
  // Every pattern binds `var` to its fact's partition key (scopeVariable
  // precondition), so an activation is affected by a delta in partition
  // `key` exactly when all its facts carry that key.
  const auto tuplesIt = agendaTuples_.find(&rule);
  if (tuplesIt != agendaTuples_.end()) {
    std::vector<FactTuple> scoped;
    for (const FactTuple& tuple : tuplesIt->second) {
      bool inScope = true;
      for (const FactId id : tuple) {
        if (id == kNoFact) continue;
        const Fact* fact = facts_.find(id);
        const Value* factKey =
            fact == nullptr ? nullptr : facts_.partitionKey(*fact);
        if (factKey == nullptr || !(*factKey == key)) {
          inScope = false;
          break;
        }
      }
      if (inScope) scoped.push_back(tuple);
    }
    for (const FactTuple& tuple : scoped) eraseAgendaEntry(&rule, tuple);
  }
  // Pre-binding `var` restricts every scan position to this partition (the
  // patterns bind it anyway, so the activations produced are identical to
  // the in-partition subset of an unscoped recompute).
  Bindings seed;
  seed.emplace(var, key);
  std::vector<Activation> found;
  matchScan(rule, 0, std::move(seed), FactTuple{}, nullptr, 0, found);
  for (Activation& act : found) insertActivation(std::move(act));
}

void InferenceEngine::insertActivation(Activation act) {
  const auto firedIt = firedByRule_.find(act.rule->name);
  if (firedIt != firedByRule_.end() &&
      firedIt->second.contains(act.factIds)) {
    return;  // refraction: this tuple already fired
  }
  TupleSet& tuples = agendaTuples_[act.rule];
  if (!tuples.insert(act.factIds).second) return;  // already pending
  for (const FactId id : act.factIds) {
    if (id != kNoFact) agendaByFact_[id].push_back({act.rule, act.factIds});
  }
  agenda_.insert(std::move(act));
}

void InferenceEngine::eraseAgendaEntry(const Rule* rule,
                                       const FactTuple& tuple) {
  // agendaTuples_ is consulted before touching *rule: stale back references
  // (fired activations, replaced rules) drop out here without a deref.
  const auto it = agendaTuples_.find(rule);
  if (it == agendaTuples_.end() || it->second.erase(tuple) == 0) return;
  if (it->second.empty()) agendaTuples_.erase(it);
  Activation key;
  key.rule = rule;
  for (const FactId id : tuple) key.recency = std::max(key.recency, id);
  key.factIds = tuple;
  agenda_.erase(key);
}

void InferenceEngine::removeAgendaForRule(const Rule* rule) {
  const auto it = agendaTuples_.find(rule);
  if (it == agendaTuples_.end()) return;
  const TupleSet tuples = std::move(it->second);
  agendaTuples_.erase(it);
  for (const FactTuple& tuple : tuples) {
    Activation key;
    key.rule = rule;
    for (const FactId id : tuple) key.recency = std::max(key.recency, id);
    key.factIds = tuple;
    agenda_.erase(key);
  }
}

void InferenceEngine::recordFired(const Activation& act) {
  firedByRule_[act.rule->name].insert(act.factIds);
  for (const FactId id : act.factIds) {
    if (id != kNoFact) {
      firedByFact_[id].push_back({act.rule->name, act.factIds});
    }
  }
}

void InferenceEngine::onDelta(const FactDelta& delta) {
  const Fact& fact = *delta.fact;

  if (delta.kind == FactDelta::Kind::kAssert) {
    // A fact matching a rule's negated pattern can invalidate existing
    // activations; re-derive those rules wholesale — or, when the rule keys
    // every pattern on the partition slot, only within the delta's
    // partition. Rules that see the template only positively get the cheap
    // seeded join.
    const auto negIt = negatedByTemplate_.find(fact.templateName);
    if (negIt != negatedByTemplate_.end()) {
      const Value* key = facts_.partitionKey(fact);
      for (const Rule* rule : negIt->second) {
        const std::string* var =
            key == nullptr ? nullptr : scopeVariable(*rule);
        if (var != nullptr) {
          recomputeRuleScoped(*rule, *var, *key);
        } else {
          recomputeRule(*rule);
        }
      }
    }
    const auto posIt = positiveByTemplate_.find(fact.templateName);
    if (posIt != positiveByTemplate_.end()) {
      for (const Rule* rule : posIt->second) {
        bool alsoNegated = false;
        for (const Pattern& pattern : rule->lhs) {
          if (pattern.negated && pattern.templateName == fact.templateName) {
            alsoNegated = true;
            break;
          }
        }
        if (!alsoNegated) seedMatch(*rule, fact);
      }
    }
    return;
  }

  // Retract: drop pending activations that reference the dead fact.
  const auto byFactIt = agendaByFact_.find(fact.id);
  if (byFactIt != agendaByFact_.end()) {
    const auto entries = std::move(byFactIt->second);
    agendaByFact_.erase(byFactIt);
    for (const auto& [rule, tuple] : entries) eraseAgendaEntry(rule, tuple);
  }
  // Refraction GC: fact ids are never reused, so fired tuples holding the
  // dead fact can never be re-derived — drop their marks.
  const auto firedIt = firedByFact_.find(fact.id);
  if (firedIt != firedByFact_.end()) {
    for (const auto& [ruleName, tuple] : firedIt->second) {
      const auto ruleIt = firedByRule_.find(ruleName);
      if (ruleIt != firedByRule_.end()) {
        ruleIt->second.erase(tuple);
        if (ruleIt->second.empty()) firedByRule_.erase(ruleIt);
      }
    }
    firedByFact_.erase(firedIt);
  }
  // A retract can satisfy negated patterns; re-derive those rules (scoped
  // to the dead fact's partition when the rule keys all patterns on it).
  const auto negIt = negatedByTemplate_.find(fact.templateName);
  if (negIt != negatedByTemplate_.end()) {
    const Value* key = facts_.partitionKey(fact);
    for (const Rule* rule : negIt->second) {
      const std::string* var = key == nullptr ? nullptr : scopeVariable(*rule);
      if (var != nullptr) {
        recomputeRuleScoped(*rule, *var, *key);
      } else {
        recomputeRule(*rule);
      }
    }
  }
}

std::size_t InferenceEngine::run(std::size_t maxFirings) {
  std::size_t fired = 0;
  while (fired < maxFirings && !agenda_.empty()) {
    // The ordered agenda keeps the best activation (salience, recency, rule
    // name) at begin(); firing may assert/retract facts, whose deltas update
    // the agenda in place before the next pop.
    const auto best = agenda_.begin();
    Activation act = *best;
    agenda_.erase(best);
    const auto tuplesIt = agendaTuples_.find(act.rule);
    if (tuplesIt != agendaTuples_.end()) {
      tuplesIt->second.erase(act.factIds);
      if (tuplesIt->second.empty()) agendaTuples_.erase(tuplesIt);
    }
    recordFired(act);
    if (!preFire_) {
      fire(act);
    } else if (preFire_(*act.rule, act.factIds) && postFire_) {
      const auto start = std::chrono::steady_clock::now();
      fire(act);
      const auto elapsed = std::chrono::steady_clock::now() - start;
      postFire_(*act.rule, act.factIds,
                static_cast<std::uint64_t>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        elapsed)
                        .count()));
    } else {
      fire(act);
      if (postFire_) postFire_(*act.rule, act.factIds, 0);
    }
    ++fired;
    ++totalFirings_;
  }
  return fired;
}

void InferenceEngine::fire(const Activation& activation) {
  for (const RuleAction& action : activation.rule->rhs) {
    switch (action.kind) {
      case RuleAction::Kind::kAssert: {
        SlotMap slots;
        bool ok = true;
        for (const auto& [slot, operand] : action.slots) {
          const Value* v = operand.resolve(activation.bindings);
          if (v == nullptr) {
            reportError("rule " + activation.rule->name +
                        ": unbound variable in assert slot " + slot);
            ok = false;
            break;
          }
          slots.emplace(slot, *v);
        }
        if (ok) facts_.assertFact(action.templateName, std::move(slots));
        break;
      }
      case RuleAction::Kind::kRetract: {
        const int idx = action.patternIndex - 1;
        if (idx < 0 || idx >= static_cast<int>(activation.factIds.size()) ||
            activation.factIds[static_cast<std::size_t>(idx)] == kNoFact) {
          reportError("rule " + activation.rule->name +
                      ": bad retract index " + std::to_string(action.patternIndex));
          break;
        }
        facts_.retract(activation.factIds[static_cast<std::size_t>(idx)]);
        break;
      }
      case RuleAction::Kind::kModify: {
        const int idx = action.patternIndex - 1;
        if (idx < 0 || idx >= static_cast<int>(activation.factIds.size()) ||
            activation.factIds[static_cast<std::size_t>(idx)] == kNoFact) {
          reportError("rule " + activation.rule->name +
                      ": bad modify index " + std::to_string(action.patternIndex));
          break;
        }
        SlotMap changes;
        bool ok = true;
        for (const auto& [slot, operand] : action.slots) {
          const Value* v = operand.resolve(activation.bindings);
          if (v == nullptr) {
            reportError("rule " + activation.rule->name +
                        ": unbound variable in modify slot " + slot);
            ok = false;
            break;
          }
          changes.emplace(slot, *v);
        }
        if (ok) {
          facts_.modify(activation.factIds[static_cast<std::size_t>(idx)],
                        changes);
        }
        break;
      }
      case RuleAction::Kind::kCall: {
        const auto it = functions_.find(action.function);
        if (it == functions_.end()) {
          reportError("rule " + activation.rule->name +
                      ": unknown function " + action.function);
          break;
        }
        std::vector<Value> args;
        bool ok = true;
        for (const Operand& operand : action.args) {
          const Value* v = operand.resolve(activation.bindings);
          if (v == nullptr) {
            reportError("rule " + activation.rule->name +
                        ": unbound variable argument to " + action.function);
            ok = false;
            break;
          }
          args.push_back(*v);
        }
        if (ok) it->second(args);
        break;
      }
    }
  }
}

namespace {

/// Rename a rule-scoped variable so recursive proofs at different depths do
/// not capture each other's bindings.
std::string scopedVar(const std::string& name, int depth) {
  return name + "#d" + std::to_string(depth);
}

Pattern scopePattern(const Pattern& pattern, int depth) {
  Pattern out = pattern;
  for (SlotTest& test : out.tests) {
    if (test.kind == SlotTest::Kind::kVariable) {
      test.variable = scopedVar(test.variable, depth);
    }
  }
  return out;
}

ConditionTest scopeTest(const ConditionTest& test, int depth) {
  ConditionTest out = test;
  if (out.lhs.isVariable) out.lhs.variable = scopedVar(out.lhs.variable, depth);
  if (out.rhs.isVariable) out.rhs.variable = scopedVar(out.rhs.variable, depth);
  return out;
}

}  // namespace

std::optional<Bindings> InferenceEngine::prove(const Pattern& goal,
                                               const Bindings& bindings,
                                               int depth) const {
  if (depth <= 0) return std::nullopt;

  // Base case: a live fact satisfies the goal directly.
  std::optional<Bindings> direct;
  facts_.forEach(goal.templateName, [&](const Fact& fact) {
    Bindings scratch = bindings;
    if (matchPattern(goal, fact, scratch)) {
      direct = std::move(scratch);
      return false;
    }
    return true;
  });
  if (direct.has_value()) return direct;

  // Recursive case: a rule whose RHS asserts a matching fact, provided its
  // body can be proven. Rule variables are renamed per depth level.
  for (const auto& [name, rule] : rules_) {
    (void)name;
    for (const RuleAction& action : rule.rhs) {
      if (action.kind != RuleAction::Kind::kAssert ||
          action.templateName != goal.templateName) {
        continue;
      }
      // Unify the goal's slot tests with the head (the assert's slots).
      Bindings unified = bindings;
      bool ok = true;
      for (const SlotTest& test : goal.tests) {
        const Operand* headOperand = nullptr;
        for (const auto& [slot, operand] : action.slots) {
          if (slot == test.slot) {
            headOperand = &operand;
            break;
          }
        }
        if (headOperand == nullptr) {
          ok = false;  // the head does not provide this slot
          break;
        }
        const std::string headVar =
            headOperand->isVariable ? scopedVar(headOperand->variable, depth)
                                    : std::string{};
        if (test.kind == SlotTest::Kind::kLiteral) {
          if (headOperand->isVariable) {
            const auto it = unified.find(headVar);
            if (it == unified.end()) {
              unified.emplace(headVar, test.literal);
            } else if (!(it->second == test.literal)) {
              ok = false;
            }
          } else if (!(headOperand->literal == test.literal)) {
            ok = false;
          }
        } else {  // goal variable
          const auto goalIt = unified.find(test.variable);
          if (headOperand->isVariable) {
            const auto headIt = unified.find(headVar);
            if (goalIt != unified.end() && headIt != unified.end()) {
              if (!(goalIt->second == headIt->second)) ok = false;
            } else if (goalIt != unified.end()) {
              unified.emplace(headVar, goalIt->second);
            } else if (headIt != unified.end()) {
              unified.emplace(test.variable, headIt->second);
            }
            // Both unbound: linked through the body proof below; the goal
            // variable is resolved after the body binds the head variable.
          } else if (goalIt != unified.end()) {
            if (!(goalIt->second == headOperand->literal)) ok = false;
          } else {
            unified.emplace(test.variable, headOperand->literal);
          }
        }
        if (!ok) break;
      }
      if (!ok) continue;

      // Prove the rule body under the unified bindings.
      std::vector<Pattern> body;
      body.reserve(rule.lhs.size());
      for (const Pattern& pattern : rule.lhs) {
        body.push_back(scopePattern(pattern, depth));
      }
      std::vector<ConditionTest> tests;
      tests.reserve(rule.tests.size());
      for (const ConditionTest& test : rule.tests) {
        tests.push_back(scopeTest(test, depth));
      }
      auto proof = proveAll(body, tests, 0, unified, depth - 1);
      if (!proof.has_value()) continue;

      // Resolve goal variables that were linked to head variables.
      Bindings result = *proof;
      bool resolved = true;
      for (const SlotTest& test : goal.tests) {
        if (test.kind != SlotTest::Kind::kVariable) continue;
        if (result.contains(test.variable)) continue;
        const Operand* headOperand = nullptr;
        for (const auto& [slot, operand] : action.slots) {
          if (slot == test.slot) {
            headOperand = &operand;
            break;
          }
        }
        if (headOperand == nullptr) continue;
        if (headOperand->isVariable) {
          const auto it = result.find(scopedVar(headOperand->variable, depth));
          if (it != result.end()) {
            result.emplace(test.variable, it->second);
          } else {
            resolved = false;
          }
        } else {
          result.emplace(test.variable, headOperand->literal);
        }
      }
      if (resolved) return result;
    }
  }
  return std::nullopt;
}

std::optional<Bindings> InferenceEngine::proveAll(
    const std::vector<Pattern>& goals, const std::vector<ConditionTest>& tests,
    std::size_t index, Bindings bindings, int depth) const {
  if (index == goals.size()) {
    for (const ConditionTest& test : tests) {
      if (!test.eval(bindings)) return std::nullopt;
    }
    return bindings;
  }
  const Pattern& goal = goals[index];
  if (goal.negated) {
    // Negation as failure against working memory (non-recursive, as in the
    // forward engine).
    bool blocked = false;
    facts_.forEach(goal.templateName, [&](const Fact& fact) {
      Bindings scratch = bindings;
      if (matchPattern(goal, fact, scratch)) {
        blocked = true;
        return false;
      }
      return true;
    });
    if (blocked) return std::nullopt;
    return proveAll(goals, tests, index + 1, std::move(bindings), depth);
  }

  // Backtrack over direct fact matches first, then rule-derived proofs.
  std::optional<Bindings> result;
  facts_.forEach(goal.templateName, [&](const Fact& fact) {
    Bindings scratch = bindings;
    if (!matchPattern(goal, fact, scratch)) return true;
    auto rest = proveAll(goals, tests, index + 1, std::move(scratch), depth);
    if (rest.has_value()) {
      result = std::move(rest);
      return false;
    }
    return true;
  });
  if (result.has_value()) return result;
  if (depth > 0) {
    auto derived = prove(goal, bindings, depth);
    if (derived.has_value()) {
      return proveAll(goals, tests, index + 1, std::move(*derived), depth);
    }
  }
  return std::nullopt;
}

std::optional<Bindings> InferenceEngine::query(const Pattern& goal,
                                               int maxDepth) const {
  return prove(goal, Bindings{}, maxDepth);
}

bool InferenceEngine::provable(const std::string& templateName,
                               const SlotMap& slots, int maxDepth) const {
  Pattern goal;
  goal.templateName = templateName;
  for (const auto& [slot, value] : slots) {
    goal.tests.push_back(SlotTest{SlotTest::Kind::kLiteral, slot, value, ""});
  }
  return prove(goal, Bindings{}, maxDepth).has_value();
}

void InferenceEngine::reportError(std::string message) {
  ++actionErrors_;
  if (errorLog_.size() < 256) errorLog_.push_back(std::move(message));
}

}  // namespace softqos::rules
