#include "rules/engine.hpp"

#include <algorithm>
#include <utility>

namespace softqos::rules {

InferenceEngine::InferenceEngine(std::string name) : name_(std::move(name)) {}

void InferenceEngine::addRule(Rule rule) {
  // Replacing a rule clears its refraction marks so the fresh definition can
  // re-fire on facts the old one already consumed.
  const std::string prefix = rule.name + "#";
  for (auto it = firedKeys_.begin(); it != firedKeys_.end();) {
    if (it->compare(0, prefix.size(), prefix) == 0) {
      it = firedKeys_.erase(it);
    } else {
      ++it;
    }
  }
  rules_[rule.name] = std::move(rule);
}

bool InferenceEngine::removeRule(const std::string& name) {
  return rules_.erase(name) != 0;
}

bool InferenceEngine::hasRule(const std::string& name) const {
  return rules_.contains(name);
}

std::vector<std::string> InferenceEngine::ruleNames() const {
  std::vector<std::string> out;
  out.reserve(rules_.size());
  for (const auto& [name, rule] : rules_) {
    (void)rule;
    out.push_back(name);
  }
  return out;
}

void InferenceEngine::registerFunction(const std::string& name,
                                       EngineFunction fn) {
  functions_[name] = std::move(fn);
}

void InferenceEngine::matchFrom(const Rule& rule, std::size_t position,
                                Bindings bindings, std::vector<FactId> factIds,
                                std::vector<Activation>& out) const {
  if (position == rule.lhs.size()) {
    for (const ConditionTest& test : rule.tests) {
      if (!test.eval(bindings)) return;
    }
    Activation act;
    act.rule = &rule;
    act.factIds = std::move(factIds);
    act.bindings = std::move(bindings);
    act.key = rule.name + "#";
    for (const FactId id : act.factIds) {
      act.recency = std::max(act.recency, id);
      act.key += std::to_string(id) + ",";
    }
    out.push_back(std::move(act));
    return;
  }

  const Pattern& pattern = rule.lhs[position];
  if (pattern.negated) {
    // (not ...): succeeds only if no live fact matches under these bindings.
    for (const Fact* fact : facts_.byTemplate(pattern.templateName)) {
      Bindings scratch = bindings;
      if (matchPattern(pattern, *fact, scratch)) return;
    }
    factIds.push_back(kNoFact);
    matchFrom(rule, position + 1, std::move(bindings), std::move(factIds), out);
    return;
  }

  for (const Fact* fact : facts_.byTemplate(pattern.templateName)) {
    Bindings scratch = bindings;
    if (!matchPattern(pattern, *fact, scratch)) continue;
    std::vector<FactId> ids = factIds;
    ids.push_back(fact->id);
    matchFrom(rule, position + 1, std::move(scratch), std::move(ids), out);
  }
}

void InferenceEngine::matchRule(const Rule& rule,
                                std::vector<Activation>& out) const {
  matchFrom(rule, 0, Bindings{}, {}, out);
}

std::size_t InferenceEngine::run(std::size_t maxFirings) {
  std::size_t fired = 0;
  while (fired < maxFirings) {
    // Rebuild the agenda from working memory (naive re-match: rule/fact
    // populations in the managers are small; the scaling bench quantifies
    // the cost honestly).
    std::vector<Activation> agenda;
    for (const auto& [name, rule] : rules_) {
      (void)name;
      matchRule(rule, agenda);
    }

    const Activation* best = nullptr;
    for (const Activation& act : agenda) {
      if (firedKeys_.contains(act.key)) continue;
      if (best == nullptr) {
        best = &act;
        continue;
      }
      // Conflict resolution: salience, then recency, then rule name.
      if (act.rule->salience != best->rule->salience) {
        if (act.rule->salience > best->rule->salience) best = &act;
      } else if (act.recency != best->recency) {
        if (act.recency > best->recency) best = &act;
      } else if (act.rule->name < best->rule->name) {
        best = &act;
      }
    }
    if (best == nullptr) break;

    firedKeys_.insert(best->key);
    fire(*best);
    ++fired;
    ++totalFirings_;
  }
  return fired;
}

void InferenceEngine::fire(const Activation& activation) {
  for (const RuleAction& action : activation.rule->rhs) {
    switch (action.kind) {
      case RuleAction::Kind::kAssert: {
        SlotMap slots;
        bool ok = true;
        for (const auto& [slot, operand] : action.slots) {
          const Value* v = operand.resolve(activation.bindings);
          if (v == nullptr) {
            reportError("rule " + activation.rule->name +
                        ": unbound variable in assert slot " + slot);
            ok = false;
            break;
          }
          slots.emplace(slot, *v);
        }
        if (ok) facts_.assertFact(action.templateName, std::move(slots));
        break;
      }
      case RuleAction::Kind::kRetract: {
        const int idx = action.patternIndex - 1;
        if (idx < 0 || idx >= static_cast<int>(activation.factIds.size()) ||
            activation.factIds[static_cast<std::size_t>(idx)] == kNoFact) {
          reportError("rule " + activation.rule->name +
                      ": bad retract index " + std::to_string(action.patternIndex));
          break;
        }
        facts_.retract(activation.factIds[static_cast<std::size_t>(idx)]);
        break;
      }
      case RuleAction::Kind::kModify: {
        const int idx = action.patternIndex - 1;
        if (idx < 0 || idx >= static_cast<int>(activation.factIds.size()) ||
            activation.factIds[static_cast<std::size_t>(idx)] == kNoFact) {
          reportError("rule " + activation.rule->name +
                      ": bad modify index " + std::to_string(action.patternIndex));
          break;
        }
        SlotMap changes;
        bool ok = true;
        for (const auto& [slot, operand] : action.slots) {
          const Value* v = operand.resolve(activation.bindings);
          if (v == nullptr) {
            reportError("rule " + activation.rule->name +
                        ": unbound variable in modify slot " + slot);
            ok = false;
            break;
          }
          changes.emplace(slot, *v);
        }
        if (ok) {
          facts_.modify(activation.factIds[static_cast<std::size_t>(idx)],
                        changes);
        }
        break;
      }
      case RuleAction::Kind::kCall: {
        const auto it = functions_.find(action.function);
        if (it == functions_.end()) {
          reportError("rule " + activation.rule->name +
                      ": unknown function " + action.function);
          break;
        }
        std::vector<Value> args;
        bool ok = true;
        for (const Operand& operand : action.args) {
          const Value* v = operand.resolve(activation.bindings);
          if (v == nullptr) {
            reportError("rule " + activation.rule->name +
                        ": unbound variable argument to " + action.function);
            ok = false;
            break;
          }
          args.push_back(*v);
        }
        if (ok) it->second(args);
        break;
      }
    }
  }
}

namespace {

/// Rename a rule-scoped variable so recursive proofs at different depths do
/// not capture each other's bindings.
std::string scopedVar(const std::string& name, int depth) {
  return name + "#d" + std::to_string(depth);
}

Pattern scopePattern(const Pattern& pattern, int depth) {
  Pattern out = pattern;
  for (SlotTest& test : out.tests) {
    if (test.kind == SlotTest::Kind::kVariable) {
      test.variable = scopedVar(test.variable, depth);
    }
  }
  return out;
}

ConditionTest scopeTest(const ConditionTest& test, int depth) {
  ConditionTest out = test;
  if (out.lhs.isVariable) out.lhs.variable = scopedVar(out.lhs.variable, depth);
  if (out.rhs.isVariable) out.rhs.variable = scopedVar(out.rhs.variable, depth);
  return out;
}

}  // namespace

std::optional<Bindings> InferenceEngine::prove(const Pattern& goal,
                                               const Bindings& bindings,
                                               int depth) const {
  if (depth <= 0) return std::nullopt;

  // Base case: a live fact satisfies the goal directly.
  for (const Fact* fact : facts_.byTemplate(goal.templateName)) {
    Bindings scratch = bindings;
    if (matchPattern(goal, *fact, scratch)) return scratch;
  }

  // Recursive case: a rule whose RHS asserts a matching fact, provided its
  // body can be proven. Rule variables are renamed per depth level.
  for (const auto& [name, rule] : rules_) {
    (void)name;
    for (const RuleAction& action : rule.rhs) {
      if (action.kind != RuleAction::Kind::kAssert ||
          action.templateName != goal.templateName) {
        continue;
      }
      // Unify the goal's slot tests with the head (the assert's slots).
      Bindings unified = bindings;
      bool ok = true;
      for (const SlotTest& test : goal.tests) {
        const Operand* headOperand = nullptr;
        for (const auto& [slot, operand] : action.slots) {
          if (slot == test.slot) {
            headOperand = &operand;
            break;
          }
        }
        if (headOperand == nullptr) {
          ok = false;  // the head does not provide this slot
          break;
        }
        const std::string headVar =
            headOperand->isVariable ? scopedVar(headOperand->variable, depth)
                                    : std::string{};
        if (test.kind == SlotTest::Kind::kLiteral) {
          if (headOperand->isVariable) {
            const auto it = unified.find(headVar);
            if (it == unified.end()) {
              unified.emplace(headVar, test.literal);
            } else if (!(it->second == test.literal)) {
              ok = false;
            }
          } else if (!(headOperand->literal == test.literal)) {
            ok = false;
          }
        } else {  // goal variable
          const auto goalIt = unified.find(test.variable);
          if (headOperand->isVariable) {
            const auto headIt = unified.find(headVar);
            if (goalIt != unified.end() && headIt != unified.end()) {
              if (!(goalIt->second == headIt->second)) ok = false;
            } else if (goalIt != unified.end()) {
              unified.emplace(headVar, goalIt->second);
            } else if (headIt != unified.end()) {
              unified.emplace(test.variable, headIt->second);
            }
            // Both unbound: linked through the body proof below; the goal
            // variable is resolved after the body binds the head variable.
          } else if (goalIt != unified.end()) {
            if (!(goalIt->second == headOperand->literal)) ok = false;
          } else {
            unified.emplace(test.variable, headOperand->literal);
          }
        }
        if (!ok) break;
      }
      if (!ok) continue;

      // Prove the rule body under the unified bindings.
      std::vector<Pattern> body;
      body.reserve(rule.lhs.size());
      for (const Pattern& pattern : rule.lhs) {
        body.push_back(scopePattern(pattern, depth));
      }
      std::vector<ConditionTest> tests;
      tests.reserve(rule.tests.size());
      for (const ConditionTest& test : rule.tests) {
        tests.push_back(scopeTest(test, depth));
      }
      auto proof = proveAll(body, tests, 0, unified, depth - 1);
      if (!proof.has_value()) continue;

      // Resolve goal variables that were linked to head variables.
      Bindings result = *proof;
      bool resolved = true;
      for (const SlotTest& test : goal.tests) {
        if (test.kind != SlotTest::Kind::kVariable) continue;
        if (result.contains(test.variable)) continue;
        const Operand* headOperand = nullptr;
        for (const auto& [slot, operand] : action.slots) {
          if (slot == test.slot) {
            headOperand = &operand;
            break;
          }
        }
        if (headOperand == nullptr) continue;
        if (headOperand->isVariable) {
          const auto it = result.find(scopedVar(headOperand->variable, depth));
          if (it != result.end()) {
            result.emplace(test.variable, it->second);
          } else {
            resolved = false;
          }
        } else {
          result.emplace(test.variable, headOperand->literal);
        }
      }
      if (resolved) return result;
    }
  }
  return std::nullopt;
}

std::optional<Bindings> InferenceEngine::proveAll(
    const std::vector<Pattern>& goals, const std::vector<ConditionTest>& tests,
    std::size_t index, Bindings bindings, int depth) const {
  if (index == goals.size()) {
    for (const ConditionTest& test : tests) {
      if (!test.eval(bindings)) return std::nullopt;
    }
    return bindings;
  }
  const Pattern& goal = goals[index];
  if (goal.negated) {
    // Negation as failure against working memory (non-recursive, as in the
    // forward engine).
    for (const Fact* fact : facts_.byTemplate(goal.templateName)) {
      Bindings scratch = bindings;
      if (matchPattern(goal, *fact, scratch)) return std::nullopt;
    }
    return proveAll(goals, tests, index + 1, std::move(bindings), depth);
  }

  // Backtrack over direct fact matches first, then rule-derived proofs.
  for (const Fact* fact : facts_.byTemplate(goal.templateName)) {
    Bindings scratch = bindings;
    if (!matchPattern(goal, *fact, scratch)) continue;
    auto rest = proveAll(goals, tests, index + 1, std::move(scratch), depth);
    if (rest.has_value()) return rest;
  }
  if (depth > 0) {
    auto derived = prove(goal, bindings, depth);
    if (derived.has_value()) {
      return proveAll(goals, tests, index + 1, std::move(*derived), depth);
    }
  }
  return std::nullopt;
}

std::optional<Bindings> InferenceEngine::query(const Pattern& goal,
                                               int maxDepth) const {
  return prove(goal, Bindings{}, maxDepth);
}

bool InferenceEngine::provable(const std::string& templateName,
                               const SlotMap& slots, int maxDepth) const {
  Pattern goal;
  goal.templateName = templateName;
  for (const auto& [slot, value] : slots) {
    goal.tests.push_back(SlotTest{SlotTest::Kind::kLiteral, slot, value, ""});
  }
  return prove(goal, Bindings{}, maxDepth).has_value();
}

void InferenceEngine::reportError(std::string message) {
  ++actionErrors_;
  if (errorLog_.size() < 256) errorLog_.push_back(std::move(message));
}

}  // namespace softqos::rules
