// LHS patterns: template matches with literal slots, ?variable bindings,
// inline predicates, negation, plus standalone (test ...) conditions.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "rules/fact.hpp"
#include "rules/value.hpp"

namespace softqos::rules {

/// Variable bindings accumulated while matching a rule's LHS.
using Bindings = std::map<std::string, Value>;

/// An operand in a predicate/test/action: either a literal or a ?variable.
struct Operand {
  bool isVariable = false;
  std::string variable;
  Value literal;

  static Operand var(std::string name);
  static Operand lit(Value v);

  /// Parse "?x" as a variable, anything else as a literal.
  static Operand parse(const std::string& token);

  /// Resolve against bindings. Returns nullptr for an unbound variable.
  [[nodiscard]] const Value* resolve(const Bindings& bindings) const;
};

enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// Evaluate `a op b`; incomparable operand types yield false.
bool evalCmp(CmpOp op, const Value& a, const Value& b);

/// Parse "=", "!="/"<>", "<", "<=", ">", ">=". Throws on anything else.
CmpOp parseCmpOp(const std::string& token);
std::string cmpOpName(CmpOp op);

/// One slot constraint inside a pattern.
struct SlotTest {
  enum class Kind {
    kLiteral,   // (slot 5) — slot must equal the literal
    kVariable,  // (slot ?x) — bind ?x, or check equality if already bound
  };
  Kind kind = Kind::kLiteral;
  std::string slot;
  Value literal;
  std::string variable;
};

/// An LHS pattern: all slot tests must hold on one fact of the template.
struct Pattern {
  std::string templateName;
  std::vector<SlotTest> tests;
  bool negated = false;  // (not (tmpl ...)): no matching fact may exist
};

/// A standalone boolean test over bindings: (test (> ?v 4096)).
struct ConditionTest {
  CmpOp op = CmpOp::kEq;
  Operand lhs;
  Operand rhs;

  /// False when either operand is an unbound variable.
  [[nodiscard]] bool eval(const Bindings& bindings) const;
};

/// Try to match `fact` against `pattern` (ignoring negation), extending
/// `bindings` in place. On failure `bindings` is left unchanged.
bool matchPattern(const Pattern& pattern, const Fact& fact, Bindings& bindings);

}  // namespace softqos::rules
