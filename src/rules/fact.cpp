#include "rules/fact.hpp"

#include <utility>

namespace softqos::rules {

std::string Fact::toString() const {
  std::string out = "(" + templateName;
  for (const auto& [name, value] : slots) {
    out += " (" + name + " " + value.toString() + ")";
  }
  out += ")";
  return out;
}

FactId FactRepository::assertFact(const std::string& templateName,
                                  SlotMap slots) {
  for (const auto& [id, fact] : live_) {
    if (fact.templateName == templateName && fact.slots == slots) return id;
  }
  const FactId id = nextId_++;
  Fact f;
  f.id = id;
  f.templateName = templateName;
  f.slots = std::move(slots);
  live_.emplace(id, std::move(f));
  notifyChange();
  return id;
}

bool FactRepository::retract(FactId id) {
  if (live_.erase(id) == 0) return false;
  notifyChange();
  return true;
}

FactId FactRepository::modify(FactId id, const SlotMap& changes) {
  const auto it = live_.find(id);
  if (it == live_.end()) return kNoFact;
  Fact updated = it->second;
  for (const auto& [slot, value] : changes) updated.slots[slot] = value;
  live_.erase(it);
  return assertFact(updated.templateName, std::move(updated.slots));
}

std::size_t FactRepository::retractTemplate(const std::string& templateName) {
  std::size_t n = 0;
  for (auto it = live_.begin(); it != live_.end();) {
    if (it->second.templateName == templateName) {
      it = live_.erase(it);
      ++n;
    } else {
      ++it;
    }
  }
  if (n > 0) notifyChange();
  return n;
}

const Fact* FactRepository::find(FactId id) const {
  const auto it = live_.find(id);
  return it == live_.end() ? nullptr : &it->second;
}

std::vector<const Fact*> FactRepository::byTemplate(
    const std::string& templateName) const {
  std::vector<const Fact*> out;
  for (const auto& [id, fact] : live_) {
    (void)id;
    if (fact.templateName == templateName) out.push_back(&fact);
  }
  return out;
}

std::vector<const Fact*> FactRepository::all() const {
  std::vector<const Fact*> out;
  out.reserve(live_.size());
  for (const auto& [id, fact] : live_) {
    (void)id;
    out.push_back(&fact);
  }
  return out;
}

const Fact* FactRepository::findWhere(const std::string& templateName,
                                      const SlotMap& slots) const {
  for (const auto& [id, fact] : live_) {
    (void)id;
    if (fact.templateName != templateName) continue;
    bool ok = true;
    for (const auto& [name, value] : slots) {
      const Value* actual = fact.slot(name);
      if (actual == nullptr || !(*actual == value)) {
        ok = false;
        break;
      }
    }
    if (ok) return &fact;
  }
  return nullptr;
}

void FactRepository::clear() {
  if (live_.empty()) return;
  live_.clear();
  notifyChange();
}

void FactRepository::notifyChange() {
  if (listener_) listener_();
}

}  // namespace softqos::rules
