#include "rules/fact.hpp"

#include <algorithm>
#include <utility>

namespace softqos::rules {

namespace {

inline std::size_t hashCombine(std::size_t seed, std::size_t v) {
  return seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace

std::string Fact::toString() const {
  std::string out = "(" + templateName;
  for (const auto& [name, value] : slots) {
    out += " (" + name + " " + value.toString() + ")";
  }
  out += ")";
  return out;
}

std::size_t FactRepository::contentHash(const std::string& templateName,
                                        const SlotMap& slots) {
  std::size_t h = std::hash<std::string>{}(templateName);
  for (const auto& [name, value] : slots) {  // SlotMap is ordered: stable hash
    h = hashCombine(h, std::hash<std::string>{}(name));
    h = hashCombine(h, value.hash());
  }
  return h;
}

std::size_t FactRepository::alphaHash(const std::string& templateName,
                                      const std::string& slot,
                                      const Value& value) {
  std::size_t h = std::hash<std::string>{}(templateName);
  h = hashCombine(h, std::hash<std::string>{}(slot) ^ 0x517cc1b727220a95ULL);
  return hashCombine(h, value.hash());
}

void FactRepository::partitionIndexInsert(const Fact& fact) {
  if (partitionSlot_.empty()) return;
  const Value* key = fact.slot(partitionSlot_);
  if (key == nullptr) {
    globalByTemplate_[fact.templateName].emplace(fact.id, &fact);
  } else {
    partition_[alphaHash(fact.templateName, partitionSlot_, *key)].emplace(
        fact.id, &fact);
  }
}

void FactRepository::partitionIndexRemove(const Fact& fact) {
  if (partitionSlot_.empty()) return;
  const Value* key = fact.slot(partitionSlot_);
  if (key == nullptr) {
    const auto it = globalByTemplate_.find(fact.templateName);
    if (it != globalByTemplate_.end()) {
      it->second.erase(fact.id);
      if (it->second.empty()) globalByTemplate_.erase(it);
    }
  } else {
    const auto it =
        partition_.find(alphaHash(fact.templateName, partitionSlot_, *key));
    if (it != partition_.end()) {
      it->second.erase(fact.id);
      if (it->second.empty()) partition_.erase(it);
    }
  }
}

void FactRepository::setPartitionSlot(std::string slot) {
  partitionSlot_ = std::move(slot);
  partition_.clear();
  globalByTemplate_.clear();
  for (const auto& [id, fact] : live_) {
    (void)id;
    partitionIndexInsert(fact);
  }
}

const Value* FactRepository::partitionKey(const Fact& fact) const {
  return partitionSlot_.empty() ? nullptr : fact.slot(partitionSlot_);
}

void FactRepository::forEachInPartition(
    const std::string& templateName, const Value& key,
    const std::function<bool(const Fact&)>& visit) const {
  // Two id-ordered sources merged in id order: the keyed partition (bucket
  // may hold hash collisions, verified per fact) and the global facts of the
  // template. Matches forEach's visiting order restricted to this subset.
  static const std::map<FactId, const Fact*> kEmpty;
  const auto keyedIt =
      partition_.find(alphaHash(templateName, partitionSlot_, key));
  const auto globalIt = globalByTemplate_.find(templateName);
  const auto& keyed = keyedIt == partition_.end() ? kEmpty : keyedIt->second;
  const auto& global =
      globalIt == globalByTemplate_.end() ? kEmpty : globalIt->second;

  auto k = keyed.begin();
  auto g = global.begin();
  while (k != keyed.end() || g != global.end()) {
    if (g == global.end() || (k != keyed.end() && k->first < g->first)) {
      const Fact& fact = *k->second;
      ++k;
      if (fact.templateName != templateName) continue;  // hash collision
      const Value* actual = fact.slot(partitionSlot_);
      if (actual == nullptr || !(*actual == key)) continue;
      if (!visit(fact)) return;
    } else {
      if (!visit(*g->second)) return;
      ++g;
    }
  }
}

FactId FactRepository::insert(const std::string& templateName, SlotMap slots) {
  const FactId id = nextId_++;
  Fact f;
  f.id = id;
  f.templateName = templateName;
  f.slots = std::move(slots);
  const auto [it, inserted] = live_.emplace(id, std::move(f));
  const Fact& stored = it->second;
  (void)inserted;
  byTemplate_[templateName].emplace(id, &stored);
  byContent_[contentHash(templateName, stored.slots)].push_back(id);
  for (const auto& [name, value] : stored.slots) {
    alpha_[alphaHash(templateName, name, value)].emplace(id, &stored);
  }
  partitionIndexInsert(stored);
  publish(FactDelta::Kind::kAssert, stored);
  return id;
}

bool FactRepository::remove(FactId id) {
  const auto it = live_.find(id);
  if (it == live_.end()) return false;
  // Move the fact out so the retract delta can refer to it after the indexes
  // have dropped it.
  Fact gone = std::move(it->second);
  live_.erase(it);

  const auto tmplIt = byTemplate_.find(gone.templateName);
  if (tmplIt != byTemplate_.end()) {
    tmplIt->second.erase(id);
    if (tmplIt->second.empty()) byTemplate_.erase(tmplIt);
  }
  const auto contentIt = byContent_.find(contentHash(gone.templateName, gone.slots));
  if (contentIt != byContent_.end()) {
    auto& ids = contentIt->second;
    ids.erase(std::remove(ids.begin(), ids.end(), id), ids.end());
    if (ids.empty()) byContent_.erase(contentIt);
  }
  for (const auto& [name, value] : gone.slots) {
    const auto alphaIt = alpha_.find(alphaHash(gone.templateName, name, value));
    if (alphaIt != alpha_.end()) {
      alphaIt->second.erase(id);
      if (alphaIt->second.empty()) alpha_.erase(alphaIt);
    }
  }
  partitionIndexRemove(gone);
  publish(FactDelta::Kind::kRetract, gone);
  return true;
}

FactId FactRepository::assertFact(const std::string& templateName,
                                  SlotMap slots) {
  const auto bucket = byContent_.find(contentHash(templateName, slots));
  if (bucket != byContent_.end()) {
    for (const FactId id : bucket->second) {
      const Fact& fact = live_.at(id);
      if (fact.templateName == templateName && fact.slots == slots) return id;
    }
  }
  const FactId id = insert(templateName, std::move(slots));
  notifyChange();
  return id;
}

bool FactRepository::retract(FactId id) {
  if (!remove(id)) return false;
  notifyChange();
  return true;
}

FactId FactRepository::modify(FactId id, const SlotMap& changes) {
  const auto it = live_.find(id);
  if (it == live_.end()) return kNoFact;
  SlotMap updated = it->second.slots;
  for (const auto& [slot, value] : changes) updated[slot] = value;
  if (updated == it->second.slots) return id;  // no-op: keep id, no deltas
  const std::string templateName = it->second.templateName;
  remove(id);
  return assertFact(templateName, std::move(updated));
}

std::size_t FactRepository::retractTemplate(const std::string& templateName) {
  std::vector<FactId> ids;
  const auto it = byTemplate_.find(templateName);
  if (it != byTemplate_.end()) {
    ids.reserve(it->second.size());
    for (const auto& [id, fact] : it->second) {
      (void)fact;
      ids.push_back(id);
    }
  }
  for (const FactId id : ids) remove(id);
  if (!ids.empty()) notifyChange();
  return ids.size();
}

const Fact* FactRepository::find(FactId id) const {
  const auto it = live_.find(id);
  return it == live_.end() ? nullptr : &it->second;
}

std::vector<const Fact*> FactRepository::byTemplate(
    const std::string& templateName) const {
  std::vector<const Fact*> out;
  const auto it = byTemplate_.find(templateName);
  if (it == byTemplate_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& [id, fact] : it->second) {
    (void)id;
    out.push_back(fact);
  }
  return out;
}

void FactRepository::forEach(
    const std::string& templateName,
    const std::function<bool(const Fact&)>& visit) const {
  const auto it = byTemplate_.find(templateName);
  if (it == byTemplate_.end()) return;
  for (const auto& [id, fact] : it->second) {
    (void)id;
    if (!visit(*fact)) return;
  }
}

std::vector<const Fact*> FactRepository::all() const {
  std::vector<const Fact*> out;
  out.reserve(live_.size());
  for (const auto& [id, fact] : live_) {
    (void)id;
    out.push_back(&fact);
  }
  std::sort(out.begin(), out.end(),
            [](const Fact* a, const Fact* b) { return a->id < b->id; });
  return out;
}

const Fact* FactRepository::findWhere(const std::string& templateName,
                                      const SlotMap& slots) const {
  if (slots.empty()) {
    const auto it = byTemplate_.find(templateName);
    return it == byTemplate_.end() ? nullptr : it->second.begin()->second;
  }
  // Probe the alpha bucket of the first constrained slot; candidates still
  // verify every slot (the bucket may hold hash collisions).
  const auto& [probeSlot, probeValue] = *slots.begin();
  const auto bucket = alpha_.find(alphaHash(templateName, probeSlot, probeValue));
  if (bucket == alpha_.end()) return nullptr;
  for (const auto& [id, fact] : bucket->second) {
    (void)id;
    if (fact->templateName != templateName) continue;
    bool ok = true;
    for (const auto& [name, value] : slots) {
      const Value* actual = fact->slot(name);
      if (actual == nullptr || !(*actual == value)) {
        ok = false;
        break;
      }
    }
    if (ok) return fact;
  }
  return nullptr;
}

void FactRepository::clear() {
  if (live_.empty()) return;
  std::vector<FactId> ids;
  ids.reserve(live_.size());
  for (const auto& [id, fact] : live_) {
    (void)fact;
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  for (const FactId id : ids) remove(id);
  notifyChange();
}

void FactRepository::notifyChange() {
  if (listener_) listener_();
}

void FactRepository::publish(FactDelta::Kind kind, const Fact& fact) {
  if (!deltaListener_) return;
  FactDelta delta;
  delta.kind = kind;
  delta.fact = &fact;
  deltaListener_(delta);
}

}  // namespace softqos::rules
