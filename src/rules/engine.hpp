// Forward-chaining inference engine (a from-scratch CLIPS workalike).
//
// The QoS Host Manager and QoS Domain Manager each embed one engine; their
// diagnosis logic is data (rules added/removed at run time — the paper's
// "dynamic rule distribution"), and their effects on the system happen
// through registered C++ functions invoked by rule RHS (call ...) actions.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "rules/fact.hpp"
#include "rules/pattern.hpp"

namespace softqos::rules {

/// One RHS action of a rule.
struct RuleAction {
  enum class Kind { kAssert, kRetract, kModify, kCall };
  Kind kind = Kind::kCall;

  // kAssert: template + slots; kModify: slots to change.
  std::string templateName;
  std::vector<std::pair<std::string, Operand>> slots;

  // kRetract / kModify: 1-based index of the LHS pattern whose matched fact
  // is targeted (negated patterns cannot be targeted).
  int patternIndex = -1;

  // kCall: registered function + arguments.
  std::string function;
  std::vector<Operand> args;
};

struct Rule {
  std::string name;
  int salience = 0;
  std::vector<Pattern> lhs;
  std::vector<ConditionTest> tests;
  std::vector<RuleAction> rhs;
};

class InferenceEngine {
 public:
  using EngineFunction = std::function<void(const std::vector<Value>& args)>;

  explicit InferenceEngine(std::string name = "engine");

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  FactRepository& facts() { return facts_; }
  const FactRepository& facts() const { return facts_; }

  /// Add (or replace, by name) a rule. Replacing clears its refraction marks
  /// so the new definition can fire on existing facts.
  void addRule(Rule rule);
  bool removeRule(const std::string& name);
  [[nodiscard]] bool hasRule(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> ruleNames() const;
  [[nodiscard]] std::size_t ruleCount() const { return rules_.size(); }

  void registerFunction(const std::string& name, EngineFunction fn);

  /// Forward-chain until quiescent or `maxFirings` reached; returns firings.
  /// Refraction: an activation (rule x fact tuple) fires at most once for
  /// the lifetime of that fact tuple.
  std::size_t run(std::size_t maxFirings = 10000);

  /// Backward-chaining query (the paper's Section 5.3 names backward
  /// chaining as an inferencing alternative; the prototype used forward
  /// chaining). A goal is proven if a live fact matches it, or if some rule
  /// ASSERTS a matching fact and all of that rule's positive patterns and
  /// tests can be proven recursively under the accumulated bindings.
  /// Negated patterns use negation-as-failure against working memory only.
  /// Nothing is asserted; returns the bindings of the first proof found.
  [[nodiscard]] std::optional<Bindings> query(const Pattern& goal,
                                              int maxDepth = 8) const;

  /// Convenience: is a ground fact derivable?
  [[nodiscard]] bool provable(const std::string& templateName,
                              const SlotMap& slots, int maxDepth = 8) const;

  [[nodiscard]] std::uint64_t totalFirings() const { return totalFirings_; }

  /// RHS errors (unknown function, unbound variable, bad retract index).
  [[nodiscard]] std::uint64_t actionErrors() const { return actionErrors_; }
  [[nodiscard]] const std::vector<std::string>& errorLog() const {
    return errorLog_;
  }

  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  struct Activation {
    const Rule* rule = nullptr;
    std::vector<FactId> factIds;  // per LHS position (kNoFact for negated)
    Bindings bindings;
    FactId recency = 0;  // newest positive fact involved
    std::string key;     // refraction key
  };

  void matchRule(const Rule& rule, std::vector<Activation>& out) const;
  std::optional<Bindings> prove(const Pattern& goal, const Bindings& bindings,
                                int depth) const;
  std::optional<Bindings> proveAll(const std::vector<Pattern>& goals,
                                   const std::vector<ConditionTest>& tests,
                                   std::size_t index, Bindings bindings,
                                   int depth) const;
  void matchFrom(const Rule& rule, std::size_t position, Bindings bindings,
                 std::vector<FactId> factIds, std::vector<Activation>& out) const;
  void fire(const Activation& activation);
  void reportError(std::string message);

  std::string name_;
  FactRepository facts_;
  std::map<std::string, Rule> rules_;
  std::map<std::string, EngineFunction> functions_;
  std::set<std::string> firedKeys_;
  std::uint64_t totalFirings_ = 0;
  std::uint64_t actionErrors_ = 0;
  std::vector<std::string> errorLog_;
};

}  // namespace softqos::rules
