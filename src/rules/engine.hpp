// Forward-chaining inference engine (a from-scratch CLIPS workalike).
//
// The QoS Host Manager and QoS Domain Manager each embed one engine; their
// diagnosis logic is data (rules added/removed at run time — the paper's
// "dynamic rule distribution"), and their effects on the system happen
// through registered C++ functions invoked by rule RHS (call ...) actions.
//
// Matching is incremental (Rete-inspired): the engine subscribes to the
// working-memory delta stream and maintains a persistent agenda. An
// assert/retract re-matches only rules whose alpha profile (the set of
// template names in their LHS) intersects the delta — and for positive
// patterns only the delta fact is joined against working memory, instead of
// rebuilding every activation from scratch. Refraction is tracked per rule
// as hashed fact tuples, and the agenda is an ordered set (salience,
// recency, rule name) so run() pops the best activation in O(log n).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "rules/fact.hpp"
#include "rules/pattern.hpp"

namespace softqos::rules {

/// One RHS action of a rule.
struct RuleAction {
  enum class Kind { kAssert, kRetract, kModify, kCall };
  Kind kind = Kind::kCall;

  // kAssert: template + slots; kModify: slots to change.
  std::string templateName;
  std::vector<std::pair<std::string, Operand>> slots;

  // kRetract / kModify: 1-based index of the LHS pattern whose matched fact
  // is targeted (negated patterns cannot be targeted).
  int patternIndex = -1;

  // kCall: registered function + arguments.
  std::string function;
  std::vector<Operand> args;
};

struct Rule {
  std::string name;
  int salience = 0;
  /// Partitioned engines (setPartitionSlot) match a rule within the delta
  /// fact's partition plus the globals. A rule whose joins genuinely span
  /// partitions opts out with (declare (cross-partition)): it is always
  /// matched against all of working memory.
  bool crossPartition = false;
  std::vector<Pattern> lhs;
  std::vector<ConditionTest> tests;
  std::vector<RuleAction> rhs;
};

class InferenceEngine {
 public:
  using EngineFunction = std::function<void(const std::vector<Value>& args)>;

  explicit InferenceEngine(std::string name = "engine");

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  FactRepository& facts() { return facts_; }
  const FactRepository& facts() const { return facts_; }

  /// Add (or replace, by name) a rule. Replacing clears its refraction marks
  /// so the new definition can fire on existing facts.
  void addRule(Rule rule);
  bool removeRule(const std::string& name);
  [[nodiscard]] bool hasRule(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> ruleNames() const;
  [[nodiscard]] std::size_t ruleCount() const { return rules_.size(); }

  void registerFunction(const std::string& name, EngineFunction fn);

  /// Shard working memory and matching by an application key slot (e.g. the
  /// host manager's "pid"). Join positions whose pattern constrains the key
  /// slot to a known value (a literal, or a variable an earlier position
  /// bound) scan only that partition plus the key-less (global) facts, so
  /// matching cost tracks the touched application, not the whole host. The
  /// derivation is per position from the pattern itself, so results are
  /// byte-identical to unpartitioned matching for every rule; rules whose
  /// joins genuinely span applications may still declare (cross-partition)
  /// to force full scans. The agenda stays one totally-ordered set across
  /// partitions, so conflict resolution is untouched.
  void setPartitionSlot(const std::string& slot);
  [[nodiscard]] bool partitioned() const { return facts_.partitioned(); }

  /// Observability hooks around every rule firing. The pre-hook sees the
  /// rule and its matched fact tuple (kNoFact at negated positions) and
  /// returns whether this firing should be wall-clock timed; the post-hook
  /// receives the elapsed host nanoseconds (0 when untimed). With no hooks
  /// installed (the default) a firing costs one extra branch and no clock
  /// reads.
  using PreFireHook =
      std::function<bool(const Rule& rule, const std::vector<FactId>& matched)>;
  using PostFireHook = std::function<void(
      const Rule& rule, const std::vector<FactId>& matched,
      std::uint64_t wallNanos)>;
  void setFireHooks(PreFireHook pre, PostFireHook post) {
    preFire_ = std::move(pre);
    postFire_ = std::move(post);
  }

  /// Forward-chain until quiescent or `maxFirings` reached; returns firings.
  /// Refraction: an activation (rule x fact tuple) fires at most once for
  /// the lifetime of that fact tuple. The agenda is maintained incrementally
  /// as facts change, so a quiescent run is O(1).
  std::size_t run(std::size_t maxFirings = 10000);

  /// Activations currently eligible to fire (pending, non-refracted).
  [[nodiscard]] std::size_t agendaSize() const { return agenda_.size(); }

  /// Backward-chaining query (the paper's Section 5.3 names backward
  /// chaining as an inferencing alternative; the prototype used forward
  /// chaining). A goal is proven if a live fact matches it, or if some rule
  /// ASSERTS a matching fact and all of that rule's positive patterns and
  /// tests can be proven recursively under the accumulated bindings.
  /// Negated patterns use negation-as-failure against working memory only.
  /// Nothing is asserted; returns the bindings of the first proof found.
  [[nodiscard]] std::optional<Bindings> query(const Pattern& goal,
                                              int maxDepth = 8) const;

  /// Convenience: is a ground fact derivable?
  [[nodiscard]] bool provable(const std::string& templateName,
                              const SlotMap& slots, int maxDepth = 8) const;

  [[nodiscard]] std::uint64_t totalFirings() const { return totalFirings_; }

  /// RHS errors (unknown function, unbound variable, bad retract index).
  [[nodiscard]] std::uint64_t actionErrors() const { return actionErrors_; }
  [[nodiscard]] const std::vector<std::string>& errorLog() const {
    return errorLog_;
  }

  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  /// The fact ids an activation matched, one per LHS position (kNoFact for
  /// negated positions). Together with the rule this is the refraction key.
  using FactTuple = std::vector<FactId>;

  struct TupleHash {
    std::size_t operator()(const FactTuple& tuple) const {
      std::size_t h = 0xcbf29ce484222325ULL;
      for (const FactId id : tuple) {
        h ^= id + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      }
      return h;
    }
  };
  using TupleSet = std::unordered_set<FactTuple, TupleHash>;

  struct Activation {
    const Rule* rule = nullptr;
    FactTuple factIds;   // per LHS position (kNoFact for negated)
    Bindings bindings;
    FactId recency = 0;  // newest positive fact involved
  };

  /// Conflict resolution: salience desc, recency desc, rule name asc; the
  /// fact tuple makes the order total (and the set agenda duplicate-free,
  /// since salience/recency/bindings are functions of rule + tuple).
  struct AgendaOrder {
    bool operator()(const Activation& a, const Activation& b) const {
      if (a.rule->salience != b.rule->salience) {
        return a.rule->salience > b.rule->salience;
      }
      if (a.recency != b.recency) return a.recency > b.recency;
      if (a.rule->name != b.rule->name) return a.rule->name < b.rule->name;
      return a.factIds < b.factIds;
    }
  };

  /// Enumerate matches of `rule` from `position` on. When `pinned` is given,
  /// the positive pattern at `pinnedPos` matches only that fact (delta
  /// seeding); otherwise every position ranges over working memory (scoped
  /// to one partition when the pattern determines the key — see scanFacts).
  void matchScan(const Rule& rule, std::size_t position, Bindings bindings,
                 FactTuple factIds, const Fact* pinned, std::size_t pinnedPos,
                 std::vector<Activation>& out) const;
  /// Visit candidate facts for one scan position. With partitioning on, a
  /// pattern that pins the key slot to a literal or an already-bound
  /// variable scans only that partition (plus globals, which cannot match a
  /// key-slot test and are rejected by matchPattern); exactness does not
  /// depend on any property of the rule.
  void scanFacts(const Rule& rule, const Pattern& pattern,
                 const Bindings& bindings,
                 const std::function<bool(const Fact&)>& visit) const;

  void onDelta(const FactDelta& delta);
  void seedMatch(const Rule& rule, const Fact& fact);
  void recomputeRule(const Rule& rule);
  /// The variable every LHS pattern binds the partition slot to, when the
  /// rule keys all its patterns on one shared variable (nullptr otherwise).
  /// Such a rule's activations partition cleanly by that variable's value,
  /// enabling the scoped recompute below.
  const std::string* scopeVariable(const Rule& rule) const;
  /// Partition-scoped re-derivation for negated-pattern deltas: erase only
  /// the pending activations whose facts all carry partition key `key`, then
  /// re-match with `var` pre-bound to `key` so the scan never leaves the
  /// partition. Exact only for rules where scopeVariable(rule) == &var.
  void recomputeRuleScoped(const Rule& rule, const std::string& var,
                           const Value& key);
  void insertActivation(Activation act);
  void eraseAgendaEntry(const Rule* rule, const FactTuple& tuple);
  void removeAgendaForRule(const Rule* rule);
  void recordFired(const Activation& act);
  void indexRule(const Rule& rule);
  void unindexRule(const Rule& rule);

  std::optional<Bindings> prove(const Pattern& goal, const Bindings& bindings,
                                int depth) const;
  std::optional<Bindings> proveAll(const std::vector<Pattern>& goals,
                                   const std::vector<ConditionTest>& tests,
                                   std::size_t index, Bindings bindings,
                                   int depth) const;
  void fire(const Activation& activation);
  void reportError(std::string message);

  std::string name_;
  FactRepository facts_;
  PreFireHook preFire_;
  PostFireHook postFire_;
  std::map<std::string, Rule> rules_;  // node-stable: agenda holds Rule*
  std::map<std::string, EngineFunction> functions_;

  // Alpha profile: template name -> rules with a positive / negated pattern
  // on it. A delta touches only the rules these indexes name.
  std::unordered_map<std::string, std::vector<const Rule*>> positiveByTemplate_;
  std::unordered_map<std::string, std::vector<const Rule*>> negatedByTemplate_;

  // The persistent agenda plus lookup mirrors: per-rule live tuples (dedup +
  // rule removal) and per-fact back references (retract invalidation; may
  // hold stale entries, validated against agendaTuples_ before use).
  std::set<Activation, AgendaOrder> agenda_;
  std::unordered_map<const Rule*, TupleSet> agendaTuples_;
  std::unordered_map<FactId, std::vector<std::pair<const Rule*, FactTuple>>>
      agendaByFact_;

  // Refraction: fired tuples per rule (O(1) wipe on rule replacement) with
  // per-fact back references so dead facts' marks are garbage collected.
  std::unordered_map<std::string, TupleSet> firedByRule_;
  std::unordered_map<FactId, std::vector<std::pair<std::string, FactTuple>>>
      firedByFact_;

  std::uint64_t totalFirings_ = 0;
  std::uint64_t actionErrors_ = 0;
  std::vector<std::string> errorLog_;
};

}  // namespace softqos::rules
