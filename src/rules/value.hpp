// Dynamically typed values flowing through the inference engine
// (fact slots, rule-test operands, action arguments).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <variant>

namespace softqos::rules {

class Value {
 public:
  enum class Type { kInt, kFloat, kString, kSymbol, kBool };

  Value() : type_(Type::kSymbol), data_(std::string("nil")) {}

  static Value integer(std::int64_t v);
  static Value real(double v);
  static Value str(std::string v);
  static Value symbol(std::string v);
  static Value boolean(bool v);

  /// Parse a CLIPS-style literal: 42 -> int, 4.2 -> float, "x" -> string,
  /// TRUE/FALSE -> bool, anything else -> symbol.
  static Value parseLiteral(const std::string& token);

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool isNumeric() const {
    return type_ == Type::kInt || type_ == Type::kFloat;
  }

  [[nodiscard]] std::int64_t asInt() const;
  [[nodiscard]] double asFloat() const;
  [[nodiscard]] const std::string& asString() const;  // string or symbol text
  [[nodiscard]] bool asBool() const;

  /// Numeric view (int widened to double). Precondition: isNumeric().
  [[nodiscard]] double numeric() const;

  /// Equality: numerics compare by value across int/float; strings and
  /// symbols compare by text within their own type.
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Three-way ordering (-1/0/1); nullopt when the types are not comparable
  /// (e.g. string vs int). Numerics order numerically; strings/symbols
  /// lexicographically.
  static std::optional<int> compare(const Value& a, const Value& b);

  /// Render for traces and reports (strings are quoted).
  [[nodiscard]] std::string toString() const;

  /// Hash consistent with operator==: numerics that compare equal across
  /// int/float hash identically (both hash their double view).
  [[nodiscard]] std::size_t hash() const;

 private:
  Type type_;
  std::variant<std::int64_t, double, std::string, bool> data_;
};

}  // namespace softqos::rules
