#include "rules/parser.hpp"

#include <cctype>
#include <utility>

namespace softqos::rules {
namespace {

/// A parsed s-expression: an atom or a list.
struct Sexp {
  bool isAtom = false;
  std::string atom;
  std::vector<Sexp> items;
};

class Tokenizer {
 public:
  explicit Tokenizer(const std::string& text) : text_(text) {}

  /// Next token: "(", ")", or an atom (quoted strings keep their quotes).
  /// Empty string at end of input.
  std::string next() {
    skipSpaceAndComments();
    if (pos_ >= text_.size()) return "";
    const char c = text_[pos_];
    if (c == '(' || c == ')') {
      ++pos_;
      return std::string(1, c);
    }
    if (c == '"') {
      const std::size_t start = pos_++;
      while (pos_ < text_.size() && text_[pos_] != '"') ++pos_;
      if (pos_ >= text_.size()) {
        throw RuleParseError("unterminated string literal");
      }
      ++pos_;  // consume closing quote
      return text_.substr(start, pos_ - start);
    }
    const std::size_t start = pos_;
    while (pos_ < text_.size() && !std::isspace(static_cast<unsigned char>(text_[pos_])) &&
           text_[pos_] != '(' && text_[pos_] != ')' && text_[pos_] != ';') {
      ++pos_;
    }
    return text_.substr(start, pos_ - start);
  }

 private:
  void skipSpaceAndComments() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == ';') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        return;
      }
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

Sexp readSexp(Tokenizer& tok, const std::string& first) {
  if (first.empty()) throw RuleParseError("unexpected end of input");
  if (first == ")") throw RuleParseError("unexpected ')'");
  if (first != "(") {
    Sexp s;
    s.isAtom = true;
    s.atom = first;
    return s;
  }
  Sexp list;
  while (true) {
    const std::string t = tok.next();
    if (t.empty()) throw RuleParseError("missing ')'");
    if (t == ")") return list;
    list.items.push_back(readSexp(tok, t));
  }
}

std::vector<Sexp> readAll(const std::string& text) {
  Tokenizer tok(text);
  std::vector<Sexp> out;
  while (true) {
    const std::string t = tok.next();
    if (t.empty()) return out;
    out.push_back(readSexp(tok, t));
  }
}

const std::string& atomOf(const Sexp& s, const char* what) {
  if (!s.isAtom) throw RuleParseError(std::string("expected ") + what);
  return s.atom;
}

/// Parse (SLOT operand) pairs from items[from..].
std::vector<std::pair<std::string, Operand>> parseSlotOperands(
    const Sexp& list, std::size_t from) {
  std::vector<std::pair<std::string, Operand>> out;
  for (std::size_t i = from; i < list.items.size(); ++i) {
    const Sexp& pair = list.items[i];
    if (pair.isAtom || pair.items.size() != 2) {
      throw RuleParseError("expected (slot value) pair");
    }
    out.emplace_back(atomOf(pair.items[0], "slot name"),
                     Operand::parse(atomOf(pair.items[1], "slot value")));
  }
  return out;
}

Pattern parsePattern(const Sexp& s, bool negated) {
  if (s.isAtom || s.items.empty()) throw RuleParseError("expected a pattern");
  Pattern p;
  p.negated = negated;
  p.templateName = atomOf(s.items[0], "template name");
  for (const auto& [slot, operand] : parseSlotOperands(s, 1)) {
    SlotTest test;
    test.slot = slot;
    if (operand.isVariable) {
      test.kind = SlotTest::Kind::kVariable;
      test.variable = operand.variable;
    } else {
      test.kind = SlotTest::Kind::kLiteral;
      test.literal = operand.literal;
    }
    p.tests.push_back(std::move(test));
  }
  return p;
}

ConditionTest parseTest(const Sexp& s) {
  // s is the inner (OP a b).
  if (s.isAtom || s.items.size() != 3) {
    throw RuleParseError("test expects (op lhs rhs)");
  }
  ConditionTest t;
  t.op = parseCmpOp(atomOf(s.items[0], "comparison operator"));
  t.lhs = Operand::parse(atomOf(s.items[1], "test operand"));
  t.rhs = Operand::parse(atomOf(s.items[2], "test operand"));
  return t;
}

RuleAction parseAction(const Sexp& s) {
  if (s.isAtom || s.items.empty() || !s.items[0].isAtom) {
    throw RuleParseError("expected an action list");
  }
  const std::string& head = s.items[0].atom;
  RuleAction a;
  if (head == "assert") {
    if (s.items.size() != 2 || s.items[1].isAtom || s.items[1].items.empty()) {
      throw RuleParseError("assert expects one fact form");
    }
    a.kind = RuleAction::Kind::kAssert;
    const Sexp& fact = s.items[1];
    a.templateName = atomOf(fact.items[0], "template name");
    a.slots = parseSlotOperands(fact, 1);
    return a;
  }
  if (head == "retract") {
    if (s.items.size() != 2) throw RuleParseError("retract expects an index");
    a.kind = RuleAction::Kind::kRetract;
    a.patternIndex = std::stoi(atomOf(s.items[1], "pattern index"));
    return a;
  }
  if (head == "modify") {
    if (s.items.size() < 3) {
      throw RuleParseError("modify expects an index and slot pairs");
    }
    a.kind = RuleAction::Kind::kModify;
    a.patternIndex = std::stoi(atomOf(s.items[1], "pattern index"));
    a.slots = parseSlotOperands(s, 2);
    return a;
  }
  if (head == "call") {
    if (s.items.size() < 2) throw RuleParseError("call expects a function name");
    a.kind = RuleAction::Kind::kCall;
    a.function = atomOf(s.items[1], "function name");
    for (std::size_t i = 2; i < s.items.size(); ++i) {
      a.args.push_back(Operand::parse(atomOf(s.items[i], "call argument")));
    }
    return a;
  }
  throw RuleParseError("unknown action: " + head);
}

Rule parseDefrule(const Sexp& s) {
  if (s.items.size() < 2 || !s.items[0].isAtom || s.items[0].atom != "defrule") {
    throw RuleParseError("expected (defrule ...)");
  }
  Rule rule;
  rule.name = atomOf(s.items[1], "rule name");

  std::size_t i = 2;
  bool seenArrow = false;
  for (; i < s.items.size(); ++i) {
    const Sexp& item = s.items[i];
    if (item.isAtom) {
      if (item.atom == "=>") {
        seenArrow = true;
        ++i;
        break;
      }
      throw RuleParseError("unexpected atom in rule body: " + item.atom);
    }
    if (!item.items.empty() && item.items[0].isAtom) {
      const std::string& head = item.items[0].atom;
      if (head == "declare") {
        if (item.items.size() < 2) {
          throw RuleParseError("malformed declare in rule " + rule.name);
        }
        for (std::size_t d = 1; d < item.items.size(); ++d) {
          const Sexp& decl = item.items[d];
          if (!decl.isAtom && decl.items.size() == 2 &&
              decl.items[0].isAtom && decl.items[0].atom == "salience") {
            rule.salience = std::stoi(atomOf(decl.items[1], "salience"));
            continue;
          }
          if (!decl.isAtom && decl.items.size() == 1 &&
              decl.items[0].isAtom &&
              decl.items[0].atom == "cross-partition") {
            rule.crossPartition = true;
            continue;
          }
          throw RuleParseError("malformed declare in rule " + rule.name);
        }
        continue;
      }
      if (head == "not") {
        if (item.items.size() != 2) {
          throw RuleParseError("not expects one pattern");
        }
        rule.lhs.push_back(parsePattern(item.items[1], /*negated=*/true));
        continue;
      }
      if (head == "test") {
        if (item.items.size() != 2) {
          throw RuleParseError("test expects one expression");
        }
        rule.tests.push_back(parseTest(item.items[1]));
        continue;
      }
    }
    rule.lhs.push_back(parsePattern(item, /*negated=*/false));
  }
  if (!seenArrow) {
    throw RuleParseError("rule " + rule.name + " is missing '=>'");
  }
  for (; i < s.items.size(); ++i) {
    rule.rhs.push_back(parseAction(s.items[i]));
  }
  return rule;
}

}  // namespace

std::vector<Rule> parseRules(const std::string& text) {
  std::vector<Rule> out;
  for (const Sexp& s : readAll(text)) {
    out.push_back(parseDefrule(s));
  }
  return out;
}

std::vector<std::pair<std::string, SlotMap>> parseFactList(
    const std::string& text) {
  std::vector<std::pair<std::string, SlotMap>> out;
  for (const Sexp& s : readAll(text)) {
    if (s.isAtom || s.items.empty()) {
      throw RuleParseError("expected a fact form");
    }
    std::pair<std::string, SlotMap> fact;
    fact.first = atomOf(s.items[0], "template name");
    for (const auto& [slot, operand] : parseSlotOperands(s, 1)) {
      if (operand.isVariable) {
        throw RuleParseError("facts cannot contain variables");
      }
      fact.second.emplace(slot, operand.literal);
    }
    out.push_back(std::move(fact));
  }
  return out;
}

std::vector<std::string> loadRules(InferenceEngine& engine,
                                   const std::string& text) {
  std::vector<std::string> names;
  for (Rule& rule : parseRules(text)) {
    names.push_back(rule.name);
    engine.addRule(std::move(rule));
  }
  return names;
}

}  // namespace softqos::rules
