#include "rules/value.hpp"

#include <cmath>
#include <cstdlib>
#include <functional>
#include <stdexcept>

namespace softqos::rules {

Value Value::integer(std::int64_t v) {
  Value out;
  out.type_ = Type::kInt;
  out.data_ = v;
  return out;
}

Value Value::real(double v) {
  Value out;
  out.type_ = Type::kFloat;
  out.data_ = v;
  return out;
}

Value Value::str(std::string v) {
  Value out;
  out.type_ = Type::kString;
  out.data_ = std::move(v);
  return out;
}

Value Value::symbol(std::string v) {
  Value out;
  out.type_ = Type::kSymbol;
  out.data_ = std::move(v);
  return out;
}

Value Value::boolean(bool v) {
  Value out;
  out.type_ = Type::kBool;
  out.data_ = v;
  return out;
}

Value Value::parseLiteral(const std::string& token) {
  if (token.size() >= 2 && token.front() == '"' && token.back() == '"') {
    return str(token.substr(1, token.size() - 2));
  }
  if (token == "TRUE") return boolean(true);
  if (token == "FALSE") return boolean(false);
  if (!token.empty()) {
    char* end = nullptr;
    const long long asInt = std::strtoll(token.c_str(), &end, 10);
    if (end != nullptr && *end == '\0') return integer(asInt);
    const double asReal = std::strtod(token.c_str(), &end);
    if (end != nullptr && *end == '\0') return real(asReal);
  }
  return symbol(token);
}

std::int64_t Value::asInt() const {
  if (type_ == Type::kInt) return std::get<std::int64_t>(data_);
  if (type_ == Type::kFloat) {
    return static_cast<std::int64_t>(std::llround(std::get<double>(data_)));
  }
  throw std::logic_error("Value::asInt on non-numeric value");
}

double Value::asFloat() const {
  if (type_ == Type::kFloat) return std::get<double>(data_);
  if (type_ == Type::kInt) {
    return static_cast<double>(std::get<std::int64_t>(data_));
  }
  throw std::logic_error("Value::asFloat on non-numeric value");
}

const std::string& Value::asString() const {
  if (type_ == Type::kString || type_ == Type::kSymbol) {
    return std::get<std::string>(data_);
  }
  throw std::logic_error("Value::asString on non-text value");
}

bool Value::asBool() const {
  if (type_ == Type::kBool) return std::get<bool>(data_);
  throw std::logic_error("Value::asBool on non-boolean value");
}

double Value::numeric() const { return asFloat(); }

bool Value::operator==(const Value& other) const {
  if (isNumeric() && other.isNumeric()) return numeric() == other.numeric();
  if (type_ != other.type_) return false;
  return data_ == other.data_;
}

std::optional<int> Value::compare(const Value& a, const Value& b) {
  if (a.isNumeric() && b.isNumeric()) {
    const double x = a.numeric();
    const double y = b.numeric();
    if (x < y) return -1;
    if (x > y) return 1;
    return 0;
  }
  const bool aText = a.type_ == Type::kString || a.type_ == Type::kSymbol;
  const bool bText = b.type_ == Type::kString || b.type_ == Type::kSymbol;
  if (aText && bText) {
    const int c = a.asString().compare(b.asString());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  if (a.type_ == Type::kBool && b.type_ == Type::kBool) {
    const int x = a.asBool() ? 1 : 0;
    const int y = b.asBool() ? 1 : 0;
    return x - y;
  }
  return std::nullopt;
}

std::size_t Value::hash() const {
  // Numerics hash their double view so Value::integer(5) and Value::real(5.0),
  // which compare equal, land in the same bucket.
  if (isNumeric()) return std::hash<double>{}(numeric());
  switch (type_) {
    case Type::kString:
      return std::hash<std::string>{}(std::get<std::string>(data_)) ^ 0x9e3779b9u;
    case Type::kSymbol:
      return std::hash<std::string>{}(std::get<std::string>(data_));
    case Type::kBool:
      return std::get<bool>(data_) ? 0x85ebca6bu : 0xc2b2ae35u;
    default:
      return 0;
  }
}

std::string Value::toString() const {
  switch (type_) {
    case Type::kInt: return std::to_string(std::get<std::int64_t>(data_));
    case Type::kFloat: {
      std::string s = std::to_string(std::get<double>(data_));
      return s;
    }
    case Type::kString: return "\"" + std::get<std::string>(data_) + "\"";
    case Type::kSymbol: return std::get<std::string>(data_);
    case Type::kBool: return std::get<bool>(data_) ? "TRUE" : "FALSE";
  }
  return "?";
}

}  // namespace softqos::rules
