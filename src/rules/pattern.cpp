#include "rules/pattern.hpp"

#include <stdexcept>
#include <utility>

namespace softqos::rules {

Operand Operand::var(std::string name) {
  Operand o;
  o.isVariable = true;
  o.variable = std::move(name);
  return o;
}

Operand Operand::lit(Value v) {
  Operand o;
  o.literal = std::move(v);
  return o;
}

Operand Operand::parse(const std::string& token) {
  if (token.size() >= 2 && token.front() == '?') return var(token);
  return lit(Value::parseLiteral(token));
}

const Value* Operand::resolve(const Bindings& bindings) const {
  if (!isVariable) return &literal;
  const auto it = bindings.find(variable);
  return it == bindings.end() ? nullptr : &it->second;
}

bool evalCmp(CmpOp op, const Value& a, const Value& b) {
  if (op == CmpOp::kEq) return a == b;
  if (op == CmpOp::kNe) return a != b;
  const auto cmp = Value::compare(a, b);
  if (!cmp.has_value()) return false;
  switch (op) {
    case CmpOp::kLt: return *cmp < 0;
    case CmpOp::kLe: return *cmp <= 0;
    case CmpOp::kGt: return *cmp > 0;
    case CmpOp::kGe: return *cmp >= 0;
    case CmpOp::kEq:
    case CmpOp::kNe: break;  // handled above
  }
  return false;
}

CmpOp parseCmpOp(const std::string& token) {
  if (token == "=" || token == "==" || token == "eq") return CmpOp::kEq;
  if (token == "!=" || token == "<>" || token == "neq") return CmpOp::kNe;
  if (token == "<") return CmpOp::kLt;
  if (token == "<=") return CmpOp::kLe;
  if (token == ">") return CmpOp::kGt;
  if (token == ">=") return CmpOp::kGe;
  throw std::invalid_argument("unknown comparison operator: " + token);
}

std::string cmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq: return "=";
    case CmpOp::kNe: return "!=";
    case CmpOp::kLt: return "<";
    case CmpOp::kLe: return "<=";
    case CmpOp::kGt: return ">";
    case CmpOp::kGe: return ">=";
  }
  return "?";
}

bool ConditionTest::eval(const Bindings& bindings) const {
  const Value* a = lhs.resolve(bindings);
  const Value* b = rhs.resolve(bindings);
  if (a == nullptr || b == nullptr) return false;
  return evalCmp(op, *a, *b);
}

bool matchPattern(const Pattern& pattern, const Fact& fact, Bindings& bindings) {
  if (fact.templateName != pattern.templateName) return false;
  Bindings scratch = bindings;
  for (const SlotTest& test : pattern.tests) {
    const Value* actual = fact.slot(test.slot);
    if (actual == nullptr) return false;
    switch (test.kind) {
      case SlotTest::Kind::kLiteral:
        if (!(*actual == test.literal)) return false;
        break;
      case SlotTest::Kind::kVariable: {
        const auto it = scratch.find(test.variable);
        if (it == scratch.end()) {
          scratch.emplace(test.variable, *actual);
        } else if (!(it->second == *actual)) {
          return false;
        }
        break;
      }
    }
  }
  bindings = std::move(scratch);
  return true;
}

}  // namespace softqos::rules
