// Template facts and the fact repository (the engine's working memory).
//
// Working memory is fully indexed: facts are reachable by id, by template
// name (ordered by id, i.e. by recency), by (template, slot, value) alpha
// key, and by content hash (duplicate suppression). Mutations publish
// per-fact deltas so the inference engine can maintain its agenda
// incrementally instead of re-matching the whole rule base.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "rules/value.hpp"

namespace softqos::rules {

using FactId = std::uint64_t;
inline constexpr FactId kNoFact = 0;

/// Named slots of a fact, e.g. {pid: 12, attr: frame_rate}.
using SlotMap = std::map<std::string, Value>;

struct Fact {
  FactId id = kNoFact;  // also the recency stamp (monotonically increasing)
  std::string templateName;
  SlotMap slots;

  [[nodiscard]] const Value* slot(const std::string& name) const {
    const auto it = slots.find(name);
    return it == slots.end() ? nullptr : &it->second;
  }

  [[nodiscard]] std::string toString() const;
};

/// One working-memory change. `fact` is valid only for the duration of the
/// listener callback (for retracts it refers to the already-removed fact).
struct FactDelta {
  enum class Kind { kAssert, kRetract };
  Kind kind = Kind::kAssert;
  const Fact* fact = nullptr;
};

/// Working memory: assert/retract/modify with duplicate suppression, indexed
/// lookup, and change listeners (the engine subscribes to the delta stream to
/// maintain its agenda incrementally).
class FactRepository {
 public:
  using Listener = std::function<void()>;
  using DeltaListener = std::function<void(const FactDelta&)>;

  FactRepository() = default;
  // The indexes hold pointers into live_; copying would alias another
  // repository's storage.
  FactRepository(const FactRepository&) = delete;
  FactRepository& operator=(const FactRepository&) = delete;

  /// Assert a fact. Duplicate of a live fact (same template + slots) is
  /// suppressed, returning the existing id (CLIPS semantics).
  FactId assertFact(const std::string& templateName, SlotMap slots);

  /// Retract by id. Returns false when the id is unknown or already gone.
  bool retract(FactId id);

  /// Retract + re-assert with changed slots; returns the new fact id, or
  /// kNoFact if `id` is unknown. A modify that leaves every slot unchanged
  /// is a no-op: the fact keeps its id and no delta is published (so rules
  /// that already fired on it do not re-activate).
  FactId modify(FactId id, const SlotMap& changes);

  /// Retract every fact of the given template; returns how many went.
  std::size_t retractTemplate(const std::string& templateName);

  [[nodiscard]] const Fact* find(FactId id) const;
  [[nodiscard]] std::vector<const Fact*> byTemplate(
      const std::string& templateName) const;
  [[nodiscard]] std::vector<const Fact*> all() const;
  [[nodiscard]] std::size_t size() const { return live_.size(); }

  /// Visit every live fact of a template in recency (id) order, without
  /// building a temporary vector. The visitor returns false to stop early.
  void forEach(const std::string& templateName,
               const std::function<bool(const Fact&)>& visit) const;

  /// First live fact matching template + all given slot values (queries from
  /// manager code); nullptr if none. Served from the (template, slot, value)
  /// alpha index: only facts matching the first given slot are examined.
  [[nodiscard]] const Fact* findWhere(const std::string& templateName,
                                      const SlotMap& slots) const;

  /// Coarse change ping (legacy interface): invoked once per mutating call
  /// that changed working memory.
  void setChangeListener(Listener listener) { listener_ = std::move(listener); }

  /// Per-fact delta stream; fires once per asserted/retracted fact, after
  /// all indexes reflect the change (a modify publishes retract + assert).
  void setDeltaListener(DeltaListener listener) {
    deltaListener_ = std::move(listener);
  }

  /// Partition working memory by a slot name: facts carrying the slot land
  /// in the partition keyed by its value; facts without it are global.
  /// forEachInPartition then visits one partition plus the globals — on a
  /// host managing thousands of applications, rule joins keyed on the slot
  /// stop scanning every other application's facts. Existing facts are
  /// re-indexed; an empty slot name turns partitioning off again.
  void setPartitionSlot(std::string slot);
  [[nodiscard]] const std::string& partitionSlot() const {
    return partitionSlot_;
  }
  [[nodiscard]] bool partitioned() const { return !partitionSlot_.empty(); }

  /// The partition key of a fact (nullptr: global / partitioning off).
  [[nodiscard]] const Value* partitionKey(const Fact& fact) const;

  /// Visit every live fact of a template within one partition plus the
  /// global set, in recency (id) order — the same order forEach would visit
  /// that subset in. Requires setPartitionSlot.
  void forEachInPartition(const std::string& templateName, const Value& key,
                          const std::function<bool(const Fact&)>& visit) const;

  void clear();

 private:
  FactId insert(const std::string& templateName, SlotMap slots);
  /// Remove `id` from all indexes and publish the retract delta; the legacy
  /// listener is NOT notified (callers decide how to coalesce).
  bool remove(FactId id);
  void notifyChange();
  void publish(FactDelta::Kind kind, const Fact& fact);

  static std::size_t contentHash(const std::string& templateName,
                                 const SlotMap& slots);
  static std::size_t alphaHash(const std::string& templateName,
                               const std::string& slot, const Value& value);
  void partitionIndexInsert(const Fact& fact);
  void partitionIndexRemove(const Fact& fact);

  std::unordered_map<FactId, Fact> live_;
  // Template index: id-ordered so iteration preserves assertion order.
  std::unordered_map<std::string, std::map<FactId, const Fact*>> byTemplate_;
  // Duplicate-suppression index: content hash -> candidate ids.
  std::unordered_map<std::size_t, std::vector<FactId>> byContent_;
  // Alpha index: (template, slot, value) hash -> id-ordered facts.
  std::unordered_map<std::size_t, std::map<FactId, const Fact*>> alpha_;
  // Partition index (setPartitionSlot): (template, key) hash -> id-ordered
  // keyed facts; facts lacking the slot sit in globalByTemplate_. Both empty
  // while partitioning is off.
  std::unordered_map<std::size_t, std::map<FactId, const Fact*>> partition_;
  std::unordered_map<std::string, std::map<FactId, const Fact*>>
      globalByTemplate_;
  std::string partitionSlot_;
  FactId nextId_ = 1;
  Listener listener_;
  DeltaListener deltaListener_;
};

}  // namespace softqos::rules
