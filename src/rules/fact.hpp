// Template facts and the fact repository (the engine's working memory).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "rules/value.hpp"

namespace softqos::rules {

using FactId = std::uint64_t;
inline constexpr FactId kNoFact = 0;

/// Named slots of a fact, e.g. {pid: 12, attr: frame_rate}.
using SlotMap = std::map<std::string, Value>;

struct Fact {
  FactId id = kNoFact;  // also the recency stamp (monotonically increasing)
  std::string templateName;
  SlotMap slots;

  [[nodiscard]] const Value* slot(const std::string& name) const {
    const auto it = slots.find(name);
    return it == slots.end() ? nullptr : &it->second;
  }

  [[nodiscard]] std::string toString() const;
};

/// Working memory: assert/retract/modify with duplicate suppression and
/// change listeners (the engine subscribes to refresh its agenda).
class FactRepository {
 public:
  using Listener = std::function<void()>;

  /// Assert a fact. Duplicate of a live fact (same template + slots) is
  /// suppressed, returning the existing id (CLIPS semantics).
  FactId assertFact(const std::string& templateName, SlotMap slots);

  /// Retract by id. Returns false when the id is unknown or already gone.
  bool retract(FactId id);

  /// Retract + re-assert with changed slots; returns the new fact id, or
  /// kNoFact if `id` is unknown.
  FactId modify(FactId id, const SlotMap& changes);

  /// Retract every fact of the given template; returns how many went.
  std::size_t retractTemplate(const std::string& templateName);

  [[nodiscard]] const Fact* find(FactId id) const;
  [[nodiscard]] std::vector<const Fact*> byTemplate(
      const std::string& templateName) const;
  [[nodiscard]] std::vector<const Fact*> all() const;
  [[nodiscard]] std::size_t size() const { return live_.size(); }

  /// First live fact matching template + all given slot values (queries from
  /// manager code); nullptr if none.
  [[nodiscard]] const Fact* findWhere(const std::string& templateName,
                                      const SlotMap& slots) const;

  void setChangeListener(Listener listener) { listener_ = std::move(listener); }

  void clear();

 private:
  void notifyChange();

  std::map<FactId, Fact> live_;
  FactId nextId_ = 1;
  Listener listener_;
};

}  // namespace softqos::rules
