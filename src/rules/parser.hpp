// Textual rule-set parser (CLIPS-flavoured s-expressions), enabling the
// paper's dynamic rule distribution: managers receive rule sets as text at
// run time and load them without recompilation.
//
// Grammar:
//   ruleset   := { defrule }*
//   defrule   := (defrule NAME [declare] { condition }* => { action }* )
//   declare   := (declare (salience INT))
//   condition := (not (TEMPLATE { (SLOT operand) }*))
//             |  (test (OP operand operand))
//             |  (TEMPLATE { (SLOT operand) }*)
//   action    := (assert (TEMPLATE { (SLOT operand) }*))
//             |  (retract INT)                ; 1-based LHS pattern index
//             |  (modify INT { (SLOT operand) }*)
//             |  (call FUNCTION { operand }*)
//   operand   := ?var | literal
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "rules/engine.hpp"

namespace softqos::rules {

class RuleParseError : public std::runtime_error {
 public:
  explicit RuleParseError(const std::string& message)
      : std::runtime_error(message) {}
};

/// Parse a rule-set text into rules. Throws RuleParseError on malformed input.
std::vector<Rule> parseRules(const std::string& text);

/// Parse "(tmpl (slot v)...) (tmpl2 ...)" fact list (initial facts, tests).
std::vector<std::pair<std::string, SlotMap>> parseFactList(
    const std::string& text);

/// Load every rule in `text` into `engine` (replacing same-named rules).
/// Returns the names loaded.
std::vector<std::string> loadRules(InferenceEngine& engine,
                                   const std::string& text);

}  // namespace softqos::rules
