// Object-class schema: MUST/MAY attribute checking for the information model.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "ldapdir/entry.hpp"

namespace softqos::ldapdir {

struct ObjectClassDef {
  std::string name;
  std::string parent;               // optional superclass
  std::vector<std::string> must;    // required attributes
  std::vector<std::string> may;     // allowed attributes
};

class Schema {
 public:
  void define(ObjectClassDef def);
  [[nodiscard]] bool knows(const std::string& name) const;
  [[nodiscard]] const ObjectClassDef* find(const std::string& name) const;

  /// All problems with `entry`: unknown object classes, missing MUST
  /// attributes, attributes outside MUST/MAY. Empty vector = valid.
  /// An entry without any objectClass is reported as a problem.
  [[nodiscard]] std::vector<std::string> validate(const Entry& entry) const;

  [[nodiscard]] std::size_t size() const { return classes_.size(); }

 private:
  void collect(const std::string& name, std::vector<std::string>& must,
               std::vector<std::string>& may,
               std::vector<std::string>& problems) const;

  std::map<std::string, ObjectClassDef> classes_;  // keyed lower-case
};

/// The paper's information model (Section 6.1) as an LDAP schema:
/// qosApplication, qosExecutable, qosSensor, qosPolicy, qosCondition,
/// qosAction, qosUserRole, qosContract, plus structural containers.
Schema informationModelSchema();

}  // namespace softqos::ldapdir
