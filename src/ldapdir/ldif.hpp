// LDIF: the interchange format the admin tool emits ("This gets translated
// into an LDIF file which can be easily uploaded into LDAP", Section 7).
//
// Supported records: plain add records, and changetype add / delete / modify
// (with add:/replace:/delete: blocks separated by "-").
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "ldapdir/directory.hpp"
#include "ldapdir/entry.hpp"

namespace softqos::ldapdir {

class LdifParseError : public std::runtime_error {
 public:
  explicit LdifParseError(const std::string& message)
      : std::runtime_error(message) {}
};

struct LdifRecord {
  enum class Change { kAdd, kDelete, kModify };
  Change change = Change::kAdd;
  Entry entry;                      // kAdd: full entry; others: dn only
  std::vector<Modification> mods;   // kModify
};

/// Parse LDIF text into records. Throws LdifParseError on malformed input.
std::vector<LdifRecord> parseLdif(const std::string& text);

/// Serialize one entry as an LDIF add record.
std::string toLdif(const Entry& entry);

/// Serialize a whole directory subtree (suffix first, parents before
/// children) as LDIF add records.
std::string toLdif(const Directory& directory);

struct LdifApplyStats {
  std::size_t added = 0;
  std::size_t deleted = 0;
  std::size_t modified = 0;
  std::vector<std::string> failures;  // "dn: resultName"
};

/// Apply LDIF records to a directory; failures are collected, not thrown.
LdifApplyStats applyLdif(Directory& directory, const std::string& text);

}  // namespace softqos::ldapdir
