#include "ldapdir/dn.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

namespace softqos::ldapdir {

std::string toLowerAscii(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string escapeValue(const std::string& v) {
  std::string out;
  for (const char c : v) {
    if (c == ',' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

bool Rdn::operator==(const Rdn& other) const {
  return attr == other.attr &&
         toLowerAscii(value) == toLowerAscii(other.value);
}

Dn Dn::parse(const std::string& text) {
  Dn dn;
  if (trim(text).empty()) return dn;

  // Split on unescaped commas.
  std::vector<std::string> parts;
  std::string current;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '\\' && i + 1 < text.size()) {
      current.push_back(text[++i]);
      continue;
    }
    if (c == ',') {
      parts.push_back(current);
      current.clear();
      continue;
    }
    current.push_back(c);
  }
  parts.push_back(current);

  for (const std::string& raw : parts) {
    const std::string component = trim(raw);
    const std::size_t eq = component.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("malformed DN component: '" + component + "'");
    }
    Rdn rdn;
    rdn.attr = toLowerAscii(trim(component.substr(0, eq)));
    rdn.value = trim(component.substr(eq + 1));
    if (rdn.value.empty()) {
      throw std::invalid_argument("empty RDN value in: '" + component + "'");
    }
    dn.rdns_.push_back(std::move(rdn));
  }
  return dn;
}

Dn Dn::fromRdns(std::vector<Rdn> rdns) {
  Dn dn;
  dn.rdns_ = std::move(rdns);
  for (Rdn& r : dn.rdns_) r.attr = toLowerAscii(r.attr);
  return dn;
}

Dn Dn::parent() const {
  Dn p;
  if (rdns_.size() <= 1) return p;
  p.rdns_.assign(rdns_.begin() + 1, rdns_.end());
  return p;
}

Dn Dn::child(const std::string& attr, const std::string& value) const {
  Dn c;
  c.rdns_.reserve(rdns_.size() + 1);
  c.rdns_.push_back(Rdn{toLowerAscii(attr), value});
  c.rdns_.insert(c.rdns_.end(), rdns_.begin(), rdns_.end());
  return c;
}

bool Dn::isDescendantOf(const Dn& ancestor) const {
  if (ancestor.rdns_.size() >= rdns_.size()) return false;
  const std::size_t offset = rdns_.size() - ancestor.rdns_.size();
  for (std::size_t i = 0; i < ancestor.rdns_.size(); ++i) {
    if (!(rdns_[offset + i] == ancestor.rdns_[i])) return false;
  }
  return true;
}

std::string Dn::toString() const {
  std::string out;
  for (std::size_t i = 0; i < rdns_.size(); ++i) {
    if (i != 0) out += ",";
    out += rdns_[i].attr + "=" + escapeValue(rdns_[i].value);
  }
  return out;
}

std::string Dn::normalized() const { return toLowerAscii(toString()); }

bool Dn::operator==(const Dn& other) const {
  if (rdns_.size() != other.rdns_.size()) return false;
  for (std::size_t i = 0; i < rdns_.size(); ++i) {
    if (!(rdns_[i] == other.rdns_[i])) return false;
  }
  return true;
}

bool Dn::operator<(const Dn& other) const {
  return normalized() < other.normalized();
}

}  // namespace softqos::ldapdir
