#include "ldapdir/entry.hpp"

#include <algorithm>

namespace softqos::ldapdir {

void Entry::addValue(const std::string& attr, const std::string& value) {
  auto& vals = attrs_[toLowerAscii(attr)];
  if (std::find(vals.begin(), vals.end(), value) == vals.end()) {
    vals.push_back(value);
  }
}

void Entry::setValues(const std::string& attr,
                      std::vector<std::string> values) {
  if (values.empty()) {
    attrs_.erase(toLowerAscii(attr));
    return;
  }
  attrs_[toLowerAscii(attr)] = std::move(values);
}

bool Entry::removeValue(const std::string& attr, const std::string& value) {
  const auto key = toLowerAscii(attr);
  const auto it = attrs_.find(key);
  if (it == attrs_.end()) return false;
  auto& vals = it->second;
  const auto pos = std::find(vals.begin(), vals.end(), value);
  if (pos == vals.end()) return false;
  vals.erase(pos);
  if (vals.empty()) attrs_.erase(it);
  return true;
}

bool Entry::removeAttribute(const std::string& attr) {
  return attrs_.erase(toLowerAscii(attr)) != 0;
}

bool Entry::hasAttribute(const std::string& attr) const {
  return attrs_.contains(toLowerAscii(attr));
}

bool Entry::hasValue(const std::string& attr, const std::string& value) const {
  const auto it = attrs_.find(toLowerAscii(attr));
  if (it == attrs_.end()) return false;
  return std::find(it->second.begin(), it->second.end(), value) !=
         it->second.end();
}

const std::vector<std::string>* Entry::values(const std::string& attr) const {
  const auto it = attrs_.find(toLowerAscii(attr));
  return it == attrs_.end() ? nullptr : &it->second;
}

std::optional<std::string> Entry::firstValue(const std::string& attr) const {
  const std::vector<std::string>* vals = values(attr);
  if (vals == nullptr || vals->empty()) return std::nullopt;
  return vals->front();
}

std::vector<std::string> Entry::objectClasses() const {
  const std::vector<std::string>* vals = values("objectclass");
  return vals == nullptr ? std::vector<std::string>{} : *vals;
}

bool Entry::hasObjectClass(const std::string& oc) const {
  const std::vector<std::string>* vals = values("objectclass");
  if (vals == nullptr) return false;
  const std::string want = toLowerAscii(oc);
  return std::any_of(vals->begin(), vals->end(), [&](const std::string& v) {
    return toLowerAscii(v) == want;
  });
}

}  // namespace softqos::ldapdir
