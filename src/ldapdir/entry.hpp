// Directory entries: a DN plus multi-valued, case-insensitively named
// attributes (objectClass is an ordinary attribute, as in LDAP).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ldapdir/dn.hpp"

namespace softqos::ldapdir {

class Entry {
 public:
  Entry() = default;
  explicit Entry(Dn dn) : dn_(std::move(dn)) {}

  [[nodiscard]] const Dn& dn() const { return dn_; }
  void setDn(Dn dn) { dn_ = std::move(dn); }

  /// Append a value (duplicates within an attribute are suppressed).
  void addValue(const std::string& attr, const std::string& value);
  void setValues(const std::string& attr, std::vector<std::string> values);
  /// Remove one value; removes the attribute when its last value goes.
  bool removeValue(const std::string& attr, const std::string& value);
  bool removeAttribute(const std::string& attr);

  [[nodiscard]] bool hasAttribute(const std::string& attr) const;
  [[nodiscard]] bool hasValue(const std::string& attr,
                              const std::string& value) const;
  [[nodiscard]] const std::vector<std::string>* values(
      const std::string& attr) const;
  [[nodiscard]] std::optional<std::string> firstValue(
      const std::string& attr) const;

  [[nodiscard]] std::vector<std::string> objectClasses() const;
  [[nodiscard]] bool hasObjectClass(const std::string& oc) const;

  /// Attribute map keyed by normalized name (iteration order is stable).
  [[nodiscard]] const std::map<std::string, std::vector<std::string>>&
  attributes() const {
    return attrs_;
  }

 private:
  Dn dn_;
  std::map<std::string, std::vector<std::string>> attrs_;
};

}  // namespace softqos::ldapdir
