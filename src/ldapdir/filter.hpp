// RFC-2254-style search filters:
//   (&(objectClass=qosPolicy)(appId=video))
//   (|(role=gold)(role=silver))  (!(enabled=FALSE))
//   (frameRate>=23)  (cn=fps-*)  (jitter=*)
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ldapdir/entry.hpp"

namespace softqos::ldapdir {

class FilterParseError : public std::runtime_error {
 public:
  explicit FilterParseError(const std::string& message)
      : std::runtime_error(message) {}
};

class Filter {
 public:
  /// Parse a filter string. Throws FilterParseError on malformed input.
  static Filter parse(const std::string& text);

  /// A filter matching every entry: "(objectClass=*)" equivalent.
  static Filter matchAll();

  [[nodiscard]] bool matches(const Entry& entry) const;
  [[nodiscard]] std::string toString() const;

  /// Implementation node (public so the out-of-line parser can build trees;
  /// not part of the supported API surface).
  struct Node;

 private:
  std::shared_ptr<const Node> root_;
};

}  // namespace softqos::ldapdir
