#include "ldapdir/ldif.hpp"

#include <algorithm>
#include <sstream>

namespace softqos::ldapdir {

namespace {

std::string trimRight(std::string s) {
  while (!s.empty() && (s.back() == '\r' || s.back() == ' ' || s.back() == '\t')) {
    s.pop_back();
  }
  return s;
}

/// Split LDIF into records (blank-line separated), folding continuation
/// lines (leading space) and dropping '#' comments.
std::vector<std::vector<std::string>> recordLines(const std::string& text) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> current;
  std::istringstream in(text);
  std::string raw;
  while (std::getline(in, raw)) {
    std::string line = trimRight(raw);
    if (!line.empty() && line[0] == '#') continue;
    if (line.empty()) {
      if (!current.empty()) {
        records.push_back(std::move(current));
        current.clear();
      }
      continue;
    }
    if (line[0] == ' ' && !current.empty()) {
      current.back() += line.substr(1);  // folded continuation
      continue;
    }
    current.push_back(std::move(line));
  }
  if (!current.empty()) records.push_back(std::move(current));
  return records;
}

std::pair<std::string, std::string> splitAttrLine(const std::string& line) {
  const std::size_t colon = line.find(':');
  if (colon == std::string::npos) {
    throw LdifParseError("malformed LDIF line: " + line);
  }
  std::string attr = line.substr(0, colon);
  std::size_t valueStart = colon + 1;
  while (valueStart < line.size() && line[valueStart] == ' ') ++valueStart;
  return {std::move(attr), line.substr(valueStart)};
}

LdifRecord parseRecord(const std::vector<std::string>& lines) {
  auto [dnAttr, dnValue] = splitAttrLine(lines.at(0));
  if (toLowerAscii(dnAttr) != "dn") {
    throw LdifParseError("record must start with dn:, got: " + lines.at(0));
  }
  LdifRecord record;
  record.entry.setDn(Dn::parse(dnValue));

  std::size_t i = 1;
  LdifRecord::Change change = LdifRecord::Change::kAdd;
  if (i < lines.size()) {
    auto [attr, value] = splitAttrLine(lines[i]);
    if (toLowerAscii(attr) == "changetype") {
      const std::string kind = toLowerAscii(value);
      if (kind == "add") {
        change = LdifRecord::Change::kAdd;
      } else if (kind == "delete") {
        change = LdifRecord::Change::kDelete;
      } else if (kind == "modify") {
        change = LdifRecord::Change::kModify;
      } else {
        throw LdifParseError("unsupported changetype: " + value);
      }
      ++i;
    }
  }
  record.change = change;

  if (change == LdifRecord::Change::kAdd) {
    for (; i < lines.size(); ++i) {
      auto [attr, value] = splitAttrLine(lines[i]);
      record.entry.addValue(attr, value);
    }
    return record;
  }
  if (change == LdifRecord::Change::kDelete) {
    if (i != lines.size()) {
      throw LdifParseError("unexpected content after changetype: delete");
    }
    return record;
  }

  // changetype: modify — blocks of "op: attr" then value lines, "-" separated.
  while (i < lines.size()) {
    auto [opName, attrName] = splitAttrLine(lines[i]);
    Modification mod;
    const std::string op = toLowerAscii(opName);
    if (op == "add") {
      mod.op = Modification::Op::kAdd;
    } else if (op == "replace") {
      mod.op = Modification::Op::kReplace;
    } else if (op == "delete") {
      mod.op = Modification::Op::kDelete;
    } else {
      throw LdifParseError("unsupported modify op: " + opName);
    }
    mod.attr = attrName;
    ++i;
    while (i < lines.size() && lines[i] != "-") {
      auto [attr, value] = splitAttrLine(lines[i]);
      if (toLowerAscii(attr) != toLowerAscii(attrName)) {
        throw LdifParseError("modify value for wrong attribute: " + lines[i]);
      }
      mod.values.push_back(value);
      ++i;
    }
    if (i < lines.size()) ++i;  // skip "-"
    record.mods.push_back(std::move(mod));
  }
  return record;
}

}  // namespace

std::vector<LdifRecord> parseLdif(const std::string& text) {
  std::vector<LdifRecord> out;
  for (const auto& lines : recordLines(text)) {
    out.push_back(parseRecord(lines));
  }
  return out;
}

std::string toLdif(const Entry& entry) {
  std::string out = "dn: " + entry.dn().toString() + "\n";
  // objectClass conventionally leads.
  if (const auto* ocs = entry.values("objectclass")) {
    for (const std::string& oc : *ocs) out += "objectClass: " + oc + "\n";
  }
  for (const auto& [attr, values] : entry.attributes()) {
    if (attr == "objectclass") continue;
    for (const std::string& v : values) out += attr + ": " + v + "\n";
  }
  return out;
}

std::string toLdif(const Directory& directory) {
  std::vector<const Entry*> entries =
      directory.search(directory.suffix(), SearchScope::kSubtree,
                       Filter::matchAll());
  std::sort(entries.begin(), entries.end(),
            [](const Entry* a, const Entry* b) {
              if (a->dn().depth() != b->dn().depth()) {
                return a->dn().depth() < b->dn().depth();
              }
              return a->dn() < b->dn();
            });
  std::string out;
  for (const Entry* e : entries) {
    out += toLdif(*e);
    out += "\n";
  }
  return out;
}

LdifApplyStats applyLdif(Directory& directory, const std::string& text) {
  LdifApplyStats stats;
  for (const LdifRecord& record : parseLdif(text)) {
    LdapResult result = LdapResult::kSuccess;
    switch (record.change) {
      case LdifRecord::Change::kAdd:
        result = directory.add(record.entry);
        if (result == LdapResult::kSuccess) ++stats.added;
        break;
      case LdifRecord::Change::kDelete:
        result = directory.remove(record.entry.dn());
        if (result == LdapResult::kSuccess) ++stats.deleted;
        break;
      case LdifRecord::Change::kModify:
        result = directory.modify(record.entry.dn(), record.mods);
        if (result == LdapResult::kSuccess) ++stats.modified;
        break;
    }
    if (result != LdapResult::kSuccess) {
      stats.failures.push_back(record.entry.dn().toString() + ": " +
                               ldapResultName(result));
    }
  }
  return stats;
}

}  // namespace softqos::ldapdir
