// Distinguished names: "cn=fps-policy,ou=policies,o=uwo".
//
// Attribute types are case-insensitive (normalized to lower case); values
// keep their case but compare case-insensitively, as LDAP DNs do.
#pragma once

#include <string>
#include <vector>

namespace softqos::ldapdir {

/// One relative distinguished name component (attr=value).
struct Rdn {
  std::string attr;   // normalized lower-case
  std::string value;  // original case preserved

  bool operator==(const Rdn& other) const;
};

class Dn {
 public:
  Dn() = default;

  /// Parse "cn=foo, ou=bar, o=baz" (whitespace around components tolerated;
  /// `\,` escapes a comma inside a value). Throws std::invalid_argument on
  /// malformed input. An empty string parses to the empty DN.
  static Dn parse(const std::string& text);

  /// Construct from components, leftmost = leaf.
  static Dn fromRdns(std::vector<Rdn> rdns);

  [[nodiscard]] bool empty() const { return rdns_.empty(); }
  [[nodiscard]] std::size_t depth() const { return rdns_.size(); }
  [[nodiscard]] const std::vector<Rdn>& rdns() const { return rdns_; }

  /// The leaf component. Precondition: !empty().
  [[nodiscard]] const Rdn& leaf() const { return rdns_.front(); }

  [[nodiscard]] Dn parent() const;
  [[nodiscard]] Dn child(const std::string& attr, const std::string& value) const;

  /// True when this DN is strictly below `ancestor`.
  [[nodiscard]] bool isDescendantOf(const Dn& ancestor) const;

  [[nodiscard]] std::string toString() const;

  /// Canonical lower-cased form (map key / comparisons).
  [[nodiscard]] std::string normalized() const;

  bool operator==(const Dn& other) const;
  bool operator!=(const Dn& other) const { return !(*this == other); }
  bool operator<(const Dn& other) const;

 private:
  std::vector<Rdn> rdns_;  // leftmost = leaf
};

/// Lower-case ASCII helper shared by the directory modules.
std::string toLowerAscii(std::string s);

}  // namespace softqos::ldapdir
