// The directory information tree: add/delete/modify/search with scopes and
// filters — the Repository Service's storage engine.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "ldapdir/entry.hpp"
#include "ldapdir/filter.hpp"
#include "ldapdir/schema.hpp"

namespace softqos::ldapdir {

enum class LdapResult {
  kSuccess,
  kNoSuchObject,
  kEntryAlreadyExists,
  kNoSuchParent,
  kSchemaViolation,
  kNotAllowedOnNonLeaf,
};

std::string ldapResultName(LdapResult r);

enum class SearchScope { kBase, kOneLevel, kSubtree };

struct Modification {
  enum class Op { kAdd, kReplace, kDelete };
  Op op = Op::kReplace;
  std::string attr;
  std::vector<std::string> values;  // empty for delete-whole-attribute
};

class Directory {
 public:
  /// `suffix` is the naming context root entries may be created under
  /// without a parent (e.g. "o=uwo"). When `enforceSchema` is set, adds and
  /// modifies must validate against `schema`.
  explicit Directory(Dn suffix = Dn::parse("o=uwo"), Schema schema = Schema{},
                     bool enforceSchema = false);

  LdapResult add(Entry entry);
  LdapResult remove(const Dn& dn);  // leaf entries only
  LdapResult modify(const Dn& dn, const std::vector<Modification>& mods);

  [[nodiscard]] const Entry* lookup(const Dn& dn) const;

  [[nodiscard]] std::vector<const Entry*> search(const Dn& base,
                                                 SearchScope scope,
                                                 const Filter& filter) const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const Dn& suffix() const { return suffix_; }
  [[nodiscard]] const Schema& schema() const { return schema_; }

  /// Last schema problems from a kSchemaViolation result (diagnostics).
  [[nodiscard]] const std::vector<std::string>& lastProblems() const {
    return lastProblems_;
  }

  /// Change notification (the Policy Agent subscribes to re-push policies).
  using ChangeListener = std::function<void(const Dn& dn)>;
  void addChangeListener(ChangeListener listener);

 private:
  [[nodiscard]] bool parentExists(const Dn& dn) const;
  [[nodiscard]] bool hasChildren(const Dn& dn) const;
  void notify(const Dn& dn);

  Dn suffix_;
  Schema schema_;
  bool enforceSchema_;
  std::map<std::string, Entry> entries_;  // keyed by normalized DN
  std::vector<ChangeListener> listeners_;
  std::vector<std::string> lastProblems_;
};

}  // namespace softqos::ldapdir
