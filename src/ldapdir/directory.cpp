#include "ldapdir/directory.hpp"

#include <utility>

namespace softqos::ldapdir {

std::string ldapResultName(LdapResult r) {
  switch (r) {
    case LdapResult::kSuccess: return "success";
    case LdapResult::kNoSuchObject: return "noSuchObject";
    case LdapResult::kEntryAlreadyExists: return "entryAlreadyExists";
    case LdapResult::kNoSuchParent: return "noSuchParent";
    case LdapResult::kSchemaViolation: return "schemaViolation";
    case LdapResult::kNotAllowedOnNonLeaf: return "notAllowedOnNonLeaf";
  }
  return "?";
}

Directory::Directory(Dn suffix, Schema schema, bool enforceSchema)
    : suffix_(std::move(suffix)),
      schema_(std::move(schema)),
      enforceSchema_(enforceSchema) {}

bool Directory::parentExists(const Dn& dn) const {
  const Dn parent = dn.parent();
  if (parent.empty()) return true;  // top-level entry
  return entries_.contains(parent.normalized());
}

bool Directory::hasChildren(const Dn& dn) const {
  for (const auto& [key, entry] : entries_) {
    (void)key;
    if (entry.dn().isDescendantOf(dn)) return true;
  }
  return false;
}

LdapResult Directory::add(Entry entry) {
  const std::string key = entry.dn().normalized();
  if (entry.dn().empty()) return LdapResult::kNoSuchObject;
  if (entries_.contains(key)) return LdapResult::kEntryAlreadyExists;
  if (!(entry.dn() == suffix_) && !parentExists(entry.dn())) {
    return LdapResult::kNoSuchParent;
  }
  if (enforceSchema_) {
    lastProblems_ = schema_.validate(entry);
    if (!lastProblems_.empty()) return LdapResult::kSchemaViolation;
  }
  const Dn dn = entry.dn();
  entries_.emplace(key, std::move(entry));
  notify(dn);
  return LdapResult::kSuccess;
}

LdapResult Directory::remove(const Dn& dn) {
  const auto it = entries_.find(dn.normalized());
  if (it == entries_.end()) return LdapResult::kNoSuchObject;
  if (hasChildren(dn)) return LdapResult::kNotAllowedOnNonLeaf;
  entries_.erase(it);
  notify(dn);
  return LdapResult::kSuccess;
}

LdapResult Directory::modify(const Dn& dn,
                             const std::vector<Modification>& mods) {
  const auto it = entries_.find(dn.normalized());
  if (it == entries_.end()) return LdapResult::kNoSuchObject;
  Entry updated = it->second;
  for (const Modification& mod : mods) {
    switch (mod.op) {
      case Modification::Op::kAdd:
        for (const std::string& v : mod.values) updated.addValue(mod.attr, v);
        break;
      case Modification::Op::kReplace:
        updated.setValues(mod.attr, mod.values);
        break;
      case Modification::Op::kDelete:
        if (mod.values.empty()) {
          updated.removeAttribute(mod.attr);
        } else {
          for (const std::string& v : mod.values) {
            updated.removeValue(mod.attr, v);
          }
        }
        break;
    }
  }
  if (enforceSchema_) {
    lastProblems_ = schema_.validate(updated);
    if (!lastProblems_.empty()) return LdapResult::kSchemaViolation;
  }
  it->second = std::move(updated);
  notify(dn);
  return LdapResult::kSuccess;
}

const Entry* Directory::lookup(const Dn& dn) const {
  const auto it = entries_.find(dn.normalized());
  return it == entries_.end() ? nullptr : &it->second;
}

std::vector<const Entry*> Directory::search(const Dn& base, SearchScope scope,
                                            const Filter& filter) const {
  std::vector<const Entry*> out;
  for (const auto& [key, entry] : entries_) {
    (void)key;
    const Dn& dn = entry.dn();
    bool inScope = false;
    switch (scope) {
      case SearchScope::kBase:
        inScope = dn == base;
        break;
      case SearchScope::kOneLevel:
        inScope = dn.parent() == base;
        break;
      case SearchScope::kSubtree:
        inScope = dn == base || dn.isDescendantOf(base);
        break;
    }
    if (inScope && filter.matches(entry)) out.push_back(&entry);
  }
  return out;
}

void Directory::addChangeListener(ChangeListener listener) {
  listeners_.push_back(std::move(listener));
}

void Directory::notify(const Dn& dn) {
  for (const auto& listener : listeners_) listener(dn);
}

}  // namespace softqos::ldapdir
