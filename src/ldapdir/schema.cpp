#include "ldapdir/schema.hpp"

#include <algorithm>

namespace softqos::ldapdir {

void Schema::define(ObjectClassDef def) {
  std::string key = toLowerAscii(def.name);
  for (std::string& a : def.must) a = toLowerAscii(a);
  for (std::string& a : def.may) a = toLowerAscii(a);
  classes_[std::move(key)] = std::move(def);
}

bool Schema::knows(const std::string& name) const {
  return classes_.contains(toLowerAscii(name));
}

const ObjectClassDef* Schema::find(const std::string& name) const {
  const auto it = classes_.find(toLowerAscii(name));
  return it == classes_.end() ? nullptr : &it->second;
}

void Schema::collect(const std::string& name, std::vector<std::string>& must,
                     std::vector<std::string>& may,
                     std::vector<std::string>& problems) const {
  const ObjectClassDef* def = find(name);
  if (def == nullptr) {
    problems.push_back("unknown objectClass: " + name);
    return;
  }
  must.insert(must.end(), def->must.begin(), def->must.end());
  may.insert(may.end(), def->may.begin(), def->may.end());
  if (!def->parent.empty()) collect(def->parent, must, may, problems);
}

std::vector<std::string> Schema::validate(const Entry& entry) const {
  std::vector<std::string> problems;
  const std::vector<std::string> ocs = entry.objectClasses();
  if (ocs.empty()) {
    problems.push_back("entry has no objectClass");
    return problems;
  }
  std::vector<std::string> must;
  std::vector<std::string> may;
  for (const std::string& oc : ocs) collect(oc, must, may, problems);

  for (const std::string& m : must) {
    if (!entry.hasAttribute(m)) {
      problems.push_back("missing required attribute: " + m);
    }
  }
  const auto allowed = [&](const std::string& attr) {
    if (attr == "objectclass") return true;
    return std::find(must.begin(), must.end(), attr) != must.end() ||
           std::find(may.begin(), may.end(), attr) != may.end();
  };
  for (const auto& [attr, values] : entry.attributes()) {
    (void)values;
    if (!allowed(attr)) {
      problems.push_back("attribute not allowed by schema: " + attr);
    }
  }
  return problems;
}

Schema informationModelSchema() {
  Schema s;
  s.define({"top", "", {}, {"description"}});
  s.define({"container", "top", {"ou"}, {}});
  s.define({"organization", "top", {"o"}, {}});
  // An application is composed of at least one executable (Section 6.1).
  s.define({"qosApplication", "top", {"cn"}, {"executableRef"}});
  // An executable is instantiated on a host as a process; sensors attach to
  // executables (many-to-many).
  s.define({"qosExecutable", "top", {"cn"}, {"sensorRef", "path"}});
  // A sensor has an identifier and the attributes it can collect.
  s.define({"qosSensor", "top", {"cn", "monitorsAttribute"}, {"probeName"}});
  // Reusable policy conditions and actions (Section 6.1).
  s.define({"qosCondition",
            "top",
            {"cn", "conditionAttribute", "comparator", "threshold"},
            {"toleranceAbove", "toleranceBelow"}});
  s.define({"qosAction", "top",
            {"cn", "actionKind"},
            {"target", "argument", "method"}});
  // The policy ties an application/executable/role to conditions + actions.
  s.define({"qosPolicy",
            "top",
            {"cn", "applicationRef", "executableRef", "combinator"},
            {"userRole", "conditionRef", "actionRef", "enabled",
             "conditionExpr", "subjectPath", "targetPath"}});
  s.define({"qosUserRole", "top", {"cn"}, {"priorityWeight"}});
  // A QoS contract binds offered and/or requested QoS (DDS-style Deadline /
  // Liveliness / History / Durability / Ownership, compact string form) to
  // an executable and/or application+role for RxO admission control.
  s.define({"qosContract",
            "top",
            {"cn"},
            {"executableRef", "applicationRef", "userRole", "offeredQos",
             "requestedQos", "deadlineAttribute", "enabled"}});
  return s;
}

}  // namespace softqos::ldapdir
