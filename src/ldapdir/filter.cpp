#include "ldapdir/filter.hpp"

#include <cctype>
#include <cstdlib>
#include <optional>

namespace softqos::ldapdir {

namespace {

enum class CmpKind { kEquals, kGreaterEq, kLessEq, kPresent, kSubstring };

/// Numeric interpretation when both sides parse as numbers; otherwise
/// case-insensitive string comparison.
std::optional<double> asNumber(const std::string& s) {
  if (s.empty()) return std::nullopt;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == nullptr || *end != '\0') return std::nullopt;
  return v;
}

bool substringMatch(const std::string& value,
                    const std::vector<std::string>& parts, bool anchoredStart,
                    bool anchoredEnd) {
  // `parts` are the literal chunks between '*'s, lower-cased.
  const std::string hay = toLowerAscii(value);
  std::size_t pos = 0;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    const std::string& needle = parts[i];
    if (needle.empty()) continue;
    if (i == 0 && anchoredStart) {
      if (hay.compare(0, needle.size(), needle) != 0) return false;
      pos = needle.size();
      continue;
    }
    const std::size_t found = hay.find(needle, pos);
    if (found == std::string::npos) return false;
    pos = found + needle.size();
  }
  if (anchoredEnd && !parts.empty() && !parts.back().empty()) {
    const std::string& tail = parts.back();
    if (hay.size() < tail.size()) return false;
    if (hay.compare(hay.size() - tail.size(), tail.size(), tail) != 0) {
      return false;
    }
  }
  return true;
}

}  // namespace

struct Filter::Node {
  enum class Kind { kAnd, kOr, kNot, kCmp, kTrue } kind = Kind::kTrue;
  std::vector<std::shared_ptr<const Node>> children;  // and/or/not
  std::string attr;
  CmpKind cmp = CmpKind::kEquals;
  std::string value;                    // raw (original case)
  std::vector<std::string> subParts;    // substring chunks, lower-cased
  bool subAnchoredStart = false;
  bool subAnchoredEnd = false;

  [[nodiscard]] bool eval(const Entry& entry) const {
    switch (kind) {
      case Kind::kTrue:
        return true;
      case Kind::kAnd:
        for (const auto& c : children) {
          if (!c->eval(entry)) return false;
        }
        return true;
      case Kind::kOr:
        for (const auto& c : children) {
          if (c->eval(entry)) return true;
        }
        return false;
      case Kind::kNot:
        return !children.front()->eval(entry);
      case Kind::kCmp:
        break;
    }
    const std::vector<std::string>* vals = entry.values(attr);
    if (vals == nullptr) return false;
    if (cmp == CmpKind::kPresent) return true;
    for (const std::string& v : *vals) {
      switch (cmp) {
        case CmpKind::kEquals: {
          const auto a = asNumber(v);
          const auto b = asNumber(value);
          if (a && b) {
            if (*a == *b) return true;
          } else if (toLowerAscii(v) == toLowerAscii(value)) {
            return true;
          }
          break;
        }
        case CmpKind::kGreaterEq:
        case CmpKind::kLessEq: {
          const auto a = asNumber(v);
          const auto b = asNumber(value);
          bool ok = false;
          if (a && b) {
            ok = cmp == CmpKind::kGreaterEq ? *a >= *b : *a <= *b;
          } else {
            const int c = toLowerAscii(v).compare(toLowerAscii(value));
            ok = cmp == CmpKind::kGreaterEq ? c >= 0 : c <= 0;
          }
          if (ok) return true;
          break;
        }
        case CmpKind::kSubstring:
          if (substringMatch(v, subParts, subAnchoredStart, subAnchoredEnd)) {
            return true;
          }
          break;
        case CmpKind::kPresent:
          return true;
      }
    }
    return false;
  }

  [[nodiscard]] std::string text() const {
    switch (kind) {
      case Kind::kTrue:
        return "(objectClass=*)";
      case Kind::kAnd:
      case Kind::kOr: {
        std::string out = kind == Kind::kAnd ? "(&" : "(|";
        for (const auto& c : children) out += c->text();
        return out + ")";
      }
      case Kind::kNot:
        return "(!" + children.front()->text() + ")";
      case Kind::kCmp:
        break;
    }
    switch (cmp) {
      case CmpKind::kPresent: return "(" + attr + "=*)";
      case CmpKind::kGreaterEq: return "(" + attr + ">=" + value + ")";
      case CmpKind::kLessEq: return "(" + attr + "<=" + value + ")";
      default: return "(" + attr + "=" + value + ")";
    }
  }
};

namespace {

class FilterParser {
 public:
  explicit FilterParser(const std::string& text) : text_(text) {}

  std::shared_ptr<const Filter::Node> parse() {
    auto node = parseFilter();
    skipSpace();
    if (pos_ != text_.size()) {
      throw FilterParseError("trailing characters after filter");
    }
    return node;
  }

 private:
  void skipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) throw FilterParseError("unexpected end of filter");
    return text_[pos_];
  }

  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) {
      throw FilterParseError(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  std::shared_ptr<const Filter::Node> parseFilter() {
    skipSpace();
    expect('(');
    auto node = std::make_shared<Filter::Node>();
    const char c = peek();
    if (c == '&' || c == '|') {
      ++pos_;
      node->kind = c == '&' ? Filter::Node::Kind::kAnd
                            : Filter::Node::Kind::kOr;
      skipSpace();
      while (peek() == '(') {
        node->children.push_back(parseFilter());
        skipSpace();
      }
      if (node->children.empty()) {
        throw FilterParseError("empty and/or filter");
      }
      expect(')');
      return node;
    }
    if (c == '!') {
      ++pos_;
      node->kind = Filter::Node::Kind::kNot;
      node->children.push_back(parseFilter());
      skipSpace();
      expect(')');
      return node;
    }
    // Comparison: attr { = | >= | <= } value
    node->kind = Filter::Node::Kind::kCmp;
    std::string attr;
    while (pos_ < text_.size() && text_[pos_] != '=' && text_[pos_] != '>' &&
           text_[pos_] != '<' && text_[pos_] != ')') {
      attr.push_back(text_[pos_++]);
    }
    if (attr.empty()) throw FilterParseError("missing attribute name");
    node->attr = toLowerAscii(attr);
    const char op = peek();
    if (op == '>' || op == '<') {
      ++pos_;
      expect('=');
      node->cmp = op == '>' ? CmpKind::kGreaterEq : CmpKind::kLessEq;
    } else {
      expect('=');
      node->cmp = CmpKind::kEquals;
    }
    std::string value;
    while (pos_ < text_.size() && text_[pos_] != ')') {
      value.push_back(text_[pos_++]);
    }
    expect(')');
    node->value = value;
    if (node->cmp == CmpKind::kEquals) {
      if (value == "*") {
        node->cmp = CmpKind::kPresent;
      } else if (value.find('*') != std::string::npos) {
        node->cmp = CmpKind::kSubstring;
        node->subAnchoredStart = !value.empty() && value.front() != '*';
        node->subAnchoredEnd = !value.empty() && value.back() != '*';
        std::string chunk;
        for (const char vc : value) {
          if (vc == '*') {
            node->subParts.push_back(toLowerAscii(chunk));
            chunk.clear();
          } else {
            chunk.push_back(vc);
          }
        }
        node->subParts.push_back(toLowerAscii(chunk));
      }
    }
    return node;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Filter Filter::parse(const std::string& text) {
  Filter f;
  f.root_ = FilterParser(text).parse();
  return f;
}

Filter Filter::matchAll() {
  Filter f;
  f.root_ = std::make_shared<Node>();  // Kind::kTrue
  return f;
}

bool Filter::matches(const Entry& entry) const {
  return root_ == nullptr || root_->eval(entry);
}

std::string Filter::toString() const {
  return root_ == nullptr ? "(objectClass=*)" : root_->text();
}

}  // namespace softqos::ldapdir
