#include "distribution/qorms.hpp"

namespace softqos::distribution {

Qorms::Qorms(sim::Simulation& simulation, net::Network& network)
    : sim_(simulation),
      network_(network),
      repository_(/*enforceSchema=*/true),
      agent_(simulation, repository_),
      admin_(repository_) {}

manager::QoSHostManager& Qorms::createHostManager(
    osim::Host& host, manager::HostManagerConfig config) {
  hostManagers_.push_back(std::make_unique<manager::QoSHostManager>(
      sim_, host, &network_, std::move(config)));
  return *hostManagers_.back();
}

manager::QoSDomainManager& Qorms::createDomainManager(
    osim::Host& seat, const std::string& name,
    const std::vector<std::string>& hosts,
    manager::DomainManagerConfig config) {
  domainManagers_.push_back(std::make_unique<manager::QoSDomainManager>(
      sim_, seat, network_, name, config));
  manager::QoSDomainManager& dm = *domainManagers_.back();
  for (const std::string& h : hosts) dm.addManagedHost(h);
  return dm;
}

std::vector<manager::QoSHostManager*> Qorms::hostManagers() {
  std::vector<manager::QoSHostManager*> out;
  out.reserve(hostManagers_.size());
  for (const auto& hm : hostManagers_) out.push_back(hm.get());
  return out;
}

std::vector<manager::QoSDomainManager*> Qorms::domainManagers() {
  std::vector<manager::QoSDomainManager*> out;
  out.reserve(domainManagers_.size());
  for (const auto& dm : domainManagers_) out.push_back(dm.get());
  return out;
}

manager::QoSHostManager* Qorms::hostManagerFor(const std::string& hostName) {
  for (const auto& hm : hostManagers_) {
    if (hm->host().name() == hostName) return hm.get();
  }
  return nullptr;
}

void Qorms::distributeHostRules(const std::string& ruleText) {
  for (const auto& hm : hostManagers_) hm->loadRuleText(ruleText);
}

void Qorms::distributeDomainRules(const std::string& ruleText) {
  for (const auto& dm : domainManagers_) dm->loadRuleText(ruleText);
}

void Qorms::enableContractPlane(osim::Host& seat, int port) {
  agent_.enableContractPlane();
  agent_.bindRpc(network_, seat, port);
  distributeHostRules(manager::contractHostRules());
}

}  // namespace softqos::distribution
