#include "distribution/admin.hpp"

#include <algorithm>

#include "ldapdir/ldif.hpp"

namespace softqos::distribution {

AdminTool::AdminTool(RepositoryService& repository) : repository_(repository) {}

AdminTool::CheckResult AdminTool::checkPolicy(
    const policy::PolicySpec& spec) const {
  CheckResult result;
  const auto fail = [&result](std::string problem) {
    result.ok = false;
    result.problems.push_back(std::move(problem));
  };

  if (spec.name.empty()) fail("policy has no name");
  if (spec.conditions.empty()) fail("policy has no conditions");

  const auto exec = repository_.findExecutable(spec.executable);
  if (!exec.has_value()) {
    fail("policy applies to unknown executable '" + spec.executable + "'");
    return result;
  }

  // Gather the executable's sensor inventory.
  std::vector<policy::SensorInfo> sensors;
  for (const std::string& sensorId : exec->sensorIds) {
    const auto sensor = repository_.findSensor(sensorId);
    if (sensor.has_value()) {
      sensors.push_back(*sensor);
    } else {
      fail("executable references unknown sensor '" + sensorId + "'");
    }
  }
  const auto monitored = [&](const std::string& attribute) {
    return std::any_of(sensors.begin(), sensors.end(),
                       [&](const policy::SensorInfo& s) {
                         return s.monitors(attribute);
                       });
  };
  const auto isSensor = [&](const std::string& id) {
    return std::any_of(sensors.begin(), sensors.end(),
                       [&](const policy::SensorInfo& s) { return s.id == id; });
  };

  // Check 1: every condition attribute has a sensor collecting it.
  for (const policy::PolicyCondition& cond : spec.conditions) {
    if (!monitored(cond.attribute)) {
      fail("no sensor of executable '" + spec.executable +
           "' monitors attribute '" + cond.attribute + "'");
    }
  }

  // Check 2: actions are sensor method invocations or a host-manager notify
  // with non-empty, sensor-derived data.
  std::vector<std::string> sensorReadOutputs;
  for (const policy::PolicyAction& action : spec.actions) {
    switch (action.kind) {
      case policy::PolicyAction::Kind::kSensorRead:
        if (!isSensor(action.target)) {
          fail("action reads unknown sensor '" + action.target + "'");
        }
        for (const std::string& arg : action.arguments) {
          sensorReadOutputs.push_back(arg);
        }
        break;
      case policy::PolicyAction::Kind::kNotifyHostManager: {
        if (action.arguments.empty()) {
          fail("notification to the QoS Host Manager carries no data");
          break;
        }
        for (const std::string& arg : action.arguments) {
          if (std::find(sensorReadOutputs.begin(), sensorReadOutputs.end(),
                        arg) == sensorReadOutputs.end()) {
            fail("notification argument '" + arg +
                 "' is not produced by a preceding sensor read");
          }
        }
        break;
      }
      case policy::PolicyAction::Kind::kActuatorInvoke:
        // Actuators are part of the executable's instrumentation; the
        // repository does not model them, so only sanity-check the target.
        if (action.target.empty()) fail("actuator action has empty target");
        break;
    }
  }
  return result;
}

AdminTool::CheckResult AdminTool::addPolicy(const policy::PolicySpec& spec) {
  CheckResult result = checkPolicy(spec);
  if (!result.ok) return result;
  const ldapdir::LdapResult r = repository_.addPolicy(spec);
  if (r != ldapdir::LdapResult::kSuccess) {
    result.ok = false;
    result.problems.push_back("repository rejected policy: " +
                              ldapdir::ldapResultName(r));
  }
  return result;
}

AdminTool::CheckResult AdminTool::addPolicyText(const std::string& obligText,
                                                const std::string& application,
                                                const std::string& role) {
  policy::PolicySpec spec;
  try {
    spec = policy::parseObligation(obligText);
  } catch (const policy::PolicyParseError& e) {
    CheckResult result;
    result.ok = false;
    result.problems.push_back(std::string("parse error: ") + e.what());
    return result;
  }
  spec.application = application;
  spec.userRole = role;
  return addPolicy(spec);
}

bool AdminTool::removePolicy(const std::string& name) {
  return repository_.removePolicy(name);
}

namespace {

bool setEnabled(RepositoryService& repository, const std::string& name,
                bool enabled) {
  ldapdir::Modification mod;
  mod.op = ldapdir::Modification::Op::kReplace;
  mod.attr = "enabled";
  mod.values = {enabled ? "TRUE" : "FALSE"};
  return repository.directory().modify(policy::dit::policies().child("cn", name),
                                       {mod}) == ldapdir::LdapResult::kSuccess;
}

}  // namespace

bool AdminTool::disablePolicy(const std::string& name) {
  return setEnabled(repository_, name, false);
}

bool AdminTool::enablePolicy(const std::string& name) {
  return setEnabled(repository_, name, true);
}

std::vector<std::string> AdminTool::listPolicies() const {
  return repository_.policyNames();
}

std::string AdminTool::policyLdif(const policy::PolicySpec& spec) const {
  std::string out;
  for (const ldapdir::Entry& e : policy::policyToEntries(spec)) {
    out += ldapdir::toLdif(e);
    out += "\n";
  }
  return out;
}

}  // namespace softqos::distribution
