#include "distribution/policy_agent.hpp"

#include <algorithm>
#include <cstdlib>

namespace softqos::distribution {

const char* ContractEvent::kindName() const {
  switch (kind) {
    case Kind::kDegraded: return "degraded";
    case Kind::kRestored: return "restored";
    case Kind::kRejected: return "rejected";
    case Kind::kLivelinessLost: return "liveliness-lost";
    case Kind::kOwnerChanged: return "owner-changed";
  }
  return "?";
}

std::string ContractEvent::serialize() const {
  return std::string("kind=") + kindName() + ";pid=" + std::to_string(pid) +
         ";contract=" + contract + ";detail=" + detail;
}

PolicyAgent::PolicyAgent(sim::Simulation& simulation,
                         RepositoryService& repository)
    : sim_(simulation), repository_(repository) {}

PolicyAgent::~PolicyAgent() {
  for (auto& [pid, session] : sessions_) {
    (void)pid;
    if (session.probeEvent != sim::kInvalidEvent) sim_.cancel(session.probeEvent);
    if (session.upgradeEvent != sim::kInvalidEvent) {
      sim_.cancel(session.upgradeEvent);
    }
  }
}

std::vector<policy::CompiledPolicy> PolicyAgent::compileFor(
    const Registration& reg) {
  const auto exec = repository_.findExecutable(reg.executable);
  if (!exec.has_value()) {
    throw PolicyAgentError("unknown executable: " + reg.executable);
  }

  // Resolve attribute -> sensor through the executable's sensor inventory.
  std::vector<policy::SensorInfo> sensors;
  for (const std::string& sensorId : exec->sensorIds) {
    const auto sensor = repository_.findSensor(sensorId);
    if (sensor.has_value()) sensors.push_back(*sensor);
  }
  const auto sensorForAttribute = [&](const std::string& attribute) {
    for (const policy::SensorInfo& s : sensors) {
      if (s.monitors(attribute)) return s.id;
    }
    return std::string{};
  };

  std::vector<policy::CompiledPolicy> compiled;
  for (const policy::PolicySpec& spec :
       repository_.policiesFor(reg.application, reg.executable, reg.role)) {
    try {
      compiled.push_back(
          policy::compilePolicy(spec, sensorForAttribute, nextComparisonId_));
    } catch (const policy::CompileError& e) {
      throw PolicyAgentError(e.what());
    }
  }
  return compiled;
}

void PolicyAgent::applyDegradedDeadline(
    std::vector<policy::CompiledPolicy>& compiled, const std::string& attribute,
    double effectiveDeadlineMs) {
  if (attribute.empty() || effectiveDeadlineMs <= 0) return;
  // deadline <-> rate mapping: a period of D ms sustains 1000/D samples/s.
  const double relaxedFloor = 1000.0 / effectiveDeadlineMs;
  for (policy::CompiledPolicy& policy : compiled) {
    for (policy::CompiledCondition& cond : policy.conditions) {
      if (cond.attribute != attribute) continue;
      if (cond.op != policy::PolicyCmp::kGe && cond.op != policy::PolicyCmp::kGt)
        continue;  // only lower-bound (rate-floor) thresholds relax
      cond.value = std::min(cond.value, relaxedFloor);
    }
  }
}

void PolicyAgent::admitSession(Session& session,
                               std::vector<policy::CompiledPolicy>& compiled) {
  const Registration& reg = session.reg;
  if (const auto offered =
          repository_.offeredContractFor(reg.executable, reg.application)) {
    session.hasOffer = true;
    session.offer = offered->offer;
    session.offeredContract = offered->name;
    session.deadlineAttribute = offered->deadlineAttribute;
    session.strength = reg.ownershipStrength >= 0 ? reg.ownershipStrength
                                                  : offered->offer.ownershipStrength;
  }
  const auto requested =
      repository_.requestedContractFor(reg.application, reg.role);
  if (!requested.has_value()) return;  // nothing requested: no admission

  session.hasContract = true;
  session.request = requested->request;
  session.requestedContract = requested->name;
  if (!requested->deadlineAttribute.empty()) {
    session.deadlineAttribute = requested->deadlineAttribute;
  }

  // RxO: a session without an offered side is matched against the weakest
  // possible offer (session.offer stays default-constructed: no
  // commitments), so a strict request still rejects it.
  session.decision = policy::admit(session.offer, session.request);
  session.admittedTier = session.currentTier = session.decision.tier;

  switch (session.decision.tier) {
    case policy::AdmissionTier::kFull:
      ++admissionsFull_;
      if (flightRecorder_ != nullptr) {
        flightRecorder_->record("admit-full", reg.pid,
                                session.requestedContract, "");
      }
      sim_.debug("policy-agent", [&] {
        return "pid " + std::to_string(reg.pid) + " admitted (full) under " +
               session.requestedContract;
      });
      break;
    case policy::AdmissionTier::kDegraded:
      ++admissionsDegraded_;
      applyDegradedDeadline(compiled, session.deadlineAttribute,
                            session.decision.effectiveDeadlineMs);
      sim_.info("policy-agent", [&] {
        return "pid " + std::to_string(reg.pid) + " admitted DEGRADED under " +
               session.requestedContract + ": " + session.decision.reason();
      });
      emitEvent({ContractEvent::Kind::kDegraded, reg.pid, reg.hostName,
                 session.requestedContract, session.decision.reason()});
      break;
    case policy::AdmissionTier::kRejected: {
      ++rejections_;
      sim_.warn("policy-agent", [&] {
        return "pid " + std::to_string(reg.pid) + " REJECTED under " +
               session.requestedContract + ": " + session.decision.reason();
      });
      emitEvent({ContractEvent::Kind::kRejected, reg.pid, reg.hostName,
                 session.requestedContract, session.decision.reason()});
      throw AdmissionError("admission rejected for pid " +
                               std::to_string(reg.pid) + " under " +
                               session.requestedContract + ": " +
                               session.decision.reason(),
                           session.decision);
    }
  }
}

void PolicyAgent::applyTier(Session& session) {
  instrument::Coordinator* c = session.reg.coordinator;
  if (c == nullptr) return;
  // History depth bounds what the process may retain for an absent manager.
  const int depth = session.hasContract ? session.decision.effectiveHistoryDepth
                                        : session.offer.historyDepth;
  if (depth > 0) c->setReportBufferCap(static_cast<std::size_t>(depth));
  // A VOLATILE offer promises no persistence across manager outages.
  if (session.hasOffer) {
    c->setStoreAndForward(session.offer.durability !=
                          policy::DurabilityKind::kVolatile);
  }
}

std::size_t PolicyAgent::registerProcess(const Registration& registration) {
  if (registration.coordinator == nullptr) {
    throw PolicyAgentError("registration without a coordinator");
  }
  // Re-registration (restart under a recycled pid): replace the dead session
  // outright. The stale coordinator pointer is NOT dereferenced — the old
  // process (and its coordinator) may be long gone.
  const auto existing = sessions_.find(registration.pid);
  if (existing != sessions_.end()) {
    sim_.debug("policy-agent", [&] {
      return "pid " + std::to_string(registration.pid) +
             " re-registered; replacing stale session";
    });
    dropSession(existing);
  }

  Session session;
  session.reg = registration;
  std::vector<policy::CompiledPolicy> compiled = compileFor(registration);
  if (contractPlane_) admitSession(session, compiled);  // may throw

  registration.coordinator->setUserRole(registration.role);
  registration.coordinator->installPolicies(compiled);
  if (contractPlane_) applyTier(session);

  const std::string offeredContract = session.offeredContract;
  const std::string hostName = registration.hostName;
  auto [it, inserted] =
      sessions_.emplace(registration.pid, std::move(session));
  (void)inserted;
  if (contractPlane_) {
    recordTierEnter(it->second);
    startProbe(it->second);
    if (!offeredContract.empty()) recomputeOwner(offeredContract, hostName);
  }
  ++registrations_;
  sim_.debug("policy-agent", [&] {
    return "registered pid " + std::to_string(registration.pid) + " (" +
           registration.executable + "), " + std::to_string(compiled.size()) +
           " policies";
  });
  return compiled.size();
}

void PolicyAgent::deregisterProcess(std::uint32_t pid) {
  const auto it = sessions_.find(pid);
  if (it == sessions_.end()) return;
  // Uninstall the delivered policies: a deregistered (but still running)
  // process must stop monitoring and alarming. The Registration contract
  // guarantees the coordinator outlives the session.
  if (it->second.reg.coordinator != nullptr) {
    it->second.reg.coordinator->clearPolicies();
  }
  dropSession(it);
}

void PolicyAgent::dropSession(std::map<std::uint32_t, Session>::iterator it) {
  if (it->second.probeEvent != sim::kInvalidEvent) {
    sim_.cancel(it->second.probeEvent);
  }
  stopUpgradeRetry(it->second);
  if (flightRecorder_ != nullptr) flightRecorder_->sessionEnd(it->first);
  const std::string contract = it->second.offeredContract;
  const std::string host = it->second.reg.hostName;
  sessions_.erase(it);
  if (contractPlane_ && !contract.empty()) recomputeOwner(contract, host);
}

std::size_t PolicyAgent::refresh(std::uint32_t pid) {
  const auto it = sessions_.find(pid);
  if (it == sessions_.end()) return 0;
  Session& session = it->second;
  std::vector<policy::CompiledPolicy> compiled = compileFor(session.reg);
  // A degraded session keeps its relaxed thresholds through repository pushes.
  if (contractPlane_ &&
      session.currentTier == policy::AdmissionTier::kDegraded) {
    applyDegradedDeadline(compiled, session.deadlineAttribute,
                          session.decision.effectiveDeadlineMs);
  }
  // Replace the whole set: drop policies that no longer apply, then install.
  session.reg.coordinator->clearPolicies();
  session.reg.coordinator->installPolicies(compiled);
  if (contractPlane_) applyTier(session);
  ++pushes_;
  return compiled.size();
}

bool PolicyAgent::renegotiate(std::uint32_t pid, bool down) {
  if (!contractPlane_) return false;
  const auto it = sessions_.find(pid);
  if (it == sessions_.end() || !it->second.hasContract) return false;
  Session& session = it->second;

  if (down) {
    if (session.currentTier != policy::AdmissionTier::kFull) return false;
    if (!session.request.allowDegraded()) return false;
    session.decision.tier = policy::AdmissionTier::kDegraded;
    session.decision.effectiveDeadlineMs =
        session.request.degradedDeadlineMs > 0
            ? session.request.degradedDeadlineMs
            : session.request.maxDeadlineMs;
    session.decision.effectiveHistoryDepth =
        session.request.degradedHistoryDepth >= 0
            ? session.request.degradedHistoryDepth
            : session.request.minHistoryDepth;
    session.currentTier = policy::AdmissionTier::kDegraded;
    ++renegotiations_;
    refresh(pid);
    --pushes_;  // renegotiation is not a repository push
    sim_.info("policy-agent", [&] {
      return "pid " + std::to_string(pid) + " renegotiated DOWN under " +
             session.requestedContract;
    });
    emitEvent({ContractEvent::Kind::kDegraded, pid, session.reg.hostName,
               session.requestedContract, "renegotiated down"});
    recordTierEnter(session);
    // Once the relaxed floors are met the stream goes quiet, so recovery
    // has no violation edge to ride: probe the full tier periodically.
    startUpgradeRetry(session);
    return true;
  }

  if (session.currentTier != policy::AdmissionTier::kDegraded) return false;
  // Restoring full tier requires the offer to actually satisfy the full
  // request — a session degraded at admission time can never upgrade.
  const policy::QosOffer offer =
      session.hasOffer ? session.offer : policy::QosOffer{};
  policy::AdmissionDecision full = policy::admit(offer, session.request);
  if (full.tier != policy::AdmissionTier::kFull) return false;
  session.decision = full;
  session.currentTier = policy::AdmissionTier::kFull;
  stopUpgradeRetry(session);
  ++renegotiations_;
  refresh(pid);
  --pushes_;
  sim_.info("policy-agent", [&] {
    return "pid " + std::to_string(pid) + " renegotiated UP under " +
           session.requestedContract;
  });
  emitEvent({ContractEvent::Kind::kRestored, pid, session.reg.hostName,
             session.requestedContract, "renegotiated up"});
  recordTierEnter(session);
  return true;
}

void PolicyAgent::bindRpc(net::Network& network, osim::Host& seat, int port) {
  rpc_ = std::make_unique<net::RpcEndpoint>(network, seat, port);
  rpc_->setHandler("renegotiate", [this](const std::string& body,
                                         net::RpcEndpoint::Responder respond) {
    std::uint32_t pid = 0;
    const auto at = body.find("pid=");
    if (at != std::string::npos) {
      pid = static_cast<std::uint32_t>(
          std::strtoul(body.c_str() + at + 4, nullptr, 10));
    }
    const bool down = body.find("dir=down") != std::string::npos;
    const bool up = body.find("dir=up") != std::string::npos;
    if (pid == 0 || (!down && !up)) {
      respond("ERR:bad-request");
      return;
    }
    if (renegotiate(pid, down)) {
      const auto it = sessions_.find(pid);
      respond(std::string("OK:") +
              (it != sessions_.end()
                   ? policy::admissionTierName(it->second.currentTier)
                   : "gone"));
    } else {
      respond("ERR:unchanged");
    }
  });
}

void PolicyAgent::startUpgradeRetry(Session& session) {
  if (upgradeRetryInterval_ <= 0 ||
      session.upgradeEvent != sim::kInvalidEvent) {
    return;
  }
  const std::uint32_t pid = session.reg.pid;
  session.upgradeEvent = sim_.every(upgradeRetryInterval_, [this, pid] {
    const auto it = sessions_.find(pid);
    if (it == sessions_.end()) return;
    if (it->second.currentTier != policy::AdmissionTier::kDegraded) {
      stopUpgradeRetry(it->second);
      return;
    }
    renegotiate(pid, /*down=*/false);
  });
}

void PolicyAgent::stopUpgradeRetry(Session& session) {
  if (session.upgradeEvent != sim::kInvalidEvent) {
    sim_.cancel(session.upgradeEvent);
    session.upgradeEvent = sim::kInvalidEvent;
  }
}

void PolicyAgent::startProbe(Session& session) {
  if (rpc_ == nullptr || !session.hasOffer || session.offer.leaseMs <= 0 ||
      session.reg.hostName.empty()) {
    return;
  }
  const sim::SimDuration period = std::max<sim::SimDuration>(
      sim::msec(1),
      static_cast<sim::SimDuration>(session.offer.leaseMs * 1000.0));
  const std::uint32_t pid = session.reg.pid;
  const std::string host = session.reg.hostName;
  session.probeEvent = sim_.every(period, [this, pid, host, period] {
    const auto it = sessions_.find(pid);
    if (it == sessions_.end() || !it->second.alive) return;
    ++probes_;
    net::RpcEndpoint::CallOptions options;
    // The reply must land (or time out) before the next lease period.
    options.timeout = std::max<sim::SimDuration>(sim::msec(1), period / 2);
    rpc_->call(host, hostManagerPort_, "host-stats",
               "pid=" + std::to_string(pid),
               [this, pid](bool ok, const std::string& body) {
                 handleProbeReply(pid, ok, body);
               },
               options);
  });
}

void PolicyAgent::handleProbeReply(std::uint32_t pid, bool ok,
                                   const std::string& body) {
  const auto it = sessions_.find(pid);
  if (it == sessions_.end() || !it->second.alive) return;
  const bool alive = ok && body.find("alive=1") != std::string::npos;
  if (alive) {
    it->second.missedProbes = 0;
    return;
  }
  if (++it->second.missedProbes >= missThreshold_) markLivelinessLost(pid);
}

void PolicyAgent::markLivelinessLost(std::uint32_t pid) {
  const auto it = sessions_.find(pid);
  if (it == sessions_.end() || !it->second.alive) return;
  Session& session = it->second;
  session.alive = false;
  if (session.probeEvent != sim::kInvalidEvent) {
    sim_.cancel(session.probeEvent);
    session.probeEvent = sim::kInvalidEvent;
  }
  ++livelinessLosses_;
  sim_.warn("policy-agent", [&] {
    return "liveliness LOST for pid " + std::to_string(pid) + " (" +
           session.offeredContract + ")";
  });
  emitEvent({ContractEvent::Kind::kLivelinessLost, pid, session.reg.hostName,
             session.offeredContract, "missed " +
                 std::to_string(session.missedProbes) + " probes"});
  if (!session.offeredContract.empty()) {
    recomputeOwner(session.offeredContract, session.reg.hostName);
  }
}

void PolicyAgent::recomputeOwner(const std::string& contract,
                                 const std::string& fallbackHost) {
  // Exclusive ownership: the strongest ALIVE offerer owns the contract;
  // ties break to the lowest pid (deterministic across runs).
  std::uint32_t best = 0;
  int bestStrength = 0;
  std::string bestHost;
  for (const auto& [pid, session] : sessions_) {
    if (!session.alive || session.offeredContract != contract) continue;
    if (best == 0 || session.strength > bestStrength ||
        (session.strength == bestStrength && pid < best)) {
      best = pid;
      bestStrength = session.strength;
      bestHost = session.reg.hostName;
    }
  }
  const auto prev = owners_.find(contract);
  const std::uint32_t prevOwner = prev == owners_.end() ? 0 : prev->second;
  if (best == prevOwner) return;
  if (best == 0) {
    owners_.erase(contract);
  } else {
    owners_[contract] = best;
  }
  if (prevOwner != 0 && best != 0) ++failovers_;
  sim_.info("policy-agent", [&] {
    return "ownership of " + contract + " moved: pid " +
           std::to_string(prevOwner) + " -> pid " + std::to_string(best);
  });
  emitEvent({ContractEvent::Kind::kOwnerChanged, best,
             bestHost.empty() ? fallbackHost : bestHost, contract,
             "from pid " + std::to_string(prevOwner)});
}

std::uint32_t PolicyAgent::ownerOf(const std::string& offeredContract) const {
  const auto it = owners_.find(offeredContract);
  return it == owners_.end() ? 0 : it->second;
}

std::optional<PolicyAgent::SessionInfo> PolicyAgent::sessionInfo(
    std::uint32_t pid) const {
  const auto it = sessions_.find(pid);
  if (it == sessions_.end()) return std::nullopt;
  const Session& s = it->second;
  SessionInfo info;
  info.admittedTier = s.admittedTier;
  info.currentTier = s.currentTier;
  info.offeredContract = s.offeredContract;
  info.requestedContract = s.requestedContract;
  info.strength = s.strength;
  info.alive = s.alive;
  info.hasContract = s.hasContract;
  info.effectiveDeadlineMs = s.decision.effectiveDeadlineMs;
  return info;
}

std::vector<std::pair<std::uint32_t, PolicyAgent::SessionInfo>>
PolicyAgent::sessions() const {
  std::vector<std::pair<std::uint32_t, SessionInfo>> out;
  out.reserve(sessions_.size());
  for (const auto& [pid, session] : sessions_) {
    (void)session;
    out.emplace_back(pid, *sessionInfo(pid));
  }
  return out;
}

void PolicyAgent::recordTierEnter(const Session& session) {
  if (flightRecorder_ == nullptr || !session.hasContract) return;
  flightRecorder_->tierEnter(
      session.reg.pid, session.requestedContract,
      session.currentTier == policy::AdmissionTier::kDegraded ? "degraded"
                                                              : "full");
}

void PolicyAgent::emitEvent(ContractEvent event) {
  if (flightRecorder_ != nullptr) {
    flightRecorder_->record(event.kindName(), event.pid, event.contract,
                            event.detail);
  }
  if (sink_) {
    sink_(event);
    return;
  }
  if (rpc_ != nullptr && !event.hostName.empty()) {
    rpc_->notify(event.hostName, hostManagerPort_, "contract-event",
                 event.serialize());
  }
}

void PolicyAgent::enableAutoPush() {
  if (autoPush_) return;
  autoPush_ = true;
  repository_.directory().addChangeListener([this](const ldapdir::Dn& dn) {
    const bool policyChange = dn.isDescendantOf(policy::dit::policies()) ||
                              dn.isDescendantOf(policy::dit::conditions()) ||
                              dn.isDescendantOf(policy::dit::actions());
    if (!policyChange) return;
    // Refresh on the next event-loop turn so a multi-entry upload (policy +
    // inline conditions) is pushed once in a consistent state.
    if (refreshPending_) return;
    refreshPending_ = true;
    sim_.after(0, [this] {
      refreshPending_ = false;
      std::vector<std::uint32_t> pids;
      pids.reserve(sessions_.size());
      for (const auto& [pid, session] : sessions_) {
        (void)session;
        pids.push_back(pid);
      }
      for (const std::uint32_t pid : pids) {
        try {
          refresh(pid);
        } catch (const PolicyAgentError& e) {
          sim_.warn("policy-agent", [&] {
            return "auto-push to pid " + std::to_string(pid) +
                   " failed: " + e.what();
          });
        }
      }
    });
  });
}

}  // namespace softqos::distribution
