#include "distribution/policy_agent.hpp"

namespace softqos::distribution {

PolicyAgent::PolicyAgent(sim::Simulation& simulation,
                         RepositoryService& repository)
    : sim_(simulation), repository_(repository) {}

std::vector<policy::CompiledPolicy> PolicyAgent::compileFor(
    const Registration& reg) {
  const auto exec = repository_.findExecutable(reg.executable);
  if (!exec.has_value()) {
    throw PolicyAgentError("unknown executable: " + reg.executable);
  }

  // Resolve attribute -> sensor through the executable's sensor inventory.
  std::vector<policy::SensorInfo> sensors;
  for (const std::string& sensorId : exec->sensorIds) {
    const auto sensor = repository_.findSensor(sensorId);
    if (sensor.has_value()) sensors.push_back(*sensor);
  }
  const auto sensorForAttribute = [&](const std::string& attribute) {
    for (const policy::SensorInfo& s : sensors) {
      if (s.monitors(attribute)) return s.id;
    }
    return std::string{};
  };

  std::vector<policy::CompiledPolicy> compiled;
  for (const policy::PolicySpec& spec :
       repository_.policiesFor(reg.application, reg.executable, reg.role)) {
    try {
      compiled.push_back(
          policy::compilePolicy(spec, sensorForAttribute, nextComparisonId_));
    } catch (const policy::CompileError& e) {
      throw PolicyAgentError(e.what());
    }
  }
  return compiled;
}

std::size_t PolicyAgent::registerProcess(const Registration& registration) {
  if (registration.coordinator == nullptr) {
    throw PolicyAgentError("registration without a coordinator");
  }
  std::vector<policy::CompiledPolicy> compiled = compileFor(registration);
  registration.coordinator->setUserRole(registration.role);
  registration.coordinator->installPolicies(compiled);
  sessions_[registration.pid] = registration;
  ++registrations_;
  sim_.debug("policy-agent", [&] {
    return "registered pid " + std::to_string(registration.pid) + " (" +
           registration.executable + "), " + std::to_string(compiled.size()) +
           " policies";
  });
  return compiled.size();
}

void PolicyAgent::deregisterProcess(std::uint32_t pid) { sessions_.erase(pid); }

std::size_t PolicyAgent::refresh(std::uint32_t pid) {
  const auto it = sessions_.find(pid);
  if (it == sessions_.end()) return 0;
  const Registration& reg = it->second;
  std::vector<policy::CompiledPolicy> compiled = compileFor(reg);
  // Replace the whole set: drop policies that no longer apply, then install.
  reg.coordinator->clearPolicies();
  reg.coordinator->installPolicies(compiled);
  ++pushes_;
  return compiled.size();
}

void PolicyAgent::enableAutoPush() {
  if (autoPush_) return;
  autoPush_ = true;
  repository_.directory().addChangeListener([this](const ldapdir::Dn& dn) {
    const bool policyChange = dn.isDescendantOf(policy::dit::policies()) ||
                              dn.isDescendantOf(policy::dit::conditions()) ||
                              dn.isDescendantOf(policy::dit::actions());
    if (!policyChange) return;
    // Refresh on the next event-loop turn so a multi-entry upload (policy +
    // inline conditions) is pushed once in a consistent state.
    if (refreshPending_) return;
    refreshPending_ = true;
    sim_.after(0, [this] {
      refreshPending_ = false;
      std::vector<std::uint32_t> pids;
      pids.reserve(sessions_.size());
      for (const auto& [pid, reg] : sessions_) {
        (void)reg;
        pids.push_back(pid);
      }
      for (const std::uint32_t pid : pids) {
        try {
          refresh(pid);
        } catch (const PolicyAgentError& e) {
          sim_.warn("policy-agent", [&] {
            return "auto-push to pid " + std::to_string(pid) +
                   " failed: " + e.what();
          });
        }
      }
    });
  });
}

}  // namespace softqos::distribution
