// The Policy Agent (Section 6.2): processes register at startup with their
// pid, application, executable and user-role identifiers; the agent maps the
// registration to the applicable policies, compiles them against the
// executable's sensor inventory, and delivers them to the process
// coordinator. With auto-push enabled, repository changes re-deliver the
// (new) policy set to every affected running session — policies change
// without recompilation.
//
// QoS contract plane (enableContractPlane, default off): registrations are
// additionally matched requested-vs-offered against the repository's
// contract entries (DDS-style Deadline / Liveliness / History / Durability /
// Ownership, see policy/qos_contract.hpp). Incompatible matches are rejected
// at registration time with a typed AdmissionError; requests carrying a
// degraded tier are admitted with relaxed deadline thresholds and capped
// history instead. Admitted offerer sessions are liveliness-probed over RPC,
// exclusive ownership follows the strongest *alive* offerer (failover on
// crash), and live sessions renegotiate tiers up/down through the agent's
// "renegotiate" RPC while they run.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "distribution/repository.hpp"
#include "instrument/coordinator.hpp"
#include "net/rpc.hpp"
#include "obs/flight_recorder.hpp"
#include "policy/compile.hpp"
#include "policy/qos_contract.hpp"
#include "sim/simulation.hpp"

namespace softqos::distribution {

class PolicyAgentError : public std::runtime_error {
 public:
  explicit PolicyAgentError(const std::string& message)
      : std::runtime_error(message) {}
};

/// Registration refused by RxO admission control: the offered QoS cannot
/// satisfy the requested QoS (and the request carries no degraded tier the
/// offer could meet). decision() holds the typed per-policy mismatches.
class AdmissionError : public PolicyAgentError {
 public:
  AdmissionError(const std::string& message, policy::AdmissionDecision decision)
      : PolicyAgentError(message), decision_(std::move(decision)) {}
  [[nodiscard]] const policy::AdmissionDecision& decision() const {
    return decision_;
  }

 private:
  policy::AdmissionDecision decision_;
};

/// Contract-plane state transition, delivered to the managing host's QoS
/// Host Manager (which asserts it into working memory so rules can react).
struct ContractEvent {
  enum class Kind {
    kDegraded,        // session admitted at / renegotiated down to degraded
    kRestored,        // session renegotiated back up to the full tier
    kRejected,        // registration refused by admission control
    kLivelinessLost,  // offerer missed its liveliness lease
    kOwnerChanged,    // exclusive ownership moved (pid = new owner, 0 = none)
  };
  Kind kind = Kind::kDegraded;
  std::uint32_t pid = 0;
  std::string hostName;  // host whose manager should hear about it
  std::string contract;
  std::string detail;

  [[nodiscard]] const char* kindName() const;
  /// "kind=degraded;pid=3;contract=video-gold;detail=..."
  [[nodiscard]] std::string serialize() const;
};

class PolicyAgent {
 public:
  PolicyAgent(sim::Simulation& simulation, RepositoryService& repository);
  ~PolicyAgent();

  PolicyAgent(const PolicyAgent&) = delete;
  PolicyAgent& operator=(const PolicyAgent&) = delete;

  struct Registration {
    std::uint32_t pid = 0;
    std::string application;
    std::string executable;
    std::string role;
    instrument::Coordinator* coordinator = nullptr;  // must outlive the session
    /// Host the process runs on: routes contract events to its manager and
    /// addresses liveliness probes. Empty disables both for this session.
    std::string hostName;
    /// Per-session ownership-strength override; -1 uses the offer's value.
    int ownershipStrength = -1;
  };

  /// Register a starting process; compiles and installs its policies.
  /// Returns the number of policies delivered. Throws PolicyAgentError if
  /// the executable is unknown or a policy references an attribute no
  /// sensor of the executable can monitor; throws AdmissionError when the
  /// contract plane rejects the requested-vs-offered match. Re-registering
  /// a live pid (restart with a recycled id) replaces the dead session —
  /// the stale coordinator pointer is dropped untouched, never duplicated.
  std::size_t registerProcess(const Registration& registration);

  /// Remove a session (process exit): its policies are uninstalled from the
  /// coordinator (which must still be alive) and, under the contract plane,
  /// its ownership is released (failover to the next-strongest offerer).
  void deregisterProcess(std::uint32_t pid);

  /// Re-deliver the applicable policy set to one session (run-time change).
  /// A degraded session keeps its relaxed thresholds.
  std::size_t refresh(std::uint32_t pid);

  /// Subscribe to repository changes: any change under ou=policies (or to
  /// reusable conditions/actions) refreshes every session.
  void enableAutoPush();

  // ---- QoS contract plane ----

  /// Master knob (default off: registrations behave exactly as before).
  void enableContractPlane() { contractPlane_ = true; }
  [[nodiscard]] bool contractPlaneEnabled() const { return contractPlane_; }

  using ContractEventSink = std::function<void(const ContractEvent&)>;
  /// Direct event delivery (single-shard deployments / tests). When unset
  /// and an RPC endpoint is bound, events ride a one-way "contract-event"
  /// notification to the session host's manager port instead.
  void setContractEventSink(ContractEventSink sink) { sink_ = std::move(sink); }

  /// Bind the agent's RPC endpoint on `seat`: serves "renegotiate"
  /// (body "pid=<n>;dir=down|up") and carries liveliness probes and
  /// contract-event notifications.
  void bindRpc(net::Network& network, osim::Host& seat, int port = 7200);

  /// Port of the QoS Host Manager on session hosts (probe + event target).
  void setHostManagerPort(int port) { hostManagerPort_ = port; }

  /// Missed probes (timeout or alive=0) before liveliness is declared lost.
  void setLivelinessMissThreshold(int misses) { missThreshold_ = misses; }

  /// Attach a contract-plane flight recorder (nullptr detaches): every
  /// admission decision, renegotiation, liveliness loss and ownership move
  /// is recorded (log + metrics + optional spans), and per-session tier
  /// residency is tracked through it. The recorder must outlive the
  /// attachment; default off.
  void setFlightRecorder(obs::FlightRecorder* recorder) {
    flightRecorder_ = recorder;
  }
  [[nodiscard]] obs::FlightRecorder* flightRecorder() const {
    return flightRecorder_;
  }

  /// How often a renegotiated-down session optimistically retries the full
  /// tier. Downgrades are evidence-driven (the host manager's rules see the
  /// violation), but once the relaxed floors are satisfied the stream goes
  /// quiet — no violation, no cleared report — so recovery needs a probe:
  /// the agent retries "up", and if the upgrade was premature the next
  /// violation degrades the session again. 0 disables retrying (a degraded
  /// session then only upgrades on an explicit cleared signal).
  void setUpgradeRetryInterval(sim::SimDuration interval) {
    upgradeRetryInterval_ = interval;
  }

  /// Renegotiate a live session: down degrades a full-tier session to its
  /// request's degraded floors; up restores a degraded session to full
  /// (only when the offer actually satisfies the full request). Returns
  /// whether the tier changed.
  bool renegotiate(std::uint32_t pid, bool down);

  struct SessionInfo {
    policy::AdmissionTier admittedTier = policy::AdmissionTier::kFull;
    policy::AdmissionTier currentTier = policy::AdmissionTier::kFull;
    std::string offeredContract;
    std::string requestedContract;
    int strength = 0;
    bool alive = true;
    /// True once a requested side matched and admission ran; the deadline
    /// below is only meaningful then.
    bool hasContract = false;
    /// The deadline bound in force for the session (ms; 0 = unbounded).
    double effectiveDeadlineMs = 0;
  };
  [[nodiscard]] std::optional<SessionInfo> sessionInfo(std::uint32_t pid) const;

  /// Every live session's public info, sorted by pid (deterministic — the
  /// latency-budget exporter joins contract deadlines against attribution).
  [[nodiscard]] std::vector<std::pair<std::uint32_t, SessionInfo>> sessions()
      const;

  /// Current exclusive owner among the alive offerers of `offeredContract`
  /// (strongest strength, ties to the lowest pid). 0 = no owner.
  [[nodiscard]] std::uint32_t ownerOf(const std::string& offeredContract) const;

  [[nodiscard]] std::size_t sessionCount() const { return sessions_.size(); }
  [[nodiscard]] std::uint64_t registrations() const { return registrations_; }
  [[nodiscard]] std::uint64_t pushes() const { return pushes_; }
  [[nodiscard]] std::uint64_t admissionsFull() const { return admissionsFull_; }
  [[nodiscard]] std::uint64_t admissionsDegraded() const {
    return admissionsDegraded_;
  }
  [[nodiscard]] std::uint64_t admissionsRejected() const { return rejections_; }
  [[nodiscard]] std::uint64_t livelinessLosses() const {
    return livelinessLosses_;
  }
  [[nodiscard]] std::uint64_t ownershipFailovers() const { return failovers_; }
  [[nodiscard]] std::uint64_t renegotiations() const { return renegotiations_; }
  [[nodiscard]] std::uint64_t livelinessProbesSent() const { return probes_; }

 private:
  struct Session {
    Registration reg;
    bool hasContract = false;  // a requested side matched: admission ran
    bool hasOffer = false;
    policy::QosOffer offer;
    policy::QosRequest request;
    std::string offeredContract;
    std::string requestedContract;
    std::string deadlineAttribute;
    policy::AdmissionTier admittedTier = policy::AdmissionTier::kFull;
    policy::AdmissionTier currentTier = policy::AdmissionTier::kFull;
    policy::AdmissionDecision decision;
    int strength = 0;
    bool alive = true;
    int missedProbes = 0;
    sim::EventId probeEvent = sim::kInvalidEvent;
    sim::EventId upgradeEvent = sim::kInvalidEvent;
  };

  std::vector<policy::CompiledPolicy> compileFor(const Registration& reg);
  /// Resolve contracts + run RxO admission for a new session. Relaxes
  /// `compiled` thresholds in place at the degraded tier. Throws
  /// AdmissionError on rejection.
  void admitSession(Session& session,
                    std::vector<policy::CompiledPolicy>& compiled);
  /// Lower the thresholds guarding `attribute` to the fps equivalent of the
  /// effective deadline (fps = 1000/deadlineMs); never tightens.
  static void applyDegradedDeadline(
      std::vector<policy::CompiledPolicy>& compiled,
      const std::string& attribute, double effectiveDeadlineMs);
  /// Push the tier's coordinator knobs: history depth caps the report
  /// buffer, VOLATILE durability disables store-and-forward.
  void applyTier(Session& session);
  void startProbe(Session& session);
  /// Arm / disarm the periodic full-tier retry for a renegotiated-down
  /// session (see setUpgradeRetryInterval).
  void startUpgradeRetry(Session& session);
  void stopUpgradeRetry(Session& session);
  void handleProbeReply(std::uint32_t pid, bool ok, const std::string& body);
  void markLivelinessLost(std::uint32_t pid);
  void recomputeOwner(const std::string& contract,
                      const std::string& fallbackHost);
  void emitEvent(ContractEvent event);
  /// Drop a session's bookkeeping (probe event, ownership) without touching
  /// its coordinator. Returns the offered contract for owner recompute.
  void dropSession(std::map<std::uint32_t, Session>::iterator it);

  /// Tier residency bookkeeping through the attached flight recorder
  /// (no-op when none is attached).
  void recordTierEnter(const Session& session);

  sim::Simulation& sim_;
  RepositoryService& repository_;
  obs::FlightRecorder* flightRecorder_ = nullptr;
  std::map<std::uint32_t, Session> sessions_;
  std::map<std::string, std::uint32_t> owners_;  // offered contract -> owner
  std::unique_ptr<net::RpcEndpoint> rpc_;
  ContractEventSink sink_;
  int hostManagerPort_ = 7001;
  int missThreshold_ = 3;
  sim::SimDuration upgradeRetryInterval_ = sim::sec(10);
  int nextComparisonId_ = 1;
  std::uint64_t registrations_ = 0;
  std::uint64_t pushes_ = 0;
  std::uint64_t admissionsFull_ = 0;
  std::uint64_t admissionsDegraded_ = 0;
  std::uint64_t rejections_ = 0;
  std::uint64_t livelinessLosses_ = 0;
  std::uint64_t failovers_ = 0;
  std::uint64_t renegotiations_ = 0;
  std::uint64_t probes_ = 0;
  bool contractPlane_ = false;
  bool autoPush_ = false;
  bool refreshPending_ = false;  // coalesces bursts of repository changes
};

}  // namespace softqos::distribution
