// The Policy Agent (Section 6.2): processes register at startup with their
// pid, application, executable and user-role identifiers; the agent maps the
// registration to the applicable policies, compiles them against the
// executable's sensor inventory, and delivers them to the process
// coordinator. With auto-push enabled, repository changes re-deliver the
// (new) policy set to every affected running session — policies change
// without recompilation.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "distribution/repository.hpp"
#include "instrument/coordinator.hpp"
#include "policy/compile.hpp"
#include "sim/simulation.hpp"

namespace softqos::distribution {

class PolicyAgentError : public std::runtime_error {
 public:
  explicit PolicyAgentError(const std::string& message)
      : std::runtime_error(message) {}
};

class PolicyAgent {
 public:
  PolicyAgent(sim::Simulation& simulation, RepositoryService& repository);

  PolicyAgent(const PolicyAgent&) = delete;
  PolicyAgent& operator=(const PolicyAgent&) = delete;

  struct Registration {
    std::uint32_t pid = 0;
    std::string application;
    std::string executable;
    std::string role;
    instrument::Coordinator* coordinator = nullptr;  // must outlive the session
  };

  /// Register a starting process; compiles and installs its policies.
  /// Returns the number of policies delivered. Throws PolicyAgentError if
  /// the executable is unknown or a policy references an attribute no
  /// sensor of the executable can monitor.
  std::size_t registerProcess(const Registration& registration);

  /// Remove a session (process exit); its policies stay installed on the
  /// dead coordinator but no further pushes are delivered.
  void deregisterProcess(std::uint32_t pid);

  /// Re-deliver the applicable policy set to one session (run-time change).
  std::size_t refresh(std::uint32_t pid);

  /// Subscribe to repository changes: any change under ou=policies (or to
  /// reusable conditions/actions) refreshes every session.
  void enableAutoPush();

  [[nodiscard]] std::size_t sessionCount() const { return sessions_.size(); }
  [[nodiscard]] std::uint64_t registrations() const { return registrations_; }
  [[nodiscard]] std::uint64_t pushes() const { return pushes_; }

 private:
  std::vector<policy::CompiledPolicy> compileFor(const Registration& reg);

  sim::Simulation& sim_;
  RepositoryService& repository_;
  std::map<std::uint32_t, Registration> sessions_;
  int nextComparisonId_ = 1;
  std::uint64_t registrations_ = 0;
  std::uint64_t pushes_ = 0;
  bool autoPush_ = false;
  bool refreshPending_ = false;  // coalesces bursts of repository changes
};

}  // namespace softqos::distribution
