// The Quality of Resource Management System (Figure 1's outer box): one
// management process per deployment owning the policy repository, the policy
// agent, the admin application and the domain managers, with system-wide
// dynamic rule distribution.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "distribution/admin.hpp"
#include "distribution/policy_agent.hpp"
#include "distribution/repository.hpp"
#include "manager/domain_manager.hpp"
#include "manager/host_manager.hpp"
#include "net/network.hpp"
#include "sim/simulation.hpp"

namespace softqos::distribution {

class Qorms {
 public:
  Qorms(sim::Simulation& simulation, net::Network& network);

  Qorms(const Qorms&) = delete;
  Qorms& operator=(const Qorms&) = delete;

  [[nodiscard]] RepositoryService& repository() { return repository_; }
  [[nodiscard]] PolicyAgent& agent() { return agent_; }
  [[nodiscard]] AdminTool& admin() { return admin_; }

  /// Create the QoS Host Manager for a host (one per host).
  manager::QoSHostManager& createHostManager(
      osim::Host& host, manager::HostManagerConfig config = {});

  /// Create a QoS Domain Manager seated on `seat`, covering `hosts`.
  manager::QoSDomainManager& createDomainManager(
      osim::Host& seat, const std::string& name,
      const std::vector<std::string>& hosts,
      manager::DomainManagerConfig config = {});

  [[nodiscard]] std::vector<manager::QoSHostManager*> hostManagers();
  [[nodiscard]] std::vector<manager::QoSDomainManager*> domainManagers();
  [[nodiscard]] manager::QoSHostManager* hostManagerFor(
      const std::string& hostName);

  /// System-wide dynamic rule distribution (Section 9).
  void distributeHostRules(const std::string& ruleText);
  void distributeDomainRules(const std::string& ruleText);

  /// Arm the QoS contract plane: requested-vs-offered admission at the
  /// policy agent, its "renegotiate" RPC endpoint seated on `seat`, and
  /// contract rules pushed to every existing host manager. Host managers
  /// created afterwards must carry contractAgentHost in their config and
  /// load manager::contractHostRules() themselves.
  void enableContractPlane(osim::Host& seat, int port = 7200);

 private:
  sim::Simulation& sim_;
  net::Network& network_;
  RepositoryService repository_;
  PolicyAgent agent_;
  AdminTool admin_;
  std::vector<std::unique_ptr<manager::QoSHostManager>> hostManagers_;
  std::vector<std::unique_ptr<manager::QoSDomainManager>> domainManagers_;
};

}  // namespace softqos::distribution
