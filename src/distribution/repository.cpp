#include "distribution/repository.hpp"

namespace softqos::distribution {

using ldapdir::Dn;
using ldapdir::Entry;
using ldapdir::Filter;
using ldapdir::LdapResult;
using ldapdir::SearchScope;

RepositoryService::RepositoryService(bool enforceSchema)
    : directory_(Dn::parse("o=uwo"), ldapdir::informationModelSchema(),
                 enforceSchema) {
  for (const Entry& e : policy::dit::containerEntries()) {
    directory_.add(e);
  }
}

LdapResult RepositoryService::addApplication(const policy::ApplicationInfo& app) {
  return directory_.add(policy::toEntry(app));
}

LdapResult RepositoryService::addExecutable(const policy::ExecutableInfo& exec) {
  return directory_.add(policy::toEntry(exec));
}

LdapResult RepositoryService::addSensor(const policy::SensorInfo& sensor) {
  return directory_.add(policy::toEntry(sensor));
}

LdapResult RepositoryService::addRole(const policy::UserRole& role) {
  return directory_.add(policy::toEntry(role));
}

LdapResult RepositoryService::addPolicy(const policy::PolicySpec& spec) {
  // Refuse early if the policy entry exists (the inline condition/action
  // entries would otherwise be half-written).
  if (directory_.lookup(policy::dit::policies().child("cn", spec.name)) !=
      nullptr) {
    return LdapResult::kEntryAlreadyExists;
  }
  std::vector<Entry> entries = policy::policyToEntries(spec);
  std::vector<Dn> written;
  for (const Entry& e : entries) {
    const LdapResult r = directory_.add(e);
    if (r != LdapResult::kSuccess && r != LdapResult::kEntryAlreadyExists) {
      for (const Dn& dn : written) directory_.remove(dn);  // roll back
      return r;
    }
    if (r == LdapResult::kSuccess) written.push_back(e.dn());
  }
  return LdapResult::kSuccess;
}

bool RepositoryService::removePolicy(const std::string& name) {
  const Dn dn = policy::dit::policies().child("cn", name);
  const Entry* entry = directory_.lookup(dn);
  if (entry == nullptr) return false;

  // Drop inline condition/action entries created for this policy (their cn
  // carries the policy-name prefix); shared reusable entries stay.
  std::vector<Dn> toRemove;
  for (const char* attr : {"conditionref", "actionref"}) {
    if (const auto* refs = entry->values(attr)) {
      for (const std::string& ref : *refs) {
        if (ref.rfind(name + "-", 0) == 0) {
          toRemove.push_back(attr == std::string("conditionref")
                                 ? policy::dit::conditions().child("cn", ref)
                                 : policy::dit::actions().child("cn", ref));
        }
      }
    }
  }
  directory_.remove(dn);
  for (const Dn& d : toRemove) directory_.remove(d);
  return true;
}

LdapResult RepositoryService::addContract(const policy::ContractSpec& contract) {
  const Dn dn = policy::dit::contracts().child("cn", contract.name);
  if (directory_.lookup(dn) != nullptr) directory_.remove(dn);
  return directory_.add(policy::toEntry(contract));
}

bool RepositoryService::removeContract(const std::string& name) {
  return directory_.remove(policy::dit::contracts().child("cn", name)) ==
         LdapResult::kSuccess;
}

std::optional<policy::ApplicationInfo> RepositoryService::findApplication(
    const std::string& name) const {
  const Entry* e = directory_.lookup(policy::dit::applications().child("cn", name));
  if (e == nullptr) return std::nullopt;
  return policy::applicationFromEntry(*e);
}

std::optional<policy::ExecutableInfo> RepositoryService::findExecutable(
    const std::string& name) const {
  const Entry* e = directory_.lookup(policy::dit::executables().child("cn", name));
  if (e == nullptr) return std::nullopt;
  return policy::executableFromEntry(*e);
}

std::optional<policy::SensorInfo> RepositoryService::findSensor(
    const std::string& id) const {
  const Entry* e = directory_.lookup(policy::dit::sensors().child("cn", id));
  if (e == nullptr) return std::nullopt;
  return policy::sensorFromEntry(*e);
}

std::optional<policy::UserRole> RepositoryService::findRole(
    const std::string& name) const {
  const Entry* e = directory_.lookup(policy::dit::roles().child("cn", name));
  if (e == nullptr) return std::nullopt;
  return policy::roleFromEntry(*e);
}

std::optional<policy::PolicySpec> RepositoryService::findPolicy(
    const std::string& name) const {
  const Entry* e = directory_.lookup(policy::dit::policies().child("cn", name));
  if (e == nullptr) return std::nullopt;
  return policy::policyFromEntry(*e, directory_);
}

std::optional<policy::ContractSpec> RepositoryService::findContract(
    const std::string& name) const {
  const Entry* e = directory_.lookup(policy::dit::contracts().child("cn", name));
  if (e == nullptr) return std::nullopt;
  return policy::contractFromEntry(*e);
}

std::vector<std::string> RepositoryService::contractNames() const {
  std::vector<std::string> out;
  for (const Entry* e :
       directory_.search(policy::dit::contracts(), SearchScope::kOneLevel,
                         Filter::parse("(objectClass=qosContract)"))) {
    out.push_back(e->firstValue("cn").value_or(""));
  }
  return out;
}

std::optional<policy::ContractSpec> RepositoryService::offeredContractFor(
    const std::string& executable, const std::string& application) const {
  std::optional<policy::ContractSpec> best;
  for (const Entry* e :
       directory_.search(policy::dit::contracts(), SearchScope::kOneLevel,
                         Filter::parse("(&(objectClass=qosContract)"
                                       "(!(enabled=FALSE)))"))) {
    policy::ContractSpec c = policy::contractFromEntry(*e);
    if (!c.hasOffer || c.executable != executable) continue;
    if (!c.application.empty() && c.application != application) continue;
    // Application-specific offers shadow wildcard ones; among equals the
    // directory's deterministic search order keeps the first.
    if (!best.has_value() ||
        (best->application.empty() && !c.application.empty())) {
      best = std::move(c);
    }
  }
  return best;
}

std::optional<policy::ContractSpec> RepositoryService::requestedContractFor(
    const std::string& application, const std::string& role) const {
  std::optional<policy::ContractSpec> best;
  const auto specificity = [](const policy::ContractSpec& c) {
    return (c.userRole.empty() ? 0 : 2) + (c.application.empty() ? 0 : 1);
  };
  for (const Entry* e :
       directory_.search(policy::dit::contracts(), SearchScope::kOneLevel,
                         Filter::parse("(&(objectClass=qosContract)"
                                       "(!(enabled=FALSE)))"))) {
    policy::ContractSpec c = policy::contractFromEntry(*e);
    if (!c.hasRequest) continue;
    if (!c.userRole.empty() && c.userRole != role) continue;
    if (!c.application.empty() && c.application != application) continue;
    if (!best.has_value() || specificity(c) > specificity(*best)) {
      best = std::move(c);
    }
  }
  return best;
}

std::vector<std::string> RepositoryService::policyNames() const {
  std::vector<std::string> out;
  for (const Entry* e :
       directory_.search(policy::dit::policies(), SearchScope::kOneLevel,
                         Filter::parse("(objectClass=qosPolicy)"))) {
    out.push_back(e->firstValue("cn").value_or(""));
  }
  return out;
}

std::vector<policy::PolicySpec> RepositoryService::policiesFor(
    const std::string& application, const std::string& executable,
    const std::string& role) const {
  const Filter filter = Filter::parse(
      "(&(objectClass=qosPolicy)(executableRef=" + executable +
      ")(!(enabled=FALSE)))");
  std::vector<policy::PolicySpec> out;
  for (const Entry* e : directory_.search(policy::dit::policies(),
                                          SearchScope::kOneLevel, filter)) {
    policy::PolicySpec spec = policy::policyFromEntry(*e, directory_);
    const bool appMatches = spec.application.empty() ||
                            spec.application == "*" ||
                            spec.application == application;
    const bool roleMatches = spec.userRole.empty() || spec.userRole == role;
    if (appMatches && roleMatches) out.push_back(std::move(spec));
  }
  return out;
}

ldapdir::LdifApplyStats RepositoryService::uploadLdif(const std::string& text) {
  return ldapdir::applyLdif(directory_, text);
}

std::string RepositoryService::exportLdif() const {
  return ldapdir::toLdif(directory_);
}

}  // namespace softqos::distribution
