// The policy administration application (Sections 6.2 and 7): authorized
// administrators add/remove/browse policies. Before upload the tool performs
// the paper's information-integrity checks:
//   1. the policy applies to an executable whose sensors can monitor every
//      attribute the policy's conditions reference;
//   2. every action is either a method invocation on one of those sensors or
//      a notification to the QoS Host Manager whose payload is non-empty and
//      based on data returned by sensors.
// Valid policies are translated to LDIF and uploaded to the repository.
#pragma once

#include <string>
#include <vector>

#include "distribution/repository.hpp"
#include "policy/parser.hpp"

namespace softqos::distribution {

class AdminTool {
 public:
  explicit AdminTool(RepositoryService& repository);

  struct CheckResult {
    bool ok = true;
    std::vector<std::string> problems;
  };

  /// The integrity checks, without writing anything.
  [[nodiscard]] CheckResult checkPolicy(const policy::PolicySpec& spec) const;

  /// Check, translate to LDIF, and upload. On failure nothing is written and
  /// the problems are returned.
  CheckResult addPolicy(const policy::PolicySpec& spec);

  /// Parse the obligation notation (Example 1), fill in applicability, then
  /// addPolicy. Parse errors are reported as problems.
  CheckResult addPolicyText(const std::string& obligText,
                            const std::string& application,
                            const std::string& role);

  bool removePolicy(const std::string& name);
  bool disablePolicy(const std::string& name);
  bool enablePolicy(const std::string& name);

  [[nodiscard]] std::vector<std::string> listPolicies() const;

  /// The LDIF the tool uploads for this policy (browsing / audit).
  [[nodiscard]] std::string policyLdif(const policy::PolicySpec& spec) const;

 private:
  RepositoryService& repository_;
};

}  // namespace softqos::distribution
