// The Repository Service (Section 6.2): storage and retrieval of the
// information-model data, backed by the LDAP-style directory.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ldapdir/directory.hpp"
#include "ldapdir/ldif.hpp"
#include "policy/ldap_mapping.hpp"
#include "policy/model.hpp"

namespace softqos::distribution {

class RepositoryService {
 public:
  explicit RepositoryService(bool enforceSchema = true);

  RepositoryService(const RepositoryService&) = delete;
  RepositoryService& operator=(const RepositoryService&) = delete;

  [[nodiscard]] ldapdir::Directory& directory() { return directory_; }
  [[nodiscard]] const ldapdir::Directory& directory() const { return directory_; }

  // ---- Model CRUD ----
  ldapdir::LdapResult addApplication(const policy::ApplicationInfo& app);
  ldapdir::LdapResult addExecutable(const policy::ExecutableInfo& exec);
  ldapdir::LdapResult addSensor(const policy::SensorInfo& sensor);
  ldapdir::LdapResult addRole(const policy::UserRole& role);

  /// Store a policy (and its inline condition/action entries). Fails without
  /// side effects if the policy entry already exists.
  ldapdir::LdapResult addPolicy(const policy::PolicySpec& spec);
  bool removePolicy(const std::string& name);

  /// Store a QoS contract (offered/requested sets under ou=contracts).
  /// Re-adding an existing name replaces the entry (contracts are tuned at
  /// run time; the policy agent re-runs admission on refresh).
  ldapdir::LdapResult addContract(const policy::ContractSpec& contract);
  bool removeContract(const std::string& name);

  [[nodiscard]] std::optional<policy::ApplicationInfo> findApplication(
      const std::string& name) const;
  [[nodiscard]] std::optional<policy::ExecutableInfo> findExecutable(
      const std::string& name) const;
  [[nodiscard]] std::optional<policy::SensorInfo> findSensor(
      const std::string& id) const;
  [[nodiscard]] std::optional<policy::UserRole> findRole(
      const std::string& name) const;
  [[nodiscard]] std::optional<policy::PolicySpec> findPolicy(
      const std::string& name) const;
  [[nodiscard]] std::optional<policy::ContractSpec> findContract(
      const std::string& name) const;

  [[nodiscard]] std::vector<std::string> policyNames() const;
  [[nodiscard]] std::vector<std::string> contractNames() const;

  /// Policies applicable to a registering process (Section 6.2): enabled,
  /// matching executable, application (exact or wildcard) and user role
  /// (role-specific policies apply only to that role; role-less policies
  /// apply to everyone).
  [[nodiscard]] std::vector<policy::PolicySpec> policiesFor(
      const std::string& application, const std::string& executable,
      const std::string& role) const;

  /// The offered QoS for a registering process: the enabled offering
  /// contract matching its executable (application-specific entries win
  /// over wildcard ones). nullopt: the executable offers no contract.
  [[nodiscard]] std::optional<policy::ContractSpec> offeredContractFor(
      const std::string& executable, const std::string& application) const;

  /// The requested QoS applicable to a registration: the enabled requesting
  /// contract matching its role (role-specific entries win over role-less
  /// ones; application likewise). nullopt: nothing requested — admission
  /// control does not apply.
  [[nodiscard]] std::optional<policy::ContractSpec> requestedContractFor(
      const std::string& application, const std::string& role) const;

  // ---- LDIF interchange ----
  ldapdir::LdifApplyStats uploadLdif(const std::string& text);
  [[nodiscard]] std::string exportLdif() const;

 private:
  ldapdir::Directory directory_;
};

}  // namespace softqos::distribution
