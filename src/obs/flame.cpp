#include "obs/flame.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "obs/span_tree.hpp"

namespace softqos::obs {
namespace {

void appendEscaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

[[nodiscard]] std::string frameName(const SampledSpan& span,
                                    const FlameConfig& config) {
  if (!config.includeComponent || span.component.empty()) return span.name;
  std::string out = span.name;
  out += '@';
  out += span.component;
  return out;
}

}  // namespace

FlameGraph::FlameGraph(FlameConfig config) : config_(config) {}

void FlameGraph::add(const std::vector<SampledSpan>& spans) {
  const std::optional<SpanTree> treeOpt = SpanTree::build(spans);
  if (!treeOpt) {
    ++skipped_;
    return;
  }
  const SpanTree& tree = *treeOpt;
  ++added_;

  // Iterative DFS carrying the frame stack and each node's *allocated*
  // interval. A node's window [lo, hi) is partitioned exclusively: children
  // are allocated disjoint subintervals in start order (overlap between
  // concurrent siblings is credited to the earlier-starting one, ties to
  // mint order), each subtree is clipped to its allocation, and the parent
  // keeps whatever no child claimed. Exclusive partition makes the tree's
  // self-weights sum *identically* to the root envelope — the invariant the
  // critical-path analyzer and the bench gates rely on — even when sibling
  // spans overlap in time.
  struct Item {
    std::size_t idx;
    sim::SimTime lo, hi;
    bool entered;
  };
  std::vector<std::string> frames;
  std::vector<Item> work;
  work.push_back({tree.root, spans[tree.root].start, tree.effEnd[tree.root],
                  false});
  while (!work.empty()) {
    const Item item = work.back();
    if (item.entered) {
      frames.pop_back();
      work.pop_back();
      continue;
    }
    // Flag via the container, not a reference: the push_back below may
    // reallocate.
    work.back().entered = true;
    frames.push_back(frameName(spans[item.idx], config_));

    std::vector<std::size_t> kids = tree.children[item.idx];
    std::sort(kids.begin(), kids.end(),
              [&spans](std::size_t a, std::size_t b) {
                if (spans[a].start != spans[b].start) {
                  return spans[a].start < spans[b].start;
                }
                return a < b;  // mint order: deterministic tie-break
              });
    sim::SimTime cursor = item.lo;
    sim::SimDuration covered = 0;
    std::vector<Item> alloc;
    alloc.reserve(kids.size());
    for (const std::size_t child : kids) {
      const sim::SimTime a = std::max(spans[child].start, cursor);
      const sim::SimTime b = std::min(tree.effEnd[child], item.hi);
      if (b <= a) continue;  // fully shadowed by an earlier sibling
      alloc.push_back({child, a, b, false});
      covered += b - a;
      cursor = b;
    }
    const sim::SimDuration self = (item.hi - item.lo) - covered;
    if (self > 0) {
      stacks_[frames] += self;
      total_ += self;
    }
    for (std::size_t i = alloc.size(); i-- > 0;) work.push_back(alloc[i]);
  }
}

void FlameGraph::addRetained(const TraceSampler& sampler) {
  std::vector<const SampledTrace*> traces = sampler.retained();
  std::sort(traces.begin(), traces.end(),
            [&sampler](const SampledTrace* a, const SampledTrace* b) {
              return sampler.canonicalTraceId(a->provisionalTraceId)
                         .value_or(0) <
                     sampler.canonicalTraceId(b->provisionalTraceId)
                         .value_or(0);
            });
  for (const SampledTrace* t : traces) {
    if (!t->complete) {
      ++skipped_;
      continue;
    }
    add(t->spans);
  }
}

void FlameGraph::add(const Observer& observer) {
  std::map<std::uint64_t, std::vector<SampledSpan>> traces;
  std::vector<std::uint64_t> order;
  for (const Span& s : observer.spans()) {
    auto [it, inserted] = traces.try_emplace(s.traceId);
    if (inserted) order.push_back(s.traceId);
    SampledSpan converted;
    converted.spanId = s.spanId;
    converted.parentSpanId = s.parentSpanId;
    converted.start = s.start;
    converted.end = s.open() ? -1 : s.end;
    converted.name = s.name;
    converted.component = s.component;
    it->second.push_back(std::move(converted));
  }
  for (const std::uint64_t traceId : order) add(traces[traceId]);
}

std::string FlameGraph::collapsed() const {
  std::string out;
  for (const auto& [frames, weight] : stacks_) {
    std::string line;
    for (const std::string& frame : frames) {
      if (!line.empty()) line += ';';
      line += frame;
    }
    out += line;
    out += ' ';
    out += std::to_string(weight);
    out += '\n';
  }
  return out;
}

std::string FlameGraph::speedscopeJson(std::string_view profileName) const {
  // Intern frames in first-appearance order over the sorted stacks.
  std::map<std::string, std::size_t> frameIndex;
  std::vector<const std::string*> frameNames;
  for (const auto& [frames, weight] : stacks_) {
    for (const std::string& frame : frames) {
      const auto [it, inserted] = frameIndex.emplace(frame, frameNames.size());
      if (inserted) frameNames.push_back(&it->first);
    }
  }

  std::string out;
  out += "{\n  \"$schema\": \"https://www.speedscope.app/file-format-schema.json\",\n";
  out += "  \"shared\": {\"frames\": [";
  for (std::size_t i = 0; i < frameNames.size(); ++i) {
    if (i > 0) out += ", ";
    out += "{\"name\": \"";
    appendEscaped(out, *frameNames[i]);
    out += "\"}";
  }
  out += "]},\n  \"profiles\": [{\n    \"type\": \"sampled\",\n    \"name\": \"";
  appendEscaped(out, profileName);
  out += "\",\n    \"unit\": \"microseconds\",\n    \"startValue\": 0,\n";
  out += "    \"endValue\": " + std::to_string(total_) + ",\n";
  out += "    \"samples\": [";
  bool first = true;
  for (const auto& [frames, weight] : stacks_) {
    if (!first) out += ", ";
    first = false;
    out += '[';
    for (std::size_t i = 0; i < frames.size(); ++i) {
      if (i > 0) out += ',';
      out += std::to_string(frameIndex[frames[i]]);
    }
    out += ']';
  }
  out += "],\n    \"weights\": [";
  first = true;
  for (const auto& [frames, weight] : stacks_) {
    if (!first) out += ", ";
    first = false;
    out += std::to_string(weight);
  }
  out += "]\n  }]\n}\n";
  return out;
}

}  // namespace softqos::obs
