// Critical-path latency attribution over retained episode span trees.
//
// The paper's central quantity is management reaction latency — detect ->
// diagnose -> actuate -> recover (Fig. 3) — and since PR 9 the tail sampler
// retains exactly the interesting episode trees. This analyzer turns a
// retained tree into an answer to "where did the latency go": it walks the
// tree backwards from the envelope-normalized root end, always descending
// into the latest-finishing child, which partitions the whole root duration
// into contiguous critical-path segments, each attributed to exactly one
// span (by construction the segment durations sum to the root's envelope
// duration — the invariant the tests and the bench gate assert).
//
// Each segment carries two classifications:
//
//  * a canonical *segment label* mapping the owning span (and its position
//    under the root) onto the paper's reaction pipeline:
//      sense-report  time between the detection instant and the first
//                    diagnose/decay span — report transit + queueing
//      diagnose      self-time inside diagnose/decay/fault-localization
//                    spans outside any instrumented rule firing
//      rule-match    self-time inside rule:<name> firing spans
//      actuate-rpc   self-time inside rpc:/serve: actuation call spans
//      recover       root-owned time after diagnosis — actuation issued,
//                    waiting for the condition to clear
//      other         anything unrecognized (kept so the sum stays exact)
//
//  * a *wait* bit: a segment whose upper bound is the start of an on-path
//    child owned by a different component is queueing/transit toward that
//    component (the work had been handed off but had not started); segments
//    bounded by same-component children or trailing a span are self-time.
//
// Aggregations: per-segment sim::Histograms (one sample per episode), a
// per-component blame table (self vs wait), and a per-rule table. Everything
// is computed from retained trees in canonical trace order, so every export
// derived from the analyzer is byte-identical across shard and worker counts.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/observer.hpp"
#include "obs/sampler.hpp"
#include "sim/metrics.hpp"
#include "sim/time.hpp"

namespace softqos::obs {

/// Canonical segment labels (see file comment).
inline constexpr std::string_view kSegSenseReport = "sense-report";
inline constexpr std::string_view kSegDiagnose = "diagnose";
inline constexpr std::string_view kSegRuleMatch = "rule-match";
inline constexpr std::string_view kSegActuateRpc = "actuate-rpc";
inline constexpr std::string_view kSegRecover = "recover";
inline constexpr std::string_view kSegOther = "other";

/// All labels in canonical (pipeline) order.
[[nodiscard]] const std::vector<std::string>& allSegmentLabels();

/// One critical-path segment: [start, end) attributed to `spanName` on
/// `component`, classified under `segment`.
struct PathSegment {
  sim::SimTime start = 0;
  sim::SimTime end = 0;
  std::string segment;
  std::string spanName;
  std::string component;
  bool wait = false;

  [[nodiscard]] sim::SimDuration duration() const { return end - start; }
};

/// One analyzed episode: the critical path of a retained trace.
struct EpisodeAttribution {
  /// Canonical retained id (sampler input) or the store's trace id
  /// (Observer input); 0 for hand-built trees.
  std::uint64_t traceId = 0;
  std::string rootName;
  std::string rootComponent;
  sim::SimTime rootStart = 0;
  /// Envelope-normalized: covers the latest descendant.
  sim::SimTime rootEnd = 0;
  /// Segments in time order, exactly covering [rootStart, rootEnd].
  std::vector<PathSegment> segments;

  [[nodiscard]] sim::SimDuration rootDuration() const {
    return rootEnd - rootStart;
  }
  /// Sum of all segment durations (== rootDuration() by construction).
  [[nodiscard]] sim::SimDuration segmentSum() const;
  /// Total attributed to one canonical label.
  [[nodiscard]] sim::SimDuration segmentTotal(std::string_view label) const;
};

/// Blame-table rows (microseconds of attributed critical-path time).
struct ComponentBlame {
  std::string component;
  sim::SimDuration selfUs = 0;
  sim::SimDuration waitUs = 0;  // queueing/transit toward this component
  std::uint64_t segments = 0;

  [[nodiscard]] sim::SimDuration totalUs() const { return selfUs + waitUs; }
};

struct RuleBlame {
  std::string rule;
  sim::SimDuration selfUs = 0;
  /// Critical-path segments owned by this rule's firing spans (== firings
  /// for the common leaf-rule case).
  std::uint64_t segments = 0;
};

struct CriticalPathConfig {
  /// Only traces whose root name starts with this prefix are episodes;
  /// everything else (contract instants, ad-hoc traces) is counted and
  /// skipped.
  std::string rootPrefix = "episode";
};

class CriticalPathAnalyzer {
 public:
  explicit CriticalPathAnalyzer(CriticalPathConfig config = {});

  /// Analyze every retained trace, in canonical trace order (the same order
  /// the Chrome exporter uses), so aggregate state and exports are a pure
  /// function of the retained set. Incomplete trees are counted and skipped.
  void analyze(const TraceSampler& sampler);

  /// Analyze every trace in the span store (closed roots only); trace order
  /// is store order, which is mint order and therefore deterministic.
  void analyze(const Observer& observer);

  /// Analyze one mint-ordered span tree. Returns nullopt (and bumps the
  /// skip counters) when the tree has no closed root or the root name
  /// misses the configured prefix. `traceId` labels the result.
  std::optional<EpisodeAttribution> analyzeTree(
      const std::vector<SampledSpan>& spans, std::uint64_t traceId);

  // -- results -------------------------------------------------------------
  [[nodiscard]] const std::vector<EpisodeAttribution>& episodes() const {
    return episodes_;
  }
  /// Per-label histograms over per-episode attributed microseconds.
  [[nodiscard]] const std::map<std::string, sim::Histogram>&
  segmentHistograms() const {
    return segments_;
  }
  /// End-to-end (envelope) reaction latency per analyzed episode, in us.
  [[nodiscard]] const sim::Histogram& reactionHistogram() const {
    return reaction_;
  }
  /// Components ranked by attributed self-time (ties: wait, then name);
  /// topK == 0 returns every component.
  [[nodiscard]] std::vector<ComponentBlame> componentBlame(
      std::size_t topK = 0) const;
  /// Rules ranked by on-path self-time (ties: name); topK == 0 = all.
  [[nodiscard]] std::vector<RuleBlame> ruleBlame(std::size_t topK = 0) const;

  // -- counters ------------------------------------------------------------
  [[nodiscard]] std::uint64_t episodesAnalyzed() const { return analyzed_; }
  /// Trees skipped because the root never closed (crash artifacts).
  [[nodiscard]] std::uint64_t incompleteSkipped() const { return incomplete_; }
  /// Trees skipped because the root name misses the episode prefix.
  [[nodiscard]] std::uint64_t nonEpisodeSkipped() const { return nonEpisode_; }
  /// Spans excluded because their parent was missing from the tree.
  [[nodiscard]] std::uint64_t orphanSpans() const { return orphanSpans_; }

  [[nodiscard]] const CriticalPathConfig& config() const { return config_; }

 private:
  void accumulate(const EpisodeAttribution& episode);

  CriticalPathConfig config_;
  std::vector<EpisodeAttribution> episodes_;
  std::map<std::string, sim::Histogram> segments_;
  sim::Histogram reaction_;
  std::map<std::string, ComponentBlame> components_;
  std::map<std::string, RuleBlame> rules_;
  std::uint64_t analyzed_ = 0;
  std::uint64_t incomplete_ = 0;
  std::uint64_t nonEpisode_ = 0;
  std::uint64_t orphanSpans_ = 0;
};

}  // namespace softqos::obs
