// Flame-graph aggregation over retained episode span trees.
//
// Where the critical-path analyzer answers "where did *this* episode's
// latency go", the flame graph answers the aggregate question: across every
// retained tree, which call stacks (episode -> diagnose -> rule -> rpc)
// accumulated the most sim-clock self-time. Frames are span names (the
// instrumented vocabulary: "episode:*", "diagnose", "rule:<name>",
// "rpc:<method>", ...). Each node's envelope is partitioned *exclusively*:
// children are allocated disjoint subintervals in start order (overlap
// between concurrent siblings goes to the earlier-starting one), subtrees
// are clipped to their allocation, and the parent's self-weight is whatever
// no child claimed — so self-weights sum identically to the root envelope
// durations, overlap or not.
//
// Two export formats:
//   * collapsed()       Brendan Gregg collapsed-stack lines
//                       ("a;b;c <weight>\n", sorted), ready for
//                       flamegraph.pl or speedscope's importer;
//   * speedscopeJson()  a speedscope "sampled" profile (one sample per
//                       unique stack, weighted, unit microseconds).
//
// Aggregation state is a sorted map keyed by the frame stack and all inputs
// are consumed in canonical trace order, so both exports are byte-identical
// across shard and worker counts for the same retained set.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/observer.hpp"
#include "obs/sampler.hpp"
#include "sim/time.hpp"

namespace softqos::obs {

struct FlameConfig {
  /// Suffix each frame with "@<component>". Off by default so stacks
  /// aggregate across hosts (1024 per-host frames make poor flame graphs);
  /// turn on to split the same pipeline stage by host.
  bool includeComponent = false;
};

class FlameGraph {
 public:
  explicit FlameGraph(FlameConfig config = {});

  /// Fold one mint-ordered span tree into the aggregate. Trees without a
  /// root are counted in skipped() and ignored.
  void add(const std::vector<SampledSpan>& spans);

  /// Fold every *complete* retained trace, in canonical trace order;
  /// incomplete trees (open roots at shutdown) count as skipped.
  void addRetained(const TraceSampler& sampler);

  /// Fold every trace in the span store (store order = mint order).
  void add(const Observer& observer);

  /// Brendan Gregg collapsed-stack format: "frame;frame;... weight\n" per
  /// unique stack, sorted by stack; weights are sim-clock microseconds.
  [[nodiscard]] std::string collapsed() const;

  /// speedscope (https://www.speedscope.app) JSON, "sampled" profile with
  /// one weighted sample per unique stack.
  [[nodiscard]] std::string speedscopeJson(
      std::string_view profileName = "softqos episodes") const;

  /// Aggregated stacks and their self-weights (sorted by stack).
  [[nodiscard]] const std::map<std::vector<std::string>, sim::SimDuration>&
  stacks() const {
    return stacks_;
  }
  /// Total self-weight == sum of folded root envelope durations.
  [[nodiscard]] sim::SimDuration totalWeight() const { return total_; }
  [[nodiscard]] std::uint64_t tracesAdded() const { return added_; }
  [[nodiscard]] std::uint64_t skipped() const { return skipped_; }

  [[nodiscard]] const FlameConfig& config() const { return config_; }

 private:
  FlameConfig config_;
  std::map<std::vector<std::string>, sim::SimDuration> stacks_;
  sim::SimDuration total_ = 0;
  std::uint64_t added_ = 0;
  std::uint64_t skipped_ = 0;
};

}  // namespace softqos::obs
