// Tail-based trace sampling for city-scale runs.
//
// The span-store Observer keeps every span, which cannot survive 1024 hosts
// emitting episode traces for hours. obs::TraceSampler implements
// sim::SpanObserver as a *deferred-decision* sink: during the run each shard
// appends fixed-size span records to its own buffer (no locks, no
// cross-shard state — the sampler is shardSafe() and stays attached through
// windowed parallel runs). At deterministic flush points (between runs, on
// the sim clock) the per-shard buffers are k-way merged in (when, shard,
// seq) order — the same tie-break the kernel uses for cross-shard mail — and
// folded into per-trace pending trees. When a trace completes (root span
// closed, no spans still open) a retention policy decides its fate:
//
//   * a span/instant whose name starts with a configured trigger prefix
//     (fault localization, contract-plane events, ...) retains the trace;
//   * an explicit annotate(ctx, "sampler.retain", reason) retains it;
//   * a root duration >= slowThreshold (deadline violation) retains it;
//   * a slowest-K reservoir retains the K slowest completed traces seen so
//     far (streaming top-K under a total order, so the surviving set is
//     independent of completion interleaving);
//   * a seeded per-trace baseline draw retains a configured fraction of
//     healthy traces (hash of the trace's shard-invariant key, no stream
//     state, so the decision is independent of processing order);
//   * everything else folds its root duration into the sampler's private
//     stats registry and is dropped.
//
// Provisional trace/span ids are minted per shard as
// (1<<48) | shard<<40 | seq. All such ids render as exactly 15 decimal
// digits, so RPC frames and report payloads carrying a serialized context
// have the same byte length at every shard count — payload length feeds the
// simulated transmission time, so this keeps serial and sharded runs
// behaviorally identical. Exports renumber retained traces canonically
// (sorted by root start/name/component), which makes the retained set
// byte-identical across shard *and* worker counts.
//
// Memory is bounded everywhere: per-shard record buffers, the pending
// (incomplete-trace) set and the retained store all have caps, and every
// eviction is counted and deterministic.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/metrics.hpp"
#include "sim/simulation.hpp"
#include "sim/span.hpp"

namespace softqos::obs {

struct SamplerConfig {
  /// Span/instant name prefixes that force retention of the whole trace.
  std::vector<std::string> retainNamePrefixes = {"fault-localization",
                                                 "contract:"};
  /// Retain traces whose root span lasted at least this long (0 = off).
  sim::SimDuration slowThreshold = 0;
  /// A trace whose root closed only graduates at a flush() once the root
  /// has been closed at least this long (sim time): asynchronous spans that
  /// trail the root close — a domain manager's diagnosis finishing under an
  /// already-cleared episode — still land in the tree instead of orphaning.
  /// 0 graduates at the first flush after the root closes.
  sim::SimDuration completionLinger = sim::msec(50);
  /// Keep the K slowest completed traces regardless of triggers (0 = off).
  std::size_t slowestReservoir = 0;
  /// Fraction of otherwise-dropped traces retained as a healthy baseline,
  /// decided by a seeded hash of the trace key (0 = off).
  double baselineProbability = 0.0;
  /// Per-shard span-record buffer cap; records past it are dropped and
  /// counted. Sized for the interval between flushes.
  std::size_t maxRecordsPerShard = 1u << 20;
  /// Incomplete traces kept pending across flushes; the oldest (by root
  /// start) are evicted past this and counted.
  std::size_t maxPendingTraces = 8192;
  /// Total spans across retained traces; the oldest retained traces are
  /// evicted past this (reservoir members are exempt until they lose their
  /// reservoir slot).
  std::size_t maxRetainedSpans = 1u << 16;
};

/// One reconstructed span of a retained trace (provisional ids; exports
/// remap them to canonical ones).
struct SampledSpan {
  std::uint64_t spanId = 0;
  std::uint64_t parentSpanId = 0;  // 0 = root
  sim::SimTime start = 0;
  sim::SimTime end = -1;  // -1 = never closed (shutdown artifact)
  std::string name;
  std::string component;
  std::vector<std::pair<std::string, std::string>> annotations;

  [[nodiscard]] bool open() const { return end < 0; }
};

/// One retained trace: the reconstructed span tree plus why it was kept.
struct SampledTrace {
  std::uint64_t provisionalTraceId = 0;
  sim::SimTime rootStart = 0;
  sim::SimTime rootEnd = -1;
  std::string rootName;
  std::string rootComponent;
  /// "trigger:<prefix>", "mark:<reason>", "slow", "reservoir", "baseline".
  std::string reason;
  /// False when the trace never completed (flushed open at shutdown).
  bool complete = true;
  std::vector<SampledSpan> spans;

  [[nodiscard]] sim::SimDuration rootDuration() const {
    return rootEnd >= rootStart ? rootEnd - rootStart : 0;
  }
};

class TraceSampler final : public sim::SpanObserver {
 public:
  /// Attaches to `sim`. The sampler must outlive its attachment (detach()
  /// or destruction ends it).
  explicit TraceSampler(sim::Simulation& sim, SamplerConfig config = {});
  ~TraceSampler() override;

  TraceSampler(const TraceSampler&) = delete;
  TraceSampler& operator=(const TraceSampler&) = delete;

  void detach();

  // -- sim::SpanObserver --------------------------------------------------
  [[nodiscard]] bool shardSafe() const override { return true; }
  sim::TraceContext beginTrace(sim::SimTime now, std::string_view name,
                               std::string_view component) override;
  sim::TraceContext beginSpan(sim::SimTime now, const sim::TraceContext& parent,
                              std::string_view name,
                              std::string_view component) override;
  void endSpan(sim::SimTime now, const sim::TraceContext& span) override;
  void annotate(const sim::TraceContext& span, std::string_view key,
                std::string_view value) override;
  sim::TraceContext instant(sim::SimTime now, const sim::TraceContext& parent,
                            std::string_view name,
                            std::string_view component) override;
  /// Kernel/component profiling is the serial Observer's job; the sampler
  /// ignores both hooks (they would race across shards).
  void onEventExecuted(sim::SimTime now, std::size_t depth,
                       std::uint64_t wallNanos) override;
  void recordProfile(std::string_view component,
                     std::uint64_t wallNanos) override;

  /// Annotation key that force-retains the enclosing trace.
  static constexpr std::string_view kRetainKey = "sampler.retain";

  // -- flush / results ----------------------------------------------------

  /// Merge the per-shard buffers and resolve completed traces. Must be
  /// called between runs (never while worker threads execute); calling it
  /// at the same sim times makes serial and sharded runs resolve the same
  /// retained set.
  void flush();

  /// flush(), then resolve every still-pending trace: traces held back only
  /// by the completion linger resolve as complete, genuinely open ones as
  /// incomplete (their retention policy still applies, minus the
  /// slow/reservoir tests that need a closed root). Call once at end of run.
  void finalFlush();

  /// Retained traces in retention order (reservoir members included, in
  /// their current reservoir order, after the policy-retained ones).
  [[nodiscard]] std::vector<const SampledTrace*> retained() const;

  /// Canonical id (1-based, dense, sorted by root start/name/component) for
  /// a retained trace's provisional id; nullopt when the trace was dropped.
  [[nodiscard]] std::optional<std::uint64_t> canonicalTraceId(
      std::uint64_t provisionalTraceId) const;

  // -- counters ------------------------------------------------------------
  [[nodiscard]] std::uint64_t totalTraces() const { return totalTraces_; }
  [[nodiscard]] std::uint64_t totalSpans() const { return totalSpans_; }
  [[nodiscard]] std::uint64_t retainedCount() const { return retainedCount_; }
  [[nodiscard]] std::uint64_t droppedTraces() const { return droppedTraces_; }
  /// Records lost to a full per-shard buffer (silent-truncation signal).
  [[nodiscard]] std::uint64_t droppedRecords() const;
  /// Records referencing a trace already evicted from the pending set.
  [[nodiscard]] std::uint64_t orphanRecords() const { return orphanRecords_; }
  [[nodiscard]] std::uint64_t evictedPending() const { return evictedPending_; }
  [[nodiscard]] std::uint64_t evictedRetained() const {
    return evictedRetained_;
  }
  [[nodiscard]] std::uint64_t reservoirEvictions() const {
    return reservoirEvictions_;
  }
  /// Spans currently held across retained + reservoir traces.
  [[nodiscard]] std::size_t retainedSpanCount() const {
    return retainedSpans_;
  }

  /// Private stats registry: dropped-trace duration histograms
  /// ("sampler.dropped_duration_us", plus one per root name) and decision
  /// counters. Never attached to the simulation, so arming the sampler
  /// cannot perturb a run's metric digests.
  [[nodiscard]] const sim::MetricRegistry& stats() const { return stats_; }

  [[nodiscard]] const SamplerConfig& config() const { return config_; }

 private:
  enum class Op : std::uint8_t { kBegin, kEnd, kAnnotate };

  struct Rec {
    sim::SimTime when = 0;
    std::uint32_t shard = 0;
    std::uint64_t seq = 0;
    Op op = Op::kBegin;
    std::uint64_t traceId = 0;
    std::uint64_t spanId = 0;
    std::uint64_t parentSpanId = 0;  // kBegin only
    std::string a;                   // kBegin: name; kAnnotate: key
    std::string b;                   // kBegin: component; kAnnotate: value
  };

  struct ShardBuf {
    std::vector<Rec> recs;
    std::uint64_t nextSeq = 1;
    std::uint64_t dropped = 0;
  };

  struct Pending {
    SampledTrace trace;
    std::map<std::uint64_t, std::size_t> spanIndex;  // spanId -> spans index
    int openSpans = 0;
    bool rootClosed = false;
    bool sawRoot = false;
    std::string retainReason;  // non-empty once a trigger/mark fired
  };

  [[nodiscard]] ShardBuf& buf();
  [[nodiscard]] std::uint64_t mintId(ShardBuf& b);
  void push(Rec rec);
  void ingest(Rec& rec);
  /// Resolve one completed (or force-closed) trace against the policy.
  void resolve(Pending&& pending, bool complete);
  void retain(SampledTrace&& trace, std::string reason);
  void dropFold(const SampledTrace& trace);
  void enforcePendingCap();
  void enforceRetainedCap();
  void rebuildCanonical() const;

  /// Shard-invariant total order on traces: (rootStart, rootName,
  /// rootComponent, provisionalTraceId). The provisional-id tie-break is
  /// only reached for traces identical in time, name and component.
  [[nodiscard]] static bool traceKeyLess(const SampledTrace& x,
                                         const SampledTrace& y);

  sim::Simulation* sim_ = nullptr;
  std::uint64_t seed_ = 0;
  SamplerConfig config_;
  std::vector<std::unique_ptr<ShardBuf>> buffers_;  // one slot per shard id

  std::map<std::uint64_t, Pending> pending_;  // provisional trace id ->
  std::deque<SampledTrace> retained_;         // retention order
  std::vector<SampledTrace> reservoir_;       // slowest-K, sorted slowest-first
  // Lazily rebuilt on the first canonicalTraceId() after a flush.
  mutable std::map<std::uint64_t, std::uint64_t> canonical_;
  mutable bool canonicalDirty_ = false;

  sim::MetricRegistry stats_;
  sim::HistogramHandle droppedDuration_;
  std::size_t retainedSpans_ = 0;
  std::uint64_t totalTraces_ = 0;
  std::uint64_t totalSpans_ = 0;
  std::uint64_t retainedCount_ = 0;
  std::uint64_t droppedTraces_ = 0;
  std::uint64_t orphanRecords_ = 0;
  std::uint64_t evictedPending_ = 0;
  std::uint64_t evictedRetained_ = 0;
  std::uint64_t reservoirEvictions_ = 0;
};

}  // namespace softqos::obs
