#include "obs/observer.hpp"

namespace softqos::obs {

Observer::Observer(sim::Simulation& sim) : sim_(&sim) {
  queueDepth_ = sim.metrics().histogramHandle("evq.depth");
  callbackNanos_ = sim.metrics().histogramHandle("evq.callback_ns");
  sim.setObserver(this);
}

Observer::~Observer() { detach(); }

void Observer::detach() {
  if (sim_ != nullptr && sim_->observer() == this) sim_->setObserver(nullptr);
  sim_ = nullptr;
}

Span& Observer::mint(sim::SimTime now, std::uint64_t traceId,
                     std::uint64_t parentId, std::string_view name,
                     std::string_view component) {
  Span& s = spans_.emplace_back();
  s.spanId = nextSpanId_++;
  s.traceId = traceId;
  s.parentSpanId = parentId;
  s.start = now;
  s.name.assign(name);
  s.component.assign(component);
  if (maxSpans_ != 0 && spans_.size() > maxSpans_) {
    spans_.pop_front();
    ++baseSpanId_;
    ++dropped_;
  }
  return spans_.back();
}

Span* Observer::lookup(std::uint64_t spanId) {
  if (spanId < baseSpanId_) return nullptr;  // evicted by the ring cap
  const std::uint64_t idx = spanId - baseSpanId_;
  if (idx >= spans_.size()) return nullptr;
  return &spans_[static_cast<std::size_t>(idx)];
}

const Span* Observer::findSpan(std::uint64_t spanId) const {
  return const_cast<Observer*>(this)->lookup(spanId);
}

void Observer::setMaxSpans(std::size_t maxSpans) {
  maxSpans_ = maxSpans;
  while (maxSpans_ != 0 && spans_.size() > maxSpans_) {
    spans_.pop_front();
    ++baseSpanId_;
    ++dropped_;
  }
}

sim::TraceContext Observer::beginTrace(sim::SimTime now, std::string_view name,
                                       std::string_view component) {
  const std::uint64_t traceId = nextTraceId_++;
  const Span& s = mint(now, traceId, 0, name, component);
  return sim::TraceContext{traceId, s.spanId, 0};
}

sim::TraceContext Observer::beginSpan(sim::SimTime now,
                                      const sim::TraceContext& parent,
                                      std::string_view name,
                                      std::string_view component) {
  if (!parent.valid()) return beginTrace(now, name, component);
  const Span& s = mint(now, parent.traceId, parent.spanId, name, component);
  return sim::TraceContext{parent.traceId, s.spanId, parent.spanId};
}

void Observer::endSpan(sim::SimTime now, const sim::TraceContext& span) {
  if (!span.valid()) return;
  Span* s = lookup(span.spanId);
  if (s != nullptr && s->open()) s->end = now;
}

void Observer::annotate(const sim::TraceContext& span, std::string_view key,
                        std::string_view value) {
  if (!span.valid()) return;
  Span* s = lookup(span.spanId);
  if (s != nullptr) s->annotations.emplace_back(std::string(key), std::string(value));
}

sim::TraceContext Observer::instant(sim::SimTime now,
                                    const sim::TraceContext& parent,
                                    std::string_view name,
                                    std::string_view component) {
  sim::TraceContext ctx = beginSpan(now, parent, name, component);
  spans_.back().end = now;  // zero-duration marker
  return ctx;
}

void Observer::onEventExecuted(sim::SimTime /*now*/, std::size_t depth,
                               std::uint64_t wallNanos) {
  queueDepth_.record(static_cast<double>(depth));
  callbackNanos_.record(static_cast<double>(wallNanos));
}

void Observer::recordProfile(std::string_view component,
                             std::uint64_t wallNanos) {
  auto it = profiles_.find(component);
  if (it == profiles_.end()) {
    if (sim_ == nullptr) return;
    const std::string name = "profile." + std::string(component) + ".wall_ns";
    it = profiles_
             .emplace(std::string(component),
                      sim_->metrics().histogramHandle(name))
             .first;
  }
  it->second.record(static_cast<double>(wallNanos));
}

}  // namespace softqos::obs
