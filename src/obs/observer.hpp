// Concrete causal-tracing and profiling plane for the softqos kernel.
//
// obs::Observer implements sim::SpanObserver: it stores every span of the
// detection -> diagnosis -> actuation -> recovery chains in a bounded deque,
// mints trace/span ids from plain counters (deterministic, no RNG), and
// feeds the kernel/component profiling hooks into histograms in the
// simulation's MetricRegistry ("evq.depth", "evq.callback_ns",
// "profile.<component>.wall_ns").
//
// Attach with Observer(sim) / detach() — the simulation never owns the
// observer; when none is attached every instrumented site in the codebase
// costs one pointer load + branch and runs replay byte-identically.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/simulation.hpp"
#include "sim/span.hpp"

namespace softqos::obs {

/// One recorded span. Instants are spans with end == start; open spans have
/// end == kOpen until endSpan() closes them.
struct Span {
  static constexpr sim::SimTime kOpen = -1;

  std::uint64_t spanId = 0;
  std::uint64_t traceId = 0;
  std::uint64_t parentSpanId = 0;  // 0 = root of its trace
  sim::SimTime start = 0;
  sim::SimTime end = kOpen;
  std::string name;
  std::string component;
  std::vector<std::pair<std::string, std::string>> annotations;

  [[nodiscard]] bool open() const { return end == kOpen; }
};

class Observer final : public sim::SpanObserver {
 public:
  /// Attaches to `sim` and interns the kernel-profiling histograms in its
  /// metric registry. The observer must outlive its attachment (detach() or
  /// destruction ends it).
  explicit Observer(sim::Simulation& sim);
  ~Observer() override;

  Observer(const Observer&) = delete;
  Observer& operator=(const Observer&) = delete;

  /// Detach from the simulation: subsequent events record nothing. Safe to
  /// call twice.
  void detach();

  // -- sim::SpanObserver --------------------------------------------------
  sim::TraceContext beginTrace(sim::SimTime now, std::string_view name,
                               std::string_view component) override;
  sim::TraceContext beginSpan(sim::SimTime now, const sim::TraceContext& parent,
                              std::string_view name,
                              std::string_view component) override;
  void endSpan(sim::SimTime now, const sim::TraceContext& span) override;
  void annotate(const sim::TraceContext& span, std::string_view key,
                std::string_view value) override;
  sim::TraceContext instant(sim::SimTime now, const sim::TraceContext& parent,
                            std::string_view name,
                            std::string_view component) override;
  void onEventExecuted(sim::SimTime now, std::size_t depth,
                       std::uint64_t wallNanos) override;
  void recordProfile(std::string_view component,
                     std::uint64_t wallNanos) override;

  // -- span store ---------------------------------------------------------
  [[nodiscard]] const std::deque<Span>& spans() const { return spans_; }

  /// Retained span by id, or nullptr if unknown / evicted by the ring cap.
  [[nodiscard]] const Span* findSpan(std::uint64_t spanId) const;

  /// Bound retained spans: keep the most recent `maxSpans`, dropping the
  /// oldest first (counted in droppedSpans()). 0 = unbounded (default).
  void setMaxSpans(std::size_t maxSpans);
  [[nodiscard]] std::size_t maxSpans() const { return maxSpans_; }
  [[nodiscard]] std::uint64_t droppedSpans() const { return dropped_; }

  /// Total spans minted, including dropped ones.
  [[nodiscard]] std::uint64_t totalSpans() const { return nextSpanId_ - 1; }

 private:
  Span& mint(sim::SimTime now, std::uint64_t traceId, std::uint64_t parentId,
             std::string_view name, std::string_view component);
  [[nodiscard]] Span* lookup(std::uint64_t spanId);

  sim::Simulation* sim_ = nullptr;
  std::deque<Span> spans_;
  std::uint64_t baseSpanId_ = 1;  // spanId of spans_.front()
  std::uint64_t nextTraceId_ = 1;
  std::uint64_t nextSpanId_ = 1;
  std::size_t maxSpans_ = 0;  // 0 = unbounded
  std::uint64_t dropped_ = 0;

  sim::HistogramHandle queueDepth_;
  sim::HistogramHandle callbackNanos_;
  std::map<std::string, sim::HistogramHandle, std::less<>> profiles_;
};

}  // namespace softqos::obs
