// Contract-plane flight recorder.
//
// The Policy Agent's admission, renegotiation, liveliness and failover
// decisions are the control-plane story an operator replays after an
// incident. obs::FlightRecorder captures them three ways at once:
//
//   * a bounded in-order record log (the "flight recorder" proper: drop
//     oldest past the cap, count the drops);
//   * metrics in a private registry — global and per-contract decision
//     counters plus per-tier residency histograms (how long each session
//     actually spent at full vs degraded), the raw material for the
//     per-contract RED tables in obs/export;
//   * optional spans: when the owning simulation has a SpanObserver
//     attached, every decision mints a root "contract:<kind>" instant, so
//     the tail sampler's "contract:" trigger retains the causal record of
//     every contract-plane fault.
//
// The registry is private (never the simulation's), so arming the recorder
// cannot perturb a run's metric digests; everything here is driven by the
// sim clock and mints no randomness, so recording is replay-safe.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>

#include "sim/metrics.hpp"
#include "sim/simulation.hpp"

namespace softqos::obs {

/// One contract-plane decision, in decision order.
struct FlightRecord {
  sim::SimTime when = 0;
  std::string kind;  // admit-full, admit-degraded, reject, renegotiate-down,
                     // renegotiate-up, liveliness-lost, failover, deregister
  std::uint32_t pid = 0;
  std::string contract;
  std::string detail;
};

class FlightRecorder {
 public:
  /// `maxRecords` bounds the log; the oldest record is dropped past it.
  explicit FlightRecorder(sim::Simulation& sim, std::size_t maxRecords = 4096);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Record one decision: appends to the log, bumps "flight.<kind>" and
  /// "flight.<contract>.<kind>", and mints a "contract:<kind>" span when an
  /// observer is attached.
  void record(std::string_view kind, std::uint32_t pid,
              std::string_view contract, std::string_view detail);

  /// A session entered `tier` of `contract` now (admission or
  /// renegotiation). Residency in the previous tier, if any, folds into
  /// "flight.residency_us.<tier>" and "flight.<contract>.residency_us.<tier>".
  void tierEnter(std::uint32_t pid, std::string_view contract,
                 std::string_view tier);

  /// The session left the contract plane (deregistration / replacement);
  /// folds its final tier residency.
  void sessionEnd(std::uint32_t pid);

  [[nodiscard]] const std::deque<FlightRecord>& records() const {
    return records_;
  }
  [[nodiscard]] std::uint64_t droppedRecords() const { return dropped_; }
  [[nodiscard]] std::uint64_t totalRecords() const { return total_; }

  /// Private metric registry (decision counters + residency histograms).
  [[nodiscard]] const sim::MetricRegistry& stats() const { return stats_; }

  /// Contracts seen so far, for per-contract export tables.
  [[nodiscard]] const std::map<std::string, std::uint64_t>& contractsSeen()
      const {
    return contracts_;
  }

 private:
  struct Residency {
    std::string contract;
    std::string tier;
    sim::SimTime since = 0;
  };

  void foldResidency(const Residency& residency);

  sim::Simulation& sim_;
  std::size_t maxRecords_;
  std::deque<FlightRecord> records_;
  std::map<std::uint32_t, Residency> residency_;
  std::map<std::string, std::uint64_t> contracts_;  // name -> decision count
  sim::MetricRegistry stats_;
  std::uint64_t dropped_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace softqos::obs
