#include "obs/export.hpp"

#include <cstdio>
#include <unordered_map>
#include <vector>

namespace softqos::obs {
namespace {

void appendEscaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void appendDouble(std::string& out, double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  out += buf;
}

/// One histogram as a JSON object: summary stats, quantiles, and the raw
/// occupied buckets as [lower_bound, count] pairs so offline tooling can
/// re-derive any quantile (or re-merge across runs) without the library.
void appendHistogramJson(std::string& out, const sim::Histogram& h) {
  out += "{\"count\":";
  out += std::to_string(h.count());
  out += ",\"mean\":";
  appendDouble(out, h.mean());
  out += ",\"min\":";
  appendDouble(out, h.min());
  out += ",\"max\":";
  appendDouble(out, h.max());
  out += ",\"p50\":";
  appendDouble(out, h.p50());
  out += ",\"p90\":";
  appendDouble(out, h.p90());
  out += ",\"p99\":";
  appendDouble(out, h.p99());
  out += ",\"buckets\":[";
  bool first = true;
  const auto& buckets = h.buckets();
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    if (!first) out += ",";
    first = false;
    out += "[";
    appendDouble(out, sim::Histogram::bucketLowerBound(i));
    out += ",";
    out += std::to_string(buckets[i]);
    out += "]";
  }
  out += "]}";
}

}  // namespace

std::string chromeTraceJson(const Observer& observer) {
  const std::deque<Span>& spans = observer.spans();
  const std::size_t n = spans.size();

  // Envelope normalization: a span's effective end covers its latest
  // descendant. Children are always minted after their parent (higher
  // index), so one reverse pass visits every child before its parent.
  std::vector<sim::SimTime> effEnd(n);
  std::unordered_map<std::uint64_t, std::size_t> index;
  index.reserve(n);
  for (std::size_t i = 0; i < n; ++i) index.emplace(spans[i].spanId, i);
  for (std::size_t i = n; i-- > 0;) {
    const Span& s = spans[i];
    if (effEnd[i] < s.start) effEnd[i] = s.open() ? s.start : s.end;
    if (s.parentSpanId != 0) {
      const auto it = index.find(s.parentSpanId);
      if (it != index.end() && effEnd[it->second] < effEnd[i]) {
        effEnd[it->second] = effEnd[i];
      }
    }
  }

  std::string out;
  out.reserve(128 * n + 64);
  out += "{\"traceEvents\":[";
  bool first = true;
  for (std::size_t i = 0; i < n; ++i) {
    const Span& s = spans[i];
    if (!first) out += ",";
    first = false;
    out += "\n{\"name\":\"";
    appendEscaped(out, s.name);
    out += "\",\"cat\":\"";
    appendEscaped(out, s.component);
    out += "\",\"ph\":\"X\",\"ts\":";
    out += std::to_string(s.start);
    out += ",\"dur\":";
    out += std::to_string(effEnd[i] - s.start);
    out += ",\"pid\":1,\"tid\":";
    out += std::to_string(s.traceId);
    out += ",\"args\":{\"span_id\":\"";
    out += std::to_string(s.spanId);
    if (s.parentSpanId != 0) {
      out += "\",\"parent_span_id\":\"";
      out += std::to_string(s.parentSpanId);
    }
    out += "\"";
    for (const auto& [key, value] : s.annotations) {
      out += ",\"";
      appendEscaped(out, key);
      out += "\":\"";
      appendEscaped(out, value);
      out += "\"";
    }
    out += "}}";
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

std::string metricsJson(const sim::MetricRegistry& metrics) {
  std::string out;
  out += "{\n\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : metrics.counters()) {
    if (!first) out += ",";
    first = false;
    out += "\n\"";
    appendEscaped(out, name);
    out += "\":";
    out += std::to_string(value);
  }
  out += "\n},\n\"series\":{";
  first = true;
  for (const auto& [name, series] : metrics.allSeries()) {
    const sim::Summary& s = series.summary();
    if (!first) out += ",";
    first = false;
    out += "\n\"";
    appendEscaped(out, name);
    out += "\":{\"count\":";
    out += std::to_string(s.count());
    out += ",\"mean\":";
    appendDouble(out, s.mean());
    out += ",\"min\":";
    appendDouble(out, s.min());
    out += ",\"max\":";
    appendDouble(out, s.max());
    out += ",\"stddev\":";
    appendDouble(out, s.stddev());
    out += "}";
  }
  out += "\n},\n\"histograms\":{";
  first = true;
  for (const auto& [name, h] : metrics.allHistograms()) {
    if (!first) out += ",";
    first = false;
    out += "\n\"";
    appendEscaped(out, name);
    out += "\":";
    appendHistogramJson(out, h);
  }
  out += "\n}\n}\n";
  return out;
}

std::string domainMetricsJson(const sim::TelemetryAggregator& telemetry) {
  std::string out;
  out += "{\n\"snapshots\":";
  out += std::to_string(telemetry.snapshotsIngested());
  out += ",\n\"sources\":[";
  bool first = true;
  for (const auto& [source, snapshot] : telemetry.latestBySource()) {
    (void)snapshot;
    if (!first) out += ",";
    first = false;
    out += "\"";
    appendEscaped(out, source);
    out += "\"";
  }
  out += "],\n\"counters\":{";
  first = true;
  for (const auto& [name, total] : telemetry.counterTotals()) {
    if (!first) out += ",";
    first = false;
    out += "\n\"";
    appendEscaped(out, name);
    out += "\":";
    out += std::to_string(total);
  }
  out += "\n},\n\"histograms\":{";
  first = true;
  for (const auto& [name, h] : telemetry.mergedHistograms()) {
    if (!first) out += ",";
    first = false;
    out += "\n\"";
    appendEscaped(out, name);
    out += "\":";
    appendHistogramJson(out, h);
  }
  // Per-host drill-down: the latest published window from each source.
  out += "\n},\n\"latest\":{";
  first = true;
  for (const auto& [source, snapshot] : telemetry.latestBySource()) {
    if (!first) out += ",";
    first = false;
    out += "\n\"";
    appendEscaped(out, source);
    out += "\":{\"window\":[";
    out += std::to_string(snapshot.windowStart);
    out += ",";
    out += std::to_string(snapshot.windowEnd);
    out += "],\"counters\":{";
    bool firstCounter = true;
    for (const auto& [name, delta] : snapshot.counters) {
      if (!firstCounter) out += ",";
      firstCounter = false;
      out += "\"";
      appendEscaped(out, name);
      out += "\":";
      out += std::to_string(delta);
    }
    out += "}}";
  }
  out += "\n}\n}\n";
  return out;
}

}  // namespace softqos::obs
