#include "obs/export.hpp"

#include <algorithm>
#include <cstdio>
#include <unordered_map>
#include <vector>

namespace softqos::obs {
namespace {

void appendEscaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void appendDouble(std::string& out, double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  out += buf;
}

/// One histogram as a JSON object: summary stats, quantiles, and the raw
/// occupied buckets as [lower_bound, count] pairs so offline tooling can
/// re-derive any quantile (or re-merge across runs) without the library.
/// Buckets carrying an exemplar additionally list it under "exemplars";
/// with a sampler given, each exemplar resolves its canonical retained
/// trace id ("sampled_trace", 0 = the trace was dropped).
void appendHistogramJson(std::string& out, const sim::Histogram& h,
                         const TraceSampler* sampler = nullptr) {
  out += "{\"count\":";
  out += std::to_string(h.count());
  out += ",\"mean\":";
  appendDouble(out, h.mean());
  out += ",\"min\":";
  appendDouble(out, h.min());
  out += ",\"max\":";
  appendDouble(out, h.max());
  out += ",\"p50\":";
  appendDouble(out, h.p50());
  out += ",\"p90\":";
  appendDouble(out, h.p90());
  out += ",\"p99\":";
  appendDouble(out, h.p99());
  out += ",\"buckets\":[";
  bool first = true;
  const auto& buckets = h.buckets();
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    if (!first) out += ",";
    first = false;
    out += "[";
    appendDouble(out, sim::Histogram::bucketLowerBound(i));
    out += ",";
    out += std::to_string(buckets[i]);
    out += "]";
  }
  out += "]";
  if (!h.exemplars().empty()) {
    out += ",\"exemplars\":[";
    first = true;
    for (const auto& [idx, ex] : h.exemplars()) {
      if (!first) out += ",";
      first = false;
      out += "{\"bucket\":";
      appendDouble(out, sim::Histogram::bucketLowerBound(idx));
      out += ",\"trace\":\"";
      out += std::to_string(ex.traceId);
      out += "\",\"value\":";
      appendDouble(out, ex.value);
      out += ",\"when\":";
      out += std::to_string(ex.when);
      if (sampler != nullptr) {
        out += ",\"sampled_trace\":\"";
        const auto canonical = sampler->canonicalTraceId(ex.traceId);
        out += std::to_string(canonical.value_or(0));
        out += "\"";
      }
      out += "}";
    }
    out += "]";
  }
  out += "}";
}

/// The shared "counters"/"series"/"histograms" body of metricsJson.
void appendMetricsBody(std::string& out, const sim::MetricRegistry& metrics) {
  out += "\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : metrics.counters()) {
    if (!first) out += ",";
    first = false;
    out += "\n\"";
    appendEscaped(out, name);
    out += "\":";
    out += std::to_string(value);
  }
  out += "\n},\n\"series\":{";
  first = true;
  for (const auto& [name, series] : metrics.allSeries()) {
    const sim::Summary& s = series.summary();
    if (!first) out += ",";
    first = false;
    out += "\n\"";
    appendEscaped(out, name);
    out += "\":{\"count\":";
    out += std::to_string(s.count());
    out += ",\"mean\":";
    appendDouble(out, s.mean());
    out += ",\"min\":";
    appendDouble(out, s.min());
    out += ",\"max\":";
    appendDouble(out, s.max());
    out += ",\"stddev\":";
    appendDouble(out, s.stddev());
    out += "}";
  }
  out += "\n},\n\"histograms\":{";
  first = true;
  for (const auto& [name, h] : metrics.allHistograms()) {
    if (!first) out += ",";
    first = false;
    out += "\n\"";
    appendEscaped(out, name);
    out += "\":";
    appendHistogramJson(out, h);
  }
  out += "\n}";
}

}  // namespace

std::string chromeTraceJson(const Observer& observer) {
  const std::deque<Span>& spans = observer.spans();
  const std::size_t n = spans.size();

  // Envelope normalization: a span's effective end covers its latest
  // descendant. Children are always minted after their parent (higher
  // index), so one reverse pass visits every child before its parent.
  std::vector<sim::SimTime> effEnd(n);
  std::unordered_map<std::uint64_t, std::size_t> index;
  index.reserve(n);
  for (std::size_t i = 0; i < n; ++i) index.emplace(spans[i].spanId, i);
  for (std::size_t i = n; i-- > 0;) {
    const Span& s = spans[i];
    // max(own end, latest child): children visited earlier may already have
    // propagated into effEnd[i], so extend rather than overwrite.
    const sim::SimTime ownEnd = s.open() ? s.start : s.end;
    if (effEnd[i] < ownEnd) effEnd[i] = ownEnd;
    if (s.parentSpanId != 0) {
      const auto it = index.find(s.parentSpanId);
      if (it != index.end() && effEnd[it->second] < effEnd[i]) {
        effEnd[it->second] = effEnd[i];
      }
    }
  }

  std::string out;
  out.reserve(128 * n + 64);
  out += "{\"traceEvents\":[";
  bool first = true;
  for (std::size_t i = 0; i < n; ++i) {
    const Span& s = spans[i];
    if (!first) out += ",";
    first = false;
    out += "\n{\"name\":\"";
    appendEscaped(out, s.name);
    out += "\",\"cat\":\"";
    appendEscaped(out, s.component);
    out += "\",\"ph\":\"X\",\"ts\":";
    out += std::to_string(s.start);
    out += ",\"dur\":";
    out += std::to_string(effEnd[i] - s.start);
    out += ",\"pid\":1,\"tid\":";
    out += std::to_string(s.traceId);
    out += ",\"args\":{\"span_id\":\"";
    out += std::to_string(s.spanId);
    if (s.parentSpanId != 0) {
      out += "\",\"parent_span_id\":\"";
      out += std::to_string(s.parentSpanId);
    }
    out += "\"";
    for (const auto& [key, value] : s.annotations) {
      out += ",\"";
      appendEscaped(out, key);
      out += "\":\"";
      appendEscaped(out, value);
      out += "\"";
    }
    out += "}}";
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

std::string chromeTraceJson(const TraceSampler& sampler) {
  // Canonical order: sorted by the shard-invariant trace key, which is
  // exactly the canonicalTraceId order. Span ids restart from 1 and grow in
  // record order across traces, so the whole document is a pure function of
  // the retained set.
  std::vector<const SampledTrace*> traces = sampler.retained();
  std::sort(traces.begin(), traces.end(),
            [&sampler](const SampledTrace* a, const SampledTrace* b) {
              return sampler.canonicalTraceId(a->provisionalTraceId)
                         .value_or(0) <
                     sampler.canonicalTraceId(b->provisionalTraceId)
                         .value_or(0);
            });

  std::string out;
  out += "{\"traceEvents\":[";
  bool first = true;
  std::uint64_t nextSpanId = 1;
  for (const SampledTrace* t : traces) {
    const std::uint64_t tid =
        sampler.canonicalTraceId(t->provisionalTraceId).value_or(0);
    const auto& spans = t->spans;
    const std::size_t n = spans.size();

    // Envelope normalization, per trace: children are recorded after their
    // parent, so one reverse pass visits every child before its parent.
    std::vector<sim::SimTime> effEnd(n);
    std::unordered_map<std::uint64_t, std::size_t> index;
    index.reserve(n);
    for (std::size_t i = 0; i < n; ++i) index.emplace(spans[i].spanId, i);
    for (std::size_t i = n; i-- > 0;) {
      const SampledSpan& s = spans[i];
      const sim::SimTime ownEnd = s.open() ? s.start : s.end;
      if (effEnd[i] < ownEnd) effEnd[i] = ownEnd;
      if (s.parentSpanId != 0) {
        const auto it = index.find(s.parentSpanId);
        if (it != index.end() && effEnd[it->second] < effEnd[i]) {
          effEnd[it->second] = effEnd[i];
        }
      }
    }

    // Provisional -> canonical span ids, in record order.
    std::unordered_map<std::uint64_t, std::uint64_t> canon;
    canon.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      canon.emplace(spans[i].spanId, nextSpanId + i);
    }

    for (std::size_t i = 0; i < n; ++i) {
      const SampledSpan& s = spans[i];
      if (!first) out += ",";
      first = false;
      out += "\n{\"name\":\"";
      appendEscaped(out, s.name);
      out += "\",\"cat\":\"";
      appendEscaped(out, s.component);
      out += "\",\"ph\":\"X\",\"ts\":";
      out += std::to_string(s.start);
      out += ",\"dur\":";
      out += std::to_string(effEnd[i] - s.start);
      out += ",\"pid\":1,\"tid\":";
      out += std::to_string(tid);
      out += ",\"args\":{\"span_id\":\"";
      out += std::to_string(canon[s.spanId]);
      if (s.parentSpanId != 0) {
        out += "\",\"parent_span_id\":\"";
        const auto it = canon.find(s.parentSpanId);
        out += std::to_string(it != canon.end() ? it->second : 0);
      }
      out += "\"";
      if (s.parentSpanId == 0) {
        out += ",\"retain_reason\":\"";
        appendEscaped(out, t->reason);
        out += "\",\"complete\":\"";
        out += t->complete ? "1" : "0";
        out += "\"";
      }
      for (const auto& [key, value] : s.annotations) {
        out += ",\"";
        appendEscaped(out, key);
        out += "\":\"";
        appendEscaped(out, value);
        out += "\"";
      }
      out += "}}";
    }
    nextSpanId += n;
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

std::string metricsJson(const sim::MetricRegistry& metrics) {
  std::string out;
  out += "{\n";
  appendMetricsBody(out, metrics);
  out += "\n}\n";
  return out;
}

std::string metricsJson(const sim::MetricRegistry& metrics,
                        const sim::Trace* trace, const Observer* observer,
                        const TraceSampler* sampler) {
  return metricsJson(metrics, trace, observer, sampler, nullptr);
}

std::string metricsJson(const sim::MetricRegistry& metrics,
                        const sim::Trace* trace, const Observer* observer,
                        const TraceSampler* sampler,
                        const CriticalPathAnalyzer* analyzer) {
  std::string out;
  out += "{\n";
  appendMetricsBody(out, metrics);
  if (trace == nullptr && observer == nullptr && sampler == nullptr &&
      analyzer == nullptr) {
    out += "\n}\n";
    return out;
  }
  out += ",\n\"observability\":{";
  bool first = true;
  const auto section = [&out, &first](const char* name) {
    if (!first) out += ",";
    first = false;
    out += "\n\"";
    out += name;
    out += "\":";
  };
  const auto field = [&out](const char* key, std::uint64_t value, bool& inner) {
    if (!inner) out += ",";
    inner = false;
    out += "\"";
    out += key;
    out += "\":";
    out += std::to_string(value);
  };
  if (trace != nullptr) {
    section("trace_ring");
    bool inner = true;
    out += "{";
    field("records", trace->records().size(), inner);
    field("max_records", trace->maxRecords(), inner);
    field("dropped_records", trace->droppedRecords(), inner);
    out += "}";
  }
  if (observer != nullptr) {
    section("span_store");
    bool inner = true;
    out += "{";
    field("spans", observer->spans().size(), inner);
    field("max_spans", observer->maxSpans(), inner);
    field("total_spans", observer->totalSpans(), inner);
    field("dropped_spans", observer->droppedSpans(), inner);
    out += "}";
  }
  if (sampler != nullptr) {
    section("sampler");
    bool inner = true;
    out += "{";
    field("total_traces", sampler->totalTraces(), inner);
    field("total_spans", sampler->totalSpans(), inner);
    field("retained_traces", sampler->retainedCount(), inner);
    field("retained_spans", sampler->retainedSpanCount(), inner);
    field("dropped_traces", sampler->droppedTraces(), inner);
    field("dropped_records", sampler->droppedRecords(), inner);
    field("orphan_records", sampler->orphanRecords(), inner);
    field("evicted_pending", sampler->evictedPending(), inner);
    field("evicted_retained", sampler->evictedRetained(), inner);
    field("reservoir_evictions", sampler->reservoirEvictions(), inner);
    out += ",\"retention_ratio\":";
    appendDouble(out,
                 sampler->totalTraces() == 0
                     ? 0.0
                     : static_cast<double>(sampler->retainedCount()) /
                           static_cast<double>(sampler->totalTraces()));
    out += "}";
  }
  if (analyzer != nullptr) {
    section("analyzer");
    bool inner = true;
    out += "{";
    field("episodes_analyzed", analyzer->episodesAnalyzed(), inner);
    field("incomplete_skipped", analyzer->incompleteSkipped(), inner);
    field("non_episode_skipped", analyzer->nonEpisodeSkipped(), inner);
    field("orphan_spans", analyzer->orphanSpans(), inner);
    out += "}";
  }
  out += "\n}\n}\n";
  return out;
}

std::string attributionJson(const CriticalPathAnalyzer& analyzer,
                            std::size_t topK) {
  std::string out;
  out += "{\n\"episodes_analyzed\":";
  out += std::to_string(analyzer.episodesAnalyzed());
  out += ",\n\"incomplete_skipped\":";
  out += std::to_string(analyzer.incompleteSkipped());
  out += ",\n\"non_episode_skipped\":";
  out += std::to_string(analyzer.nonEpisodeSkipped());
  out += ",\n\"orphan_spans\":";
  out += std::to_string(analyzer.orphanSpans());
  out += ",\n\"reaction_us\":";
  appendHistogramJson(out, analyzer.reactionHistogram());

  // Per-segment histograms, in pipeline order (absent labels are skipped).
  out += ",\n\"segments\":{";
  bool first = true;
  const auto& segments = analyzer.segmentHistograms();
  for (const std::string& label : allSegmentLabels()) {
    const auto it = segments.find(label);
    if (it == segments.end()) continue;
    if (!first) out += ",";
    first = false;
    out += "\n\"";
    appendEscaped(out, label);
    out += "\":";
    appendHistogramJson(out, it->second);
  }

  out += "\n},\n\"components\":[";
  first = true;
  for (const ComponentBlame& blame : analyzer.componentBlame(topK)) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"component\":\"";
    appendEscaped(out, blame.component);
    out += "\",\"self_us\":";
    out += std::to_string(blame.selfUs);
    out += ",\"wait_us\":";
    out += std::to_string(blame.waitUs);
    out += ",\"segments\":";
    out += std::to_string(blame.segments);
    out += "}";
  }

  out += "\n],\n\"rules\":[";
  first = true;
  for (const RuleBlame& blame : analyzer.ruleBlame(topK)) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"rule\":\"";
    appendEscaped(out, blame.rule);
    out += "\",\"self_us\":";
    out += std::to_string(blame.selfUs);
    out += ",\"segments\":";
    out += std::to_string(blame.segments);
    out += "}";
  }

  out += "\n],\n\"episodes\":[";
  first = true;
  for (const EpisodeAttribution& ep : analyzer.episodes()) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"trace\":\"";
    out += std::to_string(ep.traceId);
    out += "\",\"root\":\"";
    appendEscaped(out, ep.rootName);
    out += "\",\"component\":\"";
    appendEscaped(out, ep.rootComponent);
    out += "\",\"start\":";
    out += std::to_string(ep.rootStart);
    out += ",\"duration_us\":";
    out += std::to_string(ep.rootDuration());
    out += ",\"segments\":[";
    bool firstSeg = true;
    for (const PathSegment& seg : ep.segments) {
      if (!firstSeg) out += ",";
      firstSeg = false;
      out += "{\"segment\":\"";
      appendEscaped(out, seg.segment);
      out += "\",\"span\":\"";
      appendEscaped(out, seg.spanName);
      out += "\",\"component\":\"";
      appendEscaped(out, seg.component);
      out += "\",\"start\":";
      out += std::to_string(seg.start);
      out += ",\"end\":";
      out += std::to_string(seg.end);
      out += ",\"wait\":";
      out += seg.wait ? "true" : "false";
      out += "}";
    }
    out += "]}";
  }
  out += "\n]\n}\n";
  return out;
}

std::vector<BudgetTarget> budgetTargetsFromSlos(const SloTracker& slos) {
  std::vector<BudgetTarget> targets;
  for (const SloTracker::Entry& entry : slos.entries()) {
    if (entry.objective.kind != SloObjective::Kind::kLatencyQuantile) continue;
    if (entry.objective.threshold <= 0) continue;
    BudgetTarget target;
    target.name = entry.objective.name;
    target.tier = "slo";
    target.budgetUs = entry.objective.threshold;
    targets.push_back(std::move(target));
  }
  return targets;
}

std::string latencyBudgetJson(const CriticalPathAnalyzer& analyzer,
                              const std::vector<BudgetTarget>& targets) {
  const sim::Histogram& reaction = analyzer.reactionHistogram();
  const auto& segments = analyzer.segmentHistograms();

  std::string out;
  out += "{\n\"episodes\":";
  out += std::to_string(analyzer.episodesAnalyzed());
  out += ",\n\"mean_reaction_us\":";
  appendDouble(out, reaction.mean());
  out += ",\n\"targets\":[";
  bool first = true;
  for (const BudgetTarget& target : targets) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"name\":\"";
    appendEscaped(out, target.name);
    out += "\",\"tier\":\"";
    appendEscaped(out, target.tier);
    out += "\",\"budget_us\":";
    appendDouble(out, target.budgetUs);
    out += ",\"over_budget_fraction\":";
    appendDouble(out, target.budgetUs > 0
                          ? reaction.fractionAbove(target.budgetUs)
                          : 0.0);
    out += ",\"segments\":[";
    bool firstSeg = true;
    for (const std::string& label : allSegmentLabels()) {
      const auto it = segments.find(label);
      if (it == segments.end()) continue;
      if (!firstSeg) out += ",";
      firstSeg = false;
      out += "{\"segment\":\"";
      appendEscaped(out, label);
      out += "\",\"mean_us\":";
      appendDouble(out, it->second.mean());
      out += ",\"p99_us\":";
      appendDouble(out, it->second.p99());
      out += ",\"budget_fraction\":";
      appendDouble(out, target.budgetUs > 0
                            ? it->second.mean() / target.budgetUs
                            : 0.0);
      out += "}";
    }
    out += "]}";
  }
  out += "\n]\n}\n";
  return out;
}

std::string domainMetricsJson(const sim::TelemetryAggregator& telemetry) {
  return domainMetricsJson(telemetry, nullptr);
}

std::string domainMetricsJson(const sim::TelemetryAggregator& telemetry,
                              const TraceSampler* sampler) {
  std::string out;
  out += "{\n\"snapshots\":";
  out += std::to_string(telemetry.snapshotsIngested());
  out += ",\n\"sources\":[";
  bool first = true;
  for (const auto& [source, snapshot] : telemetry.latestBySource()) {
    (void)snapshot;
    if (!first) out += ",";
    first = false;
    out += "\"";
    appendEscaped(out, source);
    out += "\"";
  }
  out += "],\n\"counters\":{";
  first = true;
  for (const auto& [name, total] : telemetry.counterTotals()) {
    if (!first) out += ",";
    first = false;
    out += "\n\"";
    appendEscaped(out, name);
    out += "\":";
    out += std::to_string(total);
  }
  out += "\n},\n\"histograms\":{";
  first = true;
  for (const auto& [name, h] : telemetry.mergedHistograms()) {
    if (!first) out += ",";
    first = false;
    out += "\n\"";
    appendEscaped(out, name);
    out += "\":";
    appendHistogramJson(out, h, sampler);
  }
  // Per-host drill-down: the latest published window from each source.
  out += "\n},\n\"latest\":{";
  first = true;
  for (const auto& [source, snapshot] : telemetry.latestBySource()) {
    if (!first) out += ",";
    first = false;
    out += "\n\"";
    appendEscaped(out, source);
    out += "\":{\"window\":[";
    out += std::to_string(snapshot.windowStart);
    out += ",";
    out += std::to_string(snapshot.windowEnd);
    out += "],\"counters\":{";
    bool firstCounter = true;
    for (const auto& [name, delta] : snapshot.counters) {
      if (!firstCounter) out += ",";
      firstCounter = false;
      out += "\"";
      appendEscaped(out, name);
      out += "\":";
      out += std::to_string(delta);
    }
    out += "}}";
  }
  out += "\n}\n}\n";
  return out;
}

std::string flightRecorderJson(const FlightRecorder& recorder) {
  const auto& counters = recorder.stats().counters();
  const auto counterFor = [&counters](const std::string& name) {
    const auto it = counters.find(name);
    return it != counters.end() ? it->second : 0;
  };
  // record() kinds: admission verdicts plus ContractEvent::kindName values.
  static constexpr const char* kRateKinds[] = {"admit-full", "degraded",
                                               "restored"};
  static constexpr const char* kErrorKinds[] = {"rejected", "liveliness-lost",
                                                "owner-changed"};
  static constexpr const char* kTiers[] = {"full", "degraded"};

  std::string out;
  out += "{\n\"decisions\":";
  out += std::to_string(recorder.totalRecords());
  out += ",\n\"contracts\":{";
  bool first = true;
  for (const auto& [contract, decisions] : recorder.contractsSeen()) {
    if (!first) out += ",";
    first = false;
    out += "\n\"";
    appendEscaped(out, contract);
    out += "\":{\"decisions\":";
    out += std::to_string(decisions);
    out += ",\"rate\":{";
    bool inner = true;
    for (const char* kind : kRateKinds) {
      if (!inner) out += ",";
      inner = false;
      out += "\"";
      out += kind;
      out += "\":";
      out += std::to_string(counterFor("flight." + contract + "." + kind));
    }
    out += "},\"errors\":{";
    inner = true;
    for (const char* kind : kErrorKinds) {
      if (!inner) out += ",";
      inner = false;
      out += "\"";
      out += kind;
      out += "\":";
      out += std::to_string(counterFor("flight." + contract + "." + kind));
    }
    out += "},\"residency_us\":{";
    inner = true;
    for (const char* tier : kTiers) {
      const sim::Histogram* h = recorder.stats().histogram(
          "flight." + contract + ".residency_us." + tier);
      if (h == nullptr) continue;
      if (!inner) out += ",";
      inner = false;
      out += "\"";
      out += tier;
      out += "\":";
      appendHistogramJson(out, *h);
    }
    out += "}}";
  }
  out += "\n},\n\"totals\":{";
  first = true;
  for (const auto& [name, value] : counters) {
    // Global counters are "flight.<kind>" — exactly one dot.
    const std::size_t dot = name.find('.');
    if (dot == std::string::npos || name.find('.', dot + 1) != std::string::npos)
      continue;
    if (!first) out += ",";
    first = false;
    out += "\"";
    appendEscaped(out, name);
    out += "\":";
    out += std::to_string(value);
  }
  out += "},\n\"log\":[";
  first = true;
  for (const auto& rec : recorder.records()) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"when\":";
    out += std::to_string(rec.when);
    out += ",\"kind\":\"";
    appendEscaped(out, rec.kind);
    out += "\",\"pid\":";
    out += std::to_string(rec.pid);
    out += ",\"contract\":\"";
    appendEscaped(out, rec.contract);
    out += "\",\"detail\":\"";
    appendEscaped(out, rec.detail);
    out += "\"}";
  }
  out += "\n],\n\"dropped_log_records\":";
  out += std::to_string(recorder.droppedRecords());
  out += "\n}\n";
  return out;
}

}  // namespace softqos::obs
