#include "obs/slo.hpp"

#include <algorithm>

namespace softqos::obs {

void SloTracker::evaluate(const sim::RollupWindow& rollup, sim::SimTime now) {
  for (Entry& entry : entries_) {
    const SloObjective& obj = entry.objective;
    SloStatus next;
    next.breaches = entry.status.breaches;
    const sim::SimTime longFrom = now - obj.window;
    const sim::SimTime shortFrom = now - std::min(obj.shortWindow, obj.window);

    for (const sim::RollupWindow::Window& w : rollup.windows()) {
      if (w.end <= longFrom) continue;
      double bad = 0.0;
      double total = 0.0;
      if (obj.kind == SloObjective::Kind::kLatencyQuantile) {
        if (const sim::Histogram* h = w.histogram(obj.metric)) {
          bad = static_cast<double>(h->countAbove(obj.threshold));
          total = static_cast<double>(h->count());
        }
      } else {
        if (const auto events = w.counter(obj.metric)) {
          bad = static_cast<double>(std::max<std::int64_t>(0, *events));
        }
        // The "total" for a rate objective is the allowance for the bucket's
        // span: threshold events per second.
        total = obj.threshold * sim::toSeconds(w.end - w.start);
      }
      next.badLong += bad;
      next.totalLong += total;
      if (w.end > shortFrom) {
        next.badShort += bad;
        next.totalShort += total;
      }
    }

    // Burn rate: budget consumed per unit of budget allowed. For the
    // latency kind the budget is the tolerated bad-sample fraction
    // (100 - quantile)%; for the rate kind the allowance is already an
    // event count, so burn is simply observed/allowed.
    if (obj.kind == SloObjective::Kind::kLatencyQuantile) {
      const double budget =
          std::max(1e-9, (100.0 - obj.quantile) / 100.0);
      next.shortBurn = next.totalShort > 0.0
                           ? (next.badShort / next.totalShort) / budget
                           : 0.0;
      next.longBurn = next.totalLong > 0.0
                          ? (next.badLong / next.totalLong) / budget
                          : 0.0;
    } else {
      next.shortBurn =
          next.totalShort > 0.0 ? next.badShort / next.totalShort : 0.0;
      next.longBurn =
          next.totalLong > 0.0 ? next.badLong / next.totalLong : 0.0;
    }
    next.budgetRemaining = std::clamp(1.0 - next.longBurn, 0.0, 1.0);

    const bool wasBreached = entry.status.breached;
    next.breached =
        next.shortBurn >= obj.fastBurn && next.longBurn >= obj.slowBurn;
    if (next.breached && !wasBreached) ++next.breaches;

    entry.status = next;
    if (next.breached && !wasBreached && onBreach_) {
      onBreach_(obj, entry.status);
    } else if (!next.breached && wasBreached && onRecover_) {
      onRecover_(obj, entry.status);
    }
  }
}

std::size_t SloTracker::breachedCount() const {
  std::size_t n = 0;
  for (const Entry& e : entries_) {
    if (e.status.breached) ++n;
  }
  return n;
}

std::vector<SloObjective> defaultManagementSlos() {
  std::vector<SloObjective> slos;
  {
    // p99 of in-flight detect->recover latency: open violations are sampled
    // as their current age each telemetry tick, so a stuck outage starts
    // burning budget immediately instead of only once it recovers.
    SloObjective o;
    o.name = "reaction-p99";
    o.kind = SloObjective::Kind::kLatencyQuantile;
    o.metric = "hm.violation_age_us";
    o.quantile = 99.0;
    o.threshold = 1e6;  // 1 s, in the histogram's microseconds
    o.window = sim::sec(30);
    o.shortWindow = sim::sec(5);
    o.fastBurn = 2.0;
    o.slowBurn = 1.0;
    slos.push_back(std::move(o));
  }
  {
    // New violation episodes per second across the host.
    SloObjective o;
    o.name = "violation-rate";
    o.kind = SloObjective::Kind::kEventRate;
    o.metric = "hm.violations";
    o.threshold = 1.0;  // episodes per second
    o.window = sim::sec(30);
    o.shortWindow = sim::sec(5);
    o.fastBurn = 2.0;
    o.slowBurn = 1.0;
    slos.push_back(std::move(o));
  }
  return slos;
}

}  // namespace softqos::obs
