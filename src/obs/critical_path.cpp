#include "obs/critical_path.hpp"

#include <algorithm>
#include <limits>

#include "obs/span_tree.hpp"

namespace softqos::obs {
namespace {

constexpr std::size_t kNpos = std::numeric_limits<std::size_t>::max();

enum class SpanClass { kDiagnose, kRule, kRpc, kOther };

[[nodiscard]] bool startsWith(const std::string& text, std::string_view prefix) {
  return text.rfind(prefix, 0) == 0;
}

/// Map a non-root span onto its pipeline stage by name. The vocabulary is
/// the instrumented sites': "diagnose"/"decay" (host manager),
/// "fault-localization" + "corrective:*" (domain manager), "rule:<name>"
/// (engine fire hooks), "rpc:*"/"serve:*"/"retry*" (RPC layer).
[[nodiscard]] SpanClass classify(const SampledSpan& span) {
  if (startsWith(span.name, "rule:")) return SpanClass::kRule;
  if (startsWith(span.name, "rpc:") || startsWith(span.name, "serve:") ||
      startsWith(span.name, "retry")) {
    return SpanClass::kRpc;
  }
  if (span.name == "diagnose" || span.name == "decay" ||
      startsWith(span.name, "fault-localization") ||
      startsWith(span.name, "corrective:")) {
    return SpanClass::kDiagnose;
  }
  return SpanClass::kOther;
}

[[nodiscard]] std::string_view labelFor(SpanClass cls) {
  switch (cls) {
    case SpanClass::kDiagnose: return kSegDiagnose;
    case SpanClass::kRule: return kSegRuleMatch;
    case SpanClass::kRpc: return kSegActuateRpc;
    case SpanClass::kOther: return kSegOther;
  }
  return kSegOther;
}

struct Walk {
  const std::vector<SampledSpan>& spans;
  const SpanTree& tree;
  std::size_t rootIdx;
  /// The root's earliest diagnose-class direct child: the gap it bounds is
  /// the sense->report transit; every other root-owned gap is recovery.
  std::size_t firstDiagnose;
  EpisodeAttribution& ep;

  void emit(std::size_t owner, sim::SimTime from, sim::SimTime to,
            std::size_t upper) {
    if (to <= from) return;
    const SampledSpan& s = spans[owner];
    PathSegment seg;
    seg.start = from;
    seg.end = to;
    seg.spanName = s.name;
    seg.component = s.component;
    if (owner == rootIdx) {
      seg.segment = upper != kNpos && upper == firstDiagnose
                        ? std::string(kSegSenseReport)
                        : std::string(kSegRecover);
    } else {
      seg.segment = std::string(labelFor(classify(s)));
    }
    // Queueing/transit: the time was spent waiting for another component's
    // span to start (the work was in flight or queued, not executing here).
    seg.wait = upper != kNpos && spans[upper].component != s.component;
    ep.segments.push_back(std::move(seg));
  }

  /// Attribute [spans[idx].start, until) to idx and its descendants,
  /// descending into the latest-finishing child first (the critical path).
  void run(std::size_t idx, sim::SimTime until) {
    const SampledSpan& s = spans[idx];
    std::vector<std::size_t> kids = tree.children[idx];
    std::sort(kids.begin(), kids.end(),
              [this](std::size_t a, std::size_t b) {
                if (tree.effEnd[a] != tree.effEnd[b]) {
                  return tree.effEnd[a] > tree.effEnd[b];
                }
                if (spans[a].start != spans[b].start) {
                  return spans[a].start > spans[b].start;
                }
                return a > b;  // mint order: deterministic final tie-break
              });
    sim::SimTime t = until;
    std::size_t upper = kNpos;
    for (const std::size_t child : kids) {
      // Fully covered by later-finishing siblings: not on the path.
      if (spans[child].start >= t) continue;
      // Partial overlap: the child still owns its uncovered prefix — it was
      // running when the later-finishing sibling started.
      const sim::SimTime childEnd = std::min(tree.effEnd[child], t);
      if (childEnd < s.start) break;  // defensive: child before parent
      emit(idx, childEnd, t, upper);
      run(child, childEnd);
      t = std::max(spans[child].start, s.start);
      upper = child;
      if (t <= s.start) break;
    }
    emit(idx, s.start, t, upper);
  }
};

}  // namespace

const std::vector<std::string>& allSegmentLabels() {
  static const std::vector<std::string> kLabels = {
      std::string(kSegSenseReport), std::string(kSegDiagnose),
      std::string(kSegRuleMatch),   std::string(kSegActuateRpc),
      std::string(kSegRecover),     std::string(kSegOther)};
  return kLabels;
}

sim::SimDuration EpisodeAttribution::segmentSum() const {
  sim::SimDuration total = 0;
  for (const PathSegment& seg : segments) total += seg.duration();
  return total;
}

sim::SimDuration EpisodeAttribution::segmentTotal(
    std::string_view label) const {
  sim::SimDuration total = 0;
  for (const PathSegment& seg : segments) {
    if (seg.segment == label) total += seg.duration();
  }
  return total;
}

CriticalPathAnalyzer::CriticalPathAnalyzer(CriticalPathConfig config)
    : config_(std::move(config)) {}

std::optional<EpisodeAttribution> CriticalPathAnalyzer::analyzeTree(
    const std::vector<SampledSpan>& spans, std::uint64_t traceId) {
  const std::optional<SpanTree> treeOpt = SpanTree::build(spans);
  if (!treeOpt) {
    ++incomplete_;
    return std::nullopt;
  }
  const SpanTree& tree = *treeOpt;
  orphanSpans_ += tree.orphanSpans;
  const SampledSpan& root = spans[tree.root];
  if (!startsWith(root.name, config_.rootPrefix)) {
    ++nonEpisode_;
    return std::nullopt;
  }
  if (root.open()) {
    ++incomplete_;
    return std::nullopt;
  }

  EpisodeAttribution ep;
  ep.traceId = traceId;
  ep.rootName = root.name;
  ep.rootComponent = root.component;
  ep.rootStart = root.start;
  ep.rootEnd = tree.effEnd[tree.root];

  std::size_t firstDiagnose = kNpos;
  for (const std::size_t child : tree.children[tree.root]) {
    if (classify(spans[child]) != SpanClass::kDiagnose) continue;
    if (firstDiagnose == kNpos ||
        spans[child].start < spans[firstDiagnose].start) {
      firstDiagnose = child;
    }
  }

  Walk walk{spans, tree, tree.root, firstDiagnose, ep};
  walk.run(tree.root, ep.rootEnd);
  std::sort(ep.segments.begin(), ep.segments.end(),
            [](const PathSegment& a, const PathSegment& b) {
              return a.start != b.start ? a.start < b.start : a.end < b.end;
            });
  ++analyzed_;
  accumulate(ep);
  episodes_.push_back(std::move(ep));
  return episodes_.back();
}

void CriticalPathAnalyzer::accumulate(const EpisodeAttribution& ep) {
  reaction_.add(static_cast<double>(ep.rootDuration()));
  std::map<std::string, sim::SimDuration> perLabel;
  for (const PathSegment& seg : ep.segments) {
    perLabel[seg.segment] += seg.duration();

    ComponentBlame& blame = components_[seg.component];
    blame.component = seg.component;
    (seg.wait ? blame.waitUs : blame.selfUs) += seg.duration();
    ++blame.segments;

    if (startsWith(seg.spanName, "rule:")) {
      RuleBlame& rule = rules_[seg.spanName.substr(5)];
      rule.rule = seg.spanName.substr(5);
      rule.selfUs += seg.duration();
      ++rule.segments;
    }
  }
  for (const auto& [label, total] : perLabel) {
    segments_[label].add(static_cast<double>(total));
  }
}

void CriticalPathAnalyzer::analyze(const TraceSampler& sampler) {
  std::vector<const SampledTrace*> traces = sampler.retained();
  std::sort(traces.begin(), traces.end(),
            [&sampler](const SampledTrace* a, const SampledTrace* b) {
              return sampler.canonicalTraceId(a->provisionalTraceId)
                         .value_or(0) <
                     sampler.canonicalTraceId(b->provisionalTraceId)
                         .value_or(0);
            });
  for (const SampledTrace* t : traces) {
    if (!t->complete) {
      ++incomplete_;
      continue;
    }
    analyzeTree(t->spans,
                sampler.canonicalTraceId(t->provisionalTraceId).value_or(0));
  }
}

void CriticalPathAnalyzer::analyze(const Observer& observer) {
  // Group the store's spans by trace, preserving mint order within each
  // trace (the store is already in global mint order).
  std::map<std::uint64_t, std::vector<SampledSpan>> traces;
  std::vector<std::uint64_t> order;
  for (const Span& s : observer.spans()) {
    auto [it, inserted] = traces.try_emplace(s.traceId);
    if (inserted) order.push_back(s.traceId);
    SampledSpan converted;
    converted.spanId = s.spanId;
    converted.parentSpanId = s.parentSpanId;
    converted.start = s.start;
    converted.end = s.open() ? -1 : s.end;
    converted.name = s.name;
    converted.component = s.component;
    converted.annotations = s.annotations;
    it->second.push_back(std::move(converted));
  }
  for (const std::uint64_t traceId : order) {
    analyzeTree(traces[traceId], traceId);
  }
}

std::vector<ComponentBlame> CriticalPathAnalyzer::componentBlame(
    std::size_t topK) const {
  std::vector<ComponentBlame> out;
  out.reserve(components_.size());
  for (const auto& [name, blame] : components_) out.push_back(blame);
  std::sort(out.begin(), out.end(),
            [](const ComponentBlame& a, const ComponentBlame& b) {
              if (a.selfUs != b.selfUs) return a.selfUs > b.selfUs;
              if (a.waitUs != b.waitUs) return a.waitUs > b.waitUs;
              return a.component < b.component;
            });
  if (topK > 0 && out.size() > topK) out.resize(topK);
  return out;
}

std::vector<RuleBlame> CriticalPathAnalyzer::ruleBlame(std::size_t topK) const {
  std::vector<RuleBlame> out;
  out.reserve(rules_.size());
  for (const auto& [name, blame] : rules_) out.push_back(blame);
  std::sort(out.begin(), out.end(), [](const RuleBlame& a, const RuleBlame& b) {
    if (a.selfUs != b.selfUs) return a.selfUs > b.selfUs;
    return a.rule < b.rule;
  });
  if (topK > 0 && out.size() > topK) out.resize(topK);
  return out;
}

}  // namespace softqos::obs
