// Service-level objectives over streaming rollups: the management plane
// observing itself on the same terms it observes applications.
//
// An SloObjective declares a target over one rolled-up metric — "p99
// detect->recover latency <= X us over a 30 s window" (latency-quantile
// kind) or "violation episodes <= N per second" (event-rate kind). The
// tracker evaluates every objective against a RollupWindow's retained time
// buckets, computing the error budget consumed and two burn rates (a short
// fast-burn window and the full budget window, the standard multi-window
// alerting shape: the short window catches the fire, the long window keeps a
// recovered metric from re-paging). A breach is edge-triggered: handlers
// fire once when both burn rates cross their thresholds and once when the
// objective recovers — the QoS Host Manager uses them to assert/retract
// `slo-breach` facts so the rule base can react (escalate, shed load).
//
// Everything here is computed from simulation-deterministic inputs; the
// tracker itself draws no randomness and schedules no events.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/rollup.hpp"
#include "sim/time.hpp"

namespace softqos::obs {

struct SloObjective {
  enum class Kind {
    kLatencyQuantile,  // histogram: fraction above `threshold` vs budget
    kEventRate,        // counter: events/sec vs `threshold`
  };

  std::string name;
  Kind kind = Kind::kLatencyQuantile;
  /// Metric in the rollup: a histogram name (kLatencyQuantile) or a counter
  /// name (kEventRate).
  std::string metric;
  /// kLatencyQuantile: the guarded quantile (99 => 1% error budget).
  double quantile = 99.0;
  /// kLatencyQuantile: the latency bound (same unit as the histogram).
  /// kEventRate: the allowed event rate in events per second.
  double threshold = 0.0;
  /// The budget window: burn is averaged over the rollup buckets inside it.
  sim::SimDuration window = sim::sec(30);
  /// The fast-burn window (must not exceed `window`).
  sim::SimDuration shortWindow = sim::sec(5);
  /// Breach when shortBurn >= fastBurn AND longBurn >= slowBurn. A burn of
  /// 1.0 consumes the budget exactly as fast as the objective allows.
  double fastBurn = 2.0;
  double slowBurn = 1.0;
};

struct SloStatus {
  double shortBurn = 0.0;
  double longBurn = 0.0;
  /// Budget-consuming events and totals inside each window. For event-rate
  /// objectives `total` is the allowed event count for the covered span.
  double badShort = 0.0;
  double totalShort = 0.0;
  double badLong = 0.0;
  double totalLong = 0.0;
  /// Fraction of the long-window error budget still unspent, in [0, 1].
  double budgetRemaining = 1.0;
  bool breached = false;
  /// Cumulative breach transitions (edges, not evaluations).
  std::uint64_t breaches = 0;
};

class SloTracker {
 public:
  using Handler = std::function<void(const SloObjective&, const SloStatus&)>;

  void addObjective(SloObjective objective) {
    entries_.push_back({std::move(objective), SloStatus{}});
  }

  /// `onBreach` fires on each not-breached -> breached edge, `onRecover` on
  /// each breached -> recovered edge (either may be empty).
  void setHandlers(Handler onBreach, Handler onRecover) {
    onBreach_ = std::move(onBreach);
    onRecover_ = std::move(onRecover);
  }

  /// Recompute every objective's status from the rollup's retained windows
  /// as of `now`, firing edge handlers.
  void evaluate(const sim::RollupWindow& rollup, sim::SimTime now);

  struct Entry {
    SloObjective objective;
    SloStatus status;
  };
  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }

  /// Objectives currently in breach.
  [[nodiscard]] std::size_t breachedCount() const;

 private:
  std::vector<Entry> entries_;
  Handler onBreach_;
  Handler onRecover_;
};

/// The default objectives the testbed arms on every Host Manager when
/// telemetry is enabled: in-flight detect->recover latency (sampled as
/// open-violation age, so an outage in progress burns budget before it
/// resolves) and the violation-episode rate.
[[nodiscard]] std::vector<SloObjective> defaultManagementSlos();

}  // namespace softqos::obs
