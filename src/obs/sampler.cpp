#include "obs/sampler.hpp"

#include <algorithm>
#include <cassert>

#include "sim/random.hpp"

namespace softqos::obs {

namespace {

// Provisional ids: (1<<48) | shard<<40 | seq. Every id lands in
// [2^48, 2*2^48), i.e. exactly 15 decimal digits, so serialized contexts
// have the same byte length at every shard count (payload length feeds the
// simulated transmission time).
constexpr std::uint64_t kIdBase = 1ull << 48;
constexpr std::uint64_t kSeqBits = 40;
constexpr std::uint64_t kSeqMask = (1ull << kSeqBits) - 1;

}  // namespace

TraceSampler::TraceSampler(sim::Simulation& sim, SamplerConfig config)
    : sim_(&sim), seed_(sim.seed()), config_(std::move(config)) {
  buffers_.resize(256);  // the kernel's shard-count cap
  droppedDuration_ = stats_.histogramHandle("sampler.dropped_duration_us");
  sim.setObserver(this);
}

TraceSampler::~TraceSampler() { detach(); }

void TraceSampler::detach() {
  if (sim_ != nullptr && sim_->observer() == this) sim_->setObserver(nullptr);
  sim_ = nullptr;
}

TraceSampler::ShardBuf& TraceSampler::buf() {
  auto& slot = buffers_[sim_->currentShard()];
  // Only the worker that owns this shard ever touches the slot, so the lazy
  // allocation needs no lock.
  if (!slot) slot = std::make_unique<ShardBuf>();
  return *slot;
}

std::uint64_t TraceSampler::mintId(ShardBuf& b) {
  const std::uint64_t seq = b.nextSeq++;
  assert(seq <= kSeqMask && "per-shard span sequence overflow");
  return kIdBase | (static_cast<std::uint64_t>(sim_->currentShard())
                    << kSeqBits) |
         (seq & kSeqMask);
}

void TraceSampler::push(Rec rec) {
  ShardBuf& b = buf();
  if (b.recs.size() >= config_.maxRecordsPerShard) {
    ++b.dropped;
    return;
  }
  rec.shard = sim_->currentShard();
  rec.seq = b.nextSeq++;
  b.recs.push_back(std::move(rec));
}

sim::TraceContext TraceSampler::beginTrace(sim::SimTime now,
                                           std::string_view name,
                                           std::string_view component) {
  ShardBuf& b = buf();
  const std::uint64_t id = mintId(b);
  Rec rec;
  rec.when = now;
  rec.op = Op::kBegin;
  rec.traceId = id;
  rec.spanId = id;
  rec.a = std::string(name);
  rec.b = std::string(component);
  push(std::move(rec));
  return sim::TraceContext{id, id, 0};
}

sim::TraceContext TraceSampler::beginSpan(sim::SimTime now,
                                          const sim::TraceContext& parent,
                                          std::string_view name,
                                          std::string_view component) {
  if (!parent.valid()) return beginTrace(now, name, component);
  ShardBuf& b = buf();
  const std::uint64_t id = mintId(b);
  Rec rec;
  rec.when = now;
  rec.op = Op::kBegin;
  rec.traceId = parent.traceId;
  rec.spanId = id;
  rec.parentSpanId = parent.spanId;
  rec.a = std::string(name);
  rec.b = std::string(component);
  push(std::move(rec));
  return sim::TraceContext{parent.traceId, id, parent.spanId};
}

void TraceSampler::endSpan(sim::SimTime now, const sim::TraceContext& span) {
  if (!span.valid()) return;
  Rec rec;
  rec.when = now;
  rec.op = Op::kEnd;
  rec.traceId = span.traceId;
  rec.spanId = span.spanId;
  push(std::move(rec));
}

void TraceSampler::annotate(const sim::TraceContext& span, std::string_view key,
                            std::string_view value) {
  if (!span.valid()) return;
  // Wall-clock profiling annotations (rule-firing nanoseconds) vary run to
  // run; like onEventExecuted/recordProfile they are the serial Observer's
  // concern. Dropping them keeps the retained set byte-identical across
  // worker counts.
  if (key == "wall_ns") return;
  Rec rec;
  rec.when = sim_->now();
  rec.op = Op::kAnnotate;
  rec.traceId = span.traceId;
  rec.spanId = span.spanId;
  rec.a = std::string(key);
  rec.b = std::string(value);
  push(std::move(rec));
}

sim::TraceContext TraceSampler::instant(sim::SimTime now,
                                        const sim::TraceContext& parent,
                                        std::string_view name,
                                        std::string_view component) {
  const sim::TraceContext ctx = beginSpan(now, parent, name, component);
  endSpan(now, ctx);
  return ctx;
}

void TraceSampler::onEventExecuted(sim::SimTime /*now*/, std::size_t /*depth*/,
                                   std::uint64_t /*wallNanos*/) {}

void TraceSampler::recordProfile(std::string_view /*component*/,
                                 std::uint64_t /*wallNanos*/) {}

bool TraceSampler::traceKeyLess(const SampledTrace& x, const SampledTrace& y) {
  if (x.rootStart != y.rootStart) return x.rootStart < y.rootStart;
  if (x.rootName != y.rootName) return x.rootName < y.rootName;
  if (x.rootComponent != y.rootComponent) {
    return x.rootComponent < y.rootComponent;
  }
  return x.provisionalTraceId < y.provisionalTraceId;
}

void TraceSampler::ingest(Rec& rec) {
  auto it = pending_.find(rec.traceId);
  if (it == pending_.end()) {
    if (rec.op == Op::kBegin && rec.spanId == rec.traceId) {
      Pending p;
      p.trace.provisionalTraceId = rec.traceId;
      p.trace.rootStart = rec.when;
      p.trace.rootName = rec.a;
      p.trace.rootComponent = rec.b;
      p.sawRoot = true;
      ++totalTraces_;
      it = pending_.emplace(rec.traceId, std::move(p)).first;
    } else {
      // The trace was evicted from the pending set (or its root record was
      // lost to a full buffer): this record has no home.
      ++orphanRecords_;
      return;
    }
  }
  Pending& p = it->second;
  switch (rec.op) {
    case Op::kBegin: {
      ++totalSpans_;
      SampledSpan span;
      span.spanId = rec.spanId;
      span.parentSpanId = rec.parentSpanId;
      span.start = rec.when;
      span.name = std::move(rec.a);
      span.component = std::move(rec.b);
      if (p.retainReason.empty()) {
        for (const std::string& prefix : config_.retainNamePrefixes) {
          if (span.name.rfind(prefix, 0) == 0) {
            p.retainReason = "trigger:" + prefix;
            break;
          }
        }
      }
      p.spanIndex.emplace(span.spanId, p.trace.spans.size());
      p.trace.spans.push_back(std::move(span));
      ++p.openSpans;
      break;
    }
    case Op::kEnd: {
      const auto si = p.spanIndex.find(rec.spanId);
      if (si == p.spanIndex.end()) {
        ++orphanRecords_;
        return;
      }
      SampledSpan& span = p.trace.spans[si->second];
      if (!span.open()) return;  // double close; first one wins
      span.end = rec.when;
      --p.openSpans;
      if (rec.spanId == rec.traceId) {
        p.rootClosed = true;
        p.trace.rootEnd = rec.when;
      }
      break;
    }
    case Op::kAnnotate: {
      const auto si = p.spanIndex.find(rec.spanId);
      if (si == p.spanIndex.end()) {
        ++orphanRecords_;
        return;
      }
      if (rec.a == kRetainKey && p.retainReason.empty()) {
        p.retainReason = "mark:" + rec.b;
      }
      p.trace.spans[si->second].annotations.emplace_back(std::move(rec.a),
                                                         std::move(rec.b));
      break;
    }
  }
}

void TraceSampler::flush() {
  std::vector<Rec> all;
  for (auto& slot : buffers_) {
    if (!slot || slot->recs.empty()) continue;
    all.insert(all.end(), std::make_move_iterator(slot->recs.begin()),
               std::make_move_iterator(slot->recs.end()));
    slot->recs.clear();
  }
  // The kernel's cross-shard mail tie-break: (when, shard, seq). Within one
  // trace this is causal order (cross-shard hops cost at least the
  // lookahead, so same-time same-trace records share a shard).
  std::sort(all.begin(), all.end(), [](const Rec& x, const Rec& y) {
    if (x.when != y.when) return x.when < y.when;
    if (x.shard != y.shard) return x.shard < y.shard;
    return x.seq < y.seq;
  });
  for (Rec& rec : all) ingest(rec);

  // Resolve completed traces in shard-invariant key order so retention
  // bookkeeping (reservoir churn, retained-cap eviction) replays
  // identically at any shard/worker count.
  std::vector<std::uint64_t> done;
  for (const auto& [id, p] : pending_) {
    if (!p.rootClosed || p.openSpans > 0) continue;
    // Linger after the root close so late asynchronous spans (queued
    // cross-shard work finishing under a cleared episode) join the tree.
    if (sim_ != nullptr && config_.completionLinger > 0 &&
        sim_->now() - p.trace.rootEnd < config_.completionLinger) {
      continue;
    }
    done.push_back(id);
  }
  std::vector<Pending> completed;
  completed.reserve(done.size());
  for (const std::uint64_t id : done) {
    auto node = pending_.extract(id);
    completed.push_back(std::move(node.mapped()));
  }
  std::sort(completed.begin(), completed.end(),
            [](const Pending& x, const Pending& y) {
              return traceKeyLess(x.trace, y.trace);
            });
  for (Pending& p : completed) resolve(std::move(p), /*complete=*/true);

  enforcePendingCap();
  enforceRetainedCap();
  canonicalDirty_ = true;
}

void TraceSampler::finalFlush() {
  flush();
  std::vector<Pending> open;
  open.reserve(pending_.size());
  for (auto& [id, p] : pending_) open.push_back(std::move(p));
  pending_.clear();
  std::sort(open.begin(), open.end(), [](const Pending& x, const Pending& y) {
    return traceKeyLess(x.trace, y.trace);
  });
  for (Pending& p : open) {
    // Traces still here only because of the completion linger are complete;
    // genuinely open ones resolve as shutdown artifacts.
    const bool complete = p.rootClosed && p.openSpans <= 0;
    resolve(std::move(p), complete);
  }
  enforceRetainedCap();
  canonicalDirty_ = true;
}

void TraceSampler::resolve(Pending&& pending, bool complete) {
  SampledTrace t = std::move(pending.trace);
  t.complete = complete && pending.rootClosed;
  if (!pending.retainReason.empty()) {
    retain(std::move(t), std::move(pending.retainReason));
    return;
  }
  if (t.complete && config_.slowThreshold > 0 &&
      t.rootDuration() >= config_.slowThreshold) {
    retain(std::move(t), "slow");
    return;
  }
  if (config_.baselineProbability > 0.0) {
    // Per-trace seeded draw keyed by the shard-invariant trace key: the
    // decision depends on neither processing order nor shard count.
    sim::RandomStream draw(seed_, "obs:sampler:" + t.rootName + "|" +
                                      t.rootComponent + "|" +
                                      std::to_string(t.rootStart));
    if (draw.uniform01() < config_.baselineProbability) {
      retain(std::move(t), "baseline");
      return;
    }
  }
  if (t.complete && config_.slowestReservoir > 0) {
    // Streaming slowest-K under a total order: slower first, key as the
    // tie-break. The surviving set equals the true top-K of everything
    // offered, independent of offer order.
    const auto slower = [](const SampledTrace& x, const SampledTrace& y) {
      if (x.rootDuration() != y.rootDuration()) {
        return x.rootDuration() > y.rootDuration();
      }
      return traceKeyLess(x, y);
    };
    if (reservoir_.size() < config_.slowestReservoir ||
        slower(t, reservoir_.back())) {
      t.reason = "reservoir";
      const auto pos =
          std::upper_bound(reservoir_.begin(), reservoir_.end(), t, slower);
      retainedSpans_ += t.spans.size();
      ++retainedCount_;
      reservoir_.insert(pos, std::move(t));
      if (reservoir_.size() > config_.slowestReservoir) {
        SampledTrace evicted = std::move(reservoir_.back());
        reservoir_.pop_back();
        retainedSpans_ -= evicted.spans.size();
        --retainedCount_;
        ++reservoirEvictions_;
        dropFold(evicted);
      }
      return;
    }
  }
  dropFold(t);
}

void TraceSampler::retain(SampledTrace&& trace, std::string reason) {
  trace.reason = std::move(reason);
  retainedSpans_ += trace.spans.size();
  ++retainedCount_;
  stats_.count("sampler.retained." + trace.reason);
  retained_.push_back(std::move(trace));
}

void TraceSampler::dropFold(const SampledTrace& trace) {
  ++droppedTraces_;
  const auto duration = static_cast<double>(trace.rootDuration());
  droppedDuration_.record(duration);
  stats_.observe("sampler.dropped." + trace.rootName + "_us", duration);
}

void TraceSampler::enforcePendingCap() {
  while (pending_.size() > config_.maxPendingTraces) {
    auto oldest = pending_.begin();
    for (auto it = std::next(pending_.begin()); it != pending_.end(); ++it) {
      if (traceKeyLess(it->second.trace, oldest->second.trace)) oldest = it;
    }
    Pending p = std::move(oldest->second);
    pending_.erase(oldest);
    ++evictedPending_;
    // The eviction still honors triggers/marks that already fired, so a
    // fault trace under memory pressure is kept (flagged incomplete)
    // rather than silently lost.
    resolve(std::move(p), /*complete=*/false);
  }
}

void TraceSampler::enforceRetainedCap() {
  if (config_.maxRetainedSpans == 0) return;
  while (retainedSpans_ > config_.maxRetainedSpans && !retained_.empty()) {
    SampledTrace evicted = std::move(retained_.front());
    retained_.pop_front();
    retainedSpans_ -= evicted.spans.size();
    --retainedCount_;
    ++evictedRetained_;
  }
}

std::vector<const SampledTrace*> TraceSampler::retained() const {
  std::vector<const SampledTrace*> out;
  out.reserve(retained_.size() + reservoir_.size());
  for (const SampledTrace& t : retained_) out.push_back(&t);
  for (const SampledTrace& t : reservoir_) out.push_back(&t);
  return out;
}

void TraceSampler::rebuildCanonical() const {
  std::vector<const SampledTrace*> all = retained();
  std::sort(all.begin(), all.end(),
            [](const SampledTrace* x, const SampledTrace* y) {
              return traceKeyLess(*x, *y);
            });
  canonical_.clear();
  std::uint64_t next = 1;
  for (const SampledTrace* t : all) {
    canonical_.emplace(t->provisionalTraceId, next++);
  }
  canonicalDirty_ = false;
}

std::optional<std::uint64_t> TraceSampler::canonicalTraceId(
    std::uint64_t provisionalTraceId) const {
  if (canonicalDirty_) rebuildCanonical();
  const auto it = canonical_.find(provisionalTraceId);
  if (it == canonical_.end()) return std::nullopt;
  return it->second;
}

std::uint64_t TraceSampler::droppedRecords() const {
  std::uint64_t total = 0;
  for (const auto& slot : buffers_) {
    if (slot) total += slot->dropped;
  }
  return total;
}

}  // namespace softqos::obs
