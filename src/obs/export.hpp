// Exporters for the observability plane.
//
// chromeTraceJson renders retained spans in the Chrome trace_event format
// (ph:"X" complete events, ts/dur in microseconds — SimTime's native unit)
// loadable in chrome://tracing or https://ui.perfetto.dev. Each causal chain
// gets its own tid (= trace id) so detection -> diagnosis -> actuation ->
// recovery chains render as one row each.
//
// metricsJson snapshots a MetricRegistry (counters, series summaries,
// histogram quantiles) as a single JSON object for offline analysis.
#pragma once

#include <string>
#include <vector>

#include "obs/critical_path.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/observer.hpp"
#include "obs/sampler.hpp"
#include "obs/slo.hpp"
#include "sim/metrics.hpp"
#include "sim/rollup.hpp"
#include "sim/trace.hpp"

namespace softqos::obs {

/// Retained spans as a Chrome trace_event JSON document.
///
/// Span ends are envelope-normalized at export time: a parent's duration is
/// extended to cover its latest descendant, so spans that logically end
/// before an async child completes (message-queue hops, RPC replies) still
/// nest properly in the viewer. Open spans close at their latest descendant
/// (or render as instants when childless).
[[nodiscard]] std::string chromeTraceJson(const Observer& observer);

/// The tail sampler's retained traces in the same Chrome trace_event shape.
/// Trace and span ids are renumbered canonically (traces sorted by root
/// start/name/component, spans in record order), so the document is
/// byte-identical across shard and worker counts. Root spans carry the
/// retention reason and completeness flag in args.
[[nodiscard]] std::string chromeTraceJson(const TraceSampler& sampler);

/// Snapshot of all counters, series and histograms as a JSON object.
/// Histograms carry their summary quantiles plus the raw occupied buckets as
/// [lower_bound, count] pairs — and, when present, per-bucket exemplars as
/// {bucket lower bound, trace id, value, when} — so offline tooling can
/// recompute any quantile or jump from a bucket to a retained trace.
[[nodiscard]] std::string metricsJson(const sim::MetricRegistry& metrics);

/// metricsJson plus an "observability" section surfacing the ring-drop
/// counters of every attached plane: the sim::Trace record ring, the
/// span-store Observer and the tail sampler (any may be null). Silent
/// truncation is thereby visible in the export itself.
[[nodiscard]] std::string metricsJson(const sim::MetricRegistry& metrics,
                                      const sim::Trace* trace,
                                      const Observer* observer,
                                      const TraceSampler* sampler);

/// metricsJson whose "observability" section additionally carries the
/// critical-path analyzer's counters (episodes analyzed, incomplete trees
/// skipped, orphan spans) under "analyzer".
[[nodiscard]] std::string metricsJson(const sim::MetricRegistry& metrics,
                                      const sim::Trace* trace,
                                      const Observer* observer,
                                      const TraceSampler* sampler,
                                      const CriticalPathAnalyzer* analyzer);

/// The critical-path analyzer's full result set as a JSON object: analyzer
/// counters, the end-to-end reaction histogram, per-segment histograms in
/// pipeline order, the component and rule blame tables (top `topK`; 0 =
/// all), and every analyzed episode's segment list. Computed from retained
/// trees in canonical order, so the document is byte-identical across shard
/// and worker counts.
[[nodiscard]] std::string attributionJson(const CriticalPathAnalyzer& analyzer,
                                          std::size_t topK = 10);

/// One deadline budget the attribution is judged against.
struct BudgetTarget {
  std::string name;     ///< objective name or contract session label
  std::string tier;     ///< "slo", or the admission tier ("full", "degraded")
  double budgetUs = 0;  ///< the latency budget, in microseconds
};

/// Budget targets from the latency-quantile SLO objectives a tracker holds
/// (thresholds are already in microseconds — the rollup histogram unit).
[[nodiscard]] std::vector<BudgetTarget> budgetTargetsFromSlos(
    const SloTracker& slos);

/// Join segment attribution against deadline budgets: for each target, the
/// fraction of analyzed episodes over budget and each segment's share of the
/// budget (mean attributed time / budget). This is the "which stage spent
/// the deadline" answer per SLO objective and per contract tier.
[[nodiscard]] std::string latencyBudgetJson(
    const CriticalPathAnalyzer& analyzer,
    const std::vector<BudgetTarget>& targets);

/// The domain manager's aggregated telemetry (host-manager rollup windows
/// merged across sources) as a JSON object: domain-wide counter totals,
/// merged histograms, and the latest published window per source host.
[[nodiscard]] std::string domainMetricsJson(
    const sim::TelemetryAggregator& telemetry);

/// domainMetricsJson with exemplar trace ids resolved through the sampler:
/// each exported exemplar additionally carries "sampled_trace", the
/// canonical id of the retained trace it links to (0 when the trace was
/// dropped by the retention policy).
[[nodiscard]] std::string domainMetricsJson(
    const sim::TelemetryAggregator& telemetry, const TraceSampler* sampler);

/// The contract-plane flight recorder as dashboard JSON: per-contract RED
/// tables (Rate = admissions, Errors = rejections / liveliness losses /
/// ownership moves, Duration = per-tier residency histograms), global
/// decision counters, and the bounded decision log.
[[nodiscard]] std::string flightRecorderJson(const FlightRecorder& recorder);

}  // namespace softqos::obs
