// Exporters for the observability plane.
//
// chromeTraceJson renders retained spans in the Chrome trace_event format
// (ph:"X" complete events, ts/dur in microseconds — SimTime's native unit)
// loadable in chrome://tracing or https://ui.perfetto.dev. Each causal chain
// gets its own tid (= trace id) so detection -> diagnosis -> actuation ->
// recovery chains render as one row each.
//
// metricsJson snapshots a MetricRegistry (counters, series summaries,
// histogram quantiles) as a single JSON object for offline analysis.
#pragma once

#include <string>

#include "obs/observer.hpp"
#include "sim/metrics.hpp"
#include "sim/rollup.hpp"

namespace softqos::obs {

/// Retained spans as a Chrome trace_event JSON document.
///
/// Span ends are envelope-normalized at export time: a parent's duration is
/// extended to cover its latest descendant, so spans that logically end
/// before an async child completes (message-queue hops, RPC replies) still
/// nest properly in the viewer. Open spans close at their latest descendant
/// (or render as instants when childless).
[[nodiscard]] std::string chromeTraceJson(const Observer& observer);

/// Snapshot of all counters, series and histograms as a JSON object.
/// Histograms carry their summary quantiles plus the raw occupied buckets as
/// [lower_bound, count] pairs, so offline tooling can recompute any quantile
/// or merge distributions across runs.
[[nodiscard]] std::string metricsJson(const sim::MetricRegistry& metrics);

/// The domain manager's aggregated telemetry (host-manager rollup windows
/// merged across sources) as a JSON object: domain-wide counter totals,
/// merged histograms, and the latest published window per source host.
[[nodiscard]] std::string domainMetricsJson(
    const sim::TelemetryAggregator& telemetry);

}  // namespace softqos::obs
