// Shared span-tree scaffolding for the analysis plane (critical-path
// attribution, flame graphs): index a retained trace's flat span list into a
// parent/children tree and compute envelope-normalized effective ends.
//
// Envelope normalization matches the Chrome-trace exporters: a span's
// effective end covers its latest descendant, so asynchronous children that
// outlive their parent (message-queue hops, RPC replies, a domain manager's
// diagnosis landing under an already-cleared episode) still nest. Children
// are always minted after their parent — every producer (Observer,
// TraceSampler) appends spans in mint order — so one reverse pass visits
// every child before its parent.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <vector>

#include "obs/sampler.hpp"
#include "sim/time.hpp"

namespace softqos::obs {

/// One retained trace viewed as a tree. Indices refer to the span vector the
/// tree was built from; the tree never owns the spans.
struct SpanTree {
  std::size_t root = 0;                            // index of the root span
  std::vector<std::vector<std::size_t>> children;  // per span, in mint order
  std::vector<sim::SimTime> effEnd;                // envelope-normalized ends
  /// Spans whose parent id resolved to no span in the list (the parent's
  /// begin record was lost to a buffer cap); they are excluded from the tree.
  std::size_t orphanSpans = 0;

  /// Build from a mint-ordered span list. Returns nullopt when the list is
  /// empty or contains no root (parentSpanId == 0) span; a second root and
  /// its subtree count as orphans.
  [[nodiscard]] static std::optional<SpanTree> build(
      const std::vector<SampledSpan>& spans) {
    if (spans.empty()) return std::nullopt;
    SpanTree tree;
    tree.children.resize(spans.size());
    tree.effEnd.resize(spans.size());

    std::map<std::uint64_t, std::size_t> index;
    bool sawRoot = false;
    for (std::size_t i = 0; i < spans.size(); ++i) {
      index.emplace(spans[i].spanId, i);
      if (spans[i].parentSpanId == 0 && !sawRoot) {
        tree.root = i;
        sawRoot = true;
      }
    }
    if (!sawRoot) return std::nullopt;

    for (std::size_t i = 0; i < spans.size(); ++i) {
      if (i == tree.root) continue;
      const auto parent = index.find(spans[i].parentSpanId);
      if (spans[i].parentSpanId == 0 || parent == index.end()) {
        ++tree.orphanSpans;
        continue;
      }
      tree.children[parent->second].push_back(i);
    }

    // Reverse pass: children are minted after their parent, so every child's
    // envelope is final before its parent's is extended.
    for (std::size_t i = spans.size(); i-- > 0;) {
      const SampledSpan& s = spans[i];
      // max(own end, latest child): children visited earlier may already
      // have propagated into effEnd[i], so extend rather than overwrite.
      const sim::SimTime ownEnd = s.open() ? s.start : s.end;
      if (tree.effEnd[i] < ownEnd) tree.effEnd[i] = ownEnd;
      if (i == tree.root || spans[i].parentSpanId == 0) continue;
      const auto parent = index.find(s.parentSpanId);
      if (parent != index.end() &&
          tree.effEnd[parent->second] < tree.effEnd[i]) {
        tree.effEnd[parent->second] = tree.effEnd[i];
      }
    }
    return tree;
  }
};

}  // namespace softqos::obs
