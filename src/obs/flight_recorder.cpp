#include "obs/flight_recorder.hpp"

#include "sim/span.hpp"

namespace softqos::obs {

FlightRecorder::FlightRecorder(sim::Simulation& sim, std::size_t maxRecords)
    : sim_(sim), maxRecords_(maxRecords == 0 ? 1 : maxRecords) {}

void FlightRecorder::record(std::string_view kind, std::uint32_t pid,
                            std::string_view contract,
                            std::string_view detail) {
  ++total_;
  FlightRecord rec;
  rec.when = sim_.now();
  rec.kind = std::string(kind);
  rec.pid = pid;
  rec.contract = std::string(contract);
  rec.detail = std::string(detail);

  stats_.count("flight." + rec.kind);
  if (!rec.contract.empty()) {
    stats_.count("flight." + rec.contract + "." + rec.kind);
    ++contracts_[rec.contract];
  }

  if (sim::SpanObserver* o = sim_.observer()) {
    const sim::TraceContext ctx = o->beginTrace(
        rec.when, "contract:" + rec.kind, "policy-agent");
    o->annotate(ctx, "pid", std::to_string(pid));
    if (!rec.contract.empty()) o->annotate(ctx, "contract", rec.contract);
    if (!rec.detail.empty()) o->annotate(ctx, "detail", rec.detail);
    o->endSpan(rec.when, ctx);
  }

  records_.push_back(std::move(rec));
  while (records_.size() > maxRecords_) {
    records_.pop_front();
    ++dropped_;
  }
}

void FlightRecorder::tierEnter(std::uint32_t pid, std::string_view contract,
                               std::string_view tier) {
  auto it = residency_.find(pid);
  if (it != residency_.end()) {
    if (it->second.tier == tier && it->second.contract == contract) return;
    foldResidency(it->second);
    it->second.contract = std::string(contract);
    it->second.tier = std::string(tier);
    it->second.since = sim_.now();
    return;
  }
  residency_.emplace(
      pid, Residency{std::string(contract), std::string(tier), sim_.now()});
}

void FlightRecorder::sessionEnd(std::uint32_t pid) {
  const auto it = residency_.find(pid);
  if (it == residency_.end()) return;
  foldResidency(it->second);
  residency_.erase(it);
}

void FlightRecorder::foldResidency(const Residency& residency) {
  const auto spent = static_cast<double>(sim_.now() - residency.since);
  stats_.observe("flight.residency_us." + residency.tier, spent);
  if (!residency.contract.empty()) {
    stats_.observe(
        "flight." + residency.contract + ".residency_us." + residency.tier,
        spent);
  }
}

}  // namespace softqos::obs
