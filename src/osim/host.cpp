#include "osim/host.hpp"

#include <utility>

namespace softqos::osim {

Host::Host(sim::Simulation& simulation, std::string name, HostConfig config)
    : sim_(simulation),
      name_(std::move(name)),
      config_(config),
      cpu_(simulation, *this),
      memory_(*this, config.memoryPages),
      load_(simulation, [this] { return cpu_.activeCount(); }),
      spawned_(simulation.localMetrics().counterHandle("host." + name_ + ".spawned")),
      terminated_(
          simulation.localMetrics().counterHandle("host." + name_ + ".terminated")) {
  load_.setKeepRunning([this] { return liveProcessCount() > 0; });
}

Host::~Host() = default;

std::shared_ptr<Process> Host::spawn(std::string processName,
                                     Process::Behaviour behaviour,
                                     SchedClass cls) {
  const Pid pid = nextPid_++;
  auto proc = std::make_shared<Process>(*this, pid, std::move(processName), cls);
  table_.emplace(pid, proc);
  memory_.rebalance();
  load_.start();
  spawned_.add();
  proc->start(std::move(behaviour));
  return proc;
}

bool Host::kill(Pid pid) {
  Process* p = find(pid);
  if (p == nullptr || p->terminated()) return false;
  sim_.info("host." + name_, [&] {
    return "killing pid " + std::to_string(pid) + " (" + p->name() + ")";
  });
  p->terminate();
  return true;
}

Process* Host::find(Pid pid) {
  const auto it = table_.find(pid);
  return it == table_.end() ? nullptr : it->second.get();
}

const Process* Host::find(Pid pid) const {
  const auto it = table_.find(pid);
  return it == table_.end() ? nullptr : it->second.get();
}

std::size_t Host::liveProcessCount() const {
  std::size_t n = 0;
  for (const auto& [pid, p] : table_) {
    (void)pid;
    if (!p->terminated()) ++n;
  }
  return n;
}

MessageQueue& Host::msgQueue(const std::string& key) {
  auto it = queues_.find(key);
  if (it == queues_.end()) {
    it = queues_
             .emplace(key, std::make_unique<MessageQueue>(
                               sim_, key, config_.msgQueueLatency))
             .first;
  }
  return *it->second;
}

std::shared_ptr<Socket> Host::createSocket(std::int64_t capacityBytes) {
  if (capacityBytes <= 0) capacityBytes = config_.socketCapacityBytes;
  const Socket::Fd fd = nextFd_++;
  auto sock = std::make_shared<Socket>(sim_, fd, capacityBytes);
  sockets_.emplace(fd, sock);
  return sock;
}

Socket* Host::socket(Socket::Fd fd) {
  const auto it = sockets_.find(fd);
  return it == sockets_.end() ? nullptr : it->second.get();
}

void Host::connectLocal(const std::shared_ptr<Socket>& a,
                        const std::shared_ptr<Socket>& b,
                        sim::SimDuration latency) {
  // Weak captures: each transmit closure referencing the peer's shared_ptr
  // would form a cycle (a owns a closure owning b and vice versa) and leak
  // both sockets. In-flight deliveries still pin the peer via the event.
  a->setTransmit([this, bw = std::weak_ptr<Socket>(b), latency](Message m) {
    if (auto peer = bw.lock()) {
      sim_.after(latency, [peer, m = std::move(m)]() mutable {
        peer->deliver(std::move(m));
      });
    }
  });
  b->setTransmit([this, aw = std::weak_ptr<Socket>(a), latency](Message m) {
    if (auto peer = aw.lock()) {
      sim_.after(latency, [peer, m = std::move(m)]() mutable {
        peer->deliver(std::move(m));
      });
    }
  });
}

void Host::shutdown() {
  for (auto& [pid, p] : table_) {
    (void)pid;
    if (!p->terminated()) p->terminate();
  }
  for (auto& [fd, s] : sockets_) {
    (void)fd;
    s->close();
  }
  load_.stop();
}

bool Host::crash() {
  if (!up_) return false;
  up_ = false;
  ++crashes_;
  sim_.warn("host." + name_, "host crashed");
  for (auto& [pid, p] : table_) {
    (void)pid;
    if (!p->terminated()) p->terminate();
  }
  return true;
}

bool Host::restart() {
  if (up_) return false;
  up_ = true;
  sim_.info("host." + name_, "host restarted");
  return true;
}

void Host::onProcessTerminated(Process& p) {
  terminated_.add();
  (void)p;
  memory_.rebalance();
}

}  // namespace softqos::osim
