#include "osim/process.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "osim/cpu.hpp"
#include "osim/host.hpp"
#include "osim/memory.hpp"

namespace softqos::osim {

Process::Process(Host& host, Pid pid, std::string name, SchedClass cls)
    : host_(host), pid_(pid), name_(std::move(name)), cls_(cls) {}

SchedClass Process::effectiveClass() const {
  if (cls_ == SchedClass::kRealTime) return SchedClass::kRealTime;
  if (rtGrant_.active() && rtBudgetLeft_ > 0) return SchedClass::kRealTime;
  return SchedClass::kTimeSharing;
}

void Process::compute(sim::SimDuration cpuTime, Cont then) {
  if (terminated()) return;
  if (cpuTime < 0) throw std::invalid_argument("Process::compute: negative burst");
  if (cpuTime == 0) {
    // Zero-cost step: continue on the next event-loop turn without touching
    // the run queue (models an instantaneous user-mode action).
    state_ = ProcState::kDeciding;
    host_.sim().after(0, [this, then = std::move(then)]() mutable {
      runCont(std::move(then));
    });
    return;
  }
  burstRemaining_ = cpuTime;
  afterBurst_ = std::move(then);
  host_.cpu().makeRunnable(this, /*sleepReturn=*/false);
}

void Process::sleepFor(sim::SimDuration wallTime, Cont then) {
  if (terminated()) return;
  if (wallTime < 0) throw std::invalid_argument("Process::sleepFor: negative time");
  state_ = ProcState::kSleeping;
  sleepEvent_ =
      host_.sim().after(wallTime, [this, then = std::move(then)]() mutable {
        sleepEvent_ = sim::kInvalidEvent;
        // Sleep return earns the dispatch-table promotion before whatever the
        // continuation does next (typically another compute()).
        host_.cpu().scheduler().onSleepReturn(*this, host_.sim().now());
        runCont(std::move(then));
      });
}

void Process::waitSignal(Cont then) {
  if (terminated()) return;
  if (signalLatched_) {
    signalLatched_ = false;
    state_ = ProcState::kDeciding;
    host_.sim().after(0, [this, then = std::move(then)]() mutable {
      runCont(std::move(then));
    });
    return;
  }
  state_ = ProcState::kBlocked;
  blockedCont_ = std::move(then);
}

void Process::signal() {
  if (terminated()) return;
  if (state_ == ProcState::kBlocked && blockedCont_) {
    Cont cont = std::move(blockedCont_);
    blockedCont_ = nullptr;
    state_ = ProcState::kDeciding;
    host_.cpu().scheduler().onSleepReturn(*this, host_.sim().now());
    host_.sim().after(0, [this, cont = std::move(cont)]() mutable {
      runCont(std::move(cont));
    });
  } else {
    signalLatched_ = true;
  }
}

void Process::exitProcess() { terminate(); }

void Process::terminate() {
  if (terminated()) return;
  state_ = ProcState::kTerminated;
  host_.cpu().onProcessGone(this);
  if (sleepEvent_ != sim::kInvalidEvent) {
    host_.sim().cancel(sleepEvent_);
    sleepEvent_ = sim::kInvalidEvent;
  }
  if (rtRefreshEvent_ != sim::kInvalidEvent) {
    host_.sim().cancel(rtRefreshEvent_);
    rtRefreshEvent_ = sim::kInvalidEvent;
  }
  blockedCont_ = nullptr;
  afterBurst_ = nullptr;
  burstRemaining_ = 0;
  host_.onProcessTerminated(*this);
}

void Process::runCont(Cont cont) {
  if (terminated()) return;
  state_ = ProcState::kDeciding;
  if (!cont) return;  // behaviour supplied no continuation: process idles
  cont();
}

void Process::setTsUserPriority(int upri) {
  tsUserPri_ = std::clamp(upri, -60, 60);
  host_.cpu().onPriorityChanged(this);
}

void Process::setRtGrant(RtGrant grant) {
  if (grant.active() && grant.period <= 0) {
    throw std::invalid_argument("RtGrant: period must be positive");
  }
  if (rtRefreshEvent_ != sim::kInvalidEvent) {
    host_.sim().cancel(rtRefreshEvent_);
    rtRefreshEvent_ = sim::kInvalidEvent;
  }
  rtGrant_ = grant;
  rtBudgetLeft_ = grant.active() ? grant.budgetPerPeriod() : 0;
  if (grant.active()) scheduleRtRefresh();
  host_.cpu().onPriorityChanged(this);
}

void Process::scheduleRtRefresh() {
  rtRefreshEvent_ = host_.sim().every(rtGrant_.period, [this] {
    rtBudgetLeft_ = rtGrant_.budgetPerPeriod();
    host_.cpu().onPriorityChanged(this);
  });
}

void Process::setWorkingSetPages(std::int64_t pages) {
  workingSetPages_ = std::max<std::int64_t>(0, pages);
  host_.memory().rebalance();
}

void Process::setMemoryCapPages(std::int64_t cap) {
  memCapPages_ = cap < 0 ? -1 : cap;
  host_.memory().rebalance();
}

void Process::start(Behaviour behaviour) {
  assert(state_ == ProcState::kNew);
  state_ = ProcState::kDeciding;
  if (behaviour) behaviour(*this);
}

}  // namespace softqos::osim
