// UNIX-style exponentially damped load average.
#pragma once

#include <functional>

#include "sim/simulation.hpp"
#include "sim/time.hpp"

namespace softqos::osim {

/// Samples a run-queue-length source at a fixed interval and maintains an
/// exponentially damped average over `horizon` (1 minute by default),
/// reproducing the UNIX 1-minute load average the paper's Figure 3 uses as
/// its x-axis.
class LoadAverage {
 public:
  LoadAverage(sim::Simulation& simulation, std::function<std::size_t()> source,
              sim::SimDuration interval = sim::sec(1),
              sim::SimDuration horizon = sim::sec(60));
  ~LoadAverage();

  LoadAverage(const LoadAverage&) = delete;
  LoadAverage& operator=(const LoadAverage&) = delete;

  /// Begin periodic sampling (idempotent).
  void start();

  /// Stop sampling; the last value is retained.
  void stop();

  /// Optional liveness predicate: when it returns false at a sampling tick,
  /// the sampler stops itself (so simulations can drain their event queues
  /// once all processes have exited). start() re-arms it.
  void setKeepRunning(std::function<bool()> keepRunning) {
    keepRunning_ = std::move(keepRunning);
  }

  [[nodiscard]] double value() const { return value_; }
  [[nodiscard]] bool running() const { return event_ != sim::kInvalidEvent; }

  /// Seed the average (used by experiments that pre-warm the workload).
  void prime(double v) { value_ = v; }

 private:
  void sample();

  sim::Simulation& sim_;
  std::function<std::size_t()> source_;
  sim::SimDuration interval_;
  double decay_;  // exp(-interval / horizon)
  double value_ = 0.0;
  sim::EventId event_ = sim::kInvalidEvent;
  std::function<bool()> keepRunning_;
};

}  // namespace softqos::osim
