// Message-oriented sockets with finite kernel receive buffers.
//
// The receive buffer is the "communication buffer" of paper Example 5: its
// occupancy (bufferBytes) is what the buffer sensor reads to decide whether a
// QoS problem is local (buffer backed up: the client cannot drain it) or
// remote (buffer empty: frames are not arriving).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "osim/process.hpp"
#include "sim/simulation.hpp"
#include "sim/time.hpp"

namespace softqos::osim {

/// One application-level message (e.g. a video frame). `bytes` is the
/// simulated wire size; `payload` carries small structured metadata.
struct Message {
  std::string kind;          // e.g. "frame", "eof", "rpc"
  std::uint64_t seq = 0;
  std::int64_t bytes = 0;
  std::string payload;
  sim::SimTime sentAt = 0;
};

class Socket {
 public:
  using Fd = int;
  using MessageCont = std::function<void(Message)>;
  using TransmitHook = std::function<void(Message)>;

  Socket(sim::Simulation& simulation, Fd fd, std::int64_t capacityBytes);

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] Fd fd() const { return fd_; }

  /// Send a message. Requires a transport hook (installed by the network
  /// layer or by Host::connectLocal); messages sent on an unplumbed or closed
  /// socket are dropped and counted.
  void send(Message m);

  /// Blocking receive for a simulated process: runs `cont` with the next
  /// message. On a closed socket with an empty buffer, delivers kind="eof".
  /// One outstanding reader per socket.
  void recv(Process& reader, MessageCont cont);

  /// Transport-side delivery into the kernel receive buffer. Messages that
  /// would overflow the buffer are dropped (and counted), like a full UDP
  /// socket buffer.
  void deliver(Message m);

  /// Close the socket: pending/future recv on an empty buffer yields EOF.
  void close();

  void setTransmit(TransmitHook hook) { transmit_ = std::move(hook); }

  /// Daemon-style receiver for management components that are event-driven
  /// objects rather than simulated processes: messages bypass the kernel
  /// buffer and are handed over immediately on delivery. Any buffered
  /// messages are flushed to the receiver when it is installed.
  void setDaemonReceiver(MessageCont receiver);

  // ---- Observables (the probe surface of Example 5) ----
  [[nodiscard]] std::int64_t bufferBytes() const { return bufferBytes_; }
  [[nodiscard]] std::int64_t capacityBytes() const { return capacity_; }
  [[nodiscard]] std::size_t queuedMessages() const { return buffer_.size(); }
  [[nodiscard]] std::uint64_t deliveredCount() const { return deliveredCount_; }
  [[nodiscard]] std::uint64_t dropCount() const { return drops_; }
  [[nodiscard]] std::uint64_t sendDropCount() const { return sendDrops_; }
  [[nodiscard]] bool closed() const { return closed_; }

 private:
  void wakeReader();

  sim::Simulation& sim_;
  Fd fd_;
  std::int64_t capacity_;
  std::int64_t bufferBytes_ = 0;
  std::deque<Message> buffer_;
  TransmitHook transmit_;
  MessageCont daemonReceiver_;
  Process* waitingReader_ = nullptr;
  bool closed_ = false;
  std::uint64_t deliveredCount_ = 0;
  std::uint64_t drops_ = 0;
  std::uint64_t sendDrops_ = 0;
};

}  // namespace softqos::osim
