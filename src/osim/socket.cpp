#include "osim/socket.hpp"

#include <utility>

namespace softqos::osim {

Socket::Socket(sim::Simulation& simulation, Fd fd, std::int64_t capacityBytes)
    : sim_(simulation), fd_(fd), capacity_(capacityBytes) {}

void Socket::send(Message m) {
  if (closed_ || !transmit_) {
    ++sendDrops_;
    return;
  }
  m.sentAt = sim_.now();
  transmit_(std::move(m));
}

void Socket::recv(Process& reader, MessageCont cont) {
  if (reader.terminated()) return;
  if (!buffer_.empty()) {
    Message m = std::move(buffer_.front());
    buffer_.pop_front();
    bufferBytes_ -= m.bytes;
    sim_.after(0, [&reader, cont = std::move(cont), m = std::move(m)]() mutable {
      if (!reader.terminated()) cont(std::move(m));
    });
    return;
  }
  if (closed_) {
    sim_.after(0, [&reader, cont = std::move(cont)]() mutable {
      Message eof;
      eof.kind = "eof";
      if (!reader.terminated()) cont(std::move(eof));
    });
    return;
  }
  waitingReader_ = &reader;
  reader.waitSignal([this, &reader, cont = std::move(cont)]() mutable {
    recv(reader, std::move(cont));
  });
}

void Socket::deliver(Message m) {
  if (closed_) {
    ++drops_;
    return;
  }
  if (daemonReceiver_) {
    ++deliveredCount_;
    daemonReceiver_(std::move(m));
    return;
  }
  if (bufferBytes_ + m.bytes > capacity_) {
    ++drops_;
    return;
  }
  bufferBytes_ += m.bytes;
  ++deliveredCount_;
  buffer_.push_back(std::move(m));
  wakeReader();
}

void Socket::setDaemonReceiver(MessageCont receiver) {
  daemonReceiver_ = std::move(receiver);
  if (!daemonReceiver_) return;
  while (!buffer_.empty()) {
    Message m = std::move(buffer_.front());
    buffer_.pop_front();
    bufferBytes_ -= m.bytes;
    ++deliveredCount_;
    daemonReceiver_(std::move(m));
  }
}

void Socket::close() {
  if (closed_) return;
  closed_ = true;
  wakeReader();  // a blocked reader must observe EOF
}

void Socket::wakeReader() {
  if (waitingReader_ == nullptr) return;
  Process* reader = waitingReader_;
  waitingReader_ = nullptr;
  reader->signal();
}

}  // namespace softqos::osim
