#include "osim/cpu.hpp"

#include <algorithm>
#include <cassert>

#include "osim/host.hpp"
#include "osim/memory.hpp"

namespace softqos::osim {

Cpu::Cpu(sim::Simulation& simulation, Host& host) : sim_(simulation), host_(host) {}

void Cpu::makeRunnable(Process* p, bool sleepReturn) {
  assert(p != nullptr);
  if (p->terminated()) return;
  if (sleepReturn) scheduler_.onSleepReturn(*p, sim_.now());
  p->state_ = ProcState::kRunnable;
  scheduler_.enqueue(p);
  ensureAgingScheduled();
  if (running_ == nullptr) {
    maybeDispatch();
  } else {
    preemptIfNeeded();
  }
}

void Cpu::onPriorityChanged(Process* p) {
  if (p == running_) {
    // The running process may have been demoted below a queued one.
    if (scheduler_.topPriority() > scheduler_.globalPriority(*p)) {
      ++p->preemptions_;
      stopSlice(p, /*requeue=*/true);
      maybeDispatch();
    }
  } else {
    preemptIfNeeded();
  }
}

void Cpu::onProcessGone(Process* p) {
  if (p == running_) {
    stopSlice(p, /*requeue=*/false);
    maybeDispatch();
  } else {
    scheduler_.remove(p);
  }
}

void Cpu::maybeDispatch() {
  if (running_ != nullptr) return;
  Process* next = scheduler_.pickNext();
  if (next == nullptr) return;
  beginSlice(next);
}

void Cpu::preemptIfNeeded() {
  if (running_ == nullptr) {
    maybeDispatch();
    return;
  }
  if (scheduler_.topPriority() > scheduler_.globalPriority(*running_)) {
    Process* preempted = running_;
    ++preempted->preemptions_;
    stopSlice(preempted, /*requeue=*/true);
    maybeDispatch();
  }
}

sim::SimDuration Cpu::rtBudgetCeiling(const Process& p) const {
  if (p.rtGrant().active() && p.effectiveClass() == SchedClass::kRealTime &&
      p.schedClass() != SchedClass::kRealTime) {
    return p.rtBudgetLeft();
  }
  return 0;  // no ceiling
}

void Cpu::beginSlice(Process* p) {
  assert(running_ == nullptr);
  assert(p->burstRemaining_ > 0);
  running_ = p;
  p->state_ = ProcState::kRunning;
  ++contextSwitches_;

  // The quantum allowance persists across dispatches and bursts (Solaris
  // charges CPU use cumulatively); it refills only after expiry or sleep.
  if (p->quantumLeft_ <= 0) p->quantumLeft_ = scheduler_.quantumFor(*p);
  sim::SimDuration cpuSlice = std::min(p->quantumLeft_, p->burstRemaining_);
  const sim::SimDuration ceiling = rtBudgetCeiling(*p);
  sliceChargesRtBudget_ = ceiling > 0;
  if (ceiling > 0) cpuSlice = std::min(cpuSlice, ceiling);

  sliceCpuPlanned_ = std::max<sim::SimDuration>(cpuSlice, 1);
  sliceSlowdownPct_ = host_.memory().slowdownPercent(*p);
  sliceStart_ = sim_.now();

  const sim::SimDuration wall =
      std::max<sim::SimDuration>(sliceCpuPlanned_ * sliceSlowdownPct_ / 100, 1);
  sliceEvent_ = sim_.after(wall, [this] { onSliceEnd(); });
}

void Cpu::onSliceEnd() {
  Process* p = running_;
  assert(p != nullptr);
  running_ = nullptr;
  sliceEvent_ = sim::kInvalidEvent;

  const sim::SimDuration cpuDone = sliceCpuPlanned_;
  p->cpuUsed_ += cpuDone;
  busyWall_ += sim_.now() - sliceStart_;
  if (sliceChargesRtBudget_) {
    p->rtBudgetLeft_ = std::max<sim::SimDuration>(0, p->rtBudgetLeft_ - cpuDone);
  }
  p->burstRemaining_ -= cpuDone;
  p->quantumLeft_ -= cpuDone;

  // Apply quantum expiry BEFORE any continuation runs: a continuation that
  // immediately computes again would otherwise be re-dispatched with a fresh
  // allowance and dodge demotion forever.
  const bool expired = p->quantumLeft_ <= 0;
  if (expired) scheduler_.onQuantumExpired(*p, sim_.now());

  if (p->burstRemaining_ <= 0) {
    p->burstRemaining_ = 0;
    Process::Cont cont = std::move(p->afterBurst_);
    p->afterBurst_ = nullptr;
    p->runCont(std::move(cont));
    // If the continuation immediately computes again, the process never
    // yielded the CPU: keep running it (within the remaining allowance)
    // unless something at least as high-priority is queued.
    if (!expired && running_ == nullptr &&
        p->state_ == ProcState::kRunnable && p->quantumLeft_ > 0 &&
        scheduler_.globalPriority(*p) >= scheduler_.topPriority()) {
      scheduler_.remove(p);
      beginSlice(p);
      return;
    }
  } else {
    p->state_ = ProcState::kRunnable;
    scheduler_.enqueue(p);
  }
  maybeDispatch();
}

void Cpu::stopSlice(Process* p, bool requeue) {
  assert(p == running_);
  sim_.cancel(sliceEvent_);
  sliceEvent_ = sim::kInvalidEvent;
  running_ = nullptr;

  const sim::SimDuration elapsedWall = sim_.now() - sliceStart_;
  sim::SimDuration cpuDone =
      std::clamp<sim::SimDuration>(elapsedWall * 100 / sliceSlowdownPct_, 0,
                                   sliceCpuPlanned_);
  p->cpuUsed_ += cpuDone;
  busyWall_ += elapsedWall;
  if (sliceChargesRtBudget_) {
    p->rtBudgetLeft_ = std::max<sim::SimDuration>(0, p->rtBudgetLeft_ - cpuDone);
  }
  p->burstRemaining_ -= cpuDone;
  p->quantumLeft_ -= cpuDone;
  if (p->quantumLeft_ <= 0) scheduler_.onQuantumExpired(*p, sim_.now());
  // A preempted burst must stay incomplete: rounding may have consumed it all,
  // in which case one residual tick forces a final dispatch to finish cleanly.
  if (p->burstRemaining_ <= 0) p->burstRemaining_ = 1;

  if (requeue && !p->terminated()) {
    p->state_ = ProcState::kRunnable;
    scheduler_.enqueue(p);
  }
}

void Cpu::ensureAgingScheduled() {
  if (agingEvent_ != sim::kInvalidEvent) return;
  agingEvent_ = sim_.every(agingInterval_, [this] {
    const std::size_t promoted = scheduler_.applyAging(sim_.now(), agingInterval_);
    if (promoted > 0) preemptIfNeeded();
    if (activeCount() == 0) {
      sim_.cancel(agingEvent_);
      agingEvent_ = sim::kInvalidEvent;
    }
  });
}

double Cpu::utilization() const {
  const sim::SimTime elapsed = sim_.now();
  if (elapsed <= 0) return 0.0;
  return static_cast<double>(busyWall_) / static_cast<double>(elapsed);
}

}  // namespace softqos::osim
