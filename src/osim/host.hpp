// A simulated host: one CPU with a Solaris-style scheduler, physical memory,
// a process table, message queues, sockets and a 1-minute load average.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "osim/cpu.hpp"
#include "osim/loadavg.hpp"
#include "osim/memory.hpp"
#include "osim/msgqueue.hpp"
#include "osim/process.hpp"
#include "osim/socket.hpp"
#include "sim/simulation.hpp"

namespace softqos::osim {

struct HostConfig {
  std::int64_t memoryPages = 65536;          // 512 MiB at 8 KiB pages
  std::int64_t socketCapacityBytes = 262144; // default kernel receive buffer
  sim::SimDuration msgQueueLatency = sim::usec(50);
};

class Host {
 public:
  Host(sim::Simulation& simulation, std::string name, HostConfig config = {});
  ~Host();

  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] sim::Simulation& sim() { return sim_; }

  /// Shard this host's activity executes on (0 unless assigned). Fault
  /// injection posts crash/restart events to the owning shard; the host's
  /// NIC and agents must be placed on the same shard.
  [[nodiscard]] sim::ShardId shard() const { return shard_; }
  void setShard(sim::ShardId shard) { shard_ = shard; }

  /// Create a process and start its behaviour immediately. The returned
  /// process stays in the table (as a zombie) after termination, so raw
  /// pointers held by instruments remain valid for the simulation's lifetime.
  std::shared_ptr<Process> spawn(std::string processName,
                                 Process::Behaviour behaviour,
                                 SchedClass cls = SchedClass::kTimeSharing);

  /// Forcibly terminate a process (fault injection). Returns false if the pid
  /// is unknown or already terminated.
  bool kill(Pid pid);

  [[nodiscard]] Process* find(Pid pid);
  [[nodiscard]] const Process* find(Pid pid) const;
  [[nodiscard]] const std::map<Pid, std::shared_ptr<Process>>& processes() const {
    return table_;
  }
  [[nodiscard]] std::size_t liveProcessCount() const;

  Cpu& cpu() { return cpu_; }
  const Cpu& cpu() const { return cpu_; }
  MemoryModel& memory() { return memory_; }
  const MemoryModel& memory() const { return memory_; }

  /// The UNIX-style 1-minute load average (sampling starts at first spawn).
  [[nodiscard]] double loadAverage() const { return load_.value(); }
  LoadAverage& loadSampler() { return load_; }

  /// Get-or-create a named SysV-style message queue.
  MessageQueue& msgQueue(const std::string& key);

  /// Create a socket with the host's default (or an explicit) buffer size.
  std::shared_ptr<Socket> createSocket(std::int64_t capacityBytes = 0);
  [[nodiscard]] Socket* socket(Socket::Fd fd);

  /// Plumb two sockets as a bidirectional local pair with a fixed latency.
  void connectLocal(const std::shared_ptr<Socket>& a,
                    const std::shared_ptr<Socket>& b,
                    sim::SimDuration latency = sim::usec(20));

  /// Kill all processes and stop the load sampler (lets runAll() drain).
  void shutdown();

  // ---- Fault injection: whole-host crash/restart ----

  /// True while the host is powered on (default). A crashed host's NIC drops
  /// every inbound packet and its message queues reject sends.
  [[nodiscard]] bool isUp() const { return up_; }

  /// Crash the host: every live process is killed and inbound network
  /// traffic is dropped at the NIC until restart(). Returns false if
  /// already down.
  bool crash();

  /// Power the host back on. Processes are NOT respawned — recovery is the
  /// management plane's job (restart handlers, heartbeat revalidation).
  /// Returns false if the host was not down.
  bool restart();

  [[nodiscard]] std::uint64_t crashes() const { return crashes_; }

 private:
  friend class Process;
  void onProcessTerminated(Process& p);

  sim::Simulation& sim_;
  std::string name_;
  HostConfig config_;
  Cpu cpu_;
  MemoryModel memory_;
  LoadAverage load_;
  sim::Counter spawned_;     // interned once; bumped per spawn without a
  sim::Counter terminated_;  // string build + map lookup
  std::map<Pid, std::shared_ptr<Process>> table_;
  std::map<std::string, std::unique_ptr<MessageQueue>> queues_;
  std::map<Socket::Fd, std::shared_ptr<Socket>> sockets_;
  Pid nextPid_ = 1;
  Socket::Fd nextFd_ = 3;  // 0..2 are conventionally stdio
  bool up_ = true;
  std::uint64_t crashes_ = 0;
  sim::ShardId shard_ = 0;
};

}  // namespace softqos::osim
