#include "osim/msgqueue.hpp"

#include <utility>

namespace softqos::osim {

MessageQueue::MessageQueue(sim::Simulation& simulation, std::string key,
                           sim::SimDuration latency, std::size_t maxDepth)
    : sim_(simulation),
      key_(std::move(key)),
      latency_(latency),
      maxDepth_(maxDepth) {}

bool MessageQueue::send(std::string payload, std::uint32_t senderPid) {
  if (inFlight_ + backlog_.size() >= maxDepth_) {
    ++dropped_;
    return false;
  }
  ++inFlight_;
  sim_.after(latency_, [this, d = Datagram{senderPid, std::move(payload)}]() mutable {
    --inFlight_;
    arrive(std::move(d));
  });
  return true;
}

void MessageQueue::setReceiver(Handler handler) {
  handler_ = std::move(handler);
  if (!handler_) return;
  while (!backlog_.empty()) {
    Datagram d = std::move(backlog_.front());
    backlog_.pop_front();
    ++delivered_;
    handler_(d);
  }
}

void MessageQueue::arrive(Datagram d) {
  if (handler_) {
    ++delivered_;
    handler_(d);
  } else {
    backlog_.push_back(std::move(d));
  }
}

}  // namespace softqos::osim
