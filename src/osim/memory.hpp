// Physical-memory model: resident-set assignment and page-fault slowdown.
//
// Each process declares a working set; the host assigns resident pages from a
// fixed physical pool. When a process is short of its working set, its CPU
// bursts stretch (extra wall time models page-fault stalls). The Memory
// Resource Manager's knob is the per-process resident cap
// (Process::setMemoryCapPages), mirroring the paper's prototype which adjusted
// "the number of resident pages each process has in physical memory".
#pragma once

#include <cstdint>

namespace softqos::osim {

class Host;
class Process;

class MemoryModel {
 public:
  MemoryModel(Host& host, std::int64_t totalPages);

  MemoryModel(const MemoryModel&) = delete;
  MemoryModel& operator=(const MemoryModel&) = delete;

  [[nodiscard]] std::int64_t totalPages() const { return totalPages_; }

  /// Pages not assigned to any live process after the last rebalance.
  [[nodiscard]] std::int64_t freePages() const { return freePages_; }

  /// Execution slowdown for `p` as an integer percentage (100 = full speed).
  /// Shortfall below the working set scales bursts by workingSet/resident,
  /// capped at kMaxSlowdownPct (a fully thrashing process).
  [[nodiscard]] int slowdownPercent(const Process& p) const;

  /// Recompute resident sets across all live processes:
  ///  demand_i = min(workingSet_i, cap_i);
  ///  fits -> everyone gets demand; overcommitted -> proportional scaling.
  void rebalance();

  static constexpr int kMaxSlowdownPct = 1000;

 private:
  Host& host_;
  std::int64_t totalPages_;
  std::int64_t freePages_;
};

}  // namespace softqos::osim
