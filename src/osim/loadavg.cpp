#include "osim/loadavg.hpp"

#include <cmath>

namespace softqos::osim {

LoadAverage::LoadAverage(sim::Simulation& simulation,
                         std::function<std::size_t()> source,
                         sim::SimDuration interval, sim::SimDuration horizon)
    : sim_(simulation),
      source_(std::move(source)),
      interval_(interval),
      decay_(std::exp(-static_cast<double>(interval) /
                      static_cast<double>(horizon))) {}

LoadAverage::~LoadAverage() { stop(); }

void LoadAverage::start() {
  if (event_ != sim::kInvalidEvent) return;
  event_ = sim_.every(interval_, [this] { sample(); });
}

void LoadAverage::stop() {
  if (event_ == sim::kInvalidEvent) return;
  sim_.cancel(event_);
  event_ = sim::kInvalidEvent;
}

void LoadAverage::sample() {
  const double n = static_cast<double>(source_());
  value_ = value_ * decay_ + n * (1.0 - decay_);
  if (keepRunning_ && !keepRunning_()) {
    stop();  // idle host: let the event queue drain
  }
}

}  // namespace softqos::osim
