// The CPU dispatch engine: runs one process at a time, slicing bursts by the
// scheduler's quanta, with priority preemption and RT-budget enforcement.
#pragma once

#include <cstdint>

#include "osim/process.hpp"
#include "osim/scheduler.hpp"
#include "sim/simulation.hpp"

namespace softqos::osim {

class Host;

class Cpu {
 public:
  Cpu(sim::Simulation& simulation, Host& host);

  Cpu(const Cpu&) = delete;
  Cpu& operator=(const Cpu&) = delete;

  /// Put a process with a pending burst on the run queue. `sleepReturn`
  /// applies the dispatch table's sleep-return promotion first.
  void makeRunnable(Process* p, bool sleepReturn);

  /// A process's priority-relevant attributes changed (upri, class, grant):
  /// re-evaluate preemption.
  void onPriorityChanged(Process* p);

  /// Remove a process from scheduling entirely (kill/exit).
  void onProcessGone(Process* p);

  [[nodiscard]] Process* running() const { return running_; }

  /// Runnable count including the running process (the load-average input).
  [[nodiscard]] std::size_t activeCount() const {
    return scheduler_.runnableCount() + (running_ != nullptr ? 1u : 0u);
  }

  /// Total wall time this CPU spent executing processes.
  [[nodiscard]] sim::SimDuration busyTime() const { return busyWall_; }

  /// Busy fraction since simulation start (for reporting).
  [[nodiscard]] double utilization() const;

  [[nodiscard]] std::uint64_t contextSwitches() const { return contextSwitches_; }

  Scheduler& scheduler() { return scheduler_; }
  const Scheduler& scheduler() const { return scheduler_; }

 private:
  friend class Process;

  void maybeDispatch();
  void preemptIfNeeded();
  void beginSlice(Process* p);
  void onSliceEnd();
  void stopSlice(Process* p, bool requeue);  // preemption path
  void ensureAgingScheduled();               // ts_maxwait starvation aging

  /// Charge RT-grant budget; returns CPU available before budget exhaustion.
  [[nodiscard]] sim::SimDuration rtBudgetCeiling(const Process& p) const;

  sim::Simulation& sim_;
  Host& host_;
  Scheduler scheduler_;

  Process* running_ = nullptr;
  sim::EventId sliceEvent_ = sim::kInvalidEvent;
  sim::SimTime sliceStart_ = 0;
  sim::SimDuration sliceCpuPlanned_ = 0;
  int sliceSlowdownPct_ = 100;
  bool sliceChargesRtBudget_ = false;

  sim::SimDuration busyWall_ = 0;
  std::uint64_t contextSwitches_ = 0;

  sim::EventId agingEvent_ = sim::kInvalidEvent;
  sim::SimDuration agingInterval_ = sim::sec(1);  // Solaris ages once a second
};

}  // namespace softqos::osim
