// Solaris-style scheduler: a time-sharing class driven by a dispatch table,
// overlaid by a real-time class whose members always run first.
//
// The dispatch table reproduces the *feedback shape* of the Solaris TS class:
// high levels get short quanta, quantum expiry demotes (ts_tqexp), sleep
// return promotes (ts_slpret). The CPU Resource Manager's knob is the user
// priority delta (ts_upri), added to the level when computing the effective
// priority — exactly the priocntl-based control the paper's prototype used.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "osim/process.hpp"
#include "sim/time.hpp"

namespace softqos::osim {

/// One row of the TS dispatch table.
struct TsDispatchEntry {
  sim::SimDuration quantum;  // CPU time allotted at this level
  int tqexp;                 // level after quantum expiry (demotion)
  int slpret;                // level after sleep return (promotion)
  int lwait;                 // level after starving on the run queue (aging)
};

/// The time-sharing dispatch table (levels 0..kTsLevels-1; higher = sooner).
class TsDispatchTable {
 public:
  static constexpr int kTsLevels = 60;

  TsDispatchTable();

  [[nodiscard]] const TsDispatchEntry& entry(int level) const;

  /// Clamp a raw level into [0, kTsLevels-1].
  [[nodiscard]] static int clampLevel(int level);

 private:
  std::vector<TsDispatchEntry> rows_;
};

/// Run-queue scheduler. Owns no processes; the Cpu drives it.
class Scheduler {
 public:
  Scheduler();

  /// Effective global priority (RT above all TS): used for preemption tests.
  [[nodiscard]] int globalPriority(const Process& p) const;

  /// Quantum allotted to `p` at its current level/class.
  [[nodiscard]] sim::SimDuration quantumFor(const Process& p) const;

  /// Add to the run queue (FIFO among equal priorities).
  void enqueue(Process* p);

  /// Remove from the run queue (no-op if absent), e.g. on kill.
  void remove(Process* p);

  /// Pop the runnable process with the highest global priority (nullptr if
  /// none). FIFO order breaks ties, keeping runs deterministic.
  Process* pickNext();

  /// Highest global priority currently queued, or INT_MIN when empty.
  [[nodiscard]] int topPriority() const;

  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::size_t runnableCount() const { return queue_.size(); }

  /// Dispatch-table feedback hooks. `now` restarts the process's dispwait
  /// clock (Solaris ts_dispwait resets on quantum expiry and sleep return,
  /// NOT on every enqueue -- partial slices must not defeat aging).
  void onQuantumExpired(Process& p, sim::SimTime now) const;  // ts_tqexp
  void onSleepReturn(Process& p, sim::SimTime now) const;     // ts_slpret

  /// Starvation aging (ts_maxwait/ts_lwait): every queued TS process whose
  /// dispwait exceeds `maxwait` is promoted to its level's lwait.
  /// Returns the number of promotions.
  std::size_t applyAging(sim::SimTime now, sim::SimDuration maxwait);

  [[nodiscard]] const TsDispatchTable& table() const { return table_; }

 private:
  TsDispatchTable table_;
  std::deque<Process*> queue_;  // scanned linearly; process counts are small
};

}  // namespace softqos::osim
