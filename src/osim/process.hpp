// Simulated processes with continuation-style behaviours.
//
// A process behaviour is written as a chain of continuations:
//
//   void videoClient(Process& p) {
//     p.compute(msec(18), [&p] {           // decode one frame
//       p.sleepFor(msec(15), [&p] { videoClient(p); });
//     });
//   }
//
// compute() places the process on its host CPU's run queue; the continuation
// runs when the requested CPU time has been consumed (possibly across many
// scheduler quanta and preemptions). This style keeps the kernel free of
// coroutine machinery while remaining fully deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace softqos::osim {

class Host;
class Cpu;
class MemoryModel;

using Pid = std::uint32_t;

enum class ProcState {
  kNew,        // spawned, behaviour not yet started
  kRunnable,   // on a run queue
  kRunning,    // holding the CPU
  kDeciding,   // burst complete, continuation choosing the next action
  kSleeping,   // timed sleep
  kBlocked,    // waiting for a signal (e.g. socket data)
  kTerminated  // exited or killed
};

/// Scheduling class, mirroring the Solaris TS/RT split the paper's CPU
/// Resource Manager manipulates.
enum class SchedClass { kTimeSharing, kRealTime };

/// A budgeted real-time CPU grant: `sharePercent` of each `period` is
/// available at real-time priority; once consumed, the process falls back to
/// time-sharing until the period refreshes ("units of real-time CPU cycles").
struct RtGrant {
  int sharePercent = 0;  // 0 disables the grant
  sim::SimDuration period = sim::msec(100);

  [[nodiscard]] bool active() const { return sharePercent > 0; }
  [[nodiscard]] sim::SimDuration budgetPerPeriod() const {
    return period * sharePercent / 100;
  }
};

class Process {
 public:
  using Cont = std::function<void()>;
  using Behaviour = std::function<void(Process&)>;

  Process(Host& host, Pid pid, std::string name, SchedClass cls);

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  [[nodiscard]] Pid pid() const { return pid_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] ProcState state() const { return state_; }
  [[nodiscard]] Host& host() { return host_; }
  [[nodiscard]] const Host& host() const { return host_; }

  // ---- Behaviour API (call only from within this process's continuations,
  //      or from the behaviour passed to Host::spawn) ----

  /// Consume `cpuTime` of CPU, then run `then`. The wall-clock time taken
  /// depends on scheduling competition and memory residency.
  void compute(sim::SimDuration cpuTime, Cont then);

  /// Sleep (off the CPU) for `wallTime`, then run `then`.
  void sleepFor(sim::SimDuration wallTime, Cont then);

  /// Block until signal() is called (level-triggered: a signal delivered while
  /// not waiting is latched and satisfies the next waitSignal immediately).
  void waitSignal(Cont then);

  /// Wake a blocked process (or latch the signal if it is not waiting).
  void signal();

  /// Terminate normally from within the behaviour.
  void exitProcess();

  // ---- Scheduling attributes (manipulated by resource managers) ----

  [[nodiscard]] SchedClass schedClass() const { return cls_; }

  /// Class used for dispatching right now: real-time while an RT grant has
  /// budget remaining in the current period, otherwise the base class.
  [[nodiscard]] SchedClass effectiveClass() const;

  /// Solaris-style user priority delta applied to the TS level (priocntl
  /// ts_upri); clamped to [-60, 60] by the caller-facing setter.
  [[nodiscard]] int tsUserPriority() const { return tsUserPri_; }
  void setTsUserPriority(int upri);

  /// Internal time-sharing level (0..59, higher runs sooner). Managed by the
  /// scheduler's dispatch table; exposed for tests and diagnostics.
  [[nodiscard]] int tsLevel() const { return tsLevel_; }
  void setTsLevel(int level) { tsLevel_ = level; }

  /// Start of the current dispatch-wait window (Solaris ts_dispwait): reset
  /// on quantum expiry, sleep return and aging promotion -- not on enqueue.
  [[nodiscard]] sim::SimTime dispwaitStart() const { return dispwaitStart_; }
  void restartDispwait(sim::SimTime now) { dispwaitStart_ = now; }

  /// Remaining CPU allowance in the current quantum. Charged cumulatively
  /// across dispatches and bursts (a process cannot dodge demotion by taking
  /// short bursts); refilled at the next dispatch after expiry/sleep.
  [[nodiscard]] sim::SimDuration quantumLeft() const { return quantumLeft_; }
  void resetQuantumAllowance() { quantumLeft_ = 0; }

  [[nodiscard]] const RtGrant& rtGrant() const { return rtGrant_; }
  /// Install/replace/remove (sharePercent == 0) a real-time cycle grant.
  void setRtGrant(RtGrant grant);
  [[nodiscard]] sim::SimDuration rtBudgetLeft() const { return rtBudgetLeft_; }

  // ---- Memory attributes (see osim/memory.hpp) ----

  /// Pages the process touches regularly; it slows when resident < this.
  [[nodiscard]] std::int64_t workingSetPages() const { return workingSetPages_; }
  void setWorkingSetPages(std::int64_t pages);

  /// Pages currently resident (assigned by the host MemoryModel).
  [[nodiscard]] std::int64_t residentPages() const { return residentPages_; }

  /// Administrative cap on resident pages (-1 = uncapped), the knob the
  /// Memory Resource Manager turns.
  [[nodiscard]] std::int64_t memoryCapPages() const { return memCapPages_; }
  void setMemoryCapPages(std::int64_t cap);

  // ---- Accounting ----

  /// Total CPU time consumed so far.
  [[nodiscard]] sim::SimDuration cpuTime() const { return cpuUsed_; }

  /// Number of involuntary preemptions suffered.
  [[nodiscard]] std::uint64_t preemptions() const { return preemptions_; }

  [[nodiscard]] bool terminated() const { return state_ == ProcState::kTerminated; }

 private:
  friend class Cpu;
  friend class Host;
  friend class MemoryModel;

  void start(Behaviour behaviour);  // invoked by Host::spawn
  void terminate();                 // shared by exitProcess and Host::kill
  void runCont(Cont cont);          // run a continuation, guarding termination
  void scheduleRtRefresh();         // periodic RT budget replenishment

  Host& host_;
  Pid pid_;
  std::string name_;
  SchedClass cls_;
  ProcState state_ = ProcState::kNew;

  int tsUserPri_ = 0;
  int tsLevel_ = 29;  // Solaris TS default user level
  sim::SimTime dispwaitStart_ = 0;
  sim::SimDuration quantumLeft_ = 0;

  RtGrant rtGrant_;
  sim::SimDuration rtBudgetLeft_ = 0;  // remaining RT budget this period
  sim::EventId rtRefreshEvent_ = sim::kInvalidEvent;

  std::int64_t workingSetPages_ = 0;
  std::int64_t residentPages_ = 0;
  std::int64_t memCapPages_ = -1;

  // CPU burst in progress (owned by Cpu while runnable/running).
  sim::SimDuration burstRemaining_ = 0;
  Cont afterBurst_;

  sim::EventId sleepEvent_ = sim::kInvalidEvent;
  Cont blockedCont_;
  bool signalLatched_ = false;

  sim::SimDuration cpuUsed_ = 0;
  std::uint64_t preemptions_ = 0;
};

}  // namespace softqos::osim
