#include "osim/memory.hpp"

#include <algorithm>

#include "osim/host.hpp"
#include "osim/process.hpp"

namespace softqos::osim {

MemoryModel::MemoryModel(Host& host, std::int64_t totalPages)
    : host_(host), totalPages_(totalPages), freePages_(totalPages) {}

int MemoryModel::slowdownPercent(const Process& p) const {
  const std::int64_t ws = p.workingSetPages();
  if (ws <= 0) return 100;
  const std::int64_t resident = p.residentPages();
  if (resident >= ws) return 100;
  if (resident <= 0) return kMaxSlowdownPct;
  const std::int64_t pct = 100 * ws / resident;
  return static_cast<int>(std::min<std::int64_t>(pct, kMaxSlowdownPct));
}

void MemoryModel::rebalance() {
  std::int64_t totalDemand = 0;
  for (const auto& [pid, proc] : host_.processes()) {
    (void)pid;
    if (proc->terminated()) continue;
    std::int64_t demand = proc->workingSetPages();
    if (proc->memoryCapPages() >= 0) {
      demand = std::min(demand, proc->memoryCapPages());
    }
    totalDemand += demand;
  }

  std::int64_t assigned = 0;
  for (const auto& [pid, proc] : host_.processes()) {
    (void)pid;
    if (proc->terminated()) {
      proc->residentPages_ = 0;
      continue;
    }
    std::int64_t demand = proc->workingSetPages();
    if (proc->memoryCapPages() >= 0) {
      demand = std::min(demand, proc->memoryCapPages());
    }
    std::int64_t resident = demand;
    if (totalDemand > totalPages_ && totalDemand > 0) {
      resident = demand * totalPages_ / totalDemand;
      if (demand > 0) resident = std::max<std::int64_t>(resident, 1);
    }
    proc->residentPages_ = resident;
    assigned += resident;
  }
  freePages_ = std::max<std::int64_t>(0, totalPages_ - assigned);
}

}  // namespace softqos::osim
