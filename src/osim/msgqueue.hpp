// SysV-style message queues: the local IPC channel instrumented processes use
// to notify the QoS Host Manager (Section 7: "Instrumented processes
// communicate with the QoS Host Manager using message queues").
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "sim/simulation.hpp"
#include "sim/time.hpp"

namespace softqos::osim {

class MessageQueue {
 public:
  /// A delivered datagram: opaque payload plus the sender's pid (0 = daemon).
  struct Datagram {
    std::uint32_t senderPid = 0;
    std::string payload;
  };
  using Handler = std::function<void(const Datagram&)>;

  MessageQueue(sim::Simulation& simulation, std::string key,
               sim::SimDuration latency = sim::usec(50),
               std::size_t maxDepth = 1024);

  MessageQueue(const MessageQueue&) = delete;
  MessageQueue& operator=(const MessageQueue&) = delete;

  /// Enqueue a datagram; it is delivered to the receiver after the queue
  /// latency (models the msgsnd/msgrcv round trip). Returns false and drops
  /// when the queue is full.
  bool send(std::string payload, std::uint32_t senderPid = 0);

  /// Install the receiving handler (one receiver per queue, daemon-style).
  /// Datagrams that arrived before a receiver existed are flushed to it.
  void setReceiver(Handler handler);

  [[nodiscard]] const std::string& key() const { return key_; }
  [[nodiscard]] std::size_t depth() const { return backlog_.size(); }
  [[nodiscard]] std::uint64_t delivered() const { return delivered_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] std::size_t inFlight() const { return inFlight_; }

 private:
  void arrive(Datagram d);

  sim::Simulation& sim_;
  std::string key_;
  sim::SimDuration latency_;
  std::size_t maxDepth_;
  Handler handler_;
  std::deque<Datagram> backlog_;  // arrived before a receiver was installed
  std::size_t inFlight_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace softqos::osim
