#include "osim/scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <climits>

namespace softqos::osim {

TsDispatchTable::TsDispatchTable() {
  rows_.resize(kTsLevels);
  for (int level = 0; level < kTsLevels; ++level) {
    // Quantum shrinks as priority rises: level 0-9 -> 200ms ... 50-59 -> 20ms.
    // This mirrors the Solaris ts_dptbl shape (interactive work gets frequent
    // short slices; batch work gets long infrequent ones).
    static constexpr sim::SimDuration kQuanta[6] = {
        sim::msec(200), sim::msec(160), sim::msec(120),
        sim::msec(80),  sim::msec(40),  sim::msec(20)};
    rows_[level].quantum = kQuanta[level / 10];
    rows_[level].tqexp = clampLevel(level - 10);
    rows_[level].slpret = clampLevel(level + 10);
    // Solaris lifts starved processes to the 50s so batch work cannot be
    // locked out indefinitely by sleep-boosted interactive work.
    rows_[level].lwait = std::max(level, 50);
  }
}

const TsDispatchEntry& TsDispatchTable::entry(int level) const {
  return rows_[static_cast<std::size_t>(clampLevel(level))];
}

int TsDispatchTable::clampLevel(int level) {
  return std::clamp(level, 0, kTsLevels - 1);
}

Scheduler::Scheduler() = default;

int Scheduler::globalPriority(const Process& p) const {
  if (p.effectiveClass() == SchedClass::kRealTime) return 1000;
  return TsDispatchTable::clampLevel(p.tsLevel() + p.tsUserPriority());
}

sim::SimDuration Scheduler::quantumFor(const Process& p) const {
  if (p.effectiveClass() == SchedClass::kRealTime) return sim::msec(10);
  return table_.entry(p.tsLevel() + p.tsUserPriority()).quantum;
}

void Scheduler::enqueue(Process* p) {
  assert(p != nullptr);
  queue_.push_back(p);
}

void Scheduler::remove(Process* p) {
  queue_.erase(std::remove(queue_.begin(), queue_.end(), p), queue_.end());
}

Process* Scheduler::pickNext() {
  if (queue_.empty()) return nullptr;
  auto best = queue_.begin();
  int bestPri = globalPriority(**best);
  for (auto it = std::next(queue_.begin()); it != queue_.end(); ++it) {
    const int pri = globalPriority(**it);
    if (pri > bestPri) {  // strict: FIFO among equals
      best = it;
      bestPri = pri;
    }
  }
  Process* chosen = *best;
  queue_.erase(best);
  return chosen;
}

int Scheduler::topPriority() const {
  int best = INT_MIN;
  for (const Process* p : queue_) best = std::max(best, globalPriority(*p));
  return best;
}

void Scheduler::onQuantumExpired(Process& p, sim::SimTime now) const {
  p.resetQuantumAllowance();
  if (p.effectiveClass() != SchedClass::kTimeSharing) return;
  p.setTsLevel(table_.entry(p.tsLevel()).tqexp);
  p.restartDispwait(now);
}

void Scheduler::onSleepReturn(Process& p, sim::SimTime now) const {
  p.resetQuantumAllowance();  // a fresh quantum after any sleep
  if (p.schedClass() != SchedClass::kTimeSharing) return;
  p.setTsLevel(table_.entry(p.tsLevel()).slpret);
  p.restartDispwait(now);
}

std::size_t Scheduler::applyAging(sim::SimTime now, sim::SimDuration maxwait) {
  std::size_t promoted = 0;
  for (Process* p : queue_) {
    if (p->effectiveClass() != SchedClass::kTimeSharing) continue;
    if (now - p->dispwaitStart() < maxwait) continue;
    p->setTsLevel(table_.entry(p->tsLevel()).lwait);
    p->restartDispwait(now);
    ++promoted;
  }
  return promoted;
}

}  // namespace softqos::osim
