// The softqos discrete-event simulation kernel.
//
// A Simulation owns the clock(s), event queue(s), master RNG seed, metric
// registry and trace sink. All simulated subsystems (hosts, network,
// managers) hold a reference to one Simulation and schedule their work
// through it.
//
// The kernel runs in one of two modes:
//
//  * Single-shard (default): one EventQueue, one clock, strictly serial —
//    bit-compatible with the historical kernel.
//  * Sharded (configureParallel): components are partitioned across shards,
//    each owning a private EventQueue, clock and MetricRegistry. Shards
//    advance in conservative safe windows derived from the minimum
//    cross-shard link latency (the lookahead): every round, the global
//    minimum next-event time T is found and every shard may execute all
//    events with timestamp < T + lookahead, because no in-flight cross-shard
//    message can arrive earlier than that. Cross-shard sends go through
//    postToShard(), which lands them in the target shard's mailbox; mail is
//    merged at the next round boundary in (timestamp, source shard, source
//    sequence) order, making runs byte-identical for a fixed seed and shard
//    count regardless of thread count.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/metrics.hpp"
#include "sim/random.hpp"
#include "sim/span.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"

namespace softqos::sim {

/// Identifies one shard (a partition of simulated components with its own
/// event queue and clock). Shard 0 always exists.
using ShardId = std::uint32_t;

/// Parallel-execution configuration. The default (1 thread, 1 shard per
/// thread) keeps the kernel in its historical single-shard serial mode.
/// `threads * shardsPerThread` shards are created; worker threads each own a
/// contiguous range of shards, so outputs depend only on the shard count,
/// never on the thread count.
struct ParallelConfig {
  unsigned threads = 1;
  unsigned shardsPerThread = 1;
  [[nodiscard]] unsigned shards() const { return threads * shardsPerThread; }
};

class Simulation {
 public:
  explicit Simulation(std::uint64_t seed = 1);
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulated time of the current shard (the only meaningful clock
  /// from inside an event callback; between runs all shard clocks agree).
  [[nodiscard]] SimTime now() const { return cur().now; }

  /// Schedule `cb` to run after `delay` ticks (>= 0) on the current shard.
  EventId after(SimDuration delay, EventQueue::Callback cb);

  /// Schedule `cb` at absolute time `when` (>= now()) on the current shard.
  EventId at(SimTime when, EventQueue::Callback cb);

  /// Schedule `cb` to run every `period` ticks (> 0), first at now + period.
  /// The closure is constructed once and reused across occurrences; the
  /// returned id stays valid until cancelled (including from inside `cb`).
  EventId every(SimDuration period, EventQueue::Callback cb);

  /// Move a periodic event's next occurrence to now + `period` (from inside
  /// its own callback: fire-time + `period`) and make subsequent occurrences
  /// follow every `period`. Returns false for stale ids / one-shot events.
  /// Routed to the owning shard via the id's shard tag.
  bool reschedule(EventId id, SimDuration period);

  /// Cancel a pending event; returns true if it was still pending. Routed to
  /// the owning shard via the id's shard tag. During threaded execution only
  /// ids owned by the calling shard may be cancelled.
  bool cancel(EventId id);

  /// Run until every event queue drains or the clock reaches `until`.
  /// Events scheduled exactly at `until` do fire. Returns events executed.
  std::uint64_t runUntil(SimTime until);

  /// Run until every event queue drains. Returns events executed.
  std::uint64_t runAll();

  /// Execute exactly one event if available; returns false if queue empty.
  /// Single-shard mode only.
  bool step();

  // ---- Sharding --------------------------------------------------------

  /// Switch the kernel to sharded mode. Must be called before any event has
  /// executed; events already scheduled remain on shard 0. Shard counts are
  /// capped at 256 (ids carry an 8-bit shard tag). A config of
  /// {1 thread, 1 shard} is a no-op that keeps the serial kernel.
  void configureParallel(const ParallelConfig& config);

  /// Conservative lookahead: the minimum latency of any cross-shard link.
  /// Must be > 0 before a sharded run starts (typically derived via
  /// Network::minCrossShardPropagation()).
  void setLookahead(SimDuration lookahead) { lookahead_ = lookahead; }
  [[nodiscard]] SimDuration lookahead() const { return lookahead_; }

  [[nodiscard]] const ParallelConfig& parallel() const { return config_; }
  [[nodiscard]] ShardId shardCount() const {
    return static_cast<ShardId>(shards_.size());
  }

  /// Shard that is currently executing (or, between runs, the shard selected
  /// by the innermost ShardScope; shard 0 by default).
  [[nodiscard]] ShardId currentShard() const { return cur().id; }

  /// Schedule `cb` at absolute time `when` on shard `target`. Same-shard
  /// posts schedule directly (returning a cancellable id); cross-shard posts
  /// land in the target's mailbox — merged in deterministic (when, source
  /// shard, source sequence) order at the next window boundary — and return
  /// kInvalidEvent (cross-shard events cannot be cancelled). Cross-shard
  /// `when` must respect the lookahead contract: >= the end of the current
  /// safe window, which any timestamp >= now() + lookahead satisfies.
  EventId postToShard(ShardId target, SimTime when, EventQueue::Callback cb);

  /// Mail that arrived below the target shard's already-executed window and
  /// was rejected (each also threw). Nonzero means a lookahead violation.
  [[nodiscard]] std::uint64_t pastWindowPosts() const {
    return pastWindowPosts_.load(std::memory_order_relaxed);
  }

  /// Derive a named random stream from this simulation's master seed.
  /// Stateless, so shard-safe by construction.
  [[nodiscard]] RandomStream stream(std::string_view name) const {
    return RandomStream(seed_, name);
  }

  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// The shard-0 ("global") registry. Setup-time and single-shard metric
  /// recording goes here; in sharded mode, components must record through
  /// localMetrics() instead.
  MetricRegistry& metrics() { return metrics_; }
  const MetricRegistry& metrics() const { return metrics_; }

  /// The current shard's registry (== metrics() on shard 0 and therefore in
  /// all single-shard runs). Components intern their handles through this so
  /// hot-path recording never crosses a shard boundary.
  MetricRegistry& localMetrics() { return registryFor(cur()); }

  /// Registry of a specific shard (shard 0 == metrics()); for merging
  /// per-shard series into one report after a run.
  MetricRegistry& shardMetrics(ShardId shard);

  Trace& trace() { return trace_; }
  EventQueue& queue() { return shard0_->queue; }

  /// Attach (or detach, with nullptr) the causal-tracing observer. The
  /// simulation does not own it; the caller keeps it alive while attached.
  /// Instrumented sites read observer() and skip all span work when it is
  /// null, so an unobserved run schedules no extra events and draws no
  /// extra randomness. Sharded runs require no observer attached.
  void setObserver(SpanObserver* observer) { observer_ = observer; }
  [[nodiscard]] SpanObserver* observer() const { return observer_; }

  /// Convenience logging helpers stamping the current simulated time. The
  /// level guard runs before anything else so disabled tracing costs one
  /// branch (the argument strings are still materialized by the caller; use
  /// the lazy overloads below on hot paths).
  void debug(std::string component, std::string message) {
    if (trace_.enabled(TraceLevel::kDebug)) {
      trace_.log(now(), TraceLevel::kDebug, std::move(component), std::move(message));
    }
  }
  void info(std::string component, std::string message) {
    if (trace_.enabled(TraceLevel::kInfo)) {
      trace_.log(now(), TraceLevel::kInfo, std::move(component), std::move(message));
    }
  }
  void warn(std::string component, std::string message) {
    if (trace_.enabled(TraceLevel::kWarn)) {
      trace_.log(now(), TraceLevel::kWarn, std::move(component), std::move(message));
    }
  }

  /// Lazy logging: `make` is only invoked (and its message only built) when
  /// the level is enabled. It may return anything convertible to std::string.
  template <typename Fn, typename = std::enable_if_t<std::is_invocable_v<Fn&>>>
  void debug(std::string_view component, Fn&& make) {
    logLazy(TraceLevel::kDebug, component, std::forward<Fn>(make));
  }
  template <typename Fn, typename = std::enable_if_t<std::is_invocable_v<Fn&>>>
  void info(std::string_view component, Fn&& make) {
    logLazy(TraceLevel::kInfo, component, std::forward<Fn>(make));
  }
  template <typename Fn, typename = std::enable_if_t<std::is_invocable_v<Fn&>>>
  void warn(std::string_view component, Fn&& make) {
    logLazy(TraceLevel::kWarn, component, std::forward<Fn>(make));
  }

 private:
  friend class ShardScope;

  /// One cross-shard message, ordered at the receiving boundary by
  /// (when, fromShard, seq) — the determinism tie-break.
  struct Mail {
    SimTime when = 0;
    ShardId fromShard = 0;
    std::uint64_t seq = 0;
    EventQueue::Callback cb;
  };

  struct Shard {
    EventQueue queue;
    SimTime now = 0;
    /// Events with timestamp strictly below this have all been executed;
    /// incoming mail below it is a lookahead violation.
    SimTime executedThrough = std::numeric_limits<SimTime>::min();
    std::uint64_t outSeq = 0;    // stamps outgoing cross-shard mail
    std::uint64_t executed = 0;  // lifetime events executed on this shard
    ShardId id = 0;
    std::unique_ptr<MetricRegistry> registry;  // null on shard 0
    std::mutex mailMutex;
    std::vector<Mail> mailbox;
  };

  /// The shard scheduling calls route to: the executing shard inside a
  /// windowed run, else the ShardScope selection (shard 0 by default).
  [[nodiscard]] Shard& cur() const;

  MetricRegistry& registryFor(Shard& s) {
    return s.registry ? *s.registry : metrics_;
  }

  template <typename Fn>
  void logLazy(TraceLevel level, std::string_view component, Fn&& make) {
    if (trace_.enabled(level)) {
      trace_.log(now(), level, std::string(component), std::string(make()));
    }
  }

  void executeOne();
  std::uint64_t runSerial(SimTime until, bool bounded);
  std::uint64_t runWindowed(SimTime until);
  void validateWindowedRun() const;

  /// Drain a shard's mailbox into its queue in deterministic order.
  void drainMailbox(Shard& shard);
  /// Execute all of `shard`'s events with timestamp < horizon.
  void executeWindow(Shard& shard, SimTime horizon);

  std::uint64_t seed_;
  ParallelConfig config_;
  SimDuration lookahead_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  Shard* shard0_ = nullptr;       // == shards_[0].get(), cached
  Shard* activeShard_ = nullptr;  // ShardScope / serial-run selection
  bool threadedRun_ = false;      // true only between worker spawn and join
  std::atomic<std::uint64_t> pastWindowPosts_{0};
  MetricRegistry metrics_;
  Trace trace_;
  SpanObserver* observer_ = nullptr;
};

/// RAII selector for the shard that construction-time scheduling and metric
/// interning bind to. Wrap component creation in a ShardScope to place it on
/// a shard; nesting restores the previous selection on destruction.
class ShardScope {
 public:
  ShardScope(Simulation& sim, ShardId shard);
  ~ShardScope();
  ShardScope(const ShardScope&) = delete;
  ShardScope& operator=(const ShardScope&) = delete;

 private:
  Simulation& sim_;
  Simulation::Shard* prev_;
};

}  // namespace softqos::sim
