// The softqos discrete-event simulation kernel.
//
// A Simulation owns the clock, event queue, master RNG seed, metric registry
// and trace sink. All simulated subsystems (hosts, network, managers) hold a
// reference to one Simulation and schedule their work through it.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "sim/event_queue.hpp"
#include "sim/metrics.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"

namespace softqos::sim {

class Simulation {
 public:
  explicit Simulation(std::uint64_t seed = 1) : seed_(seed) {}

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulated time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule `cb` to run after `delay` ticks (>= 0).
  EventId after(SimDuration delay, EventQueue::Callback cb);

  /// Schedule `cb` at absolute time `when` (>= now()).
  EventId at(SimTime when, EventQueue::Callback cb);

  /// Cancel a pending event; returns true if it was still pending.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Run until the event queue drains or the clock reaches `until`.
  /// Events scheduled exactly at `until` do fire. Returns events executed.
  std::uint64_t runUntil(SimTime until);

  /// Run until the event queue drains. Returns events executed.
  std::uint64_t runAll();

  /// Execute exactly one event if available; returns false if queue empty.
  bool step();

  /// Derive a named random stream from this simulation's master seed.
  [[nodiscard]] RandomStream stream(std::string_view name) const {
    return RandomStream(seed_, name);
  }

  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  MetricRegistry& metrics() { return metrics_; }
  const MetricRegistry& metrics() const { return metrics_; }
  Trace& trace() { return trace_; }
  EventQueue& queue() { return queue_; }

  /// Convenience logging helpers stamping the current simulated time.
  void debug(std::string component, std::string message) {
    trace_.log(now_, TraceLevel::kDebug, std::move(component), std::move(message));
  }
  void info(std::string component, std::string message) {
    trace_.log(now_, TraceLevel::kInfo, std::move(component), std::move(message));
  }
  void warn(std::string component, std::string message) {
    trace_.log(now_, TraceLevel::kWarn, std::move(component), std::move(message));
  }

 private:
  void executeOne();

  std::uint64_t seed_;
  SimTime now_ = 0;
  EventQueue queue_;
  MetricRegistry metrics_;
  Trace trace_;
};

}  // namespace softqos::sim
