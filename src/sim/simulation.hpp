// The softqos discrete-event simulation kernel.
//
// A Simulation owns the clock, event queue, master RNG seed, metric registry
// and trace sink. All simulated subsystems (hosts, network, managers) hold a
// reference to one Simulation and schedule their work through it.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>

#include "sim/event_queue.hpp"
#include "sim/metrics.hpp"
#include "sim/random.hpp"
#include "sim/span.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"

namespace softqos::sim {

class Simulation {
 public:
  explicit Simulation(std::uint64_t seed = 1) : seed_(seed) {}

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulated time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule `cb` to run after `delay` ticks (>= 0).
  EventId after(SimDuration delay, EventQueue::Callback cb);

  /// Schedule `cb` at absolute time `when` (>= now()).
  EventId at(SimTime when, EventQueue::Callback cb);

  /// Schedule `cb` to run every `period` ticks (> 0), first at now + period.
  /// The closure is constructed once and reused across occurrences; the
  /// returned id stays valid until cancelled (including from inside `cb`).
  EventId every(SimDuration period, EventQueue::Callback cb);

  /// Move a periodic event's next occurrence to now + `period` (from inside
  /// its own callback: fire-time + `period`) and make subsequent occurrences
  /// follow every `period`. Returns false for stale ids / one-shot events.
  bool reschedule(EventId id, SimDuration period);

  /// Cancel a pending event; returns true if it was still pending.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Run until the event queue drains or the clock reaches `until`.
  /// Events scheduled exactly at `until` do fire. Returns events executed.
  std::uint64_t runUntil(SimTime until);

  /// Run until the event queue drains. Returns events executed.
  std::uint64_t runAll();

  /// Execute exactly one event if available; returns false if queue empty.
  bool step();

  /// Derive a named random stream from this simulation's master seed.
  [[nodiscard]] RandomStream stream(std::string_view name) const {
    return RandomStream(seed_, name);
  }

  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  MetricRegistry& metrics() { return metrics_; }
  const MetricRegistry& metrics() const { return metrics_; }
  Trace& trace() { return trace_; }
  EventQueue& queue() { return queue_; }

  /// Attach (or detach, with nullptr) the causal-tracing observer. The
  /// simulation does not own it; the caller keeps it alive while attached.
  /// Instrumented sites read observer() and skip all span work when it is
  /// null, so an unobserved run schedules no extra events and draws no
  /// extra randomness.
  void setObserver(SpanObserver* observer) { observer_ = observer; }
  [[nodiscard]] SpanObserver* observer() const { return observer_; }

  /// Convenience logging helpers stamping the current simulated time. The
  /// level guard runs before anything else so disabled tracing costs one
  /// branch (the argument strings are still materialized by the caller; use
  /// the lazy overloads below on hot paths).
  void debug(std::string component, std::string message) {
    if (trace_.enabled(TraceLevel::kDebug)) {
      trace_.log(now_, TraceLevel::kDebug, std::move(component), std::move(message));
    }
  }
  void info(std::string component, std::string message) {
    if (trace_.enabled(TraceLevel::kInfo)) {
      trace_.log(now_, TraceLevel::kInfo, std::move(component), std::move(message));
    }
  }
  void warn(std::string component, std::string message) {
    if (trace_.enabled(TraceLevel::kWarn)) {
      trace_.log(now_, TraceLevel::kWarn, std::move(component), std::move(message));
    }
  }

  /// Lazy logging: `make` is only invoked (and its message only built) when
  /// the level is enabled. It may return anything convertible to std::string.
  template <typename Fn, typename = std::enable_if_t<std::is_invocable_v<Fn&>>>
  void debug(std::string_view component, Fn&& make) {
    logLazy(TraceLevel::kDebug, component, std::forward<Fn>(make));
  }
  template <typename Fn, typename = std::enable_if_t<std::is_invocable_v<Fn&>>>
  void info(std::string_view component, Fn&& make) {
    logLazy(TraceLevel::kInfo, component, std::forward<Fn>(make));
  }
  template <typename Fn, typename = std::enable_if_t<std::is_invocable_v<Fn&>>>
  void warn(std::string_view component, Fn&& make) {
    logLazy(TraceLevel::kWarn, component, std::forward<Fn>(make));
  }

 private:
  template <typename Fn>
  void logLazy(TraceLevel level, std::string_view component, Fn&& make) {
    if (trace_.enabled(level)) {
      trace_.log(now_, level, std::string(component), std::string(make()));
    }
  }

  void executeOne();

  std::uint64_t seed_;
  SimTime now_ = 0;
  EventQueue queue_;
  MetricRegistry metrics_;
  Trace trace_;
  SpanObserver* observer_ = nullptr;
};

}  // namespace softqos::sim
