// Seeded, named random streams for reproducible simulations.
//
// Each stochastic component takes its own RandomStream, derived from the
// simulation master seed plus the component's name. Runs with the same seed
// and topology are bit-identical regardless of component construction order.
#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <string_view>

#include "sim/time.hpp"

namespace softqos::sim {

/// One independent pseudo-random stream (mt19937_64 under the hood).
class RandomStream {
 public:
  /// Derive a stream from a master seed and a stream name. The name is hashed
  /// with FNV-1a so distinct components get decorrelated streams.
  RandomStream(std::uint64_t masterSeed, std::string_view name);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

  /// Exponential variate with the given mean (> 0).
  double exponential(double mean);

  /// Normal variate.
  double normal(double mean, double stddev);

  /// Bernoulli trial.
  bool chance(double probability);

  /// Exponential inter-arrival gap as a duration, mean `mean` (ticks).
  SimDuration expGap(SimDuration mean);

  /// Name this stream was derived with (diagnostics).
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::mt19937_64 rng_;
};

}  // namespace softqos::sim
