#include "sim/simulation.hpp"

#include <cassert>
#include <chrono>
#include <stdexcept>

namespace softqos::sim {

EventId Simulation::after(SimDuration delay, EventQueue::Callback cb) {
  if (delay < 0) throw std::invalid_argument("Simulation::after: negative delay");
  return queue_.schedule(now_ + delay, std::move(cb));
}

EventId Simulation::at(SimTime when, EventQueue::Callback cb) {
  if (when < now_) throw std::invalid_argument("Simulation::at: time in the past");
  return queue_.schedule(when, std::move(cb));
}

EventId Simulation::every(SimDuration period, EventQueue::Callback cb) {
  if (period <= 0) {
    throw std::invalid_argument("Simulation::every: period must be positive");
  }
  return queue_.schedulePeriodic(now_ + period, period, std::move(cb));
}

bool Simulation::reschedule(EventId id, SimDuration period) {
  if (period <= 0) {
    throw std::invalid_argument("Simulation::reschedule: period must be positive");
  }
  return queue_.reschedulePeriodic(id, now_, period);
}

void Simulation::executeOne() {
  EventQueue::Firing f = queue_.beginFire();
  assert(f.when >= now_ && "event queue produced a time in the past");
  now_ = f.when;
  if (observer_ == nullptr) {
    f.cb();
  } else {
    // Kernel profiling: queue depth at dispatch plus the callback's
    // wall-clock cost. Only the observed path reads the host clock.
    const std::size_t depth = queue_.size();
    const auto start = std::chrono::steady_clock::now();
    f.cb();
    const auto elapsed = std::chrono::steady_clock::now() - start;
    if (observer_ != nullptr) {  // the callback may have detached it
      observer_->onEventExecuted(
          now_, depth,
          static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                  .count()));
    }
  }
  queue_.finishFire(std::move(f));
}

std::uint64_t Simulation::runUntil(SimTime until) {
  std::uint64_t executed = 0;
  while (!queue_.empty() && queue_.nextTime() <= until) {
    executeOne();
    ++executed;
  }
  if (now_ < until) now_ = until;
  return executed;
}

std::uint64_t Simulation::runAll() {
  std::uint64_t executed = 0;
  while (!queue_.empty()) {
    executeOne();
    ++executed;
  }
  return executed;
}

bool Simulation::step() {
  if (queue_.empty()) return false;
  executeOne();
  return true;
}

}  // namespace softqos::sim
