#include "sim/simulation.hpp"

#include <cassert>
#include <stdexcept>

namespace softqos::sim {

EventId Simulation::after(SimDuration delay, EventQueue::Callback cb) {
  if (delay < 0) throw std::invalid_argument("Simulation::after: negative delay");
  return queue_.schedule(now_ + delay, std::move(cb));
}

EventId Simulation::at(SimTime when, EventQueue::Callback cb) {
  if (when < now_) throw std::invalid_argument("Simulation::at: time in the past");
  return queue_.schedule(when, std::move(cb));
}

void Simulation::executeOne() {
  auto [when, cb] = queue_.pop();
  assert(when >= now_ && "event queue produced a time in the past");
  now_ = when;
  cb();
}

std::uint64_t Simulation::runUntil(SimTime until) {
  std::uint64_t executed = 0;
  while (!queue_.empty() && queue_.nextTime() <= until) {
    executeOne();
    ++executed;
  }
  if (now_ < until) now_ = until;
  return executed;
}

std::uint64_t Simulation::runAll() {
  std::uint64_t executed = 0;
  while (!queue_.empty()) {
    executeOne();
    ++executed;
  }
  return executed;
}

bool Simulation::step() {
  if (queue_.empty()) return false;
  executeOne();
  return true;
}

}  // namespace softqos::sim
