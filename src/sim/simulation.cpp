#include "sim/simulation.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace softqos::sim {

namespace {

constexpr SimTime kMaxTime = std::numeric_limits<SimTime>::max();

/// Reusable N-party barrier; the last arriver runs a completion function
/// under the barrier mutex before releasing the others, which gives the
/// windowed round its two global synchronization points (min-reduction and
/// end-of-window) with plain mutex/condvar semantics — no atomics to reason
/// about under TSan, and no spinning on oversubscribed machines.
class WindowBarrier {
 public:
  explicit WindowBarrier(unsigned parties) : parties_(parties) {}

  template <typename Completion>
  void arrive(Completion&& completion) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (++arrived_ == parties_) {
      arrived_ = 0;
      completion();
      ++phase_;
      cv_.notify_all();
    } else {
      const std::uint64_t phase = phase_;
      cv_.wait(lock, [&] { return phase_ != phase; });
    }
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  const unsigned parties_;
  unsigned arrived_ = 0;
  std::uint64_t phase_ = 0;
};

/// Which shard the calling thread is executing during a windowed run. Only
/// consulted while Simulation::threadedRun_ is set.
struct TlsCursor {
  const void* sim = nullptr;
  void* shard = nullptr;
};
thread_local TlsCursor tlsCursor;

}  // namespace

Simulation::Simulation(std::uint64_t seed) : seed_(seed) {
  auto s = std::make_unique<Shard>();
  s->id = 0;
  shard0_ = s.get();
  activeShard_ = s.get();
  shards_.push_back(std::move(s));
}

Simulation::~Simulation() = default;

Simulation::Shard& Simulation::cur() const {
  if (threadedRun_ && tlsCursor.sim == this && tlsCursor.shard != nullptr) {
    return *static_cast<Shard*>(tlsCursor.shard);
  }
  return *activeShard_;
}

EventId Simulation::after(SimDuration delay, EventQueue::Callback cb) {
  if (delay < 0) throw std::invalid_argument("Simulation::after: negative delay");
  Shard& s = cur();
  return s.queue.schedule(s.now + delay, std::move(cb));
}

EventId Simulation::at(SimTime when, EventQueue::Callback cb) {
  Shard& s = cur();
  if (when < s.now) throw std::invalid_argument("Simulation::at: time in the past");
  return s.queue.schedule(when, std::move(cb));
}

EventId Simulation::every(SimDuration period, EventQueue::Callback cb) {
  if (period <= 0) {
    throw std::invalid_argument("Simulation::every: period must be positive");
  }
  Shard& s = cur();
  return s.queue.schedulePeriodic(s.now + period, period, std::move(cb));
}

bool Simulation::reschedule(EventId id, SimDuration period) {
  if (period <= 0) {
    throw std::invalid_argument("Simulation::reschedule: period must be positive");
  }
  const ShardId tag = EventQueue::idShardTag(id);
  if (tag >= shards_.size()) return false;
  Shard& s = *shards_[tag];
  return s.queue.reschedulePeriodic(id, s.now, period);
}

bool Simulation::cancel(EventId id) {
  const ShardId tag = EventQueue::idShardTag(id);
  if (tag >= shards_.size()) return false;
  return shards_[tag]->queue.cancel(id);
}

void Simulation::configureParallel(const ParallelConfig& config) {
  const unsigned shards = config.shards();
  if (config.threads == 0 || config.shardsPerThread == 0) {
    throw std::invalid_argument(
        "configureParallel: threads and shardsPerThread must be positive");
  }
  if (shards > 256) {
    throw std::invalid_argument(
        "configureParallel: at most 256 shards (ids carry an 8-bit tag)");
  }
  if (shards_.size() != 1 || shard0_->executed != 0) {
    throw std::logic_error(
        "configureParallel: must be called once, before any event executes");
  }
  config_ = config;
  for (unsigned i = 1; i < shards; ++i) {
    auto s = std::make_unique<Shard>();
    s->id = static_cast<ShardId>(i);
    s->queue.setShardTag(static_cast<std::uint8_t>(i));
    s->registry = std::make_unique<MetricRegistry>();
    shards_.push_back(std::move(s));
  }
}

MetricRegistry& Simulation::shardMetrics(ShardId shard) {
  if (shard >= shards_.size()) {
    throw std::out_of_range("shardMetrics: no such shard");
  }
  return registryFor(*shards_[shard]);
}

EventId Simulation::postToShard(ShardId target, SimTime when,
                                EventQueue::Callback cb) {
  if (target >= shards_.size()) {
    throw std::out_of_range("postToShard: no such shard");
  }
  Shard& from = cur();
  Shard& to = *shards_[target];
  if (&to == &from) return to.queue.schedule(when, std::move(cb));
  std::lock_guard<std::mutex> lock(to.mailMutex);
  to.mailbox.push_back(Mail{when, from.id, from.outSeq++, std::move(cb)});
  return kInvalidEvent;
}

void Simulation::executeOne() {
  Shard& shard = *shard0_;
  EventQueue::Firing f = shard.queue.beginFire();
  assert(f.when >= shard.now && "event queue produced a time in the past");
  shard.now = f.when;
  if (observer_ == nullptr) {
    f.cb();
  } else {
    // Kernel profiling: queue depth at dispatch plus the callback's
    // wall-clock cost. Only the observed path reads the host clock.
    const std::size_t depth = shard.queue.size();
    const auto start = std::chrono::steady_clock::now();
    f.cb();
    const auto elapsed = std::chrono::steady_clock::now() - start;
    if (observer_ != nullptr) {  // the callback may have detached it
      observer_->onEventExecuted(
          shard.now, depth,
          static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                  .count()));
    }
  }
  ++shard.executed;
  shard.queue.finishFire(std::move(f));
}

std::uint64_t Simulation::runSerial(SimTime until, bool bounded) {
  Shard& shard = *shard0_;
  std::uint64_t executed = 0;
  while (!shard.queue.empty() &&
         (!bounded || shard.queue.nextTime() <= until)) {
    executeOne();
    ++executed;
  }
  if (bounded && shard.now < until) shard.now = until;
  return executed;
}

void Simulation::validateWindowedRun() const {
  if (lookahead_ <= 0) {
    throw std::logic_error(
        "sharded run requires a positive lookahead (setLookahead, typically "
        "from Network::minCrossShardPropagation())");
  }
  if (observer_ != nullptr && !observer_->shardSafe()) {
    throw std::logic_error(
        "sharded runs require a shard-safe SpanObserver (the span-store "
        "Observer is serial-only; attach an obs::TraceSampler instead)");
  }
  const unsigned effectiveThreads =
      std::min<unsigned>(config_.threads, static_cast<unsigned>(shards_.size()));
  if (effectiveThreads > 1 && trace_.level() != TraceLevel::kOff) {
    throw std::logic_error(
        "multi-threaded runs require tracing off (the trace ring is shared)");
  }
}

void Simulation::drainMailbox(Shard& shard) {
  std::vector<Mail> mail;
  {
    std::lock_guard<std::mutex> lock(shard.mailMutex);
    mail.swap(shard.mailbox);
  }
  if (mail.empty()) return;
  std::sort(mail.begin(), mail.end(), [](const Mail& a, const Mail& b) {
    if (a.when != b.when) return a.when < b.when;
    if (a.fromShard != b.fromShard) return a.fromShard < b.fromShard;
    return a.seq < b.seq;
  });
  for (Mail& m : mail) {
    if (m.when < shard.executedThrough) {
      pastWindowPosts_.fetch_add(1, std::memory_order_relaxed);
      assert(false && "cross-shard mail below the executed window");
      throw std::logic_error(
          "cross-shard message arrived below the receiving shard's executed "
          "window: lookahead violation");
    }
    shard.queue.schedule(m.when, std::move(m.cb));
  }
}

void Simulation::executeWindow(Shard& shard, SimTime horizon) {
  EventQueue& q = shard.queue;
  while (!q.empty() && q.nextTime() < horizon) {
    EventQueue::Firing f = q.beginFire();
    assert(f.when >= shard.now && "event queue produced a time in the past");
    shard.now = f.when;
    f.cb();
    ++shard.executed;
    q.finishFire(std::move(f));
  }
  shard.executedThrough = horizon;
}

std::uint64_t Simulation::runWindowed(SimTime until) {
  validateWindowedRun();
  const auto shardCount = static_cast<unsigned>(shards_.size());
  const unsigned nThreads = std::min<unsigned>(config_.threads, shardCount);

  // Contiguous shard ranges per worker: outputs depend only on the shard
  // count because rounds are globally synchronized — the mapping of shards
  // to workers affects wall-clock only.
  std::vector<std::pair<unsigned, unsigned>> ranges(nThreads);
  {
    const unsigned base = shardCount / nThreads;
    const unsigned extra = shardCount % nThreads;
    unsigned begin = 0;
    for (unsigned w = 0; w < nThreads; ++w) {
      const unsigned size = base + (w < extra ? 1u : 0u);
      ranges[w] = {begin, begin + size};
      begin += size;
    }
  }

  std::uint64_t startExecuted = 0;
  for (const auto& s : shards_) startExecuted += s->executed;

  WindowBarrier barrier(nThreads);
  std::vector<SimTime> localMin(nThreads, kMaxTime);
  SimTime horizon = 0;
  bool done = false;
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex errorMutex;

  auto recordError = [&] {
    failed.store(true, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(errorMutex);
    if (!error) error = std::current_exception();
  };

  auto worker = [&](unsigned w) {
    const auto [first, last] = ranges[w];
    while (true) {
      // Phase A: merge mailboxes, then publish this worker's minimum
      // next-event time for the global min-reduction.
      SimTime minNext = kMaxTime;
      if (!failed.load(std::memory_order_relaxed)) {
        try {
          for (unsigned i = first; i < last; ++i) {
            Shard& s = *shards_[i];
            tlsCursor = {this, &s};
            drainMailbox(s);
            if (!s.queue.empty()) {
              minNext = std::min(minNext, s.queue.nextTime());
            }
          }
        } catch (...) {
          recordError();
        }
      }
      localMin[w] = minNext;
      barrier.arrive([&] {
        SimTime t = kMaxTime;
        for (const SimTime m : localMin) t = std::min(t, m);
        if (failed.load(std::memory_order_relaxed) || t == kMaxTime ||
            t > until) {
          done = true;
          return;
        }
        SimTime h = (t > kMaxTime - lookahead_) ? kMaxTime : t + lookahead_;
        if (until != kMaxTime && h > until) h = until + 1;
        horizon = h;
      });
      if (done) break;
      // Phase B: every shard may safely execute below the horizon — no
      // cross-shard message generated this round can land before it.
      if (!failed.load(std::memory_order_relaxed)) {
        try {
          for (unsigned i = first; i < last; ++i) {
            Shard& s = *shards_[i];
            tlsCursor = {this, &s};
            executeWindow(s, horizon);
          }
        } catch (...) {
          recordError();
        }
      }
      barrier.arrive([] {});
    }
    tlsCursor = {nullptr, nullptr};
  };

  threadedRun_ = true;
  std::vector<std::thread> threads;
  threads.reserve(nThreads - 1);
  for (unsigned w = 1; w < nThreads; ++w) threads.emplace_back(worker, w);
  worker(0);
  for (auto& t : threads) t.join();
  threadedRun_ = false;

  if (error) std::rethrow_exception(error);

  // Between runs all shard clocks agree: the bound for a bounded run, the
  // global max for a drain.
  SimTime sync = until;
  if (until == kMaxTime) {
    sync = 0;
    for (const auto& s : shards_) sync = std::max(sync, s->now);
  }
  std::uint64_t executed = 0;
  for (const auto& s : shards_) {
    if (s->now < sync) s->now = sync;
    executed += s->executed;
  }
  return executed - startExecuted;
}

std::uint64_t Simulation::runUntil(SimTime until) {
  if (shards_.size() == 1) return runSerial(until, /*bounded=*/true);
  return runWindowed(until);
}

std::uint64_t Simulation::runAll() {
  if (shards_.size() == 1) return runSerial(0, /*bounded=*/false);
  return runWindowed(kMaxTime);
}

bool Simulation::step() {
  if (shards_.size() != 1) {
    throw std::logic_error("Simulation::step: single-shard mode only");
  }
  if (shard0_->queue.empty()) return false;
  executeOne();
  return true;
}

ShardScope::ShardScope(Simulation& sim, ShardId shard)
    : sim_(sim), prev_(sim.activeShard_) {
  if (shard >= sim.shards_.size()) {
    throw std::out_of_range("ShardScope: no such shard");
  }
  sim.activeShard_ = sim.shards_[shard].get();
}

ShardScope::~ShardScope() { sim_.activeShard_ = prev_; }

}  // namespace softqos::sim
