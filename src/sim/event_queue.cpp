#include "sim/event_queue.hpp"

#include <cassert>

namespace softqos::sim {

EventId EventQueue::schedule(SimTime when, Callback cb) {
  assert(cb && "scheduling an empty callback");
  const EventId id = nextId_++;
  heap_.push(Entry{when, id, std::move(cb)});
  pending_.insert(id);
  return id;
}

bool EventQueue::cancel(EventId id) { return pending_.erase(id) != 0; }

void EventQueue::dropDeadFront() {
  while (!heap_.empty() && !pending_.contains(heap_.top().id)) heap_.pop();
}

SimTime EventQueue::nextTime() const {
  auto* self = const_cast<EventQueue*>(this);
  self->dropDeadFront();
  assert(!self->heap_.empty() && "nextTime() on empty queue");
  return self->heap_.top().when;
}

std::pair<SimTime, EventQueue::Callback> EventQueue::pop() {
  dropDeadFront();
  assert(!heap_.empty() && "pop() on empty queue");
  // priority_queue::top() returns const&; the entry is discarded immediately
  // after, so moving the callback out through a non-const reference is safe.
  Entry& top = const_cast<Entry&>(heap_.top());
  std::pair<SimTime, Callback> out{top.when, std::move(top.cb)};
  pending_.erase(top.id);
  heap_.pop();
  return out;
}

}  // namespace softqos::sim
