#include "sim/event_queue.hpp"

#include <cassert>
#include <stdexcept>

namespace softqos::sim {

void EventQueue::setShardTag(std::uint8_t tag) {
  assert(slots_.empty() && scheduled_ == 0 &&
         "shard tag must be set before any event is scheduled");
  shardTag_ = tag;
}

std::uint32_t EventQueue::resolve(EventId id) const {
  if (idShardTag(id) != shardTag_) return kNpos;
  const auto low = static_cast<std::uint32_t>(id & 0xffffffu);
  if (low == 0) return kNpos;
  const std::uint32_t idx = low - 1;
  if (idx >= slots_.size()) return kNpos;
  const Slot& s = slots_[idx];
  if (s.state == SlotState::kFree) return kNpos;
  if (s.generation != static_cast<std::uint32_t>(id >> 32)) return kNpos;
  return idx;
}

std::uint32_t EventQueue::allocSlot() {
  if (freeHead_ != kNpos) {
    const std::uint32_t idx = freeHead_;
    freeHead_ = slots_[idx].nextFree;
    slots_[idx].nextFree = kNpos;
    return idx;
  }
  // Slot indices must fit the 24-bit field of the id encoding; the bound is
  // on *simultaneously live* events, not total throughput.
  if (slots_.size() >= 0xfffffeu) {
    throw std::length_error("EventQueue: more than 2^24-2 simultaneous events");
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void EventQueue::freeSlot(std::uint32_t idx) {
  Slot& s = slots_[idx];
  s.cb.reset();  // release captures eagerly, not at slot reuse
  s.state = SlotState::kFree;
  s.heapPos = kNpos;
  s.period = 0;
  ++s.generation;  // stale handles to this slot stop resolving
  s.nextFree = freeHead_;
  freeHead_ = idx;
  --live_;
}

EventId EventQueue::schedule(SimTime when, Callback cb) {
  assert(cb && "scheduling an empty callback");
  if (when < firedThrough_) {
    ++pastSchedules_;
    assert(false && "scheduling into an already-fired past window");
    throw std::logic_error(
        "EventQueue::schedule: timestamp precedes the already-fired window "
        "(cross-shard lookahead violation or clock misuse)");
  }
  const std::uint32_t idx = allocSlot();
  Slot& s = slots_[idx];
  s.when = when;
  s.seq = ++seqCounter_;
  s.period = 0;
  s.state = SlotState::kQueued;
  s.cb = std::move(cb);
  heapPush(idx);
  ++live_;
  ++scheduled_;
  return makeId(idx, s.generation);
}

EventId EventQueue::schedulePeriodic(SimTime first, SimDuration period,
                                     Callback cb) {
  assert(cb && "scheduling an empty callback");
  assert(period > 0 && "periodic events need a positive period");
  const EventId id = schedule(first, std::move(cb));
  slots_[resolve(id)].period = period;
  return id;
}

bool EventQueue::cancel(EventId id) {
  const std::uint32_t idx = resolve(id);
  if (idx == kNpos) return false;
  Slot& s = slots_[idx];
  if (s.state == SlotState::kQueued) heapRemove(s.heapPos);
  // kFiring: the callback was moved out for invocation; finishFire() will see
  // the generation bump and drop it instead of re-arming.
  freeSlot(idx);
  return true;
}

bool EventQueue::reschedulePeriodic(EventId id, SimTime now,
                                    SimDuration period) {
  assert(period > 0 && "periodic events need a positive period");
  const std::uint32_t idx = resolve(id);
  if (idx == kNpos) return false;
  Slot& s = slots_[idx];
  if (s.period <= 0) return false;
  s.period = period;
  if (s.state == SlotState::kQueued) {
    heapRemove(s.heapPos);
    s.when = now + period;
    s.seq = ++seqCounter_;
    heapPush(idx);
  }
  // kFiring: finishFire() re-arms at fire-time + the updated period.
  return true;
}

bool EventQueue::isPending(EventId id) const { return resolve(id) != kNpos; }

SimTime EventQueue::nextTime() const {
  assert(!heap_.empty() && "nextTime() on empty queue");
  return slots_[heap_.front()].when;
}

EventQueue::Firing EventQueue::beginFire() {
  assert(!heap_.empty() && "beginFire() on empty queue");
  const std::uint32_t idx = heap_.front();
  Slot& s = slots_[idx];
  Firing f;
  f.when = s.when;
  firedThrough_ = s.when;
  f.id = makeId(idx, s.generation);
  f.cb = std::move(s.cb);
  f.periodic = s.period > 0;
  heapRemove(0);
  if (f.periodic) {
    s.state = SlotState::kFiring;  // stays live: cancel/reschedule still work
  } else {
    freeSlot(idx);
  }
  return f;
}

void EventQueue::finishFire(Firing&& f) {
  if (!f.periodic) return;
  const std::uint32_t idx = resolve(f.id);
  if (idx == kNpos) return;  // cancelled from inside its own callback
  Slot& s = slots_[idx];
  assert(s.state == SlotState::kFiring);
  s.cb = std::move(f.cb);
  s.when = f.when + s.period;
  s.seq = ++seqCounter_;  // re-arm orders after events the callback scheduled
  s.state = SlotState::kQueued;
  heapPush(idx);
}

std::pair<SimTime, EventQueue::Callback> EventQueue::pop() {
  Firing f = beginFire();
  if (f.periodic) {
    const std::uint32_t idx = resolve(f.id);
    if (idx != kNpos) freeSlot(idx);
  }
  return {f.when, std::move(f.cb)};
}

void EventQueue::heapPush(std::uint32_t idx) {
  slots_[idx].heapPos = static_cast<std::uint32_t>(heap_.size());
  heap_.push_back(idx);
  siftUp(slots_[idx].heapPos);
}

void EventQueue::heapRemove(std::uint32_t pos) {
  assert(pos < heap_.size());
  slots_[heap_[pos]].heapPos = kNpos;
  const auto last = static_cast<std::uint32_t>(heap_.size() - 1);
  if (pos != last) {
    const std::uint32_t moved = heap_[last];
    heap_.pop_back();
    heap_[pos] = moved;
    slots_[moved].heapPos = pos;
    // The displaced element may need to move either direction.
    siftDown(pos);
    if (slots_[moved].heapPos == pos) siftUp(pos);
  } else {
    heap_.pop_back();
  }
}

void EventQueue::siftUp(std::uint32_t pos) {
  const std::uint32_t idx = heap_[pos];
  while (pos > 0) {
    const std::uint32_t parent = (pos - 1) / 2;
    if (!before(idx, heap_[parent])) break;
    heap_[pos] = heap_[parent];
    slots_[heap_[pos]].heapPos = pos;
    pos = parent;
  }
  heap_[pos] = idx;
  slots_[idx].heapPos = pos;
}

void EventQueue::siftDown(std::uint32_t pos) {
  const std::uint32_t n = static_cast<std::uint32_t>(heap_.size());
  const std::uint32_t idx = heap_[pos];
  while (true) {
    std::uint32_t best = pos;
    const std::uint32_t l = 2 * pos + 1;
    const std::uint32_t r = 2 * pos + 2;
    std::uint32_t bestIdx = idx;
    if (l < n && before(heap_[l], bestIdx)) {
      best = l;
      bestIdx = heap_[l];
    }
    if (r < n && before(heap_[r], bestIdx)) {
      best = r;
      bestIdx = heap_[r];
    }
    if (best == pos) break;
    heap_[pos] = heap_[best];
    slots_[heap_[pos]].heapPos = pos;
    pos = best;
  }
  heap_[pos] = idx;
  slots_[idx].heapPos = pos;
}

}  // namespace softqos::sim
