#include "sim/rollup.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace softqos::sim {

namespace {

void appendDouble(std::string& out, double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out += buf;
}

std::vector<std::string_view> splitView(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::optional<std::uint64_t> parseU64(std::string_view s) {
  if (s.empty() || s.size() > 19) return std::nullopt;
  std::uint64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return v;
}

std::optional<std::int64_t> parseI64(std::string_view s) {
  const bool neg = !s.empty() && s.front() == '-';
  const auto mag = parseU64(neg ? s.substr(1) : s);
  if (!mag.has_value()) return std::nullopt;
  const auto v = static_cast<std::int64_t>(*mag);
  return neg ? -v : v;
}

std::optional<double> parseDouble(std::string_view s) {
  if (s.empty() || s.size() >= 40) return std::nullopt;
  char buf[40];
  std::copy(s.begin(), s.end(), buf);
  buf[s.size()] = '\0';
  char* end = nullptr;
  const double v = std::strtod(buf, &end);
  if (end != buf + s.size()) return std::nullopt;
  return v;
}

}  // namespace

std::string encodeHistogram(const Histogram& h) {
  std::string out;
  out += std::to_string(h.count());
  out += ',';
  appendDouble(out, h.sum());
  out += ',';
  appendDouble(out, h.min());
  out += ',';
  appendDouble(out, h.max());
  const std::vector<std::uint64_t>& buckets = h.buckets();
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    out += ',';
    out += std::to_string(i);
    out += ':';
    out += std::to_string(buckets[i]);
  }
  // Exemplars trail the buckets as "x<idx>:<trace>:<when>:<value>" — an
  // exemplar-free histogram encodes byte-identically to the v1 codec.
  for (const auto& [idx, ex] : h.exemplars()) {
    out += ",x";
    out += std::to_string(idx);
    out += ':';
    out += std::to_string(ex.traceId);
    out += ':';
    out += std::to_string(ex.when);
    out += ':';
    appendDouble(out, ex.value);
  }
  return out;
}

std::optional<Histogram> decodeHistogram(std::string_view text) {
  const auto fields = splitView(text, ',');
  if (fields.size() < 4) return std::nullopt;
  const auto count = parseU64(fields[0]);
  const auto sum = parseDouble(fields[1]);
  const auto min = parseDouble(fields[2]);
  const auto max = parseDouble(fields[3]);
  if (!count || !sum || !min || !max) return std::nullopt;
  std::vector<std::uint64_t> buckets;
  std::vector<std::pair<std::size_t, Exemplar>> exemplars;
  std::uint64_t total = 0;
  for (std::size_t f = 4; f < fields.size(); ++f) {
    const std::string_view field = fields[f];
    if (!field.empty() && field.front() == 'x') {
      // Exemplar entry: x<idx>:<trace>:<when>:<value>.
      const auto parts = splitView(field.substr(1), ':');
      if (parts.size() != 4) return std::nullopt;
      const auto idx = parseU64(parts[0]);
      const auto trace = parseU64(parts[1]);
      const auto when = parseI64(parts[2]);
      const auto value = parseDouble(parts[3]);
      if (!idx || !trace || !when || !value || *idx >= 4096 || *trace == 0) {
        return std::nullopt;
      }
      exemplars.emplace_back(*idx, Exemplar{*trace, *value, *when});
      continue;
    }
    const std::size_t colon = field.find(':');
    if (colon == std::string_view::npos) return std::nullopt;
    const auto idx = parseU64(field.substr(0, colon));
    const auto cnt = parseU64(field.substr(colon + 1));
    // Bucket indexes are bounded by log2 of the largest double the codec can
    // carry; 4096 is far past any real sample and blocks hostile resizes.
    if (!idx || !cnt || *idx >= 4096) return std::nullopt;
    if (*idx >= buckets.size()) buckets.resize(*idx + 1, 0);
    buckets[*idx] += *cnt;
    total += *cnt;
  }
  if (total != *count) return std::nullopt;
  Histogram h =
      Histogram::fromParts(std::move(buckets), *count, *sum, *min, *max);
  for (const auto& [idx, ex] : exemplars) {
    // An exemplar must reference a non-empty bucket.
    if (idx >= h.buckets().size() || h.buckets()[idx] == 0) return std::nullopt;
    h.offerExemplar(idx, ex);
  }
  return h;
}

const Histogram* RollupWindow::Window::histogram(std::string_view name) const {
  for (const auto& [n, h] : histograms) {
    if (n == name) return &h;
  }
  return nullptr;
}

std::optional<std::int64_t> RollupWindow::Window::counter(
    std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return std::nullopt;
}

RollupWindow::RollupWindow(Simulation& simulation, MetricRegistry& registry,
                           RollupConfig config)
    : sim_(simulation), registry_(registry), config_(config) {
  if (config_.maxWindows == 0) config_.maxWindows = 1;
  lastTick_ = sim_.now();
}

void RollupWindow::trackCounter(const std::string& name) {
  for (const auto& c : counters_) {
    if (c.name == name) return;
  }
  TrackedCounter tc;
  tc.name = name;
  tc.last = registry_.counter(name);
  counters_.push_back(std::move(tc));
}

void RollupWindow::trackHistogram(const std::string& name) {
  for (const auto& h : histograms_) {
    if (h.name == name) return;
  }
  TrackedHistogram th;
  th.name = name;
  if (const Histogram* cur = registry_.histogram(name)) th.last = *cur;
  histograms_.push_back(std::move(th));
}

void RollupWindow::tick() {
  Window w;
  w.start = lastTick_;
  w.end = sim_.now();
  w.counters.reserve(counters_.size());
  for (TrackedCounter& tc : counters_) {
    const std::int64_t cur = registry_.counter(tc.name);
    w.counters.emplace_back(tc.name, cur - tc.last);
    tc.last = cur;
  }
  w.histograms.reserve(histograms_.size());
  for (TrackedHistogram& th : histograms_) {
    const Histogram* cur = registry_.histogram(th.name);
    if (cur != nullptr) {
      w.histograms.emplace_back(th.name, cur->deltaSince(th.last));
      th.last = *cur;
    } else {
      w.histograms.emplace_back(th.name, Histogram{});
    }
  }
  windows_.push_back(std::move(w));
  while (windows_.size() > config_.maxWindows) windows_.pop_front();
  lastTick_ = sim_.now();
  ++ticks_;
}

Histogram RollupWindow::mergedHistogram(std::string_view name,
                                        SimTime from) const {
  Histogram merged;
  for (const Window& w : windows_) {
    if (w.end <= from) continue;
    if (const Histogram* h = w.histogram(name)) merged.merge(*h);
  }
  return merged;
}

std::int64_t RollupWindow::counterSum(std::string_view name,
                                      SimTime from) const {
  std::int64_t sum = 0;
  for (const Window& w : windows_) {
    if (w.end <= from) continue;
    if (const auto v = w.counter(name)) sum += *v;
  }
  return sum;
}

TelemetrySnapshot TelemetrySnapshot::fromWindow(
    std::string source, const RollupWindow::Window& window) {
  TelemetrySnapshot snap;
  snap.source = std::move(source);
  snap.windowStart = window.start;
  snap.windowEnd = window.end;
  snap.counters = window.counters;
  snap.histograms = window.histograms;
  return snap;
}

std::string TelemetrySnapshot::serialize() const {
  std::string out = "v1\n";
  out += "src=" + source + "\n";
  out += "win=" + std::to_string(windowStart) + "," +
         std::to_string(windowEnd) + "\n";
  for (const auto& [name, delta] : counters) {
    out += "c=" + name + "," + std::to_string(delta) + "\n";
  }
  for (const auto& [name, hist] : histograms) {
    out += "h=" + name + ";" + encodeHistogram(hist) + "\n";
  }
  return out;
}

std::optional<TelemetrySnapshot> TelemetrySnapshot::parse(
    std::string_view text) {
  const auto lines = splitView(text, '\n');
  if (lines.empty() || lines[0] != "v1") return std::nullopt;
  TelemetrySnapshot snap;
  bool sawSource = false;
  bool sawWindow = false;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::string_view line = lines[i];
    if (line.empty()) continue;  // trailing newline
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) return std::nullopt;
    const std::string_view key = line.substr(0, eq);
    const std::string_view rest = line.substr(eq + 1);
    if (key == "src") {
      snap.source = std::string(rest);
      sawSource = true;
    } else if (key == "win") {
      const std::size_t comma = rest.find(',');
      if (comma == std::string_view::npos) return std::nullopt;
      const auto start = parseI64(rest.substr(0, comma));
      const auto end = parseI64(rest.substr(comma + 1));
      if (!start || !end) return std::nullopt;
      snap.windowStart = *start;
      snap.windowEnd = *end;
      sawWindow = true;
    } else if (key == "c") {
      const std::size_t comma = rest.rfind(',');
      if (comma == std::string_view::npos) return std::nullopt;
      const auto delta = parseI64(rest.substr(comma + 1));
      if (!delta) return std::nullopt;
      snap.counters.emplace_back(std::string(rest.substr(0, comma)), *delta);
    } else if (key == "h") {
      const std::size_t semi = rest.find(';');
      if (semi == std::string_view::npos) return std::nullopt;
      auto hist = decodeHistogram(rest.substr(semi + 1));
      if (!hist) return std::nullopt;
      snap.histograms.emplace_back(std::string(rest.substr(0, semi)),
                                   std::move(*hist));
    } else {
      return std::nullopt;
    }
  }
  if (!sawSource || !sawWindow) return std::nullopt;
  return snap;
}

TelemetrySnapshot TelemetryAggregator::cutDelta(std::string source,
                                                SimTime windowStart,
                                                SimTime windowEnd) {
  TelemetrySnapshot snap;
  snap.source = std::move(source);
  snap.windowStart = windowStart;
  snap.windowEnd = windowEnd;
  for (const auto& [name, total] : counters_) {
    std::int64_t& base = cutCounters_[name];
    if (total != base) snap.counters.emplace_back(name, total - base);
    base = total;
  }
  for (const auto& [name, hist] : merged_) {
    Histogram& base = cutHistograms_[name];
    Histogram delta = hist.deltaSince(base);
    if (delta.count() != 0) {
      snap.histograms.emplace_back(name, std::move(delta));
    }
    base = hist;
  }
  return snap;
}

void TelemetryAggregator::ingest(const TelemetrySnapshot& snapshot) {
  ++ingested_;
  for (const auto& [name, delta] : snapshot.counters) {
    counters_[name] += delta;
  }
  for (const auto& [name, hist] : snapshot.histograms) {
    merged_[name].merge(hist);
  }
  latest_[snapshot.source] = snapshot;
}

}  // namespace softqos::sim
