// Small-buffer-optimized, move-only callable for the event kernel.
//
// std::function's inline buffer (16 bytes in libstdc++) is too small for the
// closures the simulator actually schedules — a socket delivery captures a
// continuation plus a Message (~130 bytes), a NIC hop captures a whole Packet
// — so nearly every scheduled event paid a heap allocation. SmallCallback
// stores captures up to kInlineCapacity bytes in place and only falls back to
// the heap above that, which covers every closure in the tree today.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace softqos::sim {

class SmallCallback {
 public:
  /// Sized to hold the largest hot-path closure (socket delivery: a
  /// std::function continuation + an osim::Message) without spilling.
  static constexpr std::size_t kInlineCapacity = 168;

  SmallCallback() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (fitsInline<Fn>()) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &kHeapOps<Fn>;
    }
  }

  SmallCallback(SmallCallback&& other) noexcept { moveFrom(other); }

  SmallCallback& operator=(SmallCallback&& other) noexcept {
    if (this != &other) {
      reset();
      moveFrom(other);
    }
    return *this;
  }

  SmallCallback(const SmallCallback&) = delete;
  SmallCallback& operator=(const SmallCallback&) = delete;

  ~SmallCallback() { reset(); }

  /// Invoke the stored callable. The callable stays valid and may be invoked
  /// again (periodic events fire the same closure every period).
  void operator()() { ops_->invoke(storage_); }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  /// True when the callable lives in the inline buffer (diagnostics/tests).
  [[nodiscard]] bool isInline() const { return ops_ != nullptr && ops_->inlined; }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void* from, void* to);  // move-construct to, destroy from
    void (*destroy)(void*);
    bool inlined;
  };

  template <typename Fn>
  static constexpr bool fitsInline() {
    return sizeof(Fn) <= kInlineCapacity &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static constexpr Ops kInlineOps = {
      [](void* o) { (*std::launder(reinterpret_cast<Fn*>(o)))(); },
      [](void* from, void* to) {
        Fn* src = std::launder(reinterpret_cast<Fn*>(from));
        ::new (to) Fn(std::move(*src));
        src->~Fn();
      },
      [](void* o) { std::launder(reinterpret_cast<Fn*>(o))->~Fn(); },
      /*inlined=*/true,
  };

  template <typename Fn>
  static constexpr Ops kHeapOps = {
      [](void* o) { (**std::launder(reinterpret_cast<Fn**>(o)))(); },
      [](void* from, void* to) {
        ::new (to) Fn*(*std::launder(reinterpret_cast<Fn**>(from)));
      },
      [](void* o) { delete *std::launder(reinterpret_cast<Fn**>(o)); },
      /*inlined=*/false,
  };

  void moveFrom(SmallCallback& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(other.storage_, storage_);
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte storage_[kInlineCapacity];
  const Ops* ops_ = nullptr;
};

}  // namespace softqos::sim
