// Deterministic event queue for the softqos discrete-event kernel.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace softqos::sim {

/// Handle identifying a scheduled event; usable for cancellation.
using EventId = std::uint64_t;

/// Sentinel returned when no event was scheduled.
inline constexpr EventId kInvalidEvent = 0;

/// Priority queue of timed callbacks with stable ordering and cancellation.
///
/// Events at equal timestamps fire in insertion order, which makes whole-system
/// runs bit-reproducible. Cancellation is O(1): the id is removed from the
/// pending set and its heap entry dropped lazily when it reaches the front.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedule `cb` to fire at absolute time `when`. `when` must be >= the time
  /// of the most recently popped event (the kernel enforces monotonicity).
  EventId schedule(SimTime when, Callback cb);

  /// Cancel a previously scheduled event. Safe to call with an id that already
  /// fired or was cancelled; returns true if the event was still pending.
  bool cancel(EventId id);

  /// True if `id` is scheduled and has neither fired nor been cancelled.
  [[nodiscard]] bool isPending(EventId id) const { return pending_.contains(id); }

  /// True when no live events remain.
  [[nodiscard]] bool empty() const { return pending_.empty(); }

  /// Number of live (scheduled, not cancelled, not fired) events.
  [[nodiscard]] std::size_t size() const { return pending_.size(); }

  /// Timestamp of the earliest live event. Precondition: !empty().
  [[nodiscard]] SimTime nextTime() const;

  /// Pop and return the earliest live event. Precondition: !empty().
  /// The caller (Simulation) invokes the callback after advancing the clock.
  std::pair<SimTime, Callback> pop();

  /// Total events scheduled over the queue's lifetime (diagnostics).
  [[nodiscard]] std::uint64_t totalScheduled() const { return nextId_ - 1; }

 private:
  struct Entry {
    SimTime when = 0;
    EventId id = kInvalidEvent;  // doubles as the insertion sequence number
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.id > b.id;
    }
  };

  void dropDeadFront();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<EventId> pending_;
  EventId nextId_ = 1;
};

}  // namespace softqos::sim
