// Deterministic event queue for the softqos discrete-event kernel.
//
// Events live in a pooled slot arena; a binary heap of slot indices orders
// them by (timestamp, insertion sequence), so events at equal timestamps fire
// in insertion order and whole-system runs stay bit-reproducible. EventId
// handles encode (slot, generation): cancelling a stale handle after the slot
// was recycled is a safe no-op. Cancellation removes the heap entry eagerly
// (no tombstones accumulate under cancel-heavy workloads such as RPC
// timeouts) and returns the slot to a free list for reuse.
#pragma once

#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "sim/callback.hpp"
#include "sim/time.hpp"

namespace softqos::sim {

/// Handle identifying a scheduled event; usable for cancellation. Encodes the
/// slot's generation in the high 32 bits, the owning queue's shard tag in
/// bits 24..31, and the arena slot in the low 24 bits (offset by one so 0
/// stays invalid). With the default tag of 0 the encoding is identical to
/// the historical (generation, slot) layout, so single-shard ids are
/// unchanged; in sharded simulations the kernel routes cancel/reschedule to
/// the owning queue through the tag.
using EventId = std::uint64_t;

/// Sentinel returned when no event was scheduled.
inline constexpr EventId kInvalidEvent = 0;

/// Pooled, generation-stamped priority queue of timed callbacks with stable
/// FIFO ordering at equal timestamps and eager cancellation.
class EventQueue {
 public:
  using Callback = SmallCallback;

  /// One event popped for execution. For a periodic event the slot stays live
  /// ("firing") while the callback runs so its id remains cancellable; the
  /// kernel hands the record back via finishFire() to re-arm it.
  struct Firing {
    SimTime when = 0;
    EventId id = kInvalidEvent;
    Callback cb;
    bool periodic = false;
  };

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Tag ids minted by this queue with a shard identifier (0..255). Must be
  /// set before any event is scheduled; tag 0 (the default) reproduces the
  /// historical id encoding bit-for-bit.
  void setShardTag(std::uint8_t tag);

  /// Shard tag carried by an id (0 for ids from an untagged queue).
  [[nodiscard]] static std::uint8_t idShardTag(EventId id) {
    return static_cast<std::uint8_t>((id >> 24) & 0xffu);
  }

  /// Schedule `cb` to fire once at absolute time `when`. Scheduling into the
  /// already-fired past (`when` strictly before the timestamp of the most
  /// recently fired event) is a logic error: it would silently reorder
  /// history, and in a sharded run it means a cross-shard message violated
  /// the lookahead contract. It fails loudly — asserts in debug builds,
  /// bumps pastSchedules() and throws std::logic_error in all builds.
  EventId schedule(SimTime when, Callback cb);

  /// Schedule `cb` to fire at `first` and then every `period` ticks. The
  /// returned id stays valid across occurrences. `period` must be > 0.
  EventId schedulePeriodic(SimTime first, SimDuration period, Callback cb);

  /// Cancel a scheduled event (one-shot or periodic; also valid while the
  /// event's own callback is running). Safe with stale or invalid ids;
  /// returns true if the event was still live. The callback is destroyed and
  /// the heap entry removed immediately.
  bool cancel(EventId id);

  /// Re-time a periodic event: its next occurrence moves to `now + period`
  /// (or, when called from inside the firing callback, to fire-time + period)
  /// and subsequent occurrences follow every `period`. Returns false for
  /// stale ids or one-shot events.
  bool reschedulePeriodic(EventId id, SimTime now, SimDuration period);

  /// True if `id` is live: scheduled, or a periodic event currently firing.
  [[nodiscard]] bool isPending(EventId id) const;

  /// True when no live events remain.
  [[nodiscard]] bool empty() const { return live_ == 0; }

  /// Number of live events.
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Timestamp of the earliest live event. Precondition: !empty().
  [[nodiscard]] SimTime nextTime() const;

  /// Pop the earliest event and remove it entirely (a periodic event is
  /// deactivated). Precondition: !empty(). The kernel's fire path is
  /// beginFire()/finishFire(); pop() serves tests and ad-hoc draining.
  std::pair<SimTime, Callback> pop();

  /// Remove the earliest event for execution. The caller invokes `cb` after
  /// advancing the clock, then must pass the record to finishFire().
  Firing beginFire();

  /// Complete a fire: re-arms a periodic event at when + period with a fresh
  /// insertion sequence number (unless it was cancelled, or rescheduled, from
  /// inside its own callback). One-shot records are a no-op.
  void finishFire(Firing&& f);

  /// Total events scheduled over the queue's lifetime, periodic re-arms
  /// excluded (diagnostics).
  [[nodiscard]] std::uint64_t totalScheduled() const { return scheduled_; }

  /// Rejected attempts to schedule strictly before the most recently fired
  /// timestamp (each also threw std::logic_error). Nonzero means some caller
  /// tried to rewrite drained history — in sharded runs, a lookahead bug.
  [[nodiscard]] std::uint64_t pastSchedules() const { return pastSchedules_; }

  /// Timestamp of the most recently fired event; the floor below which
  /// schedule() refuses to insert. Starts at SimTime's minimum.
  [[nodiscard]] SimTime firedThrough() const { return firedThrough_; }

  /// Number of arena slots ever allocated (diagnostics: bounded by the peak
  /// number of simultaneously live events, not by total throughput).
  [[nodiscard]] std::size_t slotCapacity() const { return slots_.size(); }

 private:
  static constexpr std::uint32_t kNpos = 0xffffffffu;

  enum class SlotState : std::uint8_t { kFree, kQueued, kFiring };

  struct Slot {
    SimTime when = 0;
    std::uint64_t seq = 0;       // FIFO tie-break at equal timestamps
    SimDuration period = 0;      // 0 = one-shot
    std::uint32_t generation = 1;
    std::uint32_t heapPos = kNpos;
    std::uint32_t nextFree = kNpos;
    SlotState state = SlotState::kFree;
    Callback cb;
  };

  EventId makeId(std::uint32_t slot, std::uint32_t generation) const {
    return (static_cast<EventId>(generation) << 32) |
           (static_cast<EventId>(shardTag_) << 24) |
           (static_cast<EventId>(slot) + 1);
  }

  /// Slot index for `id`, or kNpos if the handle is stale/invalid.
  [[nodiscard]] std::uint32_t resolve(EventId id) const;

  std::uint32_t allocSlot();
  void freeSlot(std::uint32_t idx);

  [[nodiscard]] bool before(std::uint32_t a, std::uint32_t b) const {
    const Slot& sa = slots_[a];
    const Slot& sb = slots_[b];
    if (sa.when != sb.when) return sa.when < sb.when;
    return sa.seq < sb.seq;
  }

  void heapPush(std::uint32_t idx);
  void heapRemove(std::uint32_t pos);
  void siftUp(std::uint32_t pos);
  void siftDown(std::uint32_t pos);

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> heap_;  // slot indices ordered by (when, seq)
  std::uint32_t freeHead_ = kNpos;
  std::size_t live_ = 0;
  std::uint64_t seqCounter_ = 0;
  std::uint64_t scheduled_ = 0;
  std::uint64_t pastSchedules_ = 0;
  SimTime firedThrough_ = std::numeric_limits<SimTime>::min();
  std::uint8_t shardTag_ = 0;
};

}  // namespace softqos::sim
