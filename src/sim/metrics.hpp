// Metric collection: counters, gauges sampled over time, and summary stats.
//
// Experiments record series through a MetricRegistry owned by the Simulation;
// bench harnesses read the summaries to print paper-style tables.
//
// Steady-path recording is allocation- and lookup-free: callers intern a
// Counter or TimeSeries handle once (string lookup at registration only) and
// record through the handle afterwards. Handles stay valid for the registry's
// lifetime — entries live in node-stable maps — but are invalidated by
// clear().
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace softqos::sim {

/// Streaming summary statistics (Welford) over double samples.
class Summary {
 public:
  void add(double x);

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// A named time series of (time, value) samples plus summary statistics.
/// Recording is just an append; the summary is computed on first read and
/// cached (experiments record millions of samples and read the summary once).
class TimeSeries {
 public:
  void record(SimTime t, double value) {
    samples_.emplace_back(t, value);
    dirty_ = true;
  }

  [[nodiscard]] const std::vector<std::pair<SimTime, double>>& samples() const {
    return samples_;
  }
  [[nodiscard]] const Summary& summary() const;

  /// Summary restricted to samples with t >= from (e.g. skip warm-up).
  [[nodiscard]] Summary summaryFrom(SimTime from) const;

  /// Mean of samples falling in [from, to).
  [[nodiscard]] double meanInWindow(SimTime from, SimTime to) const;

 private:
  std::vector<std::pair<SimTime, double>> samples_;
  mutable Summary summary_;
  mutable bool dirty_ = false;
};

/// Interned handle to a registry counter: one pointer-chase to bump, no
/// string lookup. Copyable; a default-constructed handle ignores add().
class Counter {
 public:
  Counter() = default;

  void add(std::int64_t delta = 1) {
    if (v_ != nullptr) *v_ += delta;
  }
  [[nodiscard]] std::int64_t value() const { return v_ != nullptr ? *v_ : 0; }
  [[nodiscard]] explicit operator bool() const { return v_ != nullptr; }

 private:
  friend class MetricRegistry;
  explicit Counter(std::int64_t* v) : v_(v) {}
  std::int64_t* v_ = nullptr;
};

/// Registry of named counters and time series, keyed by string.
class MetricRegistry {
 public:
  /// Intern a counter handle (created at zero on first use). The handle is
  /// stable until clear().
  [[nodiscard]] Counter counterHandle(const std::string& name) {
    return Counter(&counters_[name]);
  }

  /// Intern a series handle (created on first use). The pointer is stable
  /// until clear().
  [[nodiscard]] TimeSeries* seriesHandle(const std::string& name) {
    return &series_[name];
  }

  /// Add `delta` to the named counter (created at zero on first use).
  /// String-keyed convenience; hot paths should intern a handle instead.
  void count(const std::string& name, std::int64_t delta = 1);

  /// Record a sample on the named series (created on first use).
  /// String-keyed convenience; hot paths should intern a handle instead.
  void sample(const std::string& name, SimTime t, double value);

  [[nodiscard]] std::int64_t counter(const std::string& name) const;
  [[nodiscard]] const TimeSeries* series(const std::string& name) const;
  [[nodiscard]] const std::map<std::string, std::int64_t>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, TimeSeries>& allSeries() const {
    return series_;
  }

  /// Drops all metrics. Invalidates interned handles.
  void clear();

 private:
  std::map<std::string, std::int64_t> counters_;
  std::map<std::string, TimeSeries> series_;
};

}  // namespace softqos::sim
