// Metric collection: counters, gauges sampled over time, log-bucketed
// histograms, and summary stats.
//
// Experiments record series through a MetricRegistry owned by the Simulation;
// bench harnesses read the summaries to print paper-style tables.
//
// Steady-path recording is allocation- and lookup-free: callers intern a
// Counter, Series or HistogramHandle once (string lookup at registration
// only) and record through the handle afterwards. Handles are
// generation-stamped against the registry: clear() bumps the generation, so
// a stale handle quietly becomes a no-op instead of dereferencing a freed
// map node. Handles must not outlive the registry itself.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace softqos::sim {

/// Streaming summary statistics (Welford) over double samples.
class Summary {
 public:
  void add(double x);

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// A named time series of (time, value) samples plus summary statistics.
/// Recording is just an append; the summary is computed on first read and
/// cached (experiments record millions of samples and read the summary once).
class TimeSeries {
 public:
  void record(SimTime t, double value) {
    samples_.emplace_back(t, value);
    dirty_ = true;
  }

  [[nodiscard]] const std::vector<std::pair<SimTime, double>>& samples() const {
    return samples_;
  }
  [[nodiscard]] const Summary& summary() const;

  /// Summary restricted to samples with t >= from (e.g. skip warm-up).
  [[nodiscard]] Summary summaryFrom(SimTime from) const;

  /// Mean of samples falling in [from, to).
  [[nodiscard]] double meanInWindow(SimTime from, SimTime to) const;

 private:
  std::vector<std::pair<SimTime, double>> samples_;
  mutable Summary summary_;
  mutable bool dirty_ = false;
};

/// One trace reference attached to a histogram bucket: the sample `value`
/// recorded at sim time `when` belonged to trace `traceId`, so a dashboard
/// reading a p99 bucket can jump to a concrete retained trace. Buckets keep
/// at most one exemplar under a newest-wins total order (see exemplarNewer),
/// which makes exemplar merging associative and commutative — a domain tree
/// aggregating through any arrangement of tiers converges on the same
/// exemplar per bucket.
struct Exemplar {
  std::uint64_t traceId = 0;
  double value = 0.0;
  SimTime when = 0;
};

/// Strict weak order for newest-wins exemplar selection: later `when` wins,
/// ties break by traceId then value bits. Pure function of the operands, so
/// max() over any merge order / tier shape picks the same exemplar.
[[nodiscard]] bool exemplarNewer(const Exemplar& a, const Exemplar& b);

/// Log-bucketed latency/size histogram: 4 sub-buckets per octave (bucket
/// boundaries grow by 2^(1/4) ≈ 19%, so a reported quantile is within ~±9%
/// of the true sample), exact count/sum/min/max, mergeable across instances
/// (used to fold per-shard recordings into one distribution). Negative
/// samples clamp to bucket zero.
///
/// Buckets optionally carry one Exemplar (sparse: exemplar-free histograms
/// pay nothing and encode byte-identically on the wire). Exemplars ride
/// merge/deltaSince so telemetry rollups propagate them up the domain tree.
class Histogram {
 public:
  static constexpr int kSubBucketsPerOctave = 4;

  void add(double value);

  /// add(value), then offer (traceId, value, when) as the exemplar of the
  /// bucket the sample lands in (newest-wins). traceId 0 records plain.
  void addWithExemplar(double value, std::uint64_t traceId, SimTime when);

  /// Fold `other` into this histogram (bucket-wise addition; exemplars
  /// newest-wins per bucket).
  void merge(const Histogram& other);

  /// The samples recorded since `earlier` was snapshotted from this same
  /// histogram (bucket-wise subtraction). count/sum are exact; min/max are
  /// estimated from the delta's occupied bucket range (except when `earlier`
  /// is empty, where the delta is this histogram verbatim). Used by
  /// RollupWindow to cut an ever-growing histogram into per-window slices.
  /// Buckets with new samples carry the current exemplar — possibly a
  /// re-send of one already published, which the newest-wins merge absorbs
  /// idempotently downstream.
  [[nodiscard]] Histogram deltaSince(const Histogram& earlier) const;

  /// Samples in buckets lying entirely at or above `threshold` (bucket
  /// granularity: a sample within ~±19% of the threshold may be counted on
  /// either side). SLO burn rates treat these as budget-consuming events.
  [[nodiscard]] std::uint64_t countAbove(double threshold) const;

  /// countAbove / count, in [0, 1]; 0 for an empty histogram. The
  /// latency-budget exporter reads this as "fraction of episodes over
  /// budget" (same bucket-granularity caveat as countAbove).
  [[nodiscard]] double fractionAbove(double threshold) const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(countAbove(threshold)) /
                             static_cast<double>(count_);
  }

  /// Rebuild a histogram from raw parts (the wire codec's inverse). The
  /// caller vouches for consistency (count == sum of buckets).
  [[nodiscard]] static Histogram fromParts(std::vector<std::uint64_t> buckets,
                                           std::uint64_t count, double sum,
                                           double min, double max);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }

  /// Value at percentile `p` in [0, 100]: the geometric midpoint of the
  /// bucket holding the rank-`ceil(p/100*count)` sample, clamped to the
  /// observed [min, max]. Returns 0 on an empty histogram.
  [[nodiscard]] double percentile(double p) const;

  [[nodiscard]] double p50() const { return percentile(50.0); }
  [[nodiscard]] double p90() const { return percentile(90.0); }
  [[nodiscard]] double p99() const { return percentile(99.0); }

  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const {
    return buckets_;
  }

  /// Sparse per-bucket exemplars, keyed by bucket index.
  [[nodiscard]] const std::map<std::size_t, Exemplar>& exemplars() const {
    return exemplars_;
  }

  /// Offer `ex` as bucket `index`'s exemplar; kept only if newer than the
  /// incumbent (wire decode and merge both funnel through here).
  void offerExemplar(std::size_t index, const Exemplar& ex);

  /// Lower bound of bucket `index` (bucket 0 covers [0, 1)).
  [[nodiscard]] static double bucketLowerBound(std::size_t index);

 private:
  [[nodiscard]] static std::size_t bucketIndex(double value);

  std::vector<std::uint64_t> buckets_;
  std::map<std::size_t, Exemplar> exemplars_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Interned handle to a registry counter: one pointer-chase to bump, no
/// string lookup. Copyable; a default-constructed handle ignores add(), and
/// a handle outliving MetricRegistry::clear() becomes a no-op (the registry
/// generation it was minted under no longer matches).
class Counter {
 public:
  Counter() = default;

  void add(std::int64_t delta = 1) {
    if (v_ != nullptr && *registryGen_ == gen_) *v_ += delta;
  }
  [[nodiscard]] std::int64_t value() const {
    return v_ != nullptr && *registryGen_ == gen_ ? *v_ : 0;
  }
  [[nodiscard]] explicit operator bool() const {
    return v_ != nullptr && *registryGen_ == gen_;
  }

 private:
  friend class MetricRegistry;
  Counter(std::int64_t* v, const std::uint64_t* registryGen)
      : v_(v), registryGen_(registryGen), gen_(*registryGen) {}
  std::int64_t* v_ = nullptr;
  const std::uint64_t* registryGen_ = nullptr;
  std::uint64_t gen_ = 0;
};

/// Interned handle to a registry time series; same generation-stamp
/// semantics as Counter (stale or default-constructed handles no-op).
class Series {
 public:
  Series() = default;

  void record(SimTime t, double value) {
    if (s_ != nullptr && *registryGen_ == gen_) s_->record(t, value);
  }
  /// The underlying series, or nullptr when the handle is stale/empty.
  [[nodiscard]] const TimeSeries* get() const {
    return s_ != nullptr && *registryGen_ == gen_ ? s_ : nullptr;
  }
  [[nodiscard]] explicit operator bool() const { return get() != nullptr; }

 private:
  friend class MetricRegistry;
  Series(TimeSeries* s, const std::uint64_t* registryGen)
      : s_(s), registryGen_(registryGen), gen_(*registryGen) {}
  TimeSeries* s_ = nullptr;
  const std::uint64_t* registryGen_ = nullptr;
  std::uint64_t gen_ = 0;
};

/// Interned handle to a registry histogram; same generation-stamp semantics.
class HistogramHandle {
 public:
  HistogramHandle() = default;

  void record(double value) {
    if (h_ != nullptr && *registryGen_ == gen_) h_->add(value);
  }
  /// record(value) plus an exemplar linking the sample's bucket to a trace.
  void recordWithExemplar(double value, std::uint64_t traceId, SimTime when) {
    if (h_ != nullptr && *registryGen_ == gen_) {
      h_->addWithExemplar(value, traceId, when);
    }
  }
  [[nodiscard]] const Histogram* get() const {
    return h_ != nullptr && *registryGen_ == gen_ ? h_ : nullptr;
  }
  [[nodiscard]] explicit operator bool() const { return get() != nullptr; }

 private:
  friend class MetricRegistry;
  HistogramHandle(Histogram* h, const std::uint64_t* registryGen)
      : h_(h), registryGen_(registryGen), gen_(*registryGen) {}
  Histogram* h_ = nullptr;
  const std::uint64_t* registryGen_ = nullptr;
  std::uint64_t gen_ = 0;
};

/// Registry of named counters, time series and histograms, keyed by string.
class MetricRegistry {
 public:
  /// Intern a counter handle (created at zero on first use). The handle
  /// no-ops after clear().
  [[nodiscard]] Counter counterHandle(const std::string& name) {
    return Counter(&counters_[name], &generation_);
  }

  /// Intern a series handle (created on first use). No-ops after clear().
  [[nodiscard]] Series seriesHandle(const std::string& name) {
    return Series(&series_[name], &generation_);
  }

  /// Intern a histogram handle (created on first use). No-ops after clear().
  [[nodiscard]] HistogramHandle histogramHandle(const std::string& name) {
    return HistogramHandle(&histograms_[name], &generation_);
  }

  /// Add `delta` to the named counter (created at zero on first use).
  /// String-keyed convenience; hot paths should intern a handle instead.
  void count(const std::string& name, std::int64_t delta = 1);

  /// Record a sample on the named series (created on first use).
  /// String-keyed convenience; hot paths should intern a handle instead.
  void sample(const std::string& name, SimTime t, double value);

  /// Record a sample on the named histogram (created on first use).
  /// String-keyed convenience; hot paths should intern a handle instead.
  void observe(const std::string& name, double value);

  [[nodiscard]] std::int64_t counter(const std::string& name) const;
  [[nodiscard]] const TimeSeries* series(const std::string& name) const;
  [[nodiscard]] const Histogram* histogram(const std::string& name) const;
  [[nodiscard]] const std::map<std::string, std::int64_t>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, TimeSeries>& allSeries() const {
    return series_;
  }
  [[nodiscard]] const std::map<std::string, Histogram>& allHistograms() const {
    return histograms_;
  }

  /// Drops all metrics. Previously interned handles become no-ops.
  void clear();

 private:
  std::map<std::string, std::int64_t> counters_;
  std::map<std::string, TimeSeries> series_;
  std::map<std::string, Histogram> histograms_;
  std::uint64_t generation_ = 1;
};

}  // namespace softqos::sim
