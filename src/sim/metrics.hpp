// Metric collection: counters, gauges sampled over time, and summary stats.
//
// Experiments record series through a MetricRegistry owned by the Simulation;
// bench harnesses read the summaries to print paper-style tables.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace softqos::sim {

/// Streaming summary statistics (Welford) over double samples.
class Summary {
 public:
  void add(double x);

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// A named time series of (time, value) samples plus a running summary.
class TimeSeries {
 public:
  void record(SimTime t, double value);

  [[nodiscard]] const std::vector<std::pair<SimTime, double>>& samples() const {
    return samples_;
  }
  [[nodiscard]] const Summary& summary() const { return summary_; }

  /// Summary restricted to samples with t >= from (e.g. skip warm-up).
  [[nodiscard]] Summary summaryFrom(SimTime from) const;

  /// Mean of samples falling in [from, to).
  [[nodiscard]] double meanInWindow(SimTime from, SimTime to) const;

 private:
  std::vector<std::pair<SimTime, double>> samples_;
  Summary summary_;
};

/// Registry of named counters and time series, keyed by string.
class MetricRegistry {
 public:
  /// Add `delta` to the named counter (created at zero on first use).
  void count(const std::string& name, std::int64_t delta = 1);

  /// Record a sample on the named series (created on first use).
  void sample(const std::string& name, SimTime t, double value);

  [[nodiscard]] std::int64_t counter(const std::string& name) const;
  [[nodiscard]] const TimeSeries* series(const std::string& name) const;
  [[nodiscard]] const std::map<std::string, std::int64_t>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, TimeSeries>& allSeries() const {
    return series_;
  }

  void clear();

 private:
  std::map<std::string, std::int64_t> counters_;
  std::map<std::string, TimeSeries> series_;
};

}  // namespace softqos::sim
