// CSV rendering for metric data: lets experiment harnesses dump the series
// behind a figure so downstream users can re-plot them.
#pragma once

#include <string>

#include "sim/metrics.hpp"

namespace softqos::sim {

/// One series: header "time_s,<name>" then one row per sample.
std::string toCsv(const TimeSeries& series, const std::string& name);

/// Every series in long format: "series,time_s,value".
std::string seriesCsv(const MetricRegistry& metrics);

/// Counters: "counter,value".
std::string countersCsv(const MetricRegistry& metrics);

/// Quote a CSV field (doubles quotes, wraps when a delimiter is present).
std::string csvField(const std::string& raw);

}  // namespace softqos::sim
