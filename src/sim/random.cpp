#include "sim/random.hpp"

#include <algorithm>
#include <cmath>

namespace softqos::sim {
namespace {

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

RandomStream::RandomStream(std::uint64_t masterSeed, std::string_view name)
    : name_(name) {
  std::seed_seq seq{masterSeed, fnv1a(name), std::uint64_t{0x9e3779b97f4a7c15ull}};
  rng_.seed(seq);
}

double RandomStream::uniform01() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(rng_);
}

double RandomStream::uniform(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(rng_);
}

std::int64_t RandomStream::uniformInt(std::int64_t lo, std::int64_t hi) {
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(rng_);
}

double RandomStream::exponential(double mean) {
  return std::exponential_distribution<double>(1.0 / mean)(rng_);
}

double RandomStream::normal(double mean, double stddev) {
  return std::normal_distribution<double>(mean, stddev)(rng_);
}

bool RandomStream::chance(double probability) {
  return uniform01() < probability;
}

SimDuration RandomStream::expGap(SimDuration mean) {
  const double g = exponential(static_cast<double>(mean));
  return std::max<SimDuration>(1, static_cast<SimDuration>(std::llround(g)));
}

}  // namespace softqos::sim
