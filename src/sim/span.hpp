// Causal-tracing hook for the softqos kernel: a TraceContext identifies one
// span of a detection->diagnosis->actuation->recovery chain, and SpanObserver
// is the abstract sink the Simulation exposes to every subsystem.
//
// The concrete implementation lives in src/obs (span storage, Chrome-trace
// and metrics exporters); the kernel and the instrumented subsystems only
// see this interface. With no observer attached (the default) every
// instrumented site costs one pointer load + branch — no events, no random
// draws, no allocations — so runs replay byte-identically to an
// uninstrumented build. Span ids are minted from plain counters, never from
// a RandomStream, so enabled runs stay deterministic too.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "sim/time.hpp"

namespace softqos::sim {

/// Identifies one span: the trace (causal chain) it belongs to, its own id,
/// and its parent span (0 = root). A default-constructed context is invalid
/// and is ignored by every observer entry point.
struct TraceContext {
  std::uint64_t traceId = 0;
  std::uint64_t spanId = 0;
  std::uint64_t parentSpanId = 0;

  [[nodiscard]] bool valid() const { return traceId != 0; }

  /// Compact wire form "traceId:spanId" for RPC frames and report payloads.
  [[nodiscard]] std::string serialize() const {
    return std::to_string(traceId) + ":" + std::to_string(spanId);
  }

  /// Parse the wire form; malformed text yields an invalid context (the
  /// receiver simply records no spans) rather than an error.
  static TraceContext parse(std::string_view text) {
    TraceContext ctx;
    const std::size_t colon = text.find(':');
    if (colon == std::string_view::npos) return ctx;
    std::uint64_t trace = 0;
    std::uint64_t span = 0;
    for (std::size_t i = 0; i < colon; ++i) {
      const char c = text[i];
      if (c < '0' || c > '9') return ctx;
      trace = trace * 10 + static_cast<std::uint64_t>(c - '0');
    }
    for (std::size_t i = colon + 1; i < text.size(); ++i) {
      const char c = text[i];
      if (c < '0' || c > '9') return ctx;
      span = span * 10 + static_cast<std::uint64_t>(c - '0');
    }
    if (trace == 0) return ctx;
    ctx.traceId = trace;
    ctx.spanId = span;
    return ctx;
  }
};

/// Abstract causal-tracing + profiling sink. All times are simulation-clock
/// microseconds except the explicit wall-clock nanosecond arguments, which
/// exist purely for profiling (they never feed back into simulated state).
class SpanObserver {
 public:
  virtual ~SpanObserver() = default;

  /// Whether this observer may stay attached during a sharded (windowed)
  /// run. Requires every entry point to be safe when called concurrently
  /// from worker threads executing different shards (e.g. by partitioning
  /// all mutable state per shard). The default observer is serial-only.
  [[nodiscard]] virtual bool shardSafe() const { return false; }

  /// Mint a root span (a fresh trace). `name` is the span label, `component`
  /// the emitting subsystem (Chrome-trace category).
  virtual TraceContext beginTrace(SimTime now, std::string_view name,
                                  std::string_view component) = 0;

  /// Open a child span under `parent`. An invalid parent starts a fresh
  /// trace (so call sites never need to special-case the first span).
  virtual TraceContext beginSpan(SimTime now, const TraceContext& parent,
                                 std::string_view name,
                                 std::string_view component) = 0;

  /// Close a span. Unknown/invalid contexts are ignored (the span may have
  /// been evicted by the ring cap).
  virtual void endSpan(SimTime now, const TraceContext& span) = 0;

  /// Attach a key=value annotation to a span (matched facts, attempt counts,
  /// wall-clock costs, ...).
  virtual void annotate(const TraceContext& span, std::string_view key,
                        std::string_view value) = 0;

  /// Record a zero-duration marker under `parent` (alarm raised, retry sent,
  /// actuator invoked, recovery observed).
  virtual TraceContext instant(SimTime now, const TraceContext& parent,
                               std::string_view name,
                               std::string_view component) = 0;

  /// Kernel profiling hook: one event was executed at `now` with `depth`
  /// events still queued, taking `wallNanos` of host time.
  virtual void onEventExecuted(SimTime now, std::size_t depth,
                               std::uint64_t wallNanos) = 0;

  /// Component profiling hook: one instrumented callback of `component`
  /// took `wallNanos` of host time.
  virtual void recordProfile(std::string_view component,
                             std::uint64_t wallNanos) = 0;
};

/// RAII wall-clock probe for per-component callback profiling. With a null
/// observer the constructor and destructor are a single branch each — no
/// clock is read.
class ProfileTimer {
 public:
  ProfileTimer(SpanObserver* observer, std::string_view component)
      : observer_(observer), component_(component) {
    if (observer_ != nullptr) start_ = std::chrono::steady_clock::now();
  }

  ~ProfileTimer() {
    if (observer_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    observer_->recordProfile(
        component_,
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count()));
  }

  ProfileTimer(const ProfileTimer&) = delete;
  ProfileTimer& operator=(const ProfileTimer&) = delete;

 private:
  SpanObserver* observer_;
  std::string_view component_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace softqos::sim
