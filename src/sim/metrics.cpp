#include "sim/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace softqos::sim {

void Summary::add(double x) {
  ++n_;
  sum_ += x;
  const double d = x - mean_;
  mean_ += d / static_cast<double>(n_);
  m2_ += d * (x - mean_);
  if (n_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
}

double Summary::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double Summary::stddev() const { return std::sqrt(variance()); }

const Summary& TimeSeries::summary() const {
  if (dirty_) {
    summary_ = Summary();
    for (const auto& [t, v] : samples_) {
      (void)t;
      summary_.add(v);
    }
    dirty_ = false;
  }
  return summary_;
}

Summary TimeSeries::summaryFrom(SimTime from) const {
  Summary s;
  for (const auto& [t, v] : samples_) {
    if (t >= from) s.add(v);
  }
  return s;
}

double TimeSeries::meanInWindow(SimTime from, SimTime to) const {
  Summary s;
  for (const auto& [t, v] : samples_) {
    if (t >= from && t < to) s.add(v);
  }
  return s.mean();
}

bool exemplarNewer(const Exemplar& a, const Exemplar& b) {
  if (a.when != b.when) return a.when > b.when;
  if (a.traceId != b.traceId) return a.traceId > b.traceId;
  // Compare value as bits: a total order even across NaN/-0.0 oddities.
  std::uint64_t av = 0;
  std::uint64_t bv = 0;
  static_assert(sizeof(av) == sizeof(a.value));
  std::memcpy(&av, &a.value, sizeof(av));
  std::memcpy(&bv, &b.value, sizeof(bv));
  return av > bv;
}

std::size_t Histogram::bucketIndex(double value) {
  if (!(value >= 1.0)) return 0;  // negatives and NaN clamp to bucket zero
  // Bucket b >= 1 covers [2^(b-1)/4, 2^b/4): four buckets per octave.
  const double idx = std::log2(value) * kSubBucketsPerOctave;
  return 1 + static_cast<std::size_t>(idx);
}

double Histogram::bucketLowerBound(std::size_t index) {
  if (index == 0) return 0.0;
  return std::exp2(static_cast<double>(index - 1) / kSubBucketsPerOctave);
}

void Histogram::add(double value) {
  const std::size_t idx = bucketIndex(value);
  if (idx >= buckets_.size()) buckets_.resize(idx + 1, 0);
  ++buckets_[idx];
  ++count_;
  sum_ += value;
  if (count_ == 1) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
}

void Histogram::addWithExemplar(double value, std::uint64_t traceId,
                                SimTime when) {
  add(value);
  if (traceId == 0) return;
  offerExemplar(bucketIndex(value), Exemplar{traceId, value, when});
}

void Histogram::offerExemplar(std::size_t index, const Exemplar& ex) {
  if (ex.traceId == 0) return;
  const auto [it, inserted] = exemplars_.try_emplace(index, ex);
  if (!inserted && exemplarNewer(ex, it->second)) it->second = ex;
}

void Histogram::merge(const Histogram& other) {
  for (const auto& [idx, ex] : other.exemplars_) offerExemplar(idx, ex);
  if (other.count_ == 0) return;
  if (other.buckets_.size() > buckets_.size()) {
    buckets_.resize(other.buckets_.size(), 0);
  }
  for (std::size_t i = 0; i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

Histogram Histogram::deltaSince(const Histogram& earlier) const {
  if (earlier.count_ == 0) return *this;  // exact, including min/max
  Histogram delta;
  if (count_ <= earlier.count_) return delta;
  delta.buckets_.assign(buckets_.size(), 0);
  std::size_t first = buckets_.size();
  std::size_t last = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const std::uint64_t before =
        i < earlier.buckets_.size() ? earlier.buckets_[i] : 0;
    // Defensive clamp: `earlier` is a snapshot of this histogram, so buckets
    // only grow; anything else would underflow.
    delta.buckets_[i] = buckets_[i] > before ? buckets_[i] - before : 0;
    if (delta.buckets_[i] > 0) {
      first = std::min(first, i);
      last = i;
    }
  }
  delta.count_ = count_ - earlier.count_;
  delta.sum_ = sum_ - earlier.sum_;
  if (first < delta.buckets_.size()) {
    delta.min_ = bucketLowerBound(first);
    delta.max_ = std::min(max_, bucketLowerBound(last + 1));
  }
  // Ship the current exemplar for every bucket that saw new samples. The
  // exemplar may predate the window (a re-send); newest-wins merging makes
  // that idempotent at the receiver.
  for (const auto& [idx, ex] : exemplars_) {
    if (idx < delta.buckets_.size() && delta.buckets_[idx] > 0) {
      delta.exemplars_.emplace(idx, ex);
    }
  }
  return delta;
}

std::uint64_t Histogram::countAbove(double threshold) const {
  std::uint64_t above = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (bucketLowerBound(i) >= threshold) above += buckets_[i];
  }
  return above;
}

Histogram Histogram::fromParts(std::vector<std::uint64_t> buckets,
                               std::uint64_t count, double sum, double min,
                               double max) {
  Histogram h;
  h.buckets_ = std::move(buckets);
  h.count_ = count;
  h.sum_ = sum;
  h.min_ = min;
  h.max_ = max;
  return h;
}

double Histogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::min(100.0, std::max(0.0, p));
  // Rank of the requested sample (1-based); p=0 maps to the first sample.
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(p / 100.0 * static_cast<double>(count_))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      const double lo = bucketLowerBound(i);
      const double hi = bucketLowerBound(i + 1);
      // Geometric midpoint of the bucket, clamped to observed extremes so
      // single-sample and single-bucket histograms report exact values.
      const double mid = lo > 0.0 ? std::sqrt(lo * hi) : hi / 2.0;
      return std::min(max_, std::max(min_, mid));
    }
  }
  return max_;
}

void MetricRegistry::count(const std::string& name, std::int64_t delta) {
  counters_[name] += delta;
}

void MetricRegistry::sample(const std::string& name, SimTime t, double value) {
  series_[name].record(t, value);
}

void MetricRegistry::observe(const std::string& name, double value) {
  histograms_[name].add(value);
}

std::int64_t MetricRegistry::counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

const TimeSeries* MetricRegistry::series(const std::string& name) const {
  const auto it = series_.find(name);
  return it == series_.end() ? nullptr : &it->second;
}

const Histogram* MetricRegistry::histogram(const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void MetricRegistry::clear() {
  counters_.clear();
  series_.clear();
  histograms_.clear();
  // Invalidate every interned handle: their stamped generation no longer
  // matches, so recording through them becomes a no-op instead of a
  // dangling dereference into the freed map nodes.
  ++generation_;
}

}  // namespace softqos::sim
