#include "sim/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace softqos::sim {

void Summary::add(double x) {
  ++n_;
  sum_ += x;
  const double d = x - mean_;
  mean_ += d / static_cast<double>(n_);
  m2_ += d * (x - mean_);
  if (n_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
}

double Summary::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double Summary::stddev() const { return std::sqrt(variance()); }

const Summary& TimeSeries::summary() const {
  if (dirty_) {
    summary_ = Summary();
    for (const auto& [t, v] : samples_) {
      (void)t;
      summary_.add(v);
    }
    dirty_ = false;
  }
  return summary_;
}

Summary TimeSeries::summaryFrom(SimTime from) const {
  Summary s;
  for (const auto& [t, v] : samples_) {
    if (t >= from) s.add(v);
  }
  return s;
}

double TimeSeries::meanInWindow(SimTime from, SimTime to) const {
  Summary s;
  for (const auto& [t, v] : samples_) {
    if (t >= from && t < to) s.add(v);
  }
  return s.mean();
}

void MetricRegistry::count(const std::string& name, std::int64_t delta) {
  counters_[name] += delta;
}

void MetricRegistry::sample(const std::string& name, SimTime t, double value) {
  series_[name].record(t, value);
}

std::int64_t MetricRegistry::counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

const TimeSeries* MetricRegistry::series(const std::string& name) const {
  const auto it = series_.find(name);
  return it == series_.end() ? nullptr : &it->second;
}

void MetricRegistry::clear() {
  counters_.clear();
  series_.clear();
}

}  // namespace softqos::sim
