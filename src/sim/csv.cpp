#include "sim/csv.hpp"

#include <sstream>

namespace softqos::sim {

std::string csvField(const std::string& raw) {
  if (raw.find_first_of(",\"\n") == std::string::npos) return raw;
  std::string out = "\"";
  for (const char c : raw) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

std::string toCsv(const TimeSeries& series, const std::string& name) {
  std::ostringstream out;
  out << "time_s," << csvField(name) << "\n";
  for (const auto& [t, v] : series.samples()) {
    out << toSeconds(t) << "," << v << "\n";
  }
  return out.str();
}

std::string seriesCsv(const MetricRegistry& metrics) {
  std::ostringstream out;
  out << "series,time_s,value\n";
  for (const auto& [name, series] : metrics.allSeries()) {
    for (const auto& [t, v] : series.samples()) {
      out << csvField(name) << "," << toSeconds(t) << "," << v << "\n";
    }
  }
  return out.str();
}

std::string countersCsv(const MetricRegistry& metrics) {
  std::ostringstream out;
  out << "counter,value\n";
  for (const auto& [name, value] : metrics.counters()) {
    out << csvField(name) << "," << value << "\n";
  }
  return out.str();
}

}  // namespace softqos::sim
