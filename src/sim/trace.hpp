// Lightweight component-tagged trace log for simulations.
//
// Tracing is off by default; tests and examples enable it per level. Records
// are retained in memory so tests can assert on emitted events.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <string>

#include "sim/time.hpp"

namespace softqos::sim {

enum class TraceLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// One trace record: when, who, what.
struct TraceRecord {
  SimTime time = 0;
  TraceLevel level = TraceLevel::kInfo;
  std::string component;
  std::string message;
};

/// In-memory trace sink with optional mirroring to an ostream.
class Trace {
 public:
  /// Records at or above `level` are retained; below it they are dropped.
  void setLevel(TraceLevel level) { level_ = level; }
  [[nodiscard]] TraceLevel level() const { return level_; }

  /// True when records at `level` would be retained. Callers guard message
  /// construction with this so disabled tracing costs one branch.
  [[nodiscard]] bool enabled(TraceLevel level) const { return level >= level_; }

  /// Mirror retained records to `os` (pass nullptr to stop mirroring).
  void mirrorTo(std::ostream* os) { mirror_ = os; }

  void log(SimTime t, TraceLevel level, std::string component, std::string message);

  [[nodiscard]] const std::deque<TraceRecord>& records() const { return records_; }

  /// Bound in-memory retention: keep at most `maxRecords` records, dropping
  /// the oldest first (long chaos soaks would otherwise grow without limit).
  /// 0 restores the default unbounded behaviour. Dropped records are counted
  /// but otherwise gone — mirror to an ostream to keep a full log.
  void setMaxRecords(std::size_t maxRecords);
  [[nodiscard]] std::size_t maxRecords() const { return maxRecords_; }

  /// Records discarded by the retention cap (oldest-first).
  [[nodiscard]] std::uint64_t droppedRecords() const { return dropped_; }

  /// Count of retained records whose message contains `needle`.
  [[nodiscard]] std::size_t countContaining(std::string_view needle) const;

  void clear() { records_.clear(); }

 private:
  TraceLevel level_ = TraceLevel::kOff;
  std::ostream* mirror_ = nullptr;
  std::deque<TraceRecord> records_;
  std::size_t maxRecords_ = 0;  // 0 = unbounded
  std::uint64_t dropped_ = 0;
};

/// Short label for a trace level ("DBG", "INF", ...).
std::string_view traceLevelName(TraceLevel level);

}  // namespace softqos::sim
