#include "sim/trace.hpp"

#include <ostream>

namespace softqos::sim {

void Trace::setMaxRecords(std::size_t maxRecords) {
  maxRecords_ = maxRecords;
  while (maxRecords_ != 0 && records_.size() > maxRecords_) {
    records_.pop_front();
    ++dropped_;
  }
}

void Trace::log(SimTime t, TraceLevel level, std::string component,
                std::string message) {
  if (level < level_) return;
  records_.push_back(TraceRecord{t, level, std::move(component), std::move(message)});
  if (maxRecords_ != 0 && records_.size() > maxRecords_) {
    records_.pop_front();
    ++dropped_;
  }
  if (mirror_ != nullptr) {
    const TraceRecord& r = records_.back();
    (*mirror_) << "[" << toSeconds(r.time) << "s] " << traceLevelName(r.level)
               << " " << r.component << ": " << r.message << "\n";
  }
}

std::size_t Trace::countContaining(std::string_view needle) const {
  std::size_t n = 0;
  for (const auto& r : records_) {
    if (r.message.find(needle) != std::string::npos) ++n;
  }
  return n;
}

std::string_view traceLevelName(TraceLevel level) {
  switch (level) {
    case TraceLevel::kDebug: return "DBG";
    case TraceLevel::kInfo: return "INF";
    case TraceLevel::kWarn: return "WRN";
    case TraceLevel::kError: return "ERR";
    case TraceLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace softqos::sim
