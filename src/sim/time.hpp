// Simulated-time representation for the softqos discrete-event kernel.
//
// All simulation components measure time in integer microseconds (SimTime).
// Integer ticks keep event ordering exact and runs bit-reproducible; double
// seconds are available for reporting only.
#pragma once

#include <cstdint>

namespace softqos::sim {

/// Simulated time in microseconds since simulation start.
using SimTime = std::int64_t;

/// Duration in microseconds (same representation as SimTime).
using SimDuration = std::int64_t;

inline constexpr SimDuration kMicrosecond = 1;
inline constexpr SimDuration kMillisecond = 1000;
inline constexpr SimDuration kSecond = 1000 * 1000;

/// Build a duration from microseconds.
constexpr SimDuration usec(std::int64_t n) { return n * kMicrosecond; }
/// Build a duration from milliseconds.
constexpr SimDuration msec(std::int64_t n) { return n * kMillisecond; }
/// Build a duration from whole seconds.
constexpr SimDuration sec(std::int64_t n) { return n * kSecond; }

/// Convert a simulated time/duration to floating-point seconds (reporting only).
constexpr double toSeconds(SimTime t) { return static_cast<double>(t) / kSecond; }

/// Convert a simulated time/duration to floating-point milliseconds (reporting only).
constexpr double toMillis(SimTime t) { return static_cast<double>(t) / kMillisecond; }

/// Convert floating-point seconds to the nearest tick. Used when deriving
/// durations from rates (e.g. bytes / bandwidth); callers must not feed NaN.
constexpr SimDuration fromSeconds(double s) {
  return static_cast<SimDuration>(s * static_cast<double>(kSecond) + 0.5);
}

}  // namespace softqos::sim
