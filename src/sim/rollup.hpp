// Streaming telemetry rollups over a MetricRegistry.
//
// A RollupWindow periodically snapshots a registry and cuts the counters and
// histograms it tracks into fixed-width time buckets: each tick produces one
// Window holding the counter *deltas* and histogram *delta slices* (via
// Histogram::deltaSince) accumulated since the previous tick, retained in a
// bounded ring. The metric hot path is untouched — recording still goes
// through interned handles — so arming a rollup adds no per-sample cost;
// the snapshot work happens only on the (cold, periodic) tick.
//
// TelemetrySnapshot is the wire form of one window: the QoS Host Manager
// serializes its latest window and publishes it to the Domain Manager over
// the management RPC endpoint, where a TelemetryAggregator merges per-host
// histograms into domain-wide distributions. Only simulation-deterministic
// metrics may cross the wire: the payload's byte length feeds the simulated
// transmission time, so a wall-clock-valued histogram in a snapshot would
// break same-seed replay (wall-clock profiles stay in the local rollup).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/metrics.hpp"
#include "sim/simulation.hpp"
#include "sim/time.hpp"

namespace softqos::sim {

/// Compact text codec for Histogram:
/// "count,sum,min,max[,idx:cnt...][,x<idx>:<trace>:<when>:<value>...]" with
/// only non-empty buckets listed and one optional exemplar per bucket
/// trailing them. Round-trips exactly (doubles as %.17g); exemplar-free
/// histograms encode byte-identically to the pre-exemplar codec.
[[nodiscard]] std::string encodeHistogram(const Histogram& h);

/// Inverse of encodeHistogram; malformed text yields nullopt.
[[nodiscard]] std::optional<Histogram> decodeHistogram(std::string_view text);

struct RollupConfig {
  /// Width of one time bucket (informational; the owner drives tick()).
  SimDuration window = sec(1);
  /// Retained windows; the oldest is dropped past this. 0 is treated as 1.
  std::size_t maxWindows = 64;
};

/// Windowed rollup over one MetricRegistry. The owner registers the metric
/// names to track, then calls tick() periodically (typically from one
/// Simulation::every event it also uses for publishing); each tick appends
/// one Window of deltas. Tracking interns the metric in the registry, so
/// records through handles minted before or after tracking both land in the
/// rolled-up instrument.
class RollupWindow {
 public:
  /// One fixed-width time bucket: deltas accumulated in [start, end).
  /// Metric order follows registration order (deterministic).
  struct Window {
    SimTime start = 0;
    SimTime end = 0;
    std::vector<std::pair<std::string, std::int64_t>> counters;
    std::vector<std::pair<std::string, Histogram>> histograms;

    /// Lookup by name; nullptr / nullopt when the metric is not tracked.
    [[nodiscard]] const Histogram* histogram(std::string_view name) const;
    [[nodiscard]] std::optional<std::int64_t> counter(
        std::string_view name) const;
  };

  RollupWindow(Simulation& simulation, MetricRegistry& registry,
               RollupConfig config = {});

  RollupWindow(const RollupWindow&) = delete;
  RollupWindow& operator=(const RollupWindow&) = delete;

  /// Track a counter / histogram by registry name (interned on first use).
  /// Metrics registered after ticks began join with an empty baseline.
  void trackCounter(const std::string& name);
  void trackHistogram(const std::string& name);

  /// Cut one window covering [last tick, now) and append it to the ring.
  void tick();

  [[nodiscard]] const std::deque<Window>& windows() const { return windows_; }
  [[nodiscard]] const Window* latest() const {
    return windows_.empty() ? nullptr : &windows_.back();
  }
  [[nodiscard]] std::uint64_t ticks() const { return ticks_; }
  [[nodiscard]] const RollupConfig& config() const { return config_; }

  /// Fold the named histogram's slices from every retained window whose end
  /// lies in (from, now] into one distribution (from = 0: all retained).
  [[nodiscard]] Histogram mergedHistogram(std::string_view name,
                                          SimTime from = 0) const;

  /// Sum of the named counter's deltas over retained windows ending after
  /// `from` (from = 0: all retained).
  [[nodiscard]] std::int64_t counterSum(std::string_view name,
                                        SimTime from = 0) const;

 private:
  struct TrackedCounter {
    std::string name;
    std::int64_t last = 0;
  };
  struct TrackedHistogram {
    std::string name;
    Histogram last;  // snapshot at the previous tick
  };

  Simulation& sim_;
  MetricRegistry& registry_;
  RollupConfig config_;
  std::vector<TrackedCounter> counters_;
  std::vector<TrackedHistogram> histograms_;
  std::deque<Window> windows_;
  SimTime lastTick_ = 0;
  std::uint64_t ticks_ = 0;
};

/// Wire form of one rollup window, published host manager -> domain manager
/// over the "telemetry" RPC. Names and the source must not contain '\n',
/// ',' or ';' (they are plain metric identifiers); serialize() rejects
/// nothing, parse() rejects malformed frames with nullopt.
struct TelemetrySnapshot {
  std::string source;  // publishing host name
  SimTime windowStart = 0;
  SimTime windowEnd = 0;
  std::vector<std::pair<std::string, std::int64_t>> counters;
  std::vector<std::pair<std::string, Histogram>> histograms;

  /// Build the wire form of `window` as published by `source`.
  static TelemetrySnapshot fromWindow(std::string source,
                                      const RollupWindow::Window& window);

  [[nodiscard]] std::string serialize() const;
  [[nodiscard]] static std::optional<TelemetrySnapshot> parse(
      std::string_view text);
};

/// Domain-side aggregation: merges per-host snapshots into domain-wide
/// distributions (histograms fold bucket-wise, counters sum) and retains the
/// latest snapshot per source for per-host drill-down.
class TelemetryAggregator {
 public:
  void ingest(const TelemetrySnapshot& snapshot);

  /// Cut one upward rollup: everything ingested since the previous cut, as
  /// counter deltas and histogram delta slices (metrics with no new samples
  /// are omitted). A mid-tier domain manager publishes this to its parent,
  /// so a tree of aggregators carries each child sample upward exactly once
  /// per tier — histogram merging is associative and bucket-wise, so the
  /// root's merged view is identical whether hosts report directly or
  /// through any arrangement of intermediate tiers.
  [[nodiscard]] TelemetrySnapshot cutDelta(std::string source,
                                           SimTime windowStart,
                                           SimTime windowEnd);

  [[nodiscard]] const std::map<std::string, Histogram>& mergedHistograms()
      const {
    return merged_;
  }
  [[nodiscard]] const std::map<std::string, std::int64_t>& counterTotals()
      const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, TelemetrySnapshot>& latestBySource()
      const {
    return latest_;
  }
  [[nodiscard]] std::uint64_t snapshotsIngested() const { return ingested_; }
  [[nodiscard]] std::size_t sourcesSeen() const { return latest_.size(); }

 private:
  std::map<std::string, Histogram> merged_;
  std::map<std::string, std::int64_t> counters_;
  std::map<std::string, TelemetrySnapshot> latest_;
  // Baselines at the previous cutDelta (empty until the first cut).
  std::map<std::string, Histogram> cutHistograms_;
  std::map<std::string, std::int64_t> cutCounters_;
  std::uint64_t ingested_ = 0;
};

}  // namespace softqos::sim
