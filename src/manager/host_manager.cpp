#include "manager/host_manager.hpp"

#include <algorithm>
#include <sstream>

#include "rules/parser.hpp"

namespace softqos::manager {

using rules::Value;

QoSHostManager::QoSHostManager(sim::Simulation& simulation, osim::Host& host,
                               net::Network* network, HostManagerConfig config)
    : sim_(simulation),
      host_(host),
      traceName_("qoshm:" + host.name()),
      config_(std::move(config)),
      engine_("qoshm:" + host.name()),
      cpuManager_(host),
      memoryManager_(host),
      ruleFireNanos_(
          simulation.localMetrics().histogramHandle("rules.fire_wall_ns")) {
  registerEngineFunctions();
  installFireHooks();
  if (config_.partitionByApplication) engine_.setPartitionSlot("pid");
  if (config_.loadDefaultRules) loadDefaultRules();

  // Coordinators reach the manager through the host message queue.
  installQueueReceiver();

  if (network != nullptr) {
    rpc_ = std::make_unique<net::RpcEndpoint>(*network, host_, config_.rpcPort);
    setupRpcHandlers();
  }

  if (config_.factTtl > 0) {
    // Sweep at half the TTL so a fact lives at most 1.5x the bound.
    const sim::SimDuration sweep = std::max<sim::SimDuration>(1, config_.factTtl / 2);
    sim_.every(sweep, [this] { sweepStaleFacts(); });
  }

  setupTelemetry();
}

void QoSHostManager::setupTelemetry() {
  if (config_.telemetryInterval <= 0) return;
  telemetry_ = std::make_unique<Telemetry>();
  Telemetry& t = *telemetry_;

  sim::RollupConfig rollupCfg;
  rollupCfg.window = config_.telemetryInterval;
  rollupCfg.maxWindows = std::max<std::size_t>(1, config_.telemetryMaxWindows);
  t.rollup = std::make_unique<sim::RollupWindow>(sim_, t.registry, rollupCfg);

  t.reports = t.registry.counterHandle("hm.reports");
  t.violations = t.registry.counterHandle("hm.violations");
  t.escalations = t.registry.counterHandle("hm.escalations");
  t.rpcRetries = t.registry.counterHandle("rpc.retries");
  t.rpcTimeouts = t.registry.counterHandle("rpc.timeouts");
  t.reactionUs = t.registry.histogramHandle("qos.reaction_latency_us");
  t.violationAge = t.registry.histogramHandle("hm.violation_age_us");
  t.factDepth = t.registry.histogramHandle("hm.fact_depth");
  t.ruleFireNs = t.registry.histogramHandle("rules.fire_wall_ns");
  for (const char* name : {"hm.reports", "hm.violations", "hm.escalations",
                           "rpc.retries", "rpc.timeouts"}) {
    t.rollup->trackCounter(name);
  }
  for (const char* name : {"qos.reaction_latency_us", "hm.violation_age_us",
                           "hm.fact_depth", "rules.fire_wall_ns"}) {
    t.rollup->trackHistogram(name);
  }

  for (const obs::SloObjective& objective : config_.slos) {
    t.slo.addObjective(objective);
  }
  t.slo.setHandlers(
      [this](const obs::SloObjective& o, const obs::SloStatus& s) {
        onSloBreach(o, s);
      },
      [this](const obs::SloObjective& o, const obs::SloStatus&) {
        onSloRecover(o);
      });

  sim_.every(config_.telemetryInterval, [this] { telemetryTick(); });
}

void QoSHostManager::telemetryTick() {
  Telemetry& t = *telemetry_;
  if (crashed_) {
    // The dead daemon samples nothing and publishes nothing, but the window
    // grid keeps ticking so the outage shows up as empty buckets (and the
    // post-restart deltas don't lump the downtime into one giant window).
    t.rollup->tick();
    return;
  }

  const sim::SimTime now = sim_.now();
  t.factDepth.record(static_cast<double>(engine_.facts().size()));
  // Open violation episodes burn reaction-latency budget while still live:
  // each tick samples the age of every in-flight violation, so a stuck
  // outage breaches the SLO before it ever resolves.
  for (const auto& [pid, since] : t.violationSince) {
    t.violationAge.record(static_cast<double>(now - since));
  }
  if (rpc_ != nullptr) {
    t.rpcRetries.add(static_cast<std::int64_t>(rpc_->retries() - t.lastRetries));
    t.rpcTimeouts.add(
        static_cast<std::int64_t>(rpc_->timeouts() - t.lastTimeouts));
    t.lastRetries = rpc_->retries();
    t.lastTimeouts = rpc_->timeouts();
  }
  t.escalations.add(
      static_cast<std::int64_t>(escalations_ - t.lastEscalations));
  t.lastEscalations = escalations_;

  t.rollup->tick();
  t.slo.evaluate(*t.rollup, now);

  if (rpc_ != nullptr && !config_.domainManagerHost.empty()) {
    const sim::RollupWindow::Window* window = t.rollup->latest();
    if (window != nullptr) {
      sim::TelemetrySnapshot snapshot =
          sim::TelemetrySnapshot::fromWindow(host_.name(), *window);
      // Wall-clock histograms stay local: the snapshot's byte length feeds
      // the simulated transmission time, so publishing host-machine timings
      // would break same-seed replay.
      std::erase_if(snapshot.histograms, [](const auto& entry) {
        return entry.first == "rules.fire_wall_ns";
      });
      rpc_->notify(config_.domainManagerHost, config_.domainManagerPort,
                   "telemetry", snapshot.serialize());
      ++t.publishes;
    }
  }
}

void QoSHostManager::onSloBreach(const obs::SloObjective& objective,
                                 const obs::SloStatus& status) {
  Telemetry& t = *telemetry_;
  ++t.breachEdges;
  sim_.warn(traceName_, [&] {
    std::ostringstream out;
    out << "SLO breach: " << objective.name << " short-burn "
        << status.shortBurn << " long-burn " << status.longBurn;
    return out.str();
  });
  // The management plane's own health enters working memory on the same
  // terms as application state, so ordinary rules can react to it.
  rules::SlotMap slots;
  slots.emplace("objective", Value::symbol(objective.name));
  slots.emplace("metric", Value::symbol(objective.metric));
  slots.emplace("burn", Value::real(status.shortBurn));
  t.breachFacts[objective.name] =
      engine_.facts().assertFact("slo-breach", std::move(slots));
  engine_.run();
}

void QoSHostManager::onSloRecover(const obs::SloObjective& objective) {
  Telemetry& t = *telemetry_;
  sim_.info(traceName_, [&] { return "SLO recovered: " + objective.name; });
  const auto it = t.breachFacts.find(objective.name);
  if (it == t.breachFacts.end()) return;
  engine_.facts().retract(it->second);
  t.breachFacts.erase(it);
  engine_.run();  // negated slo-breach patterns may newly activate
}

const sim::RollupWindow* QoSHostManager::rollup() const {
  return telemetry_ ? telemetry_->rollup.get() : nullptr;
}

const obs::SloTracker* QoSHostManager::sloTracker() const {
  return telemetry_ ? &telemetry_->slo : nullptr;
}

std::uint64_t QoSHostManager::telemetryPublishes() const {
  return telemetry_ ? telemetry_->publishes : 0;
}

std::uint64_t QoSHostManager::sloBreachesSeen() const {
  return telemetry_ ? telemetry_->breachEdges : 0;
}

void QoSHostManager::installQueueReceiver() {
  host_.msgQueue(config_.msgQueueKey)
      .setReceiver([this](const osim::MessageQueue::Datagram& d) {
        const auto report = instrument::ViolationReport::parse(d.payload);
        if (report.has_value()) handleReport(*report);
      });
}

bool QoSHostManager::crash() {
  if (crashed_) return false;
  crashed_ = true;
  ++daemonCrashes_;
  sim_.warn(traceName_, "manager daemon crashed");
  if (rpc_ != nullptr) rpc_->setEnabled(false);
  // No receiver: reports accumulate in the kernel queue (and overflow once
  // its depth is exceeded — that is what the coordinator's local buffer is
  // for). The daemon's in-memory state is gone.
  host_.msgQueue(config_.msgQueueKey).setReceiver(nullptr);
  engine_.facts().clear();
  lastReport_.clear();
  lastEscalationAt_.clear();
  lastReportAt_.clear();
  lastRenegotiationAt_.clear();
  if (telemetry_) {
    // The crash wiped working memory, slo-breach facts included; episode
    // tracking restarts from scratch when the daemon comes back.
    telemetry_->violationSince.clear();
    telemetry_->breachFacts.clear();
  }
  return true;
}

bool QoSHostManager::restartDaemon() {
  if (!crashed_) return false;
  crashed_ = false;
  sim_.info(traceName_, "manager daemon restarted");
  if (rpc_ != nullptr) rpc_->setEnabled(true);
  installQueueReceiver();  // drains the backlog that piled up while down
  if (telemetry_) {
    // Objectives still in breach re-enter the rebuilt working memory: the
    // crash retracted their facts but did not fix whatever was burning.
    for (const obs::SloTracker::Entry& entry : telemetry_->slo.entries()) {
      if (!entry.status.breached) continue;
      rules::SlotMap slots;
      slots.emplace("objective", Value::symbol(entry.objective.name));
      slots.emplace("metric", Value::symbol(entry.objective.metric));
      slots.emplace("burn", Value::real(entry.status.shortBurn));
      telemetry_->breachFacts[entry.objective.name] =
          engine_.facts().assertFact("slo-breach", std::move(slots));
    }
  }
  return true;
}

void QoSHostManager::sweepStaleFacts() {
  const sim::SimTime now = sim_.now();
  std::vector<std::uint32_t> stale;
  for (const auto& [pid, at] : lastReportAt_) {
    if (now - at >= config_.factTtl) stale.push_back(pid);
  }
  if (stale.empty()) return;
  for (const std::uint32_t pid : stale) {
    retractSessionFacts(pid);
    lastReportAt_.erase(pid);
    lastReport_.erase(pid);
    // A silent pid's open episode ends without a recovery sample: the
    // coordinator vanished, so there is no detect->recover latency to book.
    if (telemetry_) telemetry_->violationSince.erase(pid);
    ++staleExpiries_;
    sim_.info(traceName_, [&] {
      return "expired stale session facts for silent pid " + std::to_string(pid);
    });
  }
  engine_.run();  // negated patterns may newly activate
}

std::vector<std::string> QoSHostManager::loadRuleText(const std::string& text) {
  return rules::loadRules(engine_, text);
}

void QoSHostManager::loadDefaultRules() {
  loadRuleText(defaultHostRules(config_.thresholds));
}

void QoSHostManager::registerEngineFunctions() {
  engine_.registerFunction("boost-cpu", [this](const std::vector<Value>& args) {
    if (args.size() != 2) return;
    const auto pid = static_cast<osim::Pid>(args[0].asInt());
    const int delta = static_cast<int>(args[1].asInt());
    // Escalation path: when the TS priority knob is already saturated and the
    // policy is still violated, move to real-time cycle allocation.
    if (cpuManager_.tsSaturated(pid)) {
      if (cpuManager_.rtShare(pid) == 0 && cpuManager_.grantRtShare(pid, 85)) {
        ++rtGrants_;
        markActuation("grant-rt");
        sim_.info(traceName_, [&] {
          return "TS saturated; granting RT share to pid " + std::to_string(pid);
        });
      }
      return;
    }
    if (cpuManager_.adjustTsPriority(pid, delta)) {
      ++boosts_;
      markActuation("boost-cpu");
      sim_.debug(traceName_, [&] {
        return "boost pid " + std::to_string(pid) + " by " +
               std::to_string(delta);
      });
    }
  });

  engine_.registerFunction("decay-cpu", [this](const std::vector<Value>& args) {
    if (args.size() != 2) return;
    const auto pid = static_cast<osim::Pid>(args[0].asInt());
    const int delta = static_cast<int>(args[1].asInt());
    // Unwind RT grants before eroding TS priority.
    if (cpuManager_.rtShare(pid) > 0) {
      cpuManager_.grantRtShare(pid, 0);
      ++decays_;
      markActuation("revoke-rt");
      return;
    }
    if (cpuManager_.adjustTsPriority(pid, -delta)) {
      ++decays_;
      markActuation("decay-cpu");
    }
  });

  engine_.registerFunction("grow-memory", [this](const std::vector<Value>& args) {
    if (args.size() != 2) return;
    const auto pid = static_cast<osim::Pid>(args[0].asInt());
    if (memoryManager_.growResidentCap(pid, args[1].asInt())) {
      ++memGrowths_;
      markActuation("grow-memory");
    }
  });

  engine_.registerFunction("notify-domain-manager",
                           [this](const std::vector<Value>& args) {
                             if (args.size() != 1) return;
                             escalate(static_cast<std::uint32_t>(args[0].asInt()));
                           });

  // Overload handling (Section 10 iii): when resources alone cannot satisfy
  // the policy, ask the application to adapt its behaviour via an actuator.
  engine_.registerFunction("request-adaptation",
                           [this](const std::vector<Value>& args) {
    if (args.size() < 2) return;
    instrument::ControlCommand cmd;
    cmd.kind = instrument::ControlCommand::Kind::kAdapt;
    cmd.target = args[1].asString();
    for (std::size_t i = 2; i < args.size(); ++i) {
      cmd.args.push_back(args[i].toString());
    }
    markActuation("adapt:" + cmd.target);
    sendControl(static_cast<osim::Pid>(args[0].asInt()), cmd);
  });

  // QoS contract plane: rules ask the Policy Agent to renegotiate a
  // session's tier ("down" on sustained violation, "up" on recovery).
  engine_.registerFunction("renegotiate-contract",
                           [this](const std::vector<Value>& args) {
    if (args.size() != 2) return;
    const auto pid = static_cast<std::uint32_t>(args[0].asInt());
    const std::string dir = args[1].asString();
    if (dir != "down" && dir != "up") return;
    requestRenegotiation(pid, dir == "down");
  });

  engine_.registerFunction("clear-state", [this](const std::vector<Value>& args) {
    if (args.size() != 1) return;
    (void)args;
    // Placeholder for per-session bookkeeping resets; the knobs themselves
    // persist (the found allocation is the point of the search strategy).
  });

  engine_.registerFunction("log", [this](const std::vector<Value>& args) {
    sim_.info(traceName_, [&] {
      std::ostringstream out;
      for (const Value& v : args) out << v.toString() << " ";
      return out.str();
    });
  });
}

void QoSHostManager::installFireHooks() {
  // Per-rule spans with matched-fact attribution, plus a wall-clock cost
  // histogram per firing. Rule firings consume no simulated time, so the
  // spans are instants on the sim clock carrying host-cost annotations.
  engine_.setFireHooks(
      [this](const rules::Rule& rule,
             const std::vector<rules::FactId>& matched) -> bool {
        sim::SpanObserver* o = sim_.observer();
        // Wall-clock the firing when anyone will consume it: a span
        // observer, or the self-telemetry rollup's rule-cost histogram.
        if (o == nullptr) return telemetry_ != nullptr;
        if (activeCtx_.valid()) {
          currentRuleSpan_ =
              o->beginSpan(sim_.now(), activeCtx_, "rule:" + rule.name,
                           traceName_);
          std::string facts;
          for (const rules::FactId id : matched) {
            if (!facts.empty()) facts += ",";
            facts += id == rules::kNoFact ? "-" : std::to_string(id);
          }
          o->annotate(currentRuleSpan_, "facts", facts);
        }
        return true;
      },
      [this](const rules::Rule& /*rule*/,
             const std::vector<rules::FactId>& /*matched*/,
             std::uint64_t wallNanos) {
        ruleFireNanos_.record(static_cast<double>(wallNanos));
        if (telemetry_) {
          telemetry_->ruleFireNs.record(static_cast<double>(wallNanos));
        }
        if (currentRuleSpan_.valid()) {
          if (sim::SpanObserver* o = sim_.observer()) {
            o->annotate(currentRuleSpan_, "wall_ns",
                        std::to_string(wallNanos));
            o->endSpan(sim_.now(), currentRuleSpan_);
          }
          currentRuleSpan_ = sim::TraceContext{};
        }
      });
}

void QoSHostManager::markActuation(std::string_view what) {
  if (!activeCtx_.valid()) return;
  if (sim::SpanObserver* o = sim_.observer()) {
    o->instant(sim_.now(), activeCtx_, "actuate:" + std::string(what),
               traceName_);
  }
}

void QoSHostManager::setupRpcHandlers() {
  // Domain-manager liveness probe (heartbeat protocol). A crashed daemon or
  // a dead host never reaches this handler — the probe times out instead.
  rpc_->setHandler("hm-ping", [this](const std::string&,
                                     net::RpcEndpoint::Responder respond) {
    respond("PONG|" + host_.name());
  });

  // Domain-manager query: CPU load, process liveness, memory slowdown.
  rpc_->setHandler("host-stats", [this](const std::string& body,
                                        net::RpcEndpoint::Responder respond) {
    osim::Pid pid = 0;
    const auto eq = body.find("pid=");
    if (eq != std::string::npos) {
      pid = static_cast<osim::Pid>(std::strtoul(body.c_str() + eq + 4, nullptr, 10));
    }
    const osim::Process* p = host_.find(pid);
    const bool alive = p != nullptr && !p->terminated();
    std::ostringstream out;
    out << "load=" << host_.loadAverage() << ";alive=" << (alive ? 1 : 0)
        << ";slowdown=" << memoryManager_.slowdownPercent(pid)
        << ";freepages=" << host_.memory().freePages();
    respond(out.str());
  });

  // Domain-manager corrective action: raise the server process priority.
  rpc_->setHandler("boost", [this](const std::string& body,
                                   net::RpcEndpoint::Responder respond) {
    osim::Pid pid = 0;
    int delta = 0;
    std::sscanf(body.c_str(), "pid=%u;delta=%d", &pid, &delta);
    const bool ok = cpuManager_.adjustTsPriority(pid, delta);
    if (ok) ++boosts_;
    respond(ok ? "OK" : "ERR:no-such-pid");
  });

  // Domain-manager corrective action: restart a failed process.
  rpc_->setHandler("restart", [this](const std::string& body,
                                     net::RpcEndpoint::Responder respond) {
    osim::Pid pid = 0;
    std::sscanf(body.c_str(), "pid=%u", &pid);
    if (!restartHandler_) {
      respond("ERR:no-restart-handler");
      return;
    }
    const osim::Pid newPid = restartHandler_(pid);
    if (newPid != 0) {
      ++restarts_;
      respond("OK:newpid=" + std::to_string(newPid));
    } else {
      respond("ERR:restart-failed");
    }
  });

  // Dynamic rule distribution over the network (Section 9).
  rpc_->setHandler("set-rules", [this](const std::string& body,
                                       net::RpcEndpoint::Responder respond) {
    try {
      const auto names = loadRuleText(body);
      ++rulePushes_;
      respond("OK:" + std::to_string(names.size()));
    } catch (const rules::RuleParseError& e) {
      respond(std::string("ERR:") + e.what());
    }
  });

  // Rule removal by name.
  rpc_->setHandler("remove-rule", [this](const std::string& body,
                                         net::RpcEndpoint::Responder respond) {
    respond(engine_.removeRule(body) ? "OK" : "ERR:no-such-rule");
  });

  // Contract-plane events from the Policy Agent (one-way notifications).
  rpc_->setHandler("contract-event", [this](const std::string& body,
                                            net::RpcEndpoint::Responder respond) {
    respond(handleContractEvent(body) ? "OK" : "ERR:bad-event");
  });
}

bool QoSHostManager::handleContractEvent(const std::string& body) {
  if (crashed_) return false;
  std::string kind, contract, detail;
  std::uint32_t pid = 0;
  for (const std::string& part : net::splitString(body, ';', 4)) {
    const auto eq = part.find('=');
    if (eq == std::string::npos) continue;
    const std::string key = part.substr(0, eq);
    const std::string value = part.substr(eq + 1);
    if (key == "kind") kind = value;
    else if (key == "pid") pid = static_cast<std::uint32_t>(
        std::strtoul(value.c_str(), nullptr, 10));
    else if (key == "contract") contract = value;
    else if (key == "detail") detail = value;
  }
  if (kind.empty()) return false;
  ++contractEvents_;
  sim_.info(traceName_, [&] {
    return "contract event " + kind + " pid " + std::to_string(pid) + " (" +
           contract + "): " + detail;
  });

  const Value pidValue = Value::integer(pid);
  const Value contractValue = Value::symbol(contract.empty() ? "none" : contract);
  if (kind == "degraded") {
    // Working memory holds one tier fact per pid.
    retractContractFacts("contract-degraded", "pid", pidValue);
    rules::SlotMap slots;
    slots.emplace("pid", pidValue);
    slots.emplace("contract", contractValue);
    engine_.facts().assertFact("contract-degraded", std::move(slots));
  } else if (kind == "restored") {
    retractContractFacts("contract-degraded", "pid", pidValue);
  } else if (kind == "liveliness-lost") {
    rules::SlotMap slots;
    slots.emplace("pid", pidValue);
    slots.emplace("contract", contractValue);
    engine_.facts().assertFact("liveliness-lost", std::move(slots));
  } else if (kind == "owner-changed") {
    // One owner fact per contract; pid 0 (no owner left) just retracts.
    retractContractFacts("contract-owner", "contract", contractValue);
    if (pid != 0) {
      rules::SlotMap slots;
      slots.emplace("contract", contractValue);
      slots.emplace("pid", pidValue);
      engine_.facts().assertFact("contract-owner", std::move(slots));
    }
  } else if (kind == "rejected") {
    // Rejections shed load before a session ever exists: nothing to track
    // in working memory, the count + log line is the record.
  } else {
    return false;
  }
  engine_.run();
  return true;
}

void QoSHostManager::retractContractFacts(const char* tmpl, const char* slot,
                                          const Value& value) {
  std::vector<rules::FactId> toRetract;
  engine_.facts().forEach(tmpl, [&](const rules::Fact& f) {
    const Value* v = f.slot(slot);
    if (v != nullptr && *v == value) toRetract.push_back(f.id);
    return true;
  });
  for (const rules::FactId id : toRetract) engine_.facts().retract(id);
}

void QoSHostManager::requestRenegotiation(std::uint32_t pid, bool down) {
  ++renegotiationsRequested_;
  if (rpc_ == nullptr || config_.contractAgentHost.empty()) return;
  // Repeat-notifications re-fire the rule twice a second while the breach
  // persists; the agent-side recompile is expensive, so throttle per pid.
  const auto lastIt = lastRenegotiationAt_.find(pid);
  if (lastIt != lastRenegotiationAt_.end() &&
      sim_.now() - lastIt->second < renegotiationThrottle_) {
    return;
  }
  lastRenegotiationAt_[pid] = sim_.now();
  markActuation(down ? "renegotiate-down" : "renegotiate-up");
  net::RpcEndpoint::CallOptions options;
  options.timeout = config_.escalationTimeout;
  options.maxAttempts = config_.escalationMaxAttempts;
  options.context = activeCtx_;
  rpc_->call(config_.contractAgentHost, config_.contractAgentPort,
             "renegotiate",
             "pid=" + std::to_string(pid) + ";dir=" + (down ? "down" : "up"),
             [this](bool ok, const std::string&) {
               if (!ok) {
                 sim_.warn(traceName_, "renegotiation RPC timed out");
               }
             },
             options);
}

void QoSHostManager::retractSessionFacts(std::uint32_t pid) {
  const Value pidValue = Value::integer(pid);
  std::vector<rules::FactId> toRetract;
  for (const char* tmpl :
       {"violation", "cleared", "metric", "proc-stat", "alloc-state"}) {
    engine_.facts().forEach(tmpl, [&](const rules::Fact& f) {
      const Value* v = f.slot("pid");
      if (v != nullptr && *v == pidValue) toRetract.push_back(f.id);
      return true;
    });
    for (const rules::FactId id : toRetract) engine_.facts().retract(id);
    toRetract.clear();
  }
}

void QoSHostManager::handleReport(const instrument::ViolationReport& report) {
  if (crashed_) return;  // direct calls while the daemon is down go nowhere
  ++reports_;
  lastReport_[report.pid] = report;
  lastReportAt_[report.pid] = sim_.now();

  if (telemetry_) {
    Telemetry& t = *telemetry_;
    t.reports.add();
    if (report.violated) {
      // First violated report opens the episode; repeats extend it.
      if (t.violationSince.emplace(report.pid, sim_.now()).second) {
        t.violations.add();
      }
    } else {
      const auto open = t.violationSince.find(report.pid);
      if (open != t.violationSince.end()) {
        // Episode closed: detect -> recover latency, in microseconds. The
        // report's trace id rides along as the bucket's exemplar, so a
        // domain-level p99 bucket links back to a concrete retained trace.
        t.reactionUs.recordWithExemplar(
            static_cast<double>(sim_.now() - open->second),
            report.context.traceId, sim_.now());
        t.violationSince.erase(open);
      }
    }
  }

  // Causal tracing: diagnosis runs inside a span under the episode context
  // the report carried across the message queue. Everything the rules do
  // synchronously (actuations, escalation RPCs) nests under activeCtx_.
  if (report.context.valid()) {
    if (sim::SpanObserver* o = sim_.observer()) {
      activeCtx_ = o->beginSpan(sim_.now(), report.context,
                                report.violated ? "diagnose" : "decay",
                                traceName_);
      o->annotate(activeCtx_, "pid", std::to_string(report.pid));
      o->annotate(activeCtx_, "policy", report.policyId);
    }
  }

  // Working memory holds only the latest session state per pid.
  retractSessionFacts(report.pid);

  rules::SlotMap head;
  head.emplace("policy", Value::symbol(report.policyId));
  head.emplace("pid", Value::integer(report.pid));
  head.emplace("exec", Value::symbol(report.executable));
  head.emplace("role", Value::symbol(report.userRole.empty() ? "none"
                                                             : report.userRole));
  engine_.facts().assertFact(report.violated ? "violation" : "cleared",
                             std::move(head));

  for (const auto& [name, value] : report.metrics) {
    rules::SlotMap slots;
    slots.emplace("pid", Value::integer(report.pid));
    slots.emplace("name", Value::symbol(name));
    slots.emplace("value", Value::real(value));
    engine_.facts().assertFact("metric", std::move(slots));
  }

  // Host-side observations the rules may need.
  {
    rules::SlotMap slots;
    slots.emplace("pid", Value::integer(report.pid));
    slots.emplace("mem-slowdown",
                  Value::real(memoryManager_.slowdownPercent(report.pid)));
    engine_.facts().assertFact("proc-stat", std::move(slots));
  }
  {
    // Current allocation state: lets rules detect that the resource knobs
    // are exhausted (overload) and switch to application adaptation.
    rules::SlotMap slots;
    slots.emplace("pid", Value::integer(report.pid));
    slots.emplace("upri", Value::integer(cpuManager_.tsPriority(report.pid)));
    slots.emplace("rt", Value::integer(cpuManager_.rtShare(report.pid)));
    engine_.facts().assertFact("alloc-state", std::move(slots));
  }
  {
    // Refresh the host-stat fact in place: a modify publishes a retract +
    // assert delta pair (or nothing when the load is unchanged), instead of
    // the old retract-template + reassert churn that forced the engine to
    // re-derive every host-stat activation per report.
    const Value load = Value::real(host_.loadAverage());
    const rules::Fact* stat = engine_.facts().findWhere(
        "host-stat", {{"name", Value::symbol("cpu_load")}});
    if (stat != nullptr) {
      engine_.facts().modify(stat->id, {{"value", load}});
    } else {
      rules::SlotMap slots;
      slots.emplace("name", Value::symbol("cpu_load"));
      slots.emplace("value", load);
      engine_.facts().assertFact("host-stat", std::move(slots));
    }
  }

  engine_.run();

  if (activeCtx_.valid()) {
    if (sim::SpanObserver* o = sim_.observer()) {
      o->endSpan(sim_.now(), activeCtx_);
    }
    activeCtx_ = sim::TraceContext{};
  }
}

void QoSHostManager::sendControl(osim::Pid pid,
                                 const instrument::ControlCommand& command) {
  ++adaptationsRequested_;
  host_.msgQueue(instrument::controlQueueKey(pid)).send(command.serialize());
}

void QoSHostManager::escalate(std::uint32_t pid) {
  // Repeated notifications for a persisting violation arrive twice a second;
  // the domain-level diagnosis is expensive (cross-host RPC), so throttle.
  const auto lastIt = lastEscalationAt_.find(pid);
  if (lastIt != lastEscalationAt_.end() &&
      sim_.now() - lastIt->second < escalationThrottle_) {
    return;
  }
  lastEscalationAt_[pid] = sim_.now();
  ++escalations_;
  if (rpc_ == nullptr || config_.domainManagerHost.empty()) {
    sim_.warn(traceName_, [&] {
      return "escalation for pid " + std::to_string(pid) +
             " dropped (no domain manager configured)";
    });
    return;
  }
  const auto it = lastReport_.find(pid);
  if (it == lastReport_.end()) return;
  net::RpcEndpoint::CallOptions options;
  options.timeout = config_.escalationTimeout;
  options.maxAttempts = config_.escalationMaxAttempts;
  // Escalation happens inside the diagnosis span (the engine function runs
  // synchronously under handleReport); the RPC layer opens the call span.
  options.context = activeCtx_;
  rpc_->call(config_.domainManagerHost, config_.domainManagerPort, "escalate",
             it->second.serialize(),
             [this](bool ok, const std::string&) {
               if (!ok) {
                 sim_.warn(traceName_, "escalation RPC timed out");
               }
             },
             options);
}

}  // namespace softqos::manager
