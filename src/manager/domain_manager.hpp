// The QoS Domain Manager (Section 5.3): locates the source of problems that
// span hosts. On an escalated alarm it queries the server-side QoS Host
// Manager (CPU load, liveness, memory), samples switch utilization, asserts
// the observations as facts and lets its rule base diagnose: process
// failure, server overload, network congestion, or unknown — then drives the
// corrective action (restart / remote boost). Escalations for hosts outside
// its domain are forwarded to peer domain managers (Section 9).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "instrument/report.hpp"
#include "manager/default_rules.hpp"
#include "net/monitor.hpp"
#include "net/rpc.hpp"
#include "osim/host.hpp"
#include "rules/engine.hpp"
#include "sim/rollup.hpp"
#include "sim/simulation.hpp"

namespace softqos::manager {

struct DomainManagerConfig {
  int rpcPort = 7100;
  int hostManagerPort = 7001;  // where host managers listen in this domain
  DomainRuleThresholds thresholds;
  bool loadDefaultRules = true;
  /// Heartbeat/liveness protocol over the managed Host Managers: every
  /// `heartbeatInterval` the domain manager probes each managed host's
  /// manager daemon ("hm-ping"); `heartbeatMissThreshold` consecutive
  /// unanswered probes on a host that has answered at least once assert a
  /// `host-failure` hypothesis fact for the rule base. 0 disables the
  /// protocol entirely (default: no new events, byte-identical runs).
  sim::SimDuration heartbeatInterval = 0;
  sim::SimDuration heartbeatTimeout = sim::msec(500);
  int heartbeatMissThreshold = 3;
  /// Retry policy for diagnosis/corrective RPCs (host-stats, boost,
  /// restart): attempts = 1 reproduces the old single-shot behaviour.
  int rpcMaxAttempts = 1;
  sim::SimDuration rpcTimeout = sim::sec(2);

  // ---- Domain-of-domains tree (rack -> cluster -> region) ----
  /// Seat of the parent domain manager (empty: this manager is a root, the
  /// two-tier configuration the paper describes). A mid-tier manager
  /// aggregates child telemetry locally and republishes only the merged
  /// delta upward (see aggregationInterval), and routes escalations it
  /// cannot place to its parent instead of flooding peers — so fabric
  /// traffic at the root grows with tier fan-out, not host count.
  std::string parentHost;
  int parentPort = 7100;
  /// Upward telemetry republish period: every interval the manager cuts a
  /// delta rollup of everything its children reported since the last cut
  /// and publishes one "telemetry" frame to the parent. 0 (default): never
  /// republish — root / legacy behaviour, byte-identical runs.
  sim::SimDuration aggregationInterval = 0;
  /// Escalation forwarding budget across the management tree. 1 reproduces
  /// the legacy single-hop peer protocol byte-for-byte (frames stay
  /// "FWD|..."); a depth-d tree needs d-1 hops for a leaf alarm to reach
  /// the root (frames carry the hop count as "FWD<n>|...").
  int maxEscalationHops = 1;
  /// Shard-safe channel utilization sampling: when > 0, a ChannelMonitor
  /// probes each shard's channels on this period and the diagnosis path
  /// reads the monitor's (slightly delayed) view instead of sweeping the
  /// whole fabric inline — the sweep mutates per-channel poll state and is
  /// only legal single-worker. Required for multi-worker runs; 0 (default)
  /// keeps the legacy inline sweep, byte-identical runs.
  sim::SimDuration channelPollInterval = 0;
};

class QoSDomainManager {
 public:
  QoSDomainManager(sim::Simulation& simulation, osim::Host& seat,
                   net::Network& network, std::string name,
                   DomainManagerConfig config = {});

  QoSDomainManager(const QoSDomainManager&) = delete;
  QoSDomainManager& operator=(const QoSDomainManager&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] rules::InferenceEngine& engine() { return engine_; }

  /// Domain membership: the hosts whose host managers this manager drives.
  void addManagedHost(const std::string& hostName);
  [[nodiscard]] bool manages(const std::string& hostName) const;

  /// Peer domain managers (for problems spanning domains).
  void addPeer(const std::string& seatHostName, int port);

  /// Service topology (from configuration management, cf. [14] in the
  /// paper): which host/pid serves a given client executable.
  void registerService(const std::string& clientExecutable,
                       const std::string& serverHost, osim::Pid serverPid);
  void unregisterService(const std::string& clientExecutable);

  std::vector<std::string> loadRuleText(const std::string& text);
  void loadDefaultRules();

  /// Push a host-manager rule set to every managed host (dynamic rule
  /// distribution, Section 9).
  void distributeHostRules(const std::string& ruleText);

  /// Direct entry point (also wired to the "escalate" RPC method).
  /// `forwarded` marks a report that already took one hop (legacy two-tier
  /// protocol); the hop-counted overload serves the management tree.
  void handleEscalation(const instrument::ViolationReport& report,
                        bool forwarded);
  void handleEscalation(const instrument::ViolationReport& report, int hops);

  // ---- Heartbeat / liveness (Section 5-6 fault localization) ----

  /// True while the liveness protocol currently believes the host is dead.
  [[nodiscard]] bool hostMarkedDown(const std::string& hostName) const;

  // ---- Fault injection: manager-daemon crash/restart ----
  bool crash();
  bool restartDaemon();
  [[nodiscard]] bool isCrashed() const { return crashed_; }

  // ---- Statistics ----
  [[nodiscard]] std::uint64_t escalationsReceived() const { return received_; }
  [[nodiscard]] std::uint64_t forwardsSent() const { return forwards_; }
  [[nodiscard]] std::uint64_t serverBoostsSent() const { return serverBoosts_; }
  [[nodiscard]] std::uint64_t restartsRequested() const { return restarts_; }
  [[nodiscard]] std::uint64_t reroutesPerformed() const { return reroutes_; }
  [[nodiscard]] std::uint64_t rerouteRollbacks() const { return rerouteRollbacks_; }
  [[nodiscard]] const std::map<std::string, std::uint64_t>& diagnosisCounts()
      const {
    return diagnoses_;
  }
  [[nodiscard]] const std::string& lastDiagnosis() const { return lastDiagnosis_; }
  [[nodiscard]] std::uint64_t heartbeatsSent() const { return heartbeatsSent_; }
  [[nodiscard]] std::uint64_t heartbeatMisses() const { return heartbeatMisses_; }
  [[nodiscard]] std::uint64_t hostFailuresDetected() const { return hostFailures_; }
  [[nodiscard]] std::uint64_t hostRecoveriesDetected() const {
    return hostRecoveries_;
  }
  /// Dead services restarted by post-recovery revalidation.
  [[nodiscard]] std::uint64_t recoveryRestarts() const { return recoveryRestarts_; }

  // ---- Streaming telemetry (host managers publish over "telemetry") ----
  /// Domain-wide aggregation of per-host rollup windows: histograms merged
  /// bucket-wise across hosts, counters summed, latest snapshot per source.
  /// In a tree, child domain managers publish here too (as "dm:<name>"), so
  /// an upper tier sees one source per child domain, not per host.
  [[nodiscard]] const sim::TelemetryAggregator& telemetry() const {
    return telemetry_;
  }
  /// Delta rollups published to the parent (tree mode only).
  [[nodiscard]] std::uint64_t aggregatePublishes() const {
    return aggregatePublishes_;
  }
  /// Telemetry frames received from children (hosts or child domains).
  [[nodiscard]] std::uint64_t telemetryFramesReceived() const {
    return telemetryFrames_;
  }

 private:
  struct ServiceBinding {
    std::string serverHost;
    osim::Pid serverPid = 0;
  };

  struct HostLiveness {
    int consecutiveMisses = 0;
    bool everAlive = false;   // a host that never answered is "unknown", not dead
    bool down = false;
    bool probePending = false;
    rules::FactId failureFact = rules::kNoFact;
  };

  void registerEngineFunctions();
  void installFireHooks();
  /// Causal tracing: mark a corrective action inside the active
  /// fault-localization span (no-op when untraced).
  void markAction(std::string_view what);
  [[nodiscard]] net::RpcEndpoint::CallOptions rpcOptions() const;
  void armHeartbeat();
  void pingManagedHosts();
  void onHeartbeatReply(const std::string& hostName, bool ok);
  void markHostDown(const std::string& hostName);
  void markHostRecovered(const std::string& hostName);
  void revalidateServicesOn(const std::string& hostName);
  void runDiagnosis(std::uint64_t escalationId,
                    const instrument::ViolationReport& report,
                    const ServiceBinding& binding, bool alive, double load,
                    double slowdown, const sim::TraceContext& locSpan);
  [[nodiscard]] double sampleMaxChannelUtilization();
  void retractEscalationFacts(std::uint64_t escalationId);
  void rerouteAroundCongestion();
  /// Route an escalation one tier up (parent when configured, else peers).
  void forwardEscalation(const instrument::ViolationReport& report, int hops);
  /// Cut and publish the child-telemetry delta rollup to the parent.
  void publishAggregate();

  sim::Simulation& sim_;
  net::Network& network_;
  std::string name_;
  std::string traceName_;  // "qosdm:<name>", cached off the trace hot path
  DomainManagerConfig config_;
  rules::InferenceEngine engine_;
  std::unique_ptr<net::RpcEndpoint> rpc_;
  std::unique_ptr<net::ChannelMonitor> monitor_;  // channelPollInterval > 0
  std::set<std::string> managedHosts_;
  std::vector<std::pair<std::string, int>> peers_;
  std::map<std::string, ServiceBinding> services_;
  std::map<std::string, HostLiveness> liveness_;
  sim::EventId heartbeatEvent_ = sim::kInvalidEvent;
  bool crashed_ = false;

  // Causal tracing: the fault-localization span of the escalation being
  // diagnosed (corrective RPCs nest under it) and the rule firing in
  // flight. Both invalid when observability is off. Heartbeat probes carry
  // no context by design — they are not part of any causal chain.
  sim::TraceContext activeCtx_;
  sim::TraceContext currentRuleSpan_;
  sim::HistogramHandle ruleFireNanos_;

  std::uint64_t nextEscalationId_ = 1;
  std::uint64_t received_ = 0;
  std::uint64_t reroutes_ = 0;
  std::uint64_t rerouteRollbacks_ = 0;
  std::pair<net::NodeId, net::NodeId> hottestChannel_{net::kNoNode,
                                                      net::kNoNode};
  std::string currentClientHost_;  // context of the escalation being diagnosed
  std::string currentServerHost_;
  std::uint64_t forwards_ = 0;
  std::uint64_t serverBoosts_ = 0;
  std::uint64_t restarts_ = 0;
  std::uint64_t heartbeatsSent_ = 0;
  std::uint64_t heartbeatMisses_ = 0;
  std::uint64_t hostFailures_ = 0;
  std::uint64_t hostRecoveries_ = 0;
  std::uint64_t recoveryRestarts_ = 0;
  std::map<std::string, std::uint64_t> diagnoses_;
  std::string lastDiagnosis_;
  sim::TelemetryAggregator telemetry_;
  sim::SimTime lastAggregateCut_ = 0;
  std::uint64_t aggregatePublishes_ = 0;
  std::uint64_t telemetryFrames_ = 0;
};

}  // namespace softqos::manager
