// The QoS Host Manager (Section 5.3): receives violation notifications from
// coordinators over a message queue, asserts them as facts, forward-chains
// over its rule base, and drives the host's resource managers. It answers
// domain-manager queries (CPU load, memory, process liveness) and accepts
// remote corrective actions ("boost", "restart") and rule pushes
// ("set-rules") over RPC.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "instrument/control.hpp"
#include "instrument/report.hpp"
#include "manager/default_rules.hpp"
#include "manager/resource_manager.hpp"
#include "net/rpc.hpp"
#include "obs/slo.hpp"
#include "osim/host.hpp"
#include "rules/engine.hpp"
#include "sim/rollup.hpp"
#include "sim/simulation.hpp"

namespace softqos::manager {

struct HostManagerConfig {
  std::string msgQueueKey = "qos-host-manager";
  int rpcPort = 7001;            // where domain managers reach this manager
  std::string domainManagerHost; // empty: no escalation possible
  int domainManagerPort = 7100;
  HostRuleThresholds thresholds;
  bool loadDefaultRules = true;
  /// Partition the engine's working memory by the "pid" slot so rule joins
  /// for one application never scan another application's facts — the
  /// scaling knob for hosts managing thousands of sessions. Matching results
  /// are byte-identical either way (the engine derives partition scope per
  /// join position); default off to keep the seed configuration untouched.
  bool partitionByApplication = false;
  /// Working-memory staleness bound: session facts (violation / metric /
  /// proc-stat / alloc-state) for a pid whose coordinator has gone silent
  /// for this long are retracted, so a crashed process's last sensor
  /// readings cannot drive adaptation forever. 0 disables expiry (default:
  /// byte-identical to the pre-fault-injection behaviour).
  sim::SimDuration factTtl = 0;
  /// Retry policy for escalation RPCs to the domain manager (attempts = 1
  /// reproduces the old fire-and-forget timeout behaviour).
  int escalationMaxAttempts = 1;
  sim::SimDuration escalationTimeout = sim::sec(2);
  /// Streaming self-telemetry: when > 0 the manager keeps a windowed rollup
  /// of its own behaviour (detect->recover latency, violation-episode rate,
  /// fact-repository depth, RPC retry pressure, rule-firing wall cost) in a
  /// private registry, evaluates its SLOs against it, and publishes each
  /// window to the domain manager over a one-way "telemetry" RPC. 0 (the
  /// default) disables everything: no events, no recording, byte-identical
  /// runs.
  sim::SimDuration telemetryInterval = 0;
  /// Retained rollup windows (must cover the longest SLO window).
  std::size_t telemetryMaxWindows = 64;
  /// Objectives evaluated over the rollup each window. Breaches assert an
  /// `slo-breach` fact into working memory (retracted on recovery), so the
  /// rule base reacts to the manager missing its own objectives.
  std::vector<obs::SloObjective> slos;
  /// QoS contract plane: where the Policy Agent's "renegotiate" RPC lives.
  /// Empty (the default) disables the renegotiation engine function — rules
  /// calling it are counted but dropped, and no contract rules are loaded.
  std::string contractAgentHost;
  int contractAgentPort = 7200;
};

class QoSHostManager {
 public:
  /// `network` may be null for single-host deployments (no RPC endpoint is
  /// created and escalations are counted but dropped).
  QoSHostManager(sim::Simulation& simulation, osim::Host& host,
                 net::Network* network, HostManagerConfig config = {});

  QoSHostManager(const QoSHostManager&) = delete;
  QoSHostManager& operator=(const QoSHostManager&) = delete;

  [[nodiscard]] osim::Host& host() { return host_; }
  [[nodiscard]] rules::InferenceEngine& engine() { return engine_; }
  CpuResourceManager& cpuManager() { return cpuManager_; }
  MemoryResourceManager& memoryManager() { return memoryManager_; }

  /// Dynamic rule distribution: replace/extend the rule base from text.
  std::vector<std::string> loadRuleText(const std::string& text);
  void loadDefaultRules();
  bool removeRule(const std::string& name) { return engine_.removeRule(name); }

  /// Handle one coordinator report (also the message-queue entry point).
  void handleReport(const instrument::ViolationReport& report);

  /// Handle one contract-plane event from the Policy Agent (also the
  /// "contract-event" RPC entry point). `body` is the ContractEvent wire
  /// form "kind=...;pid=...;contract=...;detail=...". Asserts / retracts
  /// the contract facts (contract-degraded, liveliness-lost,
  /// contract-owner) and forward-chains. Returns false on a malformed body.
  bool handleContractEvent(const std::string& body);

  /// Send a control command to a process coordinator over its per-process
  /// control queue (application adaptation, run-time threshold changes).
  void sendControl(osim::Pid pid, const instrument::ControlCommand& command);

  /// Restart hook for process-failure adaptation: given the dead pid,
  /// respawn and return the new pid (0 = could not restart).
  using RestartHandler = std::function<osim::Pid(osim::Pid deadPid)>;
  void setRestartHandler(RestartHandler handler) {
    restartHandler_ = std::move(handler);
  }

  // ---- Fault injection: manager-daemon crash/restart ----

  /// Crash the manager daemon: the RPC endpoint stops answering (heartbeats
  /// included), coordinator reports pile up unread in the kernel message
  /// queue, and the daemon's working memory (facts, per-pid state) is lost.
  /// Returns false if already crashed.
  bool crash();

  /// Restart the daemon: RPC answers again and queued coordinator reports
  /// are drained. Rules survive (they live in the rule base, re-pushed by
  /// the domain manager on demand). Returns false if not crashed.
  bool restartDaemon();

  [[nodiscard]] bool isCrashed() const { return crashed_; }

  // ---- Statistics ----
  [[nodiscard]] std::uint64_t reportsReceived() const { return reports_; }
  [[nodiscard]] std::uint64_t boostsApplied() const { return boosts_; }
  [[nodiscard]] std::uint64_t decaysApplied() const { return decays_; }
  [[nodiscard]] std::uint64_t escalationsSent() const { return escalations_; }
  [[nodiscard]] std::uint64_t rtGrantsIssued() const { return rtGrants_; }
  [[nodiscard]] std::uint64_t memoryGrowths() const { return memGrowths_; }
  [[nodiscard]] std::uint64_t restartsPerformed() const { return restarts_; }
  [[nodiscard]] std::uint64_t rulePushesReceived() const { return rulePushes_; }
  /// Pids whose session facts were expired by the TTL sweep.
  [[nodiscard]] std::uint64_t staleExpiries() const { return staleExpiries_; }
  [[nodiscard]] std::uint64_t daemonCrashes() const { return daemonCrashes_; }
  /// Contract-plane events asserted into working memory.
  [[nodiscard]] std::uint64_t contractEventsSeen() const {
    return contractEvents_;
  }
  /// Tier renegotiations requested from the Policy Agent (rule-driven).
  [[nodiscard]] std::uint64_t renegotiationsRequested() const {
    return renegotiationsRequested_;
  }

  // ---- Streaming self-telemetry (config_.telemetryInterval > 0) ----
  [[nodiscard]] bool telemetryEnabled() const { return telemetry_ != nullptr; }
  /// The manager's private rollup (nullptr when telemetry is off).
  [[nodiscard]] const sim::RollupWindow* rollup() const;
  /// The SLO tracker over the rollup (nullptr when telemetry is off).
  [[nodiscard]] const obs::SloTracker* sloTracker() const;
  /// Windows published to the domain manager over the telemetry RPC.
  [[nodiscard]] std::uint64_t telemetryPublishes() const;
  /// Cumulative SLO breach edges (facts asserted into working memory).
  [[nodiscard]] std::uint64_t sloBreachesSeen() const;

 private:
  void registerEngineFunctions();
  void installFireHooks();
  void setupRpcHandlers();
  void installQueueReceiver();
  void sweepStaleFacts();
  void retractSessionFacts(std::uint32_t pid);
  void retractContractFacts(const char* tmpl, const char* slot,
                            const rules::Value& value);
  void escalate(std::uint32_t pid);
  void requestRenegotiation(std::uint32_t pid, bool down);
  /// Causal tracing: mark an actuator/resource-knob invocation inside the
  /// active diagnosis span (no-op when untraced).
  void markActuation(std::string_view what);
  void setupTelemetry();
  /// One telemetry period: sample gauges, cut a rollup window, evaluate
  /// SLOs, publish the window to the domain manager.
  void telemetryTick();
  void onSloBreach(const obs::SloObjective& objective,
                   const obs::SloStatus& status);
  void onSloRecover(const obs::SloObjective& objective);

  sim::Simulation& sim_;
  osim::Host& host_;
  std::string traceName_;  // "qoshm:<host>", cached off the trace hot path
  HostManagerConfig config_;
  rules::InferenceEngine engine_;
  CpuResourceManager cpuManager_;
  MemoryResourceManager memoryManager_;
  std::unique_ptr<net::RpcEndpoint> rpc_;
  RestartHandler restartHandler_;
  std::map<std::uint32_t, instrument::ViolationReport> lastReport_;
  std::map<std::uint32_t, sim::SimTime> lastEscalationAt_;
  std::map<std::uint32_t, sim::SimTime> lastReportAt_;  // TTL bookkeeping
  std::map<std::uint32_t, sim::SimTime> lastRenegotiationAt_;
  sim::SimDuration escalationThrottle_ = sim::sec(2);
  sim::SimDuration renegotiationThrottle_ = sim::sec(2);
  bool crashed_ = false;

  // Causal tracing: the diagnosis span of the report currently being
  // handled (escalations and actuations nest under it) and the span of the
  // rule firing in flight. Both invalid when observability is off.
  sim::TraceContext activeCtx_;
  sim::TraceContext currentRuleSpan_;
  sim::HistogramHandle ruleFireNanos_;

  /// Self-telemetry state, allocated only when telemetryInterval > 0. The
  /// registry is PRIVATE to this manager and uses host-agnostic metric names
  /// ("qos.reaction_latency_us", not "qos.<host>.reaction..."): attribution
  /// travels in TelemetrySnapshot::source, so the domain manager can merge
  /// same-named histograms from every host into one distribution.
  struct Telemetry {
    sim::MetricRegistry registry;
    std::unique_ptr<sim::RollupWindow> rollup;
    obs::SloTracker slo;
    sim::Counter reports;        // hm.reports
    sim::Counter violations;     // hm.violations (new episodes)
    sim::Counter escalations;    // hm.escalations
    sim::Counter rpcRetries;     // rpc.retries (delta-fed from the endpoint)
    sim::Counter rpcTimeouts;    // rpc.timeouts
    sim::HistogramHandle reactionUs;    // qos.reaction_latency_us (closed)
    sim::HistogramHandle violationAge;  // hm.violation_age_us (open, per tick)
    sim::HistogramHandle factDepth;     // hm.fact_depth (per tick)
    sim::HistogramHandle ruleFireNs;    // rules.fire_wall_ns — LOCAL ONLY:
                                        // wall-clock values must never reach
                                        // a snapshot (payload size feeds the
                                        // simulated transmission time).
    std::map<std::uint32_t, sim::SimTime> violationSince;  // open episodes
    std::map<std::string, rules::FactId> breachFacts;  // objective -> fact
    std::uint64_t lastRetries = 0;   // endpoint counter baselines
    std::uint64_t lastTimeouts = 0;
    std::uint64_t lastEscalations = 0;
    std::uint64_t publishes = 0;
    std::uint64_t breachEdges = 0;
  };
  std::unique_ptr<Telemetry> telemetry_;

  std::uint64_t reports_ = 0;
  std::uint64_t boosts_ = 0;
  std::uint64_t decays_ = 0;
  std::uint64_t escalations_ = 0;
  std::uint64_t rtGrants_ = 0;
  std::uint64_t memGrowths_ = 0;
  std::uint64_t restarts_ = 0;
  std::uint64_t rulePushes_ = 0;
  std::uint64_t adaptationsRequested_ = 0;
  std::uint64_t staleExpiries_ = 0;
  std::uint64_t daemonCrashes_ = 0;
  std::uint64_t contractEvents_ = 0;
  std::uint64_t renegotiationsRequested_ = 0;

 public:
  [[nodiscard]] std::uint64_t adaptationsRequested() const {
    return adaptationsRequested_;
  }
};

}  // namespace softqos::manager
