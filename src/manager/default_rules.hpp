// The default rule sets of Section 5.3, shipped as parseable text so they
// can be replaced at run time (dynamic rule distribution, Section 9).
#pragma once

#include <string>

namespace softqos::manager {

/// Thresholds substituted into the host manager's default rule set.
struct HostRuleThresholds {
  double bufferLowBytes = 4096;   // below: frames are not arriving -> remote
  double fpsSevere = 14.0;        // deficit bands size the CPU boost
  double fpsModerate = 22.0;
  double fpsLow = 26.0;           // policy band lower edge
  double fpsHigh = 30.0;          // policy band upper edge -> over-provisioned
  double jitterHigh = 1.25;
  double memSlowdownHigh = 110.0; // slowdown percent indicating paging
};

/// Host manager rules: boost CPU proportionally to how far the policy is
/// from being satisfied (Section 5.3: "Additional rules are used to
/// determine how much to increase CPU priority based on how close the policy
/// is to being satisfied"); escalate to the domain manager when the
/// communication buffer is empty; decay when expectations are exceeded
/// (Section 2); grow memory when the process is paging.
std::string defaultHostRules(const HostRuleThresholds& t = {});

/// QoS contract-plane rules for the host manager, loaded only when the
/// contract plane is armed (keeping the default rule base byte-identical):
/// downgrade a violating full-tier session to its degraded floors, restore
/// it on recovery, and log liveliness-loss / ownership-failover facts.
std::string contractHostRules(const HostRuleThresholds& t = {});

/// Thresholds substituted into the domain manager's default rule set.
struct DomainRuleThresholds {
  double serverLoadHigh = 2.5;  // CPU load average indicating server overload
  double netUtilHigh = 0.85;    // channel utilization indicating congestion
};

/// Domain manager rules (Section 5.3): on an escalated alarm, ask the
/// server-side host manager for CPU load / liveness; diagnose a dead server
/// process, server overload, or network congestion, and drive the
/// corresponding corrective action.
std::string defaultDomainRules(const DomainRuleThresholds& t = {});

}  // namespace softqos::manager
