#include "manager/resource_manager.hpp"

#include <algorithm>

namespace softqos::manager {

namespace {

osim::Process* liveProcess(osim::Host& host, osim::Pid pid) {
  osim::Process* p = host.find(pid);
  return (p == nullptr || p->terminated()) ? nullptr : p;
}

}  // namespace

bool CpuResourceManager::adjustTsPriority(osim::Pid pid, int delta) {
  osim::Process* p = liveProcess(host(), pid);
  if (p == nullptr) return false;
  p->setTsUserPriority(std::clamp(p->tsUserPriority() + delta, -60, 60));
  countAdjustment();
  return true;
}

bool CpuResourceManager::setTsPriority(osim::Pid pid, int upri) {
  osim::Process* p = liveProcess(host(), pid);
  if (p == nullptr) return false;
  p->setTsUserPriority(std::clamp(upri, -60, 60));
  countAdjustment();
  return true;
}

int CpuResourceManager::tsPriority(osim::Pid pid) const {
  const osim::Process* p = host().find(pid);
  return p == nullptr ? 0 : p->tsUserPriority();
}

bool CpuResourceManager::tsSaturated(osim::Pid pid) const {
  return tsPriority(pid) >= 60;
}

bool CpuResourceManager::grantRtShare(osim::Pid pid, int percent) {
  osim::Process* p = liveProcess(host(), pid);
  if (p == nullptr) return false;
  osim::RtGrant grant;
  grant.sharePercent = std::clamp(percent, 0, 95);
  p->setRtGrant(grant);
  countAdjustment();
  return true;
}

int CpuResourceManager::rtShare(osim::Pid pid) const {
  const osim::Process* p = host().find(pid);
  return p == nullptr ? 0 : p->rtGrant().sharePercent;
}

bool CpuResourceManager::release(osim::Pid pid) {
  osim::Process* p = liveProcess(host(), pid);
  if (p == nullptr) return false;
  p->setTsUserPriority(0);
  p->setRtGrant(osim::RtGrant{});
  countAdjustment();
  return true;
}

bool MemoryResourceManager::setResidentCap(osim::Pid pid, std::int64_t pages) {
  osim::Process* p = liveProcess(host(), pid);
  if (p == nullptr) return false;
  p->setMemoryCapPages(pages);
  countAdjustment();
  return true;
}

std::int64_t MemoryResourceManager::residentCap(osim::Pid pid) const {
  const osim::Process* p = host().find(pid);
  return p == nullptr ? -1 : p->memoryCapPages();
}

bool MemoryResourceManager::growResidentCap(osim::Pid pid, std::int64_t pages) {
  osim::Process* p = liveProcess(host(), pid);
  if (p == nullptr) return false;
  const std::int64_t base =
      p->memoryCapPages() >= 0 ? p->memoryCapPages() : p->residentPages();
  p->setMemoryCapPages(base + pages);
  countAdjustment();
  return true;
}

int MemoryResourceManager::slowdownPercent(osim::Pid pid) const {
  const osim::Process* p = host().find(pid);
  if (p == nullptr) return 100;
  return host().memory().slowdownPercent(*p);
}

}  // namespace softqos::manager
