#include "manager/domain_manager.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "net/nic.hpp"
#include "rules/parser.hpp"

namespace softqos::manager {

using rules::Value;

QoSDomainManager::QoSDomainManager(sim::Simulation& simulation,
                                   osim::Host& seat, net::Network& network,
                                   std::string name, DomainManagerConfig config)
    : sim_(simulation),
      network_(network),
      name_(std::move(name)),
      traceName_("qosdm:" + name_),
      config_(config),
      engine_("qosdm:" + name_),
      ruleFireNanos_(
          simulation.localMetrics().histogramHandle("rules.fire_wall_ns")) {
  registerEngineFunctions();
  installFireHooks();
  if (config_.loadDefaultRules) loadDefaultRules();

  rpc_ = std::make_unique<net::RpcEndpoint>(network_, seat, config_.rpcPort);
  rpc_->setHandler("escalate", [this](const std::string& body,
                                      net::RpcEndpoint::Responder respond) {
    // Frames: bare report (0 hops), "FWD|report" (1 hop, the legacy peer
    // protocol), "FWD<n>|report" (n hops across the management tree).
    int hops = 0;
    std::string payload = body;
    if (payload.rfind("FWD", 0) == 0) {
      const std::size_t bar = payload.find('|');
      if (bar == std::string::npos) {
        respond("ERR:bad-report");
        return;
      }
      const std::string count = payload.substr(3, bar - 3);
      if (count.empty()) {
        hops = 1;
      } else {
        hops = std::atoi(count.c_str());
        if (hops < 1) {
          respond("ERR:bad-report");
          return;
        }
      }
      payload = payload.substr(bar + 1);
    }
    const auto report = instrument::ViolationReport::parse(payload);
    if (!report.has_value()) {
      respond("ERR:bad-report");
      return;
    }
    handleEscalation(*report, hops);
    respond("OK");
  });

  // Streaming telemetry from host managers and child domain managers (one-
  // way publishes: the responder discards whatever we answer). Malformed
  // frames are dropped silently — telemetry is best-effort by design.
  rpc_->setHandler("telemetry", [this](const std::string& body,
                                       net::RpcEndpoint::Responder respond) {
    const auto snapshot = sim::TelemetrySnapshot::parse(body);
    if (snapshot.has_value()) {
      ++telemetryFrames_;
      telemetry_.ingest(*snapshot);
    }
    respond("OK");
  });

  if (config_.aggregationInterval > 0 && !config_.parentHost.empty()) {
    lastAggregateCut_ = sim_.now();
    sim_.every(config_.aggregationInterval, [this] { publishAggregate(); });
  }

  if (config_.channelPollInterval > 0) {
    // Shard-safe sampling: requires the topology (and shard placement) to be
    // final by the time this manager is constructed.
    monitor_ = std::make_unique<net::ChannelMonitor>(network_);
    monitor_->arm(config_.channelPollInterval);
  }
}

void QoSDomainManager::addManagedHost(const std::string& hostName) {
  managedHosts_.insert(hostName);
  if (config_.heartbeatInterval > 0) armHeartbeat();
}

net::RpcEndpoint::CallOptions QoSDomainManager::rpcOptions() const {
  net::RpcEndpoint::CallOptions options;
  options.timeout = config_.rpcTimeout;
  options.maxAttempts = config_.rpcMaxAttempts;
  return options;
}

void QoSDomainManager::armHeartbeat() {
  if (heartbeatEvent_ != sim::kInvalidEvent) return;
  heartbeatEvent_ = sim_.every(config_.heartbeatInterval,
                               [this] { pingManagedHosts(); });
}

void QoSDomainManager::pingManagedHosts() {
  if (crashed_) return;
  // std::set iteration: alphabetical host order, deterministic across runs.
  for (const std::string& hostName : managedHosts_) {
    HostLiveness& lv = liveness_[hostName];
    if (lv.probePending) continue;  // previous probe still in flight
    lv.probePending = true;
    ++heartbeatsSent_;
    net::RpcEndpoint::CallOptions probe;
    probe.timeout = config_.heartbeatTimeout;
    probe.maxAttempts = 1;  // misses ARE the signal; retries would blunt it
    rpc_->call(hostName, config_.hostManagerPort, "hm-ping", "",
               [this, hostName](bool ok, const std::string&) {
                 onHeartbeatReply(hostName, ok);
               },
               probe);
  }
}

void QoSDomainManager::onHeartbeatReply(const std::string& hostName, bool ok) {
  HostLiveness& lv = liveness_[hostName];
  lv.probePending = false;
  if (ok) {
    lv.consecutiveMisses = 0;
    lv.everAlive = true;
    if (lv.down) markHostRecovered(hostName);
    return;
  }
  ++heartbeatMisses_;
  ++lv.consecutiveMisses;
  // A host that never answered is unknown, not failed: the testbed seats
  // this manager on a host with no Host Manager of its own, and a fresh
  // deployment must not diagnose half its fleet dead before daemons finish
  // starting.
  if (!lv.everAlive || lv.down) return;
  if (lv.consecutiveMisses >= config_.heartbeatMissThreshold) {
    markHostDown(hostName);
  }
}

void QoSDomainManager::markHostDown(const std::string& hostName) {
  HostLiveness& lv = liveness_[hostName];
  lv.down = true;
  ++hostFailures_;
  sim_.warn(traceName_, [&] {
    return "heartbeats lapsed: asserting host-failure hypothesis for " +
           hostName;
  });
  rules::SlotMap slots;
  slots.emplace("host", Value::symbol(hostName));
  lv.failureFact = engine_.facts().assertFact("host-failure", std::move(slots));
  engine_.run();
}

void QoSDomainManager::markHostRecovered(const std::string& hostName) {
  HostLiveness& lv = liveness_[hostName];
  lv.down = false;
  ++hostRecoveries_;
  sim_.info(traceName_, [&] { return "host " + hostName + " recovered"; });
  if (lv.failureFact != rules::kNoFact) {
    engine_.facts().retract(lv.failureFact);
    lv.failureFact = rules::kNoFact;
  }
  engine_.run();
  revalidateServicesOn(hostName);
}

void QoSDomainManager::revalidateServicesOn(const std::string& hostName) {
  // A restarted host comes back with an empty process table: every service
  // bound to it must be probed and, when dead, restarted through the host
  // manager's restart hook.
  for (const auto& [exec, binding] : services_) {
    if (binding.serverHost != hostName) continue;
    const osim::Pid pid = binding.serverPid;
    rpc_->call(hostName, config_.hostManagerPort, "host-stats",
               "pid=" + std::to_string(pid),
               [this, hostName, pid](bool ok, const std::string& body) {
                 if (!ok) return;  // still unreachable; next recovery retries
                 int aliveInt = 0;
                 double load = 0.0;
                 std::sscanf(body.c_str(), "load=%lf;alive=%d", &load,
                             &aliveInt);
                 if (aliveInt != 0) return;
                 ++recoveryRestarts_;
                 ++restarts_;
                 sim_.info(traceName_, [&] {
                   return "revalidation: restarting dead service pid " +
                          std::to_string(pid) + " on " + hostName;
                 });
                 rpc_->call(hostName, config_.hostManagerPort, "restart",
                            "pid=" + std::to_string(pid),
                            [](bool, const std::string&) {}, rpcOptions());
               },
               rpcOptions());
  }
}

bool QoSDomainManager::hostMarkedDown(const std::string& hostName) const {
  const auto it = liveness_.find(hostName);
  return it != liveness_.end() && it->second.down;
}

bool QoSDomainManager::crash() {
  if (crashed_) return false;
  crashed_ = true;
  sim_.warn(traceName_, "domain manager daemon crashed");
  rpc_->setEnabled(false);
  // Working memory and liveness hypotheses are lost with the daemon.
  engine_.facts().clear();
  for (auto& [host, lv] : liveness_) {
    (void)host;
    lv = HostLiveness{};
  }
  return true;
}

bool QoSDomainManager::restartDaemon() {
  if (!crashed_) return false;
  crashed_ = false;
  sim_.info(traceName_, "domain manager daemon restarted");
  rpc_->setEnabled(true);
  return true;
}

bool QoSDomainManager::manages(const std::string& hostName) const {
  return managedHosts_.contains(hostName);
}

void QoSDomainManager::addPeer(const std::string& seatHostName, int port) {
  peers_.emplace_back(seatHostName, port);
}

void QoSDomainManager::registerService(const std::string& clientExecutable,
                                       const std::string& serverHost,
                                       osim::Pid serverPid) {
  services_[clientExecutable] = ServiceBinding{serverHost, serverPid};
}

void QoSDomainManager::unregisterService(const std::string& clientExecutable) {
  services_.erase(clientExecutable);
}

std::vector<std::string> QoSDomainManager::loadRuleText(const std::string& text) {
  return rules::loadRules(engine_, text);
}

void QoSDomainManager::loadDefaultRules() {
  loadRuleText(defaultDomainRules(config_.thresholds));
}

void QoSDomainManager::distributeHostRules(const std::string& ruleText) {
  for (const std::string& hostName : managedHosts_) {
    rpc_->call(hostName, config_.hostManagerPort, "set-rules", ruleText,
               [this, hostName](bool ok, const std::string& body) {
                 if (!ok || body.rfind("OK", 0) != 0) {
                   sim_.warn(traceName_, [&] {
                     return "rule push to " + hostName + " failed";
                   });
                 }
               });
  }
}

void QoSDomainManager::installFireHooks() {
  // Same shape as the host manager's hooks: per-rule spans under the active
  // fault-localization span plus a wall-clock firing-cost histogram.
  engine_.setFireHooks(
      [this](const rules::Rule& rule,
             const std::vector<rules::FactId>& matched) -> bool {
        sim::SpanObserver* o = sim_.observer();
        if (o == nullptr) return false;
        if (activeCtx_.valid()) {
          currentRuleSpan_ = o->beginSpan(sim_.now(), activeCtx_,
                                          "rule:" + rule.name, traceName_);
          std::string facts;
          for (const rules::FactId id : matched) {
            if (!facts.empty()) facts += ",";
            facts += id == rules::kNoFact ? "-" : std::to_string(id);
          }
          o->annotate(currentRuleSpan_, "facts", facts);
        }
        return true;
      },
      [this](const rules::Rule& /*rule*/,
             const std::vector<rules::FactId>& /*matched*/,
             std::uint64_t wallNanos) {
        ruleFireNanos_.record(static_cast<double>(wallNanos));
        if (currentRuleSpan_.valid()) {
          if (sim::SpanObserver* o = sim_.observer()) {
            o->annotate(currentRuleSpan_, "wall_ns",
                        std::to_string(wallNanos));
            o->endSpan(sim_.now(), currentRuleSpan_);
          }
          currentRuleSpan_ = sim::TraceContext{};
        }
      });
}

void QoSDomainManager::markAction(std::string_view what) {
  if (!activeCtx_.valid()) return;
  if (sim::SpanObserver* o = sim_.observer()) {
    o->instant(sim_.now(), activeCtx_, "corrective:" + std::string(what),
               traceName_);
  }
}

void QoSDomainManager::registerEngineFunctions() {
  engine_.registerFunction("diagnose", [this](const std::vector<Value>& args) {
    if (args.size() != 2) return;
    const std::string kind = args[1].asString();
    ++diagnoses_[kind];
    lastDiagnosis_ = kind;
    if (activeCtx_.valid()) {
      if (sim::SpanObserver* o = sim_.observer()) {
        o->annotate(activeCtx_, "diagnosis", kind);
      }
    }
    sim_.info(traceName_, [&] { return "diagnosis: " + kind; });
  });

  engine_.registerFunction("boost-server", [this](const std::vector<Value>& args) {
    if (args.size() != 3) return;
    const std::string serverHost = args[0].asString();
    const auto pid = static_cast<osim::Pid>(args[1].asInt());
    const int delta = static_cast<int>(args[2].asInt());
    std::ostringstream body;
    body << "pid=" << pid << ";delta=" << delta;
    ++serverBoosts_;
    markAction("boost-server");
    auto options = rpcOptions();
    options.context = activeCtx_;
    rpc_->call(serverHost, config_.hostManagerPort, "boost", body.str(),
               [](bool, const std::string&) {}, options);
  });

  engine_.registerFunction("restart-server",
                           [this](const std::vector<Value>& args) {
    if (args.size() != 2) return;
    const std::string serverHost = args[0].asString();
    const auto pid = static_cast<osim::Pid>(args[1].asInt());
    ++restarts_;
    markAction("restart-server");
    auto options = rpcOptions();
    options.context = activeCtx_;
    rpc_->call(serverHost, config_.hostManagerPort, "restart",
               "pid=" + std::to_string(pid), [](bool, const std::string&) {},
               options);
  });

  engine_.registerFunction("reroute-congested",
                           [this](const std::vector<Value>&) {
    markAction("reroute-congested");
    rerouteAroundCongestion();
  });

  engine_.registerFunction("log", [this](const std::vector<Value>& args) {
    sim_.info(traceName_, [&] {
      std::ostringstream out;
      for (const Value& v : args) out << v.toString() << " ";
      return out.str();
    });
  });
}

double QoSDomainManager::sampleMaxChannelUtilization() {
  if (monitor_ != nullptr) {
    // Shard-safe path: read the monitor's combined view (one publish delay
    // behind the probes) instead of sweeping — and mutating — every
    // channel's poll state from this shard.
    hottestChannel_ = monitor_->hottest();
    return monitor_->maxUtilization();
  }
  double maxUtil = 0.0;
  hottestChannel_ = {net::kNoNode, net::kNoNode};
  for (const auto& [key, channel] : network_.channels()) {
    const double util = channel->utilizationSinceLastPoll();
    if (util > maxUtil) {
      maxUtil = util;
      hottestChannel_ = key;
    }
  }
  return maxUtil;
}

void QoSDomainManager::rerouteAroundCongestion() {
  // Adaptation example from Section 3.1: "rerouting traffic around a
  // congested network switch". Disable the hottest link; keep the change
  // only if the diagnosed client/server pair remains connected.
  if (hottestChannel_.first == net::kNoNode) return;
  net::Nic* client = network_.nicForHost(currentClientHost_);
  net::Nic* server = network_.nicForHost(currentServerHost_);
  if (client == nullptr || server == nullptr) return;
  if (!network_.setLinkEnabled(hottestChannel_.first, hottestChannel_.second,
                               false)) {
    return;
  }
  if (network_.nextHop(server->id(), client->id()) == net::kNoNode) {
    network_.setLinkEnabled(hottestChannel_.first, hottestChannel_.second,
                            true);
    ++rerouteRollbacks_;
    sim_.info(traceName_, "reroute rolled back: no alternative path exists");
    return;
  }
  ++reroutes_;
  sim_.info(traceName_, "rerouted traffic around congested link");
}

void QoSDomainManager::handleEscalation(
    const instrument::ViolationReport& report, bool forwarded) {
  handleEscalation(report, forwarded ? 1 : 0);
}

void QoSDomainManager::forwardEscalation(
    const instrument::ViolationReport& report, int hops) {
  // Frame the next hop: hop 1 keeps the legacy "FWD|" wire form so a
  // two-tier deployment with maxEscalationHops = 1 is byte-identical.
  const int next = hops + 1;
  const std::string frame =
      (next <= 1 ? std::string("FWD|") : "FWD" + std::to_string(next) + "|") +
      report.serialize();
  if (!config_.parentHost.empty()) {
    // Tree routing: hand the alarm one tier up rather than flooding peers.
    ++forwards_;
    rpc_->call(config_.parentHost, config_.parentPort, "escalate", frame,
               [](bool, const std::string&) {});
    return;
  }
  for (const auto& [peerHost, peerPort] : peers_) {
    ++forwards_;
    rpc_->call(peerHost, peerPort, "escalate", frame,
               [](bool, const std::string&) {});
  }
}

void QoSDomainManager::handleEscalation(
    const instrument::ViolationReport& report, int hops) {
  if (crashed_) return;  // direct calls while the daemon is down go nowhere
  ++received_;

  const auto it = services_.find(report.executable);
  if (it == services_.end()) {
    // A mid-tier manager may simply not know the service: its parent holds
    // the wider registry, so spend a hop before declaring it unknown.
    if (!config_.parentHost.empty() && hops < config_.maxEscalationHops) {
      forwardEscalation(report, hops);
      return;
    }
    ++diagnoses_["unknown-service"];
    lastDiagnosis_ = "unknown-service";
    return;
  }
  const ServiceBinding binding = it->second;

  if (!manages(binding.serverHost)) {
    // The server lives in another domain: hand the alarm to the parent (or,
    // with no tree configured, to peers — hierarchical vs. arbitrary
    // interconnection, Section 9). The hop budget keeps loops out.
    if (hops >= config_.maxEscalationHops) return;
    forwardEscalation(report, hops);
    return;
  }

  // Sample the network first (cheap, local), then ask the server-side host
  // manager for CPU load and liveness (Section 5.3's domain rule).
  const std::uint64_t eid = nextEscalationId_++;

  // Causal tracing: fault localization covers the evidence gathering (the
  // host-stats query) and the rule-based diagnosis that follows it, as a
  // child of the episode context the escalated report carried.
  sim::TraceContext locSpan;
  if (report.context.valid()) {
    if (sim::SpanObserver* o = sim_.observer()) {
      locSpan = o->beginSpan(sim_.now(), report.context, "fault-localization",
                             traceName_);
      o->annotate(locSpan, "exec", report.executable);
      o->annotate(locSpan, "server", binding.serverHost);
    }
  }

  const double maxUtil = sampleMaxChannelUtilization();
  {
    rules::SlotMap slots;
    slots.emplace("id", Value::integer(static_cast<std::int64_t>(eid)));
    slots.emplace("max-util", Value::real(maxUtil));
    engine_.facts().assertFact("net-stats", std::move(slots));
  }

  auto options = rpcOptions();
  options.context = locSpan;
  rpc_->call(
      binding.serverHost, config_.hostManagerPort, "host-stats",
      "pid=" + std::to_string(binding.serverPid),
      [this, eid, report, binding, locSpan](bool ok, const std::string& body) {
        if (crashed_) return;  // daemon died while the query was in flight
        bool alive = false;
        double load = 0.0;
        double slowdown = 100.0;
        if (ok) {
          int aliveInt = 0;
          std::sscanf(body.c_str(), "load=%lf;alive=%d;slowdown=%lf", &load,
                      &aliveInt, &slowdown);
          alive = aliveInt != 0;
        }
        // An unreachable host manager is indistinguishable from a dead one;
        // treat it as a process/host failure.
        runDiagnosis(eid, report, binding, alive, load, slowdown, locSpan);
      },
      options);
}

void QoSDomainManager::runDiagnosis(std::uint64_t escalationId,
                                    const instrument::ViolationReport& report,
                                    const ServiceBinding& binding, bool alive,
                                    double load, double slowdown,
                                    const sim::TraceContext& locSpan) {
  currentClientHost_ = report.hostName;
  currentServerHost_ = binding.serverHost;
  activeCtx_ = locSpan;
  const auto eid = static_cast<std::int64_t>(escalationId);
  {
    rules::SlotMap slots;
    slots.emplace("id", Value::integer(eid));
    slots.emplace("client", Value::symbol(report.hostName));
    slots.emplace("cpid", Value::integer(report.pid));
    slots.emplace("exec", Value::symbol(report.executable));
    slots.emplace("server", Value::symbol(binding.serverHost));
    slots.emplace("spid", Value::integer(binding.serverPid));
    slots.emplace("fps", Value::real(report.metric("frame_rate").value_or(0)));
    slots.emplace("buffer", Value::real(report.metric("buffer_size").value_or(0)));
    engine_.facts().assertFact("escalation", std::move(slots));
  }
  {
    rules::SlotMap slots;
    slots.emplace("id", Value::integer(eid));
    slots.emplace("alive", Value::integer(alive ? 1 : 0));
    slots.emplace("load", Value::real(load));
    slots.emplace("slowdown", Value::real(slowdown));
    engine_.facts().assertFact("server-stats", std::move(slots));
  }

  engine_.run();
  retractEscalationFacts(escalationId);

  if (activeCtx_.valid()) {
    if (sim::SpanObserver* o = sim_.observer()) {
      o->endSpan(sim_.now(), activeCtx_);
    }
    activeCtx_ = sim::TraceContext{};
  }
}

void QoSDomainManager::publishAggregate() {
  const sim::SimTime now = sim_.now();
  if (crashed_) {
    // The window is lost with the daemon: advance the baselines so the
    // restart does not replay pre-crash data upward.
    (void)telemetry_.cutDelta("dm:" + name_, lastAggregateCut_, now);
    lastAggregateCut_ = now;
    return;
  }
  sim::TelemetrySnapshot snap =
      telemetry_.cutDelta("dm:" + name_, lastAggregateCut_, now);
  lastAggregateCut_ = now;
  // Quiet domains publish nothing: the root's fabric load tracks activity
  // and fan-out, never raw host count.
  if (snap.counters.empty() && snap.histograms.empty()) return;
  ++aggregatePublishes_;
  rpc_->notify(config_.parentHost, config_.parentPort, "telemetry",
               snap.serialize());
}

void QoSDomainManager::retractEscalationFacts(std::uint64_t escalationId) {
  const Value idValue = Value::integer(static_cast<std::int64_t>(escalationId));
  std::vector<rules::FactId> toRetract;
  for (const char* tmpl : {"escalation", "server-stats", "net-stats"}) {
    engine_.facts().forEach(tmpl, [&](const rules::Fact& f) {
      const Value* v = f.slot("id");
      if (v != nullptr && *v == idValue) toRetract.push_back(f.id);
      return true;
    });
    for (const rules::FactId id : toRetract) engine_.facts().retract(id);
    toRetract.clear();
  }
}

}  // namespace softqos::manager
