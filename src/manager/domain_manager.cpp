#include "manager/domain_manager.hpp"

#include <cstdio>
#include <sstream>

#include "net/nic.hpp"
#include "rules/parser.hpp"

namespace softqos::manager {

using rules::Value;

QoSDomainManager::QoSDomainManager(sim::Simulation& simulation,
                                   osim::Host& seat, net::Network& network,
                                   std::string name, DomainManagerConfig config)
    : sim_(simulation),
      network_(network),
      name_(std::move(name)),
      traceName_("qosdm:" + name_),
      config_(config),
      engine_("qosdm:" + name_) {
  registerEngineFunctions();
  if (config_.loadDefaultRules) loadDefaultRules();

  rpc_ = std::make_unique<net::RpcEndpoint>(network_, seat, config_.rpcPort);
  rpc_->setHandler("escalate", [this](const std::string& body,
                                      net::RpcEndpoint::Responder respond) {
    bool forwarded = false;
    std::string payload = body;
    if (payload.rfind("FWD|", 0) == 0) {
      forwarded = true;
      payload = payload.substr(4);
    }
    const auto report = instrument::ViolationReport::parse(payload);
    if (!report.has_value()) {
      respond("ERR:bad-report");
      return;
    }
    handleEscalation(*report, forwarded);
    respond("OK");
  });
}

void QoSDomainManager::addManagedHost(const std::string& hostName) {
  managedHosts_.insert(hostName);
}

bool QoSDomainManager::manages(const std::string& hostName) const {
  return managedHosts_.contains(hostName);
}

void QoSDomainManager::addPeer(const std::string& seatHostName, int port) {
  peers_.emplace_back(seatHostName, port);
}

void QoSDomainManager::registerService(const std::string& clientExecutable,
                                       const std::string& serverHost,
                                       osim::Pid serverPid) {
  services_[clientExecutable] = ServiceBinding{serverHost, serverPid};
}

void QoSDomainManager::unregisterService(const std::string& clientExecutable) {
  services_.erase(clientExecutable);
}

std::vector<std::string> QoSDomainManager::loadRuleText(const std::string& text) {
  return rules::loadRules(engine_, text);
}

void QoSDomainManager::loadDefaultRules() {
  loadRuleText(defaultDomainRules(config_.thresholds));
}

void QoSDomainManager::distributeHostRules(const std::string& ruleText) {
  for (const std::string& hostName : managedHosts_) {
    rpc_->call(hostName, config_.hostManagerPort, "set-rules", ruleText,
               [this, hostName](bool ok, const std::string& body) {
                 if (!ok || body.rfind("OK", 0) != 0) {
                   sim_.warn(traceName_, [&] {
                     return "rule push to " + hostName + " failed";
                   });
                 }
               });
  }
}

void QoSDomainManager::registerEngineFunctions() {
  engine_.registerFunction("diagnose", [this](const std::vector<Value>& args) {
    if (args.size() != 2) return;
    const std::string kind = args[1].asString();
    ++diagnoses_[kind];
    lastDiagnosis_ = kind;
    sim_.info(traceName_, [&] { return "diagnosis: " + kind; });
  });

  engine_.registerFunction("boost-server", [this](const std::vector<Value>& args) {
    if (args.size() != 3) return;
    const std::string serverHost = args[0].asString();
    const auto pid = static_cast<osim::Pid>(args[1].asInt());
    const int delta = static_cast<int>(args[2].asInt());
    std::ostringstream body;
    body << "pid=" << pid << ";delta=" << delta;
    ++serverBoosts_;
    rpc_->call(serverHost, config_.hostManagerPort, "boost", body.str(),
               [](bool, const std::string&) {});
  });

  engine_.registerFunction("restart-server",
                           [this](const std::vector<Value>& args) {
    if (args.size() != 2) return;
    const std::string serverHost = args[0].asString();
    const auto pid = static_cast<osim::Pid>(args[1].asInt());
    ++restarts_;
    rpc_->call(serverHost, config_.hostManagerPort, "restart",
               "pid=" + std::to_string(pid), [](bool, const std::string&) {});
  });

  engine_.registerFunction("reroute-congested",
                           [this](const std::vector<Value>&) {
    rerouteAroundCongestion();
  });

  engine_.registerFunction("log", [this](const std::vector<Value>& args) {
    sim_.info(traceName_, [&] {
      std::ostringstream out;
      for (const Value& v : args) out << v.toString() << " ";
      return out.str();
    });
  });
}

double QoSDomainManager::sampleMaxChannelUtilization() {
  double maxUtil = 0.0;
  hottestChannel_ = {net::kNoNode, net::kNoNode};
  for (const auto& [key, channel] : network_.channels()) {
    const double util = channel->utilizationSinceLastPoll();
    if (util > maxUtil) {
      maxUtil = util;
      hottestChannel_ = key;
    }
  }
  return maxUtil;
}

void QoSDomainManager::rerouteAroundCongestion() {
  // Adaptation example from Section 3.1: "rerouting traffic around a
  // congested network switch". Disable the hottest link; keep the change
  // only if the diagnosed client/server pair remains connected.
  if (hottestChannel_.first == net::kNoNode) return;
  net::Nic* client = network_.nicForHost(currentClientHost_);
  net::Nic* server = network_.nicForHost(currentServerHost_);
  if (client == nullptr || server == nullptr) return;
  if (!network_.setLinkEnabled(hottestChannel_.first, hottestChannel_.second,
                               false)) {
    return;
  }
  if (network_.nextHop(server->id(), client->id()) == net::kNoNode) {
    network_.setLinkEnabled(hottestChannel_.first, hottestChannel_.second,
                            true);
    ++rerouteRollbacks_;
    sim_.info(traceName_, "reroute rolled back: no alternative path exists");
    return;
  }
  ++reroutes_;
  sim_.info(traceName_, "rerouted traffic around congested link");
}

void QoSDomainManager::handleEscalation(
    const instrument::ViolationReport& report, bool forwarded) {
  ++received_;

  const auto it = services_.find(report.executable);
  if (it == services_.end()) {
    ++diagnoses_["unknown-service"];
    lastDiagnosis_ = "unknown-service";
    return;
  }
  const ServiceBinding binding = it->second;

  if (!manages(binding.serverHost)) {
    // The server lives in another domain: hand the alarm to peers
    // (hierarchical vs. arbitrary interconnection — Section 9).
    if (forwarded) return;  // one hop only, to avoid loops
    for (const auto& [peerHost, peerPort] : peers_) {
      ++forwards_;
      rpc_->call(peerHost, peerPort, "escalate", "FWD|" + report.serialize(),
                 [](bool, const std::string&) {});
    }
    return;
  }

  // Sample the network first (cheap, local), then ask the server-side host
  // manager for CPU load and liveness (Section 5.3's domain rule).
  const std::uint64_t eid = nextEscalationId_++;
  const double maxUtil = sampleMaxChannelUtilization();
  {
    rules::SlotMap slots;
    slots.emplace("id", Value::integer(static_cast<std::int64_t>(eid)));
    slots.emplace("max-util", Value::real(maxUtil));
    engine_.facts().assertFact("net-stats", std::move(slots));
  }

  rpc_->call(
      binding.serverHost, config_.hostManagerPort, "host-stats",
      "pid=" + std::to_string(binding.serverPid),
      [this, eid, report, binding](bool ok, const std::string& body) {
        bool alive = false;
        double load = 0.0;
        double slowdown = 100.0;
        if (ok) {
          int aliveInt = 0;
          std::sscanf(body.c_str(), "load=%lf;alive=%d;slowdown=%lf", &load,
                      &aliveInt, &slowdown);
          alive = aliveInt != 0;
        }
        // An unreachable host manager is indistinguishable from a dead one;
        // treat it as a process/host failure.
        runDiagnosis(eid, report, binding, alive, load, slowdown);
      });
}

void QoSDomainManager::runDiagnosis(std::uint64_t escalationId,
                                    const instrument::ViolationReport& report,
                                    const ServiceBinding& binding, bool alive,
                                    double load, double slowdown) {
  currentClientHost_ = report.hostName;
  currentServerHost_ = binding.serverHost;
  const auto eid = static_cast<std::int64_t>(escalationId);
  {
    rules::SlotMap slots;
    slots.emplace("id", Value::integer(eid));
    slots.emplace("client", Value::symbol(report.hostName));
    slots.emplace("cpid", Value::integer(report.pid));
    slots.emplace("exec", Value::symbol(report.executable));
    slots.emplace("server", Value::symbol(binding.serverHost));
    slots.emplace("spid", Value::integer(binding.serverPid));
    slots.emplace("fps", Value::real(report.metric("frame_rate").value_or(0)));
    slots.emplace("buffer", Value::real(report.metric("buffer_size").value_or(0)));
    engine_.facts().assertFact("escalation", std::move(slots));
  }
  {
    rules::SlotMap slots;
    slots.emplace("id", Value::integer(eid));
    slots.emplace("alive", Value::integer(alive ? 1 : 0));
    slots.emplace("load", Value::real(load));
    slots.emplace("slowdown", Value::real(slowdown));
    engine_.facts().assertFact("server-stats", std::move(slots));
  }

  engine_.run();
  retractEscalationFacts(escalationId);
}

void QoSDomainManager::retractEscalationFacts(std::uint64_t escalationId) {
  const Value idValue = Value::integer(static_cast<std::int64_t>(escalationId));
  std::vector<rules::FactId> toRetract;
  for (const char* tmpl : {"escalation", "server-stats", "net-stats"}) {
    engine_.facts().forEach(tmpl, [&](const rules::Fact& f) {
      const Value* v = f.slot("id");
      if (v != nullptr && *v == idValue) toRetract.push_back(f.id);
      return true;
    });
    for (const rules::FactId id : toRetract) engine_.facts().retract(id);
    toRetract.clear();
  }
}

}  // namespace softqos::manager
