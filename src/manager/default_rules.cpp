#include "manager/default_rules.hpp"

#include <sstream>

namespace softqos::manager {

namespace {

std::string num(double v) {
  std::ostringstream out;
  out << v;
  return out.str();
}

}  // namespace

std::string defaultHostRules(const HostRuleThresholds& t) {
  const std::string bufLow = num(t.bufferLowBytes);
  const std::string fSevere = num(t.fpsSevere);
  const std::string fModerate = num(t.fpsModerate);
  const std::string fLow = num(t.fpsLow);
  const std::string fHigh = num(t.fpsHigh);
  const std::string jHigh = num(t.jitterHigh);
  const std::string memHigh = num(t.memSlowdownHigh);

  return std::string(R"(
; ---- Local CPU shortage: the communication buffer is backing up, so frames
; ---- arrive but the process cannot drain them. Boost sized by the deficit.
(defrule local-cpu-shortage-severe
  (declare (salience 20))
  (violation (pid ?pid))
  (metric (pid ?pid) (name buffer_size) (value ?b))
  (metric (pid ?pid) (name frame_rate) (value ?f))
  (test (>= ?b )") + bufLow + R"())
  (test (< ?f )" + fSevere + R"())
  =>
  (call boost-cpu ?pid 12))

(defrule local-cpu-shortage-moderate
  (declare (salience 20))
  (violation (pid ?pid))
  (metric (pid ?pid) (name buffer_size) (value ?b))
  (metric (pid ?pid) (name frame_rate) (value ?f))
  (test (>= ?b )" + bufLow + R"())
  (test (>= ?f )" + fSevere + R"())
  (test (< ?f )" + fModerate + R"())
  =>
  (call boost-cpu ?pid 6))

(defrule local-cpu-shortage-mild
  (declare (salience 20))
  (violation (pid ?pid))
  (metric (pid ?pid) (name buffer_size) (value ?b))
  (metric (pid ?pid) (name frame_rate) (value ?f))
  (test (>= ?b )" + bufLow + R"())
  (test (>= ?f )" + fModerate + R"())
  (test (< ?f )" + fLow + R"())
  =>
  (call boost-cpu ?pid 3))

; ---- Jitter-only violation with frame rate in band: gentle boost.
(defrule local-jitter
  (declare (salience 10))
  (violation (pid ?pid))
  (metric (pid ?pid) (name jitter_rate) (value ?j))
  (metric (pid ?pid) (name frame_rate) (value ?f))
  (metric (pid ?pid) (name buffer_size) (value ?b))
  (test (>= ?b )" + bufLow + R"())
  (test (>= ?j )" + jHigh + R"())
  (test (>= ?f )" + fLow + R"())
  =>
  (call boost-cpu ?pid 2))

; ---- Exceeding expectations: free CPU for other work (Section 2).
(defrule over-provisioned
  (declare (salience 15))
  (violation (pid ?pid))
  (metric (pid ?pid) (name frame_rate) (value ?f))
  (test (> ?f )" + fHigh + R"())
  =>
  (call decay-cpu ?pid 2))

; ---- Memory pressure: the process is paging; give it more resident pages.
(defrule memory-pressure
  (declare (salience 25))
  (violation (pid ?pid))
  (proc-stat (pid ?pid) (mem-slowdown ?s))
  (test (> ?s )" + memHigh + R"())
  =>
  (call grow-memory ?pid 1024))

; ---- Empty communication buffer while under-performing: the problem is not
; ---- local (Example 5); let the domain manager locate it.
(defrule remote-problem
  (declare (salience 20))
  (violation (pid ?pid))
  (metric (pid ?pid) (name buffer_size) (value ?b))
  (metric (pid ?pid) (name frame_rate) (value ?f))
  (test (< ?b )" + bufLow + R"())
  (test (< ?f )" + fLow + R"())
  =>
  (call notify-domain-manager ?pid))

; ---- Proactive QoS (Section 10): a predicted violation arrives while the
; ---- current value still complies -> head-start boost before users notice.
(defrule proactive-boost
  (declare (salience 18))
  (violation (pid ?pid))
  (metric (pid ?pid) (name predicted_frame_rate) (value ?pf))
  (test (< ?pf )" + fLow + R"())
  =>
  (call boost-cpu ?pid 4))

; ---- Overload (Section 10): the CPU knobs are exhausted (real-time cycles
; ---- already granted) and the policy is still under-performing -> ask the
; ---- application to adapt its behaviour (e.g. reduce decode quality).
(defrule overload-adapt
  (declare (salience 5))
  (violation (pid ?pid))
  (alloc-state (pid ?pid) (rt ?r))
  (metric (pid ?pid) (name frame_rate) (value ?f))
  (metric (pid ?pid) (name buffer_size) (value ?b))
  (test (> ?r 0))
  (test (< ?f )" + fLow + R"())
  (test (>= ?b )" + bufLow + R"())
  =>
  (call request-adaptation ?pid quality down))

; ---- Return to compliance: reset escalation bookkeeping.
(defrule compliance-restored
  (cleared (pid ?pid))
  =>
  (call clear-state ?pid))

; ---- The management plane is missing its own objectives (SLO burn-rate
; ---- breach asserted by the self-telemetry plane): local adaptation is not
; ---- keeping up, so escalate every still-violated session to the domain
; ---- manager regardless of where the evidence points.
(defrule slo-breach-escalate
  ; slo-breach carries no pid: this rule deliberately joins a global fact
  ; against every application's violations, so it opts out of partition
  ; scoping (partition derivation would make it exact anyway; the declare
  ; documents the cross-application intent).
  (declare (salience 30) (cross-partition))
  (slo-breach (objective ?o))
  (violation (pid ?pid))
  =>
  (call notify-domain-manager ?pid))
)";
}

std::string contractHostRules(const HostRuleThresholds& t) {
  const std::string fLow = num(t.fpsLow);

  return std::string(R"(
; ---- Graceful degradation: a session still under its full-tier contract is
; ---- violating with the frame rate below the policy band -> ask the Policy
; ---- Agent to renegotiate down to the request's degraded floors. The agent
; ---- verifies the tier (and the request's willingness to degrade); the
; ---- per-pid throttle in the manager absorbs repeat notifications.
(defrule contract-downgrade-on-violation
  (declare (salience 8))
  (violation (pid ?pid))
  (metric (pid ?pid) (name frame_rate) (value ?f))
  (not (contract-degraded (pid ?pid)))
  (test (< ?f )") + fLow + R"())
  =>
  (call renegotiate-contract ?pid down))

; ---- Renegotiation back up: the degraded session returned to compliance,
; ---- so try to restore the full tier (the agent refuses when the offer
; ---- cannot satisfy the full request).
(defrule contract-upgrade-on-recovery
  (declare (salience 8))
  (cleared (pid ?pid))
  (contract-degraded (pid ?pid))
  =>
  (call renegotiate-contract ?pid up))

; ---- An offerer missed its liveliness lease: record the loss. The Policy
; ---- Agent has already moved exclusive ownership to the next-strongest
; ---- alive offerer; a contract-owner fact follows with the new owner.
(defrule contract-liveliness-lost
  (declare (salience 30))
  (liveliness-lost (pid ?pid) (contract ?c))
  =>
  (call log liveliness-lost pid ?pid contract ?c))

(defrule contract-owner-changed
  (declare (salience 30))
  (contract-owner (contract ?c) (pid ?pid))
  =>
  (call log contract ?c now owned by pid ?pid))
)";
}

std::string defaultDomainRules(const DomainRuleThresholds& t) {
  const std::string loadHigh = num(t.serverLoadHigh);
  const std::string utilHigh = num(t.netUtilHigh);

  return std::string(R"(
; ---- Heartbeat protocol hypothesis: the server's whole host stopped
; ---- answering liveness probes. Diagnose without waiting on host-stats
; ---- evidence; the restart is issued anyway (retries carry it across the
; ---- outage) and recovery revalidation backstops it.
(defrule diagnose-host-failure
  (declare (salience 40))
  (escalation (id ?e) (server ?s) (spid ?sp))
  (host-failure (host ?s))
  =>
  (call diagnose ?e host-failure)
  (call restart-server ?s ?sp))

; ---- Server process is gone (but its host still answers): restart it
; ---- (adaptation, Section 3.1).
(defrule diagnose-process-failure
  (declare (salience 30))
  (escalation (id ?e) (server ?s) (spid ?sp))
  (server-stats (id ?e) (alive 0))
  (not (host-failure (host ?s)))
  =>
  (call diagnose ?e process-failure)
  (call restart-server ?s ?sp))

; ---- Server starved of CPU: tell the server-side host manager to raise the
; ---- server process priority (Section 7).
(defrule diagnose-server-overload
  (declare (salience 20))
  (escalation (id ?e) (server ?s) (spid ?sp))
  (server-stats (id ?e) (alive 1) (load ?l))
  (test (>= ?l )") + loadHigh + R"())
  =>
  (call diagnose ?e server-overload)
  (call boost-server ?s ?sp 10))

; ---- Server healthy but a switch is saturated: network congestion.
(defrule diagnose-network-congestion
  (declare (salience 10))
  (escalation (id ?e))
  (server-stats (id ?e) (alive 1) (load ?l))
  (net-stats (id ?e) (max-util ?u))
  (test (< ?l )" + loadHigh + R"())
  (test (>= ?u )" + utilHigh + R"())
  =>
  (call diagnose ?e network-congestion)
  (call reroute-congested ?e))

; ---- Nothing conclusive.
(defrule diagnose-unknown
  (declare (salience 0))
  (escalation (id ?e))
  (server-stats (id ?e) (alive 1) (load ?l))
  (net-stats (id ?e) (max-util ?u))
  (test (< ?l )" + loadHigh + R"())
  (test (< ?u )" + utilHigh + R"())
  =>
  (call diagnose ?e unknown))
)";
}

}  // namespace softqos::manager
