// Resource managers: each manages a single system resource on one host
// (Section 7). The CPU manager adjusts time-sharing priorities or allocates
// units of real-time CPU cycles; the memory manager adjusts the number of
// resident pages a process holds.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "osim/host.hpp"

namespace softqos::manager {

class ResourceManager {
 public:
  explicit ResourceManager(osim::Host& host) : host_(host) {}
  virtual ~ResourceManager() = default;

  ResourceManager(const ResourceManager&) = delete;
  ResourceManager& operator=(const ResourceManager&) = delete;

  [[nodiscard]] virtual std::string resourceName() const = 0;
  [[nodiscard]] osim::Host& host() { return host_; }
  [[nodiscard]] const osim::Host& host() const { return host_; }
  [[nodiscard]] std::uint64_t adjustments() const { return adjustments_; }

 protected:
  void countAdjustment() { ++adjustments_; }

 private:
  osim::Host& host_;
  std::uint64_t adjustments_ = 0;
};

class CpuResourceManager : public ResourceManager {
 public:
  using ResourceManager::ResourceManager;

  [[nodiscard]] std::string resourceName() const override { return "cpu"; }

  /// Add `delta` to the process's user priority (clamped to [-60, 60], like
  /// priocntl on the TS class). Returns false for unknown/dead processes.
  bool adjustTsPriority(osim::Pid pid, int delta);
  bool setTsPriority(osim::Pid pid, int upri);
  [[nodiscard]] int tsPriority(osim::Pid pid) const;

  /// True when the priority knob is saturated upward (the signal to escalate
  /// to real-time cycle allocation).
  [[nodiscard]] bool tsSaturated(osim::Pid pid) const;

  /// Allocate `percent` of each 100ms period at real-time priority
  /// (0 revokes the grant).
  bool grantRtShare(osim::Pid pid, int percent);
  [[nodiscard]] int rtShare(osim::Pid pid) const;

  /// Reset the knobs to defaults (used when a session ends).
  bool release(osim::Pid pid);
};

class MemoryResourceManager : public ResourceManager {
 public:
  using ResourceManager::ResourceManager;

  [[nodiscard]] std::string resourceName() const override { return "memory"; }

  /// Cap (or with negative `pages`, uncap) the resident set of a process.
  bool setResidentCap(osim::Pid pid, std::int64_t pages);
  [[nodiscard]] std::int64_t residentCap(osim::Pid pid) const;

  /// Raise the cap by `pages` (starting from the current resident set when
  /// uncapped). Returns false for unknown processes.
  bool growResidentCap(osim::Pid pid, std::int64_t pages);

  /// Memory pressure indicator: execution slowdown percent (100 = none).
  [[nodiscard]] int slowdownPercent(osim::Pid pid) const;
};

}  // namespace softqos::manager
