// Mapping between the information model and LDAP entries (Section 7: "Each
// of the classes defined in the information model were mapped to LDAP
// classes"), plus the DIT layout used by the Repository Service.
//
// Limitation (faithful to the paper's model): policies whose condition
// expression is not a flat conjunction/disjunction cannot be stored — the
// policy class carries a single combinator attribute. Such policies remain
// usable in memory; mapping them throws MappingError.
#pragma once

#include <stdexcept>
#include <vector>

#include "ldapdir/directory.hpp"
#include "ldapdir/entry.hpp"
#include "policy/model.hpp"
#include "policy/qos_contract.hpp"

namespace softqos::policy {

class MappingError : public std::runtime_error {
 public:
  explicit MappingError(const std::string& message)
      : std::runtime_error(message) {}
};

/// The directory layout (all under the repository suffix, default o=uwo).
namespace dit {
ldapdir::Dn root();
ldapdir::Dn applications();
ldapdir::Dn executables();
ldapdir::Dn sensors();
ldapdir::Dn conditions();
ldapdir::Dn actions();
ldapdir::Dn policies();
ldapdir::Dn roles();
ldapdir::Dn contracts();
/// The container entries themselves (for bootstrapping a repository).
std::vector<ldapdir::Entry> containerEntries();
}  // namespace dit

ldapdir::Entry toEntry(const ApplicationInfo& app);
ldapdir::Entry toEntry(const ExecutableInfo& exec);
ldapdir::Entry toEntry(const SensorInfo& sensor);
ldapdir::Entry toEntry(const UserRole& role);
ldapdir::Entry toEntry(const ContractSpec& contract);

ApplicationInfo applicationFromEntry(const ldapdir::Entry& entry);
ExecutableInfo executableFromEntry(const ldapdir::Entry& entry);
SensorInfo sensorFromEntry(const ldapdir::Entry& entry);
UserRole roleFromEntry(const ldapdir::Entry& entry);
ContractSpec contractFromEntry(const ldapdir::Entry& entry);

/// A policy maps to one qosPolicy entry plus one qosCondition / qosAction
/// entry per inline condition/action (reusable ones — with a non-empty id —
/// are referenced and assumed to exist). Returned in parent-safe order.
std::vector<ldapdir::Entry> policyToEntries(const PolicySpec& spec);

/// Rebuild a policy from its entry, resolving condition/action references
/// through the directory. Throws MappingError on dangling references.
PolicySpec policyFromEntry(const ldapdir::Entry& entry,
                           const ldapdir::Directory& directory);

ldapdir::Entry conditionToEntry(const PolicyCondition& cond,
                                const std::string& cn);
PolicyCondition conditionFromEntry(const ldapdir::Entry& entry);
ldapdir::Entry actionToEntry(const PolicyAction& action, const std::string& cn);
PolicyAction actionFromEntry(const ldapdir::Entry& entry);

}  // namespace softqos::policy
