// Policy conditions: constraints on application attributes, including the
// paper's tolerance notation "frame_rate = 25(+2)(-2)".
#pragma once

#include <string>
#include <vector>

namespace softqos::policy {

enum class PolicyCmp { kEq, kNe, kLt, kLe, kGt, kGe };

std::string policyCmpName(PolicyCmp op);
PolicyCmp parsePolicyCmp(const std::string& token);

/// Tolerance band around an equality target: 25(+2)(-2) accepts (23, 27).
struct Tolerance {
  double above = 0.0;
  double below = 0.0;

  [[nodiscard]] bool active() const { return above > 0.0 || below > 0.0; }
};

/// One primitive comparison after tolerance expansion (paper Example 3:
/// "frame_rate = 25(+2)(-2)" becomes frame_rate > 23 AND frame_rate < 27).
struct PrimitiveComparison {
  std::string attribute;
  PolicyCmp op = PolicyCmp::kEq;
  double value = 0.0;

  [[nodiscard]] bool holds(double observed) const;
  [[nodiscard]] std::string toString() const;
};

/// A reusable policy condition (Section 6.1: conditions have their own class
/// so they can be shared between policies).
struct PolicyCondition {
  std::string id;         // empty for inline (non-reusable) conditions
  std::string attribute;  // e.g. "frame_rate"
  PolicyCmp op = PolicyCmp::kEq;
  double threshold = 0.0;
  Tolerance tolerance;    // only meaningful with kEq

  /// True when the observed value satisfies the condition.
  [[nodiscard]] bool holds(double observed) const;

  /// Expand to primitive comparisons (1 normally, 2 for a tolerance band).
  [[nodiscard]] std::vector<PrimitiveComparison> expand() const;

  /// Render in the policy notation, e.g. "frame_rate = 25(+2)(-2)".
  [[nodiscard]] std::string toString() const;
};

}  // namespace softqos::policy
