#include "policy/ldap_mapping.hpp"

#include <cstdlib>
#include <sstream>

namespace softqos::policy {

using ldapdir::Dn;
using ldapdir::Entry;

namespace dit {

Dn root() { return Dn::parse("o=uwo"); }
Dn applications() { return Dn::parse("ou=applications,o=uwo"); }
Dn executables() { return Dn::parse("ou=executables,o=uwo"); }
Dn sensors() { return Dn::parse("ou=sensors,o=uwo"); }
Dn conditions() { return Dn::parse("ou=conditions,o=uwo"); }
Dn actions() { return Dn::parse("ou=actions,o=uwo"); }
Dn policies() { return Dn::parse("ou=policies,o=uwo"); }
Dn roles() { return Dn::parse("ou=roles,o=uwo"); }
Dn contracts() { return Dn::parse("ou=contracts,o=uwo"); }

std::vector<Entry> containerEntries() {
  std::vector<Entry> out;
  Entry rootEntry(root());
  rootEntry.addValue("objectClass", "organization");
  rootEntry.addValue("o", "uwo");
  out.push_back(std::move(rootEntry));
  for (const Dn& dn : {applications(), executables(), sensors(), conditions(),
                       actions(), policies(), roles(), contracts()}) {
    Entry e(dn);
    e.addValue("objectClass", "container");
    e.addValue("ou", dn.leaf().value);
    out.push_back(std::move(e));
  }
  return out;
}

}  // namespace dit

namespace {

std::string formatNumber(double v) {
  std::ostringstream out;
  out << v;
  return out.str();
}

double numberOr(const Entry& entry, const std::string& attr, double fallback) {
  const auto v = entry.firstValue(attr);
  return v.has_value() ? std::strtod(v->c_str(), nullptr) : fallback;
}

std::string require(const Entry& entry, const std::string& attr) {
  const auto v = entry.firstValue(attr);
  if (!v.has_value()) {
    throw MappingError("entry " + entry.dn().toString() +
                       " missing attribute " + attr);
  }
  return *v;
}

}  // namespace

Entry toEntry(const ApplicationInfo& app) {
  Entry e(dit::applications().child("cn", app.name));
  e.addValue("objectClass", "qosApplication");
  e.addValue("cn", app.name);
  for (const std::string& exec : app.executables) {
    e.addValue("executableRef", exec);
  }
  return e;
}

Entry toEntry(const ExecutableInfo& exec) {
  Entry e(dit::executables().child("cn", exec.name));
  e.addValue("objectClass", "qosExecutable");
  e.addValue("cn", exec.name);
  if (!exec.path.empty()) e.addValue("path", exec.path);
  for (const std::string& sensor : exec.sensorIds) {
    e.addValue("sensorRef", sensor);
  }
  return e;
}

Entry toEntry(const SensorInfo& sensor) {
  Entry e(dit::sensors().child("cn", sensor.id));
  e.addValue("objectClass", "qosSensor");
  e.addValue("cn", sensor.id);
  for (const std::string& attr : sensor.attributes) {
    e.addValue("monitorsAttribute", attr);
  }
  if (!sensor.probeName.empty()) e.addValue("probeName", sensor.probeName);
  return e;
}

Entry toEntry(const UserRole& role) {
  Entry e(dit::roles().child("cn", role.name));
  e.addValue("objectClass", "qosUserRole");
  e.addValue("cn", role.name);
  e.addValue("priorityWeight", std::to_string(role.priorityWeight));
  return e;
}

ApplicationInfo applicationFromEntry(const Entry& entry) {
  ApplicationInfo app;
  app.name = require(entry, "cn");
  if (const auto* refs = entry.values("executableref")) {
    app.executables = *refs;
  }
  return app;
}

ExecutableInfo executableFromEntry(const Entry& entry) {
  ExecutableInfo exec;
  exec.name = require(entry, "cn");
  exec.path = entry.firstValue("path").value_or("");
  if (const auto* refs = entry.values("sensorref")) exec.sensorIds = *refs;
  return exec;
}

SensorInfo sensorFromEntry(const Entry& entry) {
  SensorInfo sensor;
  sensor.id = require(entry, "cn");
  if (const auto* attrs = entry.values("monitorsattribute")) {
    sensor.attributes = *attrs;
  }
  sensor.probeName = entry.firstValue("probename").value_or("");
  return sensor;
}

UserRole roleFromEntry(const Entry& entry) {
  UserRole role;
  role.name = require(entry, "cn");
  role.priorityWeight =
      static_cast<int>(numberOr(entry, "priorityweight", 1.0));
  return role;
}

Entry toEntry(const ContractSpec& contract) {
  Entry e(dit::contracts().child("cn", contract.name));
  e.addValue("objectClass", "qosContract");
  e.addValue("cn", contract.name);
  if (!contract.executable.empty()) {
    e.addValue("executableRef", contract.executable);
  }
  if (!contract.application.empty()) {
    e.addValue("applicationRef", contract.application);
  }
  if (!contract.userRole.empty()) e.addValue("userRole", contract.userRole);
  if (contract.hasOffer) e.addValue("offeredQos", contract.offer.toString());
  if (contract.hasRequest) {
    e.addValue("requestedQos", contract.request.toString());
  }
  if (!contract.deadlineAttribute.empty()) {
    e.addValue("deadlineAttribute", contract.deadlineAttribute);
  }
  e.addValue("enabled", contract.enabled ? "TRUE" : "FALSE");
  return e;
}

ContractSpec contractFromEntry(const Entry& entry) {
  ContractSpec contract;
  contract.name = require(entry, "cn");
  contract.executable = entry.firstValue("executableref").value_or("");
  contract.application = entry.firstValue("applicationref").value_or("");
  contract.userRole = entry.firstValue("userrole").value_or("");
  contract.deadlineAttribute =
      entry.firstValue("deadlineattribute").value_or("");
  contract.enabled = entry.firstValue("enabled").value_or("TRUE") != "FALSE";
  try {
    if (const auto offered = entry.firstValue("offeredqos")) {
      contract.offer = parseQosOffer(*offered);
      contract.hasOffer = true;
    }
    if (const auto requested = entry.firstValue("requestedqos")) {
      contract.request = parseQosRequest(*requested);
      contract.hasRequest = true;
    }
  } catch (const std::invalid_argument& e) {
    throw MappingError("contract " + contract.name + ": " + e.what());
  }
  return contract;
}

Entry conditionToEntry(const PolicyCondition& cond, const std::string& cn) {
  Entry e(dit::conditions().child("cn", cn));
  e.addValue("objectClass", "qosCondition");
  e.addValue("cn", cn);
  e.addValue("conditionAttribute", cond.attribute);
  e.addValue("comparator", policyCmpName(cond.op));
  e.addValue("threshold", formatNumber(cond.threshold));
  if (cond.tolerance.above > 0) {
    e.addValue("toleranceAbove", formatNumber(cond.tolerance.above));
  }
  if (cond.tolerance.below > 0) {
    e.addValue("toleranceBelow", formatNumber(cond.tolerance.below));
  }
  return e;
}

PolicyCondition conditionFromEntry(const Entry& entry) {
  PolicyCondition cond;
  cond.id = require(entry, "cn");
  cond.attribute = require(entry, "conditionattribute");
  cond.op = parsePolicyCmp(require(entry, "comparator"));
  cond.threshold = numberOr(entry, "threshold", 0.0);
  cond.tolerance.above = numberOr(entry, "toleranceabove", 0.0);
  cond.tolerance.below = numberOr(entry, "tolerancebelow", 0.0);
  return cond;
}

namespace {

std::string actionKindName(PolicyAction::Kind kind) {
  switch (kind) {
    case PolicyAction::Kind::kSensorRead: return "sensorRead";
    case PolicyAction::Kind::kNotifyHostManager: return "notify";
    case PolicyAction::Kind::kActuatorInvoke: return "actuator";
  }
  return "?";
}

PolicyAction::Kind parseActionKind(const std::string& s) {
  if (s == "sensorRead") return PolicyAction::Kind::kSensorRead;
  if (s == "notify") return PolicyAction::Kind::kNotifyHostManager;
  if (s == "actuator") return PolicyAction::Kind::kActuatorInvoke;
  throw MappingError("unknown actionKind: " + s);
}

}  // namespace

Entry actionToEntry(const PolicyAction& action, const std::string& cn) {
  Entry e(dit::actions().child("cn", cn));
  e.addValue("objectClass", "qosAction");
  e.addValue("cn", cn);
  e.addValue("actionKind", actionKindName(action.kind));
  e.addValue("target", action.target);
  if (!action.method.empty()) e.addValue("method", action.method);
  for (const std::string& arg : action.arguments) {
    e.addValue("argument", arg);
  }
  return e;
}

PolicyAction actionFromEntry(const Entry& entry) {
  PolicyAction action;
  action.id = require(entry, "cn");
  action.kind = parseActionKind(require(entry, "actionkind"));
  action.target = entry.firstValue("target").value_or("");
  action.method = entry.firstValue("method").value_or(
      action.kind == PolicyAction::Kind::kNotifyHostManager ? "notify" : "read");
  if (const auto* args = entry.values("argument")) action.arguments = *args;
  return action;
}

std::vector<Entry> policyToEntries(const PolicySpec& spec) {
  if (spec.customExpr.has_value()) {
    throw MappingError(
        "policy " + spec.name +
        ": nested condition expressions cannot be stored (the information "
        "model's combinator attribute is flat; see Section 6.1)");
  }
  std::vector<Entry> out;
  Entry policy(dit::policies().child("cn", spec.name));
  policy.addValue("objectClass", "qosPolicy");
  policy.addValue("cn", spec.name);
  policy.addValue("applicationRef",
                  spec.application.empty() ? "*" : spec.application);
  policy.addValue("executableRef", spec.executable);
  policy.addValue("combinator",
                  spec.combinator == PolicySpec::Combinator::kConjunction
                      ? "AND"
                      : "OR");
  if (!spec.userRole.empty()) policy.addValue("userRole", spec.userRole);
  policy.addValue("enabled", spec.enabled ? "TRUE" : "FALSE");
  if (!spec.subjectPath.empty()) policy.addValue("subjectPath", spec.subjectPath);
  for (const std::string& t : spec.targets) policy.addValue("targetPath", t);

  int inlineIndex = 1;
  for (const PolicyCondition& cond : spec.conditions) {
    std::string cn = cond.id;
    if (cn.empty()) {
      cn = spec.name + "-c" + std::to_string(inlineIndex++);
      out.push_back(conditionToEntry(cond, cn));
    }
    policy.addValue("conditionRef", cn);
  }
  inlineIndex = 1;
  for (const PolicyAction& action : spec.actions) {
    std::string cn = action.id;
    if (cn.empty()) {
      cn = spec.name + "-a" + std::to_string(inlineIndex++);
      out.push_back(actionToEntry(action, cn));
    }
    policy.addValue("actionRef", cn);
  }
  out.push_back(std::move(policy));
  return out;
}

PolicySpec policyFromEntry(const Entry& entry,
                           const ldapdir::Directory& directory) {
  PolicySpec spec;
  spec.name = require(entry, "cn");
  spec.application = entry.firstValue("applicationref").value_or("");
  if (spec.application == "*") spec.application.clear();
  spec.executable = require(entry, "executableref");
  spec.userRole = entry.firstValue("userrole").value_or("");
  spec.combinator = require(entry, "combinator") == "OR"
                        ? PolicySpec::Combinator::kDisjunction
                        : PolicySpec::Combinator::kConjunction;
  spec.enabled = entry.firstValue("enabled").value_or("TRUE") != "FALSE";
  spec.subjectPath = entry.firstValue("subjectpath").value_or("");
  if (const auto* targets = entry.values("targetpath")) spec.targets = *targets;

  if (const auto* refs = entry.values("conditionref")) {
    for (const std::string& ref : *refs) {
      const Entry* cond = directory.lookup(dit::conditions().child("cn", ref));
      if (cond == nullptr) {
        throw MappingError("policy " + spec.name +
                           ": dangling conditionRef " + ref);
      }
      spec.conditions.push_back(conditionFromEntry(*cond));
    }
  }
  if (const auto* refs = entry.values("actionref")) {
    for (const std::string& ref : *refs) {
      const Entry* action = directory.lookup(dit::actions().child("cn", ref));
      if (action == nullptr) {
        throw MappingError("policy " + spec.name + ": dangling actionRef " + ref);
      }
      spec.actions.push_back(actionFromEntry(*action));
    }
  }
  return spec;
}

}  // namespace softqos::policy
