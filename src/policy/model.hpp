// The information model of Section 6.1: applications, executables, sensors,
// user roles, and policies (with reusable conditions and actions).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "policy/condition.hpp"
#include "policy/expr.hpp"

namespace softqos::policy {

/// A sensor description: what attribute(s) the instrumented code can collect.
struct SensorInfo {
  std::string id;                        // e.g. "fps_sensor"
  std::vector<std::string> attributes;   // e.g. {"frame_rate"}
  std::string probeName;                 // documentation for instrumentors

  [[nodiscard]] bool monitors(const std::string& attribute) const;
};

/// An executable is instantiated on a host as a process; sensors are
/// associated with executables (many-to-many).
struct ExecutableInfo {
  std::string name;                      // e.g. "VideoApplication"
  std::string path;                      // install path (informational)
  std::vector<std::string> sensorIds;
};

/// An application is composed of at least one executable.
struct ApplicationInfo {
  std::string name;
  std::vector<std::string> executables;
};

/// Policies may differ per user role ("UserRole", Section 9).
struct UserRole {
  std::string name;
  int priorityWeight = 1;  // administrative weight for differentiated service
};

/// One `do`-list element of an obligation policy.
struct PolicyAction {
  enum class Kind {
    kSensorRead,         // fps_sensor->read(out frame_rate)
    kNotifyHostManager,  // (...)/QoSHostManager->notify(a, b, c)
    kActuatorInvoke,     // actuator->adjust(arg)
  };
  std::string id;                       // reusable action name (may be empty)
  Kind kind = Kind::kSensorRead;
  std::string target;                   // sensor id / manager path / actuator id
  std::string method;                   // read / notify / ...
  std::vector<std::string> arguments;   // variable names (out params or inputs)

  [[nodiscard]] std::string toString() const;
};

/// An application QoS policy: the `on` condition is the NEGATION of the QoS
/// requirement — the `do` actions run when the requirement is violated.
struct PolicySpec {
  std::string name;

  // Applicability (how the Policy Agent selects policies at registration).
  std::string application;
  std::string executable;
  std::string userRole;  // empty = any role

  std::string subjectPath;               // e.g. ".../VideoApplication/qosl_coordinator"
  std::vector<std::string> targets;      // sensors + host manager paths

  /// Conditions of the *requirement* (policy violated when their combination
  /// is false; the `on` clause wraps them in `not (...)`).
  std::vector<PolicyCondition> conditions;

  /// How conditions combine. The paper's information model stores a flat
  /// conjunction/disjunction; richer trees are carried in `expr`.
  enum class Combinator { kConjunction, kDisjunction } combinator =
      Combinator::kConjunction;

  /// Set when the parsed `on` clause is not a flat conjunction/disjunction
  /// (nested AND/OR/NOT); takes precedence over `combinator`.
  std::optional<BoolExpr> customExpr;

  /// Expression over *condition indices* (not expanded comparisons).
  /// Defaults to the flat combinator over all conditions.
  [[nodiscard]] BoolExpr conditionExpr() const;

  std::vector<PolicyAction> actions;
  bool enabled = true;

  /// All attributes referenced by conditions (duplicates removed, in order).
  [[nodiscard]] std::vector<std::string> referencedAttributes() const;

  /// Render back into the obligation-policy notation of Example 1.
  [[nodiscard]] std::string toString() const;
};

}  // namespace softqos::policy
