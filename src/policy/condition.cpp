#include "policy/condition.hpp"

#include <sstream>
#include <stdexcept>

namespace softqos::policy {

std::string policyCmpName(PolicyCmp op) {
  switch (op) {
    case PolicyCmp::kEq: return "=";
    case PolicyCmp::kNe: return "!=";
    case PolicyCmp::kLt: return "<";
    case PolicyCmp::kLe: return "<=";
    case PolicyCmp::kGt: return ">";
    case PolicyCmp::kGe: return ">=";
  }
  return "?";
}

PolicyCmp parsePolicyCmp(const std::string& token) {
  if (token == "=" || token == "==") return PolicyCmp::kEq;
  if (token == "!=" || token == "<>") return PolicyCmp::kNe;
  if (token == "<") return PolicyCmp::kLt;
  if (token == "<=") return PolicyCmp::kLe;
  if (token == ">") return PolicyCmp::kGt;
  if (token == ">=") return PolicyCmp::kGe;
  throw std::invalid_argument("unknown policy comparator: " + token);
}

namespace {

std::string formatNumber(double v) {
  std::ostringstream out;
  out << v;  // default precision trims trailing zeros
  return out.str();
}

}  // namespace

bool PrimitiveComparison::holds(double observed) const {
  switch (op) {
    case PolicyCmp::kEq: return observed == value;
    case PolicyCmp::kNe: return observed != value;
    case PolicyCmp::kLt: return observed < value;
    case PolicyCmp::kLe: return observed <= value;
    case PolicyCmp::kGt: return observed > value;
    case PolicyCmp::kGe: return observed >= value;
  }
  return false;
}

std::string PrimitiveComparison::toString() const {
  return attribute + " " + policyCmpName(op) + " " + formatNumber(value);
}

bool PolicyCondition::holds(double observed) const {
  if (op == PolicyCmp::kEq && tolerance.active()) {
    return observed > threshold - tolerance.below &&
           observed < threshold + tolerance.above;
  }
  return PrimitiveComparison{attribute, op, threshold}.holds(observed);
}

std::vector<PrimitiveComparison> PolicyCondition::expand() const {
  if (op == PolicyCmp::kEq && tolerance.active()) {
    return {PrimitiveComparison{attribute, PolicyCmp::kGt,
                                threshold - tolerance.below},
            PrimitiveComparison{attribute, PolicyCmp::kLt,
                                threshold + tolerance.above}};
  }
  return {PrimitiveComparison{attribute, op, threshold}};
}

std::string PolicyCondition::toString() const {
  std::string out =
      attribute + " " + policyCmpName(op) + " " + formatNumber(threshold);
  if (op == PolicyCmp::kEq && tolerance.active()) {
    out += "(+" + formatNumber(tolerance.above) + ")(-" +
           formatNumber(tolerance.below) + ")";
  }
  return out;
}

}  // namespace softqos::policy
