// DDS-style QoS contracts (requested-vs-offered admission control).
//
// The paper's management plane is purely reactive: the QoS Host Manager only
// learns a requirement is unsatisfiable after the violation fires. This
// module adds the missing contract vocabulary — Deadline, Liveliness,
// History depth, Durability and Ownership strength — with the standard RxO
// compatibility matrix (offered deadline <= requested deadline, offered
// history >= requested history, offered durability >= requested durability),
// so the Policy Agent can reject or degrade an incompatible match at
// registration time instead of letting the HM discover it later.
//
// A contract either *offers* QoS (bound to an executable: what a process of
// that executable can sustain) or *requests* it (bound to a user role and/or
// application: what a registering client asks for), or both. A request may
// carry a degraded tier — relaxed deadline/history floors the client is
// willing to fall back to when the full ask cannot be met.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace softqos::policy {

enum class LivelinessKind { kAutomatic, kManual };
/// Ordered weakest-to-strongest: an offer satisfies a request iff
/// offered.durability >= requested.durability.
enum class DurabilityKind { kVolatile, kTransientLocal };

[[nodiscard]] const char* livelinessKindName(LivelinessKind kind);
[[nodiscard]] const char* durabilityKindName(DurabilityKind kind);
LivelinessKind parseLivelinessKind(const std::string& name);
DurabilityKind parseDurabilityKind(const std::string& name);

/// The offered side: what a process of this executable commits to sustain.
/// Zero-valued fields mean "no commitment" (the weakest possible offer).
struct QosOffer {
  double deadlineMs = 0;      // inter-sample deadline period (0 = none)
  LivelinessKind liveliness = LivelinessKind::kAutomatic;
  double leaseMs = 0;         // liveliness lease (0 = no liveliness promise)
  int historyDepth = 0;       // retained samples the offerer can replay
  DurabilityKind durability = DurabilityKind::kVolatile;
  int ownershipStrength = 0;  // exclusive-ownership arbitration strength

  [[nodiscard]] std::string toString() const;
};

/// The requested side: bounds the client asks for. Zero-valued fields mean
/// "don't care" (always compatible on that policy).
struct QosRequest {
  double maxDeadlineMs = 0;   // offered deadline must be <= this
  double maxLeaseMs = 0;      // offered lease must exist and be <= this
  int minHistoryDepth = 0;    // offered history must be >= this
  DurabilityKind minDurability = DurabilityKind::kVolatile;

  // Degraded tier: floors the client accepts when the full ask fails.
  // Unset (degradedDeadlineMs == 0 and degradedHistoryDepth < 0) means the
  // request is strict — incompatible matches are rejected outright.
  double degradedDeadlineMs = 0;
  int degradedHistoryDepth = -1;

  [[nodiscard]] bool allowDegraded() const {
    return degradedDeadlineMs > 0 || degradedHistoryDepth >= 0;
  }
  [[nodiscard]] std::string toString() const;
};

/// A contract entry in the repository: offered and/or requested QoS bound to
/// an executable (offers) and/or role+application (requests).
struct ContractSpec {
  std::string name;
  std::string executable;   // offers bind here (empty: any)
  std::string application;  // empty: any application
  std::string userRole;     // requests bind here (empty: any role)
  bool hasOffer = false;
  QosOffer offer;
  bool hasRequest = false;
  QosRequest request;
  /// Attribute whose policy thresholds track 1000/deadlineMs (frames-per-
  /// second style): degraded admission relaxes these thresholds.
  std::string deadlineAttribute;
  bool enabled = true;
};

/// Which QoS policy an RxO check failed on (the typed rejection reason).
enum class QosPolicyKind { kDeadline, kLiveliness, kHistory, kDurability,
                           kOwnership };
[[nodiscard]] const char* qosPolicyKindName(QosPolicyKind kind);

struct QosMismatch {
  QosPolicyKind kind = QosPolicyKind::kDeadline;
  std::string detail;  // "offered 40ms > requested 25ms"
};

enum class AdmissionTier { kFull, kDegraded, kRejected };
[[nodiscard]] const char* admissionTierName(AdmissionTier tier);

struct AdmissionDecision {
  AdmissionTier tier = AdmissionTier::kFull;
  /// The bounds actually in force for the session: the offer's values at
  /// full tier, the degraded floors at degraded tier (0 / 0 = unbounded).
  double effectiveDeadlineMs = 0;
  int effectiveHistoryDepth = 0;
  /// Why the full tier failed (degraded admission) or why the match was
  /// rejected. Empty at full tier.
  std::vector<QosMismatch> mismatches;

  [[nodiscard]] std::string reason() const;  // "deadline: ...; history: ..."
};

/// The RxO compatibility matrix: every policy on which `offered` fails to
/// satisfy `requested` (empty = compatible).
[[nodiscard]] std::vector<QosMismatch> rxoMismatches(const QosOffer& offered,
                                                     const QosRequest& requested);

/// Run admission: full tier when the offer satisfies the request, degraded
/// tier when the request carries degraded floors the offer can meet,
/// rejected otherwise (mismatches carry the typed reasons).
[[nodiscard]] AdmissionDecision admit(const QosOffer& offered,
                                      const QosRequest& requested);

// ---- Compact wire/LDAP serialization ----
// Offers:   "deadline=33ms liveliness=automatic:200ms history=8
//            durability=transient_local strength=10"
// Requests: "deadline<=36ms lease<=400ms history>=4
//            durability>=transient_local degrade-deadline<=80ms
//            degrade-history>=1"
// Omitted fields keep their zero/don't-care defaults.
[[nodiscard]] QosOffer parseQosOffer(const std::string& text);
[[nodiscard]] QosRequest parseQosRequest(const std::string& text);

}  // namespace softqos::policy
