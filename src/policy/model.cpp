#include "policy/model.hpp"

#include <algorithm>

namespace softqos::policy {

bool SensorInfo::monitors(const std::string& attribute) const {
  return std::find(attributes.begin(), attributes.end(), attribute) !=
         attributes.end();
}

std::string PolicyAction::toString() const {
  std::string out = target + "->" + method + "(";
  for (std::size_t i = 0; i < arguments.size(); ++i) {
    if (i != 0) out += ", ";
    if (kind == Kind::kSensorRead) out += "out ";
    out += arguments[i];
  }
  return out + ")";
}

BoolExpr PolicySpec::conditionExpr() const {
  if (customExpr.has_value()) return *customExpr;
  std::vector<BoolExpr> vars;
  vars.reserve(conditions.size());
  for (std::size_t i = 0; i < conditions.size(); ++i) {
    vars.push_back(BoolExpr::var(static_cast<int>(i)));
  }
  if (vars.empty()) return BoolExpr{};
  return combinator == Combinator::kConjunction ? BoolExpr::andOf(std::move(vars))
                                                : BoolExpr::orOf(std::move(vars));
}

std::vector<std::string> PolicySpec::referencedAttributes() const {
  std::vector<std::string> out;
  for (const PolicyCondition& c : conditions) {
    if (std::find(out.begin(), out.end(), c.attribute) == out.end()) {
      out.push_back(c.attribute);
    }
  }
  return out;
}

std::string PolicySpec::toString() const {
  std::string out = "oblig " + name + " {\n";
  out += "  subject " + subjectPath + "\n";
  out += "  target ";
  for (std::size_t i = 0; i < targets.size(); ++i) {
    if (i != 0) out += ",";
    out += targets[i];
  }
  out += "\n  on not (";
  const std::string sep =
      combinator == Combinator::kConjunction ? " AND " : " OR ";
  for (std::size_t i = 0; i < conditions.size(); ++i) {
    if (i != 0) out += sep;
    out += conditions[i].toString();
  }
  out += ")\n  do ";
  for (std::size_t i = 0; i < actions.size(); ++i) {
    if (i != 0) out += ";\n     ";
    out += actions[i].toString();
  }
  out += "\n}\n";
  return out;
}

}  // namespace softqos::policy
