#include "policy/compile.hpp"

namespace softqos::policy {

bool CompiledCondition::holds(double observed) const {
  return PrimitiveComparison{attribute, op, value}.holds(observed);
}

CompiledPolicy compilePolicy(
    const PolicySpec& spec,
    const std::function<std::string(const std::string& attribute)>&
        sensorForAttribute,
    int& nextComparisonId) {
  CompiledPolicy out;
  out.policyId = spec.name;
  out.actions = spec.actions;
  out.userRole = spec.userRole;

  // Expand each condition into primitive comparisons; remember which boolean
  // variables each condition contributed so the condition-level expression
  // can be rewritten over comparison-level variables.
  std::vector<std::vector<int>> varsOfCondition;
  for (const PolicyCondition& cond : spec.conditions) {
    const std::string sensorId = sensorForAttribute(cond.attribute);
    if (sensorId.empty()) {
      throw CompileError("policy " + spec.name + ": no sensor monitors attribute '" +
                         cond.attribute + "'");
    }
    std::vector<int> vars;
    for (const PrimitiveComparison& prim : cond.expand()) {
      CompiledCondition cc;
      cc.varIndex = static_cast<int>(out.conditions.size());
      cc.comparisonId = nextComparisonId++;
      cc.attribute = prim.attribute;
      cc.sensorId = sensorId;
      cc.op = prim.op;
      cc.value = prim.value;
      vars.push_back(cc.varIndex);
      out.conditions.push_back(std::move(cc));
    }
    varsOfCondition.push_back(std::move(vars));
  }

  out.expression = spec.conditionExpr().substitute([&](int condIndex) {
    if (condIndex < 0 || condIndex >= static_cast<int>(varsOfCondition.size())) {
      throw CompileError("policy " + spec.name +
                         ": expression references unknown condition index " +
                         std::to_string(condIndex));
    }
    std::vector<BoolExpr> parts;
    for (const int v : varsOfCondition[static_cast<std::size_t>(condIndex)]) {
      parts.push_back(BoolExpr::var(v));
    }
    return BoolExpr::andOf(std::move(parts));
  });
  return out;
}

}  // namespace softqos::policy
