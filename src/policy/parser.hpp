// Parser for the obligation-policy notation of paper Example 1:
//
//   oblig NotifyQoSViolation {
//     subject (...)/VideoApplication/qosl_coordinator
//     target fps_sensor,jitter_sensor,buffer_sensor,(...)QoSHostManager
//     on not (frame_rate = 25(+2)(-2) AND jitter_rate < 1.25)
//     do fps_sensor->read(out frame_rate);
//        jitter_sensor->read(out jitter_rate);
//        buffer_sensor->read(out buffer_size);
//        (...)/QoSHostManager->notify(frame_rate, jitter_rate, buffer_size);
//   }
//
// The `on` clause is the negation of the QoS requirement; the parser stores
// the requirement's conditions, so PolicySpec::conditions hold when the
// application behaves and the policy fires when their combination is false.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "policy/model.hpp"
#include "policy/qos_contract.hpp"

namespace softqos::policy {

class PolicyParseError : public std::runtime_error {
 public:
  explicit PolicyParseError(const std::string& message)
      : std::runtime_error(message) {}
};

/// Parse one or more `oblig` blocks. Throws PolicyParseError on bad input.
std::vector<PolicySpec> parseObligations(const std::string& text);

/// Parse exactly one `oblig` block.
PolicySpec parseObligation(const std::string& text);

/// Parse a bare condition expression like
/// "frame_rate = 25(+2)(-2) AND jitter_rate < 1.25", returning the condition
/// list and either a flat combinator or a custom expression (into `spec`).
void parseConditionExpr(const std::string& text, PolicySpec& spec);

/// Parse one or more `contract` blocks declaring offered/requested QoS per
/// executable/role (the DDS-style RxO contract plane):
///
///   contract VideoOffer {
///     executable VideoApplication
///     offers deadline=33ms liveliness=automatic:200ms history=64
///            durability=transient_local strength=10
///     deadline_attribute frame_rate
///   }
///   contract SilverAsk {
///     application VideoConference
///     role silver
///     requests deadline<=36ms history>=4 degrade-deadline<=80ms
///   }
///
/// Throws PolicyParseError on bad input.
std::vector<ContractSpec> parseContracts(const std::string& text);

/// Parse exactly one `contract` block.
ContractSpec parseContract(const std::string& text);

}  // namespace softqos::policy
