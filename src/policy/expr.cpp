#include "policy/expr.hpp"

#include <algorithm>

namespace softqos::policy {

struct BoolExpr::Node {
  enum class Kind { kTrue, kVar, kAnd, kOr, kNot } kind = Kind::kTrue;
  int var = -1;
  std::vector<std::shared_ptr<const Node>> children;

  [[nodiscard]] bool eval(const std::vector<bool>& vars) const {
    switch (kind) {
      case Kind::kTrue:
        return true;
      case Kind::kVar:
        if (var < 0 || var >= static_cast<int>(vars.size())) return true;
        return vars[static_cast<std::size_t>(var)];
      case Kind::kAnd:
        return std::all_of(children.begin(), children.end(),
                           [&](const auto& c) { return c->eval(vars); });
      case Kind::kOr:
        return std::any_of(children.begin(), children.end(),
                           [&](const auto& c) { return c->eval(vars); });
      case Kind::kNot:
        return !children.front()->eval(vars);
    }
    return true;
  }

  [[nodiscard]] int maxVar() const {
    int best = kind == Kind::kVar ? var : -1;
    for (const auto& c : children) best = std::max(best, c->maxVar());
    return best;
  }

  [[nodiscard]] std::string text() const {
    switch (kind) {
      case Kind::kTrue:
        return "TRUE";
      case Kind::kVar:
        return "x" + std::to_string(var + 1);
      case Kind::kAnd:
      case Kind::kOr: {
        const std::string sep = kind == Kind::kAnd ? " AND " : " OR ";
        std::string out = "(";
        for (std::size_t i = 0; i < children.size(); ++i) {
          if (i != 0) out += sep;
          out += children[i]->text();
        }
        return out + ")";
      }
      case Kind::kNot:
        return "NOT " + children.front()->text();
    }
    return "?";
  }
};

BoolExpr::BoolExpr() : root_(std::make_shared<Node>()) {}

BoolExpr BoolExpr::var(int index) {
  BoolExpr e;
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kVar;
  node->var = index;
  e.root_ = std::move(node);
  return e;
}

BoolExpr BoolExpr::andOf(std::vector<BoolExpr> children) {
  if (children.size() == 1) return children.front();
  BoolExpr e;
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kAnd;
  for (BoolExpr& c : children) node->children.push_back(c.root_);
  e.root_ = std::move(node);
  return e;
}

BoolExpr BoolExpr::orOf(std::vector<BoolExpr> children) {
  if (children.size() == 1) return children.front();
  BoolExpr e;
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kOr;
  for (BoolExpr& c : children) node->children.push_back(c.root_);
  e.root_ = std::move(node);
  return e;
}

BoolExpr BoolExpr::notOf(BoolExpr child) {
  BoolExpr e;
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kNot;
  node->children.push_back(child.root_);
  e.root_ = std::move(node);
  return e;
}

bool BoolExpr::evaluate(const std::vector<bool>& vars) const {
  return root_->eval(vars);
}

int BoolExpr::maxVarIndex() const { return root_->maxVar(); }

std::string BoolExpr::toString() const { return root_->text(); }

BoolExpr BoolExpr::substitute(const std::function<BoolExpr(int)>& map) const {
  switch (root_->kind) {
    case Node::Kind::kTrue:
      return BoolExpr{};
    case Node::Kind::kVar:
      return map(root_->var);
    case Node::Kind::kNot: {
      BoolExpr child;
      child.root_ = root_->children.front();
      return notOf(child.substitute(map));
    }
    case Node::Kind::kAnd:
    case Node::Kind::kOr: {
      std::vector<BoolExpr> parts;
      parts.reserve(root_->children.size());
      for (const auto& c : root_->children) {
        BoolExpr child;
        child.root_ = c;
        parts.push_back(child.substitute(map));
      }
      return root_->kind == Node::Kind::kAnd ? andOf(std::move(parts))
                                             : orOf(std::move(parts));
    }
  }
  return BoolExpr{};
}

bool BoolExpr::isFlatConjunction() const {
  if (root_->kind == Node::Kind::kVar || root_->kind == Node::Kind::kTrue) {
    return true;
  }
  if (root_->kind != Node::Kind::kAnd) return false;
  return std::all_of(root_->children.begin(), root_->children.end(),
                     [](const auto& c) { return c->kind == Node::Kind::kVar; });
}

bool BoolExpr::isFlatDisjunction() const {
  if (root_->kind == Node::Kind::kVar || root_->kind == Node::Kind::kTrue) {
    return true;
  }
  if (root_->kind != Node::Kind::kOr) return false;
  return std::all_of(root_->children.begin(), root_->children.end(),
                     [](const auto& c) { return c->kind == Node::Kind::kVar; });
}

}  // namespace softqos::policy
