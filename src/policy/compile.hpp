// Compiler from PolicySpec to the coordinator wire format of Section 5.2:
// a condition list (attribute id, sensor id, comparator, value), an action
// list, and a boolean expression over generated variables (Example 3).
#pragma once

#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "policy/model.hpp"

namespace softqos::policy {

class CompileError : public std::runtime_error {
 public:
  explicit CompileError(const std::string& message)
      : std::runtime_error(message) {}
};

/// One primitive comparison ready for sensor installation. `comparisonId` is
/// the "internal identifier generated for that comparison which was passed to
/// the sensor using init" (Section 5.2); alarm reports quote it back.
struct CompiledCondition {
  int varIndex = 0;      // boolean variable this comparison controls
  int comparisonId = 0;  // unique across the coordinator's policies
  std::string attribute;
  std::string sensorId;
  PolicyCmp op = PolicyCmp::kEq;
  double value = 0.0;

  [[nodiscard]] bool holds(double observed) const;
};

struct CompiledPolicy {
  std::string policyId;
  std::vector<CompiledCondition> conditions;
  BoolExpr expression;  // over CompiledCondition::varIndex
  std::vector<PolicyAction> actions;
  std::string userRole;  // carried through for administrative rules
};

/// Compile `spec`, resolving each condition attribute to a sensor via
/// `sensorForAttribute` (returns empty string when no sensor can monitor the
/// attribute, which is a CompileError — the integrity check of Section 7).
/// `nextComparisonId` is advanced so ids stay unique across policies.
CompiledPolicy compilePolicy(
    const PolicySpec& spec,
    const std::function<std::string(const std::string& attribute)>&
        sensorForAttribute,
    int& nextComparisonId);

}  // namespace softqos::policy
