// Boolean expressions over condition variables (paper Example 3: boolean
// variables x1..xn generated per comparison, combined with AND/OR).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace softqos::policy {

class BoolExpr {
 public:
  /// Default: constant true (empty policy never considered violated).
  BoolExpr();

  static BoolExpr var(int index);
  static BoolExpr andOf(std::vector<BoolExpr> children);
  static BoolExpr orOf(std::vector<BoolExpr> children);
  static BoolExpr notOf(BoolExpr child);

  /// Evaluate with `vars[i]` the truth of variable i. Out-of-range variable
  /// indices evaluate to true ("no alarm seen"), matching the coordinator's
  /// optimistic initial state.
  [[nodiscard]] bool evaluate(const std::vector<bool>& vars) const;

  /// Highest variable index used, or -1 when the expression is constant.
  [[nodiscard]] int maxVarIndex() const;

  /// Render like "x1 AND x2 AND x3" (coordinator trace format).
  [[nodiscard]] std::string toString() const;

  /// Replace each variable i with map(i) (used by the compiler to expand a
  /// condition variable into the AND of its primitive comparisons).
  [[nodiscard]] BoolExpr substitute(
      const std::function<BoolExpr(int)>& map) const;

  /// True if the expression is a flat conjunction (resp. disjunction) of
  /// variables — the only shapes the paper's LDAP combinator attribute can
  /// describe.
  [[nodiscard]] bool isFlatConjunction() const;
  [[nodiscard]] bool isFlatDisjunction() const;

 private:
  struct Node;
  std::shared_ptr<const Node> root_;
};

}  // namespace softqos::policy
