#include "policy/parser.hpp"

#include <cctype>
#include <cstdlib>
#include <sstream>

namespace softqos::policy {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string lowered(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

// ---- Condition-expression lexer ----

struct Token {
  enum class Kind { kIdent, kNumber, kOp, kLParen, kRParen, kAnd, kOr, kNot, kEnd };
  Kind kind = Kind::kEnd;
  std::string text;
  double number = 0.0;
};

class ExprLexer {
 public:
  explicit ExprLexer(const std::string& text) : text_(text) { advance(); }

  const Token& peek() const { return current_; }

  Token take() {
    Token t = current_;
    advance();
    return t;
  }

 private:
  void advance() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    current_ = Token{};
    if (pos_ >= text_.size()) return;

    const char c = text_[pos_];
    if (c == '(') {
      ++pos_;
      current_.kind = Token::Kind::kLParen;
      return;
    }
    if (c == ')') {
      ++pos_;
      current_.kind = Token::Kind::kRParen;
      return;
    }
    if (c == '<' || c == '>' || c == '=' || c == '!') {
      std::string op(1, c);
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '=' || text_[pos_] == '>')) {
        op.push_back(text_[pos_++]);
      }
      current_.kind = Token::Kind::kOp;
      current_.text = op;
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '.' || c == '+' ||
        c == '-') {
      const std::size_t start = pos_;
      if (c == '+' || c == '-') ++pos_;
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '.')) {
        ++pos_;
      }
      current_.kind = Token::Kind::kNumber;
      current_.text = text_.substr(start, pos_ - start);
      current_.number = std::strtod(current_.text.c_str(), nullptr);
      return;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      const std::size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_')) {
        ++pos_;
      }
      const std::string word = text_.substr(start, pos_ - start);
      const std::string lower = lowered(word);
      if (lower == "and") {
        current_.kind = Token::Kind::kAnd;
      } else if (lower == "or") {
        current_.kind = Token::Kind::kOr;
      } else if (lower == "not") {
        current_.kind = Token::Kind::kNot;
      } else {
        current_.kind = Token::Kind::kIdent;
        current_.text = word;
      }
      return;
    }
    throw PolicyParseError(std::string("unexpected character '") + c +
                           "' in condition expression");
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  Token current_;
};

// ---- Condition-expression parser (builds conditions + index expression) ----

class ConditionParser {
 public:
  ConditionParser(ExprLexer& lexer, PolicySpec& spec)
      : lexer_(lexer), spec_(spec) {}

  BoolExpr parseOr() {
    std::vector<BoolExpr> terms;
    terms.push_back(parseAnd());
    while (lexer_.peek().kind == Token::Kind::kOr) {
      lexer_.take();
      terms.push_back(parseAnd());
    }
    return BoolExpr::orOf(std::move(terms));
  }

 private:
  BoolExpr parseAnd() {
    std::vector<BoolExpr> terms;
    terms.push_back(parseUnary());
    while (lexer_.peek().kind == Token::Kind::kAnd) {
      lexer_.take();
      terms.push_back(parseUnary());
    }
    return BoolExpr::andOf(std::move(terms));
  }

  BoolExpr parseUnary() {
    if (lexer_.peek().kind == Token::Kind::kNot) {
      lexer_.take();
      return BoolExpr::notOf(parseUnary());
    }
    if (lexer_.peek().kind == Token::Kind::kLParen) {
      lexer_.take();
      BoolExpr inner = parseOr();
      if (lexer_.peek().kind != Token::Kind::kRParen) {
        throw PolicyParseError("missing ')' in condition expression");
      }
      lexer_.take();
      return inner;
    }
    return parseComparison();
  }

  BoolExpr parseComparison() {
    if (lexer_.peek().kind != Token::Kind::kIdent) {
      throw PolicyParseError("expected attribute name in condition");
    }
    PolicyCondition cond;
    cond.attribute = lexer_.take().text;
    if (lexer_.peek().kind != Token::Kind::kOp) {
      throw PolicyParseError("expected comparator after attribute " +
                             cond.attribute);
    }
    cond.op = parsePolicyCmp(lexer_.take().text);
    if (lexer_.peek().kind != Token::Kind::kNumber) {
      throw PolicyParseError("expected numeric threshold for attribute " +
                             cond.attribute);
    }
    cond.threshold = lexer_.take().number;

    // Optional tolerance: (+2)(-2) in either order.
    while (lexer_.peek().kind == Token::Kind::kLParen) {
      // Only consume if the parenthesis encloses a signed number (tolerance);
      // otherwise it belongs to the surrounding expression — but a '(' right
      // after a threshold can only be a tolerance in this grammar.
      lexer_.take();
      if (lexer_.peek().kind != Token::Kind::kNumber) {
        throw PolicyParseError("expected signed tolerance after '('");
      }
      const Token tol = lexer_.take();
      if (tol.text.empty() || (tol.text[0] != '+' && tol.text[0] != '-')) {
        throw PolicyParseError("tolerance must be signed: " + tol.text);
      }
      if (tol.text[0] == '+') {
        cond.tolerance.above = tol.number;
      } else {
        cond.tolerance.below = -tol.number;
      }
      if (lexer_.peek().kind != Token::Kind::kRParen) {
        throw PolicyParseError("missing ')' after tolerance");
      }
      lexer_.take();
    }

    const int index = static_cast<int>(spec_.conditions.size());
    spec_.conditions.push_back(std::move(cond));
    return BoolExpr::var(index);
  }

  ExprLexer& lexer_;
  PolicySpec& spec_;
};

std::vector<std::string> splitTopLevel(const std::string& text, char delim) {
  std::vector<std::string> out;
  std::string current;
  int depth = 0;
  for (const char c : text) {
    if (c == '(') ++depth;
    if (c == ')') --depth;
    if (c == delim && depth == 0) {
      out.push_back(current);
      current.clear();
      continue;
    }
    current.push_back(c);
  }
  out.push_back(current);
  return out;
}

PolicyAction parseAction(const std::string& raw) {
  const std::string text = trim(raw);
  const std::size_t arrow = text.find("->");
  if (arrow == std::string::npos) {
    throw PolicyParseError("action missing '->': " + text);
  }
  PolicyAction action;
  action.target = trim(text.substr(0, arrow));
  const std::size_t open = text.find('(', arrow + 2);
  if (open == std::string::npos || text.back() != ')') {
    throw PolicyParseError("action missing argument list: " + text);
  }
  action.method = trim(text.substr(arrow + 2, open - arrow - 2));
  const std::string argsText = text.substr(open + 1, text.size() - open - 2);
  for (const std::string& part : splitTopLevel(argsText, ',')) {
    std::string arg = trim(part);
    if (arg.empty()) continue;
    if (lowered(arg).rfind("out ", 0) == 0) arg = trim(arg.substr(4));
    action.arguments.push_back(arg);
  }
  if (action.method == "notify" ||
      action.target.find("QoSHostManager") != std::string::npos) {
    action.kind = PolicyAction::Kind::kNotifyHostManager;
  } else if (action.method == "read") {
    action.kind = PolicyAction::Kind::kSensorRead;
  } else {
    action.kind = PolicyAction::Kind::kActuatorInvoke;
  }
  return action;
}

/// Executable name from a subject path ".../VideoApplication/qosl_coordinator".
std::string executableFromSubject(const std::string& subject) {
  const std::vector<std::string> parts = [&] {
    std::vector<std::string> out;
    std::string current;
    for (const char c : subject) {
      if (c == '/') {
        out.push_back(current);
        current.clear();
      } else {
        current.push_back(c);
      }
    }
    out.push_back(current);
    return out;
  }();
  if (parts.size() >= 2 && parts.back() == "qosl_coordinator") {
    return parts[parts.size() - 2];
  }
  return "";
}

}  // namespace

void parseConditionExpr(const std::string& text, PolicySpec& spec) {
  ExprLexer lexer(text);
  ConditionParser parser(lexer, spec);
  BoolExpr expr = parser.parseOr();
  if (lexer.peek().kind != Token::Kind::kEnd) {
    throw PolicyParseError("trailing content in condition expression");
  }
  if (expr.isFlatConjunction()) {
    spec.combinator = PolicySpec::Combinator::kConjunction;
  } else if (expr.isFlatDisjunction()) {
    spec.combinator = PolicySpec::Combinator::kDisjunction;
  } else {
    spec.customExpr = expr;
  }
}

PolicySpec parseObligation(const std::string& text) {
  const std::vector<PolicySpec> all = parseObligations(text);
  if (all.size() != 1) {
    throw PolicyParseError("expected exactly one oblig block, found " +
                           std::to_string(all.size()));
  }
  return all.front();
}

std::vector<PolicySpec> parseObligations(const std::string& text) {
  std::vector<PolicySpec> out;
  std::size_t pos = 0;
  while (true) {
    const std::size_t kw = text.find("oblig", pos);
    if (kw == std::string::npos) break;
    // Must be a standalone word.
    if ((kw > 0 && !std::isspace(static_cast<unsigned char>(text[kw - 1]))) ||
        kw + 5 >= text.size() ||
        !std::isspace(static_cast<unsigned char>(text[kw + 5]))) {
      pos = kw + 5;
      continue;
    }
    const std::size_t open = text.find('{', kw);
    if (open == std::string::npos) {
      throw PolicyParseError("oblig missing '{'");
    }
    const std::size_t close = text.find('}', open);
    if (close == std::string::npos) {
      throw PolicyParseError("oblig missing '}'");
    }
    PolicySpec spec;
    spec.name = trim(text.substr(kw + 5, open - kw - 5));
    if (spec.name.empty()) throw PolicyParseError("oblig missing a name");

    // Group the body into clauses: a clause starts with a keyword at the
    // beginning of a line (subject/target/on/do).
    const std::string body = text.substr(open + 1, close - open - 1);
    std::vector<std::pair<std::string, std::string>> clauses;
    std::istringstream lines(body);
    std::string line;
    while (std::getline(lines, line)) {
      const std::string t = trim(line);
      if (t.empty()) continue;
      std::string keyword;
      for (const char* kwName : {"subject", "target", "on", "do"}) {
        const std::size_t len = std::string(kwName).size();
        if (t.size() > len && t.compare(0, len, kwName) == 0 &&
            std::isspace(static_cast<unsigned char>(t[len]))) {
          keyword = kwName;
          break;
        }
      }
      if (!keyword.empty()) {
        clauses.emplace_back(keyword, trim(t.substr(keyword.size())));
      } else if (!clauses.empty()) {
        clauses.back().second += " " + t;  // continuation line
      } else {
        throw PolicyParseError("unexpected text in oblig body: " + t);
      }
    }

    bool sawOn = false;
    for (const auto& [keyword, value] : clauses) {
      if (keyword == "subject") {
        spec.subjectPath = value;
        spec.executable = executableFromSubject(value);
      } else if (keyword == "target") {
        for (const std::string& t : splitTopLevel(value, ',')) {
          const std::string target = trim(t);
          if (!target.empty()) spec.targets.push_back(target);
        }
      } else if (keyword == "on") {
        sawOn = true;
        std::string exprText = value;
        // The clause is the negation of the requirement; strip the leading
        // "not" so `conditions` store the requirement itself.
        const std::string low = lowered(trim(exprText));
        if (low.rfind("not", 0) == 0 &&
            (low.size() == 3 ||
             !std::isalnum(static_cast<unsigned char>(low[3])))) {
          exprText = trim(trim(exprText).substr(3));
        } else {
          throw PolicyParseError(
              "on clause must negate the requirement: expected 'on not (...)'");
        }
        parseConditionExpr(exprText, spec);
      } else if (keyword == "do") {
        for (const std::string& part : splitTopLevel(value, ';')) {
          const std::string actionText = trim(part);
          if (actionText.empty()) continue;
          spec.actions.push_back(parseAction(actionText));
        }
      }
    }
    if (!sawOn) {
      throw PolicyParseError("oblig " + spec.name + " missing 'on' clause");
    }
    out.push_back(std::move(spec));
    pos = close + 1;
  }
  if (out.empty()) throw PolicyParseError("no oblig block found");
  return out;
}

ContractSpec parseContract(const std::string& text) {
  const std::vector<ContractSpec> all = parseContracts(text);
  if (all.size() != 1) {
    throw PolicyParseError("expected exactly one contract block, found " +
                           std::to_string(all.size()));
  }
  return all.front();
}

std::vector<ContractSpec> parseContracts(const std::string& text) {
  std::vector<ContractSpec> out;
  std::size_t pos = 0;
  while (true) {
    const std::size_t kw = text.find("contract", pos);
    if (kw == std::string::npos) break;
    if ((kw > 0 && !std::isspace(static_cast<unsigned char>(text[kw - 1]))) ||
        kw + 8 >= text.size() ||
        !std::isspace(static_cast<unsigned char>(text[kw + 8]))) {
      pos = kw + 8;
      continue;
    }
    const std::size_t open = text.find('{', kw);
    if (open == std::string::npos) throw PolicyParseError("contract missing '{'");
    const std::size_t close = text.find('}', open);
    if (close == std::string::npos) throw PolicyParseError("contract missing '}'");
    ContractSpec spec;
    spec.name = trim(text.substr(kw + 8, open - kw - 8));
    if (spec.name.empty()) throw PolicyParseError("contract missing a name");

    // Same clause shape as oblig: a keyword at the start of a line opens a
    // clause, other lines continue the previous one.
    const std::string body = text.substr(open + 1, close - open - 1);
    std::vector<std::pair<std::string, std::string>> clauses;
    std::istringstream lines(body);
    std::string line;
    while (std::getline(lines, line)) {
      const std::string t = trim(line);
      if (t.empty()) continue;
      std::string keyword;
      for (const char* kwName : {"executable", "application", "role", "offers",
                                 "requests", "deadline_attribute", "enabled"}) {
        const std::size_t len = std::string(kwName).size();
        if (t.size() > len && t.compare(0, len, kwName) == 0 &&
            std::isspace(static_cast<unsigned char>(t[len]))) {
          keyword = kwName;
          break;
        }
      }
      if (!keyword.empty()) {
        clauses.emplace_back(keyword, trim(t.substr(keyword.size())));
      } else if (!clauses.empty()) {
        clauses.back().second += " " + t;
      } else {
        throw PolicyParseError("unexpected text in contract body: " + t);
      }
    }

    for (const auto& [keyword, value] : clauses) {
      try {
        if (keyword == "executable") {
          spec.executable = value;
        } else if (keyword == "application") {
          spec.application = value;
        } else if (keyword == "role") {
          spec.userRole = value;
        } else if (keyword == "offers") {
          spec.offer = parseQosOffer(value);
          spec.hasOffer = true;
        } else if (keyword == "requests") {
          spec.request = parseQosRequest(value);
          spec.hasRequest = true;
        } else if (keyword == "deadline_attribute") {
          spec.deadlineAttribute = value;
        } else if (keyword == "enabled") {
          spec.enabled = lowered(value) != "false";
        }
      } catch (const std::invalid_argument& e) {
        throw PolicyParseError("contract " + spec.name + ": " + e.what());
      }
    }
    if (!spec.hasOffer && !spec.hasRequest) {
      throw PolicyParseError("contract " + spec.name +
                             " declares neither offers nor requests");
    }
    out.push_back(std::move(spec));
    pos = close + 1;
  }
  if (out.empty()) throw PolicyParseError("no contract block found");
  return out;
}

}  // namespace softqos::policy
