#include "policy/qos_contract.hpp"

#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace softqos::policy {

namespace {

std::string formatMs(double v) {
  std::ostringstream out;
  out << v << "ms";
  return out.str();
}

/// "200ms" / "0.2s" / bare number (milliseconds) -> milliseconds.
double parseMs(const std::string& text) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str()) {
    throw std::invalid_argument("bad duration: " + text);
  }
  const std::string suffix(end);
  if (suffix == "s") return v * 1000.0;
  if (suffix.empty() || suffix == "ms") return v;
  throw std::invalid_argument("bad duration suffix: " + text);
}

std::vector<std::string> splitWords(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string word;
  while (in >> word) out.push_back(word);
  return out;
}

}  // namespace

const char* livelinessKindName(LivelinessKind kind) {
  switch (kind) {
    case LivelinessKind::kAutomatic: return "automatic";
    case LivelinessKind::kManual: return "manual";
  }
  return "?";
}

const char* durabilityKindName(DurabilityKind kind) {
  switch (kind) {
    case DurabilityKind::kVolatile: return "volatile";
    case DurabilityKind::kTransientLocal: return "transient_local";
  }
  return "?";
}

LivelinessKind parseLivelinessKind(const std::string& name) {
  if (name == "automatic") return LivelinessKind::kAutomatic;
  if (name == "manual") return LivelinessKind::kManual;
  throw std::invalid_argument("unknown liveliness kind: " + name);
}

DurabilityKind parseDurabilityKind(const std::string& name) {
  if (name == "volatile") return DurabilityKind::kVolatile;
  if (name == "transient_local") return DurabilityKind::kTransientLocal;
  throw std::invalid_argument("unknown durability kind: " + name);
}

const char* qosPolicyKindName(QosPolicyKind kind) {
  switch (kind) {
    case QosPolicyKind::kDeadline: return "deadline";
    case QosPolicyKind::kLiveliness: return "liveliness";
    case QosPolicyKind::kHistory: return "history";
    case QosPolicyKind::kDurability: return "durability";
    case QosPolicyKind::kOwnership: return "ownership";
  }
  return "?";
}

const char* admissionTierName(AdmissionTier tier) {
  switch (tier) {
    case AdmissionTier::kFull: return "full";
    case AdmissionTier::kDegraded: return "degraded";
    case AdmissionTier::kRejected: return "rejected";
  }
  return "?";
}

std::string QosOffer::toString() const {
  std::ostringstream out;
  if (deadlineMs > 0) out << "deadline=" << formatMs(deadlineMs) << ' ';
  if (leaseMs > 0) {
    out << "liveliness=" << livelinessKindName(liveliness) << ':'
        << formatMs(leaseMs) << ' ';
  }
  if (historyDepth > 0) out << "history=" << historyDepth << ' ';
  if (durability != DurabilityKind::kVolatile) {
    out << "durability=" << durabilityKindName(durability) << ' ';
  }
  if (ownershipStrength > 0) out << "strength=" << ownershipStrength << ' ';
  std::string s = out.str();
  if (!s.empty()) s.pop_back();
  return s;
}

std::string QosRequest::toString() const {
  std::ostringstream out;
  if (maxDeadlineMs > 0) out << "deadline<=" << formatMs(maxDeadlineMs) << ' ';
  if (maxLeaseMs > 0) out << "lease<=" << formatMs(maxLeaseMs) << ' ';
  if (minHistoryDepth > 0) out << "history>=" << minHistoryDepth << ' ';
  if (minDurability != DurabilityKind::kVolatile) {
    out << "durability>=" << durabilityKindName(minDurability) << ' ';
  }
  if (degradedDeadlineMs > 0) {
    out << "degrade-deadline<=" << formatMs(degradedDeadlineMs) << ' ';
  }
  if (degradedHistoryDepth >= 0) {
    out << "degrade-history>=" << degradedHistoryDepth << ' ';
  }
  std::string s = out.str();
  if (!s.empty()) s.pop_back();
  return s;
}

std::string AdmissionDecision::reason() const {
  std::string out;
  for (const QosMismatch& m : mismatches) {
    if (!out.empty()) out += "; ";
    out += std::string(qosPolicyKindName(m.kind)) + ": " + m.detail;
  }
  return out;
}

std::vector<QosMismatch> rxoMismatches(const QosOffer& offered,
                                       const QosRequest& requested) {
  std::vector<QosMismatch> out;
  if (requested.maxDeadlineMs > 0 &&
      (offered.deadlineMs <= 0 || offered.deadlineMs > requested.maxDeadlineMs)) {
    out.push_back({QosPolicyKind::kDeadline,
                   offered.deadlineMs <= 0
                       ? "no offered deadline, requested <= " +
                             formatMs(requested.maxDeadlineMs)
                       : "offered " + formatMs(offered.deadlineMs) +
                             " > requested " +
                             formatMs(requested.maxDeadlineMs)});
  }
  if (requested.maxLeaseMs > 0 &&
      (offered.leaseMs <= 0 || offered.leaseMs > requested.maxLeaseMs)) {
    out.push_back({QosPolicyKind::kLiveliness,
                   offered.leaseMs <= 0
                       ? "no offered lease, requested <= " +
                             formatMs(requested.maxLeaseMs)
                       : "offered lease " + formatMs(offered.leaseMs) +
                             " > requested " + formatMs(requested.maxLeaseMs)});
  }
  if (requested.minHistoryDepth > 0 &&
      offered.historyDepth < requested.minHistoryDepth) {
    out.push_back({QosPolicyKind::kHistory,
                   "offered " + std::to_string(offered.historyDepth) +
                       " < requested " +
                       std::to_string(requested.minHistoryDepth)});
  }
  if (static_cast<int>(offered.durability) <
      static_cast<int>(requested.minDurability)) {
    out.push_back({QosPolicyKind::kDurability,
                   std::string("offered ") +
                       durabilityKindName(offered.durability) +
                       " < requested " +
                       durabilityKindName(requested.minDurability)});
  }
  return out;
}

AdmissionDecision admit(const QosOffer& offered, const QosRequest& requested) {
  AdmissionDecision decision;
  decision.mismatches = rxoMismatches(offered, requested);
  if (decision.mismatches.empty()) {
    decision.tier = AdmissionTier::kFull;
    decision.effectiveDeadlineMs = requested.maxDeadlineMs > 0
                                       ? requested.maxDeadlineMs
                                       : offered.deadlineMs;
    decision.effectiveHistoryDepth = offered.historyDepth;
    return decision;
  }
  if (requested.allowDegraded()) {
    // Re-run the check against the degraded floors: a relaxed request with
    // the same don't-care semantics on unset fields.
    QosRequest relaxed = requested;
    relaxed.maxDeadlineMs = requested.degradedDeadlineMs;
    relaxed.minHistoryDepth =
        requested.degradedHistoryDepth >= 0 ? requested.degradedHistoryDepth
                                            : requested.minHistoryDepth;
    relaxed.degradedDeadlineMs = 0;
    relaxed.degradedHistoryDepth = -1;
    if (rxoMismatches(offered, relaxed).empty()) {
      decision.tier = AdmissionTier::kDegraded;
      decision.effectiveDeadlineMs = relaxed.maxDeadlineMs > 0
                                         ? relaxed.maxDeadlineMs
                                         : offered.deadlineMs;
      decision.effectiveHistoryDepth = relaxed.minHistoryDepth > 0
                                           ? relaxed.minHistoryDepth
                                           : offered.historyDepth;
      return decision;
    }
  }
  decision.tier = AdmissionTier::kRejected;
  return decision;
}

QosOffer parseQosOffer(const std::string& text) {
  QosOffer offer;
  for (const std::string& word : splitWords(text)) {
    const std::size_t eq = word.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("bad offer item: " + word);
    }
    const std::string key = word.substr(0, eq);
    const std::string value = word.substr(eq + 1);
    if (key == "deadline") {
      offer.deadlineMs = parseMs(value);
    } else if (key == "liveliness") {
      const std::size_t colon = value.find(':');
      if (colon == std::string::npos) {
        throw std::invalid_argument("liveliness needs kind:lease, got " + value);
      }
      offer.liveliness = parseLivelinessKind(value.substr(0, colon));
      offer.leaseMs = parseMs(value.substr(colon + 1));
    } else if (key == "history") {
      offer.historyDepth = std::atoi(value.c_str());
    } else if (key == "durability") {
      offer.durability = parseDurabilityKind(value);
    } else if (key == "strength") {
      offer.ownershipStrength = std::atoi(value.c_str());
    } else {
      throw std::invalid_argument("unknown offer key: " + key);
    }
  }
  return offer;
}

QosRequest parseQosRequest(const std::string& text) {
  QosRequest request;
  for (const std::string& word : splitWords(text)) {
    const std::size_t op = word.find("<=");
    const std::size_t ge = word.find(">=");
    const std::size_t cut = op != std::string::npos ? op : ge;
    if (cut == std::string::npos) {
      throw std::invalid_argument("bad request item (needs <= or >=): " + word);
    }
    const std::string key = word.substr(0, cut);
    const std::string value = word.substr(cut + 2);
    if (key == "deadline" && op != std::string::npos) {
      request.maxDeadlineMs = parseMs(value);
    } else if (key == "lease" && op != std::string::npos) {
      request.maxLeaseMs = parseMs(value);
    } else if (key == "history" && ge != std::string::npos) {
      request.minHistoryDepth = std::atoi(value.c_str());
    } else if (key == "durability" && ge != std::string::npos) {
      request.minDurability = parseDurabilityKind(value);
    } else if (key == "degrade-deadline" && op != std::string::npos) {
      request.degradedDeadlineMs = parseMs(value);
    } else if (key == "degrade-history" && ge != std::string::npos) {
      request.degradedHistoryDepth = std::atoi(value.c_str());
    } else {
      throw std::invalid_argument("unknown request item: " + word);
    }
  }
  return request;
}

}  // namespace softqos::policy
