// SensorTimerWheel: batches many sensors' periodic polls onto ONE kernel
// periodic event instead of one periodic per sensor.
//
// At host-shard scale the per-sensor periodics dominate the event queue (N
// sensors = N heap entries churning every cadence). The wheel keeps a single
// periodic firing at its granularity; each firing visits one slot of a
// classic timer wheel and polls the sensors due on that tick, re-bucketing
// them one interval ahead. Intervals are rounded up to whole wheel ticks, so
// a wheel trades per-sensor cadence precision (bounded by the granularity)
// for an event-queue footprint of exactly one entry.
//
// Determinism: slots are visited in tick order and entries within a slot in
// (re-)insertion order, which is itself deterministic, so wheel-driven polls
// replay byte-identically. One wheel belongs to one shard (it schedules
// through the current shard at first use); give each host-shard its own.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "instrument/registry.hpp"
#include "instrument/sensor.hpp"
#include "sim/simulation.hpp"

namespace softqos::instrument {

class SensorTimerWheel : public SensorRegistry::Listener {
 public:
  /// Handle for removing a sensor from the wheel.
  using Token = std::uint64_t;
  static constexpr Token kInvalidToken = 0;

  /// `granularity` is the wheel tick (> 0); `slots` the wheel circumference
  /// (intervals longer than slots*granularity still work — entries just stay
  /// in their slot across rounds).
  SensorTimerWheel(sim::Simulation& simulation, sim::SimDuration granularity,
                   std::size_t slots = 64);
  ~SensorTimerWheel() override;

  SensorTimerWheel(const SensorTimerWheel&) = delete;
  SensorTimerWheel& operator=(const SensorTimerWheel&) = delete;

  /// Poll `sensor` every `interval` (rounded up to whole wheel ticks; first
  /// poll one interval from now, matching Sensor::setTickInterval timing).
  /// The sensor must outlive its wheel membership.
  Token add(Sensor& sensor, sim::SimDuration interval);

  /// Adopt a sensor that currently drives its own periodic tick: disables
  /// the sensor's internal tick and polls it at the same cadence from the
  /// wheel. Returns kInvalidToken if the sensor had no tick configured.
  Token adopt(Sensor& sensor);

  /// Stop polling the sensor behind `token`. Safe with stale tokens.
  bool remove(Token token);

  /// Follow a registry's hotplug traffic: tick-driven sensors that arrive
  /// are adopted onto the wheel automatically, departing sensors release
  /// their slot. Detaches from any previously-attached registry; the
  /// registry must outlive the wheel (or the wheel must detach first).
  void attachRegistry(SensorRegistry& registry);
  void detachRegistry();

  // SensorRegistry::Listener
  void onSensorAdded(Sensor& sensor) override;
  void onSensorRemoved(Sensor& sensor) override;

  /// Live sensors on the wheel.
  [[nodiscard]] std::size_t sensorCount() const { return live_; }

  /// Total sensor polls driven by the wheel (diagnostics / benchmarks).
  [[nodiscard]] std::uint64_t polls() const { return polls_; }

  /// Kernel events the wheel has consumed (one per non-idle granularity
  /// tick) — the quantity the batching is meant to shrink.
  [[nodiscard]] std::uint64_t ticks() const { return ticks_; }

  [[nodiscard]] sim::SimDuration granularity() const { return granularity_; }

 private:
  struct Entry {
    Sensor* sensor = nullptr;
    std::uint64_t periodTicks = 1;  // interval in wheel ticks
    std::uint64_t dueTick = 0;      // absolute tick when next due
    Token token = kInvalidToken;
    bool live = false;
  };

  void onTick();
  void bucket(std::size_t entryIndex);
  void start();
  void stop();

  sim::Simulation& sim_;
  sim::SimDuration granularity_;
  std::vector<std::vector<std::size_t>> slots_;  // entry indices per slot
  std::vector<Entry> entries_;
  std::vector<std::size_t> freeEntries_;
  std::uint64_t tick_ = 0;  // absolute ticks since the wheel started
  std::size_t live_ = 0;
  std::uint64_t polls_ = 0;
  std::uint64_t ticks_ = 0;
  Token nextToken_ = 1;
  sim::EventId event_ = sim::kInvalidEvent;
  SensorRegistry* registry_ = nullptr;        // attached registry, if any
  std::map<const Sensor*, Token> adopted_;    // hotplug-adopted memberships
};

}  // namespace softqos::instrument
