// The manager -> process control channel.
//
// The paper's enforcement loop is one-directional (coordinator notifies the
// manager); Sections 9/10 call for the reverse direction too: thresholds
// changed while an application executes, and application-level *adaptation*
// when resources alone cannot satisfy a policy (overload handling). This
// module gives the coordinator a control endpoint on a per-process message
// queue; managers send small commands:
//
//   CTL|adapt|<actuatorId>|<arg>...        invoke an actuator
//   CTL|set-threshold|<comparisonId>|<v>   retune an installed comparison
//   CTL|enable-sensor|<sensorId>|<0|1>     toggle a sensor
//   CTL|set-tick|<sensorId>|<microsec>     change a sensor's tick interval
//   CTL|remove-policy|<policyId>           drop a policy locally
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace softqos::instrument {

/// One parsed control command.
struct ControlCommand {
  enum class Kind {
    kAdapt,
    kSetThreshold,
    kEnableSensor,
    kSetTick,
    kRemovePolicy,
  };
  Kind kind = Kind::kAdapt;
  std::string target;               // actuator / sensor / policy id
  int comparisonId = 0;             // kSetThreshold
  double value = 0.0;               // kSetThreshold
  bool enable = true;               // kEnableSensor
  std::int64_t tickMicros = 0;      // kSetTick
  std::vector<std::string> args;    // kAdapt

  [[nodiscard]] std::string serialize() const;
  static bool parse(const std::string& text, ControlCommand& out);
};

/// The conventional control-queue key for a process.
std::string controlQueueKey(std::uint32_t pid);

}  // namespace softqos::instrument
