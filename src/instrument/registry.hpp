// Per-process registry of instrumentation components. Probes and the
// coordinator look sensors/actuators up by id; policy compilation resolves
// attributes to the sensor monitoring them.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "instrument/actuator.hpp"
#include "instrument/sensor.hpp"

namespace softqos::instrument {

class SensorRegistry {
 public:
  /// Register a sensor; the registry shares ownership. Re-registering an id
  /// replaces the previous sensor.
  void addSensor(std::shared_ptr<Sensor> sensor);
  void addActuator(std::shared_ptr<Actuator> actuator);

  [[nodiscard]] Sensor* sensor(const std::string& id) const;
  [[nodiscard]] Actuator* actuator(const std::string& id) const;

  /// First registered sensor whose attribute matches (registration order).
  [[nodiscard]] Sensor* sensorForAttribute(const std::string& attribute) const;

  [[nodiscard]] std::vector<std::string> sensorIds() const;
  [[nodiscard]] std::size_t sensorCount() const { return sensors_.size(); }

 private:
  std::map<std::string, std::shared_ptr<Sensor>> sensors_;
  std::vector<std::string> order_;  // registration order for attribute lookup
  std::map<std::string, std::shared_ptr<Actuator>> actuators_;
};

}  // namespace softqos::instrument
