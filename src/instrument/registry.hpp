// Per-process registry of instrumentation components. Probes and the
// coordinator look sensors/actuators up by id; policy compilation resolves
// attributes to the sensor monitoring them. Sensors may appear and disappear
// at run time (hotplug): listeners — the coordinator, a timer wheel — are
// told on every add/remove so comparisons and poll slots follow the fleet.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "instrument/actuator.hpp"
#include "instrument/sensor.hpp"

namespace softqos::instrument {

class SensorRegistry {
 public:
  /// Hotplug notifications. During onSensorRemoved the sensor object is
  /// still alive (the registry drops its reference only after every
  /// listener ran), so listeners may uninstall comparisons from it.
  class Listener {
   public:
    virtual ~Listener() = default;
    virtual void onSensorAdded(Sensor& sensor) { (void)sensor; }
    virtual void onSensorRemoved(Sensor& sensor) { (void)sensor; }
  };

  /// Register a sensor; the registry shares ownership. Re-registering an id
  /// replaces the previous sensor (listeners see a remove then an add).
  void addSensor(std::shared_ptr<Sensor> sensor);
  void addActuator(std::shared_ptr<Actuator> actuator);

  /// Deregister a sensor at run time (hotplug departure). Listeners are
  /// notified before the reference is dropped; the sensor is returned so a
  /// caller keeping it alive can re-add it later. nullptr: unknown id.
  std::shared_ptr<Sensor> removeSensor(const std::string& id);

  /// Listeners are notified in subscription order; they must outlive their
  /// subscription (or removeListener first).
  void addListener(Listener* listener);
  void removeListener(Listener* listener);

  [[nodiscard]] Sensor* sensor(const std::string& id) const;
  [[nodiscard]] Actuator* actuator(const std::string& id) const;

  /// First registered sensor whose attribute matches (registration order).
  [[nodiscard]] Sensor* sensorForAttribute(const std::string& attribute) const;

  [[nodiscard]] std::vector<std::string> sensorIds() const;
  [[nodiscard]] std::size_t sensorCount() const { return sensors_.size(); }

 private:
  void notifyAdded(Sensor& sensor);
  void notifyRemoved(Sensor& sensor);

  std::map<std::string, std::shared_ptr<Sensor>> sensors_;
  std::vector<std::string> order_;  // registration order for attribute lookup
  std::map<std::string, std::shared_ptr<Actuator>> actuators_;
  std::vector<Listener*> listeners_;
};

}  // namespace softqos::instrument
