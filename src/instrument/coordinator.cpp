#include "instrument/coordinator.hpp"

#include <cstdlib>
#include <utility>

namespace softqos::instrument {

Coordinator::Coordinator(sim::Simulation& simulation, std::string hostName,
                         std::uint32_t pid, std::string executable,
                         SensorRegistry& registry, NotifyFn notify)
    : sim_(simulation),
      hostName_(std::move(hostName)),
      pid_(pid),
      executable_(std::move(executable)),
      registry_(registry),
      notify_(std::move(notify)),
      reactionLatency_(
          simulation.localMetrics().histogramHandle("qos.reaction_latency_us")) {
  registry_.addListener(this);
}

Coordinator::~Coordinator() {
  registry_.removeListener(this);
  for (const auto& po : policies_) {
    if (po->repeatEvent != sim::kInvalidEvent) sim_.cancel(po->repeatEvent);
  }
  if (flushEvent_ != sim::kInvalidEvent) sim_.cancel(flushEvent_);
}

void Coordinator::installPolicies(
    const std::vector<policy::CompiledPolicy>& policies) {
  for (const policy::CompiledPolicy& compiled : policies) {
    removePolicy(compiled.policyId);  // replace on re-push
    auto po = std::make_unique<PolicyObject>();
    po->compiled = compiled;
    po->vars.assign(compiled.conditions.size(), true);  // optimistic start
    wirePolicy(*po);
    policies_.push_back(std::move(po));
  }
}

void Coordinator::wirePolicy(PolicyObject& po) {
  for (const policy::CompiledCondition& cond : po.compiled.conditions) {
    Sensor* sensor = registry_.sensor(cond.sensorId);
    if (sensor == nullptr) {
      throw InstrumentError("policy " + po.compiled.policyId +
                            " references missing sensor " + cond.sensorId);
    }
    sensor->installComparison(cond.op, cond.value, cond.comparisonId);
    sensor->setAlarmHandler([this](Sensor& s, int comparisonId, bool holds) {
      onAlarm(s, comparisonId, holds);
    });
    byComparison_[cond.comparisonId] = {&po, cond.varIndex};
  }
}

void Coordinator::unwirePolicy(PolicyObject& po) {
  for (const policy::CompiledCondition& cond : po.compiled.conditions) {
    if (Sensor* sensor = registry_.sensor(cond.sensorId)) {
      sensor->removeComparison(cond.comparisonId);
    }
    byComparison_.erase(cond.comparisonId);
  }
  if (po.repeatEvent != sim::kInvalidEvent) {
    sim_.cancel(po.repeatEvent);
    po.repeatEvent = sim::kInvalidEvent;
  }
}

bool Coordinator::removePolicy(const std::string& policyId) {
  for (auto it = policies_.begin(); it != policies_.end(); ++it) {
    if ((*it)->compiled.policyId == policyId) {
      unwirePolicy(**it);
      policies_.erase(it);
      return true;
    }
  }
  return false;
}

void Coordinator::clearPolicies() {
  for (const auto& po : policies_) unwirePolicy(*po);
  policies_.clear();
}

bool Coordinator::hasPolicy(const std::string& policyId) const {
  for (const auto& po : policies_) {
    if (po->compiled.policyId == policyId) return true;
  }
  return false;
}

bool Coordinator::isViolated(const std::string& policyId) const {
  for (const auto& po : policies_) {
    if (po->compiled.policyId == policyId) return po->violated;
  }
  return false;
}

void Coordinator::attachControlQueue(osim::MessageQueue& queue) {
  queue.setReceiver([this](const osim::MessageQueue::Datagram& d) {
    ControlCommand command;
    if (!ControlCommand::parse(d.payload, command)) {
      ++controlsRejected_;
      sim_.warn("coordinator",
                [&] { return "unparseable control command: " + d.payload; });
      return;
    }
    executeControl(command);
  });
}

bool Coordinator::executeControl(const ControlCommand& command) {
  const auto reject = [this](const std::string& why) {
    ++controlsRejected_;
    sim_.warn("coordinator",
              [&] { return "control command rejected: " + why; });
    return false;
  };
  switch (command.kind) {
    case ControlCommand::Kind::kAdapt: {
      Actuator* actuator = registry_.actuator(command.target);
      if (actuator == nullptr) {
        return reject("unknown actuator " + command.target);
      }
      actuator->invoke(command.args);
      break;
    }
    case ControlCommand::Kind::kSetThreshold: {
      // Locate the sensor holding this comparison through the policy set.
      const auto it = byComparison_.find(command.comparisonId);
      if (it == byComparison_.end()) {
        return reject("unknown comparison id " +
                      std::to_string(command.comparisonId));
      }
      Sensor* owner = nullptr;
      for (const policy::CompiledCondition& cond :
           it->second.first->compiled.conditions) {
        if (cond.comparisonId == command.comparisonId) {
          owner = registry_.sensor(cond.sensorId);
          break;
        }
      }
      if (owner == nullptr ||
          !owner->updateThreshold(command.comparisonId, command.value)) {
        return reject("comparison has no live sensor");
      }
      break;
    }
    case ControlCommand::Kind::kEnableSensor: {
      Sensor* sensor = registry_.sensor(command.target);
      if (sensor == nullptr) return reject("unknown sensor " + command.target);
      sensor->setEnabled(command.enable);
      break;
    }
    case ControlCommand::Kind::kSetTick: {
      Sensor* sensor = registry_.sensor(command.target);
      if (sensor == nullptr) return reject("unknown sensor " + command.target);
      sensor->setTickInterval(command.tickMicros);
      break;
    }
    case ControlCommand::Kind::kRemovePolicy:
      if (!removePolicy(command.target)) {
        return reject("unknown policy " + command.target);
      }
      break;
  }
  ++controlsExecuted_;
  return true;
}

void Coordinator::onAlarm(Sensor& sensor, int comparisonId, bool holds) {
  // Section 5.2: map the alarm report (via the internal comparison id) to the
  // boolean variable, set it, and re-evaluate the policy's expression.
  const auto it = byComparison_.find(comparisonId);
  if (it == byComparison_.end()) return;  // stale comparison of a removed policy
  PolicyObject* po = it->second.first;
  const int varIndex = it->second.second;
  if (varIndex < 0 || varIndex >= static_cast<int>(po->vars.size())) return;
  po->vars[static_cast<std::size_t>(varIndex)] = holds;
  // Claim the sensor's freshly-minted episode root (invalid unless this
  // alarm is a new violation under an attached observer). evaluate() adopts
  // it on a violation transition; otherwise we close it here — an alarm that
  // does not flip the policy expression is a dead-end episode.
  pendingAlarmCtx_ = sensor.claimAlarmContext();
  evaluate(*po);
  if (pendingAlarmCtx_.valid()) {
    if (sim::SpanObserver* o = sim_.observer()) {
      o->endSpan(sim_.now(), pendingAlarmCtx_);
    }
    pendingAlarmCtx_ = sim::TraceContext{};
  }
}

void Coordinator::onSensorAdded(Sensor& sensor) {
  // Re-arm every installed condition bound to the arriving id. byComparison_
  // still maps the comparison ids (removal keeps them: the policy object
  // never left), so alarms resume flowing into the same variables.
  bool any = false;
  for (const auto& po : policies_) {
    for (const policy::CompiledCondition& cond : po->compiled.conditions) {
      if (cond.sensorId != sensor.id()) continue;
      sensor.installComparison(cond.op, cond.value, cond.comparisonId);
      sensor.setAlarmHandler([this](Sensor& s, int comparisonId, bool holds) {
        onAlarm(s, comparisonId, holds);
      });
      byComparison_[cond.comparisonId] = {po.get(), cond.varIndex};
      any = true;
    }
  }
  if (any) {
    ++sensorsAttached_;
    sim_.info("coordinator",
              [&] { return "sensor " + sensor.id() + " attached (hotplug)"; });
  }
}

void Coordinator::onSensorRemoved(Sensor& sensor) {
  std::vector<PolicyObject*> affected;
  for (const auto& po : policies_) {
    bool touched = false;
    for (const policy::CompiledCondition& cond : po->compiled.conditions) {
      if (cond.sensorId != sensor.id()) continue;
      sensor.removeComparison(cond.comparisonId);
      if (cond.varIndex >= 0 &&
          cond.varIndex < static_cast<int>(po->vars.size())) {
        po->vars[static_cast<std::size_t>(cond.varIndex)] = true;  // optimistic
      }
      touched = true;
    }
    if (touched) affected.push_back(po.get());
  }
  if (affected.empty()) return;
  ++sensorsDetached_;
  sim_.info("coordinator",
            [&] { return "sensor " + sensor.id() + " detached (hotplug)"; });
  // A violation held open solely by the departed sensor clears here, which
  // sends the clear report the manager needs to retract the stale facts.
  for (PolicyObject* po : affected) evaluate(*po);
}

void Coordinator::evaluate(PolicyObject& po) {
  const bool satisfied = po.compiled.expression.evaluate(po.vars);
  const bool violated = !satisfied;
  if (violated == po.violated) return;  // no transition
  po.violated = violated;

  sim::SpanObserver* o = sim_.observer();
  if (violated) {
    po.episodeStart = sim_.now();
    if (o != nullptr) {
      // Adopt the sensor's root span so detection and reaction share one
      // trace; a violation raised without a sensor span (e.g. re-pushed
      // policies) roots a fresh trace here.
      po.episodeCtx = pendingAlarmCtx_.valid()
                          ? pendingAlarmCtx_
                          : o->beginTrace(sim_.now(),
                                          "episode:" + po.compiled.policyId,
                                          "coordinator:" + hostName_);
      pendingAlarmCtx_ = sim::TraceContext{};
      o->annotate(po.episodeCtx, "policy", po.compiled.policyId);
      o->instant(sim_.now(), po.episodeCtx, "violation", "coordinator");
    }
  }

  sendTransitionReport(po);

  if (violated) {
    ++violations_;
    if (repeatInterval_ > 0 && po.repeatEvent == sim::kInvalidEvent) {
      scheduleRepeat(po);
    }
  } else {
    ++clears_;
    if (po.repeatEvent != sim::kInvalidEvent) {
      sim_.cancel(po.repeatEvent);
      po.repeatEvent = sim::kInvalidEvent;
    }
    // Reaction latency: violation transition -> clear transition, on the
    // simulation clock. Recorded whether or not tracing is on (a histogram
    // add schedules nothing and draws no randomness).
    reactionLatency_.record(static_cast<double>(sim_.now() - po.episodeStart));
    if (po.episodeCtx.valid()) {
      if (o != nullptr) {
        o->instant(sim_.now(), po.episodeCtx, "recovered", "coordinator");
        o->endSpan(sim_.now(), po.episodeCtx);
      }
      po.episodeCtx = sim::TraceContext{};
    }
  }
}

void Coordinator::sendTransitionReport(PolicyObject& po) {
  ViolationReport report;
  report.policyId = po.compiled.policyId;
  report.pid = pid_;
  report.hostName = hostName_;
  report.executable = executable_;
  report.userRole = userRole_;
  report.violated = po.violated;
  report.context = po.episodeCtx;  // invalid (and unserialized) when untraced

  // The do-list runs on violation; on return to compliance we gather the
  // same sensor readings (so the manager can decay its corrective actions)
  // but do not re-run actuators.
  executeDoList(po, report, /*runActuators=*/po.violated);
}

void Coordinator::scheduleRepeat(PolicyObject& po) {
  po.repeatEvent = sim_.every(repeatInterval_, [this, &po] {
    if (!po.violated) {
      // Safety net: evaluate() cancels on the clear transition, but a policy
      // flipped without a transition report must not keep repeating.
      sim_.cancel(po.repeatEvent);
      po.repeatEvent = sim::kInvalidEvent;
      return;
    }
    // Still violated: re-run the do-list with fresh readings so the manager
    // can iterate toward a suitable allocation (Section 2).
    sendTransitionReport(po);
  });
}

void Coordinator::executeDoList(PolicyObject& po, ViolationReport& report,
                                bool runActuators) {
  bool notified = false;
  for (const policy::PolicyAction& action : po.compiled.actions) {
    switch (action.kind) {
      case policy::PolicyAction::Kind::kSensorRead: {
        Sensor* sensor = registry_.sensor(action.target);
        if (sensor == nullptr) {
          sim_.warn("coordinator", [&] {
            return "do-list reads unknown sensor " + action.target;
          });
          break;
        }
        // read() returns a character string (Section 5.2); the coordinator
        // converts it for the report payload.
        const std::string text = sensor->read();
        const std::string name =
            action.arguments.empty() ? sensor->attribute() : action.arguments[0];
        report.metrics.emplace_back(name, std::strtod(text.c_str(), nullptr));
        break;
      }
      case policy::PolicyAction::Kind::kNotifyHostManager:
        deliver(report);
        notified = true;
        break;
      case policy::PolicyAction::Kind::kActuatorInvoke: {
        if (!runActuators) break;
        Actuator* actuator = registry_.actuator(action.target);
        if (actuator == nullptr) {
          sim_.warn("coordinator", [&] {
            return "do-list invokes unknown actuator " + action.target;
          });
          break;
        }
        actuator->invoke(action.arguments);
        break;
      }
    }
  }
  // A clear transition is always worth reporting even if the policy's
  // do-list has no explicit notify (the manager needs it to decay boosts).
  if (!notified && !report.violated) deliver(report);
}

void Coordinator::deliver(const ViolationReport& report) {
  if (!notify_) return;
  if (buffer_.empty() && notify_(report)) return;

  // VOLATILE durability (contract plane): the process offers no persistence
  // across manager outages — drop rather than store.
  if (!storeAndForward_) {
    ++volatileDrops_;
    return;
  }

  // The manager is unreachable (or older reports are already queued and
  // must stay in order): store locally and retransmit on recovery.
  while (buffer_.size() >= bufferCap_ && !buffer_.empty()) {
    buffer_.pop_front();
    ++bufferOverflows_;
  }
  buffer_.push_back(report);
  if (flushEvent_ == sim::kInvalidEvent) {
    flushEvent_ = sim_.every(flushInterval_, [this] { flushBuffered(); });
  }
}

void Coordinator::flushBuffered() {
  while (!buffer_.empty()) {
    if (!notify_(buffer_.front())) return;  // still unreachable; keep waiting
    buffer_.pop_front();
    ++retransmitted_;
  }
  sim_.cancel(flushEvent_);
  flushEvent_ = sim::kInvalidEvent;
}

}  // namespace softqos::instrument
