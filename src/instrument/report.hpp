// The violation/clear report a coordinator sends to the QoS Host Manager,
// with a line-oriented wire encoding for message queues and RPC bodies.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "sim/span.hpp"

namespace softqos::instrument {

struct ViolationReport {
  std::string policyId;
  std::uint32_t pid = 0;
  std::string hostName;
  std::string executable;
  std::string userRole;
  bool violated = true;  // false: the policy returned to compliance
  /// Metric values gathered by the policy's sensor-read actions
  /// (e.g. frame_rate, jitter_rate, buffer_size from Example 1).
  std::vector<std::pair<std::string, double>> metrics;
  /// Causal-trace context of the violation episode. Invalid (the default)
  /// when observability is off; only a valid context is serialized, so the
  /// wire form of an unobserved report is byte-identical to the seed format.
  sim::TraceContext context;

  [[nodiscard]] std::optional<double> metric(const std::string& name) const;

  /// Wire format:
  /// QOSRPT|policy|pid|host|exec|role|V or C|name=value;name=value
  /// with an optional trailing |traceId:spanId when a trace context rides
  /// along (observability enabled).
  [[nodiscard]] std::string serialize() const;
  static std::optional<ViolationReport> parse(const std::string& text);
};

}  // namespace softqos::instrument
