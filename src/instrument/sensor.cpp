#include "instrument/sensor.hpp"

#include <cstdlib>
#include <sstream>

namespace softqos::instrument {

Sensor::Sensor(sim::Simulation& simulation, std::string id, std::string attribute)
    : sim_(simulation), id_(std::move(id)), attribute_(std::move(attribute)) {}

Sensor::~Sensor() {
  if (tickEvent_ != sim::kInvalidEvent) sim_.cancel(tickEvent_);
}

void Sensor::setEnabled(bool enabled) {
  if (enabled_ == enabled) return;
  enabled_ = enabled;
  if (!enabled_ && tickEvent_ != sim::kInvalidEvent) {
    sim_.cancel(tickEvent_);
    tickEvent_ = sim::kInvalidEvent;
  }
  if (enabled_ && tickInterval_ > 0) scheduleTick();
}

void Sensor::init(const std::string& thresholdText,
                  const std::string& comparatorText, int comparisonId) {
  // The sensor is responsible for the string->type conversion (Section 5.2).
  const double value = std::strtod(thresholdText.c_str(), nullptr);
  installComparison(policy::parsePolicyCmp(comparatorText), value, comparisonId);
}

void Sensor::installComparison(policy::PolicyCmp op, double value,
                               int comparisonId) {
  removeComparison(comparisonId);
  InstalledComparison installed;
  installed.comparisonId = comparisonId;
  installed.op = op;
  installed.value = value;
  comparisons_.push_back(installed);
}

bool Sensor::removeComparison(int comparisonId) {
  for (auto it = comparisons_.begin(); it != comparisons_.end(); ++it) {
    if (it->comparisonId == comparisonId) {
      comparisons_.erase(it);
      return true;
    }
  }
  return false;
}

void Sensor::clearComparisons() { comparisons_.clear(); }

bool Sensor::setHysteresis(int comparisonId, double band) {
  for (InstalledComparison& c : comparisons_) {
    if (c.comparisonId == comparisonId) {
      c.hysteresis = band < 0 ? 0 : band;
      return true;
    }
  }
  return false;
}

bool Sensor::updateThreshold(int comparisonId, double newValue) {
  for (InstalledComparison& c : comparisons_) {
    if (c.comparisonId == comparisonId) {
      c.value = newValue;
      // Re-evaluate immediately so a threshold change takes effect without
      // waiting for the next observation.
      if (enabled_ && observations_ > 0) evaluate(currentValue());
      return true;
    }
  }
  return false;
}

std::string Sensor::read() const {
  std::ostringstream out;
  out << currentValue();
  return out.str();
}

void Sensor::setTickInterval(sim::SimDuration interval) {
  tickInterval_ = interval;
  if (tickEvent_ != sim::kInvalidEvent) {
    sim_.cancel(tickEvent_);
    tickEvent_ = sim::kInvalidEvent;
  }
  if (enabled_ && tickInterval_ > 0) scheduleTick();
}

void Sensor::scheduleTick() {
  // One periodic event per sensor; disabling or re-tuning the cadence
  // cancels/re-arms it, so the closure here never needs a liveness check.
  tickEvent_ = sim_.every(tickInterval_, [this] {
    onTick();
    evaluate(currentValue());
  });
}

void Sensor::observe(double value) {
  if (!enabled_) return;
  ++observations_;
  evaluate(value);
}

void Sensor::evaluate(double value) {
  for (InstalledComparison& c : comparisons_) {
    bool holds =
        policy::PrimitiveComparison{attribute_, c.op, c.value}.holds(value);
    if (holds && !c.lastHolds && c.hysteresis > 0) {
      // Alarmed with a hysteresis band: only clear once the value recovers
      // past the threshold by the band, so values hovering at the threshold
      // do not flap alarm/clear on every sample.
      double rearm = c.value;
      switch (c.op) {
        case policy::PolicyCmp::kGe:
        case policy::PolicyCmp::kGt:
          rearm = c.value + c.hysteresis;
          break;
        case policy::PolicyCmp::kLe:
        case policy::PolicyCmp::kLt:
          rearm = c.value - c.hysteresis;
          break;
        default:
          break;  // equality comparators: band has no direction
      }
      holds = policy::PrimitiveComparison{attribute_, c.op, rearm}.holds(value);
    }
    if (holds == c.lastHolds) continue;
    c.lastHolds = holds;
    if (holds) {
      ++clears_;
    } else {
      ++alarms_;
      // Detection is where a causal chain is born: the violating sample
      // roots the episode trace. The handler claims the context; an
      // unclaimed span is closed below so it never dangles open.
      if (sim::SpanObserver* o = sim_.observer()) {
        alarmContext_ = o->beginTrace(sim_.now(), "episode:" + attribute_,
                                      "sensor:" + id_);
        o->annotate(alarmContext_, "sensor", id_);
        o->annotate(alarmContext_, "value", read());
      }
    }
    if (alarmHandler_) alarmHandler_(*this, c.comparisonId, holds);
    if (alarmContext_.valid()) {
      if (sim::SpanObserver* o = sim_.observer()) {
        o->endSpan(sim_.now(), alarmContext_);
      }
      alarmContext_ = sim::TraceContext{};
    }
  }
}

}  // namespace softqos::instrument
