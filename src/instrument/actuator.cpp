#include "instrument/actuator.hpp"

#include <algorithm>

namespace softqos::instrument {

void QualityLevelActuator::invoke(const std::vector<std::string>& args) {
  countInvocation();
  int delta = 0;
  if (!args.empty()) {
    if (args[0] == "down") {
      delta = -1;
    } else if (args[0] == "up") {
      delta = 1;
    }
  }
  level_ = std::clamp(level_ + delta, minLevel_, maxLevel_);
}

}  // namespace softqos::instrument
