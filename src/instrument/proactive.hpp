// Proactive quality of service (paper Section 10, future work iv): "where
// potential problems are detected and handled before they actually occur".
//
// A TrendMonitor samples a sensor periodically, fits a least-squares line
// over a sliding window, and extrapolates `horizon` ahead. When the
// *predicted* value violates the threshold while the *current* value still
// complies, it fires a predicted-violation callback — giving managers a
// head start on the allocation search.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "instrument/sensor.hpp"
#include "policy/condition.hpp"
#include "sim/simulation.hpp"

namespace softqos::instrument {

class TrendMonitor {
 public:
  struct Config {
    sim::SimDuration sampleInterval = sim::msec(250);
    std::size_t windowSamples = 8;       // regression window
    sim::SimDuration horizon = sim::sec(2);  // prediction lookahead
  };

  /// Fired once per predicted-violation episode (re-armed when the
  /// prediction returns to compliance).
  using PredictHandler = std::function<void(double current, double predicted)>;

  /// Watch `sensor` against `op threshold` (the *requirement*, violated when
  /// the comparison stops holding).
  TrendMonitor(sim::Simulation& simulation, Sensor& sensor,
               policy::PolicyCmp op, double threshold, Config config,
               PredictHandler onPredictedViolation);
  ~TrendMonitor();

  TrendMonitor(const TrendMonitor&) = delete;
  TrendMonitor& operator=(const TrendMonitor&) = delete;

  void start();
  void stop();
  [[nodiscard]] bool running() const { return event_ != sim::kInvalidEvent; }

  /// Latest extrapolated value (current value until the window fills).
  [[nodiscard]] double predictedValue() const { return predicted_; }

  /// Slope of the fitted trend, in value units per second.
  [[nodiscard]] double slopePerSecond() const { return slopePerSecond_; }

  [[nodiscard]] std::uint64_t predictionsFired() const { return fired_; }
  [[nodiscard]] std::uint64_t samplesTaken() const { return samples_; }

 private:
  void sample();

  sim::Simulation& sim_;
  Sensor& sensor_;
  policy::PolicyCmp op_;
  double threshold_;
  Config config_;
  PredictHandler handler_;

  std::deque<std::pair<sim::SimTime, double>> window_;
  double predicted_ = 0.0;
  double slopePerSecond_ = 0.0;
  bool armed_ = true;  // one firing per episode
  sim::EventId event_ = sim::kInvalidEvent;
  std::uint64_t fired_ = 0;
  std::uint64_t samples_ = 0;
};

}  // namespace softqos::instrument
