#include "instrument/sensors.hpp"

#include <cmath>
#include <utility>

namespace softqos::instrument {

FrameRateSensor::FrameRateSensor(sim::Simulation& simulation, std::string id,
                                 std::string attribute,
                                 sim::SimDuration window,
                                 sim::SimDuration minGap)
    : Sensor(simulation, std::move(id), std::move(attribute)),
      window_(window),
      minGap_(minGap) {
  setTickInterval(window / 4);
}

void FrameRateSensor::onFrameDisplayed() {
  const sim::SimTime now = sim().now();
  // Spike filter (Example 2 step iii): frames delivered in an unrealistic
  // burst (a queue flush) would overstate the rate; drop them.
  if (lastFrameAt_ >= 0 && now - lastFrameAt_ < minGap_) {
    ++spikes_;
    return;
  }
  lastFrameAt_ = now;
  ++frames_;
  timestamps_.push_back(now);
  prune();
  observe(currentValue());
}

void FrameRateSensor::prune() {
  const sim::SimTime cutoff = sim().now() - window_;
  while (!timestamps_.empty() && timestamps_.front() < cutoff) {
    timestamps_.pop_front();
  }
}

double FrameRateSensor::currentValue() const {
  const sim::SimTime cutoff = sim().now() - window_;
  std::size_t count = 0;
  for (auto it = timestamps_.rbegin(); it != timestamps_.rend(); ++it) {
    if (*it < cutoff) break;
    ++count;
  }
  return static_cast<double>(count) / sim::toSeconds(window_);
}

JitterSensor::JitterSensor(sim::Simulation& simulation, std::string id,
                           std::string attribute, sim::SimDuration nominalGap,
                           std::size_t historyLen)
    : Sensor(simulation, std::move(id), std::move(attribute)),
      nominalGap_(nominalGap),
      historyLen_(historyLen) {}

void JitterSensor::onFrameDisplayed() {
  const sim::SimTime now = sim().now();
  if (lastFrameAt_ >= 0) {
    const double gap = static_cast<double>(now - lastFrameAt_);
    const double nominal = static_cast<double>(nominalGap_);
    deviations_.push_back(std::abs(gap - nominal) / nominal);
    while (deviations_.size() > historyLen_) deviations_.pop_front();
    observe(currentValue());
  }
  lastFrameAt_ = now;
}

double JitterSensor::currentValue() const {
  if (deviations_.empty()) return 0.0;
  double sum = 0.0;
  for (const double d : deviations_) sum += d;
  return sum / static_cast<double>(deviations_.size());
}

SourceSensor::SourceSensor(sim::Simulation& simulation, std::string id,
                           std::string attribute,
                           std::function<double()> source)
    : Sensor(simulation, std::move(id), std::move(attribute)),
      source_(std::move(source)) {
  setTickInterval(sim::msec(100));
}

CpuShareSensor::CpuShareSensor(sim::Simulation& simulation, std::string id,
                               std::string attribute,
                               const osim::Process& process,
                               sim::SimDuration window)
    : Sensor(simulation, std::move(id), std::move(attribute)),
      process_(process) {
  lastAt_ = simulation.now();
  lastCpu_ = process.cpuTime();
  setTickInterval(window);
}

void CpuShareSensor::onTick() {
  const sim::SimTime now = sim().now();
  const sim::SimDuration cpu = process_.cpuTime();
  const sim::SimDuration wall = now - lastAt_;
  if (wall > 0) {
    share_ = static_cast<double>(cpu - lastCpu_) / static_cast<double>(wall);
  }
  lastAt_ = now;
  lastCpu_ = cpu;
}

std::unique_ptr<SourceSensor> makeBufferLengthSensor(
    sim::Simulation& simulation, std::string id, std::string attribute,
    const std::shared_ptr<osim::Socket>& socket) {
  return std::make_unique<SourceSensor>(
      simulation, std::move(id), std::move(attribute),
      [socket] { return static_cast<double>(socket->bufferBytes()); });
}

}  // namespace softqos::instrument
