#include "instrument/timer_wheel.hpp"

#include <stdexcept>

namespace softqos::instrument {

SensorTimerWheel::SensorTimerWheel(sim::Simulation& simulation,
                                   sim::SimDuration granularity,
                                   std::size_t slots)
    : sim_(simulation), granularity_(granularity), slots_(slots) {
  if (granularity <= 0) {
    throw std::invalid_argument("SensorTimerWheel: granularity must be > 0");
  }
  if (slots == 0) {
    throw std::invalid_argument("SensorTimerWheel: need at least one slot");
  }
}

SensorTimerWheel::~SensorTimerWheel() {
  detachRegistry();
  stop();
}

void SensorTimerWheel::attachRegistry(SensorRegistry& registry) {
  detachRegistry();
  registry_ = &registry;
  registry.addListener(this);
  // Adopt the sensors already present (those with a periodic tick).
  for (const std::string& id : registry.sensorIds()) {
    if (Sensor* s = registry.sensor(id)) onSensorAdded(*s);
  }
}

void SensorTimerWheel::detachRegistry() {
  if (registry_ == nullptr) return;
  registry_->removeListener(this);
  registry_ = nullptr;
  for (const auto& [sensor, token] : adopted_) remove(token);
  adopted_.clear();
}

void SensorTimerWheel::onSensorAdded(Sensor& sensor) {
  if (adopted_.count(&sensor) != 0) return;  // already on the wheel
  const Token token = adopt(sensor);
  if (token != kInvalidToken) adopted_[&sensor] = token;
}

void SensorTimerWheel::onSensorRemoved(Sensor& sensor) {
  const auto it = adopted_.find(&sensor);
  if (it == adopted_.end()) return;
  remove(it->second);
  adopted_.erase(it);
}

SensorTimerWheel::Token SensorTimerWheel::add(Sensor& sensor,
                                              sim::SimDuration interval) {
  if (interval <= 0) {
    throw std::invalid_argument("SensorTimerWheel::add: interval must be > 0");
  }
  // Round the interval UP to whole ticks so a wheel never polls faster than
  // the requested cadence.
  const std::uint64_t periodTicks = static_cast<std::uint64_t>(
      (interval + granularity_ - 1) / granularity_);

  std::size_t index;
  if (!freeEntries_.empty()) {
    index = freeEntries_.back();
    freeEntries_.pop_back();
  } else {
    index = entries_.size();
    entries_.emplace_back();
  }
  Entry& e = entries_[index];
  e.sensor = &sensor;
  e.periodTicks = periodTicks;
  e.dueTick = tick_ + periodTicks;
  e.token = nextToken_++;
  e.live = true;
  bucket(index);
  ++live_;
  if (event_ == sim::kInvalidEvent) start();
  return e.token;
}

SensorTimerWheel::Token SensorTimerWheel::adopt(Sensor& sensor) {
  const sim::SimDuration interval = sensor.tickInterval();
  if (interval <= 0) return kInvalidToken;
  sensor.setTickInterval(0);  // the wheel drives the cadence from here on
  return add(sensor, interval);
}

bool SensorTimerWheel::remove(Token token) {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    Entry& e = entries_[i];
    if (e.live && e.token == token) {
      e.live = false;
      e.sensor = nullptr;
      --live_;
      // The slot entry is dropped lazily when its slot is next visited.
      if (live_ == 0) stop();
      return true;
    }
  }
  return false;
}

void SensorTimerWheel::bucket(std::size_t entryIndex) {
  slots_[static_cast<std::size_t>(entries_[entryIndex].dueTick %
                                  slots_.size())]
      .push_back(entryIndex);
}

void SensorTimerWheel::start() {
  event_ = sim_.every(granularity_, [this] { onTick(); });
}

void SensorTimerWheel::stop() {
  if (event_ != sim::kInvalidEvent) {
    sim_.cancel(event_);
    event_ = sim::kInvalidEvent;
  }
}

void SensorTimerWheel::onTick() {
  ++tick_;
  ++ticks_;
  std::vector<std::size_t>& slot = slots_[tick_ % slots_.size()];
  // Detach the slot before visiting: polls may re-enter the wheel (alarm
  // handlers adding/removing sensors) and re-bucketing may target this very
  // slot, so the live slot vector must stay safe to append to.
  std::vector<std::size_t> visiting = std::move(slot);
  slot.clear();
  // Visit in insertion order (deterministic); entries due on a later round
  // of the wheel go straight back, dead ones are reaped.
  for (const std::size_t index : visiting) {
    Entry& e = entries_[index];
    if (!e.live) {
      freeEntries_.push_back(index);
      continue;
    }
    if (e.dueTick != tick_) {
      slot.push_back(index);  // same slot, future round
      continue;
    }
    e.sensor->pollNow();
    ++polls_;
    // pollNow() may have removed this entry from the wheel.
    if (e.live) {
      e.dueTick = tick_ + e.periodTicks;
      bucket(index);
    } else {
      freeEntries_.push_back(index);
    }
  }
}

}  // namespace softqos::instrument
