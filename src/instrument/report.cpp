#include "instrument/report.hpp"

#include <cstdlib>
#include <sstream>

namespace softqos::instrument {

namespace {

std::vector<std::string> split(const std::string& s, char delim,
                               std::size_t maxParts) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    if (maxParts != 0 && out.size() + 1 == maxParts) {
      out.push_back(s.substr(start));
      return out;
    }
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

}  // namespace

std::optional<double> ViolationReport::metric(const std::string& name) const {
  for (const auto& [k, v] : metrics) {
    if (k == name) return v;
  }
  return std::nullopt;
}

std::string ViolationReport::serialize() const {
  std::ostringstream out;
  out << "QOSRPT|" << policyId << "|" << pid << "|" << hostName << "|"
      << executable << "|" << userRole << "|" << (violated ? "V" : "C") << "|";
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    if (i != 0) out << ";";
    out << metrics[i].first << "=" << metrics[i].second;
  }
  if (context.valid()) out << "|" << context.serialize();
  return out.str();
}

std::optional<ViolationReport> ViolationReport::parse(const std::string& text) {
  const auto parts = split(text, '|', 9);
  if ((parts.size() != 8 && parts.size() != 9) || parts[0] != "QOSRPT") {
    return std::nullopt;
  }
  ViolationReport r;
  r.policyId = parts[1];
  r.pid = static_cast<std::uint32_t>(std::strtoul(parts[2].c_str(), nullptr, 10));
  r.hostName = parts[3];
  r.executable = parts[4];
  r.userRole = parts[5];
  if (parts[6] == "V") {
    r.violated = true;
  } else if (parts[6] == "C") {
    r.violated = false;
  } else {
    return std::nullopt;
  }
  if (!parts[7].empty()) {
    for (const std::string& kv : split(parts[7], ';', 0)) {
      const std::size_t eq = kv.find('=');
      if (eq == std::string::npos) return std::nullopt;
      r.metrics.emplace_back(kv.substr(0, eq),
                             std::strtod(kv.c_str() + eq + 1, nullptr));
    }
  }
  if (parts.size() == 9) r.context = sim::TraceContext::parse(parts[8]);
  return r;
}

}  // namespace softqos::instrument
