// Sensors collect metric information inside instrumented processes
// (Section 5.1). A sensor monitors one attribute; policies install primitive
// comparisons on it (via init, with an internal comparison id); the sensor
// reports *transitions* — an alarm when a comparison stops holding, a clear
// when it holds again — to the coordinator.
//
// Faithful to Section 5.2, the external value interface is character-based:
// init() takes the threshold as a string and read() returns the value as a
// string; the sensor performs the conversions.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "policy/condition.hpp"
#include "sim/simulation.hpp"

namespace softqos::instrument {

class Sensor {
 public:
  /// (sensor, comparisonId, holds): holds=false is an alarm report,
  /// holds=true a clear report.
  using AlarmHandler = std::function<void(Sensor&, int comparisonId, bool holds)>;

  Sensor(sim::Simulation& simulation, std::string id, std::string attribute);
  virtual ~Sensor();

  Sensor(const Sensor&) = delete;
  Sensor& operator=(const Sensor&) = delete;

  [[nodiscard]] const std::string& id() const { return id_; }
  [[nodiscard]] const std::string& attribute() const { return attribute_; }

  /// Sensors can be enabled/disabled at run time (Section 5.1). A disabled
  /// sensor ignores observations and stops its periodic tick.
  void setEnabled(bool enabled);
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Character-form installation (Section 5.2): threshold string + comparator
  /// string + the coordinator's internal comparison id.
  void init(const std::string& thresholdText, const std::string& comparatorText,
            int comparisonId);

  /// Typed installation used by the coordinator's compiled policies.
  void installComparison(policy::PolicyCmp op, double value, int comparisonId);
  bool removeComparison(int comparisonId);
  void clearComparisons();
  [[nodiscard]] std::size_t comparisonCount() const { return comparisons_.size(); }

  /// Thresholds can be changed while the application executes (Section 9).
  bool updateThreshold(int comparisonId, double newValue);

  /// Hysteresis band between alarm and clear: once alarmed, the comparison
  /// re-arms only when the value recovers past the threshold by `band`
  /// (kGe/kGt: value >= threshold + band; kLe/kLt: value <= threshold -
  /// band; equality comparators ignore the band). The alarm edge itself is
  /// unchanged. Kills alarm/clear flapping when a fleet of sensors hovers at
  /// its thresholds. Returns false for an unknown comparison id; 0 (the
  /// default) restores plain transition reporting.
  bool setHysteresis(int comparisonId, double band);

  /// Character-form read (Section 5.2).
  [[nodiscard]] std::string read() const;

  /// Current value of the monitored attribute.
  [[nodiscard]] virtual double currentValue() const = 0;

  void setAlarmHandler(AlarmHandler handler) { alarmHandler_ = std::move(handler); }

  /// Periodic self-evaluation cadence; lets the sensor notice conditions that
  /// only manifest as *absence* of probe activity (e.g. a stalled stream).
  /// Zero disables the tick. Adjustable at run time (Section 5.1).
  void setTickInterval(sim::SimDuration interval);
  [[nodiscard]] sim::SimDuration tickInterval() const { return tickInterval_; }

  /// Drive one evaluation cycle from an external scheduler (a
  /// SensorTimerWheel that batches many sensors onto one kernel event);
  /// equivalent to one firing of the internal periodic tick. A disabled
  /// sensor ignores the poll.
  void pollNow() {
    if (!enabled_) return;
    onTick();
    evaluate(currentValue());
  }

  [[nodiscard]] std::uint64_t alarmsRaised() const { return alarms_; }
  [[nodiscard]] std::uint64_t clearsRaised() const { return clears_; }
  [[nodiscard]] std::uint64_t observations() const { return observations_; }

  /// Causal tracing: when an observer is attached, the sensor mints a root
  /// "episode" span the moment it observes a violating sample. The alarm
  /// handler (a Coordinator) claims it to carry the context through the
  /// management loop; if nobody claims it, the sensor closes it right after
  /// the handler returns. Returns an invalid context when there is nothing
  /// to claim.
  [[nodiscard]] sim::TraceContext claimAlarmContext() {
    const sim::TraceContext ctx = alarmContext_;
    alarmContext_ = sim::TraceContext{};
    return ctx;
  }

 protected:
  /// Subclasses call this on every new measurement.
  void observe(double value);

  /// Hook for tick-driven sensors to refresh a derived value before the
  /// comparisons are evaluated (default: no-op).
  virtual void onTick() {}

  [[nodiscard]] sim::Simulation& sim() const { return sim_; }

 private:
  struct InstalledComparison {
    int comparisonId = 0;
    policy::PolicyCmp op = policy::PolicyCmp::kEq;
    double value = 0.0;
    double hysteresis = 0.0;  // clear band above/below the threshold
    bool lastHolds = true;    // optimistic until the first observation
  };

  void evaluate(double value);
  void scheduleTick();

  sim::Simulation& sim_;
  std::string id_;
  std::string attribute_;
  bool enabled_ = true;
  std::vector<InstalledComparison> comparisons_;
  AlarmHandler alarmHandler_;
  sim::TraceContext alarmContext_;
  sim::SimDuration tickInterval_ = 0;
  sim::EventId tickEvent_ = sim::kInvalidEvent;
  std::uint64_t alarms_ = 0;
  std::uint64_t clears_ = 0;
  std::uint64_t observations_ = 0;
};

}  // namespace softqos::instrument
