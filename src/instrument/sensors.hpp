// Concrete sensors: gauges, counters, frame rate (Example 2), jitter, and
// source-backed sensors such as the socket-buffer sensor of Example 5.
#pragma once

#include <deque>
#include <functional>
#include <memory>

#include "instrument/sensor.hpp"
#include "osim/socket.hpp"

namespace softqos::instrument {

/// Stores the last explicitly observed value (probe calls set()).
class GaugeSensor : public Sensor {
 public:
  using Sensor::Sensor;

  /// Probe entry point.
  void set(double value) {
    last_ = value;
    observe(value);
  }

  [[nodiscard]] double currentValue() const override { return last_; }

 private:
  double last_ = 0.0;
};

/// Monotonic event counter (probe increments).
class CounterSensor : public Sensor {
 public:
  using Sensor::Sensor;

  /// Probe entry point.
  void increment(double delta = 1.0) {
    count_ += delta;
    observe(count_);
  }

  [[nodiscard]] double currentValue() const override { return count_; }

 private:
  double count_ = 0.0;
};

/// Frame-rate sensor (paper Example 2): a probe fires after each frame is
/// retrieved, decoded and displayed; the value is frames per second over a
/// sliding window. Unusual spikes — bursts of frames closer together than
/// `minGap` (e.g. a queue flush after a stall) — are filtered out. The
/// periodic tick (Sensor::setTickInterval) lets the sensor notice a stalled
/// stream even though no probes fire.
class FrameRateSensor : public Sensor {
 public:
  FrameRateSensor(sim::Simulation& simulation, std::string id,
                  std::string attribute, sim::SimDuration window = sim::sec(1),
                  sim::SimDuration minGap = sim::msec(2));

  /// Probe entry point: one frame was displayed.
  void onFrameDisplayed();

  [[nodiscard]] double currentValue() const override;
  [[nodiscard]] std::uint64_t framesCounted() const { return frames_; }
  [[nodiscard]] std::uint64_t spikesFiltered() const { return spikes_; }

 private:
  void prune();

  sim::SimDuration window_;
  sim::SimDuration minGap_;
  std::deque<sim::SimTime> timestamps_;
  sim::SimTime lastFrameAt_ = -1;
  std::uint64_t frames_ = 0;
  std::uint64_t spikes_ = 0;
};

/// Jitter sensor: mean relative deviation of inter-frame gaps from the
/// nominal gap, over the last `historyLen` frames. A perfectly periodic
/// stream scores 0; a stalled/irregular one grows past 1.
class JitterSensor : public Sensor {
 public:
  JitterSensor(sim::Simulation& simulation, std::string id,
               std::string attribute, sim::SimDuration nominalGap,
               std::size_t historyLen = 30);

  /// Probe entry point: one frame was displayed.
  void onFrameDisplayed();

  [[nodiscard]] double currentValue() const override;

 private:
  sim::SimDuration nominalGap_;
  std::size_t historyLen_;
  std::deque<double> deviations_;
  sim::SimTime lastFrameAt_ = -1;
};

/// Reads any external observable through a function — the basis for the
/// communication-buffer sensor (Example 5), CPU-load sensors, etc. The
/// periodic tick samples the source and evaluates comparisons.
class SourceSensor : public Sensor {
 public:
  SourceSensor(sim::Simulation& simulation, std::string id,
               std::string attribute, std::function<double()> source);

  [[nodiscard]] double currentValue() const override { return source_(); }

 private:
  std::function<double()> source_;
};

/// Example 5: given a socket (file descriptor), reports the length of the
/// kernel communication buffer in bytes.
std::unique_ptr<SourceSensor> makeBufferLengthSensor(
    sim::Simulation& simulation, std::string id, std::string attribute,
    const std::shared_ptr<osim::Socket>& socket);

/// CPU share of one process over the sampling window (0..1): the observable
/// behind "the server process might not be getting enough cycles"
/// (Section 3.1). Sampled on the sensor tick from the kernel's per-process
/// CPU accounting.
class CpuShareSensor : public Sensor {
 public:
  CpuShareSensor(sim::Simulation& simulation, std::string id,
                 std::string attribute, const osim::Process& process,
                 sim::SimDuration window = sim::msec(500));

  [[nodiscard]] double currentValue() const override { return share_; }

 protected:
  void onTick() override;

 private:
  const osim::Process& process_;
  sim::SimDuration lastCpu_ = 0;
  sim::SimTime lastAt_ = 0;
  double share_ = 0.0;
};

}  // namespace softqos::instrument
