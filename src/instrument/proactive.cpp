#include "instrument/proactive.hpp"

namespace softqos::instrument {

TrendMonitor::TrendMonitor(sim::Simulation& simulation, Sensor& sensor,
                           policy::PolicyCmp op, double threshold,
                           Config config, PredictHandler onPredictedViolation)
    : sim_(simulation),
      sensor_(sensor),
      op_(op),
      threshold_(threshold),
      config_(config),
      handler_(std::move(onPredictedViolation)) {}

TrendMonitor::~TrendMonitor() { stop(); }

void TrendMonitor::start() {
  if (event_ != sim::kInvalidEvent) return;
  event_ = sim_.every(config_.sampleInterval, [this] { sample(); });
}

void TrendMonitor::stop() {
  if (event_ == sim::kInvalidEvent) return;
  sim_.cancel(event_);
  event_ = sim::kInvalidEvent;
}

void TrendMonitor::sample() {
  ++samples_;

  const double current = sensor_.currentValue();
  window_.emplace_back(sim_.now(), current);
  while (window_.size() > config_.windowSamples) window_.pop_front();

  if (window_.size() < 3) {
    predicted_ = current;
    return;
  }

  // Least-squares slope over the window (time in seconds relative to the
  // window start, to keep the arithmetic well-conditioned).
  const double t0 = static_cast<double>(window_.front().first);
  double sumT = 0;
  double sumV = 0;
  double sumTT = 0;
  double sumTV = 0;
  const double n = static_cast<double>(window_.size());
  for (const auto& [t, v] : window_) {
    const double ts = (static_cast<double>(t) - t0) / sim::kSecond;
    sumT += ts;
    sumV += v;
    sumTT += ts * ts;
    sumTV += ts * v;
  }
  const double denom = n * sumTT - sumT * sumT;
  slopePerSecond_ = denom != 0.0 ? (n * sumTV - sumT * sumV) / denom : 0.0;
  predicted_ = current + slopePerSecond_ * sim::toSeconds(config_.horizon);

  const policy::PrimitiveComparison cmp{sensor_.attribute(), op_, threshold_};
  const bool currentOk = cmp.holds(current);
  const bool predictedOk = cmp.holds(predicted_);

  if (currentOk && !predictedOk) {
    if (armed_) {
      armed_ = false;
      ++fired_;
      if (handler_) handler_(current, predicted_);
    }
  } else if (predictedOk) {
    armed_ = true;  // episode over: re-arm
  }
}

}  // namespace softqos::instrument
