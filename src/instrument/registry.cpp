#include "instrument/registry.hpp"

#include <algorithm>

namespace softqos::instrument {

void SensorRegistry::addSensor(std::shared_ptr<Sensor> sensor) {
  const std::string id = sensor->id();
  const auto it = sensors_.find(id);
  if (it == sensors_.end()) {
    order_.push_back(id);
  } else {
    // Replacement: the old sensor departs before the new one arrives, so
    // listeners can migrate comparisons/poll slots between the two.
    std::shared_ptr<Sensor> old = it->second;
    sensors_.erase(it);
    notifyRemoved(*old);
  }
  Sensor& ref = *sensor;
  sensors_[id] = std::move(sensor);
  notifyAdded(ref);
}

std::shared_ptr<Sensor> SensorRegistry::removeSensor(const std::string& id) {
  const auto it = sensors_.find(id);
  if (it == sensors_.end()) return nullptr;
  std::shared_ptr<Sensor> departed = it->second;
  sensors_.erase(it);
  order_.erase(std::remove(order_.begin(), order_.end(), id), order_.end());
  notifyRemoved(*departed);
  return departed;
}

void SensorRegistry::addListener(Listener* listener) {
  if (listener == nullptr) return;
  if (std::find(listeners_.begin(), listeners_.end(), listener) ==
      listeners_.end()) {
    listeners_.push_back(listener);
  }
}

void SensorRegistry::removeListener(Listener* listener) {
  listeners_.erase(
      std::remove(listeners_.begin(), listeners_.end(), listener),
      listeners_.end());
}

void SensorRegistry::notifyAdded(Sensor& sensor) {
  for (Listener* l : std::vector<Listener*>(listeners_)) {
    l->onSensorAdded(sensor);
  }
}

void SensorRegistry::notifyRemoved(Sensor& sensor) {
  for (Listener* l : std::vector<Listener*>(listeners_)) {
    l->onSensorRemoved(sensor);
  }
}

void SensorRegistry::addActuator(std::shared_ptr<Actuator> actuator) {
  actuators_[actuator->id()] = std::move(actuator);
}

Sensor* SensorRegistry::sensor(const std::string& id) const {
  const auto it = sensors_.find(id);
  return it == sensors_.end() ? nullptr : it->second.get();
}

Actuator* SensorRegistry::actuator(const std::string& id) const {
  const auto it = actuators_.find(id);
  return it == actuators_.end() ? nullptr : it->second.get();
}

Sensor* SensorRegistry::sensorForAttribute(const std::string& attribute) const {
  for (const std::string& id : order_) {
    Sensor* s = sensor(id);
    if (s != nullptr && s->attribute() == attribute) return s;
  }
  return nullptr;
}

std::vector<std::string> SensorRegistry::sensorIds() const { return order_; }

}  // namespace softqos::instrument
