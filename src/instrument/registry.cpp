#include "instrument/registry.hpp"

#include <algorithm>

namespace softqos::instrument {

void SensorRegistry::addSensor(std::shared_ptr<Sensor> sensor) {
  const std::string id = sensor->id();
  if (!sensors_.contains(id)) order_.push_back(id);
  sensors_[id] = std::move(sensor);
}

void SensorRegistry::addActuator(std::shared_ptr<Actuator> actuator) {
  actuators_[actuator->id()] = std::move(actuator);
}

Sensor* SensorRegistry::sensor(const std::string& id) const {
  const auto it = sensors_.find(id);
  return it == sensors_.end() ? nullptr : it->second.get();
}

Actuator* SensorRegistry::actuator(const std::string& id) const {
  const auto it = actuators_.find(id);
  return it == actuators_.end() ? nullptr : it->second.get();
}

Sensor* SensorRegistry::sensorForAttribute(const std::string& attribute) const {
  for (const std::string& id : order_) {
    Sensor* s = sensor(id);
    if (s != nullptr && s->attribute() == attribute) return s;
  }
  return nullptr;
}

std::vector<std::string> SensorRegistry::sensorIds() const { return order_; }

}  // namespace softqos::instrument
