// Actuators encapsulate control functions over the instrumented process
// (Section 5.1). The framework uses them for application-level adaptation
// (quality reduction, frame dropping) as an alternative to resource
// adjustment.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace softqos::instrument {

class Actuator {
 public:
  explicit Actuator(std::string id) : id_(std::move(id)) {}
  virtual ~Actuator() = default;

  Actuator(const Actuator&) = delete;
  Actuator& operator=(const Actuator&) = delete;

  [[nodiscard]] const std::string& id() const { return id_; }

  /// Exert control; arguments come from the policy action's argument list.
  virtual void invoke(const std::vector<std::string>& args) = 0;

  [[nodiscard]] std::uint64_t invocations() const { return invocations_; }

 protected:
  void countInvocation() { ++invocations_; }

 private:
  std::string id_;
  std::uint64_t invocations_ = 0;
};

/// Adapts an arbitrary callback as an actuator (the common case: the probe
/// author wires a lambda touching application state).
class CallbackActuator : public Actuator {
 public:
  using Fn = std::function<void(const std::vector<std::string>&)>;

  CallbackActuator(std::string id, Fn fn)
      : Actuator(std::move(id)), fn_(std::move(fn)) {}

  void invoke(const std::vector<std::string>& args) override {
    countInvocation();
    if (fn_) fn_(args);
  }

 private:
  Fn fn_;
};

/// A discrete quality-level actuator: invoke("down") / invoke("up") steps a
/// level in [minLevel, maxLevel]; the application polls level() to adapt
/// (e.g. decode resolution).
class QualityLevelActuator : public Actuator {
 public:
  QualityLevelActuator(std::string id, int minLevel, int maxLevel, int start)
      : Actuator(std::move(id)),
        minLevel_(minLevel),
        maxLevel_(maxLevel),
        level_(start) {}

  void invoke(const std::vector<std::string>& args) override;

  [[nodiscard]] int level() const { return level_; }

 private:
  int minLevel_;
  int maxLevel_;
  int level_;
};

}  // namespace softqos::instrument
