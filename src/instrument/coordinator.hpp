// The per-process coordinator (Section 5.2): tracks adherence to the
// policies associated with the application process, maps sensor alarms to
// boolean variables, evaluates each policy's boolean expression, and — on a
// violation — executes the policy's do-list (sensor reads, notification to
// the QoS Host Manager). All knowledge of the QoS Host Manager is confined
// here, hiding it from the rest of the instrumentation.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "instrument/control.hpp"
#include "instrument/registry.hpp"
#include "instrument/report.hpp"
#include "osim/msgqueue.hpp"
#include "policy/compile.hpp"
#include "sim/simulation.hpp"

namespace softqos::instrument {

class InstrumentError : public std::runtime_error {
 public:
  explicit InstrumentError(const std::string& message)
      : std::runtime_error(message) {}
};

class Coordinator : public SensorRegistry::Listener {
 public:
  /// `notify` delivers a report to the QoS Host Manager (typically a message
  /// queue send); the coordinator neither knows nor cares what is behind it.
  /// It returns whether delivery was accepted: on false (manager daemon
  /// down, kernel queue full) the coordinator buffers the report locally and
  /// retransmits when the manager becomes reachable again.
  using NotifyFn = std::function<bool(const ViolationReport&)>;

  Coordinator(sim::Simulation& simulation, std::string hostName,
              std::uint32_t pid, std::string executable,
              SensorRegistry& registry, NotifyFn notify);

  ~Coordinator() override;

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  void setUserRole(std::string role) { userRole_ = std::move(role); }
  [[nodiscard]] const std::string& userRole() const { return userRole_; }

  /// While a policy stays violated, its do-list re-runs (fresh sensor reads,
  /// fresh notification) every `interval` — the iterative feedback the
  /// Section 2 strategy needs to search for a suitable allocation. Zero
  /// disables repetition (single notification per violation episode).
  void setRepeatInterval(sim::SimDuration interval) { repeatInterval_ = interval; }
  [[nodiscard]] sim::SimDuration repeatInterval() const { return repeatInterval_; }

  /// Install compiled policies (Section 5.2: the coordinator builds a policy
  /// object per policy, generates a boolean variable per comparison, and
  /// initializes the sensors with thresholds and comparison ids). Throws
  /// InstrumentError when a referenced sensor is absent.
  void installPolicies(const std::vector<policy::CompiledPolicy>& policies);

  /// Remove one policy (its comparisons are uninstalled from sensors).
  bool removePolicy(const std::string& policyId);
  void clearPolicies();

  [[nodiscard]] std::size_t policyCount() const { return policies_.size(); }
  [[nodiscard]] bool hasPolicy(const std::string& policyId) const;

  /// Current violation state of one policy (false when unknown id).
  [[nodiscard]] bool isViolated(const std::string& policyId) const;

  /// Alarm entry point (wired as the sensors' alarm handler).
  void onAlarm(Sensor& sensor, int comparisonId, bool holds);

  // ---- Sensor hotplug (SensorRegistry::Listener) ----
  /// A sensor arrived (or replaced a same-id predecessor): re-arm every
  /// installed policy condition bound to its id so monitoring resumes
  /// without recompiling.
  void onSensorAdded(Sensor& sensor) override;
  /// A sensor departed: uninstall its comparisons, flip the orphaned
  /// variables back to optimistic (a gone sensor can no longer witness a
  /// violation) and re-evaluate — clearing any violation it alone held open.
  void onSensorRemoved(Sensor& sensor) override;

  [[nodiscard]] std::uint64_t sensorsAttached() const { return sensorsAttached_; }
  [[nodiscard]] std::uint64_t sensorsDetached() const { return sensorsDetached_; }

  /// Attach the manager->process control channel (a per-process message
  /// queue): managers can invoke actuators (application adaptation under
  /// overload), retune thresholds while the application executes, toggle
  /// sensors and drop policies — all without recompilation.
  void attachControlQueue(osim::MessageQueue& queue);

  /// Execute one control command (also the queue handler). Returns false
  /// for unknown targets/commands.
  bool executeControl(const ControlCommand& command);

  [[nodiscard]] std::uint64_t controlCommandsExecuted() const {
    return controlsExecuted_;
  }
  [[nodiscard]] std::uint64_t controlCommandsRejected() const {
    return controlsRejected_;
  }

  [[nodiscard]] std::uint64_t violationsReported() const { return violations_; }
  [[nodiscard]] std::uint64_t clearsReported() const { return clears_; }

  // ---- Store-and-forward stats (manager outage survival) ----
  /// Reports currently waiting for the manager to come back.
  [[nodiscard]] std::size_t bufferedReports() const { return buffer_.size(); }
  /// Buffered reports eventually delivered on retransmission.
  [[nodiscard]] std::uint64_t retransmittedReports() const { return retransmitted_; }
  /// Reports dropped because the local buffer overflowed (oldest first —
  /// the freshest observations are the ones worth keeping).
  [[nodiscard]] std::uint64_t bufferOverflows() const { return bufferOverflows_; }

  // ---- Contract-tier knobs (QoS contract plane) ----
  /// Cap the store-and-forward buffer: a degraded HISTORY admission shrinks
  /// how much a process may hold for an absent manager.
  void setReportBufferCap(std::size_t cap) { bufferCap_ = cap; }
  [[nodiscard]] std::size_t reportBufferCap() const { return bufferCap_; }
  /// VOLATILE durability: reports that cannot be delivered now are dropped
  /// instead of buffered (counted in volatileDrops()).
  void setStoreAndForward(bool enabled) { storeAndForward_ = enabled; }
  [[nodiscard]] bool storeAndForwardEnabled() const { return storeAndForward_; }
  [[nodiscard]] std::uint64_t volatileDrops() const { return volatileDrops_; }

 private:
  struct PolicyObject {
    policy::CompiledPolicy compiled;
    std::vector<bool> vars;  // one per comparison; optimistic (true) start
    bool violated = false;
    sim::EventId repeatEvent = sim::kInvalidEvent;
    // Causal tracing: the episode span opened on the violation transition
    // (invalid when observability is off) and when the violation began —
    // tracked unconditionally so reaction latency is measured either way.
    sim::TraceContext episodeCtx;
    sim::SimTime episodeStart = 0;
  };

  void wirePolicy(PolicyObject& po);
  void unwirePolicy(PolicyObject& po);
  void scheduleRepeat(PolicyObject& po);
  void sendTransitionReport(PolicyObject& po);
  void evaluate(PolicyObject& po);
  void executeDoList(PolicyObject& po, ViolationReport& report,
                     bool runActuators);
  void deliver(const ViolationReport& report);
  void flushBuffered();

  sim::Simulation& sim_;
  std::string hostName_;
  std::uint32_t pid_;
  std::string executable_;
  std::string userRole_;
  SensorRegistry& registry_;
  NotifyFn notify_;

  std::vector<std::unique_ptr<PolicyObject>> policies_;
  std::map<int, std::pair<PolicyObject*, int>> byComparison_;  // id -> (policy, var)
  sim::TraceContext pendingAlarmCtx_;  // claimed from the sensor in onAlarm
  sim::HistogramHandle reactionLatency_;
  sim::SimDuration repeatInterval_ = sim::msec(500);
  std::uint64_t violations_ = 0;
  std::uint64_t clears_ = 0;
  std::uint64_t controlsExecuted_ = 0;
  std::uint64_t controlsRejected_ = 0;

  // Store-and-forward buffer: armed only after a failed delivery, so a
  // healthy deployment schedules no extra events.
  std::deque<ViolationReport> buffer_;
  sim::EventId flushEvent_ = sim::kInvalidEvent;
  sim::SimDuration flushInterval_ = sim::msec(500);
  std::uint64_t retransmitted_ = 0;
  std::uint64_t bufferOverflows_ = 0;
  static constexpr std::size_t kMaxBufferedReports = 64;
  std::size_t bufferCap_ = kMaxBufferedReports;
  bool storeAndForward_ = true;
  std::uint64_t volatileDrops_ = 0;
  std::uint64_t sensorsAttached_ = 0;
  std::uint64_t sensorsDetached_ = 0;
};

}  // namespace softqos::instrument
