#include "instrument/control.hpp"

#include <cstdlib>
#include <sstream>

namespace softqos::instrument {

namespace {

std::vector<std::string> split(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

}  // namespace

std::string controlQueueKey(std::uint32_t pid) {
  return "qosl-ctl-" + std::to_string(pid);
}

std::string ControlCommand::serialize() const {
  std::ostringstream out;
  out << "CTL|";
  switch (kind) {
    case Kind::kAdapt:
      out << "adapt|" << target;
      for (const std::string& a : args) out << "|" << a;
      break;
    case Kind::kSetThreshold:
      out << "set-threshold|" << comparisonId << "|" << value;
      break;
    case Kind::kEnableSensor:
      out << "enable-sensor|" << target << "|" << (enable ? 1 : 0);
      break;
    case Kind::kSetTick:
      out << "set-tick|" << target << "|" << tickMicros;
      break;
    case Kind::kRemovePolicy:
      out << "remove-policy|" << target;
      break;
  }
  return out.str();
}

bool ControlCommand::parse(const std::string& text, ControlCommand& out) {
  const auto parts = split(text, '|');
  if (parts.size() < 2 || parts[0] != "CTL") return false;
  const std::string& verb = parts[1];
  if (verb == "adapt" && parts.size() >= 3) {
    out.kind = Kind::kAdapt;
    out.target = parts[2];
    out.args.assign(parts.begin() + 3, parts.end());
    return true;
  }
  if (verb == "set-threshold" && parts.size() == 4) {
    out.kind = Kind::kSetThreshold;
    out.comparisonId = std::atoi(parts[2].c_str());
    out.value = std::strtod(parts[3].c_str(), nullptr);
    return true;
  }
  if (verb == "enable-sensor" && parts.size() == 4) {
    out.kind = Kind::kEnableSensor;
    out.target = parts[2];
    out.enable = parts[3] != "0";
    return true;
  }
  if (verb == "set-tick" && parts.size() == 4) {
    out.kind = Kind::kSetTick;
    out.target = parts[2];
    out.tickMicros = std::atoll(parts[3].c_str());
    return true;
  }
  if (verb == "remove-policy" && parts.size() == 3) {
    out.kind = Kind::kRemovePolicy;
    out.target = parts[2];
    return true;
  }
  return false;
}

}  // namespace softqos::instrument
