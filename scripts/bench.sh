#!/usr/bin/env bash
# Run a benchmark suite and record the results as JSON at the repo root, so
# successive PRs leave a perf trajectory:
#
#   scripts/bench.sh rules    [build-dir] -> BENCH_rules.json    (inference engine)
#   scripts/bench.sh sim      [build-dir] -> BENCH_sim.json      (event kernel)
#   scripts/bench.sh parallel [build-dir] -> BENCH_parallel.json (thread scaling
#                              of the windowed conservative engine at 1/2/4/8
#                              worker threads against the serial kernel)
#   scripts/bench.sh city     [build-dir] -> BENCH_city.json     (~1k-host
#                              3-tier domain tree, full management stack, at
#                              1/2/4/8 worker threads vs the serial kernel)
#   scripts/bench.sh contracts [build-dir] -> BENCH_contracts.json (RxO
#                              admission decision + register-time admission
#                              latency: plane off / full tier / rejection)
#   scripts/bench.sh obs_city [build-dir] -> BENCH_obs_city.json (city run
#                              with tail-based sampling + contract plane
#                              under a host-crash plan: span retention vs
#                              keep-all, plus the worker-invariance gate)
set -euo pipefail

usage() {
  echo "usage: scripts/bench.sh <rules|sim|parallel|city|contracts|obs_city> [build-dir]" >&2
  exit 2
}

[[ $# -ge 1 ]] || usage
suite="$1"
repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${2:-$repo_root/build}"

case "$suite" in
  rules) target="abl_inference_scaling"; out="$repo_root/BENCH_rules.json" ;;
  sim)   target="bench_sim_kernel";      out="$repo_root/BENCH_sim.json" ;;
  parallel) target="bench_parallel_engine"; out="$repo_root/BENCH_parallel.json" ;;
  city)  target="bench_city";            out="$repo_root/BENCH_city.json" ;;
  contracts) target="bench_contracts";   out="$repo_root/BENCH_contracts.json" ;;
  obs_city) target="bench_obs_city";     out="$repo_root/BENCH_obs_city.json" ;;
  *) usage ;;
esac

bench="$build_dir/bench/$target"
if [[ ! -x "$bench" ]]; then
  echo "building $target in $build_dir ..." >&2
  cmake -B "$build_dir" -S "$repo_root" >/dev/null
  cmake --build "$build_dir" --target "$target" -j >/dev/null
fi

# Write to a temp file and validate before overwriting the committed
# snapshot: a crashed or interrupted benchmark must not clobber the last
# good BENCH_*.json with a truncated document.
tmp="$(mktemp "$out.XXXXXX")"
trap 'rm -f "$tmp"' EXIT
"$bench" --benchmark_format=json --benchmark_repetitions=1 > "$tmp"
if command -v python3 >/dev/null 2>&1; then
  python3 - "$tmp" <<'EOF'
import json, sys
data = json.load(open(sys.argv[1]))
benches = data.get("benchmarks", [])
if not benches:
    sys.exit("benchmark JSON has no benchmarks — refusing to overwrite")
errors = [b["name"] for b in benches if b.get("error_occurred")]
if errors:
    sys.exit("benchmark errors (gate failures): " + ", ".join(errors))
EOF
fi
mv "$tmp" "$out"
trap - EXIT
echo "wrote $out" >&2

# Append a timestamped entry to the running history, so BENCH_*.json keeps
# only the latest snapshot but the trajectory across runs survives.
history="$repo_root/BENCH_history.jsonl"
if command -v python3 >/dev/null 2>&1; then
  python3 - "$suite" "$out" "$history" <<'EOF'
import datetime, json, sys
suite, out, hist = sys.argv[1:4]
data = json.load(open(out))
entry = {
    "suite": suite,
    "recorded_at": datetime.datetime.now(datetime.timezone.utc)
        .isoformat(timespec="seconds"),
    "benchmarks": [
        {"name": b["name"], "real_time": b["real_time"],
         "time_unit": b["time_unit"]}
        for b in data.get("benchmarks", [])
    ],
}
with open(hist, "a") as f:
    f.write(json.dumps(entry, separators=(",", ":")) + "\n")
print(f"appended {suite} entry to {hist}", file=sys.stderr)
for b in entry["benchmarks"]:
    print(f"{b['name']:45s} {b['real_time']:14.1f} {b['time_unit']}")
EOF
else
  echo "python3 not found; skipping BENCH_history.jsonl append" >&2
fi
