#!/usr/bin/env bash
# Chaos soak under sanitizers: build the ASan+UBSan tree and repeat the
# fault-injection soak suite (5 seeds, crash + partition + lossy heal, each
# replayed for byte-identical traces) N times.
#
#   scripts/chaos.sh [iterations] [build-dir]   (default: 5 iterations,
#                                                build-sanitize/)
set -euo pipefail

iterations="${1:-5}"
repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${2:-$repo_root/build-sanitize}"

"$repo_root/scripts/check_tree.sh"

echo "configuring sanitized build in $build_dir ..." >&2
cmake -B "$build_dir" -S "$repo_root" -DSOFTQOS_SANITIZE=ON >/dev/null
cmake --build "$build_dir" --target chaos_soak_test faults_test -j >/dev/null

for ((i = 1; i <= iterations; i++)); do
  echo "=== chaos soak iteration $i/$iterations ===" >&2
  "$build_dir/tests/faults_test" --gtest_brief=1
  "$build_dir/tests/chaos_soak_test" --gtest_brief=1
done

echo "chaos soak: $iterations iteration(s) clean under ASan+UBSan" >&2
