#!/usr/bin/env bash
# Tree hygiene: fail if any tracked file lives under a build directory.
# Build trees (build/, build-sanitize/, build-review/, ...) are generated;
# tracking them bloats the repository and breaks clean checkouts.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

tracked="$(git ls-files | grep -E '^build[^/]*/' || true)"
if [[ -n "$tracked" ]]; then
  echo "error: build artifacts are tracked in git:" >&2
  echo "$tracked" | head -20 >&2
  count="$(echo "$tracked" | wc -l)"
  echo "($count file(s); run: git rm -r --cached <dir>)" >&2
  exit 1
fi

echo "tree hygiene OK: no tracked build artifacts" >&2
