#!/usr/bin/env bash
# Observability smoke: build the obs_export driver, run the traced testbed
# (fig3-style and chaos modes) plus the sampled chaos city, and validate the
# exports — well-formed JSON, spans properly nested inside their parents'
# envelopes, complete detection -> diagnosis -> actuation -> recovery chains,
# per-retained-trace causal completeness in the city run, and histogram
# exemplars that resolve to occupied buckets and retained traces.
#
# Validation is mandatory: a missing python3 fails the smoke (exit 1) rather
# than silently skipping the checks.
#
#   scripts/obs.sh [build-dir] [out-dir]   (default: build/, build/obs/)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
out_dir="${2:-$build_dir/obs}"

driver="$build_dir/bench/obs_export"
if [[ ! -x "$driver" ]]; then
  echo "building obs_export in $build_dir ..." >&2
  cmake -B "$build_dir" -S "$repo_root" >/dev/null
  cmake --build "$build_dir" --target obs_export -j >/dev/null
fi

if ! command -v python3 >/dev/null 2>&1; then
  echo "obs smoke: FAIL — python3 is required to validate the exports" >&2
  exit 1
fi

mkdir -p "$out_dir"
echo "=== fig3-style traced run ===" >&2
"$driver" "$out_dir/trace.json" "$out_dir/metrics.json"
echo "=== chaos traced run ===" >&2
"$driver" --chaos "$out_dir/trace_chaos.json" "$out_dir/metrics_chaos.json"
echo "=== sampled chaos city run ===" >&2
"$driver" --city "$out_dir/trace_city.json" "$out_dir/metrics_city.json" \
    "$out_dir/domain_city.json" "$out_dir/flight_city.json" \
    "$out_dir/attribution_city.json" "$out_dir/budget_city.json" \
    "$out_dir/flame_city.txt" "$out_dir/speedscope_city.json" \
    | tee "$out_dir/city.log" >&2
victim="$(sed -n 's/^victim host: \([^ ]*\) .*/\1/p' "$out_dir/city.log")"

python3 - "$out_dir/trace.json" "$out_dir/trace_chaos.json" <<'EOF'
import json, sys

for path in sys.argv[1:]:
    with open(path) as f:
        data = json.load(f)  # throws on malformed JSON
    events = data["traceEvents"]
    assert events, f"{path}: no trace events"

    by_id = {}
    for e in events:
        assert e["ph"] == "X", f"{path}: unexpected phase {e['ph']}"
        assert e["dur"] >= 0, f"{path}: negative duration in {e['name']}"
        by_id[e["args"]["span_id"]] = e

    # Envelope nesting: every child must lie inside its parent.
    nested = 0
    for e in events:
        parent = by_id.get(e["args"].get("parent_span_id"))
        if parent is None:
            continue
        nested += 1
        cs, ce = e["ts"], e["ts"] + e["dur"]
        ps, pe = parent["ts"], parent["ts"] + parent["dur"]
        assert ps <= cs and ce <= pe, (
            f"{path}: span {e['name']} [{cs},{ce}] escapes parent "
            f"{parent['name']} [{ps},{pe}]")
    assert nested > 0, f"{path}: no nested spans at all"

    # At least one complete causal chain.
    chains = {}
    for e in events:
        chains.setdefault(e["tid"], set()).add(e["name"].split(":")[0])
    complete = sum(
        1 for names in chains.values()
        if "episode" in names and "diagnose" in names
        and ("actuate" in names or "corrective" in names)
        and "recovered" in names)
    assert complete >= 1, f"{path}: no complete detection->recovery chain"
    print(f"{path}: {len(events)} events, {nested} nested, "
          f"{complete} complete chain(s) -- OK")

for path in sys.argv[1:]:
    json.load(open(path.replace("trace", "metrics")))
print("metrics snapshots well-formed -- OK")
EOF

# City validation: every retained trace must be causally complete — an
# episode that detected a violation must carry its diagnosis (the only
# exemption is the crashed victim host, whose manager is down: detection
# without diagnosis is exactly the signal tail sampling must retain), every
# injected fault must appear as a complete retained "contract:" trace, and
# the domain rollup's exemplars must reference occupied buckets and resolve
# to retained traces.
python3 - "$out_dir" "$victim" <<'EOF'
import json, sys

out_dir, victim = sys.argv[1], sys.argv[2]
assert victim, "city run printed no victim host"

data = json.load(open(f"{out_dir}/trace_city.json"))
events = data["traceEvents"]
assert events, "city: no retained trace events"

traces = {}
for e in events:
    traces.setdefault(e["tid"], []).append(e)

full_chains = 0
contract_roots = set()
for tid, es in sorted(traces.items()):
    roots = [e for e in es if "retain_reason" in e["args"]]
    assert len(roots) == 1, f"city trace {tid}: expected 1 root, got {len(roots)}"
    root = roots[0]
    assert root["args"]["complete"] in ("0", "1"), f"city trace {tid}: bad complete flag"
    complete = root["args"]["complete"] == "1"
    names = {e["name"].split(":")[0] for e in es}
    if root["name"].startswith("contract:"):
        assert complete, f"city trace {tid}: incomplete contract trace {root['name']}"
        contract_roots.add(root["name"])
        continue
    assert root["name"].startswith("episode"), \
        f"city trace {tid}: unexpected root {root['name']}"
    assert "violation" in names, f"city trace {tid}: episode without a violation"
    if complete:
        assert "recovered" in names, f"city trace {tid}: complete episode never recovered"
    # The detect -> diagnose chain: mandatory everywhere a manager was alive.
    if "diagnose" not in names:
        assert root["cat"] == victim, (
            f"city trace {tid}: episode on {root['cat']} detected a violation "
            f"but was never diagnosed (manager was alive)")
        continue
    if "actuate" in names or "corrective" in names:
        full_chains += 1

assert full_chains >= 1, "city: no complete detect->diagnose->actuate chain"
for kind in ("contract:liveliness-lost", "contract:owner-changed"):
    assert kind in contract_roots, f"city: injected fault left no retained {kind} trace"

# Exemplars: every one must sit on an occupied bucket of its histogram,
# carry a nonzero trace id, and resolve (via sampled_trace) either to a
# retained trace present in the export or to 0 (dropped by retention).
domain = json.load(open(f"{out_dir}/domain_city.json"))
retained_tids = {str(tid) for tid in traces}
checked = 0

def check_histograms(obj):
    global checked
    if not isinstance(obj, dict):
        return
    if "buckets" in obj and "exemplars" in obj:
        occupied = {b[0] for b in obj["buckets"]}
        for ex in obj["exemplars"]:
            assert ex["bucket"] in occupied, f"exemplar on empty bucket {ex}"
            assert int(ex["trace"]) != 0, f"exemplar without a trace id {ex}"
            assert ex["when"] >= 0 and ex["value"] >= 0, f"malformed exemplar {ex}"
            sampled = ex.get("sampled_trace", "0")
            assert sampled == "0" or sampled in retained_tids, (
                f"exemplar links to unretained trace {sampled}")
            checked += 1
    for v in obj.values():
        check_histograms(v)

check_histograms(domain)
assert checked >= 1, "city: domain rollup carried no exemplars to validate"

metrics = json.load(open(f"{out_dir}/metrics_city.json"))
obs = metrics["observability"]
assert obs["sampler"]["retained_traces"] == len(traces), \
    "sampler counters disagree with the exported trace count"
flight = json.load(open(f"{out_dir}/flight_city.json"))
kinds = {r["kind"] for r in flight["log"]}
assert {"liveliness-lost", "owner-changed"} <= kinds, \
    "flight recorder missed the injected fault"

print(f"city: {len(traces)} retained traces ({len(contract_roots)} contract kinds), "
      f"{full_chains} full chain(s), {checked} exemplar(s) validated -- OK")
EOF

# Analysis-plane validation: critical-path attribution must be complete
# (every analyzed episode's segments tile [root start, root end] exactly),
# the latency-budget join must carry both SLO and contract-deadline targets,
# and the flame exports must agree with the attribution on total weight.
python3 - "$out_dir" <<'EOF'
import json, sys

out_dir = sys.argv[1]

attr = json.load(open(f"{out_dir}/attribution_city.json"))
assert attr["episodes_analyzed"] >= 1, "attribution: no episodes analyzed"
assert len(attr["episodes"]) == attr["episodes_analyzed"], \
    "attribution: episode list disagrees with the counter"
attributed = 0
for ep in attr["episodes"]:
    segs = ep["segments"]
    assert segs, f"attribution: episode {ep['trace']} has no segments"
    total = sum(s["end"] - s["start"] for s in segs)
    assert total == ep["duration_us"], (
        f"attribution: episode {ep['trace']} segments sum to {total}, "
        f"root duration is {ep['duration_us']}")
    cursor = ep["start"]
    for s in segs:
        assert s["start"] == cursor, \
            f"attribution: episode {ep['trace']} segments do not tile"
        cursor = s["end"]
    assert cursor == ep["start"] + ep["duration_us"], \
        f"attribution: episode {ep['trace']} segments stop short of the root end"
    attributed += ep["duration_us"]
assert attr["components"], "attribution: empty component blame table"

budget = json.load(open(f"{out_dir}/budget_city.json"))
assert budget["episodes"] == attr["episodes_analyzed"], \
    "budget: episode count disagrees with the attribution export"
tiers = {t["tier"] for t in budget["targets"]}
assert "slo" in tiers, "budget: no SLO-derived target"
assert len(tiers) > 1, "budget: no contract-deadline target joined in"
for t in budget["targets"]:
    assert t["budget_us"] > 0, f"budget: non-positive budget in {t['name']}"
    assert 0.0 <= t["over_budget_fraction"] <= 1.0, \
        f"budget: over_budget_fraction out of range in {t['name']}"

flame_total = 0
with open(f"{out_dir}/flame_city.txt") as f:
    for line in f:
        stack, weight = line.rsplit(" ", 1)
        assert stack, "flame: empty stack line"
        flame_total += int(weight)
assert flame_total == attributed, (
    f"flame: collapsed self-weights sum to {flame_total}, "
    f"attribution says {attributed}")

speedscope = json.load(open(f"{out_dir}/speedscope_city.json"))
assert speedscope["shared"]["frames"], "speedscope: no frames"
prof = speedscope["profiles"][0]
assert len(prof["samples"]) == len(prof["weights"]), \
    "speedscope: samples/weights length mismatch"
assert sum(prof["weights"]) == flame_total, \
    "speedscope: weights disagree with the collapsed export"

print(f"city analysis: {attr['episodes_analyzed']} episodes attributed "
      f"({attributed} us on the critical path), {len(budget['targets'])} "
      f"budget targets, flame weight {flame_total} us consistent -- OK")
EOF

echo "obs smoke: traces valid (open them in https://ui.perfetto.dev)" >&2
