#!/usr/bin/env bash
# Observability smoke: build the obs_export driver, run the traced testbed
# (fig3-style and chaos modes), and validate the exported Chrome trace —
# well-formed JSON, spans properly nested inside their parents' envelopes,
# and at least one complete detection -> diagnosis -> actuation -> recovery
# chain per run.
#
#   scripts/obs.sh [build-dir] [out-dir]   (default: build/, build/obs/)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
out_dir="${2:-$build_dir/obs}"

driver="$build_dir/bench/obs_export"
if [[ ! -x "$driver" ]]; then
  echo "building obs_export in $build_dir ..." >&2
  cmake -B "$build_dir" -S "$repo_root" >/dev/null
  cmake --build "$build_dir" --target obs_export -j >/dev/null
fi

mkdir -p "$out_dir"
echo "=== fig3-style traced run ===" >&2
"$driver" "$out_dir/trace.json" "$out_dir/metrics.json"
echo "=== chaos traced run ===" >&2
"$driver" --chaos "$out_dir/trace_chaos.json" "$out_dir/metrics_chaos.json"

if ! command -v python3 >/dev/null 2>&1; then
  echo "obs smoke: python3 not found; traces written to $out_dir but NOT" \
       "validated (install python3 to check JSON well-formedness and span" \
       "nesting)" >&2
  exit 0
fi

python3 - "$out_dir/trace.json" "$out_dir/trace_chaos.json" <<'EOF'
import json, sys

failures = 0
for path in sys.argv[1:]:
    with open(path) as f:
        data = json.load(f)  # throws on malformed JSON
    events = data["traceEvents"]
    assert events, f"{path}: no trace events"

    by_id = {}
    for e in events:
        assert e["ph"] == "X", f"{path}: unexpected phase {e['ph']}"
        assert e["dur"] >= 0, f"{path}: negative duration in {e['name']}"
        by_id[e["args"]["span_id"]] = e

    # Envelope nesting: every child must lie inside its parent.
    nested = 0
    for e in events:
        parent = by_id.get(e["args"].get("parent_span_id"))
        if parent is None:
            continue
        nested += 1
        cs, ce = e["ts"], e["ts"] + e["dur"]
        ps, pe = parent["ts"], parent["ts"] + parent["dur"]
        assert ps <= cs and ce <= pe, (
            f"{path}: span {e['name']} [{cs},{ce}] escapes parent "
            f"{parent['name']} [{ps},{pe}]")
    assert nested > 0, f"{path}: no nested spans at all"

    # At least one complete causal chain.
    chains = {}
    for e in events:
        chains.setdefault(e["tid"], set()).add(e["name"].split(":")[0])
    complete = sum(
        1 for names in chains.values()
        if "episode" in names and "diagnose" in names
        and ("actuate" in names or "corrective" in names)
        and "recovered" in names)
    assert complete >= 1, f"{path}: no complete detection->recovery chain"
    print(f"{path}: {len(events)} events, {nested} nested, "
          f"{complete} complete chain(s) -- OK")

for path in sys.argv[1:]:
    json.load(open(path.replace("trace", "metrics")))
print("metrics snapshots well-formed -- OK")
EOF

echo "obs smoke: traces valid (open them in https://ui.perfetto.dev)" >&2
