#!/usr/bin/env python3
"""Perf regression sentinel over BENCH_history.jsonl.

For every suite in the history, compares the newest entry's benchmarks
against a trailing baseline (the per-benchmark median over the previous
--window same-suite entries) and classifies each delta:

  ok      within the warn threshold
  warn    slower than the warn threshold but under the fail threshold
          (report-only: CI stays green)
  FAIL    slower than the fail threshold -> exit 1
  new     no baseline yet (first entry for this suite or benchmark)

Per-benchmark noise thresholds: sub-100ns benchmarks measure single
pointer-chase-scale operations where run-to-run jitter of 20-30% is normal
machine noise (observed across the committed history), so their thresholds
are widened by --tiny-factor. Faster-than-baseline deltas never gate.

Emits a markdown delta table (stdout, or --output FILE) suitable for a CI
job summary. Exit status: 0 = green (ok/warn/new only), 1 = at least one
FAIL, 2 = usage/IO error.

Usage:
  scripts/perf_gate.py [--history BENCH_history.jsonl] [--output delta.md]
                       [--warn 0.10] [--fail 0.50] [--window 5]
                       [--tiny-ns 100] [--tiny-factor 3.0]
"""

import argparse
import json
import pathlib
import statistics
import sys

UNIT_TO_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_history(path):
    """Parse the JSONL history into {suite: [entry, ...]} in file order."""
    suites = {}
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError as err:
                sys.exit(f"{path}:{lineno}: invalid JSON ({err})")
            suites.setdefault(entry.get("suite", "?"), []).append(entry)
    return suites


def bench_map(entry):
    """{name: (real_time, time_unit)} for one history entry."""
    out = {}
    for b in entry.get("benchmarks", []):
        out[b["name"]] = (float(b["real_time"]), b.get("time_unit", "ns"))
    return out


def classify(baseline, current, unit, args):
    """(status, delta_fraction) for one benchmark's baseline vs current."""
    if baseline <= 0:
        return "new", 0.0
    delta = (current - baseline) / baseline
    baseline_ns = baseline * UNIT_TO_NS.get(unit, 1.0)
    factor = args.tiny_factor if baseline_ns < args.tiny_ns else 1.0
    if delta >= args.fail * factor:
        return "FAIL", delta
    if delta >= args.warn * factor:
        return "warn", delta
    return "ok", delta


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    repo_root = pathlib.Path(__file__).resolve().parent.parent
    parser.add_argument("--history", default=str(repo_root / "BENCH_history.jsonl"))
    parser.add_argument("--output", default=None, help="write markdown here")
    parser.add_argument("--warn", type=float, default=0.10,
                        help="report-only slowdown fraction (default 0.10)")
    parser.add_argument("--fail", type=float, default=0.50,
                        help="gating slowdown fraction (default 0.50)")
    parser.add_argument("--window", type=int, default=5,
                        help="baseline = median over this many prior entries")
    parser.add_argument("--tiny-ns", type=float, default=100.0,
                        help="baselines under this (ns) use --tiny-factor")
    parser.add_argument("--tiny-factor", type=float, default=3.0,
                        help="threshold multiplier for tiny benchmarks")
    args = parser.parse_args(argv)

    if not pathlib.Path(args.history).exists():
        sys.exit(f"history file not found: {args.history}")
    suites = load_history(args.history)

    lines = ["# Perf gate", ""]
    counts = {"ok": 0, "warn": 0, "FAIL": 0, "new": 0}
    for suite in sorted(suites):
        entries = suites[suite]
        newest = entries[-1]
        prior = entries[:-1][-args.window:]
        lines.append(f"## {suite}")
        lines.append("")
        lines.append(f"newest: {newest.get('recorded_at', '?')}, "
                     f"baseline: median over {len(prior)} prior entr"
                     f"{'y' if len(prior) == 1 else 'ies'}")
        lines.append("")
        lines.append("| benchmark | baseline | current | delta | status |")
        lines.append("|---|---:|---:|---:|---|")
        prior_maps = [bench_map(e) for e in prior]
        for name, (current, unit) in bench_map(newest).items():
            samples = [m[name][0] for m in prior_maps
                       if name in m and m[name][1] == unit]
            if not samples:
                counts["new"] += 1
                lines.append(f"| {name} | — | {current:.1f} {unit} | — | new |")
                continue
            baseline = statistics.median(samples)
            status, delta = classify(baseline, current, unit, args)
            counts[status] += 1
            lines.append(f"| {name} | {baseline:.1f} {unit} "
                         f"| {current:.1f} {unit} "
                         f"| {delta:+.1%} | {status} |")
        lines.append("")

    lines.append(f"**{counts['ok']} ok, {counts['warn']} warn, "
                 f"{counts['FAIL']} fail, {counts['new']} new** "
                 f"(warn at +{args.warn:.0%}, fail at +{args.fail:.0%}; "
                 f"x{args.tiny_factor:g} under {args.tiny_ns:g} ns)")
    report = "\n".join(lines) + "\n"

    if args.output:
        pathlib.Path(args.output).write_text(report)
    print(report, end="")
    if counts["FAIL"]:
        print(f"\nperf gate FAILED: {counts['FAIL']} regression(s) past "
              f"the fail threshold", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
