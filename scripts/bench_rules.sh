#!/usr/bin/env bash
# Run the inference-engine scaling benchmark and record the results in
# BENCH_rules.json at the repo root, so successive PRs leave a perf
# trajectory for the managers' hottest path.
#
# Usage: scripts/bench_rules.sh [build-dir]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
bench="$build_dir/bench/abl_inference_scaling"

if [[ ! -x "$bench" ]]; then
  echo "building benchmarks in $build_dir ..." >&2
  cmake -B "$build_dir" -S "$repo_root" >/dev/null
  cmake --build "$build_dir" --target abl_inference_scaling -j >/dev/null
fi

out="$repo_root/BENCH_rules.json"
"$bench" --benchmark_format=json --benchmark_repetitions=1 > "$out"
echo "wrote $out" >&2
python3 - "$out" <<'EOF' || true
import json, sys
data = json.load(open(sys.argv[1]))
for b in data.get("benchmarks", []):
    print(f"{b['name']:45s} {b['real_time']:14.1f} {b['time_unit']}")
EOF
