#!/usr/bin/env bash
# Back-compat wrapper: the suites now live behind scripts/bench.sh.
#
# Usage: scripts/bench_rules.sh [build-dir]
exec "$(dirname "$0")/bench.sh" rules "$@"
