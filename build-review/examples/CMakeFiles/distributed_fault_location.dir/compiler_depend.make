# Empty compiler generated dependencies file for distributed_fault_location.
# This may be replaced when dependencies are built.
