file(REMOVE_RECURSE
  "CMakeFiles/distributed_fault_location.dir/distributed_fault_location.cpp.o"
  "CMakeFiles/distributed_fault_location.dir/distributed_fault_location.cpp.o.d"
  "distributed_fault_location"
  "distributed_fault_location.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_fault_location.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
