file(REMOVE_RECURSE
  "CMakeFiles/policy_admin.dir/policy_admin.cpp.o"
  "CMakeFiles/policy_admin.dir/policy_admin.cpp.o.d"
  "policy_admin"
  "policy_admin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_admin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
