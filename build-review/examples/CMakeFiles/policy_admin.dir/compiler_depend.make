# Empty compiler generated dependencies file for policy_admin.
# This may be replaced when dependencies are built.
