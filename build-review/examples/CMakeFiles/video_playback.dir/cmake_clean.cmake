file(REMOVE_RECURSE
  "CMakeFiles/video_playback.dir/video_playback.cpp.o"
  "CMakeFiles/video_playback.dir/video_playback.cpp.o.d"
  "video_playback"
  "video_playback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/video_playback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
