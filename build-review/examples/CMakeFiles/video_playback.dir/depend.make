# Empty dependencies file for video_playback.
# This may be replaced when dependencies are built.
