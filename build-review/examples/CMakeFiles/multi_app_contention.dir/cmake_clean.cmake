file(REMOVE_RECURSE
  "CMakeFiles/multi_app_contention.dir/multi_app_contention.cpp.o"
  "CMakeFiles/multi_app_contention.dir/multi_app_contention.cpp.o.d"
  "multi_app_contention"
  "multi_app_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_app_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
