# Empty dependencies file for multi_app_contention.
# This may be replaced when dependencies are built.
