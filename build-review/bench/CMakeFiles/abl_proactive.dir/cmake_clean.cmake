file(REMOVE_RECURSE
  "CMakeFiles/abl_proactive.dir/abl_proactive.cpp.o"
  "CMakeFiles/abl_proactive.dir/abl_proactive.cpp.o.d"
  "abl_proactive"
  "abl_proactive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_proactive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
