# Empty dependencies file for abl_proactive.
# This may be replaced when dependencies are built.
