# Empty compiler generated dependencies file for abl_policy_machinery.
# This may be replaced when dependencies are built.
