file(REMOVE_RECURSE
  "CMakeFiles/abl_policy_machinery.dir/abl_policy_machinery.cpp.o"
  "CMakeFiles/abl_policy_machinery.dir/abl_policy_machinery.cpp.o.d"
  "abl_policy_machinery"
  "abl_policy_machinery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_policy_machinery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
