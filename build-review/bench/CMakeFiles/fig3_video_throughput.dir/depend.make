# Empty dependencies file for fig3_video_throughput.
# This may be replaced when dependencies are built.
