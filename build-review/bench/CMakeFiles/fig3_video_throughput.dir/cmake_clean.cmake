file(REMOVE_RECURSE
  "CMakeFiles/fig3_video_throughput.dir/fig3_video_throughput.cpp.o"
  "CMakeFiles/fig3_video_throughput.dir/fig3_video_throughput.cpp.o.d"
  "fig3_video_throughput"
  "fig3_video_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_video_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
