# Empty dependencies file for tab1_overhead.
# This may be replaced when dependencies are built.
