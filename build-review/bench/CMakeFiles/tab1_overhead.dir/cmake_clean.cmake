file(REMOVE_RECURSE
  "CMakeFiles/tab1_overhead.dir/tab1_overhead.cpp.o"
  "CMakeFiles/tab1_overhead.dir/tab1_overhead.cpp.o.d"
  "tab1_overhead"
  "tab1_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab1_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
