file(REMOVE_RECURSE
  "CMakeFiles/abl_inference_scaling.dir/abl_inference_scaling.cpp.o"
  "CMakeFiles/abl_inference_scaling.dir/abl_inference_scaling.cpp.o.d"
  "abl_inference_scaling"
  "abl_inference_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_inference_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
