# Empty dependencies file for abl_inference_scaling.
# This may be replaced when dependencies are built.
