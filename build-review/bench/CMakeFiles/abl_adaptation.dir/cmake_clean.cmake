file(REMOVE_RECURSE
  "CMakeFiles/abl_adaptation.dir/abl_adaptation.cpp.o"
  "CMakeFiles/abl_adaptation.dir/abl_adaptation.cpp.o.d"
  "abl_adaptation"
  "abl_adaptation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
