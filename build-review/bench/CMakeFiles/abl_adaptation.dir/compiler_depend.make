# Empty compiler generated dependencies file for abl_adaptation.
# This may be replaced when dependencies are built.
