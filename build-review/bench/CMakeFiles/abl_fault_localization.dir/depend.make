# Empty dependencies file for abl_fault_localization.
# This may be replaced when dependencies are built.
