file(REMOVE_RECURSE
  "CMakeFiles/abl_fault_localization.dir/abl_fault_localization.cpp.o"
  "CMakeFiles/abl_fault_localization.dir/abl_fault_localization.cpp.o.d"
  "abl_fault_localization"
  "abl_fault_localization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_fault_localization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
