file(REMOVE_RECURSE
  "CMakeFiles/bench_sim_kernel.dir/bench_sim_kernel.cpp.o"
  "CMakeFiles/bench_sim_kernel.dir/bench_sim_kernel.cpp.o.d"
  "bench_sim_kernel"
  "bench_sim_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sim_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
