file(REMOVE_RECURSE
  "CMakeFiles/abl_admin_constraints.dir/abl_admin_constraints.cpp.o"
  "CMakeFiles/abl_admin_constraints.dir/abl_admin_constraints.cpp.o.d"
  "abl_admin_constraints"
  "abl_admin_constraints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_admin_constraints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
