# Empty compiler generated dependencies file for abl_admin_constraints.
# This may be replaced when dependencies are built.
