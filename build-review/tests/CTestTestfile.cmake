# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-review/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/sim_test[1]_include.cmake")
include("/root/repo/build-review/tests/determinism_test[1]_include.cmake")
include("/root/repo/build-review/tests/osim_process_test[1]_include.cmake")
include("/root/repo/build-review/tests/osim_sched_test[1]_include.cmake")
include("/root/repo/build-review/tests/osim_host_test[1]_include.cmake")
include("/root/repo/build-review/tests/net_test[1]_include.cmake")
include("/root/repo/build-review/tests/rules_test[1]_include.cmake")
include("/root/repo/build-review/tests/rules_incremental_test[1]_include.cmake")
include("/root/repo/build-review/tests/ldap_test[1]_include.cmake")
include("/root/repo/build-review/tests/policy_test[1]_include.cmake")
include("/root/repo/build-review/tests/instrument_test[1]_include.cmake")
include("/root/repo/build-review/tests/manager_test[1]_include.cmake")
include("/root/repo/build-review/tests/distribution_test[1]_include.cmake")
include("/root/repo/build-review/tests/integration_test[1]_include.cmake")
include("/root/repo/build-review/tests/extensions_test[1]_include.cmake")
include("/root/repo/build-review/tests/property_test[1]_include.cmake")
