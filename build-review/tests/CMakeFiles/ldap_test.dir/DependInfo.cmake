
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ldap_test.cpp" "tests/CMakeFiles/ldap_test.dir/ldap_test.cpp.o" "gcc" "tests/CMakeFiles/ldap_test.dir/ldap_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/apps/CMakeFiles/softqos_apps.dir/DependInfo.cmake"
  "/root/repo/build-review/src/distribution/CMakeFiles/softqos_distribution.dir/DependInfo.cmake"
  "/root/repo/build-review/src/manager/CMakeFiles/softqos_manager.dir/DependInfo.cmake"
  "/root/repo/build-review/src/instrument/CMakeFiles/softqos_instrument.dir/DependInfo.cmake"
  "/root/repo/build-review/src/policy/CMakeFiles/softqos_policy.dir/DependInfo.cmake"
  "/root/repo/build-review/src/ldapdir/CMakeFiles/softqos_ldapdir.dir/DependInfo.cmake"
  "/root/repo/build-review/src/net/CMakeFiles/softqos_net.dir/DependInfo.cmake"
  "/root/repo/build-review/src/osim/CMakeFiles/softqos_osim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/rules/CMakeFiles/softqos_rules.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/softqos_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
