file(REMOVE_RECURSE
  "CMakeFiles/osim_sched_test.dir/osim_sched_test.cpp.o"
  "CMakeFiles/osim_sched_test.dir/osim_sched_test.cpp.o.d"
  "osim_sched_test"
  "osim_sched_test.pdb"
  "osim_sched_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osim_sched_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
