# Empty dependencies file for osim_sched_test.
# This may be replaced when dependencies are built.
