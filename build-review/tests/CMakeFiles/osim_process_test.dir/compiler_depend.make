# Empty compiler generated dependencies file for osim_process_test.
# This may be replaced when dependencies are built.
