file(REMOVE_RECURSE
  "CMakeFiles/osim_process_test.dir/osim_process_test.cpp.o"
  "CMakeFiles/osim_process_test.dir/osim_process_test.cpp.o.d"
  "osim_process_test"
  "osim_process_test.pdb"
  "osim_process_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osim_process_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
