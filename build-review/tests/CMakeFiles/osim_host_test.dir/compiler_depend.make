# Empty compiler generated dependencies file for osim_host_test.
# This may be replaced when dependencies are built.
