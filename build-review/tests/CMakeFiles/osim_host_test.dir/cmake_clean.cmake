file(REMOVE_RECURSE
  "CMakeFiles/osim_host_test.dir/osim_host_test.cpp.o"
  "CMakeFiles/osim_host_test.dir/osim_host_test.cpp.o.d"
  "osim_host_test"
  "osim_host_test.pdb"
  "osim_host_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osim_host_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
