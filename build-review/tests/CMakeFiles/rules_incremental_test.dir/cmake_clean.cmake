file(REMOVE_RECURSE
  "CMakeFiles/rules_incremental_test.dir/rules_incremental_test.cpp.o"
  "CMakeFiles/rules_incremental_test.dir/rules_incremental_test.cpp.o.d"
  "rules_incremental_test"
  "rules_incremental_test.pdb"
  "rules_incremental_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rules_incremental_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
