# Empty dependencies file for softqos_manager.
# This may be replaced when dependencies are built.
