file(REMOVE_RECURSE
  "CMakeFiles/softqos_manager.dir/default_rules.cpp.o"
  "CMakeFiles/softqos_manager.dir/default_rules.cpp.o.d"
  "CMakeFiles/softqos_manager.dir/domain_manager.cpp.o"
  "CMakeFiles/softqos_manager.dir/domain_manager.cpp.o.d"
  "CMakeFiles/softqos_manager.dir/host_manager.cpp.o"
  "CMakeFiles/softqos_manager.dir/host_manager.cpp.o.d"
  "CMakeFiles/softqos_manager.dir/resource_manager.cpp.o"
  "CMakeFiles/softqos_manager.dir/resource_manager.cpp.o.d"
  "libsoftqos_manager.a"
  "libsoftqos_manager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softqos_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
