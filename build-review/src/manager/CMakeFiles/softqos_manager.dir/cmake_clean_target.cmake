file(REMOVE_RECURSE
  "libsoftqos_manager.a"
)
