file(REMOVE_RECURSE
  "libsoftqos_apps.a"
)
