file(REMOVE_RECURSE
  "CMakeFiles/softqos_apps.dir/game.cpp.o"
  "CMakeFiles/softqos_apps.dir/game.cpp.o.d"
  "CMakeFiles/softqos_apps.dir/loadgen.cpp.o"
  "CMakeFiles/softqos_apps.dir/loadgen.cpp.o.d"
  "CMakeFiles/softqos_apps.dir/testbed.cpp.o"
  "CMakeFiles/softqos_apps.dir/testbed.cpp.o.d"
  "CMakeFiles/softqos_apps.dir/video.cpp.o"
  "CMakeFiles/softqos_apps.dir/video.cpp.o.d"
  "CMakeFiles/softqos_apps.dir/video_model.cpp.o"
  "CMakeFiles/softqos_apps.dir/video_model.cpp.o.d"
  "CMakeFiles/softqos_apps.dir/webserver.cpp.o"
  "CMakeFiles/softqos_apps.dir/webserver.cpp.o.d"
  "libsoftqos_apps.a"
  "libsoftqos_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softqos_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
