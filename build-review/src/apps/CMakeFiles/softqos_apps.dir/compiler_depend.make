# Empty compiler generated dependencies file for softqos_apps.
# This may be replaced when dependencies are built.
