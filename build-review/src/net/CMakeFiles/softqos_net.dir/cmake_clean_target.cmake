file(REMOVE_RECURSE
  "libsoftqos_net.a"
)
