
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/channel.cpp" "src/net/CMakeFiles/softqos_net.dir/channel.cpp.o" "gcc" "src/net/CMakeFiles/softqos_net.dir/channel.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/net/CMakeFiles/softqos_net.dir/network.cpp.o" "gcc" "src/net/CMakeFiles/softqos_net.dir/network.cpp.o.d"
  "/root/repo/src/net/nic.cpp" "src/net/CMakeFiles/softqos_net.dir/nic.cpp.o" "gcc" "src/net/CMakeFiles/softqos_net.dir/nic.cpp.o.d"
  "/root/repo/src/net/rpc.cpp" "src/net/CMakeFiles/softqos_net.dir/rpc.cpp.o" "gcc" "src/net/CMakeFiles/softqos_net.dir/rpc.cpp.o.d"
  "/root/repo/src/net/switch.cpp" "src/net/CMakeFiles/softqos_net.dir/switch.cpp.o" "gcc" "src/net/CMakeFiles/softqos_net.dir/switch.cpp.o.d"
  "/root/repo/src/net/traffic.cpp" "src/net/CMakeFiles/softqos_net.dir/traffic.cpp.o" "gcc" "src/net/CMakeFiles/softqos_net.dir/traffic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/osim/CMakeFiles/softqos_osim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/softqos_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
