# Empty dependencies file for softqos_net.
# This may be replaced when dependencies are built.
