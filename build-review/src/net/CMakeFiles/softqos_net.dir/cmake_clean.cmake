file(REMOVE_RECURSE
  "CMakeFiles/softqos_net.dir/channel.cpp.o"
  "CMakeFiles/softqos_net.dir/channel.cpp.o.d"
  "CMakeFiles/softqos_net.dir/network.cpp.o"
  "CMakeFiles/softqos_net.dir/network.cpp.o.d"
  "CMakeFiles/softqos_net.dir/nic.cpp.o"
  "CMakeFiles/softqos_net.dir/nic.cpp.o.d"
  "CMakeFiles/softqos_net.dir/rpc.cpp.o"
  "CMakeFiles/softqos_net.dir/rpc.cpp.o.d"
  "CMakeFiles/softqos_net.dir/switch.cpp.o"
  "CMakeFiles/softqos_net.dir/switch.cpp.o.d"
  "CMakeFiles/softqos_net.dir/traffic.cpp.o"
  "CMakeFiles/softqos_net.dir/traffic.cpp.o.d"
  "libsoftqos_net.a"
  "libsoftqos_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softqos_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
