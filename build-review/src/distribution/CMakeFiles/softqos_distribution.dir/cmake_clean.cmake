file(REMOVE_RECURSE
  "CMakeFiles/softqos_distribution.dir/admin.cpp.o"
  "CMakeFiles/softqos_distribution.dir/admin.cpp.o.d"
  "CMakeFiles/softqos_distribution.dir/policy_agent.cpp.o"
  "CMakeFiles/softqos_distribution.dir/policy_agent.cpp.o.d"
  "CMakeFiles/softqos_distribution.dir/qorms.cpp.o"
  "CMakeFiles/softqos_distribution.dir/qorms.cpp.o.d"
  "CMakeFiles/softqos_distribution.dir/repository.cpp.o"
  "CMakeFiles/softqos_distribution.dir/repository.cpp.o.d"
  "libsoftqos_distribution.a"
  "libsoftqos_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softqos_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
