# Empty compiler generated dependencies file for softqos_distribution.
# This may be replaced when dependencies are built.
