file(REMOVE_RECURSE
  "libsoftqos_distribution.a"
)
