
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/osim/cpu.cpp" "src/osim/CMakeFiles/softqos_osim.dir/cpu.cpp.o" "gcc" "src/osim/CMakeFiles/softqos_osim.dir/cpu.cpp.o.d"
  "/root/repo/src/osim/host.cpp" "src/osim/CMakeFiles/softqos_osim.dir/host.cpp.o" "gcc" "src/osim/CMakeFiles/softqos_osim.dir/host.cpp.o.d"
  "/root/repo/src/osim/loadavg.cpp" "src/osim/CMakeFiles/softqos_osim.dir/loadavg.cpp.o" "gcc" "src/osim/CMakeFiles/softqos_osim.dir/loadavg.cpp.o.d"
  "/root/repo/src/osim/memory.cpp" "src/osim/CMakeFiles/softqos_osim.dir/memory.cpp.o" "gcc" "src/osim/CMakeFiles/softqos_osim.dir/memory.cpp.o.d"
  "/root/repo/src/osim/msgqueue.cpp" "src/osim/CMakeFiles/softqos_osim.dir/msgqueue.cpp.o" "gcc" "src/osim/CMakeFiles/softqos_osim.dir/msgqueue.cpp.o.d"
  "/root/repo/src/osim/process.cpp" "src/osim/CMakeFiles/softqos_osim.dir/process.cpp.o" "gcc" "src/osim/CMakeFiles/softqos_osim.dir/process.cpp.o.d"
  "/root/repo/src/osim/scheduler.cpp" "src/osim/CMakeFiles/softqos_osim.dir/scheduler.cpp.o" "gcc" "src/osim/CMakeFiles/softqos_osim.dir/scheduler.cpp.o.d"
  "/root/repo/src/osim/socket.cpp" "src/osim/CMakeFiles/softqos_osim.dir/socket.cpp.o" "gcc" "src/osim/CMakeFiles/softqos_osim.dir/socket.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/sim/CMakeFiles/softqos_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
