file(REMOVE_RECURSE
  "libsoftqos_osim.a"
)
