# Empty compiler generated dependencies file for softqos_osim.
# This may be replaced when dependencies are built.
