file(REMOVE_RECURSE
  "CMakeFiles/softqos_osim.dir/cpu.cpp.o"
  "CMakeFiles/softqos_osim.dir/cpu.cpp.o.d"
  "CMakeFiles/softqos_osim.dir/host.cpp.o"
  "CMakeFiles/softqos_osim.dir/host.cpp.o.d"
  "CMakeFiles/softqos_osim.dir/loadavg.cpp.o"
  "CMakeFiles/softqos_osim.dir/loadavg.cpp.o.d"
  "CMakeFiles/softqos_osim.dir/memory.cpp.o"
  "CMakeFiles/softqos_osim.dir/memory.cpp.o.d"
  "CMakeFiles/softqos_osim.dir/msgqueue.cpp.o"
  "CMakeFiles/softqos_osim.dir/msgqueue.cpp.o.d"
  "CMakeFiles/softqos_osim.dir/process.cpp.o"
  "CMakeFiles/softqos_osim.dir/process.cpp.o.d"
  "CMakeFiles/softqos_osim.dir/scheduler.cpp.o"
  "CMakeFiles/softqos_osim.dir/scheduler.cpp.o.d"
  "CMakeFiles/softqos_osim.dir/socket.cpp.o"
  "CMakeFiles/softqos_osim.dir/socket.cpp.o.d"
  "libsoftqos_osim.a"
  "libsoftqos_osim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softqos_osim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
