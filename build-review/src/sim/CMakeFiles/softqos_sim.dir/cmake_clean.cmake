file(REMOVE_RECURSE
  "CMakeFiles/softqos_sim.dir/csv.cpp.o"
  "CMakeFiles/softqos_sim.dir/csv.cpp.o.d"
  "CMakeFiles/softqos_sim.dir/event_queue.cpp.o"
  "CMakeFiles/softqos_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/softqos_sim.dir/metrics.cpp.o"
  "CMakeFiles/softqos_sim.dir/metrics.cpp.o.d"
  "CMakeFiles/softqos_sim.dir/random.cpp.o"
  "CMakeFiles/softqos_sim.dir/random.cpp.o.d"
  "CMakeFiles/softqos_sim.dir/simulation.cpp.o"
  "CMakeFiles/softqos_sim.dir/simulation.cpp.o.d"
  "CMakeFiles/softqos_sim.dir/trace.cpp.o"
  "CMakeFiles/softqos_sim.dir/trace.cpp.o.d"
  "libsoftqos_sim.a"
  "libsoftqos_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softqos_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
